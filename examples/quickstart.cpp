/**
 * @file
 * Quickstart: serve a mixed-QoS workload with QoServe in ~30 lines.
 *
 * Builds a synthetic Azure-Code-like workload with the paper's three
 * QoS tiers (interactive chat, relaxed summarization, batch
 * processing), serves it on one simulated Llama3-8B/A100 replica
 * with the QoServe scheduler, and prints per-tier latency and SLO
 * attainment.
 *
 * Run: build/examples/quickstart
 */

#include <cstdio>

#include "app/qoserve.hh"

int
main()
{
    using namespace qoserve;

    // 1. Describe the deployment: one Llama3-8B replica on an A100,
    //    scheduled by QoServe (dynamic chunking + hybrid priority +
    //    eager relegation).
    ServingConfig config;
    config.policy = Policy::QoServe;
    config.hw = llama3_8b_a100_tp1();
    config.numReplicas = 1;
    ServingSystem system(config);

    // 2. Build a workload: Az-Code token lengths, Poisson arrivals
    //    at 3 QPS, requests split equally across the paper's three
    //    QoS tiers (Table 3).
    Trace trace = TraceBuilder()
                      .dataset(azureCode())
                      .tiers(paperTierTable())
                      .seed(1)
                      .build(PoissonArrivals(3.0), /*duration=*/600.0);

    std::printf("serving %zu requests at 3 QPS on %s...\n",
                trace.requests.size(), config.hw.gpu.name.c_str());

    // 3. Serve and inspect.
    RunSummary summary = system.serve(trace);

    std::printf("\n%-6s %-8s %12s %12s %12s\n", "tier", "count",
                "p50 (s)", "p99 (s)", "violations");
    for (const TierSummary &tier : summary.tiers) {
        const QosTier &def = trace.tiers[tier.tierId];
        std::printf("%-6s %-8zu %12.3f %12.3f %11.2f%%\n",
                    def.name.c_str(), tier.count,
                    def.interactive ? tier.p50Ttft : tier.p50Ttlt,
                    def.interactive ? tier.p99Ttft : tier.p99Ttlt,
                    100.0 * tier.violationRate);
    }
    std::printf("\noverall: %.2f%% SLO violations, %.2f%% relegated\n",
                100.0 * summary.violationRate,
                100.0 * summary.relegatedFraction);
    return 0;
}
