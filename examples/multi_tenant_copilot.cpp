/**
 * @file
 * Multi-tenant scenario from the paper's introduction: a coding
 * assistant (millisecond-scale interactivity), user-facing video
 * summarization (minutes), and overnight email-insight batch jobs
 * (hours) share one GPU fleet.
 *
 * Compares the industry-standard siloed deployment (a dedicated
 * Sarathi cluster per application) against QoServe co-scheduling on
 * the same number of GPUs, and shows what happens to the siloed
 * deployment when one tenant's load spikes while another's is idle —
 * the utilization pathology §2.3 describes.
 *
 * Run: build/examples/multi_tenant_copilot
 */

#include <cstdio>

#include "app/qoserve.hh"

namespace {

using namespace qoserve;

/** Tenants with custom SLOs (the QoS classes are user-definable). */
TierTable
tenantTiers()
{
    return {
        interactiveTier(0, "copilot", 2.0, fromMillis(50.0)),
        batchTier(1, "video-summary", 300.0),
        batchTier(2, "email-insights", 1800.0),
    };
}

void
report(const char *label, const RunSummary &summary,
       const TierTable &tiers)
{
    std::printf("\n%s\n", label);
    std::printf("  %-16s %10s %12s %12s\n", "tenant", "requests",
                "p99 (s)", "violations");
    for (const TierSummary &tier : summary.tiers) {
        const QosTier &def = tiers[tier.tierId];
        std::printf("  %-16s %10zu %12.2f %11.2f%%\n",
                    def.name.c_str(), tier.count,
                    def.interactive ? tier.p99Ttft : tier.p99Ttlt,
                    100.0 * tier.violationRate);
    }
    std::printf("  overall violations: %.2f%%\n",
                100.0 * summary.violationRate);
}

RunSummary
runSiloed(const Trace &trace)
{
    ClusterSim::Config cc;
    cc.replica.hw = llama3_8b_a100_tp1();
    ClusterSim sim(cc, trace);

    // One replica per tenant, chunk sized for the tenant's SLO.
    ServingConfig strict;
    strict.policy = Policy::SarathiFcfs;
    strict.base.fixedChunkTokens = 256;
    ServingConfig relaxed = strict;
    relaxed.base.fixedChunkTokens = 2048;

    sim.routeTier(0, sim.addReplicaGroup(1, makeSchedulerFactory(strict)));
    sim.routeTier(1, sim.addReplicaGroup(1, makeSchedulerFactory(relaxed)));
    sim.routeTier(2, sim.addReplicaGroup(1, makeSchedulerFactory(relaxed)));
    return summarize(sim.run());
}

RunSummary
runShared(const Trace &trace,
          const std::shared_ptr<const LatencyPredictor> &predictor)
{
    ServingConfig qos;
    qos.policy = Policy::QoServe;

    ClusterSim::Config cc;
    cc.replica.hw = llama3_8b_a100_tp1();
    cc.predictor = predictor.get();
    ClusterSim sim(cc, trace);
    sim.addReplicaGroup(3, makeSchedulerFactory(qos));
    return summarize(sim.run());
}

} // namespace

int
main()
{
    using namespace qoserve;

    TierTable tiers = tenantTiers();

    // Train the batch-latency predictor once (shared by both runs).
    ServingConfig pred_cfg;
    auto predictor = makePredictor(pred_cfg);

    std::printf("=== balanced load: every tenant at ~1.3 QPS ===\n");
    Trace balanced = TraceBuilder()
                         .dataset(azureConv())
                         .tiers(tiers)
                         .seed(2)
                         .build(PoissonArrivals(4.0), 900.0);
    report("siloed (3 GPUs, one per tenant)", runSiloed(balanced), tiers);
    report("QoServe shared (same 3 GPUs)",
           runShared(balanced, predictor), tiers);

    // Skewed load: the copilot tenant spikes to 70% of traffic while
    // the batch tenants idle. The copilot silo drowns while two
    // other GPUs sit mostly idle; the shared cluster absorbs it.
    std::printf("\n=== skewed load: copilot spikes to 70%% of traffic "
                "===\n");
    Trace skewed = TraceBuilder()
                       .dataset(azureConv())
                       .tiers(tiers)
                       .tierMix({0.7, 0.15, 0.15})
                       .seed(3)
                       .build(PoissonArrivals(4.0), 900.0);
    report("siloed (3 GPUs, one per tenant)", runSiloed(skewed), tiers);
    report("QoServe shared (same 3 GPUs)",
           runShared(skewed, predictor), tiers);

    std::printf("\nTakeaway: with silos, capacity is stranded in idle "
                "tenants exactly when another\ntenant needs it; "
                "co-scheduling turns that stranded capacity into SLO "
                "headroom.\n");
    return 0;
}
