/**
 * @file
 * Capacity planning: how many GPUs does a target workload need?
 *
 * An operations-facing use of the library: given a model/hardware
 * choice, a dataset profile and a QoS tier mix, binary-search the
 * per-replica goodput of each candidate scheduler and print the
 * fleet size (and implied GPU count) needed for a target aggregate
 * load — the calculation behind Figure 1 (top right) and Table 4.
 *
 * Run: build/examples/capacity_planner [target_qps]
 */

#include <cstdio>
#include <cstdlib>

#include "app/qoserve.hh"

namespace {

using namespace qoserve;

double
measureGoodput(Policy policy, const ReplicaHwConfig &hw,
               const std::shared_ptr<const LatencyPredictor> &predictor)
{
    LoadRunner runner = [&](double qps) {
        Trace trace = TraceBuilder()
                          .dataset(azureCode())
                          .tiers(paperTierTable())
                          .seed(5)
                          .buildCount(PoissonArrivals(qps), 600);

        ServingConfig sc;
        sc.policy = policy;
        sc.hw = hw;

        ClusterSim::Config cc;
        cc.replica.hw = hw;
        cc.predictor = predictor.get();
        ClusterSim sim(cc, trace);
        sim.addReplicaGroup(1, makeSchedulerFactory(sc));
        return summarize(sim.run());
    };

    GoodputSearch search;
    search.resolutionQps = 0.125;
    return measureMaxGoodput(runner, GoodputCriteria{}, search);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qoserve;

    double target_qps = argc > 1 ? std::atof(argv[1]) : 35.0;
    if (target_qps <= 0.0) {
        std::fprintf(stderr, "usage: %s [target_qps > 0]\n", argv[0]);
        return 1;
    }

    ReplicaHwConfig hw = llama3_8b_a100_tp1();
    std::printf("capacity plan: %s on %s (TP%d), Az-Code profile, "
                "Table 3 tiers, target %.1f QPS\n\n",
                hw.model.name.c_str(), hw.gpu.name.c_str(), hw.tpDegree,
                target_qps);

    // The forest predictor is only consulted by QoServe; train once.
    ServingConfig pred_cfg;
    auto predictor = makePredictor(pred_cfg);

    std::printf("%-14s %18s %10s %8s\n", "scheduler",
                "goodput/replica", "replicas", "GPUs");
    for (Policy policy : {Policy::SarathiFcfs, Policy::SarathiEdf,
                          Policy::QoServe}) {
        double goodput = measureGoodput(policy, hw, predictor);
        if (goodput <= 0.0) {
            std::printf("%-14s %18s %10s %8s\n", policyName(policy),
                        "unattainable", "-", "-");
            continue;
        }
        int replicas = replicasForLoad(target_qps, goodput);
        std::printf("%-14s %18.2f %10d %8d\n", policyName(policy),
                    goodput, replicas, replicas * hw.gpusPerReplica());
    }

    std::printf("\nGoodput = max per-replica QPS with <= 1%% SLO "
                "violations (binary search, §4.1.2).\n");
    return 0;
}
