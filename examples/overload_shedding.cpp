/**
 * @file
 * Graceful degradation under a traffic burst with free/paid tiers.
 *
 * Part 1: a serving deployment gets hit by a 3x traffic burst. Each
 * request carries an application hint: 30% come from the free tier,
 * 70% from paying customers. QoServe's eager relegation uses the
 * hint to shed free-tier work first, keeping paid-tier SLOs intact
 * through the burst — compared against Sarathi-FCFS, which degrades
 * everyone uniformly (§2.2's "Overload management" critique).
 *
 * Part 2: the same shape of capacity crunch arrives as a fault
 * instead of a burst — one of two replicas crashes mid-run, halving
 * capacity for two minutes. QoServe absorbs the loss the same way it
 * absorbs a burst (relegate free-tier work, re-dispatch the crashed
 * replica's orphans, serve everyone eventually) while a LoadShed
 * front door turns the outage into permanent rejections.
 *
 * Run: build/examples/overload_shedding
 */

#include <cstdio>

#include "app/qoserve.hh"

namespace {

using namespace qoserve;

struct TierOutcome
{
    std::size_t count = 0;
    std::size_t violations = 0;
    double worst = 0.0;
};

void
report(const char *label, const MetricsCollector &metrics)
{
    TierOutcome paid, free_tier;
    for (const RequestRecord &rec : metrics.records()) {
        const QosTier &tier = metrics.tiers()[rec.spec.tierId];
        TierOutcome &out = rec.spec.important ? paid : free_tier;
        ++out.count;
        out.violations += violatedSlo(rec, tier);
        // Rejected/abandoned requests have no finish time; they show
        // up in the violation column, not as infinite latency.
        if (rec.finishTime != kTimeNever)
            out.worst = std::max(out.worst, headlineLatency(rec, tier));
    }

    std::printf("\n%s\n", label);
    std::printf("  %-10s %10s %14s %18s\n", "tier", "requests",
                "violations", "worst latency (s)");
    std::printf("  %-10s %10zu %13.2f%% %18.2f\n", "paid", paid.count,
                100.0 * paid.violations / paid.count, paid.worst);
    std::printf("  %-10s %10zu %13.2f%% %18.2f\n", "free",
                free_tier.count,
                100.0 * free_tier.violations / free_tier.count,
                free_tier.worst);
}

/**
 * Part 2: run @p trace on two replicas, crash replica 0 during
 * [200 s, 320 s), and report how the crunch was absorbed.
 */
void
crashRun(const Trace &trace, Policy policy,
         AdmissionPolicy admission)
{
    ServingConfig scfg;
    scfg.policy = policy;
    scfg.useForestPredictor = false;
    auto predictor = makePredictor(scfg);

    ClusterSim::Config cc;
    cc.replica.hw = scfg.hw;
    cc.predictor = predictor.get();
    if (admission == AdmissionPolicy::LoadShed) {
        cc.admission.policy = AdmissionPolicy::LoadShed;
        cc.admission.maxBacklogTokens = 16000;
    }

    ClusterSim sim(cc, trace);
    sim.addReplicaGroup(2, makeSchedulerFactory(scfg));
    sim.eventQueue().schedule(SimTime{200.0},
                              [&] { sim.replica(0).fail(); });
    sim.eventQueue().schedule(SimTime{320.0},
                              [&] { sim.replica(0).recover(); });
    const MetricsCollector &metrics = sim.run();

    char label[96];
    std::snprintf(label, sizeof label, "%s + %s front door",
                  policyName(policy),
                  admission == AdmissionPolicy::LoadShed
                      ? "load-shedding"
                      : "admit-all");
    report(label, metrics);
    RunSummary s = summarize(metrics);
    std::printf("  availability: %.2f%%, rejected: %.2f%%, "
                "re-dispatched orphans: %llu, relegated: %.2f%%\n",
                100.0 * s.availability, 100.0 * s.rejectedFraction,
                static_cast<unsigned long long>(sim.redispatches()),
                100.0 * s.relegatedFraction);
}

} // namespace

int
main()
{
    using namespace qoserve;

    // 900 s of traffic at 2 QPS with a 300 s burst at 6 QPS in the
    // middle — well past one replica's capacity.
    BurstArrivals arrivals(2.0, 6.0, SimTime{300.0}, SimTime{600.0});
    Trace trace = TraceBuilder()
                      .dataset(azureCode())
                      .tiers(paperTierTable())
                      .lowPriorityFraction(0.3) // free tier
                      .seed(4)
                      .build(arrivals, 900.0);

    std::printf("workload: %zu requests, 2 QPS baseline with a 3x "
                "burst during [300 s, 600 s)\n",
                trace.requests.size());

    for (Policy policy : {Policy::SarathiFcfs, Policy::QoServe}) {
        ServingConfig cfg;
        cfg.policy = policy;
        ServingSystem system(cfg);
        auto sim = system.serveForInspection(trace);
        report(policyName(policy), sim->metrics());

        if (policy == Policy::QoServe) {
            RunSummary s = summarize(sim->metrics());
            std::printf("  relegated: %.2f%% of requests (served "
                        "opportunistically, never dropped)\n",
                        100.0 * s.relegatedFraction);
        }
    }

    std::printf("\nTakeaway: FCFS lets the burst cascade into every "
                "user's latency; QoServe sheds a\nbounded slice of "
                "free-tier work during the burst and pays it back in "
                "the trough.\n");

    // Part 2: the crunch arrives as a replica crash, not a burst.
    std::printf("\n=== Part 2: replica crash (1 of 2 replicas down "
                "during [200 s, 320 s)) ===\n");
    Trace crash_trace = TraceBuilder()
                            .dataset(azureCode())
                            .tiers(paperTierTable())
                            .lowPriorityFraction(0.3)
                            .seed(9)
                            .build(PoissonArrivals(4.0), 600.0);
    std::printf("workload: %zu requests at a steady 4 QPS on two "
                "replicas\n",
                crash_trace.requests.size());

    crashRun(crash_trace, Policy::SarathiFcfs,
             AdmissionPolicy::LoadShed);
    crashRun(crash_trace, Policy::QoServe, AdmissionPolicy::None);

    std::printf("\nTakeaway: to a load-shedding front door a crash "
                "looks like overload, so the lost\ncapacity becomes "
                "permanent rejections; QoServe re-dispatches the "
                "crashed replica's\norphans and relegates free-tier "
                "work until the replica returns — nobody is "
                "dropped.\n");
    return 0;
}
