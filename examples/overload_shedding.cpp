/**
 * @file
 * Graceful degradation under a traffic burst with free/paid tiers.
 *
 * A serving deployment gets hit by a 3x traffic burst. Each request
 * carries an application hint: 30% come from the free tier, 70%
 * from paying customers. QoServe's eager relegation uses the hint to
 * shed free-tier work first, keeping paid-tier SLOs intact through
 * the burst — compared against Sarathi-FCFS, which degrades everyone
 * uniformly (§2.2's "Overload management" critique).
 *
 * Run: build/examples/overload_shedding
 */

#include <cstdio>

#include "core/qoserve.hh"

namespace {

using namespace qoserve;

struct TierOutcome
{
    std::size_t count = 0;
    std::size_t violations = 0;
    double worst = 0.0;
};

void
report(const char *label, const MetricsCollector &metrics)
{
    TierOutcome paid, free_tier;
    for (const RequestRecord &rec : metrics.records()) {
        const QosTier &tier = metrics.tiers()[rec.spec.tierId];
        TierOutcome &out = rec.spec.important ? paid : free_tier;
        ++out.count;
        out.violations += violatedSlo(rec, tier);
        out.worst = std::max(out.worst, headlineLatency(rec, tier));
    }

    std::printf("\n%s\n", label);
    std::printf("  %-10s %10s %14s %18s\n", "tier", "requests",
                "violations", "worst latency (s)");
    std::printf("  %-10s %10zu %13.2f%% %18.2f\n", "paid", paid.count,
                100.0 * paid.violations / paid.count, paid.worst);
    std::printf("  %-10s %10zu %13.2f%% %18.2f\n", "free",
                free_tier.count,
                100.0 * free_tier.violations / free_tier.count,
                free_tier.worst);
}

} // namespace

int
main()
{
    using namespace qoserve;

    // 900 s of traffic at 2 QPS with a 300 s burst at 6 QPS in the
    // middle — well past one replica's capacity.
    BurstArrivals arrivals(2.0, 6.0, 300.0, 600.0);
    Trace trace = TraceBuilder()
                      .dataset(azureCode())
                      .tiers(paperTierTable())
                      .lowPriorityFraction(0.3) // free tier
                      .seed(4)
                      .build(arrivals, 900.0);

    std::printf("workload: %zu requests, 2 QPS baseline with a 3x "
                "burst during [300 s, 600 s)\n",
                trace.requests.size());

    for (Policy policy : {Policy::SarathiFcfs, Policy::QoServe}) {
        ServingConfig cfg;
        cfg.policy = policy;
        ServingSystem system(cfg);
        auto sim = system.serveForInspection(trace);
        report(policyName(policy), sim->metrics());

        if (policy == Policy::QoServe) {
            RunSummary s = summarize(sim->metrics());
            std::printf("  relegated: %.2f%% of requests (served "
                        "opportunistically, never dropped)\n",
                        100.0 * s.relegatedFraction);
        }
    }

    std::printf("\nTakeaway: FCFS lets the burst cascade into every "
                "user's latency; QoServe sheds a\nbounded slice of "
                "free-tier work during the burst and pays it back in "
                "the trough.\n");
    return 0;
}
