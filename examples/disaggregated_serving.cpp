/**
 * @file
 * Prefill-decode disaggregated serving end to end.
 *
 * Runs the full disaggregated pipeline (§4.1.3): a prefill pool
 * scheduled by QoServe feeds a decode pool over a modeled KV-transfer
 * link. Two decode-pool policies are compared on a workload mixing a
 * 50 ms-TBT and a 100 ms-TBT interactive class:
 *
 *  - the paper's configuration (batch capped for the strictest TBT);
 *  - the paper's stated future work, implemented here: deadline-aware
 *    decode batching that serves relaxed-TBT requests at lower
 *    frequency instead of letting them constrain the tight class.
 *
 * Run: build/examples/disaggregated_serving
 */

#include <cstdio>

#include "app/qoserve.hh"

namespace {

using namespace qoserve;

void
report(const char *label, const MetricsCollector &metrics,
       double kv_bytes)
{
    RunSummary s = summarize(metrics);
    std::int64_t tbt_misses = 0;
    for (const auto &rec : metrics.records())
        tbt_misses += rec.tbtDeadlineMisses;

    std::printf("\n%s\n", label);
    std::printf("  violations (TTFT): %.2f%%, with TBT: %.2f%%\n",
                100.0 * s.violationRate,
                100.0 * s.violationRateWithTbt);
    std::printf("  total late tokens: %lld\n",
                static_cast<long long>(tbt_misses));
    for (const TierSummary &tier : s.tiers) {
        std::printf("  tier %d: p99 TTFT %.2f s, TBT-miss requests "
                    "%.1f%%\n",
                    tier.tierId, tier.p99Ttft,
                    100.0 * tier.tbtMissRate);
    }
    std::printf("  KV moved between pools: %.1f GB\n", kv_bytes / 1e9);
}

} // namespace

int
main()
{
    using namespace qoserve;

    TierTable tiers = {
        interactiveTier(0, "chat-50ms", 6.0, fromMillis(50.0)),
        interactiveTier(1, "agent-100ms", 6.0, fromMillis(100.0)),
    };
    // ShareGPT-style long decodes keep the decode pool busy.
    Trace trace = TraceBuilder()
                      .dataset(sharegpt())
                      .tiers(tiers)
                      .seed(8)
                      .build(PoissonArrivals(4.0), 600.0);
    std::printf("workload: %zu requests, two interactive classes "
                "(50 ms / 100 ms TBT)\n",
                trace.requests.size());

    ServingConfig sc;
    sc.policy = Policy::QoServe;
    auto predictor = makePredictor(sc);

    for (DecodePolicy policy :
         {DecodePolicy::StrictestTbtCap, DecodePolicy::DeadlineAware}) {
        DisaggCluster::Config cfg;
        cfg.replica.hw = llama3_8b_a100_tp1();
        cfg.numPrefillReplicas = 3;
        cfg.numDecodeReplicas = 1;
        cfg.prefillFactory = makeSchedulerFactory(sc);
        cfg.predictor = predictor.get();
        cfg.decodePolicy = policy;
        cfg.maxDecodeBatch = 256;

        DisaggCluster sim(cfg, trace);
        const MetricsCollector &metrics = sim.run();
        report(policy == DecodePolicy::StrictestTbtCap
                   ? "decode pool: strictest-TBT batch cap (paper)"
                   : "decode pool: deadline-aware batching (future "
                     "work, implemented)",
               metrics, sim.kvBytesTransferred());
    }

    std::printf("\nTakeaway: deadline-aware decode batching lets the "
                "relaxed class trade token pacing\nit does not need "
                "for decode-pool capacity the tight class does.\n");
    return 0;
}
