/**
 * @file
 * Trace CSV serialization implementation.
 */

#include "workload/trace_io.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "simcore/logging.hh"

namespace qoserve {

namespace {

const char *kHeader =
    "id,arrival,prompt_tokens,decode_tokens,tier_id,important,app_id";

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    std::istringstream iss(line);
    while (std::getline(iss, field, ','))
        fields.push_back(field);
    return fields;
}

} // namespace

void
writeTraceCsv(const Trace &trace, std::ostream &out)
{
    out << kHeader << '\n';
    // Full round-trip precision for timestamps.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const RequestSpec &r : trace.requests) {
        out << r.id << ',' << r.arrival << ',' << r.promptTokens << ','
            << r.decodeTokens << ',' << r.tierId << ','
            << (r.important ? 1 : 0) << ',' << r.appId << '\n';
    }
}

void
writeTraceCsvFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open trace file for writing: ", path);
    writeTraceCsv(trace, out);
    if (!out)
        QOSERVE_FATAL("error writing trace file: ", path);
}

Trace
readTraceCsv(std::istream &in, TierTable tiers)
{
    QOSERVE_ASSERT(!tiers.empty(), "tier table required");

    std::string line;
    if (!std::getline(in, line))
        QOSERVE_FATAL("empty trace file");
    // Tolerate trailing carriage returns from foreign tools.
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    if (line != kHeader)
        QOSERVE_FATAL("bad trace header: expected '", kHeader, "', got '",
                      line, "'");

    Trace trace;
    trace.tiers = std::move(tiers);

    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        auto fields = splitCsvLine(line);
        if (fields.size() != 7)
            QOSERVE_FATAL("trace line ", line_no, ": expected 7 fields, got ",
                          fields.size());
        RequestSpec spec;
        try {
            spec.id = std::stoull(fields[0]);
            spec.arrival = std::stod(fields[1]);
            spec.promptTokens = std::stoi(fields[2]);
            spec.decodeTokens = std::stoi(fields[3]);
            spec.tierId = std::stoi(fields[4]);
            spec.important = std::stoi(fields[5]) != 0;
            spec.appId = std::stoi(fields[6]);
        } catch (const std::exception &e) {
            QOSERVE_FATAL("trace line ", line_no, ": parse error: ",
                          e.what());
        }
        if (spec.promptTokens <= 0 || spec.decodeTokens <= 0)
            QOSERVE_FATAL("trace line ", line_no,
                          ": token counts must be positive");
        if (spec.tierId < 0 ||
            spec.tierId >= static_cast<int>(trace.tiers.size()))
            QOSERVE_FATAL("trace line ", line_no, ": tier ", spec.tierId,
                          " out of range");
        if (spec.arrival < 0.0)
            QOSERVE_FATAL("trace line ", line_no, ": negative arrival");
        trace.requests.push_back(spec);
    }

    std::sort(trace.requests.begin(), trace.requests.end(),
              [](const RequestSpec &a, const RequestSpec &b) {
                  if (a.arrival != b.arrival)
                      return a.arrival < b.arrival;
                  return a.id < b.id;
              });
    trace.appStats = computeAppStats(trace.requests);
    if (!trace.requests.empty() && trace.requests.back().arrival > 0.0) {
        trace.averageQps = static_cast<double>(trace.requests.size()) /
                           trace.requests.back().arrival;
    }
    return trace;
}

Trace
readTraceCsvFile(const std::string &path, TierTable tiers)
{
    std::ifstream in(path);
    if (!in)
        QOSERVE_FATAL("cannot open trace file: ", path);
    return readTraceCsv(in, std::move(tiers));
}

} // namespace qoserve
