/**
 * @file
 * Trace CSV serialization implementation.
 */

#include "workload/trace_io.hh"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "simcore/logging.hh"

namespace qoserve {

namespace {

const char *kHeader =
    "id,arrival,prompt_tokens,decode_tokens,tier_id,important,app_id";

// Extended header used only when some request carries prompt
// segments, so traces without them keep the historical byte format.
const char *kHeaderSegments =
    "id,arrival,prompt_tokens,decode_tokens,tier_id,important,app_id,"
    "prompt_segments";

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    std::istringstream iss(line);
    while (std::getline(iss, field, ','))
        fields.push_back(field);
    return fields;
}

// Strict field parsers: the whole field must be consumed, so trailing
// garbage ("12x") and embedded whitespace are rejected with the field
// name and line number rather than silently truncated by std::stoi.

[[noreturn]] void
fieldError(std::size_t line_no, const char *name, const std::string &value,
           const char *what)
{
    QOSERVE_FATAL("trace line ", line_no, ": field '", name, "': ", what,
                  ": '", value, "'");
}

std::uint64_t
parseFieldU64(const std::string &value, const char *name,
              std::size_t line_no)
{
    if (value.empty() || value[0] == '-')
        fieldError(line_no, name, value, "expected unsigned integer");
    std::size_t pos = 0;
    std::uint64_t parsed = 0;
    try {
        parsed = std::stoull(value, &pos);
    } catch (const std::exception &) {
        fieldError(line_no, name, value, "expected unsigned integer");
    }
    if (pos != value.size())
        fieldError(line_no, name, value,
                   "trailing characters after integer");
    return parsed;
}

int
parseFieldInt(const std::string &value, const char *name,
              std::size_t line_no)
{
    std::size_t pos = 0;
    int parsed = 0;
    try {
        parsed = std::stoi(value, &pos);
    } catch (const std::exception &) {
        fieldError(line_no, name, value, "expected integer");
    }
    if (pos != value.size())
        fieldError(line_no, name, value,
                   "trailing characters after integer");
    return parsed;
}

double
parseFieldDouble(const std::string &value, const char *name,
                 std::size_t line_no)
{
    std::size_t pos = 0;
    double parsed = 0.0;
    try {
        parsed = std::stod(value, &pos);
    } catch (const std::exception &) {
        fieldError(line_no, name, value, "expected number");
    }
    if (pos != value.size())
        fieldError(line_no, name, value,
                   "trailing characters after number");
    return parsed;
}

std::vector<PromptSegment>
parseSegments(const std::string &value, std::size_t line_no)
{
    std::vector<PromptSegment> segments;
    std::istringstream iss(value);
    std::string item;
    while (std::getline(iss, item, ';')) {
        std::size_t colon = item.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= item.size()) {
            fieldError(line_no, "prompt_segments", item,
                       "expected contentId:tokens");
        }
        PromptSegment seg;
        seg.contentId = parseFieldU64(item.substr(0, colon),
                                      "prompt_segments", line_no);
        seg.tokens = parseFieldInt(item.substr(colon + 1),
                                   "prompt_segments", line_no);
        if (seg.tokens <= 0) {
            fieldError(line_no, "prompt_segments", item,
                       "segment tokens must be positive");
        }
        segments.push_back(seg);
    }
    if (segments.empty()) {
        fieldError(line_no, "prompt_segments", value,
                   "expected '-' or contentId:tokens list");
    }
    return segments;
}

} // namespace

void
writeTraceCsv(const Trace &trace, std::ostream &out)
{
    bool segments = false;
    for (const RequestSpec &r : trace.requests)
        segments = segments || !r.promptSegments.empty();

    out << (segments ? kHeaderSegments : kHeader) << '\n';
    // Full round-trip precision for timestamps.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const RequestSpec &r : trace.requests) {
        out << r.id << ',' << r.arrival << ',' << r.promptTokens << ','
            << r.decodeTokens << ',' << r.tierId << ','
            << (r.important ? 1 : 0) << ',' << r.appId;
        if (segments) {
            // contentId:tokens pairs joined by ';', or '-' for a
            // wholly unique prompt.
            out << ',';
            if (r.promptSegments.empty()) {
                out << '-';
            } else {
                for (std::size_t i = 0; i < r.promptSegments.size(); ++i) {
                    if (i > 0)
                        out << ';';
                    out << r.promptSegments[i].contentId << ':'
                        << r.promptSegments[i].tokens;
                }
            }
        }
        out << '\n';
    }
}

void
writeTraceCsvFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open trace file for writing: ", path);
    writeTraceCsv(trace, out);
    if (!out)
        QOSERVE_FATAL("error writing trace file: ", path);
}

Trace
readTraceCsv(std::istream &in, TierTable tiers)
{
    QOSERVE_ASSERT(!tiers.empty(), "tier table required");

    std::string line;
    if (!std::getline(in, line))
        QOSERVE_FATAL("empty trace file");
    // Tolerate trailing carriage returns from foreign tools.
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    bool segments = line == kHeaderSegments;
    if (line != kHeader && !segments)
        QOSERVE_FATAL("bad trace header: expected '", kHeader, "', got '",
                      line, "'");
    std::size_t expected_fields = segments ? 8 : 7;

    Trace trace;
    trace.tiers = std::move(tiers);

    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        auto fields = splitCsvLine(line);
        if (fields.size() != expected_fields) {
            QOSERVE_FATAL("trace line ", line_no, ": expected ",
                          expected_fields, " fields, got ",
                          fields.size());
        }
        RequestSpec spec;
        spec.id = parseFieldU64(fields[0], "id", line_no);
        spec.arrival =
            SimTime{parseFieldDouble(fields[1], "arrival", line_no)};
        spec.promptTokens =
            parseFieldInt(fields[2], "prompt_tokens", line_no);
        spec.decodeTokens =
            parseFieldInt(fields[3], "decode_tokens", line_no);
        spec.tierId = parseFieldInt(fields[4], "tier_id", line_no);
        spec.important =
            parseFieldInt(fields[5], "important", line_no) != 0;
        spec.appId = parseFieldInt(fields[6], "app_id", line_no);
        if (segments && fields[7] != "-")
            spec.promptSegments = parseSegments(fields[7], line_no);
        if (!spec.promptSegments.empty()) {
            std::int64_t sum = 0;
            for (const PromptSegment &s : spec.promptSegments)
                sum += s.tokens;
            if (sum != spec.promptTokens) {
                QOSERVE_FATAL("trace line ", line_no,
                              ": prompt segments sum to ", sum,
                              " tokens but prompt_tokens is ",
                              spec.promptTokens);
            }
        }
        if (spec.promptTokens <= 0 || spec.decodeTokens <= 0)
            QOSERVE_FATAL("trace line ", line_no,
                          ": token counts must be positive");
        if (spec.tierId < 0 ||
            spec.tierId >= static_cast<int>(trace.tiers.size()))
            QOSERVE_FATAL("trace line ", line_no, ": tier ", spec.tierId,
                          " out of range");
        if (spec.arrival < SimTime{})
            QOSERVE_FATAL("trace line ", line_no, ": negative arrival");
        trace.requests.push_back(spec);
    }

    std::sort(trace.requests.begin(), trace.requests.end(),
              [](const RequestSpec &a, const RequestSpec &b) {
                  if (a.arrival != b.arrival)
                      return a.arrival < b.arrival;
                  return a.id < b.id;
              });
    trace.appStats = computeAppStats(trace.requests);
    if (!trace.requests.empty() && trace.requests.back().arrival > SimTime{}) {
        trace.averageQps = static_cast<double>(trace.requests.size()) /
                           trace.requests.back().arrival.seconds();
    }
    return trace;
}

Trace
readTraceCsvFile(const std::string &path, TierTable tiers)
{
    std::ifstream in(path);
    if (!in)
        QOSERVE_FATAL("cannot open trace file: ", path);
    return readTraceCsv(in, std::move(tiers));
}

} // namespace qoserve
