/**
 * @file
 * Trace serialization.
 *
 * Traces round-trip through a simple CSV format so experiments can
 * be frozen, shared and replayed, and so externally-generated traces
 * (e.g. resampled production logs) can be fed to the simulator.
 *
 * Format (header line required):
 *   id,arrival,prompt_tokens,decode_tokens,tier_id,important,app_id
 *
 * Tier tables are not embedded; the loader takes the TierTable the
 * tier_id column refers to.
 */

#ifndef QOSERVE_WORKLOAD_TRACE_IO_HH
#define QOSERVE_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "workload/trace.hh"

namespace qoserve {

/** Write @p trace as CSV to @p out. */
void writeTraceCsv(const Trace &trace, std::ostream &out);

/** Write @p trace as CSV to the file at @p path (fatal on error). */
void writeTraceCsvFile(const Trace &trace, const std::string &path);

/**
 * Parse a CSV trace.
 *
 * Rows are re-sorted by arrival time; app statistics are recomputed
 * from the parsed rows. Malformed input is a fatal (user) error.
 *
 * @param in Stream positioned at the header line.
 * @param tiers Tier table tier_id refers to.
 */
Trace readTraceCsv(std::istream &in, TierTable tiers);

/** Parse a CSV trace from the file at @p path (fatal on error). */
Trace readTraceCsvFile(const std::string &path, TierTable tiers);

} // namespace qoserve

#endif // QOSERVE_WORKLOAD_TRACE_IO_HH
