/**
 * @file
 * Request arrival processes.
 *
 * The paper generates arrivals from a Poisson process at a target QPS
 * (§4, following Sarathi methodology), and evaluates transient
 * overload with a diurnal square-wave QPS pattern alternating between
 * a low and a high rate every 15 minutes (§4.3, Fig. 12a). Both are
 * provided, plus a single-burst process used for the Fig. 1 overload
 * illustration.
 */

#ifndef QOSERVE_WORKLOAD_ARRIVAL_HH
#define QOSERVE_WORKLOAD_ARRIVAL_HH

#include <memory>

#include "simcore/rng.hh"
#include "simcore/time.hh"

namespace qoserve {

/**
 * Generator of successive arrival timestamps.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /**
     * Time of the next arrival strictly after @p prev.
     *
     * @param prev Previous arrival time (0 for the first call).
     * @param rng Random stream to draw from.
     */
    virtual SimTime nextArrival(SimTime prev, Rng &rng) const = 0;

    /** Long-run average arrival rate in requests/second. */
    virtual double averageQps() const = 0;
};

/** Homogeneous Poisson arrivals at a fixed QPS. */
class PoissonArrivals : public ArrivalProcess
{
  public:
    /** @param qps Arrival rate, requests per second. */
    explicit PoissonArrivals(double qps);

    SimTime nextArrival(SimTime prev, Rng &rng) const override;
    double averageQps() const override { return qps_; }

  private:
    double qps_;
};

/**
 * Gamma-renewal arrivals: same mean rate as Poisson but with a
 * configurable coefficient of variation. CV > 1 produces the bursty,
 * clustered arrivals production traces exhibit; CV = 1 degenerates
 * to Poisson.
 */
class GammaArrivals : public ArrivalProcess
{
  public:
    /**
     * @param qps Mean arrival rate, requests per second.
     * @param cv Coefficient of variation of inter-arrival gaps.
     */
    GammaArrivals(double qps, double cv);

    SimTime nextArrival(SimTime prev, Rng &rng) const override;
    double averageQps() const override { return qps_; }

    /** Configured burstiness. */
    double cv() const { return cv_; }

  private:
    double qps_;
    double cv_;
    double shape_;
    double scale_;
};

/**
 * Square-wave diurnal pattern: alternates between lowQps and highQps
 * every halfPeriod seconds, Poisson within each phase.
 */
class DiurnalArrivals : public ArrivalProcess
{
  public:
    /**
     * @param low_qps Rate in the trough phase.
     * @param high_qps Rate in the peak phase.
     * @param half_period Seconds per phase (paper: 900 s).
     * @param start_high True to begin in the peak phase.
     */
    DiurnalArrivals(double low_qps, double high_qps,
                    SimDuration half_period, bool start_high = false);

    SimTime nextArrival(SimTime prev, Rng &rng) const override;
    double averageQps() const override;

    /** Instantaneous rate at time @p t. */
    double qpsAt(SimTime t) const;

  private:
    double lowQps_;
    double highQps_;
    SimDuration halfPeriod_;
    bool startHigh_;
};

/**
 * Baseline Poisson rate with one rectangular burst of elevated rate.
 */
class BurstArrivals : public ArrivalProcess
{
  public:
    /**
     * @param base_qps Rate outside the burst.
     * @param burst_qps Rate inside the burst window.
     * @param burst_start Burst window start time.
     * @param burst_end Burst window end time.
     */
    BurstArrivals(double base_qps, double burst_qps, SimTime burst_start,
                  SimTime burst_end);

    SimTime nextArrival(SimTime prev, Rng &rng) const override;
    double averageQps() const override { return baseQps_; }

    /** Instantaneous rate at time @p t. */
    double qpsAt(SimTime t) const;

  private:
    double baseQps_;
    double burstQps_;
    SimTime burstStart_;
    SimTime burstEnd_;
};

} // namespace qoserve

#endif // QOSERVE_WORKLOAD_ARRIVAL_HH
