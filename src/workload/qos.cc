/**
 * @file
 * QoS tier definitions and deadline arithmetic.
 */

#include "workload/qos.hh"

#include "simcore/logging.hh"

namespace qoserve {

SimTime
QosTier::firstTokenDeadline(SimTime arrival) const
{
    if (interactive)
        return arrival + ttftSlo;
    // Non-interactive requests only promise completion; the first
    // token shares the completion deadline.
    return arrival + ttltSlo;
}

SimTime
QosTier::tokenDeadline(SimTime arrival, int n) const
{
    QOSERVE_ASSERT(n >= 1, "token index must be >= 1");
    if (!interactive)
        return kTimeNever;
    return arrival + ttftSlo + (n - 1) * tbtSlo;
}

SimTime
QosTier::completionDeadline(SimTime arrival, TokenCount decode_tokens) const
{
    if (interactive) {
        int n = static_cast<int>(decode_tokens.value());
        return tokenDeadline(arrival, n < 1 ? 1 : n);
    }
    return arrival + ttltSlo;
}

QosTier
interactiveTier(int id, const std::string &name, SimDuration ttft_slo,
                SimDuration tbt_slo)
{
    QosTier t;
    t.id = id;
    t.name = name;
    t.interactive = true;
    t.ttftSlo = ttft_slo;
    t.tbtSlo = tbt_slo;
    return t;
}

QosTier
batchTier(int id, const std::string &name, SimDuration ttlt_slo)
{
    QosTier t;
    t.id = id;
    t.name = name;
    t.interactive = false;
    t.ttltSlo = ttlt_slo;
    return t;
}

TierTable
paperTierTable()
{
    return {
        interactiveTier(0, "Q1", 6.0, fromMillis(50.0)),
        batchTier(1, "Q2", 600.0),
        batchTier(2, "Q3", 1800.0),
    };
}

TierTable
strictTierTable()
{
    return {
        interactiveTier(0, "Q1", 3.0, fromMillis(50.0)),
        interactiveTier(1, "Q2", 6.0, fromMillis(50.0)),
        batchTier(2, "Q3", 1000.0),
    };
}

} // namespace qoserve
