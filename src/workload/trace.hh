/**
 * @file
 * Request traces and trace synthesis.
 *
 * A trace is the complete, reproducible input to one experiment: a
 * time-ordered list of request specs (arrival time, prompt/decode
 * token counts, QoS tier, priority hint) plus per-application decode
 * statistics that stand in for the "running history of token
 * generation patterns per application" the paper's scheduler keeps
 * (§3.6), used to estimate decode time in hybrid prioritization.
 */

#ifndef QOSERVE_WORKLOAD_TRACE_HH
#define QOSERVE_WORKLOAD_TRACE_HH

#include <cstdint>
#include <vector>

#include "workload/arrival.hh"
#include "workload/dataset.hh"
#include "workload/qos.hh"

namespace qoserve {

/**
 * One content-addressed span of a prompt.
 *
 * Two requests share KV-cacheable prefix content exactly as far as
 * their segment lists agree token-by-token: equal contentId means
 * equal token content for the whole segment (a system prompt drawn
 * from a pool, or a previous conversation turn). Requests without
 * segments are wholly unique.
 */
struct PromptSegment
{
    /** Opaque content identity (equal id == equal tokens). */
    std::uint64_t contentId = 0;

    /** Segment length in tokens; positive. */
    int tokens = 0;
};

/**
 * Immutable description of a single request.
 */
struct RequestSpec
{
    /** Unique id, dense from 0 in arrival order. */
    std::uint64_t id = 0;

    /** Arrival timestamp. */
    SimTime arrival;

    /** Prompt (prefill) length in tokens. */
    int promptTokens = 0;

    /** Number of output tokens the request will generate. */
    int decodeTokens = 0;

    /** QoS tier index into the trace's TierTable. */
    int tierId = 0;

    /** Application hint: false marks a relegation-first request
     *  (e.g. free tier), true a high-priority one (§3.4). */
    bool important = true;

    /** Application id for decode-length history lookups. */
    int appId = 0;

    /** Prompt content layout for prefix caching; empty means the
     *  whole prompt is unique content. When non-empty the segment
     *  token counts sum to promptTokens. */
    std::vector<PromptSegment> promptSegments;
};

/**
 * Historic decode-length statistics of one application.
 */
struct AppStats
{
    /** Mean observed decode length, tokens. */
    double meanDecode = 0.0;

    /** Standard deviation of observed decode length, tokens. */
    double stddevDecode = 0.0;

    /**
     * Conservative decode-length estimate: mean plus two standard
     * deviations (§3.4, "over-approximate it by two standard
     * deviations").
     */
    double
    conservativeDecodeTokens() const
    {
        return meanDecode + 2.0 * stddevDecode;
    }
};

/**
 * A complete experiment input.
 */
struct Trace
{
    /** Tier definitions the tierId fields refer to. */
    TierTable tiers;

    /** Requests in non-decreasing arrival order. */
    std::vector<RequestSpec> requests;

    /** Per-application stats, indexed by RequestSpec::appId. */
    std::vector<AppStats> appStats;

    /** Average request rate of the generating process. */
    double averageQps = 0.0;
};

/**
 * Shared-prefix synthesis knobs (see TraceBuilder::sharedPrefix).
 *
 * A share-ratio fraction of requests draw a shared prompt prefix:
 * either a fresh conversation opened on one of a pool of system
 * prompts, or a continuation of an earlier conversation whose prompt
 * re-sends the whole history (previous prompt + previous answer +
 * a new user turn). Everything is sampled from a dedicated split of
 * the trace seed, so traces stay replayable and requests outside the
 * shared fraction are untouched.
 */
struct SharedPrefixConfig
{
    /** Fraction of requests given a shared prefix, in [0, 1];
     *  0 disables synthesis entirely (and byte-identically). */
    double shareRatio = 0.0;

    /** Number of distinct system prompts in the pool. */
    int numPools = 8;

    /** System-prompt length range in tokens, inclusive. */
    int poolTokensLo = 128;
    int poolTokensHi = 1024;

    /** Of the shared requests, the fraction that continue an earlier
     *  conversation rather than opening a new one, in [0, 1]. */
    double multiTurnFrac = 0.5;

    bool enabled() const { return shareRatio > 0.0; }

    /** Fatal on out-of-range values (user configuration). */
    void validate() const;
};

/**
 * Builder that synthesises traces from a dataset model, a tier mix
 * and an arrival process.
 */
class TraceBuilder
{
  public:
    TraceBuilder();

    /** Set the token-length dataset (default: Az-Code). */
    TraceBuilder &dataset(Dataset d);

    /** Set the tier table (default: paperTierTable()). */
    TraceBuilder &tiers(TierTable t);

    /**
     * Set the tier mix as fractions per tier (default: equal split,
     * the paper's 33/33/33). Must match the tier table's size and
     * sum to ~1.
     */
    TraceBuilder &tierMix(std::vector<double> mix);

    /**
     * Fraction of requests in every tier tagged as NOT important
     * (default 0: all important). §4.3 uses 0.2.
     */
    TraceBuilder &lowPriorityFraction(double f);

    /** Root seed (default 42). */
    TraceBuilder &seed(std::uint64_t s);

    /** Configure shared-prefix synthesis (default: disabled). */
    TraceBuilder &sharedPrefix(SharedPrefixConfig cfg);

    /** Generate requests until @p duration of arrivals. */
    Trace build(const ArrivalProcess &arrivals,
                SimDuration duration) const;

    /** Generate exactly @p count requests. */
    Trace buildCount(const ArrivalProcess &arrivals,
                     std::size_t count) const;

  private:
    Trace generate(const ArrivalProcess &arrivals, SimDuration duration,
                   std::size_t max_count) const;

    Dataset dataset_;
    TierTable tiers_;
    std::vector<double> tierMix_;
    double lowPriorityFraction_ = 0.0;
    std::uint64_t seed_ = 42;
    SharedPrefixConfig sharedPrefix_;
};

/** Compute per-app decode statistics over a request list. */
std::vector<AppStats> computeAppStats(
    const std::vector<RequestSpec> &requests);

} // namespace qoserve

#endif // QOSERVE_WORKLOAD_TRACE_HH
