/**
 * @file
 * QoS classes, SLO targets and deadline arithmetic.
 *
 * Mirrors §3.2 of the paper. A tier is either interactive — with TTFT
 * (time-to-first-token) and TBT (time-between-tokens) SLOs — or
 * non-interactive with a single TTLT (time-to-last-token) SLO.
 * Deadline formulas are Eqs. (1)-(3):
 *
 *   D_first = t_arrival + SLO_TTFT
 *   D_n     = t_arrival + SLO_TTFT + (n - 1) * SLO_TBT
 *   D_total = t_arrival + SLO_TTLT
 */

#ifndef QOSERVE_WORKLOAD_QOS_HH
#define QOSERVE_WORKLOAD_QOS_HH

#include <string>
#include <vector>

#include "core/units.hh"

namespace qoserve {

/**
 * One QoS service tier.
 */
struct QosTier
{
    /** Position of this tier in its TierTable. */
    int id = 0;

    /** Display name, e.g. "Q1". */
    std::string name;

    /** True for interactive (TTFT+TBT) tiers. */
    bool interactive = false;

    /** TTFT SLO in seconds (interactive tiers only). */
    SimDuration ttftSlo = kDurationNever;

    /** TBT SLO in seconds (interactive tiers only). */
    SimDuration tbtSlo = kDurationNever;

    /** TTLT SLO in seconds (non-interactive tiers only). */
    SimDuration ttltSlo = kDurationNever;

    /** Deadline for the first output token (Eq. 1). */
    SimTime firstTokenDeadline(SimTime arrival) const;

    /**
     * Deadline for the n-th output token, n >= 1 (Eq. 2).
     *
     * Non-interactive tiers have no per-token deadline; returns
     * kTimeNever for them.
     */
    SimTime tokenDeadline(SimTime arrival, int n) const;

    /**
     * Completion deadline (Eq. 3 for non-interactive tiers; for
     * interactive tiers this is the deadline of the final token).
     *
     * @param decode_tokens Number of output tokens the request emits.
     */
    SimTime completionDeadline(SimTime arrival, TokenCount decode_tokens) const;
};

/** An indexed set of tiers used by one experiment. */
using TierTable = std::vector<QosTier>;

/** Make an interactive tier with the given SLOs. */
QosTier interactiveTier(int id, const std::string &name,
                        SimDuration ttft_slo, SimDuration tbt_slo);

/** Make a non-interactive tier with the given TTLT SLO. */
QosTier batchTier(int id, const std::string &name, SimDuration ttlt_slo);

/**
 * The paper's Table 3 tier set: Q1 interactive (TTFT 6 s, TBT 50 ms),
 * Q2 batch (TTLT 600 s), Q3 batch (TTLT 1800 s).
 */
TierTable paperTierTable();

/**
 * The alternative SLO set from §4.4.2: Q1 (3 s, 50 ms),
 * Q2 (6 s, 50 ms), Q3 (TTLT 1000 s).
 */
TierTable strictTierTable();

} // namespace qoserve

#endif // QOSERVE_WORKLOAD_QOS_HH
