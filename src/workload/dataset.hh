/**
 * @file
 * Token-length dataset models.
 *
 * The paper evaluates on ShareGPT and two Azure production traces
 * (conversation and code). Those traces are not redistributable, so
 * each dataset is modelled as a pair of lognormal distributions over
 * prompt and decode token counts, fitted to the published p50/p90
 * quantiles (Table 2). A lognormal matches the heavy right tail of
 * real LLM length distributions, and pinning two quantiles determines
 * it exactly.
 */

#ifndef QOSERVE_WORKLOAD_DATASET_HH
#define QOSERVE_WORKLOAD_DATASET_HH

#include <string>

#include "simcore/rng.hh"

namespace qoserve {

/**
 * A lognormal distribution specified by its p50/p90 quantiles.
 */
class LengthDistribution
{
  public:
    /**
     * Fit a lognormal to the given quantiles.
     *
     * @param p50 Median token count.
     * @param p90 90th-percentile token count (> p50).
     * @param min_len Samples are clamped to at least this.
     * @param max_len Samples are clamped to at most this.
     */
    LengthDistribution(double p50, double p90, int min_len = 1,
                       int max_len = 32768);

    /** Draw a token count. */
    int sample(Rng &rng) const;

    /** Median of the fitted distribution. */
    double p50() const;

    /** 90th percentile of the fitted distribution. */
    double p90() const;

    /** Mean of the fitted (unclamped) lognormal. */
    double mean() const;

    /** Standard deviation of the fitted (unclamped) lognormal. */
    double stddev() const;

    /** Underlying normal location parameter. */
    double mu() const { return mu_; }

    /** Underlying normal scale parameter. */
    double sigma() const { return sigma_; }

  private:
    double mu_;
    double sigma_;
    int minLen_;
    int maxLen_;
};

/**
 * A dataset: joint prompt/decode length model.
 */
struct Dataset
{
    /** Display name, e.g. "Az-Code". */
    std::string name;

    /** Prompt (prefill) token count distribution. */
    LengthDistribution prompt;

    /** Decode (output) token count distribution. */
    LengthDistribution decode;
};

/** ShareGPT: long prompts, long decodes (Table 2 row 1). */
Dataset sharegpt();

/** Azure Conversation trace (Table 2 row 2). */
Dataset azureConv();

/** Azure Code trace: long prompts, very short decodes (row 3). */
Dataset azureCode();

/** Look up a preset by name ("sharegpt", "azure-conv", "azure-code"). */
Dataset datasetByName(const std::string &name);

} // namespace qoserve

#endif // QOSERVE_WORKLOAD_DATASET_HH
