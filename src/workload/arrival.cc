/**
 * @file
 * Arrival process implementations.
 */

#include "workload/arrival.hh"

#include <cmath>

#include "simcore/logging.hh"

namespace qoserve {

namespace {

/**
 * Sample the next event of a piecewise-constant-rate Poisson process.
 *
 * Draws an exponential gap at the current rate; if the candidate
 * arrival falls past the end of the current constant-rate segment,
 * restarts from the boundary (exact, by memorylessness).
 *
 * @param prev Start time.
 * @param rng Random stream.
 * @param rate_at Callable giving the rate at a time.
 * @param segment_end_after Callable giving the end of the
 *        constant-rate segment containing a time.
 */
template <typename RateFn, typename SegEndFn>
SimTime
nextPiecewisePoisson(SimTime prev, Rng &rng, RateFn rate_at,
                     SegEndFn segment_end_after)
{
    SimTime t = prev;
    for (int guard = 0; guard < 1000000; ++guard) {
        double rate = rate_at(t);
        QOSERVE_ASSERT(rate > 0.0, "arrival rate must be positive");
        SimTime candidate = t + rng.exponential(rate);
        SimTime seg_end = segment_end_after(t);
        if (candidate <= seg_end)
            return candidate;
        t = seg_end;
    }
    QOSERVE_PANIC("piecewise Poisson failed to converge");
}

} // namespace

PoissonArrivals::PoissonArrivals(double qps)
    : qps_(qps)
{
    QOSERVE_ASSERT(qps > 0.0, "QPS must be positive");
}

SimTime
PoissonArrivals::nextArrival(SimTime prev, Rng &rng) const
{
    return prev + rng.exponential(qps_);
}

GammaArrivals::GammaArrivals(double qps, double cv)
    : qps_(qps), cv_(cv)
{
    QOSERVE_ASSERT(qps > 0.0, "QPS must be positive");
    QOSERVE_ASSERT(cv > 0.0, "CV must be positive");
    // Gamma(k, theta): mean = k*theta, CV = 1/sqrt(k).
    shape_ = 1.0 / (cv * cv);
    scale_ = 1.0 / (qps * shape_);
}

SimTime
GammaArrivals::nextArrival(SimTime prev, Rng &rng) const
{
    return prev + rng.gamma(shape_, scale_);
}

DiurnalArrivals::DiurnalArrivals(double low_qps, double high_qps,
                                 SimDuration half_period, bool start_high)
    : lowQps_(low_qps), highQps_(high_qps), halfPeriod_(half_period),
      startHigh_(start_high)
{
    QOSERVE_ASSERT(low_qps > 0.0 && high_qps > 0.0, "rates must be positive");
    QOSERVE_ASSERT(half_period > 0.0, "half period must be positive");
}

double
DiurnalArrivals::qpsAt(SimTime t) const
{
    auto phase = static_cast<std::int64_t>(std::floor(t.seconds() / halfPeriod_));
    bool high = (phase % 2 == 0) == startHigh_;
    return high ? highQps_ : lowQps_;
}

double
DiurnalArrivals::averageQps() const
{
    return 0.5 * (lowQps_ + highQps_);
}

SimTime
DiurnalArrivals::nextArrival(SimTime prev, Rng &rng) const
{
    auto rate_at = [this](SimTime t) { return qpsAt(t); };
    auto seg_end = [this](SimTime t) {
        auto phase = static_cast<std::int64_t>(std::floor(t.seconds() / halfPeriod_));
        return SimTime((phase + 1) * halfPeriod_);
    };
    return nextPiecewisePoisson(prev, rng, rate_at, seg_end);
}

BurstArrivals::BurstArrivals(double base_qps, double burst_qps,
                             SimTime burst_start, SimTime burst_end)
    : baseQps_(base_qps), burstQps_(burst_qps), burstStart_(burst_start),
      burstEnd_(burst_end)
{
    QOSERVE_ASSERT(base_qps > 0.0 && burst_qps > 0.0,
                   "rates must be positive");
    QOSERVE_ASSERT(burst_start < burst_end, "empty burst window");
}

double
BurstArrivals::qpsAt(SimTime t) const
{
    return (t >= burstStart_ && t < burstEnd_) ? burstQps_ : baseQps_;
}

SimTime
BurstArrivals::nextArrival(SimTime prev, Rng &rng) const
{
    auto rate_at = [this](SimTime t) { return qpsAt(t); };
    auto seg_end = [this](SimTime t) {
        if (t < burstStart_)
            return burstStart_;
        if (t < burstEnd_)
            return burstEnd_;
        return kTimeNever;
    };
    return nextPiecewisePoisson(prev, rng, rate_at, seg_end);
}

} // namespace qoserve
