/**
 * @file
 * Trace synthesis implementation.
 */

#include "workload/trace.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "simcore/logging.hh"

namespace qoserve {

namespace {

// Content-id derivation for synthesised shared prefixes. Ids only
// need to be equal for equal content and distinct otherwise; the
// SplitMix64 finalizer gives well-spread deterministic values.
constexpr std::uint64_t kPoolSalt = 0xA5A5A5A5DEADBEEFull;
constexpr std::uint64_t kTurnSalt = 0xC3C3C3C3CAFEF00Dull;
constexpr std::uint64_t kAnswerSalt = 0x96969696FEEDFACEull;

/** Requests re-sending conversation history stop growing past this
 *  prompt length and open a fresh conversation instead. */
constexpr std::int64_t kMaxSharedPromptTokens = 16384;

/** Live conversations eligible for continuation (oldest recycled). */
constexpr std::size_t kConversationRing = 1024;

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t
poolContent(int pool)
{
    return mix64(kPoolSalt ^ static_cast<std::uint64_t>(pool));
}

std::uint64_t
turnContent(std::uint64_t conv, int turn)
{
    return mix64(mix64(kTurnSalt ^ conv) ^
                 static_cast<std::uint64_t>(turn));
}

std::uint64_t
answerContent(std::uint64_t conv, int turn)
{
    return mix64(mix64(kAnswerSalt ^ conv) ^
                 static_cast<std::uint64_t>(turn));
}

} // namespace

void
SharedPrefixConfig::validate() const
{
    if (shareRatio < 0.0 || shareRatio > 1.0)
        QOSERVE_FATAL("share ratio must be in [0, 1], got ", shareRatio);
    if (numPools < 1)
        QOSERVE_FATAL("prefix pool count must be positive, got ",
                      numPools);
    if (poolTokensLo < 1 || poolTokensHi < poolTokensLo) {
        QOSERVE_FATAL("bad pool token range [", poolTokensLo, ", ",
                      poolTokensHi, "]");
    }
    if (multiTurnFrac < 0.0 || multiTurnFrac > 1.0) {
        QOSERVE_FATAL("multi-turn fraction must be in [0, 1], got ",
                      multiTurnFrac);
    }
}

TraceBuilder::TraceBuilder()
    : dataset_(azureCode()), tiers_(paperTierTable())
{
}

TraceBuilder &
TraceBuilder::dataset(Dataset d)
{
    dataset_ = std::move(d);
    return *this;
}

TraceBuilder &
TraceBuilder::tiers(TierTable t)
{
    QOSERVE_ASSERT(!t.empty(), "tier table must not be empty");
    tiers_ = std::move(t);
    return *this;
}

TraceBuilder &
TraceBuilder::tierMix(std::vector<double> mix)
{
    tierMix_ = std::move(mix);
    return *this;
}

TraceBuilder &
TraceBuilder::lowPriorityFraction(double f)
{
    QOSERVE_ASSERT(f >= 0.0 && f <= 1.0, "fraction out of range");
    lowPriorityFraction_ = f;
    return *this;
}

TraceBuilder &
TraceBuilder::seed(std::uint64_t s)
{
    seed_ = s;
    return *this;
}

TraceBuilder &
TraceBuilder::sharedPrefix(SharedPrefixConfig cfg)
{
    sharedPrefix_ = cfg;
    return *this;
}

Trace
TraceBuilder::build(const ArrivalProcess &arrivals,
                    SimDuration duration) const
{
    return generate(arrivals, duration,
                    std::numeric_limits<std::size_t>::max());
}

Trace
TraceBuilder::buildCount(const ArrivalProcess &arrivals,
                         std::size_t count) const
{
    return generate(arrivals, kDurationNever, count);
}

Trace
TraceBuilder::generate(const ArrivalProcess &arrivals,
                       SimDuration duration, std::size_t max_count) const
{
    std::vector<double> mix = tierMix_;
    if (mix.empty())
        mix.assign(tiers_.size(), 1.0 / tiers_.size());
    if (mix.size() != tiers_.size())
        QOSERVE_FATAL("tier mix size (", mix.size(),
                      ") != tier count (", tiers_.size(), ")");
    double total = std::accumulate(mix.begin(), mix.end(), 0.0);
    if (std::abs(total - 1.0) > 1e-6)
        QOSERVE_FATAL("tier mix must sum to 1, got ", total);

    Rng root(seed_);
    Rng arrival_rng = root.split("arrivals");
    Rng length_rng = root.split("lengths");
    Rng tier_rng = root.split("tiers");
    Rng prio_rng = root.split("priority");

    // Shared-prefix synthesis draws from its own split of the root
    // seed, so enabling it never perturbs the base streams — and at
    // share ratio zero the generated trace is unchanged.
    struct Conversation
    {
        std::vector<PromptSegment> segments;
        std::uint64_t answerContent = 0;
        int answerTokens = 0;
        std::uint64_t convId = 0;
        int turn = 0;
    };
    const SharedPrefixConfig &sp = sharedPrefix_;
    Rng prefix_rng = root.split("prefix");
    std::vector<Conversation> conversations;
    std::vector<int> pool_tokens;
    std::uint64_t next_conv = 0;
    if (sp.enabled()) {
        sp.validate();
        pool_tokens.reserve(static_cast<std::size_t>(sp.numPools));
        for (int p = 0; p < sp.numPools; ++p) {
            pool_tokens.push_back(static_cast<int>(
                prefix_rng.uniformInt(sp.poolTokensLo, sp.poolTokensHi)));
        }
    }

    Trace trace;
    trace.tiers = tiers_;
    trace.averageQps = arrivals.averageQps();

    SimTime t;
    while (trace.requests.size() < max_count) {
        t = arrivals.nextArrival(t, arrival_rng);
        if (t > SimTime{duration})
            break;

        RequestSpec spec;
        spec.id = trace.requests.size();
        spec.arrival = t;
        spec.promptTokens = dataset_.prompt.sample(length_rng);
        spec.decodeTokens = dataset_.decode.sample(length_rng);

        double u = tier_rng.uniform();
        double acc = 0.0;
        spec.tierId = static_cast<int>(tiers_.size()) - 1;
        for (std::size_t i = 0; i < mix.size(); ++i) {
            acc += mix[i];
            if (u < acc) {
                spec.tierId = static_cast<int>(i);
                break;
            }
        }
        // One application per tier: the paper assigns each third of
        // the dataset to a distinct application with its own SLO.
        spec.appId = spec.tierId;
        spec.important = !prio_rng.bernoulli(lowPriorityFraction_);

        if (sp.enabled() && prefix_rng.uniform() < sp.shareRatio) {
            // The sampled prompt length becomes the new user turn;
            // the shared prefix (system prompt or conversation
            // history) is prepended on top of it.
            bool continued = false;
            if (!conversations.empty() &&
                prefix_rng.bernoulli(sp.multiTurnFrac)) {
                auto idx = static_cast<std::size_t>(prefix_rng.uniformInt(
                    0, static_cast<std::int64_t>(conversations.size()) - 1));
                Conversation &c = conversations[idx];
                std::int64_t history = c.answerTokens;
                for (const PromptSegment &s : c.segments)
                    history += s.tokens;
                if (history + spec.promptTokens <= kMaxSharedPromptTokens) {
                    c.segments.push_back(
                        {c.answerContent, c.answerTokens});
                    ++c.turn;
                    c.segments.push_back(
                        {turnContent(c.convId, c.turn), spec.promptTokens});
                    spec.promptSegments = c.segments;
                    spec.promptTokens =
                        static_cast<int>(history + spec.promptTokens);
                    c.answerContent = answerContent(c.convId, c.turn);
                    c.answerTokens = spec.decodeTokens;
                    continued = true;
                }
            }
            if (!continued) {
                // Fresh conversation opened on a pooled system prompt
                // (also the fallback when a continuation would exceed
                // the prompt-length cap).
                auto p = static_cast<std::size_t>(
                    prefix_rng.uniformInt(0, sp.numPools - 1));
                std::uint64_t conv = next_conv++;
                Conversation c;
                c.convId = conv;
                c.segments.push_back(
                    {poolContent(static_cast<int>(p)), pool_tokens[p]});
                c.segments.push_back(
                    {turnContent(conv, 0), spec.promptTokens});
                c.answerContent = answerContent(conv, 0);
                c.answerTokens = spec.decodeTokens;
                spec.promptSegments = c.segments;
                spec.promptTokens += pool_tokens[p];
                if (conversations.size() < kConversationRing)
                    conversations.push_back(std::move(c));
                else
                    conversations[conv % kConversationRing] = std::move(c);
            }
        }

        trace.requests.push_back(spec);
    }

    trace.appStats = computeAppStats(trace.requests);
    return trace;
}

std::vector<AppStats>
computeAppStats(const std::vector<RequestSpec> &requests)
{
    int max_app = -1;
    for (const auto &r : requests)
        max_app = std::max(max_app, r.appId);

    std::vector<AppStats> stats(max_app + 1);
    std::vector<double> sum(max_app + 1, 0.0);
    std::vector<double> sumsq(max_app + 1, 0.0);
    std::vector<std::int64_t> count(max_app + 1, 0);

    for (const auto &r : requests) {
        sum[r.appId] += r.decodeTokens;
        sumsq[r.appId] +=
            static_cast<double>(r.decodeTokens) * r.decodeTokens;
        ++count[r.appId];
    }

    for (int a = 0; a <= max_app; ++a) {
        if (count[a] == 0)
            continue;
        double n = static_cast<double>(count[a]);
        double mean = sum[a] / n;
        double var = std::max(0.0, sumsq[a] / n - mean * mean);
        stats[a].meanDecode = mean;
        stats[a].stddevDecode = std::sqrt(var);
    }
    return stats;
}

} // namespace qoserve
