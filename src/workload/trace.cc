/**
 * @file
 * Trace synthesis implementation.
 */

#include "workload/trace.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "simcore/logging.hh"

namespace qoserve {

TraceBuilder::TraceBuilder()
    : dataset_(azureCode()), tiers_(paperTierTable())
{
}

TraceBuilder &
TraceBuilder::dataset(Dataset d)
{
    dataset_ = std::move(d);
    return *this;
}

TraceBuilder &
TraceBuilder::tiers(TierTable t)
{
    QOSERVE_ASSERT(!t.empty(), "tier table must not be empty");
    tiers_ = std::move(t);
    return *this;
}

TraceBuilder &
TraceBuilder::tierMix(std::vector<double> mix)
{
    tierMix_ = std::move(mix);
    return *this;
}

TraceBuilder &
TraceBuilder::lowPriorityFraction(double f)
{
    QOSERVE_ASSERT(f >= 0.0 && f <= 1.0, "fraction out of range");
    lowPriorityFraction_ = f;
    return *this;
}

TraceBuilder &
TraceBuilder::seed(std::uint64_t s)
{
    seed_ = s;
    return *this;
}

Trace
TraceBuilder::build(const ArrivalProcess &arrivals,
                    SimDuration duration) const
{
    return generate(arrivals, duration,
                    std::numeric_limits<std::size_t>::max());
}

Trace
TraceBuilder::buildCount(const ArrivalProcess &arrivals,
                         std::size_t count) const
{
    return generate(arrivals, kTimeNever, count);
}

Trace
TraceBuilder::generate(const ArrivalProcess &arrivals,
                       SimDuration duration, std::size_t max_count) const
{
    std::vector<double> mix = tierMix_;
    if (mix.empty())
        mix.assign(tiers_.size(), 1.0 / tiers_.size());
    if (mix.size() != tiers_.size())
        QOSERVE_FATAL("tier mix size (", mix.size(),
                      ") != tier count (", tiers_.size(), ")");
    double total = std::accumulate(mix.begin(), mix.end(), 0.0);
    if (std::abs(total - 1.0) > 1e-6)
        QOSERVE_FATAL("tier mix must sum to 1, got ", total);

    Rng root(seed_);
    Rng arrival_rng = root.split("arrivals");
    Rng length_rng = root.split("lengths");
    Rng tier_rng = root.split("tiers");
    Rng prio_rng = root.split("priority");

    Trace trace;
    trace.tiers = tiers_;
    trace.averageQps = arrivals.averageQps();

    SimTime t = 0.0;
    while (trace.requests.size() < max_count) {
        t = arrivals.nextArrival(t, arrival_rng);
        if (t > duration)
            break;

        RequestSpec spec;
        spec.id = trace.requests.size();
        spec.arrival = t;
        spec.promptTokens = dataset_.prompt.sample(length_rng);
        spec.decodeTokens = dataset_.decode.sample(length_rng);

        double u = tier_rng.uniform();
        double acc = 0.0;
        spec.tierId = static_cast<int>(tiers_.size()) - 1;
        for (std::size_t i = 0; i < mix.size(); ++i) {
            acc += mix[i];
            if (u < acc) {
                spec.tierId = static_cast<int>(i);
                break;
            }
        }
        // One application per tier: the paper assigns each third of
        // the dataset to a distinct application with its own SLO.
        spec.appId = spec.tierId;
        spec.important = !prio_rng.bernoulli(lowPriorityFraction_);

        trace.requests.push_back(spec);
    }

    trace.appStats = computeAppStats(trace.requests);
    return trace;
}

std::vector<AppStats>
computeAppStats(const std::vector<RequestSpec> &requests)
{
    int max_app = -1;
    for (const auto &r : requests)
        max_app = std::max(max_app, r.appId);

    std::vector<AppStats> stats(max_app + 1);
    std::vector<double> sum(max_app + 1, 0.0);
    std::vector<double> sumsq(max_app + 1, 0.0);
    std::vector<std::int64_t> count(max_app + 1, 0);

    for (const auto &r : requests) {
        sum[r.appId] += r.decodeTokens;
        sumsq[r.appId] +=
            static_cast<double>(r.decodeTokens) * r.decodeTokens;
        ++count[r.appId];
    }

    for (int a = 0; a <= max_app; ++a) {
        if (count[a] == 0)
            continue;
        double n = static_cast<double>(count[a]);
        double mean = sum[a] / n;
        double var = std::max(0.0, sumsq[a] / n - mean * mean);
        stats[a].meanDecode = mean;
        stats[a].stddevDecode = std::sqrt(var);
    }
    return stats;
}

} // namespace qoserve
