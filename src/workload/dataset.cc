/**
 * @file
 * Dataset model implementation and Table 2 presets.
 */

#include "workload/dataset.hh"

#include <algorithm>
#include <cmath>

#include "simcore/logging.hh"

namespace qoserve {

namespace {

/** Standard normal quantile at p = 0.9. */
constexpr double kZ90 = 1.2815515655446004;

} // namespace

LengthDistribution::LengthDistribution(double p50, double p90, int min_len,
                                       int max_len)
    : minLen_(min_len), maxLen_(max_len)
{
    QOSERVE_ASSERT(p50 > 0 && p90 > p50, "quantiles must satisfy 0<p50<p90");
    QOSERVE_ASSERT(min_len >= 1 && max_len > min_len, "bad length bounds");
    // For a lognormal, ln X ~ N(mu, sigma): median = e^mu and
    // p90 = e^(mu + z90 * sigma).
    mu_ = std::log(p50);
    sigma_ = std::log(p90 / p50) / kZ90;
}

int
LengthDistribution::sample(Rng &rng) const
{
    double v = rng.lognormal(mu_, sigma_);
    int len = static_cast<int>(std::lround(v));
    return std::clamp(len, minLen_, maxLen_);
}

double
LengthDistribution::p50() const
{
    return std::exp(mu_);
}

double
LengthDistribution::p90() const
{
    return std::exp(mu_ + kZ90 * sigma_);
}

double
LengthDistribution::mean() const
{
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double
LengthDistribution::stddev() const
{
    double s2 = sigma_ * sigma_;
    return mean() * std::sqrt(std::exp(s2) - 1.0);
}

namespace {

// Prompts are clamped to the serving context window of the Table 1
// models (8K for Llama3-8B): real traces cannot exceed what the
// model accepts, and the unclamped lognormal tail would otherwise
// overweight multi-10K prompts the fitted quantiles say are rare.
constexpr int kMaxPromptTokens = 8192;
constexpr int kMaxDecodeTokens = 2048;

} // namespace

Dataset
sharegpt()
{
    return Dataset{
        "ShareGPT",
        LengthDistribution(1730, 5696, 1, kMaxPromptTokens),
        LengthDistribution(415, 834, 1, kMaxDecodeTokens),
    };
}

Dataset
azureConv()
{
    return Dataset{
        "Az-Conv",
        LengthDistribution(928, 3830, 1, kMaxPromptTokens),
        LengthDistribution(41, 342, 1, kMaxDecodeTokens),
    };
}

Dataset
azureCode()
{
    return Dataset{
        "Az-Code",
        LengthDistribution(1930, 6251, 1, kMaxPromptTokens),
        LengthDistribution(8, 43, 1, kMaxDecodeTokens),
    };
}

Dataset
datasetByName(const std::string &name)
{
    if (name == "sharegpt")
        return sharegpt();
    if (name == "azure-conv")
        return azureConv();
    if (name == "azure-code")
        return azureCode();
    QOSERVE_FATAL("unknown dataset preset: ", name);
}

} // namespace qoserve
