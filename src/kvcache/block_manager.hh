/**
 * @file
 * Paged KV-cache block manager.
 *
 * Models vLLM-style PagedAttention memory management: the replica's
 * KV capacity is divided into fixed-size blocks; each request owns a
 * chain of blocks covering its cached tokens. The scheduler consults
 * the manager before adding prefill tokens or admitting new decodes,
 * which is what creates memory pressure and bounds batch size in the
 * simulation — the same constraint the paper's selective-preemption
 * policy is designed around (§3.4).
 *
 * On top of the private per-owner chains sits a shared-block layer
 * used by the prefix cache (src/prefixcache): a full block computed
 * by one request can be converted into a reference-counted shared
 * block that later requests attach to instead of recomputing it. A
 * shared block's refcount counts every request holding it plus one
 * for the cache itself while the block stays in the radix tree; a
 * block whose only reference is the cache is *evictable* and can be
 * reclaimed under memory pressure through the eviction handler.
 */

#ifndef QOSERVE_KVCACHE_BLOCK_MANAGER_HH
#define QOSERVE_KVCACHE_BLOCK_MANAGER_HH

#include <cstdint>
#include <functional>

#include "core/units.hh"
#include <unordered_map>
#include <vector>

namespace qoserve {

/** Identifier of the request owning a block chain. */
using KvOwnerId = std::uint64_t;

/** Identifier of a shared (prefix-cached) KV block. */
using KvBlockId = std::uint64_t;

/** One owner's usage in an audit snapshot (see ownerUsage()). */
struct KvOwnerUsage
{
    KvOwnerId owner = 0;
    std::int64_t tokens = 0;
    std::int64_t blocks = 0;

    /** Tokens the owner holds through shared (prefix-cached) blocks. */
    std::int64_t sharedTokens = 0;

    /** Shared blocks the owner references. */
    std::int64_t sharedBlocks = 0;
};

/** One shared block's state in an audit snapshot (sharedBlockTable()). */
struct KvSharedBlockInfo
{
    KvBlockId id = 0;
    std::int64_t refs = 0;
    bool cacheHeld = false;
};

/**
 * Fixed-size-block KV-cache allocator.
 *
 * Tracks, per owner, how many tokens are cached and how many blocks
 * that consumes. Allocation is all-or-nothing: a request either gets
 * blocks for all requested tokens or none.
 */
class BlockManager
{
  public:
    /**
     * Callback invoked by grow() when free blocks alone cannot cover
     * a request but evictable cached blocks exist. Receives the
     * number of blocks wanted and returns the number actually freed.
     */
    using EvictionHandler = std::function<std::int64_t(std::int64_t)>;

    /**
     * @param capacity_tokens Total KV capacity in tokens; must be
     *        positive and hold at least one block (fatal otherwise —
     *        a zero-capacity cache is a configuration error).
     * @param block_tokens Tokens per block (vLLM default: 16); must
     *        be positive.
     */
    explicit BlockManager(TokenCount capacity_tokens,
                          TokenCount block_tokens = TokenCount{16});

    /** Total block count. */
    std::int64_t totalBlocks() const { return totalBlocks_; }

    /** Blocks currently free. */
    std::int64_t freeBlocks() const { return totalBlocks_ - usedBlocks_; }

    /** Blocks currently allocated (private chains plus shared blocks). */
    std::int64_t usedBlocks() const { return usedBlocks_; }

    /**
     * Blocks obtainable without preempting any request: free blocks
     * plus cached blocks whose only reference is the cache. Equals
     * freeBlocks() whenever the prefix cache is disabled or empty.
     */
    std::int64_t availableBlocks() const
    {
        return freeBlocks() + evictableBlocks_;
    }

    /** Tokens per block. */
    int blockTokens() const { return blockTokens_; }

    /** Fraction of blocks in use, in [0, 1]. */
    double utilization() const;

    /**
     * Blocks needed to extend @p owner by @p new_tokens tokens.
     *
     * Accounts for slack already present in the owner's last
     * partially-filled block. Shared blocks are always full, so only
     * the private region enters the computation.
     */
    std::int64_t blocksNeeded(KvOwnerId owner,
                              TokenCount new_tokens) const;

    /** True if grow() for the same arguments would succeed. */
    bool canGrow(KvOwnerId owner, TokenCount new_tokens) const;

    /**
     * Extend @p owner's cached tokens by @p new_tokens.
     *
     * If free blocks alone cannot satisfy the request but evictable
     * cached blocks exist, the eviction handler (when installed) is
     * asked to reclaim the shortfall first.
     *
     * @return True on success; false (with no state change beyond any
     *         evictions performed) if the required blocks are not
     *         available.
     */
    bool grow(KvOwnerId owner, TokenCount new_tokens);

    /** Tokens privately cached for @p owner (0 if unknown). */
    std::int64_t ownedTokens(KvOwnerId owner) const;

    /** Private blocks currently held by @p owner (0 if unknown). */
    std::int64_t ownedBlocks(KvOwnerId owner) const;

    /** True if @p owner has an allocation record (possibly empty). */
    bool owns(KvOwnerId owner) const
    {
        return owners_.find(owner) != owners_.end();
    }

    /**
     * Release every block owned by @p owner, dropping its references
     * on shared blocks (a shared block whose refcount reaches zero is
     * freed; one left holding only the cache reference becomes
     * evictable).
     *
     * Freeing an owner with no allocation record — a double free, or
     * a free of a request that never allocated — panics: both point
     * at scheduler bookkeeping corruption that would otherwise decay
     * silently into wrong capacity numbers. Callers completing
     * requests that may legitimately never have allocated check
     * owns() first.
     */
    void release(KvOwnerId owner);

    /**
     * Release every block of every owner at once — the crash path: a
     * failed replica's cache dies with the process, so no per-owner
     * bookkeeping survives to double-free later. Shared blocks die
     * too; the prefix cache must drop its tree separately (it holds
     * block ids, not block state).
     *
     * @return Blocks freed.
     */
    std::int64_t releaseAll();

    /** Number of distinct owners holding blocks. */
    std::size_t numOwners() const { return owners_.size(); }

    /**
     * Per-owner usage snapshot for the invariant auditor and
     * diagnostics, sorted by owner id (deterministic order).
     */
    std::vector<KvOwnerUsage> ownerUsage() const;

    // ------------------------------------------------------------------
    // Shared-block layer (prefix cache support).
    // ------------------------------------------------------------------

    /** Install the eviction handler (prefix cache reclaim hook). */
    void setEvictionHandler(EvictionHandler handler)
    {
        evictionHandler_ = std::move(handler);
    }

    /**
     * Cap on cache-held blocks. convertToCached() refuses to push the
     * cache-held count past the watermark; the prefix cache evicts to
     * stay under it. Must be at least one block.
     */
    void setCacheWatermark(std::int64_t blocks);

    /** Cache-held block cap (0 until configured). */
    std::int64_t cacheWatermark() const { return cacheWatermark_; }

    /** Shared blocks currently held by the cache (in the radix tree). */
    std::int64_t cacheHeldBlocks() const { return cacheHeldBlocks_; }

    /** Cache-held blocks whose only reference is the cache. */
    std::int64_t evictableBlocks() const { return evictableBlocks_; }

    /** Total shared blocks (cache-held or not). */
    std::int64_t sharedBlockCount() const
    {
        return static_cast<std::int64_t>(shared_.size());
    }

    /**
     * Convert @p count full blocks of @p owner's private region into
     * cache-held shared blocks the owner keeps referencing. The
     * owner must hold at least @p count full private blocks and the
     * conversion must fit under the cache watermark (both enforced —
     * callers size the request first). No physical blocks move, so
     * usedBlocks() is unchanged.
     *
     * @return The new block ids, in prefix order (monotonic ids, so
     *         parents always sort before children — the eviction
     *         tie-break relies on this).
     */
    std::vector<KvBlockId> convertToCached(KvOwnerId owner, int count);

    /**
     * Add @p owner as a reference holder on each of @p ids (a cache
     * hit: the owner reuses the blocks instead of recomputing them).
     * Each id must name a live shared block.
     */
    void attachShared(KvOwnerId owner, const std::vector<KvBlockId> &ids);

    /**
     * Replace @p owner's private copies of already-cached blocks with
     * references to the shared copies in @p ids, freeing the
     * duplicate physical blocks (one full private block per id). The
     * owner must hold at least ids.size() full private blocks.
     */
    void dedupToShared(KvOwnerId owner, const std::vector<KvBlockId> &ids);

    /**
     * Drop the cache's reference on shared block @p id (eviction).
     * Only valid while the block is cache-held.
     *
     * @return True if the block's refcount reached zero and its
     *         physical block was freed.
     */
    bool dropCacheRef(KvBlockId id);

    /** Refcount of shared block @p id (0 if unknown). */
    std::int64_t sharedRefs(KvBlockId id) const;

    /** Tokens @p owner holds through shared blocks (0 if unknown). */
    std::int64_t sharedTokens(KvOwnerId owner) const;

    /** Shared blocks @p owner references (0 if unknown). */
    std::int64_t ownerSharedBlocks(KvOwnerId owner) const;

    /** Shared-block ids @p owner references (empty if unknown). */
    std::vector<KvBlockId> ownerSharedIds(KvOwnerId owner) const;

    /**
     * Shared-block snapshot for the invariant auditor, sorted by
     * block id (deterministic order).
     */
    std::vector<KvSharedBlockInfo> sharedBlockTable() const;

  private:
    struct Ownership
    {
        std::int64_t tokens = 0;
        std::int64_t blocks = 0;
        std::int64_t sharedTokens = 0;
        std::vector<KvBlockId> sharedIds;
    };

    struct SharedBlock
    {
        std::int64_t refs = 0;
        bool cacheHeld = false;
    };

    int blockTokens_;
    std::int64_t totalBlocks_;
    std::int64_t usedBlocks_ = 0;
    std::unordered_map<KvOwnerId, Ownership> owners_;

    std::unordered_map<KvBlockId, SharedBlock> shared_;
    KvBlockId nextSharedId_ = 1;
    std::int64_t cacheHeldBlocks_ = 0;
    std::int64_t evictableBlocks_ = 0;
    std::int64_t cacheWatermark_ = 0;
    EvictionHandler evictionHandler_;
};

} // namespace qoserve

#endif // QOSERVE_KVCACHE_BLOCK_MANAGER_HH
