/**
 * @file
 * Paged KV-cache block manager.
 *
 * Models vLLM-style PagedAttention memory management: the replica's
 * KV capacity is divided into fixed-size blocks; each request owns a
 * chain of blocks covering its cached tokens. The scheduler consults
 * the manager before adding prefill tokens or admitting new decodes,
 * which is what creates memory pressure and bounds batch size in the
 * simulation — the same constraint the paper's selective-preemption
 * policy is designed around (§3.4).
 */

#ifndef QOSERVE_KVCACHE_BLOCK_MANAGER_HH
#define QOSERVE_KVCACHE_BLOCK_MANAGER_HH

#include <cstdint>
#include <unordered_map>

namespace qoserve {

/** Identifier of the request owning a block chain. */
using KvOwnerId = std::uint64_t;

/**
 * Fixed-size-block KV-cache allocator.
 *
 * Tracks, per owner, how many tokens are cached and how many blocks
 * that consumes. Allocation is all-or-nothing: a request either gets
 * blocks for all requested tokens or none.
 */
class BlockManager
{
  public:
    /**
     * @param capacity_tokens Total KV capacity in tokens.
     * @param block_tokens Tokens per block (vLLM default: 16).
     */
    explicit BlockManager(std::int64_t capacity_tokens,
                          int block_tokens = 16);

    /** Total block count. */
    std::int64_t totalBlocks() const { return totalBlocks_; }

    /** Blocks currently free. */
    std::int64_t freeBlocks() const { return totalBlocks_ - usedBlocks_; }

    /** Blocks currently allocated. */
    std::int64_t usedBlocks() const { return usedBlocks_; }

    /** Tokens per block. */
    int blockTokens() const { return blockTokens_; }

    /** Fraction of blocks in use, in [0, 1]. */
    double utilization() const;

    /**
     * Blocks needed to extend @p owner by @p new_tokens tokens.
     *
     * Accounts for slack already present in the owner's last
     * partially-filled block.
     */
    std::int64_t blocksNeeded(KvOwnerId owner,
                              std::int64_t new_tokens) const;

    /** True if grow() for the same arguments would succeed. */
    bool canGrow(KvOwnerId owner, std::int64_t new_tokens) const;

    /**
     * Extend @p owner's cached tokens by @p new_tokens.
     *
     * @return True on success; false (with no state change) if the
     *         required blocks are not available.
     */
    bool grow(KvOwnerId owner, std::int64_t new_tokens);

    /** Tokens currently cached for @p owner (0 if unknown). */
    std::int64_t ownedTokens(KvOwnerId owner) const;

    /** Blocks currently held by @p owner (0 if unknown). */
    std::int64_t ownedBlocks(KvOwnerId owner) const;

    /**
     * Release every block owned by @p owner.
     *
     * Freeing an unknown owner is a no-op (requests that never
     * allocated can be completed uniformly).
     */
    void release(KvOwnerId owner);

    /** Number of distinct owners holding blocks. */
    std::size_t numOwners() const { return owners_.size(); }

  private:
    struct Ownership
    {
        std::int64_t tokens = 0;
        std::int64_t blocks = 0;
    };

    int blockTokens_;
    std::int64_t totalBlocks_;
    std::int64_t usedBlocks_ = 0;
    std::unordered_map<KvOwnerId, Ownership> owners_;
};

} // namespace qoserve

#endif // QOSERVE_KVCACHE_BLOCK_MANAGER_HH
