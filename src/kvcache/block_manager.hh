/**
 * @file
 * Paged KV-cache block manager.
 *
 * Models vLLM-style PagedAttention memory management: the replica's
 * KV capacity is divided into fixed-size blocks; each request owns a
 * chain of blocks covering its cached tokens. The scheduler consults
 * the manager before adding prefill tokens or admitting new decodes,
 * which is what creates memory pressure and bounds batch size in the
 * simulation — the same constraint the paper's selective-preemption
 * policy is designed around (§3.4).
 */

#ifndef QOSERVE_KVCACHE_BLOCK_MANAGER_HH
#define QOSERVE_KVCACHE_BLOCK_MANAGER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace qoserve {

/** Identifier of the request owning a block chain. */
using KvOwnerId = std::uint64_t;

/** One owner's usage in an audit snapshot (see ownerUsage()). */
struct KvOwnerUsage
{
    KvOwnerId owner = 0;
    std::int64_t tokens = 0;
    std::int64_t blocks = 0;
};

/**
 * Fixed-size-block KV-cache allocator.
 *
 * Tracks, per owner, how many tokens are cached and how many blocks
 * that consumes. Allocation is all-or-nothing: a request either gets
 * blocks for all requested tokens or none.
 */
class BlockManager
{
  public:
    /**
     * @param capacity_tokens Total KV capacity in tokens; must be
     *        positive and hold at least one block (fatal otherwise —
     *        a zero-capacity cache is a configuration error).
     * @param block_tokens Tokens per block (vLLM default: 16); must
     *        be positive.
     */
    explicit BlockManager(std::int64_t capacity_tokens,
                          int block_tokens = 16);

    /** Total block count. */
    std::int64_t totalBlocks() const { return totalBlocks_; }

    /** Blocks currently free. */
    std::int64_t freeBlocks() const { return totalBlocks_ - usedBlocks_; }

    /** Blocks currently allocated. */
    std::int64_t usedBlocks() const { return usedBlocks_; }

    /** Tokens per block. */
    int blockTokens() const { return blockTokens_; }

    /** Fraction of blocks in use, in [0, 1]. */
    double utilization() const;

    /**
     * Blocks needed to extend @p owner by @p new_tokens tokens.
     *
     * Accounts for slack already present in the owner's last
     * partially-filled block.
     */
    std::int64_t blocksNeeded(KvOwnerId owner,
                              std::int64_t new_tokens) const;

    /** True if grow() for the same arguments would succeed. */
    bool canGrow(KvOwnerId owner, std::int64_t new_tokens) const;

    /**
     * Extend @p owner's cached tokens by @p new_tokens.
     *
     * @return True on success; false (with no state change) if the
     *         required blocks are not available.
     */
    bool grow(KvOwnerId owner, std::int64_t new_tokens);

    /** Tokens currently cached for @p owner (0 if unknown). */
    std::int64_t ownedTokens(KvOwnerId owner) const;

    /** Blocks currently held by @p owner (0 if unknown). */
    std::int64_t ownedBlocks(KvOwnerId owner) const;

    /** True if @p owner has an allocation record (possibly empty). */
    bool owns(KvOwnerId owner) const
    {
        return owners_.find(owner) != owners_.end();
    }

    /**
     * Release every block owned by @p owner.
     *
     * Freeing an owner with no allocation record — a double free, or
     * a free of a request that never allocated — panics: both point
     * at scheduler bookkeeping corruption that would otherwise decay
     * silently into wrong capacity numbers. Callers completing
     * requests that may legitimately never have allocated check
     * owns() first.
     */
    void release(KvOwnerId owner);

    /**
     * Release every block of every owner at once — the crash path: a
     * failed replica's cache dies with the process, so no per-owner
     * bookkeeping survives to double-free later.
     *
     * @return Blocks freed.
     */
    std::int64_t releaseAll();

    /** Number of distinct owners holding blocks. */
    std::size_t numOwners() const { return owners_.size(); }

    /**
     * Per-owner usage snapshot for the invariant auditor and
     * diagnostics, sorted by owner id (deterministic order).
     */
    std::vector<KvOwnerUsage> ownerUsage() const;

  private:
    struct Ownership
    {
        std::int64_t tokens = 0;
        std::int64_t blocks = 0;
    };

    int blockTokens_;
    std::int64_t totalBlocks_;
    std::int64_t usedBlocks_ = 0;
    std::unordered_map<KvOwnerId, Ownership> owners_;
};

} // namespace qoserve

#endif // QOSERVE_KVCACHE_BLOCK_MANAGER_HH
