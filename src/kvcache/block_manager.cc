/**
 * @file
 * Paged KV-cache block manager implementation.
 */

#include "kvcache/block_manager.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

BlockManager::BlockManager(std::int64_t capacity_tokens, int block_tokens)
    : blockTokens_(block_tokens)
{
    // Constructor arguments come from deployment configuration, so a
    // bad value is a user error (fatal), not a library bug (panic).
    if (capacity_tokens <= 0) {
        QOSERVE_FATAL("KV capacity must be positive, got ",
                      capacity_tokens, " tokens");
    }
    if (block_tokens <= 0) {
        QOSERVE_FATAL("KV block size must be positive, got ",
                      block_tokens, " tokens");
    }
    totalBlocks_ = capacity_tokens / block_tokens;
    if (totalBlocks_ <= 0) {
        QOSERVE_FATAL("KV capacity of ", capacity_tokens,
                      " tokens is below one ", block_tokens,
                      "-token block");
    }
}

double
BlockManager::utilization() const
{
    return static_cast<double>(usedBlocks_) /
           static_cast<double>(totalBlocks_);
}

std::int64_t
BlockManager::blocksNeeded(KvOwnerId owner, std::int64_t new_tokens) const
{
    QOSERVE_ASSERT(new_tokens >= 0, "negative token growth");
    std::int64_t current = 0;
    std::int64_t blocks = 0;
    auto it = owners_.find(owner);
    if (it != owners_.end()) {
        current = it->second.tokens;
        blocks = it->second.blocks;
    }
    std::int64_t target_tokens = current + new_tokens;
    std::int64_t target_blocks =
        (target_tokens + blockTokens_ - 1) / blockTokens_;
    return target_blocks - blocks;
}

bool
BlockManager::canGrow(KvOwnerId owner, std::int64_t new_tokens) const
{
    return blocksNeeded(owner, new_tokens) <= freeBlocks();
}

bool
BlockManager::grow(KvOwnerId owner, std::int64_t new_tokens)
{
    std::int64_t needed = blocksNeeded(owner, new_tokens);
    if (needed > freeBlocks())
        return false;
    Ownership &o = owners_[owner];
    o.tokens += new_tokens;
    o.blocks += needed;
    usedBlocks_ += needed;
    return true;
}

std::int64_t
BlockManager::ownedTokens(KvOwnerId owner) const
{
    auto it = owners_.find(owner);
    return it == owners_.end() ? 0 : it->second.tokens;
}

std::int64_t
BlockManager::ownedBlocks(KvOwnerId owner) const
{
    auto it = owners_.find(owner);
    return it == owners_.end() ? 0 : it->second.blocks;
}

void
BlockManager::release(KvOwnerId owner)
{
    auto it = owners_.find(owner);
    if (it == owners_.end()) {
        QOSERVE_PANIC("release of unknown KV owner ", owner,
                      " (double free, or the request never "
                      "allocated)");
    }
    usedBlocks_ -= it->second.blocks;
    QOSERVE_ASSERT(usedBlocks_ >= 0, "block accounting underflow");
    owners_.erase(it);
}

std::int64_t
BlockManager::releaseAll()
{
    std::int64_t freed = usedBlocks_;
    owners_.clear();
    usedBlocks_ = 0;
    return freed;
}

std::vector<KvOwnerUsage>
BlockManager::ownerUsage() const
{
    std::vector<KvOwnerUsage> usage;
    usage.reserve(owners_.size());
    // The map is iterated only to snapshot it; the sort below makes
    // the result independent of hash order.
    // qoserve-lint: allow(unordered-iter)
    for (const auto &[owner, o] : owners_)
        usage.push_back({owner, o.tokens, o.blocks});
    std::sort(usage.begin(), usage.end(),
              [](const KvOwnerUsage &a, const KvOwnerUsage &b) {
                  return a.owner < b.owner;
              });
    return usage;
}

} // namespace qoserve
