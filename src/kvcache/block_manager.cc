/**
 * @file
 * Paged KV-cache block manager implementation.
 */

#include "kvcache/block_manager.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

BlockManager::BlockManager(TokenCount capacity, TokenCount block_size)
    : blockTokens_(static_cast<int>(block_size.value()))
{
    std::int64_t capacity_tokens = capacity.value();
    int block_tokens = blockTokens_;
    // Constructor arguments come from deployment configuration, so a
    // bad value is a user error (fatal), not a library bug (panic).
    if (capacity_tokens <= 0) {
        QOSERVE_FATAL("KV capacity must be positive, got ",
                      capacity_tokens, " tokens");
    }
    if (block_tokens <= 0) {
        QOSERVE_FATAL("KV block size must be positive, got ",
                      block_tokens, " tokens");
    }
    totalBlocks_ = capacity_tokens / block_tokens;
    if (totalBlocks_ <= 0) {
        QOSERVE_FATAL("KV capacity of ", capacity_tokens,
                      " tokens is below one ", block_tokens,
                      "-token block");
    }
}

double
BlockManager::utilization() const
{
    return static_cast<double>(usedBlocks_) /
           static_cast<double>(totalBlocks_);
}

std::int64_t
BlockManager::blocksNeeded(KvOwnerId owner, TokenCount growth) const
{
    std::int64_t new_tokens = growth.value();
    QOSERVE_ASSERT(new_tokens >= 0, "negative token growth");
    std::int64_t current = 0;
    std::int64_t blocks = 0;
    auto it = owners_.find(owner);
    if (it != owners_.end()) {
        current = it->second.tokens;
        blocks = it->second.blocks;
    }
    std::int64_t target_tokens = current + new_tokens;
    std::int64_t target_blocks =
        (target_tokens + blockTokens_ - 1) / blockTokens_;
    return target_blocks - blocks;
}

bool
BlockManager::canGrow(KvOwnerId owner, TokenCount new_tokens) const
{
    std::int64_t needed = blocksNeeded(owner, new_tokens);
    if (needed <= freeBlocks())
        return true;
    // Evictable cached blocks can be reclaimed on demand, but only if
    // a handler is installed to do the reclaiming.
    return evictionHandler_ && needed <= availableBlocks();
}

bool
BlockManager::grow(KvOwnerId owner, TokenCount growth)
{
    std::int64_t new_tokens = growth.value();
    std::int64_t needed = blocksNeeded(owner, growth);
    // Reclaim cold cached blocks only when that can actually satisfy
    // the request — a doomed grow must not drain the cache for free.
    if (needed > freeBlocks() && needed <= availableBlocks() &&
        evictionHandler_) {
        evictionHandler_(needed - freeBlocks());
    }
    if (needed > freeBlocks())
        return false;
    Ownership &o = owners_[owner];
    o.tokens += new_tokens;
    o.blocks += needed;
    usedBlocks_ += needed;
    return true;
}

std::int64_t
BlockManager::ownedTokens(KvOwnerId owner) const
{
    auto it = owners_.find(owner);
    return it == owners_.end() ? 0 : it->second.tokens;
}

std::int64_t
BlockManager::ownedBlocks(KvOwnerId owner) const
{
    auto it = owners_.find(owner);
    return it == owners_.end() ? 0 : it->second.blocks;
}

void
BlockManager::release(KvOwnerId owner)
{
    auto it = owners_.find(owner);
    if (it == owners_.end()) {
        QOSERVE_PANIC("release of unknown KV owner ", owner,
                      " (double free, or the request never "
                      "allocated)");
    }
    usedBlocks_ -= it->second.blocks;
    QOSERVE_ASSERT(usedBlocks_ >= 0, "block accounting underflow");
    for (KvBlockId id : it->second.sharedIds) {
        auto sit = shared_.find(id);
        QOSERVE_ASSERT(sit != shared_.end(),
                       "owner references unknown shared block");
        SharedBlock &b = sit->second;
        --b.refs;
        if (b.refs == 0) {
            QOSERVE_ASSERT(!b.cacheHeld,
                           "cache-held block lost its cache reference");
            shared_.erase(sit);
            --usedBlocks_;
        } else if (b.cacheHeld && b.refs == 1) {
            ++evictableBlocks_;
        }
    }
    owners_.erase(it);
}

std::int64_t
BlockManager::releaseAll()
{
    std::int64_t freed = usedBlocks_;
    owners_.clear();
    shared_.clear();
    cacheHeldBlocks_ = 0;
    evictableBlocks_ = 0;
    usedBlocks_ = 0;
    return freed;
}

std::vector<KvOwnerUsage>
BlockManager::ownerUsage() const
{
    std::vector<KvOwnerUsage> usage;
    usage.reserve(owners_.size());
    // The map is iterated only to snapshot it; the sort below makes
    // the result independent of hash order.
    // qoserve-lint: allow(unordered-iter)
    for (const auto &[owner, o] : owners_) {
        usage.push_back({owner, o.tokens, o.blocks, o.sharedTokens,
                         static_cast<std::int64_t>(o.sharedIds.size())});
    }
    std::sort(usage.begin(), usage.end(),
              [](const KvOwnerUsage &a, const KvOwnerUsage &b) {
                  return a.owner < b.owner;
              });
    return usage;
}

void
BlockManager::setCacheWatermark(std::int64_t blocks)
{
    if (blocks < 1) {
        QOSERVE_FATAL("prefix-cache watermark must be at least one "
                      "block, got ", blocks);
    }
    cacheWatermark_ = blocks;
}

std::vector<KvBlockId>
BlockManager::convertToCached(KvOwnerId owner, int count)
{
    QOSERVE_ASSERT(count > 0, "conversion of zero blocks");
    auto it = owners_.find(owner);
    QOSERVE_ASSERT(it != owners_.end(),
                   "conversion for unknown KV owner");
    Ownership &o = it->second;
    // Only full blocks are shareable: count must fit in the owner's
    // whole private blocks, not its partially-filled tail.
    QOSERVE_ASSERT(o.tokens / blockTokens_ >= count,
                   "conversion exceeds owner's full private blocks");
    QOSERVE_ASSERT(cacheHeldBlocks_ + count <= cacheWatermark_,
                   "conversion would exceed the cache watermark");
    std::vector<KvBlockId> ids;
    ids.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        KvBlockId id = nextSharedId_++;
        // Two references: the owner keeps using the block, and the
        // cache now holds it in the radix tree.
        shared_.emplace(id, SharedBlock{2, true});
        ids.push_back(id);
        o.sharedIds.push_back(id);
    }
    std::int64_t moved_tokens =
        static_cast<std::int64_t>(count) * blockTokens_;
    o.tokens -= moved_tokens;
    o.blocks -= count;
    o.sharedTokens += moved_tokens;
    cacheHeldBlocks_ += count;
    QOSERVE_ASSERT(o.tokens >= 0 && o.blocks >= 0,
                   "conversion drained the private region below zero");
    return ids;
}

void
BlockManager::attachShared(KvOwnerId owner,
                           const std::vector<KvBlockId> &ids)
{
    QOSERVE_ASSERT(!ids.empty(), "attach of zero shared blocks");
    Ownership &o = owners_[owner];
    for (KvBlockId id : ids) {
        auto it = shared_.find(id);
        if (it == shared_.end())
            QOSERVE_PANIC("attach of unknown shared block ", id);
        SharedBlock &b = it->second;
        if (b.cacheHeld && b.refs == 1)
            --evictableBlocks_;
        ++b.refs;
        o.sharedIds.push_back(id);
    }
    o.sharedTokens +=
        static_cast<std::int64_t>(ids.size()) * blockTokens_;
}

void
BlockManager::dedupToShared(KvOwnerId owner,
                            const std::vector<KvBlockId> &ids)
{
    QOSERVE_ASSERT(!ids.empty(), "dedup of zero blocks");
    auto it = owners_.find(owner);
    QOSERVE_ASSERT(it != owners_.end(), "dedup for unknown KV owner");
    Ownership &o = it->second;
    auto count = static_cast<std::int64_t>(ids.size());
    QOSERVE_ASSERT(o.tokens / blockTokens_ >= count,
                   "dedup exceeds owner's full private blocks");
    for (KvBlockId id : ids) {
        auto sit = shared_.find(id);
        if (sit == shared_.end())
            QOSERVE_PANIC("dedup onto unknown shared block ", id);
        SharedBlock &b = sit->second;
        if (b.cacheHeld && b.refs == 1)
            --evictableBlocks_;
        ++b.refs;
        o.sharedIds.push_back(id);
    }
    std::int64_t moved_tokens = count * blockTokens_;
    o.tokens -= moved_tokens;
    o.blocks -= count;
    o.sharedTokens += moved_tokens;
    usedBlocks_ -= count;
    QOSERVE_ASSERT(usedBlocks_ >= 0, "block accounting underflow");
}

bool
BlockManager::dropCacheRef(KvBlockId id)
{
    auto it = shared_.find(id);
    if (it == shared_.end())
        QOSERVE_PANIC("cache drop of unknown shared block ", id);
    SharedBlock &b = it->second;
    if (!b.cacheHeld)
        QOSERVE_PANIC("cache drop of block ", id,
                      " the cache does not hold");
    if (b.refs == 1)
        --evictableBlocks_;
    b.cacheHeld = false;
    --cacheHeldBlocks_;
    --b.refs;
    if (b.refs == 0) {
        shared_.erase(it);
        --usedBlocks_;
        QOSERVE_ASSERT(usedBlocks_ >= 0, "block accounting underflow");
        return true;
    }
    return false;
}

std::int64_t
BlockManager::sharedRefs(KvBlockId id) const
{
    auto it = shared_.find(id);
    return it == shared_.end() ? 0 : it->second.refs;
}

std::int64_t
BlockManager::sharedTokens(KvOwnerId owner) const
{
    auto it = owners_.find(owner);
    return it == owners_.end() ? 0 : it->second.sharedTokens;
}

std::int64_t
BlockManager::ownerSharedBlocks(KvOwnerId owner) const
{
    auto it = owners_.find(owner);
    return it == owners_.end()
               ? 0
               : static_cast<std::int64_t>(it->second.sharedIds.size());
}

std::vector<KvBlockId>
BlockManager::ownerSharedIds(KvOwnerId owner) const
{
    auto it = owners_.find(owner);
    return it == owners_.end() ? std::vector<KvBlockId>{}
                               : it->second.sharedIds;
}

std::vector<KvSharedBlockInfo>
BlockManager::sharedBlockTable() const
{
    std::vector<KvSharedBlockInfo> table;
    table.reserve(shared_.size());
    // Snapshot only; the sort below makes the result independent of
    // hash order.
    // qoserve-lint: allow(unordered-iter)
    for (const auto &[id, b] : shared_)
        table.push_back({id, b.refs, b.cacheHeld});
    std::sort(table.begin(), table.end(),
              [](const KvSharedBlockInfo &a, const KvSharedBlockInfo &b) {
                  return a.id < b.id;
              });
    return table;
}

} // namespace qoserve
