/**
 * @file
 * Runtime state of one inference request inside a replica.
 *
 * Wraps an immutable RequestSpec with scheduling progress (prefill /
 * decode counters), QoS deadline arithmetic (Eqs. 1-3), relegation
 * state, and the completion record handed to the metrics layer.
 */

#ifndef QOSERVE_SCHED_REQUEST_HH
#define QOSERVE_SCHED_REQUEST_HH

#include <cstdint>

#include "workload/qos.hh"
#include "workload/trace.hh"

namespace qoserve {

/** Lifecycle phase of a request. */
enum class RequestPhase
{
    WaitingPrefill, ///< In the prefill queue, no tokens processed yet.
    Prefilling,     ///< Some prefill chunks processed.
    Decoding,       ///< Prefill complete; generating output tokens.
    Finished,       ///< All output tokens emitted.
};

/**
 * Final measurements of a completed (or abandoned) request.
 */
struct RequestRecord
{
    RequestSpec spec;

    /** Time the first output token was emitted. */
    SimTime firstTokenTime = kTimeNever;

    /** Time the final output token was emitted. */
    SimTime finishTime = kTimeNever;

    /** Largest observed gap between consecutive output tokens. */
    SimDuration maxTbt = 0.0;

    /** Output tokens emitted after their Eq. 2 deadline. */
    int tbtDeadlineMisses = 0;

    /** True if the request was ever relegated. */
    bool wasRelegated = false;

    /** True if admission control rejected the request outright (it
     *  never executed; latencies are infinite). */
    bool rejected = false;

    /** Times the request lost already-computed KV to preemption. */
    int kvPreemptions = 0;

    /** Times the request was re-dispatched after a replica failure. */
    int retries = 0;

    /** Prompt tokens served from the shared-prefix cache instead of
     *  being prefilled (0 when the cache is off or missed). */
    int cachedPrefixTokens = 0;

    /** True if the request was abandoned after exhausting its retry
     *  budget (it never finished; finishTime stays infinite). */
    bool retryExhausted = false;

    /** TTFT, or +inf if no token was produced. */
    SimDuration ttft() const { return firstTokenTime - spec.arrival; }

    /** TTLT, or +inf if never finished. */
    SimDuration ttlt() const { return finishTime - spec.arrival; }
};

/**
 * Everything the cluster must carry to re-dispatch a request after
 * its replica failed. The KV cache died with the replica, so the
 * snapshot holds only externally visible progress: tokens already
 * delivered to the client and the record fields accumulated so far.
 * Prefill always restarts from chunk 0 on the new replica; a request
 * that was decoding resumes emission from decodeDone (its context —
 * prompt plus emitted tokens — is recomputed as prefill first).
 */
struct RequestFailureSnapshot
{
    RequestSpec spec;

    /** Output tokens the client had received before the crash. */
    int decodeDone = 0;

    /** Record fields that survive the crash. */
    SimTime firstTokenTime = kTimeNever;
    SimTime lastTokenTime = kTimeNever;
    SimDuration maxTbt = 0.0;
    int tbtDeadlineMisses = 0;
    bool wasRelegated = false;
    int kvPreemptions = 0;

    /** Re-dispatch attempts consumed so far. */
    int retries = 0;
};

/**
 * A request being served by one replica.
 */
class Request
{
  public:
    /**
     * @param spec Immutable description.
     * @param tier QoS tier the spec's tierId refers to (copied).
     * @param app_stats Historic decode stats for the spec's app
     *        (copied; pass {} when no history exists).
     */
    Request(RequestSpec spec, QosTier tier, AppStats app_stats);

    /** Unique id (from the spec). */
    std::uint64_t id() const { return spec_.id; }

    /** Immutable description. */
    const RequestSpec &spec() const { return spec_; }

    /** QoS tier. */
    const QosTier &tier() const { return tier_; }

    /** Lifecycle phase. */
    RequestPhase phase() const { return phase_; }

    /** Prompt tokens whose KV is already computed. */
    int prefillDone() const { return prefillDone_; }

    /**
     * Prefill tokens still to compute. For a request resumed after a
     * replica failure this covers the prompt plus the previously
     * emitted tokens whose KV must be recomputed.
     */
    int prefillRemaining() const { return prefillTarget_ - prefillDone_; }

    /** Output tokens emitted so far. */
    int decodeDone() const { return decodeDone_; }

    /** Output tokens still to generate. */
    int decodeRemaining() const { return spec_.decodeTokens - decodeDone_; }

    /** Total KV context currently attributable to this request. */
    std::int64_t
    contextLength() const
    {
        // Tokens emitted before a crash are recomputed as prefill on
        // the new replica, so until then they contribute no KV here.
        return prefillDone_ + decodeDone_ - resumedTokens_;
    }

    /** True once the request is in the relegated queue (§3.4). */
    bool relegated() const { return relegated_; }

    /** Mark or clear relegation. */
    void setRelegated(bool r);

    /**
     * Historic conservative decode-token estimate for priority
     * computation (mean + 2 sigma of the app's decode lengths).
     */
    double conservativeDecodeTokens() const;

    /** Deadline of the first output token (Eq. 1 / Eq. 3). */
    SimTime firstTokenDeadline() const;

    /**
     * Deadline of the *next* output token to be emitted (Eq. 2).
     * kTimeNever for non-interactive tiers.
     */
    SimTime nextTokenDeadline() const;

    /** Completion deadline (Eq. 3; final-token deadline if interactive). */
    SimTime completionDeadline() const;

    /**
     * The deadline hybrid prioritization interpolates from: TTFT
     * deadline for interactive requests, TTLT for non-interactive
     * (Eqs. 4-5 use arrival + SLO).
     */
    SimTime urgencyDeadline() const;

    /**
     * Credit @p tokens of prompt KV attached from the shared-prefix
     * cache: prefill starts @p tokens in, so the scheduler's chunk
     * solver and predictor see only the uncached suffix. Only valid
     * before any progress was recorded, and must leave at least one
     * real prefill token (the cache caps its attach accordingly).
     */
    void attachCachedPrefix(TokenCount tokens);

    /**
     * Record @p tokens of prefill progress at time @p now.
     *
     * Transitions WaitingPrefill -> Prefilling, and on the final
     * chunk -> Decoding with the first output token emitted (chunked
     * prefill produces the first token in the same iteration the
     * last chunk runs).
     */
    void applyPrefill(TokenCount tokens, SimTime now);

    /**
     * Record one decode token emitted at time @p now.
     *
     * Transitions to Finished after the last token.
     */
    void applyDecodeToken(SimTime now);

    /**
     * Initialise this request as a decode-stage continuation in a
     * disaggregated deployment: the prefill node already computed
     * the full prompt KV and emitted the first token at
     * @p first_token_time; this instance resumes from token 2.
     * Only valid before any progress was recorded. Transitions
     * straight to Decoding (or Finished for single-token requests).
     */
    void primeForDecode(SimTime first_token_time);

    /**
     * Reset all prefill/decode progress after the KV cache was
     * preempted (vLLM-style recompute). The request returns to
     * WaitingPrefill; metrics of emitted tokens are preserved in the
     * record only if it had none (a decoding request cannot be
     * preempted by policy, so this applies to prefill-phase requests
     * whose first token has not been produced).
     */
    void resetAfterKvPreemption();

    /**
     * Capture the state the cluster needs to re-dispatch this request
     * after its replica failed. Valid in any phase but Finished.
     */
    RequestFailureSnapshot failureSnapshot() const;

    /**
     * Restore progress from a failure snapshot on a fresh replica.
     * Only valid before any progress was recorded. The request stays
     * in WaitingPrefill; its prefill target grows by the snapshot's
     * emitted tokens (their KV must be recomputed) and decode resumes
     * from the emitted-token count once prefill completes.
     */
    void restoreForRetry(const RequestFailureSnapshot &snap);

    /** Cached priority key used by schedulers' ordered queues. */
    double cachedPriority = 0.0;

    /** Final record; meaningful once phase() == Finished. */
    const RequestRecord &record() const { return record_; }

  private:
    /** True if token @p token_index would be late when emitted now. */
    bool nextTokenCheckMissed(SimTime now, int token_index) const;

    // Hot scheduling state first: together with the public
    // cachedPriority above, every field the schedulers touch each
    // iteration sits in the object's leading bytes, so queue scans
    // over pooled requests stay within the first cache lines and
    // never drag the cold spec/tier/record payload in.
    RequestPhase phase_ = RequestPhase::WaitingPrefill;
    int prefillDone_ = 0;
    int decodeDone_ = 0;

    /** Prefill tokens to compute before decode (resumes include the
     *  previously emitted tokens). */
    int prefillTarget_ = 0;

    /** Tokens emitted in a previous life whose KV is rebuilt via
     *  prefill (0 unless restored from a failure snapshot). */
    int resumedTokens_ = 0;

    bool relegated_ = false;
    SimTime lastTokenTime_ = kTimeNever;

    // Cold payload: read at admission and completion, not per
    // iteration.
    RequestSpec spec_;
    QosTier tier_;
    AppStats appStats_;
    RequestRecord record_;
};

} // namespace qoserve

#endif // QOSERVE_SCHED_REQUEST_HH
