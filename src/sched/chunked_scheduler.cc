/**
 * @file
 * Chunked-scheduler base implementation.
 */

#include "sched/chunked_scheduler.hh"

#include <algorithm>
#include <unordered_set>

#include "core/check_level.hh"
#include "prefixcache/prefix_cache.hh"
#include "simcore/logging.hh"

namespace qoserve {

ChunkedScheduler::ChunkedScheduler(const SchedulerEnv &env,
                                   ChunkedSchedulerConfig cfg)
    : env_(env), cfg_(cfg)
{
    QOSERVE_ASSERT(env_.kv != nullptr, "scheduler needs a BlockManager");
    QOSERVE_ASSERT(env_.perf != nullptr, "scheduler needs a PerfModel");
    QOSERVE_ASSERT(cfg_.fixedChunkTokens > 0, "chunk must be positive");
    QOSERVE_ASSERT(cfg_.maxDecodeBatch > 0, "decode batch must be positive");

    // Coarse processing-rate estimates used for relegation decisions
    // and priority terms. Prefill rate: throughput at a large chunk.
    BatchWork big;
    big.prefillTokens = 2048;
    big.prefillCtxProduct = 2048.0 * 1024.0;
    prefillRate_ = 2048.0 / env_.perf->iterationTime(big);

    // Decode token time: one iteration of a typical mixed batch (a
    // decoding request gains one token per iteration).
    BatchWork typical;
    typical.prefillTokens = cfg_.fixedChunkTokens;
    typical.prefillCtxProduct =
        static_cast<double>(cfg_.fixedChunkTokens) * 1024.0;
    typical.numDecodes = 32;
    typical.decodeCtxSum = 32 * 1536;
    decodeTokenTime_ = env_.perf->iterationTime(typical);
}

SimDuration
ChunkedScheduler::estPrefillTime(double tokens) const
{
    return tokens / prefillRate_;
}

SimDuration
ChunkedScheduler::estDecodeTime(double tokens) const
{
    return tokens * decodeTokenTime_;
}

int
ChunkedScheduler::chunkBudget(SimTime, const Batch &) const
{
    return cfg_.fixedChunkTokens;
}

bool
ChunkedScheduler::shouldRelegate(const Request &, SimTime) const
{
    return false;
}

void
ChunkedScheduler::collectUrgentInflight(SimTime,
                                        std::vector<Request *> &) const
{
}

void
ChunkedScheduler::enqueue(Request *req, SimTime now)
{
    QOSERVE_ASSERT(req->phase() == RequestPhase::WaitingPrefill,
                   "enqueue of in-progress request");
    req->cachedPriority = priorityOf(*req, now);
    auto [it, inserted] = prefillQueue_.insert(req);
    QOSERVE_ASSERT(inserted, "request enqueued twice");
    pendingPrefill_ += req->prefillRemaining();
    onCompositionChange();
}

void
ChunkedScheduler::rekey(Request *req, SimTime now)
{
    auto it = prefillQueue_.find(req);
    if (it != prefillQueue_.end())
        prefillQueue_.erase(it);
    req->cachedPriority = priorityOf(*req, now);
    prefillQueue_.insert(req);
}

void
ChunkedScheduler::relegate(Request *req, SimTime now)
{
    auto it = prefillQueue_.find(req);
    QOSERVE_ASSERT(it != prefillQueue_.end(),
                   "relegation of unqueued request");
    prefillQueue_.erase(it);
    req->setRelegated(true);
    req->cachedPriority = priorityOf(*req, now);
    prefillQueue_.insert(req);
    ++stats_.relegations;
    if (env_.trace != nullptr)
        env_.trace->emit(TraceEventKind::Relegate, req->id());
    onCompositionChange();
}

int
ChunkedScheduler::tryScheduleChunk(Request *req, Batch &batch, int budget,
                                   int &decode_slots)
{
    int rem = req->prefillRemaining();
    QOSERVE_ASSERT(rem > 0, "prefill-complete request in prefill queue");

    // decodeRemaining() > 1: completing the prefill emits one token
    // and leaves more to decode (for failure-resumed requests the
    // spec's decode count alone would overstate the remainder).
    int take = std::min(budget, rem);
    if (take == rem && req->decodeRemaining() > 1 && decode_slots <= 0) {
        // Completing the prefill would admit a new decode, but the
        // decode batch is full; hold back the final token so the
        // request stays in the prefill queue.
        take = std::min(budget, rem - 1);
    }
    if (take <= 0)
        return 0;

    if (!env_.kv->grow(req->id(), TokenCount{take}))
        return 0;

    ScheduledChunk chunk;
    chunk.request = req;
    chunk.chunkTokens = take;
    chunk.contextBefore = req->contextLength();
    batch.prefills.push_back(chunk);

    if (take == rem && req->decodeRemaining() > 1)
        --decode_slots;
    return take;
}

int
ChunkedScheduler::kvCappedBudget(int policy_budget) const
{
    // Reserve one token of KV growth per decoding request, then cap
    // the chunk budget by the remaining KV space. Evictable cached
    // blocks count as available — grow() reclaims them on demand.
    std::int64_t reserved_blocks =
        static_cast<std::int64_t>(decodes_.size());
    std::int64_t free_tokens =
        (env_.kv->availableBlocks() - reserved_blocks) *
        env_.kv->blockTokens();
    return static_cast<int>(std::min<std::int64_t>(
        policy_budget, std::max<std::int64_t>(0, free_tokens)));
}

Batch
ChunkedScheduler::formBatch(SimTime now)
{
    Batch batch;
    formBatchInto(batch, now);
    return batch;
}

void
ChunkedScheduler::formBatchInto(Batch &batch, SimTime now)
{
    batch.clear();
    batch.decodes = decodes_;

    int budget = kvCappedBudget(chunkBudget(now, batch));
    int decode_slots =
        cfg_.maxDecodeBatch - static_cast<int>(decodes_.size());

    // Largest budget the batch was ever allowed to draw from; the
    // audit at the end of this function checks the scheduled tokens
    // never exceeded it.
    int budget_cap = budget;

    takenScratch_.clear();
    std::unordered_set<Request *> &taken = takenScratch_;

    // Pass 0: in-flight requests that would violate their deadline if
    // delayed one more iteration are protected from preemption.
    urgentScratch_.clear();
    std::vector<Request *> &urgent = urgentScratch_;
    collectUrgentInflight(now, urgent);
    for (Request *req : urgent) {
        if (budget <= 0)
            break;
        if (taken.count(req))
            continue;
        int got = tryScheduleChunk(req, batch, budget, decode_slots);
        if (got > 0) {
            budget -= got;
            taken.insert(req);
        }
    }

    // Guard against a wedged queue: every block held by paused
    // partial prefills, nothing decoding, nothing schedulable.
    // Reclaim one victim so the walk below can make progress. Only a
    // batch with no scheduled work is wedged — if pass 0 consumed the
    // whole budget the engine is making progress, and refreshing the
    // budget here would both overfill the iteration and risk evicting
    // a request already in the batch.
    if (budget <= 0 && batch.prefills.empty() && decodes_.empty() &&
        !prefillQueue_.empty()) {
        if (preemptForKv(now)) {
            budget = kvCappedBudget(chunkBudget(now, batch));
            budget_cap = std::max(budget_cap, budget);
        }
    }

    // Main pass: walk the queue in priority order filling the budget
    // (Algorithm 1). Relegation re-inserts the request behind every
    // regular one, so the forward walk revisits it when it lands
    // ahead of the cursor — relegated requests are serviced
    // opportunistically when budget remains. A second pass picks up
    // requests relegated behind the cursor (e.g. the sole queued
    // request), so relegation can never starve the engine. The walk
    // touches only as many requests as it can schedule, relegate or
    // skip, so its cost is bounded by the budget, not queue length.
    for (int pass = 0; pass < 2; ++pass) {
        bool relegated_any = false;
        auto it = prefillQueue_.begin();
        while (budget > 0 && it != prefillQueue_.end()) {
            Request *req = *it;
            ++it; // Advance before mutating req's queue position.
            if (taken.count(req))
                continue;
            if (!req->relegated() && shouldRelegate(*req, now)) {
                relegate(req, now);
                relegated_any = true;
                continue;
            }
            int got = tryScheduleChunk(req, batch, budget, decode_slots);
            if (got > 0) {
                budget -= got;
                taken.insert(req);
            }
        }
        if (!(relegated_any && batch.prefills.empty()))
            break;
    }

    if constexpr (audit::cheapChecks()) {
        QOSERVE_ASSERT(batch.prefillTokens() <= budget_cap,
                       "batch of ", batch.prefillTokens(),
                       " prefill tokens exceeds its budget ",
                       budget_cap);
        QOSERVE_ASSERT(static_cast<int>(batch.decodes.size()) <=
                           cfg_.maxDecodeBatch,
                       "decode batch of ", batch.decodes.size(),
                       " exceeds the cap ", cfg_.maxDecodeBatch);
    }

    if (!batch.empty()) {
        ++stats_.batchesFormed;
        stats_.prefillTokensScheduled += batch.prefillTokens();
        stats_.decodeTokensScheduled += batch.decodes.size();
    }
}

void
ChunkedScheduler::finish(Request *req)
{
    if (env_.trace != nullptr)
        env_.trace->emit(TraceEventKind::Finish, req->id());
    env_.kv->release(req->id());
    onCompositionChange();
    if (onComplete_)
        onComplete_(req);
}

bool
ChunkedScheduler::preemptForKv(SimTime now)
{
    // Prefer a partially prefilled request (its first token has not
    // been produced); among those, take the lowest-priority one,
    // breaking priority ties toward the youngest request. The tie
    // break makes the choice a pure function of request state — the
    // set hashes pointers, so without it the victim would depend on
    // heap addresses and vary run to run under ASLR.
    Request *victim = nullptr;
    // qoserve-lint: allow(unordered-iter)
    for (Request *cand : partiallyPrefilled_) {
        if (victim == nullptr ||
            cand->cachedPriority > victim->cachedPriority ||
            (cand->cachedPriority == victim->cachedPriority &&
             cand->id() > victim->id())) {
            victim = cand;
        }
    }

    if (victim != nullptr) {
        prefillQueue_.erase(victim);
        partiallyPrefilled_.erase(victim);
        pendingPrefill_ -= victim->prefillRemaining();
        env_.kv->release(victim->id());
        victim->resetAfterKvPreemption();
        pendingPrefill_ += victim->prefillRemaining();
        victim->cachedPriority = priorityOf(*victim, now);
        prefillQueue_.insert(victim);
        ++stats_.kvPreemptions;
        if (env_.trace != nullptr)
            env_.trace->emit(TraceEventKind::Preempt, victim->id());
        onCompositionChange();
        return true;
    }

    // Last resort: evict the newest decoding request (vLLM-style
    // recompute). The scheduling policies never choose this; it is
    // the engine's out-of-memory safety valve.
    if (decodes_.empty())
        return false;
    victim = decodes_.back();
    decodes_.pop_back();
    env_.kv->release(victim->id());
    victim->resetAfterKvPreemption();
    victim->cachedPriority = priorityOf(*victim, now);
    prefillQueue_.insert(victim);
    pendingPrefill_ += victim->prefillRemaining();
    ++stats_.kvPreemptions;
    if (env_.trace != nullptr)
        env_.trace->emit(TraceEventKind::Preempt, victim->id());
    onCompositionChange();
    return true;
}

void
ChunkedScheduler::onBatchComplete(const Batch &batch, SimTime end)
{
    // Apply prefill progress.
    for (const ScheduledChunk &chunk : batch.prefills) {
        Request *req = chunk.request;
        auto it = prefillQueue_.find(req);
        QOSERVE_ASSERT(it != prefillQueue_.end(),
                       "scheduled request missing from prefill queue");
        prefillQueue_.erase(it);
        pendingPrefill_ -= chunk.chunkTokens;

        req->applyPrefill(TokenCount{chunk.chunkTokens}, end);
        if (env_.trace != nullptr) {
            env_.trace->emit(TraceEventKind::ChunkEnd, req->id(),
                             req->prefillRemaining());
        }
        switch (req->phase()) {
          case RequestPhase::Prefilling:
            partiallyPrefilled_.insert(req);
            req->cachedPriority = priorityOf(*req, end);
            prefillQueue_.insert(req);
            break;
          case RequestPhase::Decoding:
            partiallyPrefilled_.erase(req);
            decodes_.push_back(req);
            onCompositionChange();
            // The prompt KV is now complete: offer its full blocks to
            // the shared-prefix cache so later requests with the same
            // prefix can skip recomputing them.
            if (env_.prefixCache != nullptr)
                env_.prefixCache->insert(req->id(), req->spec(), end);
            break;
          case RequestPhase::Finished:
            partiallyPrefilled_.erase(req);
            // Single-token requests complete in the same iteration as
            // their final chunk; cache their prompt before the KV is
            // released (the blocks survive as cache-held copies).
            if (env_.prefixCache != nullptr)
                env_.prefixCache->insert(req->id(), req->spec(), end);
            finish(req);
            break;
          default:
            QOSERVE_PANIC("unexpected phase after prefill");
        }
    }

    // Apply decode progress: one token per decoding request.
    for (Request *req : batch.decodes) {
        if (req->phase() != RequestPhase::Decoding)
            continue; // Evicted by a KV preemption this iteration.
        while (req->phase() == RequestPhase::Decoding &&
               !env_.kv->grow(req->id(), TokenCount{1})) {
            if (!preemptForKv(end)) {
                QOSERVE_PANIC("KV exhausted: request ", req->id(),
                              " cannot fit even alone");
            }
        }
        if (req->phase() != RequestPhase::Decoding)
            continue; // Self-evicted: no token this iteration.
        req->applyDecodeToken(end);
    }

    // Retire finished decodes (stable_partition keeps the finished
    // group intact in the tail, unlike remove_if).
    auto mid = std::stable_partition(
        decodes_.begin(), decodes_.end(), [](Request *r) {
            return r->phase() != RequestPhase::Finished;
        });
    std::vector<Request *> done(mid, decodes_.end());
    decodes_.erase(mid, decodes_.end());
    for (Request *req : done)
        finish(req);
}

Request *
ChunkedScheduler::peekPrefillHead() const
{
    return prefillQueue_.empty() ? nullptr : *prefillQueue_.begin();
}

std::vector<Request *>
ChunkedScheduler::prefillSnapshot() const
{
    return {prefillQueue_.begin(), prefillQueue_.end()};
}

void
ChunkedScheduler::prefillSnapshotInto(std::vector<Request *> &out) const
{
    out.assign(prefillQueue_.begin(), prefillQueue_.end());
}

bool
ChunkedScheduler::hasWork() const
{
    return !prefillQueue_.empty() || !decodes_.empty();
}

std::size_t
ChunkedScheduler::decodeQueueSize() const
{
    return decodes_.size();
}

std::size_t
ChunkedScheduler::prefillQueueSize() const
{
    return prefillQueue_.size();
}

const SchedulerStats &
ChunkedScheduler::stats() const
{
    return stats_;
}

SchedulerAuditView
ChunkedScheduler::auditView(bool full_detail) const
{
    SchedulerAuditView view;
    view.populated = true;
    view.prefillCount = prefillQueue_.size();
    view.decodeCount = decodes_.size();
    if (full_detail) {
        view.prefills.assign(prefillQueue_.begin(), prefillQueue_.end());
        view.decodes.assign(decodes_.begin(), decodes_.end());
    }
    view.pendingPrefillTokens = pendingPrefill_;
    view.maxDecodeBatch = cfg_.maxDecodeBatch;
    return view;
}

} // namespace qoserve
