/**
 * @file
 * Request state-machine implementation.
 */

#include "sched/request.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

Request::Request(RequestSpec spec, QosTier tier, AppStats app_stats)
    : prefillTarget_(spec.promptTokens), spec_(std::move(spec)),
      tier_(std::move(tier)), appStats_(app_stats)
{
    QOSERVE_ASSERT(spec_.promptTokens > 0, "request needs a prompt");
    QOSERVE_ASSERT(spec_.decodeTokens >= 1,
                   "request must emit at least one token");
    record_.spec = spec_;
}

void
Request::setRelegated(bool r)
{
    relegated_ = r;
    if (r)
        record_.wasRelegated = true;
}

double
Request::conservativeDecodeTokens() const
{
    double est = appStats_.conservativeDecodeTokens();
    // With no history at all, fall back to the request's own length
    // (an oracle, but only exercised in synthetic unit tests).
    return est > 0.0 ? est : static_cast<double>(spec_.decodeTokens);
}

SimTime
Request::firstTokenDeadline() const
{
    return tier_.firstTokenDeadline(spec_.arrival);
}

SimTime
Request::nextTokenDeadline() const
{
    if (!tier_.interactive)
        return kTimeNever;
    if (phase_ == RequestPhase::Finished)
        return kTimeNever;
    return tier_.tokenDeadline(spec_.arrival, decodeDone_ + 1);
}

SimTime
Request::completionDeadline() const
{
    return tier_.completionDeadline(spec_.arrival,
                                    TokenCount{spec_.decodeTokens});
}

SimTime
Request::urgencyDeadline() const
{
    return tier_.interactive ? spec_.arrival + tier_.ttftSlo
                             : spec_.arrival + tier_.ttltSlo;
}

void
Request::attachCachedPrefix(TokenCount cached)
{
    int tokens = static_cast<int>(cached.value());
    QOSERVE_ASSERT(phase_ == RequestPhase::WaitingPrefill &&
                       prefillDone_ == 0,
                   "cached-prefix attach on a request with progress");
    QOSERVE_ASSERT(tokens > 0 && tokens < prefillTarget_,
                   "cached prefix must leave prefill work: ", tokens,
                   " of ", prefillTarget_);
    prefillDone_ = tokens;
    record_.cachedPrefixTokens = tokens;
}

void
Request::applyPrefill(TokenCount chunk, SimTime now)
{
    int tokens = static_cast<int>(chunk.value());
    QOSERVE_ASSERT(phase_ == RequestPhase::WaitingPrefill ||
                       phase_ == RequestPhase::Prefilling,
                   "prefill progress in wrong phase");
    QOSERVE_ASSERT(tokens > 0 && tokens <= prefillRemaining(),
                   "invalid prefill chunk: ", tokens, " of ",
                   prefillRemaining(), " remaining");

    prefillDone_ += tokens;
    phase_ = RequestPhase::Prefilling;

    if (prefillDone_ == prefillTarget_) {
        // The iteration that processes the final chunk emits the
        // next output token: the first one for a fresh request, or
        // token resumedTokens_+1 when resuming after a failure (the
        // first token was already delivered in a previous life).
        if (decodeDone_ == 0) {
            record_.firstTokenTime = now;
        } else if (lastTokenTime_ != kTimeNever) {
            record_.maxTbt =
                std::max(record_.maxTbt, now - lastTokenTime_);
        }
        lastTokenTime_ = now;
        ++decodeDone_;
        if (nextTokenCheckMissed(now, decodeDone_))
            ++record_.tbtDeadlineMisses;
        if (decodeDone_ == spec_.decodeTokens) {
            phase_ = RequestPhase::Finished;
            record_.finishTime = now;
        } else {
            phase_ = RequestPhase::Decoding;
        }
    }
}

bool
Request::nextTokenCheckMissed(SimTime now, int token_index) const
{
    SimTime dl = tier_.tokenDeadline(spec_.arrival, token_index);
    return tier_.interactive && now > dl;
}

void
Request::applyDecodeToken(SimTime now)
{
    QOSERVE_ASSERT(phase_ == RequestPhase::Decoding,
                   "decode token in wrong phase");
    ++decodeDone_;
    if (lastTokenTime_ != kTimeNever)
        record_.maxTbt = std::max(record_.maxTbt, now - lastTokenTime_);
    lastTokenTime_ = now;
    if (nextTokenCheckMissed(now, decodeDone_))
        ++record_.tbtDeadlineMisses;
    if (decodeDone_ == spec_.decodeTokens) {
        phase_ = RequestPhase::Finished;
        record_.finishTime = now;
    }
}

void
Request::primeForDecode(SimTime first_token_time)
{
    QOSERVE_ASSERT(phase_ == RequestPhase::WaitingPrefill &&
                       prefillDone_ == 0 && decodeDone_ == 0,
                   "primeForDecode on a request with progress");
    prefillDone_ = spec_.promptTokens;
    decodeDone_ = 1;
    record_.firstTokenTime = first_token_time;
    lastTokenTime_ = first_token_time;
    if (decodeDone_ == spec_.decodeTokens) {
        phase_ = RequestPhase::Finished;
        record_.finishTime = first_token_time;
    } else {
        phase_ = RequestPhase::Decoding;
    }
}

void
Request::resetAfterKvPreemption()
{
    QOSERVE_ASSERT(phase_ != RequestPhase::Finished,
                   "cannot preempt a finished request");
    ++record_.kvPreemptions;
    prefillDone_ = 0;
    // Preemption dropped the attached blocks with the rest of the KV;
    // the recompute starts from scratch, so the credit is void.
    record_.cachedPrefixTokens = 0;
    // A failure-resumed request keeps its delivered tokens: recompute
    // restarts at the same resume point, not from scratch.
    decodeDone_ = resumedTokens_;
    phase_ = RequestPhase::WaitingPrefill;
    if (resumedTokens_ == 0) {
        lastTokenTime_ = kTimeNever;
        record_.firstTokenTime = kTimeNever;
    }
}

RequestFailureSnapshot
Request::failureSnapshot() const
{
    QOSERVE_ASSERT(phase_ != RequestPhase::Finished,
                   "snapshot of a finished request");
    RequestFailureSnapshot snap;
    snap.spec = spec_;
    snap.decodeDone = decodeDone_;
    snap.firstTokenTime = record_.firstTokenTime;
    snap.lastTokenTime = lastTokenTime_;
    snap.maxTbt = record_.maxTbt;
    snap.tbtDeadlineMisses = record_.tbtDeadlineMisses;
    snap.wasRelegated = record_.wasRelegated;
    snap.kvPreemptions = record_.kvPreemptions;
    snap.retries = record_.retries;
    return snap;
}

void
Request::restoreForRetry(const RequestFailureSnapshot &snap)
{
    QOSERVE_ASSERT(phase_ == RequestPhase::WaitingPrefill &&
                       prefillDone_ == 0 && decodeDone_ == 0,
                   "restoreForRetry on a request with progress");
    QOSERVE_ASSERT(snap.spec.id == spec_.id,
                   "snapshot restored into the wrong request");
    QOSERVE_ASSERT(snap.decodeDone >= 0 &&
                       snap.decodeDone < spec_.decodeTokens,
                   "snapshot decode progress out of range");
    resumedTokens_ = snap.decodeDone;
    decodeDone_ = snap.decodeDone;
    prefillTarget_ = spec_.promptTokens + snap.decodeDone;
    lastTokenTime_ = snap.lastTokenTime;
    record_.firstTokenTime = snap.firstTokenTime;
    record_.maxTbt = snap.maxTbt;
    record_.tbtDeadlineMisses = snap.tbtDeadlineMisses;
    record_.wasRelegated = snap.wasRelegated;
    record_.kvPreemptions = snap.kvPreemptions;
    record_.retries = snap.retries;
}

} // namespace qoserve
