/**
 * @file
 * Request state-machine implementation.
 */

#include "sched/request.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

Request::Request(RequestSpec spec, QosTier tier, AppStats app_stats)
    : spec_(spec), tier_(std::move(tier)), appStats_(app_stats)
{
    QOSERVE_ASSERT(spec_.promptTokens > 0, "request needs a prompt");
    QOSERVE_ASSERT(spec_.decodeTokens >= 1,
                   "request must emit at least one token");
    record_.spec = spec_;
}

void
Request::setRelegated(bool r)
{
    relegated_ = r;
    if (r)
        record_.wasRelegated = true;
}

double
Request::conservativeDecodeTokens() const
{
    double est = appStats_.conservativeDecodeTokens();
    // With no history at all, fall back to the request's own length
    // (an oracle, but only exercised in synthetic unit tests).
    return est > 0.0 ? est : static_cast<double>(spec_.decodeTokens);
}

SimTime
Request::firstTokenDeadline() const
{
    return tier_.firstTokenDeadline(spec_.arrival);
}

SimTime
Request::nextTokenDeadline() const
{
    if (!tier_.interactive)
        return kTimeNever;
    if (phase_ == RequestPhase::Finished)
        return kTimeNever;
    return tier_.tokenDeadline(spec_.arrival, decodeDone_ + 1);
}

SimTime
Request::completionDeadline() const
{
    return tier_.completionDeadline(spec_.arrival, spec_.decodeTokens);
}

SimTime
Request::urgencyDeadline() const
{
    return tier_.interactive ? spec_.arrival + tier_.ttftSlo
                             : spec_.arrival + tier_.ttltSlo;
}

void
Request::applyPrefill(int tokens, SimTime now)
{
    QOSERVE_ASSERT(phase_ == RequestPhase::WaitingPrefill ||
                       phase_ == RequestPhase::Prefilling,
                   "prefill progress in wrong phase");
    QOSERVE_ASSERT(tokens > 0 && tokens <= prefillRemaining(),
                   "invalid prefill chunk: ", tokens, " of ",
                   prefillRemaining(), " remaining");

    prefillDone_ += tokens;
    phase_ = RequestPhase::Prefilling;

    if (prefillDone_ == spec_.promptTokens) {
        // The iteration that processes the final chunk emits the
        // first output token.
        record_.firstTokenTime = now;
        lastTokenTime_ = now;
        decodeDone_ = 1;
        if (nextTokenCheckMissed(now, 1))
            ++record_.tbtDeadlineMisses;
        if (decodeDone_ == spec_.decodeTokens) {
            phase_ = RequestPhase::Finished;
            record_.finishTime = now;
        } else {
            phase_ = RequestPhase::Decoding;
        }
    }
}

bool
Request::nextTokenCheckMissed(SimTime now, int token_index) const
{
    SimTime dl = tier_.tokenDeadline(spec_.arrival, token_index);
    return tier_.interactive && now > dl;
}

void
Request::applyDecodeToken(SimTime now)
{
    QOSERVE_ASSERT(phase_ == RequestPhase::Decoding,
                   "decode token in wrong phase");
    ++decodeDone_;
    if (lastTokenTime_ != kTimeNever)
        record_.maxTbt = std::max(record_.maxTbt, now - lastTokenTime_);
    lastTokenTime_ = now;
    if (nextTokenCheckMissed(now, decodeDone_))
        ++record_.tbtDeadlineMisses;
    if (decodeDone_ == spec_.decodeTokens) {
        phase_ = RequestPhase::Finished;
        record_.finishTime = now;
    }
}

void
Request::primeForDecode(SimTime first_token_time)
{
    QOSERVE_ASSERT(phase_ == RequestPhase::WaitingPrefill &&
                       prefillDone_ == 0 && decodeDone_ == 0,
                   "primeForDecode on a request with progress");
    prefillDone_ = spec_.promptTokens;
    decodeDone_ = 1;
    record_.firstTokenTime = first_token_time;
    lastTokenTime_ = first_token_time;
    if (decodeDone_ == spec_.decodeTokens) {
        phase_ = RequestPhase::Finished;
        record_.finishTime = first_token_time;
    } else {
        phase_ = RequestPhase::Decoding;
    }
}

void
Request::resetAfterKvPreemption()
{
    QOSERVE_ASSERT(phase_ != RequestPhase::Finished,
                   "cannot preempt a finished request");
    ++record_.kvPreemptions;
    prefillDone_ = 0;
    decodeDone_ = 0;
    phase_ = RequestPhase::WaitingPrefill;
    lastTokenTime_ = kTimeNever;
    record_.firstTokenTime = kTimeNever;
}

} // namespace qoserve
