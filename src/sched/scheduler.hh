/**
 * @file
 * Abstract iteration-level scheduler interface.
 *
 * A scheduler owns the replica's queues: it admits arriving requests,
 * forms one batch per engine iteration, and updates its queues when
 * the iteration completes. The replica drives timing (via the event
 * queue and the execution model) and owns request lifetimes; the
 * scheduler sees raw pointers that remain valid until it surrenders
 * them through completion.
 */

#ifndef QOSERVE_SCHED_SCHEDULER_HH
#define QOSERVE_SCHED_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "kvcache/block_manager.hh"
#include "model/perf_model.hh"
#include "obs/trace_sink.hh"
#include "sched/batch.hh"

namespace qoserve {

class LatencyPredictor;
class PrefixCache;

/**
 * Shared services a scheduler needs from its replica.
 */
struct SchedulerEnv
{
    /** KV-cache allocator; never null. */
    BlockManager *kv = nullptr;

    /** Execution model, for coarse processing-time estimates. */
    const PerfModel *perf = nullptr;

    /** Batch-latency predictor; may be null for fixed-chunk policies. */
    const LatencyPredictor *predictor = nullptr;

    /** Shared-prefix cache; null or disabled when prefix caching is
     *  off (the scheduler then never touches it). */
    PrefixCache *prefixCache = nullptr;

    /** Lifecycle trace handle owned by the replica; null or off when
     *  tracing is disabled (emissions are no-ops either way). */
    const TraceScope *trace = nullptr;
};

/**
 * Aggregate counters a scheduler exposes for diagnostics and benches.
 */
struct SchedulerStats
{
    std::uint64_t batchesFormed = 0;
    std::uint64_t prefillTokensScheduled = 0;
    std::uint64_t decodeTokensScheduled = 0;
    std::uint64_t relegations = 0;
    std::uint64_t kvPreemptions = 0;

    /** Mean prefill chunk tokens per formed batch. */
    double
    averageChunkTokens() const
    {
        return batchesFormed == 0
                   ? 0.0
                   : static_cast<double>(prefillTokensScheduled) /
                         static_cast<double>(batchesFormed);
    }
};

/**
 * Read-only snapshot of a scheduler's queues for invariant auditing
 * (consumed by qoserve::InvariantAuditor; see DESIGN.md §7).
 */
struct SchedulerAuditView
{
    /** True when the scheduler filled the view in; the auditor
     *  skips unpopulated views (e.g. toy test schedulers). */
    bool populated = false;

    /**
     * Prefill queue in priority order (head first). Filled only for
     * full-detail views: materialising the queues is O(backlog) per
     * iteration, which the cheap audit level must not pay.
     */
    std::vector<const Request *> prefills;

    /** Decode-phase requests in admission order (full detail only). */
    std::vector<const Request *> decodes;

    /** Prefill-queue length (always filled, even without vectors). */
    std::size_t prefillCount = 0;

    /** Decode-queue length (always filled, even without vectors). */
    std::size_t decodeCount = 0;

    /** Scheduler's own pending-prefill token counter. */
    std::int64_t pendingPrefillTokens = 0;

    /** Decode-batch bound the scheduler enforces (0 = unbounded). */
    int maxDecodeBatch = 0;

    /** Dynamic-chunk floor the policy guarantees (0 = none). */
    int minChunkTokens = 0;
};

/**
 * Iteration-level scheduler.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /** Admit a newly arrived request into the prefill queue. */
    virtual void enqueue(Request *req, SimTime now) = 0;

    /**
     * Form the next batch.
     *
     * Called only while no batch is in flight. May return an empty
     * batch when nothing can run (e.g. no requests).
     */
    virtual Batch formBatch(SimTime now) = 0;

    /**
     * Form the next batch into @p batch, reusing its capacity.
     *
     * Hot-path variant of formBatch(): the replica keeps one Batch
     * alive per replica and hands it back each iteration, so the
     * chunk and decode vectors stop being reallocated every
     * iteration. @p batch is cleared first; semantics are otherwise
     * identical to formBatch().
     */
    virtual void
    formBatchInto(Batch &batch, SimTime now)
    {
        batch = formBatch(now);
    }

    /**
     * Apply the effects of a completed batch: advance request
     * progress, migrate prefill-complete requests to the decode
     * queue, and drop finished requests from all queues.
     *
     * @param batch The batch returned by the matching formBatch().
     * @param end Completion time of the iteration.
     */
    virtual void onBatchComplete(const Batch &batch, SimTime end) = 0;

    /** True if any request is waiting or in flight. */
    virtual bool hasWork() const = 0;

    /** Requests currently in decode phase. */
    virtual std::size_t decodeQueueSize() const = 0;

    /** Requests waiting for (more) prefill. */
    virtual std::size_t prefillQueueSize() const = 0;

    /** Prompt tokens still waiting in the prefill queue. */
    virtual std::int64_t pendingPrefillTokens() const = 0;

    /** Diagnostic counters. */
    virtual const SchedulerStats &stats() const = 0;

    /**
     * Queue snapshot for the invariant auditor. The default is an
     * unpopulated view (nothing auditable); ChunkedScheduler and its
     * policies override it.
     *
     * @param full_detail When false, only the O(1) scalar fields
     *        (counts, counters, bounds) are filled in — the queue
     *        vectors stay empty. The cheap audit level uses this to
     *        avoid materialising the whole backlog every iteration.
     */
    virtual SchedulerAuditView
    auditView(bool full_detail) const
    {
        (void)full_detail;
        return {};
    }

    /** Full-detail snapshot (tests, diagnostics). */
    SchedulerAuditView auditView() const { return auditView(true); }

    /** Human-readable policy name for reports. */
    virtual const char *name() const = 0;
};

/** Factory used by replicas to instantiate a scheduler per replica. */
using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(const SchedulerEnv &)>;

} // namespace qoserve

#endif // QOSERVE_SCHED_SCHEDULER_HH
