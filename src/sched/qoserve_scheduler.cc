/**
 * @file
 * QoServe scheduler implementation.
 */

#include "sched/qoserve_scheduler.hh"

#include <algorithm>

#include "core/check_level.hh"
#include "predictor/latency_predictor.hh"
#include "simcore/logging.hh"

namespace qoserve {

QoServeScheduler::QoServeScheduler(const SchedulerEnv &env,
                                   QoServeConfig qos_cfg,
                                   ChunkedSchedulerConfig cfg)
    : ChunkedScheduler(env, cfg), qosCfg_(qos_cfg)
{
    if (qosCfg_.enableDynamicChunking && env.predictor == nullptr)
        QOSERVE_FATAL("dynamic chunking requires a latency predictor");
    QOSERVE_ASSERT(qosCfg_.maxChunkTokens >= qosCfg_.chunkStep,
                   "max chunk below one step");
    QOSERVE_ASSERT(qosCfg_.alphaMsPerToken >= 0.0, "negative alpha");
}

double
QoServeScheduler::effectiveAlpha() const
{
    if (!qosCfg_.enableHybridPriority)
        return 0.0;
    if (!qosCfg_.adaptiveAlpha)
        return qosCfg_.alphaMsPerToken * 1e-3;
    // Load-adaptive tuning (§3.6): ramp alpha from the low-load
    // value to the full value as the prefill backlog approaches the
    // overload threshold.
    double load = estPrefillTime(static_cast<double>(
                      pendingPrefillTokens())) /
                  qosCfg_.overloadThreshold;
    load = std::min(1.0, std::max(0.0, load));
    double alpha_ms = qosCfg_.alphaLowLoadMs +
                      (qosCfg_.alphaMsPerToken - qosCfg_.alphaLowLoadMs) *
                          load;
    return alpha_ms * 1e-3;
}

double
QoServeScheduler::priorityOf(const Request &req, SimTime) const
{
    // Eqs. (4) and (5): deadline term (EDF semantics) plus alpha
    // times the remaining-work estimate (SRPF semantics). Cached
    // keys are refreshed whenever a request's progress changes, so
    // an adaptive alpha takes effect incrementally.
    double alpha = effectiveAlpha();
    double deadline = req.urgencyDeadline().seconds();
    double work = static_cast<double>(req.prefillRemaining());
    if (!req.tier().interactive)
        work += req.conservativeDecodeTokens();
    return deadline + alpha * work;
}

SchedulerAuditView
QoServeScheduler::auditView(bool full_detail) const
{
    SchedulerAuditView view = ChunkedScheduler::auditView(full_detail);
    if (qosCfg_.enableDynamicChunking)
        view.minChunkTokens = qosCfg_.minChunkTokens;
    return view;
}

void
QoServeScheduler::onCompositionChange()
{
    // Intentionally no cache invalidation: the solver cache's plane
    // and solve records each carry the feature box over which their
    // contents are provably bit-identical to a fresh forest
    // evaluation, and reuse is gated on the query lying strictly
    // inside that box. A composition change moves the features; if it
    // moves them outside the box the plane simply rebuilds and the
    // records go stale via the generation counter. Invalidating here
    // would be correct but needless — composition changes happen
    // nearly every iteration, while the slack box absorbs most of
    // them.
}

int
QoServeScheduler::chunkBudget(SimTime now, const Batch &batch) const
{
    if (!qosCfg_.enableDynamicChunking)
        return config().fixedChunkTokens;

    // Minimum TBT slack across interactive decoding requests: the
    // iteration must finish before the earliest next-token deadline
    // (§3.3). Non-interactive decodes impose no per-token deadline.
    // Requests already past their token schedule (negative slack —
    // their Eq. 2 deadlines are anchored to a missed TTFT) cannot be
    // saved by pacing and must not drag the whole replica to the
    // floor chunk for their entire decode; they still receive a
    // token every iteration.
    SimDuration min_slack = kDurationNever;
    for (const Request *r : batch.decodes) {
        if (!r->tier().interactive)
            continue;
        SimDuration slack = r->nextTokenDeadline() - now;
        if (slack <= 0.0)
            continue;
        min_slack = std::min(min_slack, slack);
    }

    if (min_slack == kDurationNever)
        return qosCfg_.maxChunkTokens;

    BatchFeatures f;
    f.numDecodes = static_cast<double>(batch.decodes.size());
    // Integer-valued contexts sum exactly in doubles, so the batch's
    // memoised integer sum is bitwise identical to the old per-call
    // accumulation loop.
    f.decodeCtxSum = static_cast<double>(batch.decodeCtxSum());
    const Request *head = peekPrefillHead();
    f.prefillContext =
        head != nullptr ? static_cast<double>(head->contextLength()) : 0.0;

    ChunkSolverCache *memo =
        qosCfg_.enableSolverMemo ? &solverCache_ : nullptr;
    int solved =
        min_slack <= 0.0
            ? 0
            : solveChunkBudget(*env().predictor, f, min_slack,
                               qosCfg_.maxChunkTokens, qosCfg_.chunkStep,
                               memo);

    // When slack is exhausted, revert to the TBT-sized floor rather
    // than starving prefill (§3.5): per-token deadlines are absolute,
    // so a small transient deficit heals on subsequent iterations.
    int budget = std::max(solved, qosCfg_.minChunkTokens);
    if constexpr (audit::cheapChecks()) {
        QOSERVE_ASSERT(budget >= qosCfg_.minChunkTokens,
                       "dynamic chunk ", budget,
                       " below the configured floor ",
                       qosCfg_.minChunkTokens);
    }
    return budget;
}

bool
QoServeScheduler::overloaded(SimTime now) const
{
    (void)now;
    return estPrefillTime(static_cast<double>(pendingPrefillTokens())) >
           qosCfg_.overloadThreshold;
}

bool
QoServeScheduler::willViolate(const Request &req, SimTime now) const
{
    if (req.tier().interactive) {
        SimTime eta = now + estPrefillTime(
                                static_cast<double>(req.prefillRemaining()));
        return eta > req.firstTokenDeadline();
    }
    double decode_left =
        std::max(0.0, req.conservativeDecodeTokens() -
                          static_cast<double>(req.decodeDone()));
    SimTime eta =
        now +
        estPrefillTime(static_cast<double>(req.prefillRemaining())) +
        estDecodeTime(decode_left);
    return eta > req.completionDeadline();
}

bool
QoServeScheduler::shouldRelegate(const Request &req, SimTime now) const
{
    if (!qosCfg_.enableEagerRelegation)
        return false;
    if (!req.spec().important && overloaded(now))
        return true; // Hint-based relegation under overload (§3.4).
    return willViolate(req, now);
}

void
QoServeScheduler::collectUrgentInflight(SimTime now,
                                        std::vector<Request *> &out) const
{
    if (!qosCfg_.enableSelectivePreemption)
        return;

    // A partially prefilled request whose TTFT/TTLT deadline cannot
    // absorb one more iteration of delay must not be preempted this
    // iteration (§3.4 condition 2).
    SimDuration margin = typicalIterationTime();
    // The sort below imposes a total order, so hash order here cannot
    // leak into the result.
    // qoserve-lint: allow(unordered-iter)
    for (Request *req : partiallyPrefilled()) {
        if (req->relegated())
            continue;
        SimTime eta =
            now + margin +
            estPrefillTime(static_cast<double>(req->prefillRemaining()));
        if (eta > req->firstTokenDeadline())
            out.push_back(req);
    }
    // Tie-break equal deadlines on request id: std::sort is unstable
    // and the input order is hash-dependent, so without the id key the
    // ordering would vary with heap addresses.
    std::sort(out.begin(), out.end(), [](Request *a, Request *b) {
        if (a->firstTokenDeadline() != b->firstTokenDeadline())
            return a->firstTokenDeadline() < b->firstTokenDeadline();
        return a->id() < b->id();
    });
}

} // namespace qoserve
