/**
 * @file
 * Slab pool for Request objects.
 *
 * Replicas churn through one Request per served request; allocating
 * each from the global heap scatters them across the address space and
 * costs a malloc/free pair per request. The pool carves fixed-size
 * slabs of raw storage and recycles slots through a free list, so at
 * steady state admission is a placement-new into warm, contiguous
 * memory and completion is a destructor call plus a pointer push.
 *
 * Addresses are stable for the lifetime of the object — schedulers and
 * batches hold raw Request* across iterations — and slabs are never
 * returned to the OS until the pool dies, so a recycled slot can only
 * ever be reused for another Request.
 */

#ifndef QOSERVE_SCHED_REQUEST_POOL_HH
#define QOSERVE_SCHED_REQUEST_POOL_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "sched/request.hh"

namespace qoserve {

/**
 * Pool allocator for Request objects (slab + free list).
 */
class RequestPool
{
  public:
    RequestPool() = default;
    RequestPool(const RequestPool &) = delete;
    RequestPool &operator=(const RequestPool &) = delete;

    /** Panics if any request is still live: the owner must destroy
     *  every outstanding object first (their slots point into the
     *  slabs released here). */
    ~RequestPool();

    /**
     * Construct a Request in a pooled slot. Arguments mirror the
     * Request constructor.
     */
    Request *create(const RequestSpec &spec, const QosTier &tier,
                    const AppStats &app_stats);

    /** Destroy @p req and recycle its slot. Must have come from this
     *  pool. */
    void destroy(Request *req);

    /** Requests currently alive in the pool. */
    std::size_t liveCount() const { return liveCount_; }

    /** Total slots carved so far (high-water mark, diagnostics). */
    std::size_t capacity() const
    {
        return slabs_.size() * kSlabRequests;
    }

  private:
    /** Requests per slab: big enough to amortise the slab allocation,
     *  small enough that an idle replica wastes little. */
    static constexpr std::size_t kSlabRequests = 64;

    /** Carve a fresh slab and push its slots onto the free list. */
    void grow();

    std::vector<std::unique_ptr<std::byte[]>> slabs_;
    std::vector<Request *> freeList_;
    std::size_t liveCount_ = 0;
};

} // namespace qoserve

#endif // QOSERVE_SCHED_REQUEST_POOL_HH
