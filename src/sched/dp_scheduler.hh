/**
 * @file
 * SLOs-Serve-style dynamic-programming scheduler (§4.5.3).
 *
 * The paper compares QoServe qualitatively against SLOs-Serve, which
 * "employs periodic dynamic programming to optimize scheduling across
 * all active and queued requests" with O(N * N_new * M) per-step
 * complexity, arguing the approach does not scale. This is a
 * simplified, clean-room reconstruction of that scheduler family so
 * the comparison can be made quantitative (see the sched_overhead
 * bench): every iteration it solves a 0/1 knapsack over *all* queued
 * prefill requests — value = deadline urgency, weight = chunk tokens
 * — to choose the chunk set, instead of popping a priority queue.
 *
 * Scheduling quality is comparable to deadline-aware policies at
 * small queue depths; the point of the reconstruction is the cost:
 * per-iteration work grows linearly with queue length (times budget
 * units), where QoServe's walk is bounded by the budget alone.
 */

#ifndef QOSERVE_SCHED_DP_SCHEDULER_HH
#define QOSERVE_SCHED_DP_SCHEDULER_HH

#include "sched/chunked_scheduler.hh"

namespace qoserve {

/**
 * Per-iteration knapsack scheduler.
 */
class DpScheduler : public ChunkedScheduler
{
  public:
    /** Tuning knobs. */
    struct Options
    {
        /** Token budget per iteration (fixed, like Sarathi). */
        int chunkTokens = 512;

        /** Knapsack quantum: tokens per DP capacity unit. */
        int tokenQuantum = 64;

        /** Largest chunk one request may take per iteration. */
        int maxItemTokens = 512;
    };

    DpScheduler(const SchedulerEnv &env, Options options,
                ChunkedSchedulerConfig cfg = {});

    const char *name() const override { return "SLOs-Serve-DP"; }

    void formBatchInto(Batch &batch, SimTime now) override;

    /** DP table cells evaluated so far (overhead diagnostics). */
    std::uint64_t dpCellsEvaluated() const { return dpCells_; }

  protected:
    double priorityOf(const Request &req, SimTime now) const override;

  private:
    Options options_;
    std::uint64_t dpCells_ = 0;

    /** Per-iteration scratch hoisted out of formBatchInto(). */
    std::vector<Request *> candidates_;
    std::vector<Request *> chosen_;
    std::vector<int> weight_;
    std::vector<double> value_;
    std::vector<double> table_; ///< (n+1) × (capacity+1), row-major.
};

} // namespace qoserve

#endif // QOSERVE_SCHED_DP_SCHEDULER_HH
