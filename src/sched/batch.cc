/**
 * @file
 * Batch aggregation helpers.
 */

#include "sched/batch.hh"

namespace qoserve {

int
Batch::prefillTokens() const
{
    int total = 0;
    for (const auto &c : prefills)
        total += c.chunkTokens;
    return total;
}

BatchWork
Batch::work() const
{
    BatchWork w;
    for (const auto &c : prefills) {
        w.prefillTokens += c.chunkTokens;
        w.prefillCtxProduct +=
            static_cast<double>(c.chunkTokens) *
            (static_cast<double>(c.contextBefore) + c.chunkTokens / 2.0);
    }
    w.numDecodes = static_cast<int>(decodes.size());
    for (const Request *r : decodes)
        w.decodeCtxSum += r->contextLength();
    return w;
}

} // namespace qoserve
