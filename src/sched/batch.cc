/**
 * @file
 * Batch aggregation helpers.
 */

#include "sched/batch.hh"

namespace qoserve {

int
Batch::prefillTokens() const
{
    int total = 0;
    for (const auto &c : prefills)
        total += c.chunkTokens;
    return total;
}

std::int64_t
Batch::decodeCtxSum() const
{
    if (decodeCtxSumCache_ < 0) {
        std::int64_t sum = 0;
        for (const Request *r : decodes)
            sum += r->contextLength();
        decodeCtxSumCache_ = sum;
    }
    return decodeCtxSumCache_;
}

void
Batch::clear()
{
    prefills.clear();
    decodes.clear();
    decodeCtxSumCache_ = -1;
}

BatchWork
Batch::work() const
{
    BatchWork w;
    for (const auto &c : prefills) {
        w.prefillTokens += c.chunkTokens;
        w.prefillCtxProduct +=
            static_cast<double>(c.chunkTokens) *
            (static_cast<double>(c.contextBefore) + c.chunkTokens / 2.0);
    }
    w.numDecodes = static_cast<int>(decodes.size());
    w.decodeCtxSum = decodeCtxSum();
    return w;
}

} // namespace qoserve
