/**
 * @file
 * The unit of work dispatched to the execution engine each iteration.
 *
 * A batch fuses one or more prefill chunks with every decoding
 * sequence, as in Sarathi-style chunked-prefill serving (§2.1).
 */

#ifndef QOSERVE_SCHED_BATCH_HH
#define QOSERVE_SCHED_BATCH_HH

#include <vector>

#include "model/perf_model.hh"
#include "sched/request.hh"

namespace qoserve {

/** One prefill chunk scheduled in a batch. */
struct ScheduledChunk
{
    Request *request = nullptr;

    /** Prompt tokens to process this iteration. */
    int chunkTokens = 0;

    /** KV context of the request before this chunk runs. */
    std::int64_t contextBefore = 0;
};

/**
 * One iteration's batch.
 */
struct Batch
{
    /** Prefill chunks, in scheduling order. */
    std::vector<ScheduledChunk> prefills;

    /** All requests in decode phase this iteration. */
    std::vector<Request *> decodes;

    /** Total prefill tokens across chunks. */
    int prefillTokens() const;

    /** True when nothing is scheduled. */
    bool
    empty() const
    {
        return prefills.empty() && decodes.empty();
    }

    /**
     * Summed KV context over the decode side, computed once.
     *
     * Several consumers (the dynamic-chunk solver, the execution-time
     * model) need this sum each iteration; the first call walks the
     * decode list, later calls return the memo. Valid only while the
     * decode set and contexts are frozen, i.e. between formBatch()
     * and onBatchComplete().
     */
    std::int64_t decodeCtxSum() const;

    /** Reset for reuse, keeping vector capacity. */
    void clear();

    /** Aggregate work for the execution-time model. */
    BatchWork work() const;

  private:
    /** Memo for decodeCtxSum(); -1 until computed. */
    mutable std::int64_t decodeCtxSumCache_ = -1;
};

} // namespace qoserve

#endif // QOSERVE_SCHED_BATCH_HH
