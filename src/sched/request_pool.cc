/**
 * @file
 * Request slab-pool implementation.
 */

#include "sched/request_pool.hh"

#include <new>

#include "simcore/logging.hh"

namespace qoserve {

// Slabs come from operator new[] on std::byte, which only guarantees
// fundamental alignment; Request holds doubles, integers and standard
// containers, all of which fit.
static_assert(alignof(Request) <= alignof(std::max_align_t),
              "Request over-aligned for slab storage");

RequestPool::~RequestPool()
{
    QOSERVE_ASSERT(liveCount_ == 0,
                   "request pool destroyed with ", liveCount_,
                   " live requests");
}

void
RequestPool::grow()
{
    auto slab = std::make_unique<std::byte[]>(kSlabRequests *
                                              sizeof(Request));
    std::byte *base = slab.get();
    // Push in reverse so the free list hands out slots in ascending
    // address order: consecutive admissions land adjacent in memory.
    for (std::size_t i = kSlabRequests; i-- > 0;) {
        freeList_.push_back(
            reinterpret_cast<Request *>(base + i * sizeof(Request)));
    }
    slabs_.push_back(std::move(slab));
}

Request *
RequestPool::create(const RequestSpec &spec, const QosTier &tier,
                    const AppStats &app_stats)
{
    if (freeList_.empty())
        grow();
    Request *slot = freeList_.back();
    freeList_.pop_back();
    ++liveCount_;
    return new (slot) Request(spec, tier, app_stats);
}

void
RequestPool::destroy(Request *req)
{
    QOSERVE_ASSERT(req != nullptr, "destroying a null request");
    QOSERVE_ASSERT(liveCount_ > 0,
                   "request pool destroy with no live requests");
    req->~Request();
    --liveCount_;
    freeList_.push_back(req);
}

} // namespace qoserve
