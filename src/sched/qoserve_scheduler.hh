/**
 * @file
 * The QoServe scheduler — the paper's core contribution (§3).
 *
 * Combines four techniques on top of the chunked-prefill machinery:
 *
 *  1. Dynamic chunking (§3.3): each iteration, the prefill chunk is
 *     sized to the largest value whose predicted execution time fits
 *     the minimum TBT slack of the interactive decoding requests,
 *     using the batch-latency predictor (§3.6.1).
 *  2. Hybrid prioritization (§3.4, Eqs. 4-5): request priority
 *     interpolates between EDF (deadline term) and SRPF (remaining
 *     work term) through the alpha parameter.
 *  3. Eager relegation (§3.4): requests that have violated — or are
 *     about to violate — their TTFT/TTLT deadline move to the back
 *     of the queue ("relegated") and are serviced opportunistically;
 *     under overload, low-priority (non-important) requests are
 *     relegated first, using application hints.
 *  4. Selective preemption (§3.4): partially prefilled requests may
 *     be preempted by higher-priority arrivals, but never into a
 *     deadline violation, and decoding requests are never preempted.
 */

#ifndef QOSERVE_SCHED_QOSERVE_SCHEDULER_HH
#define QOSERVE_SCHED_QOSERVE_SCHEDULER_HH

#include "predictor/latency_predictor.hh"
#include "sched/chunked_scheduler.hh"

namespace qoserve {

/**
 * Feature flags and tuning parameters of QoServe.
 *
 * The three enable* flags correspond to the ablation rows of
 * Table 5 (DC, DC+ER, DC+ER+HP).
 */
struct QoServeConfig
{
    /** Hybrid interpolation factor, milliseconds per token (§3.6). */
    double alphaMsPerToken = 8.0;

    /**
     * Load-adaptive alpha (§3.6, "For variable-QPS, we employ
     * load-adaptive tuning"): when enabled, the effective alpha
     * interpolates between alphaLowLoadMs at an empty queue and
     * alphaMsPerToken once the prefill backlog reaches the overload
     * threshold — small alpha protects tail latency at low load,
     * large alpha minimizes violations under overload (Fig. 14).
     */
    bool adaptiveAlpha = false;

    /** Alpha used at low load when adaptiveAlpha is on (ms/token). */
    double alphaLowLoadMs = 1.0;

    /** Enable dynamic chunking (needs env.predictor). */
    bool enableDynamicChunking = true;

    /** Enable eager relegation. */
    bool enableEagerRelegation = true;

    /** Enable the SRPF term; disabled makes the priority pure EDF. */
    bool enableHybridPriority = true;

    /** Enable urgent-inflight protection (selective preemption). */
    bool enableSelectivePreemption = true;

    /**
     * Lower bound for the dynamic chunk: the "original smaller chunk
     * size necessary to meet TBT" the scheduler reverts to when
     * slack runs out (§3.5). Guarantees prefill progress even when
     * interactive decodes leave no measured slack. The default is
     * the 192-token configuration (cf. the Sarathi-192 reference in
     * Fig. 15a): one floor iteration stays safely inside the 50 ms
     * TBT budget with a loaded decode batch, where 256 sits right at
     * the edge.
     */
    int minChunkTokens = 192;

    /** Upper bound for the dynamic chunk (throughput saturation). */
    int maxChunkTokens = 2560;

    /** Dynamic chunk granularity. */
    int chunkStep = 64;

    /**
     * Memoise the chunk-budget solve's predictor queries across
     * iterations. Cached values are reused only inside their
     * leaf-stability box (see ChunkSolverCache), so results are
     * bitwise identical with the memo on or off; the flag exists as
     * the compatibility switch for golden-output comparison.
     */
    bool enableSolverMemo = true;

    /**
     * Estimated prefill-queue drain time beyond which the system is
     * considered overloaded and non-important requests are eagerly
     * relegated before they violate.
     */
    SimDuration overloadThreshold = 6.0;
};

/**
 * QoS-driven scheduler (Algorithm 1).
 */
class QoServeScheduler : public ChunkedScheduler
{
  public:
    /**
     * @param env Replica services; env.predictor must be non-null
     *        when dynamic chunking is enabled.
     * @param qos_cfg QoServe feature flags and tuning.
     * @param cfg Base chunked-scheduler knobs; fixedChunkTokens is
     *        the fallback chunk when dynamic chunking is disabled.
     */
    QoServeScheduler(const SchedulerEnv &env, QoServeConfig qos_cfg = {},
                     ChunkedSchedulerConfig cfg = {});

    const char *name() const override { return "QoServe"; }

    /** Configuration in effect. */
    const QoServeConfig &qosConfig() const { return qosCfg_; }

    /** Chunk-solver memo counters (diagnostics, benches). */
    const ChunkSolverCache::Stats &
    solverCacheStats() const
    {
        return solverCache_.stats();
    }

    SchedulerAuditView auditView(bool full_detail) const override;
    using ChunkedScheduler::auditView;

    /**
     * True when the estimated prefill backlog exceeds the overload
     * threshold (drives hint-based relegation).
     */
    bool overloaded(SimTime now) const;

    /**
     * The paper's WILL_VIOLATE test: the request has missed, or is
     * projected to miss, its TTFT (interactive) or TTLT
     * (non-interactive) deadline even if scheduled immediately.
     */
    bool willViolate(const Request &req, SimTime now) const;

    /**
     * The alpha (seconds/token) currently in effect: 0 with hybrid
     * priority disabled, the configured constant, or the load-ramped
     * value when adaptiveAlpha is on.
     */
    double effectiveAlpha() const;

  protected:
    double priorityOf(const Request &req, SimTime now) const override;
    int chunkBudget(SimTime now, const Batch &batch) const override;
    bool shouldRelegate(const Request &req, SimTime now) const override;
    void collectUrgentInflight(SimTime now,
                               std::vector<Request *> &out) const override;
    void onCompositionChange() override;

  private:
    QoServeConfig qosCfg_;

    /**
     * Prediction memo for the chunk-budget solve; mutable because
     * chunkBudget() is logically const (the memo never changes any
     * observable result — hits are bitwise identical by the box
     * proof).
     */
    mutable ChunkSolverCache solverCache_;
};

} // namespace qoserve

#endif // QOSERVE_SCHED_QOSERVE_SCHEDULER_HH
