/**
 * @file
 * Shared machinery for chunked-prefill iteration schedulers.
 *
 * Implements the skeleton of Algorithm 1: every decoding request runs
 * each iteration; a prefill token budget is filled from a priority-
 * ordered queue, possibly spanning several requests; queue membership
 * and KV-cache admission are handled here. Policies specialise three
 * hooks — the priority key, the chunk budget, and the relegation
 * test — which is exactly the design space the paper explores
 * (FCFS/EDF/SJF/SRPF vs. hybrid prioritization, fixed vs. dynamic
 * chunks, no relegation vs. eager relegation).
 */

#ifndef QOSERVE_SCHED_CHUNKED_SCHEDULER_HH
#define QOSERVE_SCHED_CHUNKED_SCHEDULER_HH

#include <set>
#include <unordered_set>
#include <vector>

#include "sched/scheduler.hh"

namespace qoserve {

/** Completion callback invoked when a request finishes. */
using CompletionFn = std::function<void(Request *)>;

/**
 * Knobs common to all chunked schedulers.
 */
struct ChunkedSchedulerConfig
{
    /** Fixed prefill chunk budget per iteration (Sarathi default). */
    int fixedChunkTokens = 256;

    /** Maximum concurrent decode-phase requests. */
    int maxDecodeBatch = 128;
};

/**
 * Base class implementing queue and batch mechanics.
 */
class ChunkedScheduler : public Scheduler
{
  public:
    ChunkedScheduler(const SchedulerEnv &env, ChunkedSchedulerConfig cfg);

    void enqueue(Request *req, SimTime now) override;
    Batch formBatch(SimTime now) override;
    void formBatchInto(Batch &batch, SimTime now) override;
    void onBatchComplete(const Batch &batch, SimTime end) override;
    bool hasWork() const override;
    std::size_t decodeQueueSize() const override;
    std::size_t prefillQueueSize() const override;
    const SchedulerStats &stats() const override;
    SchedulerAuditView auditView(bool full_detail) const override;
    using Scheduler::auditView;

    /** Install the replica's completion handler. */
    void setCompletionHandler(CompletionFn fn) { onComplete_ = std::move(fn); }

    /** Prompt tokens still waiting in the prefill queue. */
    std::int64_t
    pendingPrefillTokens() const override
    {
        return pendingPrefill_;
    }

  protected:
    /**
     * Priority key of a request; smaller keys are served first.
     * Ties break on request id. Must be a pure function of the
     * request's current progress (re-evaluated whenever progress
     * changes), not of wall time spent in the queue.
     */
    virtual double priorityOf(const Request &req, SimTime now) const = 0;

    /**
     * Prefill token budget for this iteration.
     *
     * @param now Iteration start time.
     * @param batch Batch under construction; decodes are final.
     */
    virtual int chunkBudget(SimTime now, const Batch &batch) const;

    /**
     * Eager-relegation test (Algorithm 1's WILL_VIOLATE). Default:
     * never relegate.
     */
    virtual bool shouldRelegate(const Request &req, SimTime now) const;

    /**
     * Collect in-flight prefill requests that must run this
     * iteration to avoid a deadline violation (selective-preemption
     * protection, §3.4). Default: none.
     */
    virtual void collectUrgentInflight(SimTime now,
                                       std::vector<Request *> &out) const;

    /**
     * Hook fired whenever the batch composition changes: a request is
     * admitted, relegated, preempted, joins the decode batch, or
     * finishes. Policies that memoise composition-dependent work
     * (e.g. QoServe's chunk-budget solve) invalidate here. Default:
     * nothing.
     */
    virtual void onCompositionChange() {}

    /** Estimated wall time to prefill @p tokens at full throughput. */
    SimDuration estPrefillTime(double tokens) const;

    /** Estimated wall time to emit @p tokens decode tokens. */
    SimDuration estDecodeTime(double tokens) const;

    /** Environment services. */
    const SchedulerEnv &env() const { return env_; }

    /** Configuration. */
    const ChunkedSchedulerConfig &config() const { return cfg_; }

    /** Requests currently holding a spot in the decode queue. */
    const std::vector<Request *> &decodeQueue() const { return decodes_; }

    /** Highest-priority prefill request, or nullptr when idle. */
    Request *peekPrefillHead() const;

    /** Ordered snapshot of the prefill queue (diagnostics, hooks). */
    std::vector<Request *> prefillSnapshot() const;

    /** Snapshot into @p out, reusing its capacity (hot paths). */
    void prefillSnapshotInto(std::vector<Request *> &out) const;

    /**
     * Requests with some prefill chunks processed that are still in
     * the prefill queue — the candidates selective preemption must
     * protect. Kept small by construction (bounded by chunk budget
     * over iterations).
     */
    const std::unordered_set<Request *> &
    partiallyPrefilled() const
    {
        return partiallyPrefilled_;
    }

    /** One-iteration wall-time estimate for a typical mixed batch. */
    SimDuration typicalIterationTime() const { return decodeTokenTime_; }

    /**
     * Re-key @p req in the prefill queue after a state change.
     * Safe to call for requests not currently queued.
     */
    void rekey(Request *req, SimTime now);

    /** Relegate @p req (moves it behind all regular requests). */
    void relegate(Request *req, SimTime now);

    /** Mutable stats for subclasses. */
    SchedulerStats &mutableStats() { return stats_; }

    /**
     * Try to add a chunk for @p req to @p batch within @p budget
     * (KV admission and decode-slot accounting included).
     *
     * @return Tokens actually scheduled (0 on skip).
     */
    int tryScheduleChunk(Request *req, Batch &batch, int budget,
                         int &decode_slots);

    /**
     * Prefill token budget remaining after reserving KV for decode
     * growth, given the policy budget @p policy_budget.
     */
    int kvCappedBudget(int policy_budget) const;

    /**
     * Preempt one victim's KV to make room; returns success.
     *
     * Victim order: lowest-priority partially-prefilled request
     * first (no token emitted yet), else the newest decoding request
     * — which may be the very request whose growth triggered the
     * preemption (vLLM-style self-preemption with recompute).
     */
    bool preemptForKv(SimTime now);

  private:
    struct QueueOrder
    {
        bool
        operator()(const Request *a, const Request *b) const
        {
            // Relegated requests always sort behind regular ones
            // (Algorithm 1's drop_status comparison).
            if (a->relegated() != b->relegated())
                return !a->relegated();
            if (a->cachedPriority != b->cachedPriority)
                return a->cachedPriority < b->cachedPriority;
            return a->id() < b->id();
        }
    };

    using PrefillQueue = std::set<Request *, QueueOrder>;

    /** Finish bookkeeping for a completed request. */
    void finish(Request *req);

    SchedulerEnv env_;
    ChunkedSchedulerConfig cfg_;
    PrefillQueue prefillQueue_;
    std::unordered_set<Request *> partiallyPrefilled_;
    std::vector<Request *> decodes_;
    std::int64_t pendingPrefill_ = 0;
    SchedulerStats stats_;
    CompletionFn onComplete_;

    /** Per-iteration scratch hoisted out of formBatchInto(). */
    std::vector<Request *> urgentScratch_;
    std::unordered_set<Request *> takenScratch_;

    /** Cached estimate: prefill tokens per second at large chunks. */
    double prefillRate_ = 0.0;

    /** Cached estimate: seconds per decode token (one iteration). */
    double decodeTokenTime_ = 0.0;
};

} // namespace qoserve

#endif // QOSERVE_SCHED_CHUNKED_SCHEDULER_HH
