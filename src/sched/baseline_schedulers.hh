/**
 * @file
 * Baseline scheduling policies from §2.4 and §4.
 *
 * All four run on the shared chunked-prefill machinery with a fixed
 * chunk budget (the Sarathi configuration), differing only in the
 * priority key:
 *
 *  - Sarathi-FCFS: arrival order (the production default);
 *  - Sarathi-EDF: earliest urgency deadline (TTFT or TTLT SLO);
 *  - Sarathi-SJF: shortest estimated total job;
 *  - Sarathi-SRPF: shortest remaining prompt first.
 */

#ifndef QOSERVE_SCHED_BASELINE_SCHEDULERS_HH
#define QOSERVE_SCHED_BASELINE_SCHEDULERS_HH

#include "sched/chunked_scheduler.hh"

namespace qoserve {

/** First-come-first-served over arrival time. */
class FcfsScheduler : public ChunkedScheduler
{
  public:
    FcfsScheduler(const SchedulerEnv &env, ChunkedSchedulerConfig cfg = {});

    const char *name() const override { return "Sarathi-FCFS"; }

  protected:
    double priorityOf(const Request &req, SimTime now) const override;
};

/** Earliest-deadline-first over the urgency deadline. */
class EdfScheduler : public ChunkedScheduler
{
  public:
    EdfScheduler(const SchedulerEnv &env, ChunkedSchedulerConfig cfg = {});

    const char *name() const override { return "Sarathi-EDF"; }

  protected:
    double priorityOf(const Request &req, SimTime now) const override;
};

/** Shortest-job-first over estimated total processing tokens. */
class SjfScheduler : public ChunkedScheduler
{
  public:
    SjfScheduler(const SchedulerEnv &env, ChunkedSchedulerConfig cfg = {});

    const char *name() const override { return "Sarathi-SJF"; }

  protected:
    double priorityOf(const Request &req, SimTime now) const override;
};

/** Shortest-remaining-prompt-first (preemptive SJF on prefill). */
class SrpfScheduler : public ChunkedScheduler
{
  public:
    SrpfScheduler(const SchedulerEnv &env, ChunkedSchedulerConfig cfg = {});

    const char *name() const override { return "Sarathi-SRPF"; }

  protected:
    double priorityOf(const Request &req, SimTime now) const override;
};

/**
 * Medha-style adaptive chunking (§4.5.1) under FCFS ordering.
 *
 * Starts each prefill with a large chunk and progressively shrinks
 * the chunk as the request's cached context grows, so the iteration
 * time stays at a fixed TBT target despite the quadratic attention
 * term. Unlike QoServe it is unaware of slack accumulated by the
 * current decode batch.
 */
class MedhaScheduler : public ChunkedScheduler
{
  public:
    struct Options
    {
        /** Iteration-time target the chunk is sized for. */
        SimDuration tbtTarget = 0.05;

        /** Upper bound on the chunk. */
        int maxChunkTokens = 4096;

        /** Chunk granularity. */
        int chunkStep = 64;
    };

    MedhaScheduler(const SchedulerEnv &env, Options options,
                   ChunkedSchedulerConfig cfg = {});

    const char *name() const override { return "Medha"; }

  protected:
    double priorityOf(const Request &req, SimTime now) const override;
    int chunkBudget(SimTime now, const Batch &batch) const override;

  private:
    Options options_;
};

} // namespace qoserve

#endif // QOSERVE_SCHED_BASELINE_SCHEDULERS_HH
