/**
 * @file
 * Baseline policy implementations.
 */

#include "sched/baseline_schedulers.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

FcfsScheduler::FcfsScheduler(const SchedulerEnv &env,
                             ChunkedSchedulerConfig cfg)
    : ChunkedScheduler(env, cfg)
{
}

double
FcfsScheduler::priorityOf(const Request &req, SimTime) const
{
    return req.spec().arrival.seconds();
}

EdfScheduler::EdfScheduler(const SchedulerEnv &env,
                           ChunkedSchedulerConfig cfg)
    : ChunkedScheduler(env, cfg)
{
}

double
EdfScheduler::priorityOf(const Request &req, SimTime) const
{
    return req.urgencyDeadline().seconds();
}

SjfScheduler::SjfScheduler(const SchedulerEnv &env,
                           ChunkedSchedulerConfig cfg)
    : ChunkedScheduler(env, cfg)
{
}

double
SjfScheduler::priorityOf(const Request &req, SimTime) const
{
    // Estimated total work: whole prompt plus conservative decode
    // estimate (the decode length is unknown a priori).
    return static_cast<double>(req.spec().promptTokens) +
           req.conservativeDecodeTokens();
}

SrpfScheduler::SrpfScheduler(const SchedulerEnv &env,
                             ChunkedSchedulerConfig cfg)
    : ChunkedScheduler(env, cfg)
{
}

double
SrpfScheduler::priorityOf(const Request &req, SimTime) const
{
    return static_cast<double>(req.prefillRemaining());
}

MedhaScheduler::MedhaScheduler(const SchedulerEnv &env, Options options,
                               ChunkedSchedulerConfig cfg)
    : ChunkedScheduler(env, cfg), options_(options)
{
    QOSERVE_ASSERT(options_.tbtTarget > 0.0, "TBT target must be positive");
    QOSERVE_ASSERT(options_.maxChunkTokens >= options_.chunkStep,
                   "max chunk below one step");
}

double
MedhaScheduler::priorityOf(const Request &req, SimTime) const
{
    return req.spec().arrival.seconds();
}

int
MedhaScheduler::chunkBudget(SimTime, const Batch &batch) const
{
    // Size the chunk so this iteration's execution time stays at the
    // TBT target given the head request's accumulated context — the
    // chunk therefore shrinks as the prefill advances.
    const Request *head = peekPrefillHead();
    double context =
        head != nullptr ? static_cast<double>(head->contextLength()) : 0.0;

    BatchWork base;
    base.numDecodes = static_cast<int>(batch.decodes.size());
    for (const Request *r : batch.decodes)
        base.decodeCtxSum += r->contextLength();

    auto iter_time = [&](int chunk) {
        BatchWork w = base;
        w.prefillTokens = chunk;
        w.prefillCtxProduct =
            static_cast<double>(chunk) * (context + chunk / 2.0);
        return env().perf->iterationTime(w);
    };

    int step = options_.chunkStep;
    int lo = 0;
    int hi = options_.maxChunkTokens / step;
    if (iter_time(hi * step) <= options_.tbtTarget)
        return hi * step;
    while (hi - lo > 1) {
        int mid = lo + (hi - lo) / 2;
        if (iter_time(mid * step) <= options_.tbtTarget)
            lo = mid;
        else
            hi = mid;
    }
    // Always make progress: never sink below one step.
    return std::max(step, lo * step);
}

} // namespace qoserve
