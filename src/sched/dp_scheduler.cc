/**
 * @file
 * DP scheduler implementation.
 */

#include "sched/dp_scheduler.hh"

#include <algorithm>
#include <cmath>

#include "simcore/logging.hh"

namespace qoserve {

DpScheduler::DpScheduler(const SchedulerEnv &env, Options options,
                         ChunkedSchedulerConfig cfg)
    : ChunkedScheduler(env, cfg), options_(options)
{
    QOSERVE_ASSERT(options_.chunkTokens > 0 && options_.tokenQuantum > 0,
                   "bad DP options");
    QOSERVE_ASSERT(options_.maxItemTokens >= options_.tokenQuantum,
                   "item below one quantum");
}

double
DpScheduler::priorityOf(const Request &req, SimTime) const
{
    // The queue order only provides a stable iteration order; the
    // actual selection is the per-iteration knapsack.
    return req.urgencyDeadline();
}

Batch
DpScheduler::formBatch(SimTime now)
{
    Batch batch;
    batch.decodes = decodeQueue();

    int budget = kvCappedBudget(options_.chunkTokens);
    int decode_slots = config().maxDecodeBatch -
                       static_cast<int>(batch.decodes.size());

    // Same wedge guard as the base scheduler: if every block is held
    // by paused prefills and nothing decodes, reclaim a victim.
    if (budget <= 0 && batch.decodes.empty() &&
        prefillQueueSize() > 0) {
        if (preemptForKv(now))
            budget = kvCappedBudget(options_.chunkTokens);
    }

    std::vector<Request *> candidates = prefillSnapshot();
    if (budget > 0 && !candidates.empty()) {
        // Build knapsack items: one per queued request.
        int capacity = budget / options_.tokenQuantum;
        int n = static_cast<int>(candidates.size());

        std::vector<int> weight(n);
        std::vector<double> value(n);
        for (int i = 0; i < n; ++i) {
            Request *r = candidates[i];
            int take =
                std::min(r->prefillRemaining(), options_.maxItemTokens);
            weight[i] = std::max(
                1, (take + options_.tokenQuantum - 1) /
                       options_.tokenQuantum);
            // Urgency value: inverse slack to the urgency deadline,
            // so requests close to violating dominate the solution;
            // a completion bonus favours finishing prefills.
            double slack =
                std::max(0.01, r->urgencyDeadline() - now -
                                   estPrefillTime(static_cast<double>(
                                       r->prefillRemaining())));
            value[i] = 1.0 / slack;
            if (take == r->prefillRemaining())
                value[i] *= 1.5;
        }

        // 0/1 knapsack over all queued requests — the O(N * M)
        // per-iteration cost the paper's complexity argument is
        // about.
        std::vector<std::vector<double>> table(
            n + 1, std::vector<double>(capacity + 1, 0.0));
        for (int i = 1; i <= n; ++i) {
            for (int c = 0; c <= capacity; ++c) {
                ++dpCells_;
                table[i][c] = table[i - 1][c];
                if (weight[i - 1] <= c) {
                    table[i][c] = std::max(
                        table[i][c], table[i - 1][c - weight[i - 1]] +
                                         value[i - 1]);
                }
            }
        }

        // Backtrack the chosen set.
        std::vector<Request *> chosen;
        int c = capacity;
        for (int i = n; i >= 1; --i) {
            if (table[i][c] != table[i - 1][c]) {
                chosen.push_back(candidates[i - 1]);
                c -= weight[i - 1];
            }
        }
        // Serve the chosen set most-urgent first.
        std::sort(chosen.begin(), chosen.end(),
                  [](Request *a, Request *b) {
                      return a->urgencyDeadline() < b->urgencyDeadline();
                  });
        for (Request *r : chosen) {
            if (budget <= 0)
                break;
            int cap =
                std::min(budget, std::min(r->prefillRemaining(),
                                          options_.maxItemTokens));
            int got = tryScheduleChunk(r, batch, cap, decode_slots);
            budget -= got;
        }
    }

    if (!batch.empty()) {
        SchedulerStats &stats = mutableStats();
        ++stats.batchesFormed;
        stats.prefillTokensScheduled += batch.prefillTokens();
        stats.decodeTokensScheduled += batch.decodes.size();
    }
    return batch;
}

} // namespace qoserve
