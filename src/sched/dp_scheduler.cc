/**
 * @file
 * DP scheduler implementation.
 */

#include "sched/dp_scheduler.hh"

#include <algorithm>
#include <cmath>

#include "simcore/logging.hh"

namespace qoserve {

DpScheduler::DpScheduler(const SchedulerEnv &env, Options options,
                         ChunkedSchedulerConfig cfg)
    : ChunkedScheduler(env, cfg), options_(options)
{
    QOSERVE_ASSERT(options_.chunkTokens > 0 && options_.tokenQuantum > 0,
                   "bad DP options");
    QOSERVE_ASSERT(options_.maxItemTokens >= options_.tokenQuantum,
                   "item below one quantum");
}

double
DpScheduler::priorityOf(const Request &req, SimTime) const
{
    // The queue order only provides a stable iteration order; the
    // actual selection is the per-iteration knapsack.
    return req.urgencyDeadline().seconds();
}

void
DpScheduler::formBatchInto(Batch &batch, SimTime now)
{
    batch.clear();
    batch.decodes = decodeQueue();

    int budget = kvCappedBudget(options_.chunkTokens);
    int decode_slots = config().maxDecodeBatch -
                       static_cast<int>(batch.decodes.size());

    // Same wedge guard as the base scheduler: if every block is held
    // by paused prefills and nothing decodes, reclaim a victim.
    if (budget <= 0 && batch.decodes.empty() &&
        prefillQueueSize() > 0) {
        if (preemptForKv(now))
            budget = kvCappedBudget(options_.chunkTokens);
    }

    prefillSnapshotInto(candidates_);
    if (budget > 0 && !candidates_.empty()) {
        // Build knapsack items: one per queued request.
        int capacity = budget / options_.tokenQuantum;
        int n = static_cast<int>(candidates_.size());

        weight_.assign(static_cast<std::size_t>(n), 0);
        value_.assign(static_cast<std::size_t>(n), 0.0);
        for (int i = 0; i < n; ++i) {
            Request *r = candidates_[i];
            int take =
                std::min(r->prefillRemaining(), options_.maxItemTokens);
            weight_[i] = std::max(
                1, (take + options_.tokenQuantum - 1) /
                       options_.tokenQuantum);
            // Urgency value: inverse slack to the urgency deadline,
            // so requests close to violating dominate the solution;
            // a completion bonus favours finishing prefills.
            double slack =
                std::max(0.01, r->urgencyDeadline() - now -
                                   estPrefillTime(static_cast<double>(
                                       r->prefillRemaining())));
            value_[i] = 1.0 / slack;
            if (take == r->prefillRemaining())
                value_[i] *= 1.5;
        }

        // 0/1 knapsack over all queued requests — the O(N * M)
        // per-iteration cost the paper's complexity argument is
        // about. The table is a flat row-major scratch member so the
        // allocation is amortised across iterations.
        int stride = capacity + 1;
        table_.assign(static_cast<std::size_t>(n + 1) *
                          static_cast<std::size_t>(stride),
                      0.0);
        auto cell = [&](int i, int c) -> double & {
            return table_[static_cast<std::size_t>(i) *
                              static_cast<std::size_t>(stride) +
                          static_cast<std::size_t>(c)];
        };
        for (int i = 1; i <= n; ++i) {
            for (int c = 0; c <= capacity; ++c) {
                ++dpCells_;
                cell(i, c) = cell(i - 1, c);
                if (weight_[i - 1] <= c) {
                    cell(i, c) = std::max(
                        cell(i, c), cell(i - 1, c - weight_[i - 1]) +
                                        value_[i - 1]);
                }
            }
        }

        // Backtrack the chosen set.
        chosen_.clear();
        int c = capacity;
        for (int i = n; i >= 1; --i) {
            if (cell(i, c) != cell(i - 1, c)) {
                chosen_.push_back(candidates_[i - 1]);
                c -= weight_[i - 1];
            }
        }
        // Serve the chosen set most-urgent first.
        std::sort(chosen_.begin(), chosen_.end(),
                  [](Request *a, Request *b) {
                      return a->urgencyDeadline() < b->urgencyDeadline();
                  });
        for (Request *r : chosen_) {
            if (budget <= 0)
                break;
            int cap =
                std::min(budget, std::min(r->prefillRemaining(),
                                          options_.maxItemTokens));
            int got = tryScheduleChunk(r, batch, cap, decode_slots);
            budget -= got;
        }
    }

    if (!batch.empty()) {
        SchedulerStats &stats = mutableStats();
        ++stats.batchesFormed;
        stats.prefillTokensScheduled += batch.prefillTokens();
        stats.decodeTokensScheduled += batch.decodes.size();
    }
}

} // namespace qoserve
