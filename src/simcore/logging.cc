/**
 * @file
 * Implementation of the error-reporting helpers.
 */

#include "simcore/logging.hh"

#include <cstdio>

namespace qoserve {
namespace detail {

void
fatalExit(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panicAbort(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
warnPrint(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informPrint(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace qoserve
