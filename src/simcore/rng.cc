/**
 * @file
 * SplitMix64-based deterministic RNG implementation.
 */

#include "simcore/rng.hh"

#include <cmath>

#include "simcore/logging.hh"

namespace qoserve {

namespace {

/** One SplitMix64 step: advance state and mix to an output. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** FNV-1a hash of a string, used to derive child-stream seeds. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : state_(seed)
{
    // Warm up so that small seeds (0, 1, 2...) diverge immediately.
    splitmix64(state_);
}

Rng
Rng::split(const std::string &tag) const
{
    std::uint64_t s = state_;
    std::uint64_t mixed = splitmix64(s) ^ fnv1a(tag);
    return Rng(mixed);
}

std::uint64_t
Rng::nextU64()
{
    return splitmix64(state_);
}

double
Rng::uniform()
{
    // 53 random bits into the double mantissa -> [0, 1).
    return (nextU64() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::uniform(double lo, double hi)
{
    QOSERVE_ASSERT(lo <= hi, "uniform bounds inverted");
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    QOSERVE_ASSERT(lo <= hi, "uniformInt bounds inverted");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextU64() % span);
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 <= 1e-300)
        u1 = 1e-300;
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    hasSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double rate)
{
    QOSERVE_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u = uniform();
    if (u <= 1e-300)
        u = 1e-300;
    return -std::log(u) / rate;
}

double
Rng::gamma(double shape, double scale)
{
    QOSERVE_ASSERT(shape > 0.0 && scale > 0.0,
                   "gamma parameters must be positive");
    // Marsaglia & Tsang (2000). For shape < 1, boost to shape + 1
    // and scale by U^(1/shape).
    double boost = 1.0;
    double k = shape;
    if (k < 1.0) {
        double u = uniform();
        if (u <= 1e-300)
            u = 1e-300;
        boost = std::pow(u, 1.0 / k);
        k += 1.0;
    }
    double d = k - 1.0 / 3.0;
    double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x = normal();
        double v = 1.0 + c * x;
        if (v <= 0.0)
            continue;
        v = v * v * v;
        double u = uniform();
        if (u <= 1e-300)
            u = 1e-300;
        double x2 = x * x;
        if (u < 1.0 - 0.0331 * x2 * x2 ||
            std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
            return boost * d * v * scale;
        }
    }
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

} // namespace qoserve
