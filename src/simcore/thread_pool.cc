/**
 * @file
 * Work-queue thread pool implementation.
 */

#include "simcore/thread_pool.hh"

#include <atomic>
#include <string>

#include "simcore/logging.hh"

namespace qoserve {
namespace par {

int
hardwareJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
resolveJobs(int jobs)
{
    if (jobs == 0)
        return hardwareJobs();
    return jobs < 1 ? 1 : jobs;
}

Rng
taskRng(std::uint64_t seed, std::size_t index)
{
    return Rng(seed).split("task" + std::to_string(index));
}

ThreadPool::ThreadPool(int threads)
{
    int count = resolveJobs(threads);
    workers_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    QOSERVE_ASSERT(task != nullptr, "null task submitted");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        QOSERVE_ASSERT(!stopping_, "submit() after pool shutdown");
        queue_.push_back(std::move(task));
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock,
                  [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                allIdle_.notify_all();
        }
    }
}

namespace detail {

void
runIndexed(int jobs, std::size_t n,
           const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;

    // Serial path: jobs = 1 is the plain loop, bit-for-bit.
    if (jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::size_t thread_count =
        std::min<std::size_t>(static_cast<std::size_t>(jobs), n);
    std::vector<std::exception_ptr> errors(n);
    std::atomic<std::size_t> next{0};

    auto drain = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    {
        ThreadPool pool(static_cast<int>(thread_count));
        for (std::size_t t = 0; t < thread_count; ++t)
            pool.submit(drain);
        pool.wait();
    }

    // Deterministic error behavior: the lowest failing index wins,
    // exactly as in the serial loop (which would have thrown there
    // first).
    for (std::size_t i = 0; i < n; ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }
}

} // namespace detail

} // namespace par
} // namespace qoserve
