/**
 * @file
 * Deterministic parallel execution for independent simulations.
 *
 * Every evaluation artifact in this reproduction is produced by
 * sweeping dozens of fully independent simulations — (policy, QPS,
 * seed) runs in the benches, probe runs inside the goodput search,
 * per-tree bagging in the forest predictor. qoserve::par runs those
 * fan-outs on a small work-queue thread pool while preserving
 * bit-for-bit determinism:
 *
 *  - tasks never share mutable state; each derives any randomness it
 *    needs from (seed, index) via taskRng(), not from a shared stream;
 *  - results are joined in index order, so reductions see the same
 *    operand order regardless of completion order;
 *  - exceptions are re-thrown in index order (the lowest failing
 *    index wins), so error behavior is reproducible too.
 *
 * Under this contract, parallelFor/parallelMap with N threads produce
 * exactly the output of the serial loop, and jobs = 1 *is* the serial
 * loop (no threads are spawned).
 */

#ifndef QOSERVE_SIMCORE_THREAD_POOL_HH
#define QOSERVE_SIMCORE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "simcore/rng.hh"

namespace qoserve {
namespace par {

/**
 * Number of worker threads to use by default: the hardware
 * concurrency, or 1 when the runtime cannot report it.
 */
int hardwareJobs();

/**
 * Resolve a user-facing --jobs value: 0 means "auto" (hardware
 * concurrency); anything else is clamped to at least 1.
 */
int resolveJobs(int jobs);

/**
 * Independent RNG stream for task @p index of a fan-out seeded by
 * @p seed. A pure function of (seed, index): the stream does not
 * depend on which thread runs the task or in what order.
 */
Rng taskRng(std::uint64_t seed, std::size_t index);

/**
 * A small fixed-size work-queue thread pool.
 *
 * Tasks submitted via submit() are executed by the worker threads in
 * FIFO order; wait() blocks until the queue is drained and all
 * workers are idle. The pool itself imposes no result ordering —
 * parallelFor/parallelMap build the deterministic join on top.
 */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means hardwareJobs(). */
    explicit ThreadPool(int threads);

    /** Drains the queue, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. Must not be called after shutdown began. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Number of worker threads. */
    int threadCount() const { return static_cast<int>(workers_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allIdle_;
    std::size_t active_ = 0;
    bool stopping_ = false;
};

namespace detail {

/** Run body(0..n-1) across up to @p jobs threads; rethrow in order. */
void runIndexed(int jobs, std::size_t n,
                const std::function<void(std::size_t)> &body);

} // namespace detail

/**
 * Parallel loop over [0, n). With jobs <= 1 this is exactly the
 * serial `for` loop in the calling thread. With jobs > 1, iterations
 * run on a work-queue pool; the call returns once all have finished.
 * If iterations throw, the exception of the lowest index is
 * re-thrown after the loop drains.
 *
 * @param jobs Worker threads (0 = hardware concurrency).
 * @param n Iteration count.
 * @param body Iteration body; must not share mutable state across
 *        indices (derive per-task randomness via taskRng()).
 */
template <typename Body>
void
parallelFor(int jobs, std::size_t n, Body &&body)
{
    detail::runIndexed(resolveJobs(jobs), n,
                       std::function<void(std::size_t)>(
                           std::forward<Body>(body)));
}

/**
 * Parallel map over [0, n): returns {fn(0), ..., fn(n-1)} with
 * results joined in index order, independent of completion order.
 * Same execution and exception contract as parallelFor.
 */
template <typename Fn>
auto
parallelMap(int jobs, std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> out(n);
    parallelFor(jobs, n,
                [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace par
} // namespace qoserve

#endif // QOSERVE_SIMCORE_THREAD_POOL_HH
