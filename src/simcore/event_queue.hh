/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The kernel is a time-ordered queue of callbacks. Components schedule
 * work at future simulated times; run() drains events in timestamp
 * order, advancing the clock to each event as it fires. Ties are broken
 * by insertion order so simulations are fully deterministic.
 */

#ifndef QOSERVE_SIMCORE_EVENT_QUEUE_HH
#define QOSERVE_SIMCORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "simcore/time.hh"

namespace qoserve {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/** Handle that can be used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue with a simulation clock.
 *
 * Typical use:
 * @code
 *   EventQueue eq;
 *   eq.schedule(0.5, [&]{ ... });
 *   eq.run();
 * @endcode
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @param when Absolute simulation time; must be finite and not
     *        in the past (panics otherwise — enforced, not merely
     *        documented, so a NaN or past timestamp is caught at the
     *        call that produced it rather than as heap corruption).
     * @param fn Callback to execute.
     * @return Handle usable with cancel().
     */
    EventId schedule(SimTime when, EventFn fn);

    /**
     * Schedule @p fn to run @p delay seconds from now.
     *
     * @param delay Must be finite and non-negative (panics
     *        otherwise).
     * @param fn Callback to execute.
     */
    EventId scheduleAfter(SimDuration delay, EventFn fn);

    /**
     * Cancel a pending event.
     *
     * Cancelling an event that already fired (or was already
     * cancelled) is a harmless no-op.
     *
     * @param id Handle returned by schedule().
     * @return True if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const { return pendingCount_; }

    /** True if no events remain. */
    bool empty() const { return pendingCount_ == 0; }

    /**
     * Run events until the queue empties or the clock would pass
     * @p until.
     *
     * Events scheduled exactly at @p until still fire. The clock is
     * left at the last fired event (or at @p until when finite and
     * reached).
     *
     * @param until Stop once the next event is later than this.
     * @return Number of events executed.
     */
    std::uint64_t run(SimTime until = kTimeNever);

    /**
     * Fire exactly one event, if any.
     *
     * @return True if an event fired.
     */
    bool step();

  private:
    struct Entry
    {
        SimTime when;
        std::uint64_t seq;
        EventId id;
        EventFn fn;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    using Heap = std::priority_queue<Entry, std::vector<Entry>,
                                     std::greater<Entry>>;

    bool isCancelled(EventId id) const;

    Heap heap_;
    std::vector<EventId> cancelled_;
    SimTime now_ = 0.0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::size_t pendingCount_ = 0;
};

} // namespace qoserve

#endif // QOSERVE_SIMCORE_EVENT_QUEUE_HH
