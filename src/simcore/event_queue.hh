/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The kernel is a time-ordered queue of callbacks. Components schedule
 * work at future simulated times; run() drains events in timestamp
 * order, advancing the clock to each event as it fires. Ties are broken
 * by insertion order so simulations are fully deterministic.
 *
 * Storage is split into two arenas so the hot path stays allocation-
 * free at steady state:
 *
 *  - a slot pool holding the callbacks, recycled through a free list
 *    (a slot's generation counter is bumped on every release, which
 *    both invalidates stale EventIds and turns cancel() into an O(1)
 *    operation);
 *  - a binary heap of trivially-copyable 24-byte entries {when, seq,
 *    slot, gen} — sift operations move plain structs, never
 *    std::function objects.
 */

#ifndef QOSERVE_SIMCORE_EVENT_QUEUE_HH
#define QOSERVE_SIMCORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "simcore/time.hh"

namespace qoserve {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * Handle that can be used to cancel a scheduled event.
 *
 * Encodes (slot index << 32) | slot generation; generations start at
 * 1, so 0 is never a valid handle and handles from released slots
 * never collide with live ones.
 */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue with a simulation clock.
 *
 * Typical use:
 * @code
 *   EventQueue eq;
 *   eq.schedule(0.5, [&]{ ... });
 *   eq.run();
 * @endcode
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @param when Absolute simulation time; must be finite and not
     *        in the past (panics otherwise — enforced, not merely
     *        documented, so a NaN or past timestamp is caught at the
     *        call that produced it rather than as heap corruption).
     * @param fn Callback to execute.
     * @return Handle usable with cancel().
     */
    EventId schedule(SimTime when, EventFn fn);

    /**
     * Schedule @p fn to run @p delay seconds from now.
     *
     * @param delay Must be finite and non-negative (panics
     *        otherwise).
     * @param fn Callback to execute.
     */
    EventId scheduleAfter(SimDuration delay, EventFn fn);

    /**
     * Schedule a *daemon* event: one that observes the simulation but
     * must never keep it alive. Daemon events fire exactly like
     * normal ones; the difference is bookkeeping — they are excluded
     * from hasRealWork(), which is what self-rescheduling cadences
     * (metrics samplers, controllers) consult before rescheduling.
     * With two or more observers the naive `!empty()` check deadlocks
     * the drain: each sees the other's pending tick and they keep
     * each other alive forever. Checking hasRealWork() from a daemon
     * tick cannot, because observer ticks don't count as work.
     */
    EventId scheduleDaemon(SimTime when, EventFn fn);

    /** Daemon variant of scheduleAfter(). */
    EventId scheduleDaemonAfter(SimDuration delay, EventFn fn);

    /** True while any non-daemon event is pending. */
    bool hasRealWork() const { return pendingCount_ > daemonPending_; }

    /**
     * Cancel a pending event in O(1).
     *
     * Cancelling an event that already fired (or was already
     * cancelled) is a harmless no-op: its slot generation no longer
     * matches the handle. The callback is destroyed immediately; the
     * heap entry is dropped lazily when it reaches the top.
     *
     * @param id Handle returned by schedule().
     * @return True if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const { return pendingCount_; }

    /** True if no events remain. */
    bool empty() const { return pendingCount_ == 0; }

    /**
     * Run events until the queue empties or the clock would pass
     * @p until.
     *
     * Events scheduled exactly at @p until still fire. The clock is
     * left at the last fired event (or at @p until when finite and
     * reached).
     *
     * @param until Stop once the next event is later than this.
     * @return Number of events executed.
     */
    std::uint64_t run(SimTime until = kTimeNever);

    /**
     * Fire exactly one event, if any.
     *
     * @return True if an event fired.
     */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t firedEvents() const { return firedCount_; }

    /** Slots currently allocated in the pool (diagnostics). */
    std::size_t poolSlots() const { return slots_.size(); }

  private:
    /** Pooled callback storage. */
    struct Slot
    {
        EventFn fn;
        std::uint32_t gen = 1;  ///< Bumped on every release.
        bool active = false;    ///< Scheduled and not yet fired.
        bool daemon = false;    ///< Excluded from hasRealWork().
    };

    /** Heap entry: plain data only, cheap to sift. */
    struct HeapEntry
    {
        SimTime when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
    };

    /** Min-heap order on (when, seq). */
    static bool
    later(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    /** Acquire a slot for @p fn; returns its index. */
    std::uint32_t acquireSlot(EventFn fn);

    /** Release a slot back to the free list, bumping its generation. */
    void releaseSlot(std::uint32_t index);

    /**
     * Pop heap entries until the top is live; move its callback into
     * @p fn and release the slot. Returns false when the heap empties
     * or the next live event is later than @p until.
     */
    bool takeNext(SimTime until, SimTime &when, EventFn &fn);

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::vector<HeapEntry> heap_;
    SimTime now_;
    std::uint64_t nextSeq_ = 0;
    std::size_t pendingCount_ = 0;
    std::size_t daemonPending_ = 0;
    std::uint64_t firedCount_ = 0;
};

} // namespace qoserve

#endif // QOSERVE_SIMCORE_EVENT_QUEUE_HH
