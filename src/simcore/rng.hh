/**
 * @file
 * Deterministic random-number generation for the simulator.
 *
 * Every stochastic component (arrival processes, token-length sampling,
 * predictor noise) draws from an Rng seeded from a single root seed, so
 * a whole experiment is reproducible from one integer. Streams can be
 * split so that adding draws to one component does not perturb another.
 */

#ifndef QOSERVE_SIMCORE_RNG_HH
#define QOSERVE_SIMCORE_RNG_HH

#include <cstdint>
#include <string>

namespace qoserve {

/**
 * A splittable deterministic RNG.
 *
 * Internally uses the SplitMix64 generator: tiny state, excellent
 * statistical quality for simulation purposes, and trivially
 * splittable into independent sub-streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed);

    /**
     * Derive an independent child stream.
     *
     * The child's sequence is a deterministic function of this
     * stream's seed and @p tag, not of how many numbers have been
     * drawn so far, so components stay decoupled.
     *
     * @param tag Label identifying the child stream.
     * @return A new Rng with an independent sequence.
     */
    Rng split(const std::string &tag) const;

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Lognormal deviate parameterized by the underlying normal. */
    double lognormal(double mu, double sigma);

    /** Exponential deviate with the given rate (events per second). */
    double exponential(double rate);

    /**
     * Gamma deviate (Marsaglia-Tsang squeeze method).
     *
     * @param shape Shape parameter k > 0.
     * @param scale Scale parameter theta > 0.
     */
    double gamma(double shape, double scale);

    /** Bernoulli draw with probability @p p of returning true. */
    bool bernoulli(double p);

  private:
    std::uint64_t state_;
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace qoserve

#endif // QOSERVE_SIMCORE_RNG_HH
