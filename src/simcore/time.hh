/**
 * @file
 * Simulation time representation.
 *
 * All simulation timestamps and durations are measured in
 * double-precision seconds. LLM serving operates on the scale of
 * milliseconds to hours, which a double represents with
 * sub-nanosecond resolution, and seconds keep every formula in the
 * paper (deadlines, SLOs, slack) directly readable.
 *
 * SimTime is a *strong* point-in-time type: it cannot be constructed
 * from, or silently decay to, a raw double, and the only arithmetic
 * it admits is dimension-correct —
 *
 *     SimTime  + SimDuration -> SimTime     (shift a point)
 *     SimTime  - SimDuration -> SimTime
 *     SimTime  - SimTime     -> SimDuration (distance between points)
 *
 * SimDuration stays a plain double alias: spans are ordinary scalars
 * (they scale, divide, average), and keeping them raw means every
 * latency formula reads exactly like the paper. The asymmetry is
 * deliberate: mixing up two spans is harmless algebra, mixing up a
 * point and a span is the classic simulation-clock bug the type
 * system now rejects.
 *
 * Escape hatch: seconds() exposes the raw value for serialization
 * and display; SimTime{x} converts back at parse boundaries. The
 * lint's raw-unit pass keeps untyped `double` time parameters out of
 * public headers so these conversions stay at the edges.
 */

#ifndef QOSERVE_SIMCORE_TIME_HH
#define QOSERVE_SIMCORE_TIME_HH

#include <limits>
#include <ostream>

namespace qoserve {

/** A span of simulated time, in seconds. */
using SimDuration = double;

/** A point in simulated time, since simulation start. */
class SimTime
{
  public:
    /** Simulation start (t = 0). */
    constexpr SimTime() = default;

    /** Explicit construction from raw seconds (parse boundaries,
     *  literals in tests and configs). */
    constexpr explicit SimTime(double seconds) : sec_(seconds) {}

    /** Raw seconds since simulation start (serialization, display,
     *  and formulas that need the scalar). */
    constexpr double seconds() const { return sec_; }

    constexpr SimTime &
    operator+=(SimDuration d)
    {
        sec_ += d;
        return *this;
    }

    constexpr SimTime &
    operator-=(SimDuration d)
    {
        sec_ -= d;
        return *this;
    }

    friend constexpr SimTime
    operator+(SimTime t, SimDuration d)
    {
        return SimTime(t.sec_ + d);
    }

    friend constexpr SimTime
    operator+(SimDuration d, SimTime t)
    {
        return SimTime(d + t.sec_);
    }

    friend constexpr SimTime
    operator-(SimTime t, SimDuration d)
    {
        return SimTime(t.sec_ - d);
    }

    /** Distance between two points is a span. */
    friend constexpr SimDuration
    operator-(SimTime a, SimTime b)
    {
        return a.sec_ - b.sec_;
    }

    friend constexpr bool
    operator==(SimTime a, SimTime b)
    {
        return a.sec_ == b.sec_;
    }

    friend constexpr bool
    operator!=(SimTime a, SimTime b)
    {
        return a.sec_ != b.sec_;
    }

    friend constexpr bool
    operator<(SimTime a, SimTime b)
    {
        return a.sec_ < b.sec_;
    }

    friend constexpr bool
    operator<=(SimTime a, SimTime b)
    {
        return a.sec_ <= b.sec_;
    }

    friend constexpr bool
    operator>(SimTime a, SimTime b)
    {
        return a.sec_ > b.sec_;
    }

    friend constexpr bool
    operator>=(SimTime a, SimTime b)
    {
        return a.sec_ >= b.sec_;
    }

    /** Streams the raw seconds, formatted like any double. */
    friend std::ostream &
    operator<<(std::ostream &out, SimTime t)
    {
        return out << t.sec_;
    }

  private:
    double sec_ = 0.0;
};

/** Sentinel for "no deadline" / "never". */
inline constexpr SimTime kTimeNever{
    std::numeric_limits<double>::infinity()};

/** Span sentinel for "no bound" (e.g. an SLO a tier does not have). */
inline constexpr SimDuration kDurationNever =
    std::numeric_limits<double>::infinity();

/** Convert milliseconds to SimDuration. */
constexpr SimDuration
fromMillis(double ms)
{
    return ms * 1e-3;
}

/** Convert a SimDuration to milliseconds. */
constexpr double
toMillis(SimDuration t)
{
    return t * 1e3;
}

} // namespace qoserve

#endif // QOSERVE_SIMCORE_TIME_HH
