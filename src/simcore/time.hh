/**
 * @file
 * Simulation time representation.
 *
 * All simulation timestamps and durations are kept in double-precision
 * seconds. LLM serving operates on the scale of milliseconds to hours,
 * which a double represents with sub-nanosecond resolution, and seconds
 * keep every formula in the paper (deadlines, SLOs, slack) directly
 * readable.
 */

#ifndef QOSERVE_SIMCORE_TIME_HH
#define QOSERVE_SIMCORE_TIME_HH

#include <limits>

namespace qoserve {

/** A point in simulated time, in seconds since simulation start. */
using SimTime = double;

/** A span of simulated time, in seconds. */
using SimDuration = double;

/** Sentinel for "no deadline" / "never". */
inline constexpr SimTime kTimeNever =
    std::numeric_limits<double>::infinity();

/** Convert milliseconds to SimDuration. */
constexpr SimDuration
fromMillis(double ms)
{
    return ms * 1e-3;
}

/** Convert a SimDuration to milliseconds. */
constexpr double
toMillis(SimDuration t)
{
    return t * 1e3;
}

} // namespace qoserve

#endif // QOSERVE_SIMCORE_TIME_HH
