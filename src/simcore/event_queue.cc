/**
 * @file
 * Discrete-event queue implementation.
 */

#include "simcore/event_queue.hh"

#include <algorithm>
#include <cmath>

#include "simcore/logging.hh"

namespace qoserve {

EventId
EventQueue::schedule(SimTime when, EventFn fn)
{
    // A NaN timestamp would poison every heap comparison and an
    // infinite one would wedge run(); both are always rejected, as is
    // scheduling into the simulated past.
    if (!std::isfinite(when)) {
        QOSERVE_PANIC("event scheduled at non-finite time ", when,
                      " (now=", now_, ")");
    }
    if (when < now_) {
        QOSERVE_PANIC("event scheduled in the past: ", when, " < now=",
                      now_);
    }
    EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id, std::move(fn)});
    ++pendingCount_;
    return id;
}

EventId
EventQueue::scheduleAfter(SimDuration delay, EventFn fn)
{
    if (!std::isfinite(delay) || delay < 0.0) {
        QOSERVE_PANIC("event delay must be finite and non-negative, "
                      "got ", delay);
    }
    return schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::cancel(EventId id)
{
    if (id == 0 || id >= nextId_)
        return false;
    if (isCancelled(id))
        return false;
    cancelled_.push_back(id);
    if (pendingCount_ > 0)
        --pendingCount_;
    return true;
}

bool
EventQueue::isCancelled(EventId id) const
{
    return std::find(cancelled_.begin(), cancelled_.end(), id) !=
           cancelled_.end();
}

std::uint64_t
EventQueue::run(SimTime until)
{
    std::uint64_t fired = 0;
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (top.when > until)
            break;
        if (isCancelled(top.id)) {
            // Lazily drop cancelled events and compact the tombstone
            // list; each tombstone is consumed exactly once.
            cancelled_.erase(std::find(cancelled_.begin(),
                                       cancelled_.end(), top.id));
            heap_.pop();
            continue;
        }
        Entry e = std::move(const_cast<Entry &>(top));
        heap_.pop();
        --pendingCount_;
        QOSERVE_ASSERT(e.when >= now_,
                       "clock would move backwards: ", e.when, " < ",
                       now_);
        now_ = e.when;
        e.fn();
        ++fired;
    }
    return fired;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (isCancelled(top.id)) {
            cancelled_.erase(std::find(cancelled_.begin(),
                                       cancelled_.end(), top.id));
            heap_.pop();
            continue;
        }
        Entry e = std::move(const_cast<Entry &>(top));
        heap_.pop();
        --pendingCount_;
        QOSERVE_ASSERT(e.when >= now_,
                       "clock would move backwards: ", e.when, " < ",
                       now_);
        now_ = e.when;
        e.fn();
        return true;
    }
    return false;
}

} // namespace qoserve
