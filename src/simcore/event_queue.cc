/**
 * @file
 * Discrete-event queue implementation.
 */

#include "simcore/event_queue.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "simcore/logging.hh"

namespace qoserve {

std::uint32_t
EventQueue::acquireSlot(EventFn fn)
{
    std::uint32_t index;
    if (!freeSlots_.empty()) {
        index = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        index = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    Slot &slot = slots_[index];
    slot.fn = std::move(fn);
    slot.active = true;
    return index;
}

void
EventQueue::releaseSlot(std::uint32_t index)
{
    Slot &slot = slots_[index];
    if (slot.daemon) {
        slot.daemon = false;
        --daemonPending_;
    }
    slot.active = false;
    slot.fn = nullptr;
    // Bumping the generation invalidates every outstanding EventId
    // for this slot, so stale heap entries and stale cancel() handles
    // are rejected by a plain integer compare.
    ++slot.gen;
    freeSlots_.push_back(index);
}

EventId
EventQueue::schedule(SimTime when, EventFn fn)
{
    // A NaN timestamp would poison every heap comparison and an
    // infinite one would wedge run(); both are always rejected, as is
    // scheduling into the simulated past.
    if (!std::isfinite(when.seconds())) {
        QOSERVE_PANIC("event scheduled at non-finite time ", when,
                      " (now=", now_, ")");
    }
    if (when < now_) {
        QOSERVE_PANIC("event scheduled in the past: ", when, " < now=",
                      now_);
    }
    std::uint32_t index = acquireSlot(std::move(fn));
    std::uint32_t gen = slots_[index].gen;
    heap_.push_back(HeapEntry{when, nextSeq_++, index, gen});
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++pendingCount_;
    return (static_cast<EventId>(index) << 32) | gen;
}

EventId
EventQueue::scheduleAfter(SimDuration delay, EventFn fn)
{
    if (!std::isfinite(delay) || delay < 0.0) {
        QOSERVE_PANIC("event delay must be finite and non-negative, "
                      "got ", delay);
    }
    return schedule(now_ + delay, std::move(fn));
}

EventId
EventQueue::scheduleDaemon(SimTime when, EventFn fn)
{
    EventId id = schedule(when, std::move(fn));
    slots_[static_cast<std::uint32_t>(id >> 32)].daemon = true;
    ++daemonPending_;
    return id;
}

EventId
EventQueue::scheduleDaemonAfter(SimDuration delay, EventFn fn)
{
    EventId id = scheduleAfter(delay, std::move(fn));
    slots_[static_cast<std::uint32_t>(id >> 32)].daemon = true;
    ++daemonPending_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    auto index = static_cast<std::uint32_t>(id >> 32);
    auto gen = static_cast<std::uint32_t>(id & 0xffffffffu);
    if (index >= slots_.size())
        return false;
    Slot &slot = slots_[index];
    if (slot.gen != gen || !slot.active)
        return false;
    // The heap entry stays behind as a tombstone — its generation no
    // longer matches — and is dropped when it surfaces.
    releaseSlot(index);
    if (pendingCount_ > 0)
        --pendingCount_;
    return true;
}

bool
EventQueue::takeNext(SimTime until, SimTime &when, EventFn &fn)
{
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.front();
        Slot &slot = slots_[top.slot];
        if (slot.gen != top.gen || !slot.active) {
            // Tombstone of a cancelled event.
            std::pop_heap(heap_.begin(), heap_.end(), later);
            heap_.pop_back();
            continue;
        }
        if (top.when > until)
            return false;
        when = top.when;
        std::uint32_t index = top.slot;
        std::pop_heap(heap_.begin(), heap_.end(), later);
        heap_.pop_back();
        fn = std::move(slot.fn);
        releaseSlot(index);
        --pendingCount_;
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(SimTime until)
{
    std::uint64_t fired = 0;
    SimTime when;
    EventFn fn;
    while (takeNext(until, when, fn)) {
        QOSERVE_ASSERT(when >= now_,
                       "clock would move backwards: ", when, " < ",
                       now_);
        now_ = when;
        fn();
        fn = nullptr;
        ++fired;
        ++firedCount_;
    }
    return fired;
}

bool
EventQueue::step()
{
    SimTime when;
    EventFn fn;
    if (!takeNext(kTimeNever, when, fn))
        return false;
    QOSERVE_ASSERT(when >= now_,
                   "clock would move backwards: ", when, " < ", now_);
    now_ = when;
    fn();
    ++firedCount_;
    return true;
}

} // namespace qoserve
