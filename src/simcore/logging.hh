/**
 * @file
 * Error-reporting and diagnostic helpers shared by every module.
 *
 * Follows the gem5 convention: fatal() is for conditions caused by the
 * user (bad configuration, impossible parameters) and exits cleanly;
 * panic() is for violated internal invariants (a bug in this library)
 * and aborts so a debugger or core dump can capture the state.
 */

#ifndef QOSERVE_SIMCORE_LOGGING_HH
#define QOSERVE_SIMCORE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace qoserve {

namespace detail {

/** Stream-compose a message from variadic parts. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void fatalExit(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicAbort(const char *file, int line,
                             const std::string &msg);
void warnPrint(const std::string &msg);
void informPrint(const std::string &msg);

} // namespace detail

/**
 * Terminate because of a user-caused error (bad config, bad input).
 * Exits with status 1; does not dump core.
 */
#define QOSERVE_FATAL(...)                                                  \
    ::qoserve::detail::fatalExit(                                           \
        __FILE__, __LINE__, ::qoserve::detail::composeMessage(__VA_ARGS__))

/**
 * Terminate because an internal invariant was violated (library bug).
 * Calls abort() so the failure is debuggable.
 */
#define QOSERVE_PANIC(...)                                                  \
    ::qoserve::detail::panicAbort(                                          \
        __FILE__, __LINE__, ::qoserve::detail::composeMessage(__VA_ARGS__))

/** Check an internal invariant; panic with the message when it fails. */
#define QOSERVE_ASSERT(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            QOSERVE_PANIC("assertion failed: " #cond " ", __VA_ARGS__);     \
        }                                                                   \
    } while (0)

/** Non-fatal warning to stderr. */
#define QOSERVE_WARN(...)                                                   \
    ::qoserve::detail::warnPrint(::qoserve::detail::composeMessage(__VA_ARGS__))

/** Informational status message to stderr. */
#define QOSERVE_INFORM(...)                                                 \
    ::qoserve::detail::informPrint(                                         \
        ::qoserve::detail::composeMessage(__VA_ARGS__))

} // namespace qoserve

#endif // QOSERVE_SIMCORE_LOGGING_HH
