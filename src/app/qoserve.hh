/**
 * @file
 * Umbrella header: the full public API of the QoServe library.
 */

#ifndef QOSERVE_APP_QOSERVE_HH
#define QOSERVE_APP_QOSERVE_HH

#include "cluster/admission.hh"
#include "cluster/capacity.hh"
#include "cluster/cluster.hh"
#include "cluster/disagg.hh"
#include "cluster/replica.hh"
#include "app/serving_system.hh"
#include "fault/fault_injector.hh"
#include "kvcache/block_manager.hh"
#include "metrics/percentile.hh"
#include "metrics/report_io.hh"
#include "metrics/telemetry.hh"
#include "metrics/slo_report.hh"
#include "model/hardware_config.hh"
#include "model/model_config.hh"
#include "model/perf_model.hh"
#include "predictor/latency_predictor.hh"
#include "predictor/profiler.hh"
#include "predictor/random_forest.hh"
#include "sched/baseline_schedulers.hh"
#include "sched/batch.hh"
#include "sched/chunked_scheduler.hh"
#include "sched/dp_scheduler.hh"
#include "sched/qoserve_scheduler.hh"
#include "sched/request.hh"
#include "sched/scheduler.hh"
#include "simcore/event_queue.hh"
#include "simcore/logging.hh"
#include "simcore/rng.hh"
#include "simcore/thread_pool.hh"
#include "simcore/time.hh"
#include "workload/arrival.hh"
#include "workload/dataset.hh"
#include "workload/qos.hh"
#include "workload/trace.hh"
#include "workload/trace_io.hh"

#endif // QOSERVE_APP_QOSERVE_HH
