/**
 * @file
 * ServingSystem implementation.
 */

#include "app/serving_system.hh"

#include "simcore/logging.hh"

namespace qoserve {

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::QoServe:
        return "QoServe";
      case Policy::SarathiFcfs:
        return "Sarathi-FCFS";
      case Policy::SarathiEdf:
        return "Sarathi-EDF";
      case Policy::SarathiSjf:
        return "Sarathi-SJF";
      case Policy::SarathiSrpf:
        return "Sarathi-SRPF";
      case Policy::Medha:
        return "Medha";
      case Policy::SlosServeDp:
        return "SLOs-Serve-DP";
    }
    QOSERVE_PANIC("unknown policy");
}

SchedulerFactory
makeSchedulerFactory(const ServingConfig &cfg)
{
    switch (cfg.policy) {
      case Policy::QoServe:
        return [qos = cfg.qoserve, base = cfg.base](
                   const SchedulerEnv &env) -> std::unique_ptr<Scheduler> {
            return std::make_unique<QoServeScheduler>(env, qos, base);
        };
      case Policy::SarathiFcfs:
        return [base = cfg.base](
                   const SchedulerEnv &env) -> std::unique_ptr<Scheduler> {
            return std::make_unique<FcfsScheduler>(env, base);
        };
      case Policy::SarathiEdf:
        return [base = cfg.base](
                   const SchedulerEnv &env) -> std::unique_ptr<Scheduler> {
            return std::make_unique<EdfScheduler>(env, base);
        };
      case Policy::SarathiSjf:
        return [base = cfg.base](
                   const SchedulerEnv &env) -> std::unique_ptr<Scheduler> {
            return std::make_unique<SjfScheduler>(env, base);
        };
      case Policy::SarathiSrpf:
        return [base = cfg.base](
                   const SchedulerEnv &env) -> std::unique_ptr<Scheduler> {
            return std::make_unique<SrpfScheduler>(env, base);
        };
      case Policy::Medha:
        return [opts = cfg.medha, base = cfg.base](
                   const SchedulerEnv &env) -> std::unique_ptr<Scheduler> {
            return std::make_unique<MedhaScheduler>(env, opts, base);
        };
      case Policy::SlosServeDp:
        return [opts = cfg.dp, base = cfg.base](
                   const SchedulerEnv &env) -> std::unique_ptr<Scheduler> {
            return std::make_unique<DpScheduler>(env, opts, base);
        };
    }
    QOSERVE_PANIC("unknown policy");
}

std::shared_ptr<const LatencyPredictor>
makePredictor(const ServingConfig &cfg)
{
    bool needs_predictor =
        cfg.policy == Policy::QoServe && cfg.qoserve.enableDynamicChunking;
    if (!needs_predictor)
        return nullptr;

    PerfModel model(cfg.hw, cfg.perfParams);
    if (cfg.useForestPredictor) {
        ForestLatencyPredictor::Options options;
        options.trainJobs = cfg.trainJobs;
        return std::make_shared<ForestLatencyPredictor>(model, options);
    }
    return std::make_shared<OracleLatencyPredictor>(model);
}

ServingSystem::ServingSystem(ServingConfig cfg)
    : cfg_(std::move(cfg))
{
    QOSERVE_ASSERT(cfg_.numReplicas >= 1, "need at least one replica");
    cfg_.prefixCache.validate();
    if (cfg_.cacheAffinityRouting && !cfg_.prefixCache.enabled)
        QOSERVE_FATAL("cache-affinity routing requires the prefix "
                      "cache to be enabled");
    predictor_ = makePredictor(cfg_);
}

std::unique_ptr<ClusterSim>
ServingSystem::serveForInspection(const Trace &trace)
{
    ClusterSim::Config cc;
    cc.replica.hw = cfg_.hw;
    cc.replica.perfParams = cfg_.perfParams;
    cc.replica.prefixCache = cfg_.prefixCache;
    cc.cacheAffinityRouting = cfg_.cacheAffinityRouting;
    cc.predictor = predictor_.get();

    auto sim = std::make_unique<ClusterSim>(cc, trace);
    sim->addReplicaGroup(cfg_.numReplicas, makeSchedulerFactory(cfg_));
    sim->run();
    return sim;
}

RunSummary
ServingSystem::serve(const Trace &trace)
{
    auto sim = serveForInspection(trace);
    return summarize(sim->metrics());
}

} // namespace qoserve
