/**
 * @file
 * CLI option parsing implementation.
 */

#include "app/cli_options.hh"

#include <cstdlib>
#include <sstream>

#include "simcore/logging.hh"

namespace qoserve {

namespace {

double
parseDouble(const std::string &flag, const std::string &value)
{
    try {
        std::size_t pos = 0;
        double v = std::stod(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument("trailing characters");
        return v;
    } catch (const std::exception &) {
        QOSERVE_FATAL("flag ", flag, ": not a number: '", value, "'");
    }
}

std::uint64_t
parseU64(const std::string &flag, const std::string &value)
{
    try {
        std::size_t pos = 0;
        std::uint64_t v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument("trailing characters");
        return v;
    } catch (const std::exception &) {
        QOSERVE_FATAL("flag ", flag, ": not an integer: '", value, "'");
    }
}

std::vector<double>
parseMix(const std::string &flag, const std::string &value)
{
    std::vector<double> mix;
    std::istringstream iss(value);
    std::string part;
    while (std::getline(iss, part, ','))
        mix.push_back(parseDouble(flag, part));
    return mix;
}

LoadBalancePolicy
parseLb(const std::string &value)
{
    if (value == "rr" || value == "round-robin")
        return LoadBalancePolicy::RoundRobin;
    if (value == "least-loaded")
        return LoadBalancePolicy::LeastLoaded;
    if (value == "jsq" || value == "shortest-queue")
        return LoadBalancePolicy::ShortestQueue;
    QOSERVE_FATAL("unknown load balancer: ", value,
                  " (rr|least-loaded|jsq)");
}

} // namespace

Policy
parsePolicyName(const std::string &name)
{
    if (name == "qoserve")
        return Policy::QoServe;
    if (name == "fcfs")
        return Policy::SarathiFcfs;
    if (name == "edf")
        return Policy::SarathiEdf;
    if (name == "sjf")
        return Policy::SarathiSjf;
    if (name == "srpf")
        return Policy::SarathiSrpf;
    if (name == "medha")
        return Policy::Medha;
    if (name == "dp")
        return Policy::SlosServeDp;
    QOSERVE_FATAL("unknown policy: ", name,
                  " (qoserve|fcfs|edf|sjf|srpf|medha|dp)");
}

ReplicaHwConfig
parseHwName(const std::string &name)
{
    if (name == "llama3-8b-a100-tp1")
        return llama3_8b_a100_tp1();
    if (name == "qwen-7b-a100-tp2")
        return qwen_7b_a100_tp2();
    if (name == "llama3-70b-h100-tp4")
        return llama3_70b_h100_tp4();
    QOSERVE_FATAL("unknown hardware preset: ", name,
                  " (llama3-8b-a100-tp1|qwen-7b-a100-tp2|"
                  "llama3-70b-h100-tp4)");
}

std::string
cliUsage()
{
    return R"(qoserve_sim — QoS-driven LLM serving simulator

workload:
  --dataset NAME        azure-code | azure-conv | sharegpt (default azure-code)
  --tiers NAME          paper | strict (default paper, Table 3)
  --mix A,B,...         tier fractions summing to 1 (default equal)
  --low-priority F      fraction hinted low-priority (default 0)
  --qps X               Poisson arrival rate (default 3)
  --duration S          trace length in seconds (default 600)
  --seed N              workload seed (default 42)
  --trace-in FILE       replay a CSV trace instead of synthesizing

deployment:
  --policy NAME         qoserve | fcfs | edf | sjf | srpf | medha | dp
  --hw NAME             llama3-8b-a100-tp1 | qwen-7b-a100-tp2 |
                        llama3-70b-h100-tp4
  --replicas N          replica count (default 1)
  --lb NAME             rr | least-loaded | jsq (default rr)
  --chunk N             fixed chunk tokens for baselines (default 256)
  --alpha MS            hybrid alpha, ms/token (default 8)
  --adaptive-alpha      enable load-adaptive alpha
  --max-chunk N         QoServe dynamic chunk cap (default 2560)
  --no-solver-cache     disable the chunk-budget solver memo (results
                        are identical; only wall-clock changes)
  --oracle-predictor    use the oracle instead of the random forest
  --jobs N              worker threads for predictor training
                        (default 0 = hardware concurrency; any value
                        yields bit-identical results)

prefix cache:
  --prefix-cache        enable shared-prefix KV cache reuse
  --cache-capacity-frac F  fraction of KV blocks the cache may hold
                        (default 0.5)
  --cache-affinity      route each request to the replica holding the
                        longest cached prefix (requires --prefix-cache)
  --share-ratio F       fraction of synthesized requests drawing a
                        shared prompt prefix (default 0 = all unique)
  --prefix-pools N      system-prompt pool count for shared prefixes
                        (default 8)
  --multi-turn F        fraction of shared requests that continue an
                        earlier conversation (default 0.5)

faults:
  --fault-mtbf S        mean time between replica crashes, seconds
                        (default 0 = no crashes)
  --fault-mttr S        mean time to repair a crashed replica
                        (default 20)
  --straggler-mtbf S    mean time between straggler episodes
                        (default 0 = no stragglers)
  --straggler-duration S  mean straggler episode length (default 10)
  --straggler-factor X  latency multiplier while straggling
                        (default 2)
  --fault-seed N        fault-schedule seed, independent of the
                        workload seed (default 1)
  --max-retries N       re-dispatch budget per failed request
                        (default 3; 0 = never retry)
  --retry-backoff S     initial re-dispatch backoff, doubled per
                        attempt (default 0.05)
  --no-health-aware     route blindly: ignore replica health and
                        slowdown when picking a replica

failure domains:
  --zones N             failure zones the replicas split into,
                        contiguous index ranges (default 0 = none)
  --zone-mtbf S         mean time between outages per zone, seconds
                        (default 0 = off; requires --zones)
  --zone-mttr S         mean time to restore a failed zone
                        (default 30)
  --partition-mtbf S    mean time between control-plane partitions
                        (default 0 = off)
  --partition-mttr S    mean partition duration before the routing
                        view heals (default 10)
  --partition-frac F    fraction of replicas blinded per partition,
                        in (0, 1] (default 0.25)
  --domain-seed N       failure-domain seed, independent of the
                        workload and fault seeds (default 7)

graceful degradation:
  --breaker-threshold N consecutive dispatch failures that trip a
                        replica's circuit breaker (default 0 = off)
  --breaker-cooldown S  seconds a tripped breaker stays open before
                        its half-open probe (default 1)
  --deadline-cancel     abandon a retried request when its completion
                        deadline is provably unreachable
  --brownout            enable the brownout controller
  --brownout-enter T    pending prefill tokens per live replica above
                        which it steps one level deeper (default 4096)
  --brownout-exit T     backlog below which it steps back
                        (default 1024)
  --brownout-interval S controller sampling cadence (default 1)
  --brownout-cap N      decode-token cap at level >= 1 (default 128)
  --brownout-shed-tier N  tier shed at level >= 2 (default -1 = the
                        last tier of the table)

output:
  --trace-out FILE      dump the workload as CSV
  --records-out FILE    dump per-request records as CSV
  --telemetry-out FILE  dump per-iteration engine telemetry as CSV
  --summary-out FILE    dump the run summary as CSV
  --trace FILE          dump the request-lifecycle trace as Chrome /
                        Perfetto trace_event JSON (one process per
                        replica, one thread per request)
  --trace-csv FILE      dump the raw lifecycle events as flat CSV
  --metrics-out FILE    dump the metrics time series as CSV
  --metrics-interval S  metrics sampling cadence in sim seconds
                        (default 5; requires --metrics-out)
  --sketch-out FILE     dump per-tier latency quantile sketches as CSV
  --sketch-alpha E      sketch relative-error bound in (0, 1)
                        (default 0.01; requires --sketch-out)

SLO monitoring (all --slo-alert-* flags require --slo-monitor):
  --slo-monitor         run the multi-window burn-rate monitor as a
                        read-only daemon observer
  --slo-alert-budget F  per-tier violation budget in (0, 1]
                        (default 0.01)
  --slo-alert-burn X    burn-rate threshold that fires an alert
                        (default 14.4)
  --slo-alert-short S   short alert window, sim seconds (default 300)
  --slo-alert-long S    long alert window, sim seconds (default 3600)
  --slo-alert-interval S  monitor evaluation cadence (default 10)
  --slo-alerts-out FILE dump the alert timeline as CSV
  --help                this text
)";
}

CliOptions
parseCliOptions(const std::vector<std::string> &args)
{
    CliOptions opts;

    // Config flags that merely tune an output/subsystem another flag
    // enables: remembered here so the validation below can reject
    // configuration without the enabler.
    bool metricsIntervalSet = false;
    bool sketchAlphaSet = false;
    bool sloAlertFlagSet = false;

    auto need_value = [&](std::size_t i, const std::string &flag) {
        if (i + 1 >= args.size())
            QOSERVE_FATAL("flag ", flag, " requires a value");
        return args[i + 1];
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        if (flag == "--help" || flag == "-h") {
            opts.helpRequested = true;
        } else if (flag == "--dataset") {
            opts.dataset = datasetByName(need_value(i++, flag));
        } else if (flag == "--tiers") {
            std::string v = need_value(i++, flag);
            if (v == "paper")
                opts.tiers = paperTierTable();
            else if (v == "strict")
                opts.tiers = strictTierTable();
            else
                QOSERVE_FATAL("unknown tier table: ", v,
                              " (paper|strict)");
        } else if (flag == "--mix") {
            opts.tierMix = parseMix(flag, need_value(i++, flag));
        } else if (flag == "--low-priority") {
            opts.lowPriorityFraction =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--qps") {
            opts.qps = parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--duration") {
            opts.duration = parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--seed") {
            opts.seed = parseU64(flag, need_value(i++, flag));
        } else if (flag == "--trace-in") {
            opts.traceIn = need_value(i++, flag);
        } else if (flag == "--policy") {
            opts.serving.policy =
                parsePolicyName(need_value(i++, flag));
        } else if (flag == "--hw") {
            opts.serving.hw = parseHwName(need_value(i++, flag));
        } else if (flag == "--replicas") {
            opts.serving.numReplicas = static_cast<int>(
                parseU64(flag, need_value(i++, flag)));
        } else if (flag == "--lb") {
            opts.loadBalance = parseLb(need_value(i++, flag));
        } else if (flag == "--chunk") {
            opts.serving.base.fixedChunkTokens = static_cast<int>(
                parseU64(flag, need_value(i++, flag)));
        } else if (flag == "--alpha") {
            opts.serving.qoserve.alphaMsPerToken =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--adaptive-alpha") {
            opts.serving.qoserve.adaptiveAlpha = true;
        } else if (flag == "--max-chunk") {
            opts.serving.qoserve.maxChunkTokens = static_cast<int>(
                parseU64(flag, need_value(i++, flag)));
        } else if (flag == "--no-solver-cache") {
            opts.serving.qoserve.enableSolverMemo = false;
        } else if (flag == "--oracle-predictor") {
            opts.serving.useForestPredictor = false;
        } else if (flag == "--jobs") {
            opts.serving.trainJobs = static_cast<int>(
                parseU64(flag, need_value(i++, flag)));
        } else if (flag == "--prefix-cache") {
            opts.serving.prefixCache.enabled = true;
        } else if (flag == "--cache-capacity-frac") {
            opts.serving.prefixCache.capacityFrac =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--cache-affinity") {
            opts.serving.cacheAffinityRouting = true;
        } else if (flag == "--share-ratio") {
            opts.sharedPrefix.shareRatio =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--prefix-pools") {
            opts.sharedPrefix.numPools = static_cast<int>(
                parseU64(flag, need_value(i++, flag)));
        } else if (flag == "--multi-turn") {
            opts.sharedPrefix.multiTurnFrac =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--fault-mtbf") {
            opts.fault.crashMtbf =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--fault-mttr") {
            opts.fault.crashMttr =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--straggler-mtbf") {
            opts.fault.stragglerMtbf =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--straggler-duration") {
            opts.fault.stragglerDuration =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--straggler-factor") {
            opts.fault.stragglerFactor =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--fault-seed") {
            opts.fault.seed = parseU64(flag, need_value(i++, flag));
        } else if (flag == "--max-retries") {
            opts.retry.maxRetries = static_cast<int>(
                parseU64(flag, need_value(i++, flag)));
        } else if (flag == "--retry-backoff") {
            opts.retry.initialBackoff =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--no-health-aware") {
            opts.healthAwareRouting = false;
        } else if (flag == "--zones") {
            opts.domains.zones = static_cast<int>(
                parseU64(flag, need_value(i++, flag)));
        } else if (flag == "--zone-mtbf") {
            opts.domains.zoneMtbf =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--zone-mttr") {
            opts.domains.zoneMttr =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--partition-mtbf") {
            opts.domains.partitionMtbf =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--partition-mttr") {
            opts.domains.partitionMttr =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--partition-frac") {
            opts.domains.partitionFrac =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--domain-seed") {
            opts.domains.seed = parseU64(flag, need_value(i++, flag));
        } else if (flag == "--breaker-threshold") {
            opts.breaker.failureThreshold = static_cast<int>(
                parseU64(flag, need_value(i++, flag)));
        } else if (flag == "--breaker-cooldown") {
            opts.breaker.cooldown =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--deadline-cancel") {
            opts.deadlineCancel = true;
        } else if (flag == "--brownout") {
            opts.brownout.enabled = true;
        } else if (flag == "--brownout-enter") {
            opts.brownout.enterBacklog =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--brownout-exit") {
            opts.brownout.exitBacklog =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--brownout-interval") {
            opts.brownout.interval =
                parseDouble(flag, need_value(i++, flag));
        } else if (flag == "--brownout-cap") {
            opts.brownout.capTokens = static_cast<int>(
                parseU64(flag, need_value(i++, flag)));
        } else if (flag == "--brownout-shed-tier") {
            opts.brownout.shedTier = static_cast<int>(
                parseDouble(flag, need_value(i++, flag)));
        } else if (flag == "--trace-out") {
            opts.traceOut = need_value(i++, flag);
        } else if (flag == "--trace") {
            opts.traceJsonOut = need_value(i++, flag);
        } else if (flag == "--trace-csv") {
            opts.traceEventsOut = need_value(i++, flag);
        } else if (flag == "--metrics-out") {
            opts.metricsOut = need_value(i++, flag);
        } else if (flag == "--metrics-interval") {
            opts.metricsInterval =
                parseDouble(flag, need_value(i++, flag));
            metricsIntervalSet = true;
        } else if (flag == "--sketch-out") {
            opts.sketchOut = need_value(i++, flag);
        } else if (flag == "--sketch-alpha") {
            opts.sketchAlpha =
                parseDouble(flag, need_value(i++, flag));
            sketchAlphaSet = true;
        } else if (flag == "--slo-monitor") {
            opts.sloMonitor = true;
        } else if (flag == "--slo-alert-budget") {
            opts.sloAlert.budget =
                parseDouble(flag, need_value(i++, flag));
            sloAlertFlagSet = true;
        } else if (flag == "--slo-alert-burn") {
            opts.sloAlert.burn =
                parseDouble(flag, need_value(i++, flag));
            sloAlertFlagSet = true;
        } else if (flag == "--slo-alert-short") {
            opts.sloAlert.shortWindow =
                parseDouble(flag, need_value(i++, flag));
            sloAlertFlagSet = true;
        } else if (flag == "--slo-alert-long") {
            opts.sloAlert.longWindow =
                parseDouble(flag, need_value(i++, flag));
            sloAlertFlagSet = true;
        } else if (flag == "--slo-alert-interval") {
            opts.sloAlert.interval =
                parseDouble(flag, need_value(i++, flag));
            sloAlertFlagSet = true;
        } else if (flag == "--slo-alerts-out") {
            opts.sloAlertsOut = need_value(i++, flag);
        } else if (flag == "--records-out") {
            opts.recordsOut = need_value(i++, flag);
        } else if (flag == "--telemetry-out") {
            opts.telemetryOut = need_value(i++, flag);
        } else if (flag == "--summary-out") {
            opts.summaryOut = need_value(i++, flag);
        } else {
            QOSERVE_FATAL("unknown flag: ", flag,
                          " (try --help)");
        }
    }

    if (opts.qps <= 0.0)
        QOSERVE_FATAL("--qps must be positive");
    if (opts.duration <= 0.0)
        QOSERVE_FATAL("--duration must be positive");
    if (opts.serving.numReplicas < 1)
        QOSERVE_FATAL("--replicas must be at least 1");
    if (opts.fault.crashMtbf < 0.0)
        QOSERVE_FATAL("--fault-mtbf must be non-negative");
    if (opts.fault.crashesEnabled() && opts.fault.crashMttr <= 0.0)
        QOSERVE_FATAL("--fault-mttr must be positive when crashes "
                      "are enabled (got ",
                      opts.fault.crashMttr,
                      "): a zero repair time would leave replicas "
                      "down forever");
    if (opts.fault.stragglerMtbf < 0.0)
        QOSERVE_FATAL("--straggler-mtbf must be non-negative");
    if (opts.retry.initialBackoff <= 0.0)
        QOSERVE_FATAL("--retry-backoff must be positive");
    if (opts.domains.zones < 0)
        QOSERVE_FATAL("--zones must be non-negative");
    if (opts.domains.zones > opts.serving.numReplicas)
        QOSERVE_FATAL("--zones (", opts.domains.zones,
                      ") exceeds --replicas (",
                      opts.serving.numReplicas, ")");
    if (opts.domains.zoneMtbf < 0.0)
        QOSERVE_FATAL("--zone-mtbf must be non-negative");
    if (opts.domains.zoneMtbf > 0.0 && opts.domains.zones == 0)
        QOSERVE_FATAL("--zone-mtbf requires --zones");
    if (opts.domains.zoneOutagesEnabled() &&
        opts.domains.zoneMttr <= 0.0)
        QOSERVE_FATAL("--zone-mttr must be positive when zone "
                      "outages are enabled");
    if (opts.domains.partitionMtbf < 0.0)
        QOSERVE_FATAL("--partition-mtbf must be non-negative");
    if (opts.domains.partitionsEnabled()) {
        if (opts.domains.partitionMttr <= 0.0)
            QOSERVE_FATAL("--partition-mttr must be positive when "
                          "partitions are enabled");
        if (!(opts.domains.partitionFrac > 0.0) ||
            opts.domains.partitionFrac > 1.0)
            QOSERVE_FATAL("--partition-frac must be in (0, 1], got ",
                          opts.domains.partitionFrac);
    }
    if (opts.breaker.failureThreshold < 0)
        QOSERVE_FATAL("--breaker-threshold must be non-negative");
    if (opts.breaker.enabled() && opts.breaker.cooldown <= 0.0)
        QOSERVE_FATAL("--breaker-cooldown must be positive when the "
                      "breaker is enabled");
    if (opts.brownout.enabled) {
        if (opts.brownout.interval <= 0.0)
            QOSERVE_FATAL("--brownout-interval must be positive");
        if (opts.brownout.enterBacklog <= 0.0)
            QOSERVE_FATAL("--brownout-enter must be positive");
        if (opts.brownout.exitBacklog < 0.0 ||
            opts.brownout.exitBacklog >= opts.brownout.enterBacklog)
            QOSERVE_FATAL("--brownout-exit must be in [0, enter): "
                          "the hysteresis band must exist");
        if (opts.brownout.capTokens <= 0)
            QOSERVE_FATAL("--brownout-cap must be positive");
        if (opts.brownout.shedTier >=
            static_cast<int>(opts.tiers.size()))
            QOSERVE_FATAL("--brownout-shed-tier ",
                          opts.brownout.shedTier,
                          " outside the tier table (",
                          opts.tiers.size(), " tiers)");
    }
    if (opts.metricsInterval <= 0.0)
        QOSERVE_FATAL("--metrics-interval must be positive");
    if (metricsIntervalSet && !opts.metricsOut)
        QOSERVE_FATAL("--metrics-interval requires --metrics-out: "
                      "the cadence configures the metrics series "
                      "that flag enables");
    if (!(opts.sketchAlpha > 0.0) || opts.sketchAlpha >= 1.0)
        QOSERVE_FATAL("--sketch-alpha must be in (0, 1), got ",
                      opts.sketchAlpha);
    if (sketchAlphaSet && !opts.sketchOut)
        QOSERVE_FATAL("--sketch-alpha requires --sketch-out: the "
                      "accuracy configures the sketch bank that flag "
                      "enables");
    if (sloAlertFlagSet && !opts.sloMonitor)
        QOSERVE_FATAL("--slo-alert-* flags require --slo-monitor: "
                      "they configure the burn-rate monitor that "
                      "flag enables");
    if (opts.sloAlertsOut && !opts.sloMonitor)
        QOSERVE_FATAL("--slo-alerts-out requires --slo-monitor: "
                      "there is no alert timeline without the "
                      "monitor");
    if (opts.sloMonitor) {
        if (!(opts.sloAlert.budget > 0.0) ||
            opts.sloAlert.budget > 1.0)
            QOSERVE_FATAL("--slo-alert-budget must be in (0, 1], "
                          "got ", opts.sloAlert.budget);
        if (opts.sloAlert.burn <= 0.0)
            QOSERVE_FATAL("--slo-alert-burn must be positive, got ",
                          opts.sloAlert.burn);
        if (opts.sloAlert.shortWindow <= 0.0)
            QOSERVE_FATAL("--slo-alert-short must be positive, got ",
                          opts.sloAlert.shortWindow);
        if (opts.sloAlert.longWindow <= 0.0)
            QOSERVE_FATAL("--slo-alert-long must be positive, got ",
                          opts.sloAlert.longWindow);
        if (opts.sloAlert.shortWindow > opts.sloAlert.longWindow)
            QOSERVE_FATAL("--slo-alert-short (",
                          opts.sloAlert.shortWindow,
                          ") must not exceed --slo-alert-long (",
                          opts.sloAlert.longWindow, ")");
        if (opts.sloAlert.interval <= 0.0)
            QOSERVE_FATAL("--slo-alert-interval must be positive, "
                          "got ", opts.sloAlert.interval);
    }
    opts.serving.prefixCache.validate();
    opts.sharedPrefix.validate();
    if (opts.serving.cacheAffinityRouting &&
        !opts.serving.prefixCache.enabled)
        QOSERVE_FATAL("--cache-affinity requires --prefix-cache");
    return opts;
}

} // namespace qoserve
