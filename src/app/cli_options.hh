/**
 * @file
 * Command-line configuration for the qoserve_sim driver.
 *
 * Parses the flag set of the standalone simulator binary into a
 * ServingConfig plus workload/output settings. Kept in the library
 * (rather than the tool's main) so the parsing rules are unit-
 * testable and reusable by downstream drivers.
 */

#ifndef QOSERVE_APP_CLI_OPTIONS_HH
#define QOSERVE_APP_CLI_OPTIONS_HH

#include <optional>
#include <string>
#include <vector>

#include "app/serving_system.hh"
#include "cluster/brownout.hh"
#include "fault/failure_domains.hh"
#include "fault/fault_injector.hh"
#include "obs/slo_monitor.hh"

namespace qoserve {

/**
 * Parsed qoserve_sim invocation.
 */
struct CliOptions
{
    /** Serving deployment configuration. */
    ServingConfig serving;

    /** Workload shape. */
    Dataset dataset = azureCode();
    TierTable tiers = paperTierTable();
    std::vector<double> tierMix{};
    double lowPriorityFraction = 0.0;
    SharedPrefixConfig sharedPrefix{};
    double qps = 3.0;
    SimDuration duration = 600.0;
    std::uint64_t seed = 42;

    /** Load-balancing policy. */
    LoadBalancePolicy loadBalance = LoadBalancePolicy::RoundRobin;

    /** Fault injection (horizon is filled in from the workload). */
    FaultConfig fault{};

    /** Correlated failure domains (horizon filled in like fault's). */
    DomainConfig domains{};

    /** Re-dispatch policy for requests lost to replica failures. */
    RetryPolicy retry{};

    /** Per-replica circuit breaker (off by default). */
    CircuitBreakerConfig breaker{};

    /** Deadline-aware cancellation of futile retries. */
    bool deadlineCancel = false;

    /** Brownout controller (off by default). */
    BrownoutConfig brownout{};

    /** Skip down replicas / de-weight stragglers when routing. */
    bool healthAwareRouting = true;

    /** Optional trace replay input (overrides synthesis). */
    std::optional<std::string> traceIn;

    /** Optional file sinks. */
    std::optional<std::string> traceOut;
    std::optional<std::string> recordsOut;
    std::optional<std::string> telemetryOut;
    std::optional<std::string> summaryOut;

    /** Lifecycle trace sinks (--trace Perfetto JSON, --trace-csv
     *  flat events). Either one enables tracing. */
    std::optional<std::string> traceJsonOut;
    std::optional<std::string> traceEventsOut;

    /** Metrics time-series sink and sampling cadence. */
    std::optional<std::string> metricsOut;
    double metricsInterval = 5.0;

    /** Streaming latency sketch bank (--sketch-out enables) and
     *  sketch accuracy. */
    std::optional<std::string> sketchOut;
    double sketchAlpha = 0.01;

    /** SLO burn-rate monitor (--slo-monitor enables), its alerting
     *  policy, and the alert-timeline sink. */
    bool sloMonitor = false;
    SloMonitorConfig sloAlert{};
    std::optional<std::string> sloAlertsOut;

    /** True when --help was requested. */
    bool helpRequested = false;
};

/**
 * Parse argv into options.
 *
 * Unknown flags, missing values and malformed numbers are fatal
 * (user) errors with a message naming the offending flag.
 *
 * @param args Arguments excluding argv[0].
 */
CliOptions parseCliOptions(const std::vector<std::string> &args);

/** Usage text for --help. */
std::string cliUsage();

/** Parse a policy name ("qoserve", "fcfs", "edf", ...). Fatal on
 *  unknown names. */
Policy parsePolicyName(const std::string &name);

/** Parse a hardware preset name ("llama3-8b-a100-tp1", ...). */
ReplicaHwConfig parseHwName(const std::string &name);

} // namespace qoserve

#endif // QOSERVE_APP_CLI_OPTIONS_HH
