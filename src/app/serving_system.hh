/**
 * @file
 * Public façade of the QoServe library.
 *
 * ServingSystem wires together the substrates — execution model, KV
 * cache, workload, predictor, scheduler, cluster — behind a small
 * configuration surface. Examples and benches interact with this
 * class; power users can drop to the underlying modules directly.
 *
 * Typical use:
 * @code
 *   ServingConfig cfg;
 *   cfg.policy = Policy::QoServe;
 *   cfg.numReplicas = 2;
 *   ServingSystem system(cfg);
 *
 *   Trace trace = TraceBuilder()
 *       .dataset(azureCode())
 *       .build(PoissonArrivals(4.0), 1800.0);
 *   RunSummary summary = system.serve(trace);
 * @endcode
 */

#ifndef QOSERVE_APP_SERVING_SYSTEM_HH
#define QOSERVE_APP_SERVING_SYSTEM_HH

#include <memory>
#include <string>

#include "cluster/cluster.hh"
#include "predictor/latency_predictor.hh"
#include "prefixcache/prefix_cache.hh"
#include "sched/baseline_schedulers.hh"
#include "sched/dp_scheduler.hh"
#include "sched/qoserve_scheduler.hh"

namespace qoserve {

/** Scheduling policy selector. */
enum class Policy
{
    QoServe,     ///< The paper's scheduler (§3).
    SarathiFcfs, ///< Sarathi chunked prefill, FCFS order.
    SarathiEdf,  ///< Sarathi with earliest-deadline-first order.
    SarathiSjf,  ///< Sarathi with shortest-job-first order.
    SarathiSrpf, ///< Sarathi with shortest-remaining-prompt order.
    Medha,       ///< Medha-style adaptive chunking (§4.5.1).
    SlosServeDp, ///< SLOs-Serve-style DP scheduler (§4.5.3).
};

/** Display name of a policy. */
const char *policyName(Policy policy);

/**
 * Full configuration of a serving deployment.
 */
struct ServingConfig
{
    /** Replica hardware (model, GPU, TP). */
    ReplicaHwConfig hw = llama3_8b_a100_tp1();

    /** Execution-model efficiency knobs. */
    PerfModelParams perfParams{};

    /** Replica count in the (single-group, shared) cluster. */
    int numReplicas = 1;

    /** Scheduling policy. */
    Policy policy = Policy::QoServe;

    /** QoServe feature flags (used when policy == QoServe). */
    QoServeConfig qoserve{};

    /** Medha knobs (used when policy == Medha). */
    MedhaScheduler::Options medha{};

    /** DP-scheduler knobs (used when policy == SlosServeDp). */
    DpScheduler::Options dp{};

    /** Base chunked-scheduler knobs (chunk size, decode batch cap). */
    ChunkedSchedulerConfig base{};

    /**
     * Use the trained random-forest predictor for dynamic chunking;
     * false substitutes the oracle predictor (useful in tests and
     * predictor ablations).
     */
    bool useForestPredictor = true;

    /**
     * Worker threads for predictor training (0 = hardware
     * concurrency, 1 = serial). The trained predictor is
     * bit-identical for every value.
     */
    int trainJobs = 0;

    /** Shared-prefix KV cache on every replica (off by default; off
     *  leaves every run byte-identical to a build without it). */
    PrefixCacheConfig prefixCache{};

    /** Route each request to the replica holding the longest cached
     *  prefix of its prompt; requires prefixCache.enabled (fatal
     *  otherwise — affinity without a cache is a configuration
     *  error). */
    bool cacheAffinityRouting = false;
};

/**
 * Build a scheduler factory for a policy (advanced: for direct
 * ClusterSim composition, e.g. siloed deployments mixing policies).
 */
SchedulerFactory makeSchedulerFactory(const ServingConfig &cfg);

/**
 * Construct the shared latency predictor a configuration needs, or
 * nullptr when the policy never consults one.
 */
std::shared_ptr<const LatencyPredictor>
makePredictor(const ServingConfig &cfg);

/**
 * High-level serving deployment: configure once, serve traces.
 */
class ServingSystem
{
  public:
    explicit ServingSystem(ServingConfig cfg);

    /**
     * Execute a trace on a fresh cluster and summarize it.
     *
     * The predictor (expensive to train) is shared across calls;
     * cluster state is not.
     */
    RunSummary serve(const Trace &trace);

    /**
     * Execute a trace and hand back the cluster for detailed
     * inspection (records, per-replica stats).
     */
    std::unique_ptr<ClusterSim> serveForInspection(const Trace &trace);

    /** Configuration in effect. */
    const ServingConfig &config() const { return cfg_; }

  private:
    ServingConfig cfg_;
    std::shared_ptr<const LatencyPredictor> predictor_;
};

} // namespace qoserve

#endif // QOSERVE_APP_SERVING_SYSTEM_HH
