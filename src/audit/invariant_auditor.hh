/**
 * @file
 * Runtime invariant auditor for the simulation loop.
 *
 * The auditor is the dynamic half of the correctness tooling layer
 * (the static half is tools/qoserve_lint and the clang-tidy profile):
 * it hooks the end of every replica iteration and verifies that the
 * state machines the results depend on have not corrupted — KV block
 * conservation, event-clock monotonicity, scheduler queue
 * consistency, and SLO record sanity. ClusterSim installs one
 * automatically when the build's QOSERVE_CHECK_LEVEL is not `off`;
 * tests construct their own (usually with failFast disabled) to
 * inspect violations.
 *
 * All check methods are compiled unconditionally — the compile-time
 * level only selects the *default* runtime level and whether the
 * hot-path hooks are wired — so unit tests can exercise every
 * invariant regardless of the build configuration.
 */

#ifndef QOSERVE_AUDIT_INVARIANT_AUDITOR_HH
#define QOSERVE_AUDIT_INVARIANT_AUDITOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/check_level.hh"
#include "kvcache/block_manager.hh"
#include "simcore/time.hh"
#include "workload/qos.hh"

namespace qoserve {

class EventQueue;
class PrefixCache;
class Scheduler;
struct RequestRecord;
struct SchedulerAuditView;

/**
 * Snapshot of the KV manager's shared-block state for refcount
 * conservation checks. checkBlockManager() builds one from a live
 * BlockManager; tests feed deliberately corrupt snapshots directly
 * (the manager's own API cannot produce them).
 */
struct KvSharedAuditView
{
    /** One owner's shared-block references. */
    struct OwnerRefs
    {
        KvOwnerId owner = 0;
        std::int64_t sharedTokens = 0;
        std::vector<KvBlockId> sharedIds;
    };

    int blockTokens = 16;
    std::vector<OwnerRefs> owners;
    std::vector<KvSharedBlockInfo> table; ///< Sorted by block id.
    std::int64_t cacheHeldBlocks = 0;     ///< The manager's counter.
    std::int64_t evictableBlocks = 0;     ///< The manager's counter.
    std::int64_t cacheWatermark = 0;      ///< 0 when unconfigured.
};

/**
 * Verifies global simulation invariants; see DESIGN.md §7 for the
 * catalogue.
 */
class InvariantAuditor
{
  public:
    /** One detected invariant violation. */
    struct Violation
    {
        /** Short invariant identifier, e.g. "kv-conservation". */
        std::string invariant;

        /** Human-readable description of the corrupt state. */
        std::string detail;

        /** Simulation time at which the violation was observed. */
        SimTime when;
    };

    /** Auditor configuration. */
    struct Options
    {
        /** Runtime check level (default: the compiled level). */
        audit::CheckLevel level = audit::kCompiledLevel;

        /**
         * Panic on the first violation (the production setting: a
         * corrupt simulation must not keep producing numbers).
         * Disable in tests to collect and inspect violations.
         */
        bool failFast = true;

        /** Retained violations when failFast is off (count is
         *  unbounded; the list is capped). */
        std::size_t maxRetained = 64;
    };

    /** Construct with the compiled default options. */
    InvariantAuditor();

    explicit InvariantAuditor(Options opts);

    /** Runtime level in effect. */
    audit::CheckLevel level() const { return opts_.level; }

    /**
     * Audit hook for one completed replica iteration: clock
     * monotonicity, KV conservation, scheduler consistency and the
     * cross-layer KV-vs-request agreement, at the configured level.
     * @p cache, when non-null and enabled, adds the prefix-cache
     * tree-vs-block-table agreement check.
     */
    void onIterationComplete(const BlockManager &kv,
                             const Scheduler &sched,
                             const EventQueue &eq,
                             const PrefixCache *cache = nullptr);

    /**
     * Check KV block accounting: used within [0, total]; at full
     * level, per-owner block/token sums (plus shared blocks) match
     * the aggregate, each owner's blocks exactly cover its tokens,
     * and the shared-block table conserves refcounts: every shared
     * block's refcount equals the owners referencing it plus the
     * cache's own hold, the cache-held and evictable tallies match
     * the table, and the cache stays under its watermark.
     */
    void checkBlockManager(const BlockManager &kv, SimTime now);

    /**
     * Check shared-block refcount conservation on one snapshot (full
     * level): every block's refcount equals the owners referencing it
     * plus the cache's hold, per-owner shared tokens are block-
     * aligned, the cache-held / evictable tallies match the table,
     * and the cache respects its watermark. Exposed so tests can feed
     * deliberately corrupt snapshots (see KvSharedAuditView).
     */
    void checkSharedTable(const KvSharedAuditView &view, SimTime now);

    /**
     * Check the prefix cache's radix tree against the KV manager's
     * shared-block table (full level): the tree's blocks must be
     * exactly the cache-held blocks, one node per block.
     */
    void checkPrefixCache(const PrefixCache &cache,
                          const BlockManager &kv, SimTime now);

    /**
     * Check that observed event-queue time never moves backwards
     * across calls (the auditor remembers the last observed clock).
     */
    void checkEventTime(const EventQueue &eq);

    /**
     * Check a scheduler's queues via its audit view: decode batch
     * within bounds; at full level, queue exclusivity, phase/queue
     * agreement, pending-token accounting and priority ordering.
     * @p kv, when non-null, enables the cross-layer check that every
     * queued request's KV allocation equals its context length.
     */
    void checkScheduler(const Scheduler &sched, const BlockManager *kv,
                        SimTime now);

    /**
     * Check one scheduler audit view directly (exposed so tests can
     * feed deliberately corrupt views without a scheduler).
     */
    void checkSchedulerView(const SchedulerAuditView &view,
                            const BlockManager *kv, SimTime now);

    /**
     * Check a completed-request record: valid tier, non-negative
     * TTFT/TBT samples, ordered token timestamps, miss counts within
     * the token budget, non-negative retry count.
     */
    void checkRecord(const RequestRecord &rec, const TierTable &tiers);

    /**
     * Audit hook for a replica crash, called after the failure path
     * tore the replica down: the KV cache must hold zero blocks,
     * zero owners and zero shared blocks (block conservation across
     * crash-release, including the prefix cache's holdings), the
     * rebuilt scheduler must be idle, and no request may still be
     * owned by the dead replica (no request stranded).
     */
    void onReplicaCrash(const BlockManager &kv, const Scheduler &sched,
                        std::size_t live_requests, SimTime now);

    /** Iterations audited so far. */
    std::uint64_t iterationsAudited() const { return iterations_; }

    /** Total violations detected (including ones beyond the cap). */
    std::uint64_t violationCount() const { return violationCount_; }

    /** Retained violations (capped at Options::maxRetained). */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /** True when no violation has been detected. */
    bool clean() const { return violationCount_ == 0; }

  private:
    /** Record (or panic on) one violation. */
    void report(const char *invariant, std::string detail, SimTime when);

    bool cheap() const
    {
        return opts_.level >= audit::CheckLevel::Cheap;
    }

    bool full() const
    {
        return opts_.level >= audit::CheckLevel::Full;
    }

    Options opts_;
    SimTime lastEventTime_{-kTimeNever.seconds()};
    std::uint64_t iterations_ = 0;
    std::uint64_t violationCount_ = 0;
    std::vector<Violation> violations_;
};

} // namespace qoserve

#endif // QOSERVE_AUDIT_INVARIANT_AUDITOR_HH
