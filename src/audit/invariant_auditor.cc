/**
 * @file
 * Invariant auditor implementation.
 */

#include "audit/invariant_auditor.hh"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "kvcache/block_manager.hh"
#include "prefixcache/prefix_cache.hh"
#include "sched/request.hh"
#include "sched/scheduler.hh"
#include "simcore/event_queue.hh"
#include "simcore/logging.hh"

namespace qoserve {

InvariantAuditor::InvariantAuditor() : InvariantAuditor(Options{})
{
}

InvariantAuditor::InvariantAuditor(Options opts) : opts_(opts)
{
}

void
InvariantAuditor::report(const char *invariant, std::string detail,
                         SimTime when)
{
    ++violationCount_;
    if (opts_.failFast) {
        QOSERVE_PANIC("invariant violated [", invariant, "] at t=", when,
                      ": ", detail);
    }
    if (violations_.size() < opts_.maxRetained)
        violations_.push_back({invariant, std::move(detail), when});
}

void
InvariantAuditor::onIterationComplete(const BlockManager &kv,
                                      const Scheduler &sched,
                                      const EventQueue &eq,
                                      const PrefixCache *cache)
{
    if (opts_.level == audit::CheckLevel::Off)
        return;
    ++iterations_;
    checkEventTime(eq);
    checkBlockManager(kv, eq.now());
    checkScheduler(sched, &kv, eq.now());
    if (cache != nullptr && cache->enabled())
        checkPrefixCache(*cache, kv, eq.now());
}

void
InvariantAuditor::checkEventTime(const EventQueue &eq)
{
    if (!cheap())
        return;
    SimTime now = eq.now();
    if (!std::isfinite(now.seconds())) {
        report("clock-finite",
               detail::composeMessage("clock is not finite: ", now), now);
    } else if (now < lastEventTime_) {
        report("clock-monotone",
               detail::composeMessage("clock moved backwards: ", now,
                                      " < ", lastEventTime_),
               now);
    }
    lastEventTime_ = std::max(lastEventTime_, now);
}

void
InvariantAuditor::checkBlockManager(const BlockManager &kv, SimTime now)
{
    if (!cheap())
        return;

    // Cheap: aggregate conservation. free + used == total holds by
    // construction (free is derived), so the checkable half is that
    // the used counter stayed inside [0, total].
    if (kv.usedBlocks() < 0 || kv.usedBlocks() > kv.totalBlocks()) {
        report("kv-conservation",
               detail::composeMessage("used blocks ", kv.usedBlocks(),
                                      " outside [0, ", kv.totalBlocks(),
                                      "]"),
               now);
    }

    if (!full())
        return;

    // Full: per-owner accounting must sum to the aggregate, and each
    // owner's blocks must exactly cover its tokens.
    std::int64_t block_sum = 0;
    KvSharedAuditView shared;
    shared.blockTokens = kv.blockTokens();
    for (const KvOwnerUsage &u : kv.ownerUsage()) {
        block_sum += u.blocks;
        shared.owners.push_back(
            {u.owner, u.sharedTokens, kv.ownerSharedIds(u.owner)});
        if (u.tokens < 0 || u.blocks < 0) {
            report("kv-owner-accounting",
                   detail::composeMessage("owner ", u.owner,
                                          " negative usage: tokens=",
                                          u.tokens, " blocks=", u.blocks),
                   now);
            continue;
        }
        std::int64_t cover =
            u.blocks * static_cast<std::int64_t>(kv.blockTokens());
        std::int64_t prev_cover =
            (u.blocks - 1) * static_cast<std::int64_t>(kv.blockTokens());
        bool exact = u.blocks == 0 ? u.tokens == 0
                                   : u.tokens <= cover &&
                                         u.tokens > prev_cover;
        if (!exact) {
            report("kv-owner-accounting",
                   detail::composeMessage("owner ", u.owner, " holds ",
                                          u.blocks, " blocks for ",
                                          u.tokens, " tokens (",
                                          kv.blockTokens(),
                                          " tokens/block)"),
                   now);
        }
    }
    if (block_sum + kv.sharedBlockCount() != kv.usedBlocks()) {
        report("kv-conservation",
               detail::composeMessage("per-owner blocks sum to ",
                                      block_sum, " plus ",
                                      kv.sharedBlockCount(),
                                      " shared, but used counter is ",
                                      kv.usedBlocks()),
               now);
    }

    shared.table = kv.sharedBlockTable();
    shared.cacheHeldBlocks = kv.cacheHeldBlocks();
    shared.evictableBlocks = kv.evictableBlocks();
    shared.cacheWatermark = kv.cacheWatermark();
    checkSharedTable(shared, now);
}

void
InvariantAuditor::checkSharedTable(const KvSharedAuditView &view,
                                   SimTime now)
{
    if (!full())
        return;

    // Shared-block refcount conservation: every shared block's
    // refcount is exactly the owners referencing it plus the cache's
    // own hold, and the aggregate cache-held / evictable tallies match
    // the table. An evictable block (refs == 1, cache-held) is by the
    // same arithmetic disjoint from every owner's holdings — the
    // property availableBlocks() and the kv-capped batch budget lean
    // on.
    std::unordered_map<KvBlockId, std::int64_t> owner_refs;
    for (const KvSharedAuditView::OwnerRefs &o : view.owners) {
        for (KvBlockId id : o.sharedIds)
            ++owner_refs[id];
        if (o.sharedTokens !=
            static_cast<std::int64_t>(o.sharedIds.size()) *
                static_cast<std::int64_t>(view.blockTokens)) {
            report("kv-shared-refcount",
                   detail::composeMessage(
                       "owner ", o.owner, " counts ", o.sharedTokens,
                       " shared tokens over ", o.sharedIds.size(),
                       " shared blocks (", view.blockTokens,
                       " tokens/block; shared blocks are always full)"),
                   now);
        }
    }
    std::int64_t cache_held = 0;
    std::int64_t evictable = 0;
    for (const KvSharedBlockInfo &info : view.table) {
        if (info.cacheHeld)
            ++cache_held;
        if (info.cacheHeld && info.refs == 1)
            ++evictable;
        if (info.refs <= 0) {
            report("kv-shared-refcount",
                   detail::composeMessage("shared block ", info.id,
                                          " alive with refcount ",
                                          info.refs),
                   now);
            continue;
        }
        auto it = owner_refs.find(info.id);
        std::int64_t held =
            it == owner_refs.end() ? 0 : it->second;
        std::int64_t expected = held + (info.cacheHeld ? 1 : 0);
        if (info.refs != expected) {
            report("kv-shared-refcount",
                   detail::composeMessage(
                       "shared block ", info.id, " has refcount ",
                       info.refs, " but ", held, " owners hold it",
                       info.cacheHeld ? " plus the cache" : ""),
                   now);
        }
    }
    if (cache_held != view.cacheHeldBlocks) {
        report("kv-shared-refcount",
               detail::composeMessage(cache_held,
                                      " cache-held blocks in the table "
                                      "but the counter says ",
                                      view.cacheHeldBlocks),
               now);
    }
    if (evictable != view.evictableBlocks) {
        report("kv-shared-refcount",
               detail::composeMessage(evictable,
                                      " evictable blocks in the table "
                                      "but the counter says ",
                                      view.evictableBlocks),
               now);
    }
    if (view.cacheWatermark > 0 &&
        view.cacheHeldBlocks > view.cacheWatermark) {
        report("kv-cache-watermark",
               detail::composeMessage("cache holds ",
                                      view.cacheHeldBlocks,
                                      " blocks over its watermark of ",
                                      view.cacheWatermark),
               now);
    }
}

void
InvariantAuditor::checkPrefixCache(const PrefixCache &cache,
                                   const BlockManager &kv, SimTime now)
{
    if (!full())
        return;
    PrefixCacheAuditView view = cache.auditView();
    if (!view.populated)
        return;

    // The radix tree and the block manager must agree on which blocks
    // the cache holds: one tree node per cache-held block, no node
    // pointing at a dead or non-cache-held block, no cache-held block
    // missing from the tree.
    if (view.treeBlocks.size() != view.nodeCount) {
        report("prefix-tree-blocks",
               detail::composeMessage(view.nodeCount, " tree nodes but ",
                                      view.treeBlocks.size(),
                                      " distinct blocks"),
               now);
    }
    std::vector<KvBlockId> held;
    for (const KvSharedBlockInfo &info : kv.sharedBlockTable()) {
        if (info.cacheHeld)
            held.push_back(info.id);
    }
    // Both sides are sorted by block id; mismatches are reported per
    // block for debuggability.
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < view.treeBlocks.size() || j < held.size()) {
        if (j == held.size() ||
            (i < view.treeBlocks.size() &&
             view.treeBlocks[i] < held[j])) {
            report("prefix-tree-blocks",
                   detail::composeMessage("tree references block ",
                                          view.treeBlocks[i],
                                          " the KV manager does not "
                                          "hold for the cache"),
                   now);
            ++i;
        } else if (i == view.treeBlocks.size() ||
                   held[j] < view.treeBlocks[i]) {
            report("prefix-tree-blocks",
                   detail::composeMessage("cache-held block ", held[j],
                                          " missing from the radix "
                                          "tree"),
                   now);
            ++j;
        } else {
            ++i;
            ++j;
        }
    }
}

void
InvariantAuditor::checkScheduler(const Scheduler &sched,
                                 const BlockManager *kv, SimTime now)
{
    if (!cheap())
        return;
    // Only a full-level audit walks the queues; the cheap level needs
    // just the scalar counters, so don't make the scheduler
    // materialise its whole backlog (O(queue) per iteration adds up
    // to quadratic cost under overload).
    checkSchedulerView(sched.auditView(full()), kv, now);
}

void
InvariantAuditor::checkSchedulerView(const SchedulerAuditView &view,
                                     const BlockManager *kv, SimTime now)
{
    if (!cheap() || !view.populated)
        return;

    // Cheap: counters inside their configured bounds. Hand-built
    // views (tests) may fill only the vectors, so take the larger of
    // the scalar count and the vector size.
    std::size_t decode_count =
        std::max(view.decodeCount, view.decodes.size());
    if (view.maxDecodeBatch > 0 &&
        decode_count > static_cast<std::size_t>(view.maxDecodeBatch)) {
        report("sched-decode-bound",
               detail::composeMessage(decode_count,
                                      " decodes exceed the batch cap ",
                                      view.maxDecodeBatch),
               now);
    }
    if (view.pendingPrefillTokens < 0) {
        report("sched-pending-prefill",
               detail::composeMessage("pending prefill counter is ",
                                      view.pendingPrefillTokens),
               now);
    }

    if (!full())
        return;

    // Full: a request lives in exactly one queue, with the phase that
    // queue implies.
    std::unordered_set<std::uint64_t> seen;
    std::int64_t pending_sum = 0;
    const Request *prev = nullptr;
    for (const Request *req : view.prefills) {
        if (!seen.insert(req->id()).second) {
            report("sched-exclusivity",
                   detail::composeMessage("request ", req->id(),
                                          " queued twice"),
                   now);
        }
        if (req->phase() != RequestPhase::WaitingPrefill &&
            req->phase() != RequestPhase::Prefilling) {
            report("sched-phase",
                   detail::composeMessage(
                       "request ", req->id(),
                       " in prefill queue with phase ",
                       static_cast<int>(req->phase())),
                   now);
        }
        if (req->prefillRemaining() <= 0) {
            report("sched-phase",
                   detail::composeMessage("request ", req->id(),
                                          " queued for prefill with ",
                                          req->prefillRemaining(),
                                          " tokens remaining"),
                   now);
        }
        pending_sum += req->prefillRemaining();

        // Priority order: regular before relegated; within a class,
        // (cachedPriority, id) strictly increasing.
        if (prev != nullptr) {
            bool ordered;
            if (prev->relegated() != req->relegated())
                ordered = !prev->relegated();
            else if (prev->cachedPriority != req->cachedPriority)
                ordered = prev->cachedPriority < req->cachedPriority;
            else
                ordered = prev->id() < req->id();
            if (!ordered) {
                report("sched-priority-order",
                       detail::composeMessage(
                           "request ", prev->id(), " (prio ",
                           prev->cachedPriority,
                           prev->relegated() ? ", relegated" : "",
                           ") precedes ", req->id(), " (prio ",
                           req->cachedPriority,
                           req->relegated() ? ", relegated" : "", ")"),
                       now);
            }
        }
        prev = req;
    }
    if (pending_sum != view.pendingPrefillTokens) {
        report("sched-pending-prefill",
               detail::composeMessage("queued prefill tokens sum to ",
                                      pending_sum,
                                      " but the counter says ",
                                      view.pendingPrefillTokens),
               now);
    }

    for (const Request *req : view.decodes) {
        if (!seen.insert(req->id()).second) {
            report("sched-exclusivity",
                   detail::composeMessage("request ", req->id(),
                                          " in prefill and decode "
                                          "queues at once"),
                   now);
        }
        if (req->phase() != RequestPhase::Decoding) {
            report("sched-phase",
                   detail::composeMessage("request ", req->id(),
                                          " in decode queue with phase ",
                                          static_cast<int>(req->phase())),
                   now);
        }
        if (req->prefillRemaining() != 0) {
            report("sched-phase",
                   detail::composeMessage("decoding request ", req->id(),
                                          " still has ",
                                          req->prefillRemaining(),
                                          " prefill tokens"),
                   now);
        }
    }

    // Cross-layer: between iterations every queued request's KV
    // allocation — private blocks plus attached shared blocks —
    // covers exactly its computed context. A decoding request's
    // newest sampled token has no KV yet — its entry is appended when
    // the token is fed back next iteration — so the expected
    // allocation there is one behind the context length.
    if (kv != nullptr) {
        auto check_kv = [&](const Request *req) {
            std::int64_t expected =
                req->phase() == RequestPhase::Decoding
                    ? req->contextLength() - 1
                    : req->contextLength();
            std::int64_t held = kv->ownedTokens(req->id()) +
                                kv->sharedTokens(req->id());
            if (held != expected) {
                report("kv-request-agreement",
                       detail::composeMessage(
                           "request ", req->id(), " holds ", held,
                           " KV tokens (",
                           kv->ownedTokens(req->id()), " private + ",
                           kv->sharedTokens(req->id()),
                           " shared) but expected ", expected,
                           " (context ", req->contextLength(), ")"),
                       now);
            }
        };
        for (const Request *req : view.prefills)
            check_kv(req);
        for (const Request *req : view.decodes)
            check_kv(req);
    }
}

void
InvariantAuditor::checkRecord(const RequestRecord &rec,
                              const TierTable &tiers)
{
    if (!cheap())
        return;

    SimTime when = rec.finishTime;
    if (rec.spec.tierId < 0 ||
        rec.spec.tierId >= static_cast<int>(tiers.size())) {
        report("slo-record",
               detail::composeMessage("record ", rec.spec.id,
                                      " references unknown tier ",
                                      rec.spec.tierId),
               when);
        return;
    }
    // Terminal states are exclusive and self-consistent: an abandoned
    // request (retry budget exhausted or deadline-cancelled) never
    // finished, and a front-door rejection (admission or brownout
    // shed) never entered the retry path.
    if (rec.retryExhausted && rec.finishTime != kTimeNever) {
        report("slo-terminal-state",
               detail::composeMessage("record ", rec.spec.id,
                                      " is abandoned yet finished at ",
                                      rec.finishTime),
               when);
    }
    if (rec.rejected && rec.retryExhausted) {
        report("slo-terminal-state",
               detail::composeMessage("record ", rec.spec.id,
                                      " is both rejected and "
                                      "abandoned"),
               when);
    }
    if (rec.rejected && rec.retries != 0) {
        report("slo-terminal-state",
               detail::composeMessage("record ", rec.spec.id,
                                      " was rejected at the front door "
                                      "yet counts ",
                                      rec.retries, " retries"),
               when);
    }
    if (rec.rejected)
        return; // Never executed: latencies are deliberately infinite.

    if (rec.firstTokenTime < rec.spec.arrival) {
        report("slo-ttft-sample",
               detail::composeMessage("record ", rec.spec.id,
                                      " has negative TTFT: first token ",
                                      rec.firstTokenTime, " < arrival ",
                                      rec.spec.arrival),
               when);
    }
    if (rec.finishTime < rec.firstTokenTime) {
        report("slo-token-order",
               detail::composeMessage("record ", rec.spec.id,
                                      " finished at ", rec.finishTime,
                                      " before its first token at ",
                                      rec.firstTokenTime),
               when);
    }
    if (!(rec.maxTbt >= 0.0) || !std::isfinite(rec.maxTbt)) {
        report("slo-tbt-sample",
               detail::composeMessage("record ", rec.spec.id,
                                      " has invalid max TBT ",
                                      rec.maxTbt),
               when);
    }
    if (rec.tbtDeadlineMisses < 0 ||
        rec.tbtDeadlineMisses > rec.spec.decodeTokens) {
        report("slo-miss-count",
               detail::composeMessage("record ", rec.spec.id, " counts ",
                                      rec.tbtDeadlineMisses,
                                      " TBT misses over ",
                                      rec.spec.decodeTokens, " tokens"),
               when);
    }
    if (rec.kvPreemptions < 0) {
        report("slo-record",
               detail::composeMessage("record ", rec.spec.id,
                                      " has negative preemption count"),
               when);
    }
    if (rec.retries < 0) {
        report("slo-record",
               detail::composeMessage("record ", rec.spec.id,
                                      " has negative retry count"),
               when);
    }
}

void
InvariantAuditor::onReplicaCrash(const BlockManager &kv,
                                 const Scheduler &sched,
                                 std::size_t live_requests, SimTime now)
{
    if (!cheap())
        return;

    // Block conservation across crash-release: a dead process holds
    // no memory. Any remainder is a leak that would starve the
    // recovered replica.
    if (kv.usedBlocks() != 0 || kv.numOwners() != 0) {
        report("kv-crash-release",
               detail::composeMessage("crashed replica still holds ",
                                      kv.usedBlocks(), " blocks for ",
                                      kv.numOwners(), " owners"),
               now);
    }
    if (kv.sharedBlockCount() != 0 || kv.cacheHeldBlocks() != 0 ||
        kv.evictableBlocks() != 0) {
        report("kv-crash-release",
               detail::composeMessage("crashed replica still tracks ",
                                      kv.sharedBlockCount(),
                                      " shared blocks (",
                                      kv.cacheHeldBlocks(),
                                      " cache-held, ",
                                      kv.evictableBlocks(),
                                      " evictable)"),
               now);
    }

    // No request stranded on a down replica: every live request must
    // have been handed back to the cluster, and the rebuilt scheduler
    // must have nothing queued.
    if (live_requests != 0) {
        report("crash-stranded-request",
               detail::composeMessage(live_requests,
                                      " requests still owned by a "
                                      "crashed replica"),
               now);
    }
    if (sched.hasWork()) {
        report("crash-stranded-request",
               detail::composeMessage(
                   "crashed replica's scheduler still has work: ",
                   sched.prefillQueueSize(), " prefills, ",
                   sched.decodeQueueSize(), " decodes"),
               now);
    }
}

} // namespace qoserve
