/**
 * @file
 * Analytical execution-time model implementation.
 */

#include "model/perf_model.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

PerfModel::PerfModel(ReplicaHwConfig hw, PerfModelParams params)
    : hw_(std::move(hw)), params_(params)
{
    QOSERVE_ASSERT(hw_.tpDegree >= 1, "invalid TP degree");
    QOSERVE_ASSERT(hw_.gpu.peakFlops > 0 && hw_.gpu.memBandwidth > 0,
                   "invalid GPU config");
}

SimDuration
PerfModel::linearTime(TokenCount total_tokens) const
{
    if (total_tokens.value() <= 0)
        return 0.0;

    // The token count enters the formulas as a scalar; name it for
    // what it is (a count, not a time).
    double tokens_f = static_cast<double>(total_tokens.value());
    double tp = static_cast<double>(hw_.tpDegree);

    // Utilisation ramps with the number of tokens in flight; small
    // batches cannot fill the GPU's compute units.
    double mfu = params_.mfuMax * tokens_f / (tokens_f + params_.mfuRampTokens);
    double flops =
        2.0 * static_cast<double>(hw_.model.numParams) * tokens_f;
    double compute = flops / (tp * hw_.gpu.peakFlops * mfu);

    // Regardless of batch size, every weight must stream from HBM
    // once per iteration (TP shards the weights across GPUs).
    double weight_stream =
        static_cast<double>(hw_.model.weightBytes()) /
        (tp * hw_.gpu.memBandwidth * params_.weightBwEff);

    return std::max(compute, weight_stream);
}

SimDuration
PerfModel::prefillAttnTime(double ctx_product) const
{
    if (ctx_product <= 0.0)
        return 0.0;

    double tp = static_cast<double>(hw_.tpDegree);
    // QK^T and AV each cost 2 * c * K * hidden MACs per layer.
    double flops = 4.0 * ctx_product *
                   static_cast<double>(hw_.model.hiddenSize) *
                   static_cast<double>(hw_.model.numLayers);
    return flops / (tp * hw_.gpu.peakFlops * params_.attnMfu);
}

SimDuration
PerfModel::decodeAttnTime(int num_decodes, std::int64_t ctx_sum) const
{
    if (num_decodes <= 0 || ctx_sum <= 0)
        return 0.0;

    double tp = static_cast<double>(hw_.tpDegree);
    double bytes = static_cast<double>(ctx_sum) *
                   static_cast<double>(hw_.model.kvBytesPerToken());
    return bytes / (tp * hw_.gpu.memBandwidth * params_.attnBwEff);
}

SimDuration
PerfModel::commTime(TokenCount total_tokens) const
{
    if (hw_.tpDegree <= 1 || total_tokens.value() <= 0)
        return 0.0;

    // Two all-reduces of the activations per layer; ring all-reduce
    // moves ~2x the payload per participant.
    double payload = static_cast<double>(total_tokens.value()) *
                     static_cast<double>(hw_.model.hiddenSize) *
                     static_cast<double>(hw_.model.bytesPerParam);
    double bytes_moved = 2.0 * 2.0 * payload *
                         static_cast<double>(hw_.model.numLayers);
    return bytes_moved /
           (hw_.gpu.nvlinkBandwidth * params_.commBwEff);
}

SimDuration
PerfModel::iterationTime(const BatchWork &work) const
{
    QOSERVE_ASSERT(work.prefillTokens >= 0 && work.numDecodes >= 0 &&
                       work.decodeCtxSum >= 0,
                   "negative batch work");
    if (work.totalTokens() == 0)
        return 0.0;

    return params_.baseOverhead + linearTime(TokenCount{work.totalTokens()}) +
           prefillAttnTime(work.prefillCtxProduct) +
           decodeAttnTime(work.numDecodes, work.decodeCtxSum) +
           commTime(TokenCount{work.totalTokens()});
}

} // namespace qoserve
