/**
 * @file
 * GPU and replica hardware descriptions.
 *
 * Matches Table 1 of the paper: A100-80GB and H100-80GB devices, with
 * tensor-parallel (TP) replica configurations of 1, 2 and 4 GPUs.
 */

#ifndef QOSERVE_MODEL_HARDWARE_CONFIG_HH
#define QOSERVE_MODEL_HARDWARE_CONFIG_HH

#include <string>

#include "model/model_config.hh"

namespace qoserve {

/**
 * Static description of one GPU device.
 */
struct GpuConfig
{
    /** Human-readable name, e.g. "A100-80GB". */
    std::string name;

    /** Peak dense bf16 throughput, FLOP/s. */
    double peakFlops = 0.0;

    /** HBM bandwidth, bytes/s. */
    double memBandwidth = 0.0;

    /** Device memory, bytes. */
    double memCapacity = 0.0;

    /** Per-direction NVLink bandwidth for TP collectives, bytes/s. */
    double nvlinkBandwidth = 0.0;
};

/** NVIDIA A100 80GB SXM. */
GpuConfig a100_80gb();

/** NVIDIA H100 80GB SXM. */
GpuConfig h100_80gb();

/**
 * A serving replica: one model instance sharded over tpDegree GPUs.
 */
struct ReplicaHwConfig
{
    ModelConfig model;
    GpuConfig gpu;
    int tpDegree = 1;

    /** GPUs consumed by one replica. */
    int gpusPerReplica() const { return tpDegree; }

    /**
     * KV-cache capacity in tokens across the replica.
     *
     * Device memory minus weights minus a fixed activation /
     * framework reservation, divided by KV bytes per token.
     */
    std::int64_t kvCapacityTokens() const;
};

/** Llama3-8B on a single A100 (paper row 1). */
ReplicaHwConfig llama3_8b_a100_tp1();

/** Qwen-7B on two A100s with TP2 (paper row 2). */
ReplicaHwConfig qwen_7b_a100_tp2();

/** Llama3-70B on four H100s with TP4 (paper row 3). */
ReplicaHwConfig llama3_70b_h100_tp4();

} // namespace qoserve

#endif // QOSERVE_MODEL_HARDWARE_CONFIG_HH
