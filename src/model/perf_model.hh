/**
 * @file
 * Analytical batch execution-time model.
 *
 * This is the substitute for running real GPUs (see DESIGN.md §1):
 * a roofline-style model of one scheduler iteration executing a mixed
 * batch of prefill-chunk tokens and decode tokens, as in Sarathi-style
 * fused chunked-prefill serving. The three cost components mirror the
 * structure of real engines:
 *
 *  - linear layers (MLP + projections): compute-bound at large token
 *    counts, weight-streaming-bound at small ones, with an efficiency
 *    ramp capturing poor GPU utilisation on small batches — this is
 *    what produces the throughput-vs-chunk-size tradeoff of Fig. 4;
 *  - prefill attention: quadratic in processed context, which is what
 *    Medha-style adaptive chunking reacts to on long prompts;
 *  - decode attention: memory-bound KV-cache reads proportional to
 *    the summed context of all decoding sequences.
 *
 * Default parameters are calibrated so that Llama3-8B on one A100
 * reproduces the published operating points: ~50 ms iteration latency
 * at chunk size ~330, throughput saturating near 10K tokens/s around
 * chunk 2500, and roughly 2x throughput for chunk 2500 vs 256
 * (paper §4.1.4, Fig. 4).
 */

#ifndef QOSERVE_MODEL_PERF_MODEL_HH
#define QOSERVE_MODEL_PERF_MODEL_HH

#include <cstdint>

#include "model/hardware_config.hh"
#include "core/units.hh"

namespace qoserve {

/**
 * Aggregate work contained in one iteration's batch.
 */
struct BatchWork
{
    /** New prefill tokens processed this iteration (the chunk). */
    std::int64_t prefillTokens = 0;

    /**
     * Attention context product of the prefill side:
     * sum over prefill sequences of c_i * (K_i + c_i / 2), where c_i
     * is the sequence's chunk tokens this iteration and K_i its
     * already-cached context. Captures the quadratic attention cost.
     */
    double prefillCtxProduct = 0.0;

    /** Number of sequences in decode phase (one token each). */
    int numDecodes = 0;

    /** Summed KV context length over all decoding sequences. */
    std::int64_t decodeCtxSum = 0;

    /** Tokens entering the linear layers this iteration. */
    std::int64_t
    totalTokens() const
    {
        return prefillTokens + numDecodes;
    }
};

/**
 * Tunable efficiency parameters of the analytical model.
 */
struct PerfModelParams
{
    /** Peak achievable model FLOPs utilisation for linear layers. */
    double mfuMax = 0.55;

    /**
     * Token count at which linear-layer utilisation reaches half of
     * mfuMax; models small-batch inefficiency.
     */
    double mfuRampTokens = 128.0;

    /** Effective fraction of HBM bandwidth for weight streaming. */
    double weightBwEff = 0.7;

    /** FLOPs utilisation of prefill attention kernels. */
    double attnMfu = 0.35;

    /** Effective fraction of HBM bandwidth for decode-attention KV reads. */
    double attnBwEff = 0.6;

    /** Effective fraction of NVLink bandwidth for TP collectives. */
    double commBwEff = 0.7;

    /** Fixed per-iteration overhead (launch, scheduling), seconds. */
    double baseOverhead = 4e-3;
};

/**
 * Deterministic execution-time model for one replica.
 *
 * All methods are pure; the model carries no mutable state, so a
 * single instance can be shared by the engine, the profiler and any
 * oracle-based tests.
 */
class PerfModel
{
  public:
    /**
     * @param hw Replica hardware (model, GPU, TP degree).
     * @param params Efficiency knobs; defaults are calibrated.
     */
    explicit PerfModel(ReplicaHwConfig hw, PerfModelParams params = {});

    /** Execution time of one iteration over the given batch. */
    SimDuration iterationTime(const BatchWork &work) const;

    /** Linear-layer (MLP + projection) time for a token count. */
    SimDuration linearTime(TokenCount total_tokens) const;

    /** Prefill attention time for a context product (see BatchWork). */
    SimDuration prefillAttnTime(double ctx_product) const;

    /** Decode attention (KV read) time. */
    SimDuration decodeAttnTime(int num_decodes,
                               std::int64_t ctx_sum) const;

    /** Tensor-parallel collective time for a token count. */
    SimDuration commTime(TokenCount total_tokens) const;

    /** Hardware description this model was built for. */
    const ReplicaHwConfig &hw() const { return hw_; }

    /** Parameters in effect. */
    const PerfModelParams &params() const { return params_; }

  private:
    ReplicaHwConfig hw_;
    PerfModelParams params_;
};

} // namespace qoserve

#endif // QOSERVE_MODEL_PERF_MODEL_HH
