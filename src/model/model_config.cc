/**
 * @file
 * Model preset definitions.
 */

#include "model/model_config.hh"

#include "simcore/logging.hh"

namespace qoserve {

ModelConfig
llama3_8b()
{
    ModelConfig m;
    m.name = "Llama3-8B";
    m.numParams = 8'030'000'000LL;
    m.numLayers = 32;
    m.hiddenSize = 4096;
    m.numHeads = 32;
    m.numKvHeads = 8;
    m.headDim = 128;
    m.attention = AttentionKind::GQA;
    return m;
}

ModelConfig
qwen_7b()
{
    ModelConfig m;
    m.name = "Qwen-7B";
    m.numParams = 7'720'000'000LL;
    m.numLayers = 32;
    m.hiddenSize = 4096;
    m.numHeads = 32;
    m.numKvHeads = 32;
    m.headDim = 128;
    m.attention = AttentionKind::MHA;
    return m;
}

ModelConfig
llama3_70b()
{
    ModelConfig m;
    m.name = "Llama3-70B";
    m.numParams = 70'600'000'000LL;
    m.numLayers = 80;
    m.hiddenSize = 8192;
    m.numHeads = 64;
    m.numKvHeads = 8;
    m.headDim = 128;
    m.attention = AttentionKind::GQA;
    return m;
}

ModelConfig
modelByName(const std::string &name)
{
    if (name == "llama3-8b")
        return llama3_8b();
    if (name == "qwen-7b")
        return qwen_7b();
    if (name == "llama3-70b")
        return llama3_70b();
    QOSERVE_FATAL("unknown model preset: ", name);
}

} // namespace qoserve
