/**
 * @file
 * Transformer model descriptions used by the execution model.
 *
 * The paper evaluates Llama3-8B (GQA), Qwen-7B (MHA) and Llama3-70B
 * (GQA) — see Table 1. Only the quantities that drive inference cost
 * are captured: parameter count (linear-layer FLOPs and weight bytes),
 * layer geometry (attention FLOPs) and KV-head layout (KV-cache bytes
 * per token, which differs 4x between GQA and MHA models).
 */

#ifndef QOSERVE_MODEL_MODEL_CONFIG_HH
#define QOSERVE_MODEL_MODEL_CONFIG_HH

#include <cstdint>
#include <string>

namespace qoserve {

/** Attention layout of a model. */
enum class AttentionKind
{
    MHA, ///< One KV head per query head.
    GQA, ///< Grouped KV heads shared across query heads.
};

/**
 * Static description of a dense decoder-only transformer.
 */
struct ModelConfig
{
    /** Human-readable name, e.g. "Llama3-8B". */
    std::string name;

    /** Total parameter count. */
    std::int64_t numParams = 0;

    /** Number of transformer layers. */
    int numLayers = 0;

    /** Model (embedding) dimension. */
    int hiddenSize = 0;

    /** Number of query heads. */
    int numHeads = 0;

    /** Number of KV heads (== numHeads for MHA). */
    int numKvHeads = 0;

    /** Per-head dimension. */
    int headDim = 0;

    /** Bytes per parameter / activation element (2 for bf16). */
    int bytesPerParam = 2;

    /** Attention layout. */
    AttentionKind attention = AttentionKind::GQA;

    /**
     * KV-cache bytes stored per token across all layers.
     *
     * Two tensors (K and V) of numKvHeads x headDim elements per
     * layer.
     */
    std::int64_t
    kvBytesPerToken() const
    {
        return 2LL * numLayers * numKvHeads * headDim * bytesPerParam;
    }

    /** Total weight bytes. */
    std::int64_t
    weightBytes() const
    {
        return numParams * static_cast<std::int64_t>(bytesPerParam);
    }
};

/** Llama3-8B: 32 layers, GQA with 8 KV heads. */
ModelConfig llama3_8b();

/** Qwen-7B: 32 layers, full MHA (32 KV heads). */
ModelConfig qwen_7b();

/** Llama3-70B: 80 layers, GQA with 8 KV heads. */
ModelConfig llama3_70b();

/** Look up a preset by name ("llama3-8b", "qwen-7b", "llama3-70b"). */
ModelConfig modelByName(const std::string &name);

} // namespace qoserve

#endif // QOSERVE_MODEL_MODEL_CONFIG_HH
