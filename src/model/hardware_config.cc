/**
 * @file
 * Hardware preset definitions.
 */

#include "model/hardware_config.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

namespace {

/** Memory held back for activations, CUDA context and fragmentation. */
constexpr double kActivationReserveBytes = 6e9;

} // namespace

GpuConfig
a100_80gb()
{
    GpuConfig g;
    g.name = "A100-80GB";
    g.peakFlops = 312e12;
    g.memBandwidth = 2.04e12;
    g.memCapacity = 80e9;
    g.nvlinkBandwidth = 300e9;
    return g;
}

GpuConfig
h100_80gb()
{
    GpuConfig g;
    g.name = "H100-80GB";
    g.peakFlops = 989e12;
    g.memBandwidth = 3.35e12;
    g.memCapacity = 80e9;
    g.nvlinkBandwidth = 450e9;
    return g;
}

std::int64_t
ReplicaHwConfig::kvCapacityTokens() const
{
    double total = gpu.memCapacity * tpDegree;
    double weights = static_cast<double>(model.weightBytes());
    double reserve = kActivationReserveBytes * tpDegree;
    double avail = total - weights - reserve;
    if (avail <= 0) {
        QOSERVE_FATAL("model ", model.name, " does not fit on ",
                      tpDegree, "x ", gpu.name);
    }
    return static_cast<std::int64_t>(
        avail / static_cast<double>(model.kvBytesPerToken()));
}

ReplicaHwConfig
llama3_8b_a100_tp1()
{
    return ReplicaHwConfig{llama3_8b(), a100_80gb(), 1};
}

ReplicaHwConfig
qwen_7b_a100_tp2()
{
    return ReplicaHwConfig{qwen_7b(), a100_80gb(), 2};
}

ReplicaHwConfig
llama3_70b_h100_tp4()
{
    return ReplicaHwConfig{llama3_70b(), h100_80gb(), 4};
}

} // namespace qoserve
