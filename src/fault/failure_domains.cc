/**
 * @file
 * Failure-domain injector implementation.
 */

#include "fault/failure_domains.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/trace_sink.hh"
#include "simcore/logging.hh"

namespace qoserve {

DomainInjector::DomainInjector(DomainConfig cfg, ClusterSim &cluster)
    : cfg_(cfg), cluster_(cluster), partitionRng_(0)
{
    if (!cfg_.enabled())
        return; // Zero events scheduled: zero cost when off.

    if (!(cfg_.horizon > SimTime{}) ||
        !std::isfinite(cfg_.horizon.seconds())) {
        QOSERVE_FATAL("failure domains need a positive finite "
                      "horizon, got ",
                      cfg_.horizon);
    }
    const std::size_t n = cluster_.numReplicas();
    QOSERVE_ASSERT(n > 0, "domain injector attached before any "
                          "replica group was added");
    if (cfg_.zoneOutagesEnabled()) {
        if (cfg_.zones > static_cast<int>(n))
            QOSERVE_FATAL("more zones (", cfg_.zones,
                          ") than replicas (", n, ")");
        if (cfg_.zoneMttr <= 0.0)
            QOSERVE_FATAL("zone MTTR must be positive, got ",
                          cfg_.zoneMttr);
    }
    if (cfg_.partitionsEnabled()) {
        if (cfg_.partitionMttr <= 0.0)
            QOSERVE_FATAL("partition MTTR must be positive, got ",
                          cfg_.partitionMttr);
        if (!(cfg_.partitionFrac > 0.0) || cfg_.partitionFrac > 1.0)
            QOSERVE_FATAL("partition fraction must be in (0, 1], "
                          "got ",
                          cfg_.partitionFrac);
    }

    // Contiguous zone ranges, as even as possible: zone z owns
    // [z*n/zones, (z+1)*n/zones).
    const int zones = std::max(cfg_.zones, 0);
    zoneOf_.assign(n, 0);
    for (int z = 0; z < zones; ++z) {
        std::size_t lo = static_cast<std::size_t>(z) * n /
                         static_cast<std::size_t>(zones);
        std::size_t hi = (static_cast<std::size_t>(z) + 1) * n /
                         static_cast<std::size_t>(zones);
        for (std::size_t i = lo; i < hi; ++i)
            zoneOf_[i] = z;
    }

    Rng root(cfg_.seed);
    partitionRng_ = root.split("partition");
    if (cfg_.zoneOutagesEnabled()) {
        downedByZone_.resize(static_cast<std::size_t>(zones));
        outageSince_.assign(static_cast<std::size_t>(zones),
                            kTimeNever);
        for (int z = 0; z < zones; ++z)
            zoneRng_.push_back(
                root.split("zone-" + std::to_string(z)));
        for (int z = 0; z < zones; ++z)
            scheduleNextOutage(z);
    }
    if (cfg_.partitionsEnabled())
        scheduleNextPartition();
}

void
DomainInjector::scheduleNextOutage(int z)
{
    SimTime when =
        cluster_.eventQueue().now() +
        zoneRng_[static_cast<std::size_t>(z)].exponential(
            1.0 / cfg_.zoneMtbf);
    if (when > cfg_.horizon)
        return; // Injection stops; the queue can drain.
    cluster_.eventQueue().schedule(when,
                                   [this, z]() { startOutage(z); });
}

void
DomainInjector::startOutage(int z)
{
    SimTime now = cluster_.eventQueue().now();
    ++stats_.zoneOutages;
    outageSince_[static_cast<std::size_t>(z)] = now;
    events_.push_back(
        {FaultKind::ZoneOutage, static_cast<std::size_t>(z), now, 1.0});
    if (TraceSink *sink = cluster_.traceSink()) {
        sink->emit({TraceEventKind::ZoneOutage, now, kNoTraceRequest,
                    -1, z, 0.0});
    }

    // Fail every live replica of the zone in one instant — the
    // correlated event the independent model cannot produce. A
    // replica already crashed by an independent fault keeps its own
    // repair schedule and is not claimed by this outage. The
    // per-replica Crash events keep every downstream consumer
    // (timelines, availability replay) correct without special
    // cases; arg = 1 marks them zone-correlated.
    auto &downed = downedByZone_[static_cast<std::size_t>(z)];
    for (std::size_t i = 0; i < cluster_.numReplicas(); ++i) {
        if (zoneOf_[i] != z ||
            cluster_.replica(i).health() == ReplicaHealth::Down)
            continue;
        if (TraceSink *sink = cluster_.traceSink()) {
            sink->emit({TraceEventKind::Crash, now, kNoTraceRequest,
                        static_cast<int>(i), 1, 0.0});
        }
        cluster_.replica(i).fail();
        downed.push_back(i);
        ++stats_.replicasDowned;
    }

    // The restore is always delivered, even past the horizon.
    SimDuration repair =
        zoneRng_[static_cast<std::size_t>(z)].exponential(
            1.0 / cfg_.zoneMttr);
    cluster_.eventQueue().scheduleAfter(repair,
                                        [this, z]() { endOutage(z); });
}

void
DomainInjector::endOutage(int z)
{
    SimTime now = cluster_.eventQueue().now();
    auto &downed = downedByZone_[static_cast<std::size_t>(z)];
    for (std::size_t i : downed) {
        if (cluster_.replica(i).health() != ReplicaHealth::Down)
            continue; // Defensive: nobody else repairs our crashes.
        if (TraceSink *sink = cluster_.traceSink()) {
            sink->emit({TraceEventKind::Recover, now, kNoTraceRequest,
                        static_cast<int>(i), 1, 0.0});
        }
        cluster_.replica(i).recover();
    }
    downed.clear();
    ++stats_.zoneRestores;
    stats_.zoneDownSeconds +=
        now - outageSince_[static_cast<std::size_t>(z)];
    outageSince_[static_cast<std::size_t>(z)] = kTimeNever;
    events_.push_back({FaultKind::ZoneRecovery,
                       static_cast<std::size_t>(z), now, 1.0});
    if (TraceSink *sink = cluster_.traceSink()) {
        sink->emit({TraceEventKind::ZoneRestore, now, kNoTraceRequest,
                    -1, z, 0.0});
    }
    scheduleNextOutage(z);
}

void
DomainInjector::scheduleNextPartition()
{
    SimTime when = cluster_.eventQueue().now() +
                   partitionRng_.exponential(1.0 / cfg_.partitionMtbf);
    if (when > cfg_.horizon)
        return;
    cluster_.eventQueue().schedule(when,
                                   [this]() { startPartition(); });
}

void
DomainInjector::startPartition()
{
    SimTime now = cluster_.eventQueue().now();
    const std::size_t n = cluster_.numReplicas();
    std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg_.partitionFrac *
                                    static_cast<double>(n)));
    k = std::min(k, n);

    // Seeded partial Fisher-Yates: the first k slots of a shuffled
    // index array are the blinded set. Draw count depends only on k,
    // so the schedule stays a pure function of the config.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i)
        idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = static_cast<std::size_t>(
            partitionRng_.uniformInt(static_cast<std::int64_t>(i),
                                     static_cast<std::int64_t>(n - 1)));
        std::swap(idx[i], idx[j]);
    }
    blinded_.assign(idx.begin(), idx.begin() + static_cast<long>(k));
    std::sort(blinded_.begin(), blinded_.end());
    for (std::size_t i : blinded_)
        cluster_.blindReplica(i);

    ++stats_.partitions;
    events_.push_back({FaultKind::PartitionStart, k, now, 1.0});
    if (TraceSink *sink = cluster_.traceSink()) {
        sink->emit({TraceEventKind::PartitionStart, now,
                    kNoTraceRequest, -1,
                    static_cast<std::int64_t>(k), 0.0});
    }

    // The heal is always delivered; partitions never overlap (the
    // next one is drawn only after this one heals).
    SimDuration heal =
        partitionRng_.exponential(1.0 / cfg_.partitionMttr);
    cluster_.eventQueue().scheduleAfter(
        heal, [this]() { endPartition(); });
}

void
DomainInjector::endPartition()
{
    SimTime now = cluster_.eventQueue().now();
    for (std::size_t i : blinded_)
        cluster_.unblindReplica(i);
    blinded_.clear();
    ++stats_.partitionHeals;
    events_.push_back({FaultKind::PartitionEnd, 0, now, 1.0});
    if (TraceSink *sink = cluster_.traceSink()) {
        sink->emit({TraceEventKind::PartitionEnd, now, kNoTraceRequest,
                    -1, 0, 0.0});
    }
    scheduleNextPartition();
}

} // namespace qoserve
