/**
 * @file
 * Correlated failure domains: zone outages and control-plane
 * partitions (DESIGN.md §13).
 *
 * The independent per-replica fault model of FaultInjector misses the
 * failures that actually break serving fleets: a rack power event or
 * a bad rollout takes a *correlated* set of replicas down at once,
 * and a control-plane partition leaves the router alive but acting on
 * stale state for part of the fleet. DomainInjector adds both on the
 * same seeded-stream discipline — per-zone RNG streams split from one
 * root seed, so a domain schedule is a pure function of
 * (seed, config, replica count) and composes with an independent
 * FaultInjector without perturbing its draws.
 *
 * Zone outages fail every live replica of the zone in one simulation
 * instant (each crash hands its live requests to the cluster retry
 * path, exactly like an independent crash) and repair them together.
 * Partitions blind the cluster front door to a seeded subset of
 * replicas: routing sees a snapshot of their state taken at partition
 * start, so it keeps dispatching to replicas that may since have
 * died — those dispatches bounce into the retry path, which is what
 * the circuit breaker (CircuitBreakerConfig) exists to dampen.
 */

#ifndef QOSERVE_FAULT_FAILURE_DOMAINS_HH
#define QOSERVE_FAULT_FAILURE_DOMAINS_HH

#include <cstdint>
#include <vector>

#include "fault/fault_injector.hh"

namespace qoserve {

/**
 * Failure-domain configuration. Both episode kinds default off; with
 * both disabled the injector schedules nothing and a run is
 * bit-identical to one without it.
 */
struct DomainConfig
{
    /**
     * Number of zones the replicas are partitioned into (contiguous
     * index ranges, as even as possible). 0 means no zone topology;
     * required in [1, numReplicas] when zone outages are enabled.
     */
    int zones = 0;

    /** Mean time between outages per zone, seconds (0 = off). */
    double zoneMtbf = 0.0;

    /** Mean time to restore a failed zone, seconds. */
    double zoneMttr = 30.0;

    /** Mean time between control-plane partitions, seconds
     *  (0 = off). */
    double partitionMtbf = 0.0;

    /** Mean partition duration before the view heals, seconds. */
    double partitionMttr = 10.0;

    /** Fraction of replicas blinded per partition, in (0, 1];
     *  at least one replica is always blinded. */
    double partitionFrac = 0.25;

    /** Root seed of the domain schedule (independent of both the
     *  workload seed and the FaultInjector seed). */
    std::uint64_t seed = 7;

    /** No new episode starts after this time (required positive and
     *  finite when enabled); restores and heals are always
     *  delivered. */
    SimTime horizon;

    /** True when zone outages are enabled. */
    bool zoneOutagesEnabled() const { return zones > 0 && zoneMtbf > 0.0; }

    /** True when control-plane partitions are enabled. */
    bool partitionsEnabled() const { return partitionMtbf > 0.0; }

    /** True when the injector will schedule anything at all. */
    bool enabled() const
    {
        return zoneOutagesEnabled() || partitionsEnabled();
    }
};

/** Aggregate failure-domain statistics. */
struct DomainStats
{
    std::uint64_t zoneOutages = 0;
    std::uint64_t zoneRestores = 0;

    /** Replica crashes caused by zone outages (already-down replicas
     *  are not double-counted). */
    std::uint64_t replicasDowned = 0;

    std::uint64_t partitions = 0;
    std::uint64_t partitionHeals = 0;

    /** Total zone-outage time across completed restores, seconds. */
    SimDuration zoneDownSeconds = 0.0;
};

/**
 * Schedules correlated zone outages and control-plane partitions
 * against a ClusterSim.
 *
 * Construct after the cluster's replica groups exist and before
 * run(); must outlive the run. Composes with a FaultInjector on the
 * same cluster: an independent crash landing on a zone-downed replica
 * is skipped and redrawn, and a zone outage never re-fails an
 * independently crashed replica (nor claims its repair).
 */
class DomainInjector
{
  public:
    /**
     * @param cfg Episode rates, topology, seed and horizon. Fatal
     *        (user error) on a degenerate combination: enabled
     *        without a positive finite horizon, zones outside
     *        [1, numReplicas], non-positive repair times, or a
     *        partition fraction outside (0, 1].
     * @param cluster Target cluster; must already have its replicas.
     */
    DomainInjector(DomainConfig cfg, ClusterSim &cluster);

    DomainInjector(const DomainInjector &) = delete;
    DomainInjector &operator=(const DomainInjector &) = delete;

    /** Configuration. */
    const DomainConfig &config() const { return cfg_; }

    /** Aggregate statistics so far. */
    const DomainStats &stats() const { return stats_; }

    /** Chronological log of domain transitions. ZoneOutage /
     *  ZoneRecovery entries carry the zone id in `replica`;
     *  PartitionStart carries the blinded-replica count. */
    const std::vector<FaultEvent> &events() const { return events_; }

    /** Zone of replica @p i (contiguous ranges). */
    int zoneOf(std::size_t i) const { return zoneOf_[i]; }

  private:
    void scheduleNextOutage(int z);
    void startOutage(int z);
    void endOutage(int z);
    void scheduleNextPartition();
    void startPartition();
    void endPartition();

    DomainConfig cfg_;
    ClusterSim &cluster_;

    /** Replica index -> zone id (filled once at construction). */
    std::vector<int> zoneOf_;

    /** Independent per-zone streams plus one partition stream. */
    std::vector<Rng> zoneRng_;
    Rng partitionRng_;

    /** Replicas each active outage downed (restored together; an
     *  already-down replica is never claimed). */
    std::vector<std::vector<std::size_t>> downedByZone_;

    /** Replicas blinded by the active partition (one at a time). */
    std::vector<std::size_t> blinded_;

    std::vector<SimTime> outageSince_;
    DomainStats stats_;
    std::vector<FaultEvent> events_;
};

} // namespace qoserve

#endif // QOSERVE_FAULT_FAILURE_DOMAINS_HH
