/**
 * @file
 * Deterministic fault injection for cluster simulations.
 *
 * The injector schedules replica crash/restart cycles and straggler
 * (latency slowdown) episodes on the simulation's event queue. Every
 * episode is drawn from seeded per-replica RNG streams, so a fault
 * schedule is a pure function of (seed, config, replica count) —
 * rerunning the same experiment replays the same failures, which is
 * what makes recovery behaviour testable bit-for-bit (DESIGN.md §8).
 *
 * Gap and duration draws are exponential, the standard memoryless
 * failure model (MTBF / MTTR); injection of *new* episodes stops at
 * the configured horizon so the simulation always drains, while
 * recoveries are always delivered (a replica never stays down
 * forever just because the horizon passed).
 */

#ifndef QOSERVE_FAULT_FAULT_INJECTOR_HH
#define QOSERVE_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "cluster/cluster.hh"
#include "simcore/rng.hh"

namespace qoserve {

/**
 * Fault-injection configuration. Rates of 0 disable the respective
 * episode kind; with both disabled the injector schedules nothing
 * and a run is bit-identical to one without an injector.
 */
struct FaultConfig
{
    /** Mean time between crashes per replica, seconds (0 = off). */
    double crashMtbf = 0.0;

    /** Mean time to repair a crashed replica, seconds. */
    double crashMttr = 20.0;

    /** Mean time between straggler episodes per replica, seconds
     *  (0 = off). */
    double stragglerMtbf = 0.0;

    /** Mean straggler episode duration, seconds. */
    double stragglerDuration = 10.0;

    /** Latency multiplier while straggling (> 1). */
    double stragglerFactor = 2.0;

    /** Root seed of the fault schedule (independent of the workload
     *  seed, so faults can vary while the trace stays fixed). */
    std::uint64_t seed = 1;

    /**
     * No new episode starts after this time (required positive and
     * finite when any episode kind is enabled — without a horizon
     * the event queue would never drain).
     */
    SimTime horizon;

    /** True when crash episodes are enabled. */
    bool crashesEnabled() const { return crashMtbf > 0.0; }

    /** True when straggler episodes are enabled. */
    bool stragglersEnabled() const { return stragglerMtbf > 0.0; }

    /** True when the injector will schedule anything at all. */
    bool enabled() const
    {
        return crashesEnabled() || stragglersEnabled();
    }
};

/** Kind of one injected fault transition. */
enum class FaultKind
{
    Crash,          ///< Replica went down.
    Recovery,       ///< Replica came back up.
    StragglerStart, ///< Slowdown factor applied.
    StragglerEnd,   ///< Slowdown factor cleared.
    ZoneOutage,     ///< Correlated zone failure (replica = zone id).
    ZoneRecovery,   ///< Zone repair completed (replica = zone id).
    PartitionStart, ///< Control-plane partition began (replica =
                    ///< replicas blinded).
    PartitionEnd,   ///< Control-plane partition healed.
};

/** Display name of a fault kind. */
const char *faultKindName(FaultKind kind);

/** One entry of the injected-fault log. */
struct FaultEvent
{
    FaultKind kind = FaultKind::Crash;
    std::size_t replica = 0;
    SimTime when;

    /** Slowdown factor (StragglerStart only; 1.0 otherwise). */
    double factor = 1.0;
};

/** Aggregate fault statistics. */
struct FaultStats
{
    std::uint64_t crashes = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t stragglerEpisodes = 0;

    /** Total outage time across completed repairs, seconds. */
    SimDuration downSeconds = 0.0;

    /** Mean time to repair across completed repairs (MTTR). */
    double
    meanTimeToRepair() const
    {
        return recoveries == 0
                   ? 0.0
                   : downSeconds / static_cast<double>(recoveries);
    }
};

/**
 * Schedules fault episodes against a ClusterSim.
 *
 * Construct after the cluster's replica groups exist and before
 * run(); the injector must outlive the run (its callbacks reference
 * it from the event queue).
 */
class FaultInjector
{
  public:
    /**
     * @param cfg Episode rates, seed and horizon. Fatal (user error)
     *        when enabled without a positive finite horizon or with
     *        non-positive repair/duration parameters.
     * @param cluster Target cluster; must already have its replicas.
     */
    FaultInjector(FaultConfig cfg, ClusterSim &cluster);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Configuration. */
    const FaultConfig &config() const { return cfg_; }

    /** Aggregate statistics so far. */
    const FaultStats &stats() const { return stats_; }

    /** Chronological log of injected transitions. */
    const std::vector<FaultEvent> &events() const { return events_; }

    /**
     * Fraction of replica-seconds the machines were up over
     * [0, horizon] (an infrastructure metric: crashes only, not
     * stragglers; request-level availability lives in RunSummary).
     */
    double machineAvailability() const;

  private:
    void scheduleNextCrash(std::size_t i);
    void crash(std::size_t i);
    void recoverReplica(std::size_t i);
    void scheduleNextEpisode(std::size_t i);
    void startEpisode(std::size_t i);
    void endEpisode(std::size_t i, std::uint64_t epoch);

    FaultConfig cfg_;
    ClusterSim &cluster_;

    /** Independent per-replica streams: adding draws to one replica's
     *  schedule never perturbs another's. */
    std::vector<Rng> crashRng_;
    std::vector<Rng> stragglerRng_;

    /** Guards stale StragglerEnd events after a crash interleaved
     *  with an episode. */
    std::vector<std::uint64_t> episodeEpoch_;

    std::vector<SimTime> downSince_;
    FaultStats stats_;
    std::vector<FaultEvent> events_;
};

} // namespace qoserve

#endif // QOSERVE_FAULT_FAULT_INJECTOR_HH
