/**
 * @file
 * Fault injector implementation.
 */

#include "fault/fault_injector.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "simcore/logging.hh"

namespace qoserve {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Crash:
        return "crash";
      case FaultKind::Recovery:
        return "recovery";
      case FaultKind::StragglerStart:
        return "straggler-start";
      case FaultKind::StragglerEnd:
        return "straggler-end";
      case FaultKind::ZoneOutage:
        return "zone-outage";
      case FaultKind::ZoneRecovery:
        return "zone-recovery";
      case FaultKind::PartitionStart:
        return "partition-start";
      case FaultKind::PartitionEnd:
        return "partition-end";
    }
    QOSERVE_PANIC("unknown fault kind");
}

FaultInjector::FaultInjector(FaultConfig cfg, ClusterSim &cluster)
    : cfg_(cfg), cluster_(cluster)
{
    if (!cfg_.enabled())
        return; // Zero events scheduled: zero cost when off.

    // Configuration comes from flags/benches: bad values are user
    // errors, like BlockManager's capacity validation.
    if (!(cfg_.horizon > SimTime{}) ||
        !std::isfinite(cfg_.horizon.seconds())) {
        QOSERVE_FATAL("fault injection needs a positive finite "
                      "horizon, got ",
                      cfg_.horizon);
    }
    if (cfg_.crashesEnabled() && cfg_.crashMttr <= 0.0)
        QOSERVE_FATAL("crash MTTR must be positive, got ",
                      cfg_.crashMttr);
    if (cfg_.stragglersEnabled()) {
        if (cfg_.stragglerDuration <= 0.0)
            QOSERVE_FATAL("straggler duration must be positive, got ",
                          cfg_.stragglerDuration);
        if (cfg_.stragglerFactor < 1.0)
            QOSERVE_FATAL("straggler factor must be >= 1, got ",
                          cfg_.stragglerFactor);
    }

    const std::size_t n = cluster_.numReplicas();
    QOSERVE_ASSERT(n > 0, "fault injector attached before any "
                          "replica group was added");

    Rng root(cfg_.seed);
    downSince_.assign(n, kTimeNever);
    episodeEpoch_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        crashRng_.push_back(root.split("crash-" + std::to_string(i)));
        stragglerRng_.push_back(
            root.split("straggle-" + std::to_string(i)));
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (cfg_.crashesEnabled())
            scheduleNextCrash(i);
        if (cfg_.stragglersEnabled())
            scheduleNextEpisode(i);
    }
}

void
FaultInjector::scheduleNextCrash(std::size_t i)
{
    SimTime when = cluster_.eventQueue().now() +
                   crashRng_[i].exponential(1.0 / cfg_.crashMtbf);
    if (when > cfg_.horizon)
        return; // Injection stops; the queue can drain.
    cluster_.eventQueue().schedule(when, [this, i]() { crash(i); });
}

void
FaultInjector::crash(std::size_t i)
{
    if (cluster_.replica(i).health() == ReplicaHealth::Down) {
        // A correlated zone outage (DomainInjector) beat this crash
        // to the replica. Skip the episode and redraw; unreachable
        // without a domain injector, so independent-fault runs are
        // byte-identical.
        scheduleNextCrash(i);
        return;
    }
    SimTime now = cluster_.eventQueue().now();
    if (TraceSink *sink = cluster_.traceSink()) {
        sink->emit({TraceEventKind::Crash, now, kNoTraceRequest,
                    static_cast<int>(i), 0, 0.0});
    }
    cluster_.replica(i).fail();
    ++stats_.crashes;
    downSince_[i] = now;
    events_.push_back({FaultKind::Crash, i, now, 1.0});

    // The repair is always delivered, even past the horizon: a
    // replica never stays down only because injection stopped.
    SimDuration repair =
        crashRng_[i].exponential(1.0 / cfg_.crashMttr);
    cluster_.eventQueue().scheduleAfter(
        repair, [this, i]() { recoverReplica(i); });
}

void
FaultInjector::recoverReplica(std::size_t i)
{
    SimTime now = cluster_.eventQueue().now();
    if (TraceSink *sink = cluster_.traceSink()) {
        sink->emit({TraceEventKind::Recover, now, kNoTraceRequest,
                    static_cast<int>(i), 0, 0.0});
    }
    cluster_.replica(i).recover();
    ++stats_.recoveries;
    stats_.downSeconds += now - downSince_[i];
    downSince_[i] = kTimeNever;
    events_.push_back({FaultKind::Recovery, i, now, 1.0});
    scheduleNextCrash(i);
}

void
FaultInjector::scheduleNextEpisode(std::size_t i)
{
    SimTime when =
        cluster_.eventQueue().now() +
        stragglerRng_[i].exponential(1.0 / cfg_.stragglerMtbf);
    if (when > cfg_.horizon)
        return;
    cluster_.eventQueue().schedule(when,
                                   [this, i]() { startEpisode(i); });
}

void
FaultInjector::startEpisode(std::size_t i)
{
    if (cluster_.replica(i).health() == ReplicaHealth::Down) {
        // Crashed meanwhile: skip this episode, try again later.
        scheduleNextEpisode(i);
        return;
    }
    SimTime now = cluster_.eventQueue().now();
    if (TraceSink *sink = cluster_.traceSink()) {
        sink->emit({TraceEventKind::StragglerStart, now,
                    kNoTraceRequest, static_cast<int>(i), 0,
                    cfg_.stragglerFactor});
    }
    cluster_.replica(i).setSlowdown(cfg_.stragglerFactor);
    ++stats_.stragglerEpisodes;
    std::uint64_t epoch = ++episodeEpoch_[i];
    events_.push_back(
        {FaultKind::StragglerStart, i, now, cfg_.stragglerFactor});

    SimDuration duration =
        stragglerRng_[i].exponential(1.0 / cfg_.stragglerDuration);
    cluster_.eventQueue().scheduleAfter(
        duration, [this, i, epoch]() { endEpisode(i, epoch); });
}

void
FaultInjector::endEpisode(std::size_t i, std::uint64_t epoch)
{
    if (episodeEpoch_[i] != epoch)
        return; // Superseded by a newer episode.
    // A crash during the episode already cleared the slowdown (and
    // recovery restores full speed); only an intact Degraded replica
    // needs the factor removed here.
    if (cluster_.replica(i).health() == ReplicaHealth::Degraded) {
        if (TraceSink *sink = cluster_.traceSink()) {
            sink->emit({TraceEventKind::StragglerEnd,
                        cluster_.eventQueue().now(), kNoTraceRequest,
                        static_cast<int>(i), 0, 0.0});
        }
        cluster_.replica(i).setSlowdown(1.0);
        events_.push_back({FaultKind::StragglerEnd, i,
                           cluster_.eventQueue().now(), 1.0});
    }
    scheduleNextEpisode(i);
}

double
FaultInjector::machineAvailability() const
{
    if (!cfg_.enabled() || cluster_.numReplicas() == 0)
        return 1.0;

    // Replay the event log, clipping every outage to [0, horizon].
    // Crashes are never injected past the horizon; recoveries may
    // land beyond it.
    std::vector<SimTime> open(cluster_.numReplicas(), kTimeNever);
    double down = 0.0;
    for (const FaultEvent &ev : events_) {
        if (ev.kind == FaultKind::Crash) {
            open[ev.replica] = ev.when;
        } else if (ev.kind == FaultKind::Recovery) {
            down += std::min(ev.when, cfg_.horizon) -
                    std::min(open[ev.replica], cfg_.horizon);
            open[ev.replica] = kTimeNever;
        }
    }
    for (SimTime since : open) {
        if (since != kTimeNever)
            down += cfg_.horizon - std::min(since, cfg_.horizon);
    }
    double total = cfg_.horizon.seconds() *
                   static_cast<double>(cluster_.numReplicas());
    return std::max(0.0, 1.0 - down / total);
}

} // namespace qoserve
