/**
 * @file
 * Profiling harness implementation.
 */

#include "predictor/profiler.hh"

namespace qoserve {

BatchWork
BatchFeatures::toWork() const
{
    BatchWork w;
    w.prefillTokens = static_cast<std::int64_t>(chunkTokens);
    w.prefillCtxProduct =
        chunkTokens * (prefillContext + chunkTokens / 2.0);
    w.numDecodes = static_cast<int>(numDecodes);
    w.decodeCtxSum = static_cast<std::int64_t>(decodeCtxSum);
    return w;
}

std::vector<TrainSample>
collectProfile(const PerfModel &model, const ProfileGrid &grid,
               std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<TrainSample> samples;
    samples.reserve(grid.chunkSizes.size() * grid.prefillContexts.size() *
                    grid.decodeBatchSizes.size() *
                    grid.avgDecodeContexts.size());

    for (double chunk : grid.chunkSizes) {
        for (double pctx : grid.prefillContexts) {
            for (double nd : grid.decodeBatchSizes) {
                for (double dctx : grid.avgDecodeContexts) {
                    BatchFeatures f;
                    f.chunkTokens = chunk;
                    f.prefillContext = chunk > 0 ? pctx : 0.0;
                    f.numDecodes = nd;
                    f.decodeCtxSum = nd * dctx;
                    if (f.chunkTokens == 0 && f.numDecodes == 0)
                        continue;
                    // With no prefill, the prefill-context axis is
                    // redundant; keep only one copy.
                    if (chunk == 0 && pctx != grid.prefillContexts[0])
                        continue;

                    double latency =
                        model.iterationTime(f.toWork());
                    double noise =
                        rng.normal(1.0, grid.noiseStddev);
                    if (noise < 0.5)
                        noise = 0.5;

                    TrainSample s;
                    s.x = f.toVector();
                    s.y = latency * noise;
                    samples.push_back(std::move(s));
                }
            }
        }
    }
    return samples;
}

} // namespace qoserve
