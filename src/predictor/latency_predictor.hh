/**
 * @file
 * Batch-latency predictors and the dynamic chunk-budget solver.
 *
 * The QoServe scheduler consults a predictor each iteration to find
 * the largest prefill chunk whose predicted execution time fits the
 * minimum slack of the decoding requests (§3.3, §3.6.1, Algorithm 1's
 * GET_PREFILL_BUDGET). Two implementations are provided: the trained
 * random-forest predictor the paper describes, and an oracle that
 * queries the execution model directly (useful for tests and for
 * isolating predictor error in ablations).
 */

#ifndef QOSERVE_PREDICTOR_LATENCY_PREDICTOR_HH
#define QOSERVE_PREDICTOR_LATENCY_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "predictor/profiler.hh"

namespace qoserve {

/**
 * A predictor partially evaluated over the (chunkTokens,
 * prefillContext) plane.
 *
 * The chunk-budget solver probes many chunk sizes per iteration, and
 * the prefill head's context drifts by exactly the granted chunk
 * every iteration — but the rest of the batch composition (decode
 * count, decode context sum) changes slowly. Fixing the slow features
 * and leaving the per-probe ones free yields a tiny restricted forest
 * whose predictions are bitwise identical to the full predictor's for
 * as long as the fixed features stay inside @ref support.
 */
struct ChunkPlane
{
    RestrictedForest forest;

    /** Box over the fixed features; free axes are unbounded, so one
     *  contains() on the full feature vector validates reuse. */
    FeatureSupport support;

    double quantile = 0.5;
    double safetyMargin = 1.0;

    bool valid() const { return forest.valid(); }

    /** Predicted latency at @p x (flattened BatchFeatures). */
    SimDuration predict(const double *x, int dims) const
    {
        return forest.predictQuantile(x, dims, quantile) * safetyMargin;
    }
};

/**
 * Predicts the execution time of one iteration's batch.
 */
class LatencyPredictor
{
  public:
    virtual ~LatencyPredictor() = default;

    /** Predicted iteration time, seconds. */
    virtual SimDuration predict(const BatchFeatures &features) const = 0;

    /**
     * Predict and, when possible, report a leaf-stability box.
     *
     * The default forwards to predict() and marks the support invalid
     * (dims = 0), which disables caching for predictors that cannot
     * bound the region over which their output is constant.
     */
    virtual SimDuration
    predictSupported(const BatchFeatures &features,
                     FeatureSupport &support) const
    {
        support.dims = 0;
        return predict(features);
    }

    /**
     * Partially evaluate over the (chunkTokens, prefillContext) plane
     * at @p features' remaining coordinates.
     *
     * Returns false (the default) when the predictor cannot partially
     * evaluate; the solver then falls back to per-probe predict().
     *
     * @p super_scratch, when non-null, is caller-owned storage for a
     * wider intermediate restriction: the plane is then derived from
     * it (restriction composes exactly) instead of from the full
     * source forest, which makes the frequent small rebuilds several
     * times cheaper. The scratch is (re)built here whenever it does
     * not cover the requested plane's box; its contents are opaque to
     * the caller.
     */
    virtual bool buildChunkPlane(const BatchFeatures &features,
                                 ChunkPlane &out,
                                 ChunkPlane *super_scratch = nullptr) const
    {
        (void)features;
        (void)out;
        (void)super_scratch;
        return false;
    }
};

/**
 * Ground-truth predictor backed directly by the execution model.
 */
class OracleLatencyPredictor : public LatencyPredictor
{
  public:
    /**
     * @param model Execution model to query.
     * @param margin Multiplier applied to the truth (e.g. 1.05 for a
     *        conservative oracle).
     */
    explicit OracleLatencyPredictor(PerfModel model, double margin = 1.0);

    SimDuration predict(const BatchFeatures &features) const override;

  private:
    PerfModel model_;
    double margin_;
};

/**
 * Random-forest predictor trained on profiler data (§3.6.1).
 *
 * Uses a sub-median quantile of the per-tree predictions scaled by a
 * small factor so the predictor errs toward under-predicting the
 * feasible chunk size — i.e. over-predicting latency — never causing
 * an inadvertent latency increase.
 */
class ForestLatencyPredictor : public LatencyPredictor
{
  public:
    /** Knobs for training and conservatism. */
    struct Options
    {
        ForestParams forest;
        ProfileGrid grid;
        std::uint64_t seed = 7;

        /** Quantile of tree outputs used as the estimate. */
        double quantile = 0.6;

        /** Extra multiplicative safety margin on the estimate. */
        double safetyMargin = 1.05;

        /**
         * Worker threads used to train the forest (0 = hardware
         * concurrency). The fitted predictor is bit-identical for
         * every value; 1 trains serially.
         */
        int trainJobs = 0;

        /**
         * Half-width of the chunk plane's validity box on the decode
         * batch-size axis. Pure performance knob: splits inside the
         * box are kept and re-evaluated per query, so predictions are
         * identical for every value — wider boxes mean rarer plane
         * rebuilds but a larger restricted forest.
         */
        double planeDecodeSlack = 16.0;

        /** Half-width of the validity box on the decode context-sum
         *  axis (same trade-off as planeDecodeSlack). */
        double planeContextSlack = 32768.0;

        /**
         * Multiplier on both plane slacks for the super-plane used as
         * the intermediate restriction source (see buildChunkPlane).
         * Another pure performance knob: predictions are identical
         * for every value >= 1.
         */
        double superSlackScale = 4.0;
    };

    /** Train on profiles of @p model with default options. */
    explicit ForestLatencyPredictor(const PerfModel &model);

    /** Train on profiles of @p model. */
    ForestLatencyPredictor(const PerfModel &model, Options options);

    SimDuration predict(const BatchFeatures &features) const override;

    SimDuration predictSupported(const BatchFeatures &features,
                                 FeatureSupport &support) const override;

    bool buildChunkPlane(const BatchFeatures &features, ChunkPlane &out,
                         ChunkPlane *super_scratch = nullptr)
        const override;

    /** Access the fitted ensemble (tests, diagnostics). */
    const RandomForest &forest() const { return forest_; }

    /** Options used at construction. */
    const Options &options() const { return options_; }

  private:
    RandomForest forest_;
    Options options_;
};

/**
 * Memoises the chunk-budget search at two levels.
 *
 * Probe level: holds one ChunkPlane — the predictor partially
 * evaluated over the (chunkTokens, prefillContext) axes the solver
 * actually varies. A probe is served from the plane iff the remaining
 * composition features (decode batch size, context sum) still fall
 * inside the plane's box, which makes every hit provably bitwise
 * identical to a fresh forest evaluation: chunk probes and the head
 * prefill's context drift never force a rebuild, only genuine
 * composition changes do.
 *
 * Solve level: every cold search runs its probes in *tracked* mode,
 * intersecting their leaf-stability boxes, and records the resulting
 * box together with the budget interval that preserves every probe's
 * feasibility sign and the plane generation it ran against. A later
 * solve matching a record (same plane, features inside the box,
 * budget inside the interval) would probe the exact same chunks,
 * observe the exact same latencies and signs, and therefore return
 * the identical result — so the search is skipped outright.
 *
 * No explicit invalidation is required at either level — the box
 * proofs alone guard reuse.
 */
class ChunkSolverCache
{
  public:
    /** Hit/miss counters (diagnostics and the perf benchmarks). */
    struct Stats
    {
        std::uint64_t solves = 0;      ///< solve() calls.
        std::uint64_t replayHits = 0;  ///< Solves answered by replay.
        std::uint64_t queries = 0;     ///< Individual probe lookups.
        std::uint64_t hits = 0;        ///< Box-validated plane reuses.
        std::uint64_t evaluations = 0; ///< Plane rebuilds + fallbacks.
        std::uint64_t invalidations = 0; ///< invalidate() calls.

        /** Misses attributed to the first feature dimension whose
         *  value escaped a valid plane's box (diagnostics: which
         *  feature's drift limits the hit rate). */
        std::uint64_t dimMisses[kMaxForestFeatures] = {};
    };

    /** Drop the cached planes and solve records (forces a rebuild on
     *  the next query). */
    void invalidate();

    /**
     * Latency for @p chunk from the cached plane, or from a freshly
     * rebuilt plane (or plain predict() for predictors that cannot
     * partially evaluate) when the composition escaped the box.
     */
    SimDuration lookupOrPredict(const LatencyPredictor &predictor,
                                BatchFeatures features, int chunk,
                                int step);

    /**
     * Largest feasible chunk for @p budget — the memoised equivalent
     * of solveChunkBudget()'s cold search, returning a bitwise
     * identical result.
     *
     * @param decode_state Batch composition (chunkTokens ignored).
     * @param budget Latency budget, seconds (> 0).
     * @param max_chunk Upper bound on the chunk (>= step).
     * @param step Chunk granularity.
     */
    int solve(const LatencyPredictor &predictor,
              const BatchFeatures &decode_state, SimDuration budget,
              int max_chunk, int step);

    const Stats &stats() const { return stats_; }

  private:
    /** One recorded cold search (see class doc). */
    struct SolveRecord
    {
        /** Plane generation the search ran against. */
        std::uint64_t generation = 0;

        /** Intersection of the probes' leaf-stability boxes. */
        FeatureSupport box;

        /** Half-open budget interval [budgetLo, budgetHi): any budget
         *  inside it reproduces every feasibility sign (lat <= budget)
         *  of the recorded search, because budgetLo is the largest
         *  probed latency that was feasible and budgetHi the smallest
         *  that was not. */
        SimDuration budgetLo = 0.0;
        SimDuration budgetHi = 0.0;

        /** Solved chunk, in units of step. */
        int resultUnits = 0;

        bool valid = false;
    };

    /** Recorded solves kept (ring; newest overwrite oldest). */
    static constexpr int kSolveRecords = 16;

    void attributeMiss(const double *x);

    /** Rebuild plane_ for @p x if its box no longer covers it; true
     *  when a valid plane is available afterwards. */
    bool ensurePlane(const LatencyPredictor &predictor,
                     const BatchFeatures &features, const double *x);

    ChunkPlane plane_;

    /** Wide intermediate restriction the predictor derives plane_
     *  from (see LatencyPredictor::buildChunkPlane). */
    ChunkPlane super_;

    /** Bumped on every plane_ rebuild; ties solve records to the
     *  exact plane contents they were recorded against. */
    std::uint64_t generation_ = 0;

    SolveRecord records_[kSolveRecords];
    int recordHead_ = 0;

    Stats stats_;
};

/**
 * Find the largest chunk size whose predicted latency fits a budget.
 *
 * Searches multiples of @p step in [0, max_chunk], assuming latency
 * is non-decreasing in chunk size.
 *
 * @param predictor Latency predictor to consult.
 * @param decode_state Batch composition; the chunkTokens field is
 *        ignored and overwritten during the search.
 * @param budget Latency budget, seconds.
 * @param max_chunk Upper bound on the chunk.
 * @param step Chunk granularity.
 * @param cache Optional prediction memo shared across solves; hits
 *        are bitwise identical to fresh evaluations, so the solve
 *        result is unchanged.
 * @return Largest feasible chunk (multiple of step), or 0 when even
 *         the smallest step exceeds the budget.
 */
int solveChunkBudget(const LatencyPredictor &predictor,
                     BatchFeatures decode_state, SimDuration budget,
                     int max_chunk, int step = 64,
                     ChunkSolverCache *cache = nullptr);

} // namespace qoserve

#endif // QOSERVE_PREDICTOR_LATENCY_PREDICTOR_HH
