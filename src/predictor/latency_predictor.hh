/**
 * @file
 * Batch-latency predictors and the dynamic chunk-budget solver.
 *
 * The QoServe scheduler consults a predictor each iteration to find
 * the largest prefill chunk whose predicted execution time fits the
 * minimum slack of the decoding requests (§3.3, §3.6.1, Algorithm 1's
 * GET_PREFILL_BUDGET). Two implementations are provided: the trained
 * random-forest predictor the paper describes, and an oracle that
 * queries the execution model directly (useful for tests and for
 * isolating predictor error in ablations).
 */

#ifndef QOSERVE_PREDICTOR_LATENCY_PREDICTOR_HH
#define QOSERVE_PREDICTOR_LATENCY_PREDICTOR_HH

#include <memory>

#include "predictor/profiler.hh"

namespace qoserve {

/**
 * Predicts the execution time of one iteration's batch.
 */
class LatencyPredictor
{
  public:
    virtual ~LatencyPredictor() = default;

    /** Predicted iteration time, seconds. */
    virtual SimDuration predict(const BatchFeatures &features) const = 0;
};

/**
 * Ground-truth predictor backed directly by the execution model.
 */
class OracleLatencyPredictor : public LatencyPredictor
{
  public:
    /**
     * @param model Execution model to query.
     * @param margin Multiplier applied to the truth (e.g. 1.05 for a
     *        conservative oracle).
     */
    explicit OracleLatencyPredictor(PerfModel model, double margin = 1.0);

    SimDuration predict(const BatchFeatures &features) const override;

  private:
    PerfModel model_;
    double margin_;
};

/**
 * Random-forest predictor trained on profiler data (§3.6.1).
 *
 * Uses a sub-median quantile of the per-tree predictions scaled by a
 * small factor so the predictor errs toward under-predicting the
 * feasible chunk size — i.e. over-predicting latency — never causing
 * an inadvertent latency increase.
 */
class ForestLatencyPredictor : public LatencyPredictor
{
  public:
    /** Knobs for training and conservatism. */
    struct Options
    {
        ForestParams forest;
        ProfileGrid grid;
        std::uint64_t seed = 7;

        /** Quantile of tree outputs used as the estimate. */
        double quantile = 0.6;

        /** Extra multiplicative safety margin on the estimate. */
        double safetyMargin = 1.05;

        /**
         * Worker threads used to train the forest (0 = hardware
         * concurrency). The fitted predictor is bit-identical for
         * every value; 1 trains serially.
         */
        int trainJobs = 0;
    };

    /** Train on profiles of @p model with default options. */
    explicit ForestLatencyPredictor(const PerfModel &model);

    /** Train on profiles of @p model. */
    ForestLatencyPredictor(const PerfModel &model, Options options);

    SimDuration predict(const BatchFeatures &features) const override;

    /** Access the fitted ensemble (tests, diagnostics). */
    const RandomForest &forest() const { return forest_; }

    /** Options used at construction. */
    const Options &options() const { return options_; }

  private:
    RandomForest forest_;
    Options options_;
};

/**
 * Find the largest chunk size whose predicted latency fits a budget.
 *
 * Searches multiples of @p step in [0, max_chunk], assuming latency
 * is non-decreasing in chunk size.
 *
 * @param predictor Latency predictor to consult.
 * @param decode_state Batch composition; the chunkTokens field is
 *        ignored and overwritten during the search.
 * @param budget Latency budget, seconds.
 * @param max_chunk Upper bound on the chunk.
 * @param step Chunk granularity.
 * @return Largest feasible chunk (multiple of step), or 0 when even
 *         the smallest step exceeds the budget.
 */
int solveChunkBudget(const LatencyPredictor &predictor,
                     BatchFeatures decode_state, SimDuration budget,
                     int max_chunk, int step = 64);

} // namespace qoserve

#endif // QOSERVE_PREDICTOR_LATENCY_PREDICTOR_HH
