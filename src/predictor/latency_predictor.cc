/**
 * @file
 * Latency predictor implementations.
 */

#include "predictor/latency_predictor.hh"

#include <algorithm>
#include <limits>

#include "simcore/logging.hh"

namespace qoserve {

OracleLatencyPredictor::OracleLatencyPredictor(PerfModel model,
                                               double margin)
    : model_(std::move(model)), margin_(margin)
{
    QOSERVE_ASSERT(margin_ > 0.0, "margin must be positive");
}

SimDuration
OracleLatencyPredictor::predict(const BatchFeatures &features) const
{
    return margin_ * model_.iterationTime(features.toWork());
}

ForestLatencyPredictor::ForestLatencyPredictor(const PerfModel &model)
    : ForestLatencyPredictor(model, Options{})
{
}

ForestLatencyPredictor::ForestLatencyPredictor(const PerfModel &model,
                                               Options options)
    : options_(std::move(options))
{
    auto samples = collectProfile(model, options_.grid, options_.seed);
    forest_.fit(samples, options_.forest, options_.seed,
                options_.trainJobs);
}

SimDuration
ForestLatencyPredictor::predict(const BatchFeatures &features) const
{
    auto x = features.toArray();
    double est = forest_.predictQuantile(x.data(), BatchFeatures::kCount,
                                         options_.quantile);
    return est * options_.safetyMargin;
}

SimDuration
ForestLatencyPredictor::predictSupported(const BatchFeatures &features,
                                         FeatureSupport &support) const
{
    auto x = features.toArray();
    double est = forest_.predictQuantileTracked(
        x.data(), BatchFeatures::kCount, options_.quantile, support);
    return est * options_.safetyMargin;
}

namespace {

/** True when box (lo, hi] is contained in @p outer on every axis. */
bool
boxWithin(const double *lo, const double *hi, const FeatureSupport &outer,
          int dims)
{
    if (outer.dims != dims)
        return false;
    for (int i = 0; i < dims; ++i) {
        if (lo[i] < outer.lo[i] || hi[i] > outer.hi[i])
            return false;
    }
    return true;
}

} // namespace

bool
ForestLatencyPredictor::buildChunkPlane(const BatchFeatures &features,
                                        ChunkPlane &out,
                                        ChunkPlane *super_scratch) const
{
    // chunkTokens and prefillContext stay fully free: the solver
    // varies the former per probe and the latter drifts by the
    // granted chunk every iteration. The composition features get a
    // slack box around their current values so small drifts (decodes
    // joining/leaving, contexts growing) don't force a rebuild.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const double lo[BatchFeatures::kCount] = {
        -kInf, -kInf, features.numDecodes - options_.planeDecodeSlack,
        features.decodeCtxSum - options_.planeContextSlack};
    const double hi[BatchFeatures::kCount] = {
        kInf, kInf, features.numDecodes + options_.planeDecodeSlack,
        features.decodeCtxSum + options_.planeContextSlack};

    // Restriction composes exactly, so deriving the plane from a
    // wider super-plane yields the node-for-node identical forest as
    // deriving it from the source forest — at a fraction of the walk.
    // The super-plane is refreshed (from the full forest) only when
    // the requested box escapes it, which the slack scale makes rare.
    if (super_scratch != nullptr && options_.superSlackScale >= 1.0) {
        if (!super_scratch->valid() ||
            !boxWithin(lo, hi, super_scratch->support,
                       BatchFeatures::kCount)) {
            double s = options_.superSlackScale;
            const double slo[BatchFeatures::kCount] = {
                -kInf, -kInf,
                features.numDecodes - s * options_.planeDecodeSlack,
                features.decodeCtxSum - s * options_.planeContextSlack};
            const double shi[BatchFeatures::kCount] = {
                kInf, kInf,
                features.numDecodes + s * options_.planeDecodeSlack,
                features.decodeCtxSum + s * options_.planeContextSlack};
            forest_.restrictToBox(slo, shi, BatchFeatures::kCount,
                                  super_scratch->forest,
                                  super_scratch->support);
        }
        super_scratch->forest.restrictToBox(lo, hi,
                                            BatchFeatures::kCount,
                                            out.forest, out.support);
    } else {
        forest_.restrictToBox(lo, hi, BatchFeatures::kCount, out.forest,
                              out.support);
    }
    out.quantile = options_.quantile;
    out.safetyMargin = options_.safetyMargin;
    return true;
}

void
ChunkSolverCache::invalidate()
{
    plane_.forest.clear();
    super_.forest.clear();
    for (SolveRecord &r : records_)
        r.valid = false;
    ++stats_.invalidations;
}

void
ChunkSolverCache::attributeMiss(const double *x)
{
    // Attribute the miss to the first escaped dimension, so the perf
    // benches can report which feature's drift limits reuse.
    for (int i = 0; i < plane_.support.dims; ++i) {
        if (!(plane_.support.lo[i] < x[static_cast<std::size_t>(i)] &&
              x[static_cast<std::size_t>(i)] <= plane_.support.hi[i])) {
            ++stats_.dimMisses[i];
            break;
        }
    }
}

SimDuration
ChunkSolverCache::lookupOrPredict(const LatencyPredictor &predictor,
                                  BatchFeatures features, int chunk,
                                  int step)
{
    QOSERVE_ASSERT(chunk >= 0 && step > 0, "bad cache key");
    features.chunkTokens = static_cast<double>(chunk);
    auto x = features.toArray();

    ++stats_.queries;
    if (plane_.valid()) {
        if (plane_.support.contains(x.data(), BatchFeatures::kCount)) {
            ++stats_.hits;
            return plane_.predict(x.data(), BatchFeatures::kCount);
        }
        attributeMiss(x.data());
    }

    ++stats_.evaluations;
    if (predictor.buildChunkPlane(features, plane_, &super_))
        return plane_.predict(x.data(), BatchFeatures::kCount);
    return predictor.predict(features);
}

bool
ChunkSolverCache::ensurePlane(const LatencyPredictor &predictor,
                              const BatchFeatures &features,
                              const double *x)
{
    if (plane_.valid()) {
        if (plane_.support.contains(x, BatchFeatures::kCount))
            return true;
        attributeMiss(x);
    }
    ++stats_.evaluations;
    if (!predictor.buildChunkPlane(features, plane_, &super_))
        return false;
    ++generation_;
    return true;
}

int
ChunkSolverCache::solve(const LatencyPredictor &predictor,
                        const BatchFeatures &decode_state,
                        SimDuration budget, int max_chunk, int step)
{
    ++stats_.solves;
    const int units = max_chunk / step;

    BatchFeatures features = decode_state;
    // The chunk axis is free in the plane's box, so any value
    // validates the composition check below.
    features.chunkTokens = 0.0;
    auto x = features.toArray();

    if (!ensurePlane(predictor, features, x.data())) {
        // Predictor cannot partially evaluate: plain cold search with
        // per-probe predictions.
        auto feasible = [&](int chunk) {
            BatchFeatures f = decode_state;
            f.chunkTokens = static_cast<double>(chunk);
            ++stats_.queries;
            return predictor.predict(f) <= budget;
        };
        int lo = 0, hi = units;
        if (feasible(units * step))
            return units * step;
        while (hi - lo > 1) {
            int mid = lo + (hi - lo) / 2;
            if (feasible(mid * step))
                lo = mid;
            else
                hi = mid;
        }
        return lo * step;
    }

    // Replay: a record from the current plane whose box contains the
    // query (composition and prefill context; the chunk axis is
    // skipped — each recorded probe fixed its own chunk) and whose
    // budget interval contains the budget would probe the exact same
    // chunks, observe bitwise-identical latencies, and take the same
    // branch at every feasibility test — so its result IS this
    // solve's result.
    for (const SolveRecord &r : records_) {
        if (!r.valid || r.generation != generation_)
            continue;
        bool inside = true;
        for (int i = 1; i < BatchFeatures::kCount; ++i) {
            if (!(r.box.lo[i] < x[static_cast<std::size_t>(i)] &&
                  x[static_cast<std::size_t>(i)] <= r.box.hi[i])) {
                inside = false;
                break;
            }
        }
        if (!inside)
            continue;
        if (!(r.budgetLo <= budget && budget < r.budgetHi))
            continue;
        ++stats_.replayHits;
        return r.resultUnits * step;
    }

    // Cold search against the plane, with tracked probes feeding the
    // next record. Probe latencies are bitwise identical to the
    // untracked plane path (same walk, same quantile kernel).
    SolveRecord rec;
    rec.generation = generation_;
    rec.box.reset(BatchFeatures::kCount);
    rec.budgetLo = -std::numeric_limits<double>::infinity();
    rec.budgetHi = std::numeric_limits<double>::infinity();
    auto feasible = [&](int chunk) {
        x[0] = static_cast<double>(chunk);
        ++stats_.queries;
        ++stats_.hits;
        SimDuration lat = plane_.forest.predictQuantileTracked(
                              x.data(), BatchFeatures::kCount,
                              plane_.quantile, rec.box) *
                          plane_.safetyMargin;
        if (lat <= budget) {
            rec.budgetLo = std::max(rec.budgetLo, lat);
            return true;
        }
        rec.budgetHi = std::min(rec.budgetHi, lat);
        return false;
    };

    int lo = 0; // feasible (empty chunk) by definition
    int hi = units;
    if (feasible(units * step)) {
        lo = units;
    } else {
        // Invariant: lo feasible, hi infeasible.
        while (hi - lo > 1) {
            int mid = lo + (hi - lo) / 2;
            if (feasible(mid * step))
                lo = mid;
            else
                hi = mid;
        }
    }

    rec.resultUnits = lo;
    rec.valid = true;
    records_[recordHead_] = rec;
    recordHead_ = (recordHead_ + 1) % kSolveRecords;
    return lo * step;
}

int
solveChunkBudget(const LatencyPredictor &predictor,
                 BatchFeatures decode_state, SimDuration budget,
                 int max_chunk, int step, ChunkSolverCache *cache)
{
    QOSERVE_ASSERT(max_chunk >= 0 && step > 0, "bad solver bounds");
    if (budget <= 0.0 || max_chunk < step)
        return 0;

    if (cache != nullptr)
        return cache->solve(predictor, decode_state, budget, max_chunk,
                            step);

    auto feasible = [&](int chunk) {
        BatchFeatures f = decode_state;
        f.chunkTokens = static_cast<double>(chunk);
        return predictor.predict(f) <= budget;
    };

    int lo = 0;                // feasible (empty chunk) by definition
    int hi = max_chunk / step; // in units of step
    if (feasible(hi * step))
        return hi * step;
    // Invariant: lo feasible, hi infeasible.
    while (hi - lo > 1) {
        int mid = lo + (hi - lo) / 2;
        if (feasible(mid * step))
            lo = mid;
        else
            hi = mid;
    }
    return lo * step;
}

} // namespace qoserve
