/**
 * @file
 * Latency predictor implementations.
 */

#include "predictor/latency_predictor.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

OracleLatencyPredictor::OracleLatencyPredictor(PerfModel model,
                                               double margin)
    : model_(std::move(model)), margin_(margin)
{
    QOSERVE_ASSERT(margin_ > 0.0, "margin must be positive");
}

SimDuration
OracleLatencyPredictor::predict(const BatchFeatures &features) const
{
    return margin_ * model_.iterationTime(features.toWork());
}

ForestLatencyPredictor::ForestLatencyPredictor(const PerfModel &model)
    : ForestLatencyPredictor(model, Options{})
{
}

ForestLatencyPredictor::ForestLatencyPredictor(const PerfModel &model,
                                               Options options)
    : options_(std::move(options))
{
    auto samples = collectProfile(model, options_.grid, options_.seed);
    forest_.fit(samples, options_.forest, options_.seed,
                options_.trainJobs);
}

SimDuration
ForestLatencyPredictor::predict(const BatchFeatures &features) const
{
    double est =
        forest_.predictQuantile(features.toVector(), options_.quantile);
    return est * options_.safetyMargin;
}

int
solveChunkBudget(const LatencyPredictor &predictor,
                 BatchFeatures decode_state, SimDuration budget,
                 int max_chunk, int step)
{
    QOSERVE_ASSERT(max_chunk >= 0 && step > 0, "bad solver bounds");
    if (budget <= 0.0 || max_chunk < step)
        return 0;

    auto feasible = [&](int chunk) {
        BatchFeatures f = decode_state;
        f.chunkTokens = static_cast<double>(chunk);
        return predictor.predict(f) <= budget;
    };

    int lo = 0;                    // feasible (empty chunk) by definition
    int hi = max_chunk / step;     // in units of step
    if (feasible(hi * step))
        return hi * step;
    // Invariant: lo feasible, hi infeasible.
    while (hi - lo > 1) {
        int mid = lo + (hi - lo) / 2;
        if (feasible(mid * step))
            lo = mid;
        else
            hi = mid;
    }
    return lo * step;
}

} // namespace qoserve
