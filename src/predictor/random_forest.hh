/**
 * @file
 * CART regression trees and a bagged random-forest regressor.
 *
 * The paper's dynamic-chunking predictor is "a lightweight random
 * forest model which predicts the execution time of a given batch"
 * (§3.6.1), trained on latency profiles collected from the Vidur
 * simulator harness. This is that component, built from scratch:
 * variance-reduction CART trees plus bootstrap aggregation, with
 * quantile prediction so the ensemble can be biased toward
 * under-predicting chunk latency (the paper tunes the model "to err
 * on the side of under-predicting").
 */

#ifndef QOSERVE_PREDICTOR_RANDOM_FOREST_HH
#define QOSERVE_PREDICTOR_RANDOM_FOREST_HH

#include <cstdint>
#include <vector>

#include "simcore/rng.hh"

namespace qoserve {

/** A training/evaluation sample: feature vector plus target. */
struct TrainSample
{
    std::vector<double> x;
    double y = 0.0;
};

/** Hyper-parameters shared by trees and forests. */
struct ForestParams
{
    /** Number of trees in the ensemble. */
    int numTrees = 20;

    /** Maximum tree depth. */
    int maxDepth = 12;

    /** Minimum samples required in a leaf. */
    int minSamplesLeaf = 4;

    /** Candidate split thresholds evaluated per feature per node. */
    int splitCandidates = 16;

    /** Fraction of the training set drawn (with replacement) per tree. */
    double bootstrapFraction = 1.0;
};

/**
 * A single CART regression tree, grown by greedy variance reduction.
 */
class RegressionTree
{
  public:
    /**
     * Fit the tree.
     *
     * @param samples Training data; all x must share one length.
     * @param params Growth limits.
     * @param rng Source of randomness for split-candidate sampling.
     */
    void fit(const std::vector<TrainSample> &samples,
             const ForestParams &params, Rng &rng);

    /** Predict the target for a feature vector. */
    double predict(const std::vector<double> &x) const;

    /** Number of nodes in the fitted tree (0 before fit). */
    std::size_t numNodes() const { return nodes_.size(); }

  private:
    struct Node
    {
        int feature = -1;     ///< -1 marks a leaf.
        double threshold = 0.0;
        int left = -1;
        int right = -1;
        double value = 0.0;   ///< Leaf mean.
    };

    /** Reusable per-node buffers for the split scan. */
    struct SplitScratch
    {
        std::vector<std::uint32_t> order; ///< Indices sorted by feature.
        std::vector<double> values;       ///< Feature values, sorted.
        std::vector<double> prefY;        ///< Prefix sums of y.
        std::vector<double> prefY2;       ///< Prefix sums of y².
    };

    int build(const std::vector<TrainSample> &samples,
              std::vector<std::uint32_t> &idx, int lo, int hi, int depth,
              const ForestParams &params, Rng &rng,
              SplitScratch &scratch);

    std::vector<Node> nodes_;
};

/**
 * Bagged ensemble of regression trees.
 */
class RandomForest
{
  public:
    /**
     * Fit the ensemble on @p samples with seed-derived randomness.
     *
     * Each tree's bootstrap draw and growth randomness come from an
     * independent stream split from (seed, tree index), so trees can
     * be trained concurrently: the fitted ensemble is bit-identical
     * for every @p jobs value.
     *
     * @param jobs Worker threads training trees (0 = hardware
     *        concurrency, 1 = serial).
     */
    void fit(const std::vector<TrainSample> &samples, ForestParams params,
             std::uint64_t seed, int jobs = 1);

    /** Mean prediction across trees. */
    double predict(const std::vector<double> &x) const;

    /**
     * Quantile of the per-tree predictions.
     *
     * Quantiles below 0.5 bias the ensemble toward under-prediction,
     * which the chunk solver uses for conservatism.
     *
     * @param x Feature vector.
     * @param q Quantile in [0, 1].
     */
    double predictQuantile(const std::vector<double> &x, double q) const;

    /** Number of fitted trees. */
    std::size_t numTrees() const { return trees_.size(); }

    /** True once fit() has run. */
    bool trained() const { return !trees_.empty(); }

  private:
    std::vector<RegressionTree> trees_;
};

} // namespace qoserve

#endif // QOSERVE_PREDICTOR_RANDOM_FOREST_HH
