/**
 * @file
 * CART regression trees and a bagged random-forest regressor.
 *
 * The paper's dynamic-chunking predictor is "a lightweight random
 * forest model which predicts the execution time of a given batch"
 * (§3.6.1), trained on latency profiles collected from the Vidur
 * simulator harness. This is that component, built from scratch:
 * variance-reduction CART trees plus bootstrap aggregation, with
 * quantile prediction so the ensemble can be biased toward
 * under-predicting chunk latency (the paper tunes the model "to err
 * on the side of under-predicting").
 */

#ifndef QOSERVE_PREDICTOR_RANDOM_FOREST_HH
#define QOSERVE_PREDICTOR_RANDOM_FOREST_HH

#include <cstdint>
#include <vector>

#include "simcore/rng.hh"

namespace qoserve {

/** Feature-dimension cap for FeatureSupport tracking. */
inline constexpr int kMaxForestFeatures = 8;

/**
 * Axis-aligned region of feature space over which a forest
 * evaluation is provably constant.
 *
 * Every comparison a forest walk performs is `x[f] <= threshold`.
 * Recording, per feature, the tightest threshold passed on each side
 * yields a box (lo, hi] per axis: any query inside the box takes the
 * exact same branch at every node of every tree and therefore lands
 * on the exact same leaves — its prediction is bitwise identical to
 * the recorded one. This is what makes prediction memoisation safe
 * under drifting context features (the chunk-budget solver's cache
 * keys on these boxes rather than on exact feature equality).
 */
struct FeatureSupport
{
    /** Exclusive lower bounds per feature. */
    double lo[kMaxForestFeatures];

    /** Inclusive upper bounds per feature. */
    double hi[kMaxForestFeatures];

    /** Tracked feature count; 0 marks an invalid (unusable) support. */
    int dims = 0;

    /** Reset to the full space over @p d features. */
    void reset(int d);

    /** True if @p x lies strictly inside the box (lo < x[i] <= hi). */
    bool contains(const double *x, int d) const;
};

/**
 * One node of a flattened tree.
 *
 * Trees are stored in preorder, so an internal node's left child is
 * always the next array slot — only the right-child index is stored.
 * A leaf keeps its value in @ref key; an internal node keeps its split
 * threshold there.
 */
struct FlatNode
{
    double key = 0.0;          ///< Split threshold, or leaf value.
    std::uint32_t right = 0;   ///< Right-child index (internal only).
    std::int32_t feature = -1; ///< Split feature; -1 marks a leaf.
};

/** A training/evaluation sample: feature vector plus target. */
struct TrainSample
{
    std::vector<double> x;
    double y = 0.0;
};

/** Hyper-parameters shared by trees and forests. */
struct ForestParams
{
    /** Number of trees in the ensemble. */
    int numTrees = 20;

    /** Maximum tree depth. */
    int maxDepth = 12;

    /** Minimum samples required in a leaf. */
    int minSamplesLeaf = 4;

    /** Candidate split thresholds evaluated per feature per node. */
    int splitCandidates = 16;

    /** Fraction of the training set drawn (with replacement) per tree. */
    double bootstrapFraction = 1.0;
};

/**
 * A single CART regression tree, grown by greedy variance reduction.
 */
class RegressionTree
{
  public:
    /**
     * Fit the tree.
     *
     * @param samples Training data; all x must share one length.
     * @param params Growth limits.
     * @param rng Source of randomness for split-candidate sampling.
     */
    void fit(const std::vector<TrainSample> &samples,
             const ForestParams &params, Rng &rng);

    /** Predict the target for a feature vector. */
    double predict(const std::vector<double> &x) const;

    /** Number of nodes in the fitted tree (0 before fit). */
    std::size_t numNodes() const { return nodes_.size(); }

    /**
     * Append this tree's nodes to a flat preorder array.
     *
     * The builder already emits nodes in preorder (left child is
     * parent + 1), so flattening is a direct re-encoding with indices
     * rebased to @p out's current size.
     */
    void flattenInto(std::vector<FlatNode> &out) const;

  private:
    struct Node
    {
        int feature = -1;     ///< -1 marks a leaf.
        double threshold = 0.0;
        int left = -1;
        int right = -1;
        double value = 0.0;   ///< Leaf mean.
    };

    /** Reusable per-node buffers for the split scan. */
    struct SplitScratch
    {
        std::vector<std::uint32_t> order; ///< Indices sorted by feature.
        std::vector<double> values;       ///< Feature values, sorted.
        std::vector<double> prefY;        ///< Prefix sums of y.
        std::vector<double> prefY2;       ///< Prefix sums of y².
    };

    int build(const std::vector<TrainSample> &samples,
              std::vector<std::uint32_t> &idx, int lo, int hi, int depth,
              const ForestParams &params, Rng &rng,
              SplitScratch &scratch);

    std::vector<Node> nodes_;
};

/**
 * A forest partially evaluated over a subset of its features.
 *
 * Produced by RandomForest::restrictTo(): every split on a *fixed*
 * feature is resolved against the query it was built from, leaving a
 * (much smaller) forest that splits only on the *free* features. For
 * any query whose fixed coordinates stay inside the box reported at
 * construction, evaluating the restricted forest takes the exact
 * same branch sequence as the full forest — predictions are bitwise
 * identical. The chunk-budget solver uses this to turn its repeated
 * per-probe forest walks into walks of a few-KB structure that stays
 * resident in L1.
 */
class RestrictedForest
{
  public:
    /** True once restrictTo() has populated this object. */
    bool valid() const { return !roots_.empty(); }

    /** Drop the restriction (valid() becomes false). */
    void clear();

    /**
     * Quantile of the per-tree predictions.
     *
     * Only the free features of @p x are read; bitwise identical to
     * RandomForest::predictQuantile on the full forest whenever the
     * fixed coordinates lie inside the construction box.
     */
    double predictQuantile(const double *x, int dims, double q) const;

    /**
     * Quantile prediction that narrows a caller-owned support box.
     *
     * Unlike RandomForest::predictQuantileTracked this does NOT reset
     * @p support: the caller initialises it (reset()) and may issue
     * several tracked predictions into the same box, obtaining the
     * intersection of their leaf-stability regions — any query inside
     * the final box reproduces every one of those predictions bitwise.
     * The chunk-budget solver uses this to certify whole search
     * replays, not just single probes.
     */
    double predictQuantileTracked(const double *x, int dims, double q,
                                  FeatureSupport &support) const;

    /**
     * Conservative monotonicity certificate along one feature axis.
     *
     * True when every kept split on @p feature has its left subtree's
     * maximum leaf value at or below its right subtree's minimum — a
     * sufficient condition for every tree (and hence any quantile of
     * the ensemble) to be non-decreasing in that feature over the
     * restriction box. Under the certificate every probe order of a
     * feasibility search finds the same largest-feasible chunk, so a
     * reordered search would be provably result-identical to the cold
     * binary search. Diagnostics only: fitted ensembles rarely pass
     * (bootstrap noise breaks per-split ordering), so the solver does
     * not rely on it.
     */
    bool monotoneNonDecreasingIn(int feature) const;

    /** Nodes retained by the restriction (diagnostics). */
    std::size_t numNodes() const { return flat_.size(); }

    /**
     * Restrict further, to a sub-box of this restriction's box.
     *
     * Restriction composes: a split resolved by the outer box is also
     * resolved (identically) by any sub-box, and a split the sub-box
     * crosses was necessarily kept by the outer box — so the emitted
     * forest is node-for-node identical to restricting the original
     * forest with @p lo / @p hi directly. The caller must guarantee
     * the sub-box relation; this lets a solver cache rebuild its
     * small working plane from a mid-sized super-plane instead of
     * walking the full source forest every time.
     */
    void restrictToBox(const double *lo, const double *hi, int dims,
                       RestrictedForest &out,
                       FeatureSupport &support) const;

  private:
    friend class RandomForest;

    static void restrictImpl(const FlatNode *nodes,
                             const std::uint32_t *roots,
                             std::size_t num_roots, int max_depth,
                             int feature_dims, const double *lo,
                             const double *hi, int dims,
                             RestrictedForest &out,
                             FeatureSupport &support);

    std::vector<FlatNode> flat_;
    std::vector<std::uint32_t> roots_;
    int maxDepth_ = 0;
    int featureDims_ = 0;
};

/**
 * Bagged ensemble of regression trees.
 */
class RandomForest
{
  public:
    /**
     * Fit the ensemble on @p samples with seed-derived randomness.
     *
     * Each tree's bootstrap draw and growth randomness come from an
     * independent stream split from (seed, tree index), so trees can
     * be trained concurrently: the fitted ensemble is bit-identical
     * for every @p jobs value.
     *
     * @param jobs Worker threads training trees (0 = hardware
     *        concurrency, 1 = serial).
     */
    void fit(const std::vector<TrainSample> &samples, ForestParams params,
             std::uint64_t seed, int jobs = 1);

    /** Mean prediction across trees (flattened fast path). */
    double predict(const std::vector<double> &x) const;

    /**
     * Quantile of the per-tree predictions (flattened fast path).
     *
     * Quantiles below 0.5 bias the ensemble toward under-prediction,
     * which the chunk solver uses for conservatism.
     *
     * @param x Feature vector.
     * @param q Quantile in [0, 1].
     */
    double predictQuantile(const std::vector<double> &x, double q) const;

    /** Zero-allocation quantile prediction over a raw feature array. */
    double predictQuantile(const double *x, int dims, double q) const;

    /**
     * Quantile prediction that also reports its leaf-stability box.
     *
     * @p support is reset to the full space and narrowed at every
     * comparison the walk performs; on return, any query strictly
     * inside the box is guaranteed to produce a bitwise-identical
     * prediction.
     */
    double predictQuantileTracked(const double *x, int dims, double q,
                                  FeatureSupport &support) const;

    /**
     * Evaluate all trees over @p count feature vectors in one pass.
     *
     * @param xs Row-major array of @p count × @p dims features.
     * @param out Receives @p count quantile predictions, each bitwise
     *        identical to the corresponding predictQuantile() call.
     */
    void predictQuantileMany(const double *xs, int dims,
                             std::size_t count, double q,
                             double *out) const;

    /**
     * Partially evaluate the forest over an axis-aligned box.
     *
     * Splits the box falls entirely on one side of are resolved away;
     * splits that cut through it are kept and re-evaluated against
     * the actual query at prediction time. The result is exact: for
     * any query x with lo[i] < x[i] <= hi[i] on every axis, the
     * restricted forest's prediction is bitwise identical to the full
     * forest's — resolved splits decide identically for every point
     * of the box, and kept splits are decided per query. @p support
     * is set to the box itself, so a contains() test validates reuse.
     *
     * Unbounded axes (lo = -inf, hi = +inf) are fully free; narrow
     * axes shrink the emitted forest at the cost of more frequent
     * rebuilds when queries drift out of the box.
     */
    void restrictToBox(const double *lo, const double *hi, int dims,
                       RestrictedForest &out,
                       FeatureSupport &support) const;

    /**
     * Mean prediction via the original per-tree recursive walk.
     *
     * Kept as the ground truth for bitwise-equivalence tests of the
     * flattened path.
     */
    double predictReference(const std::vector<double> &x) const;

    /** Quantile prediction via the original per-tree walk. */
    double predictQuantileReference(const std::vector<double> &x,
                                    double q) const;

    /** Number of fitted trees. */
    std::size_t numTrees() const { return trees_.size(); }

    /** Individual fitted tree — with predictReference(), the ground
     *  truth for bitwise-equivalence tests of the flattened path. */
    const RegressionTree &tree(std::size_t t) const { return trees_[t]; }

    /** Total nodes in the flattened forest (diagnostics). */
    std::size_t numFlatNodes() const { return flat_.size(); }

    /** True once fit() has run. */
    bool trained() const { return !trees_.empty(); }

  private:
    double evalTree(std::uint32_t root, const double *x, int dims) const;
    double evalTreeTracked(std::uint32_t root, const double *x, int dims,
                           FeatureSupport &support) const;
    double quantileOf(std::vector<double> &preds, double q) const;
    void fillTreePreds(const double *x, int dims,
                       std::vector<double> &preds) const;

    std::vector<RegressionTree> trees_;

    /** All trees' nodes, concatenated; tree t starts at roots_[t]. */
    std::vector<FlatNode> flat_;
    std::vector<std::uint32_t> roots_;

    /** Deepest root-to-leaf edge count across trees: the lockstep
     *  walk runs exactly this many levels. */
    int maxTreeDepth_ = 0;

    /** 1 + max feature index any node tests: evaluation validates the
     *  query width once instead of per node. */
    int featureDims_ = 0;
};

} // namespace qoserve

#endif // QOSERVE_PREDICTOR_RANDOM_FOREST_HH
