/**
 * @file
 * Profiling harness for batch-latency training data.
 *
 * Stands in for "a lightweight harness exposed by an inference
 * simulator Vidur" (§3.6.1): it sweeps batch compositions — chunk
 * size, decode batch size, per-request context, prefill context —
 * against the analytical execution model and records latency samples
 * with multiplicative measurement noise, one profile per (model,
 * hardware, parallelism) configuration of interest.
 */

#ifndef QOSERVE_PREDICTOR_PROFILER_HH
#define QOSERVE_PREDICTOR_PROFILER_HH

#include <array>
#include <vector>

#include "model/perf_model.hh"
#include "predictor/random_forest.hh"
#include "simcore/rng.hh"

namespace qoserve {

/**
 * Feature layout shared by the profiler and the latency predictor.
 *
 * Order: {chunk tokens, prefill KV context at chunk start,
 * decode batch size, summed decode context}.
 */
struct BatchFeatures
{
    /** Number of features in the flattened layout. */
    static constexpr int kCount = 4;

    double chunkTokens = 0.0;
    double prefillContext = 0.0;
    double numDecodes = 0.0;
    double decodeCtxSum = 0.0;

    /** Flatten into the vector form consumed by the forest. */
    std::vector<double>
    toVector() const
    {
        return {chunkTokens, prefillContext, numDecodes, decodeCtxSum};
    }

    /** Allocation-free flattening for the hot prediction path. */
    std::array<double, kCount>
    toArray() const
    {
        return {chunkTokens, prefillContext, numDecodes, decodeCtxSum};
    }

    /** The BatchWork this composition corresponds to. */
    BatchWork toWork() const;
};

/** Sweep grid for profiling. */
struct ProfileGrid
{
    std::vector<double> chunkSizes =
        {0, 64, 128, 256, 384, 512, 768, 1024, 1536, 2048, 2560, 3072,
         4096};
    std::vector<double> prefillContexts = {0, 1024, 4096, 10240};
    std::vector<double> decodeBatchSizes = {0, 8, 16, 32, 64, 128, 256};
    std::vector<double> avgDecodeContexts = {128, 512, 1024, 2048, 4096};

    /** Relative std-dev of multiplicative measurement noise. */
    double noiseStddev = 0.03;
};

/**
 * Collect latency training samples over the grid.
 *
 * @param model Execution model to profile.
 * @param grid Sweep specification.
 * @param seed Noise seed.
 * @return One TrainSample per grid point (empty batches skipped);
 *         targets in seconds.
 */
std::vector<TrainSample> collectProfile(const PerfModel &model,
                                        const ProfileGrid &grid,
                                        std::uint64_t seed);

} // namespace qoserve

#endif // QOSERVE_PREDICTOR_PROFILER_HH
