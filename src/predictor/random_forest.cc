/**
 * @file
 * CART / random-forest implementation.
 */

#include "predictor/random_forest.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "simcore/logging.hh"
#include "simcore/thread_pool.hh"

namespace qoserve {

void
FeatureSupport::reset(int d)
{
    QOSERVE_ASSERT(d > 0 && d <= kMaxForestFeatures,
                   "unsupported feature count ", d);
    dims = d;
    for (int i = 0; i < d; ++i) {
        lo[i] = -std::numeric_limits<double>::infinity();
        hi[i] = std::numeric_limits<double>::infinity();
    }
}

bool
FeatureSupport::contains(const double *x, int d) const
{
    if (d != dims || dims == 0)
        return false;
    for (int i = 0; i < d; ++i) {
        if (!(lo[i] < x[i] && x[i] <= hi[i]))
            return false;
    }
    return true;
}

namespace {

/** Mean of targets over an index range. */
double
targetMean(const std::vector<TrainSample> &samples,
           const std::vector<std::uint32_t> &idx, int lo, int hi)
{
    double sum = 0.0;
    for (int i = lo; i < hi; ++i)
        sum += samples[idx[i]].y;
    return sum / (hi - lo);
}

/** Sum of squared error around the mean over an index range. */
double
targetSse(const std::vector<TrainSample> &samples,
          const std::vector<std::uint32_t> &idx, int lo, int hi)
{
    double mean = targetMean(samples, idx, lo, hi);
    double sse = 0.0;
    for (int i = lo; i < hi; ++i) {
        double d = samples[idx[i]].y - mean;
        sse += d * d;
    }
    return sse;
}

} // namespace

int
RegressionTree::build(const std::vector<TrainSample> &samples,
                      std::vector<std::uint32_t> &idx, int lo, int hi,
                      int depth, const ForestParams &params, Rng &rng,
                      SplitScratch &scratch)
{
    int node_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_id].value = targetMean(samples, idx, lo, hi);

    int n = hi - lo;
    if (depth >= params.maxDepth || n < 2 * params.minSamplesLeaf)
        return node_id;

    double parent_sse = targetSse(samples, idx, lo, hi);
    if (parent_sse <= 1e-30)
        return node_id;

    int num_features = static_cast<int>(samples[idx[lo]].x.size());
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_sse = parent_sse;

    for (int f = 0; f < num_features; ++f) {
        // Sort the node's samples by this feature once, then every
        // candidate threshold resolves to a split position by binary
        // search against prefix sums of (y, y²) — O((n + C) log n)
        // per feature instead of rescanning all n samples for each
        // of the C candidates. The RNG draw sequence is unchanged.
        scratch.order.assign(idx.begin() + lo, idx.begin() + hi);
        std::sort(scratch.order.begin(), scratch.order.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      return samples[a].x[f] < samples[b].x[f];
                  });

        double fmin = samples[scratch.order.front()].x[f];
        double fmax = samples[scratch.order.back()].x[f];
        if (fmin >= fmax)
            continue;

        scratch.values.resize(n);
        scratch.prefY.resize(n + 1);
        scratch.prefY2.resize(n + 1);
        scratch.prefY[0] = 0.0;
        scratch.prefY2[0] = 0.0;
        for (int i = 0; i < n; ++i) {
            const TrainSample &s = samples[scratch.order[i]];
            scratch.values[i] = s.x[f];
            scratch.prefY[i + 1] = scratch.prefY[i] + s.y;
            scratch.prefY2[i + 1] = scratch.prefY2[i] + s.y * s.y;
        }
        double total_y = scratch.prefY[n];
        double total_y2 = scratch.prefY2[n];

        for (int c = 0; c < params.splitCandidates; ++c) {
            double thr = rng.uniform(fmin, fmax);
            // Left side takes values <= thr.
            int ln = static_cast<int>(
                std::upper_bound(scratch.values.begin(),
                                 scratch.values.end(), thr) -
                scratch.values.begin());
            int rn = n - ln;
            if (ln < params.minSamplesLeaf || rn < params.minSamplesLeaf)
                continue;
            double ls = scratch.prefY[ln];
            double lss = scratch.prefY2[ln];
            double rs = total_y - ls;
            double rss = total_y2 - lss;
            double sse = (lss - ls * ls / ln) + (rss - rs * rs / rn);
            if (sse < best_sse) {
                best_sse = sse;
                best_feature = f;
                best_threshold = thr;
            }
        }
    }

    if (best_feature < 0)
        return node_id;

    auto mid_it = std::partition(
        idx.begin() + lo, idx.begin() + hi,
        [&](std::uint32_t i) {
            return samples[i].x[best_feature] <= best_threshold;
        });
    int mid = static_cast<int>(mid_it - idx.begin());
    QOSERVE_ASSERT(mid > lo && mid < hi, "degenerate partition");

    nodes_[node_id].feature = best_feature;
    nodes_[node_id].threshold = best_threshold;
    int left =
        build(samples, idx, lo, mid, depth + 1, params, rng, scratch);
    int right =
        build(samples, idx, mid, hi, depth + 1, params, rng, scratch);
    nodes_[node_id].left = left;
    nodes_[node_id].right = right;
    return node_id;
}

void
RegressionTree::fit(const std::vector<TrainSample> &samples,
                    const ForestParams &params, Rng &rng)
{
    QOSERVE_ASSERT(!samples.empty(), "empty training set");
    nodes_.clear();
    std::vector<std::uint32_t> idx(samples.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<std::uint32_t>(i);
    SplitScratch scratch;
    build(samples, idx, 0, static_cast<int>(idx.size()), 0, params, rng,
          scratch);
}

void
RegressionTree::flattenInto(std::vector<FlatNode> &out) const
{
    QOSERVE_ASSERT(!nodes_.empty(), "flattenInto() before fit()");
    auto base = static_cast<std::uint32_t>(out.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node &n = nodes_[i];
        FlatNode f;
        if (n.feature < 0) {
            f.key = n.value;
        } else {
            // Preorder invariant from build(): the left child is the
            // next node, so only the right index needs storing.
            QOSERVE_ASSERT(n.left == static_cast<int>(i) + 1,
                           "tree is not in preorder");
            f.key = n.threshold;
            f.feature = n.feature;
            f.right = base + static_cast<std::uint32_t>(n.right);
        }
        out.push_back(f);
    }
}

double
RegressionTree::predict(const std::vector<double> &x) const
{
    QOSERVE_ASSERT(!nodes_.empty(), "predict() before fit()");
    int node = 0;
    while (nodes_[node].feature >= 0) {
        const Node &n = nodes_[node];
        QOSERVE_ASSERT(n.feature < static_cast<int>(x.size()),
                       "feature vector too short");
        node = x[n.feature] <= n.threshold ? n.left : n.right;
    }
    return nodes_[node].value;
}

void
RandomForest::fit(const std::vector<TrainSample> &samples,
                  ForestParams params, std::uint64_t seed, int jobs)
{
    QOSERVE_ASSERT(!samples.empty(), "empty training set");
    QOSERVE_ASSERT(params.numTrees > 0, "need at least one tree");

    trees_.assign(params.numTrees, RegressionTree{});
    Rng root(seed);
    std::size_t draw =
        std::max<std::size_t>(1, static_cast<std::size_t>(
            params.bootstrapFraction * samples.size()));

    // Each tree's randomness is split from (seed, t) rather than
    // drawn from a shared stream, so the trees can be grown in any
    // order — or concurrently — with bit-identical results.
    par::parallelFor(
        jobs, static_cast<std::size_t>(params.numTrees),
        [&](std::size_t t) {
            Rng tree_rng = root.split("tree" + std::to_string(t));
            std::vector<TrainSample> boot;
            boot.reserve(draw);
            for (std::size_t i = 0; i < draw; ++i) {
                auto j = static_cast<std::size_t>(tree_rng.uniformInt(
                    0, static_cast<std::int64_t>(samples.size()) - 1));
                boot.push_back(samples[j]);
            }
            trees_[t].fit(boot, params, tree_rng);
        });

    // Flatten the trained ensemble into one contiguous node array so
    // the hot evaluation path walks cache-friendly 16-byte records
    // instead of pointer-chasing per-tree vectors.
    flat_.clear();
    roots_.clear();
    roots_.reserve(trees_.size());
    std::size_t total = 0;
    for (const auto &t : trees_)
        total += t.numNodes();
    flat_.reserve(total);
    for (const auto &t : trees_) {
        roots_.push_back(static_cast<std::uint32_t>(flat_.size()));
        t.flattenInto(flat_);
    }

    // Depth bound and feature width for the lockstep walk: the walk
    // runs a fixed number of levels (leaves self-loop), and the query
    // width is validated once per evaluation instead of per node.
    maxTreeDepth_ = 0;
    featureDims_ = 0;
    for (std::size_t t = 0; t < roots_.size(); ++t) {
        std::uint32_t begin = roots_[t];
        std::uint32_t end = t + 1 < roots_.size()
                                ? roots_[t + 1]
                                : static_cast<std::uint32_t>(flat_.size());
        // Preorder layout: a node's depth is its parent's plus one,
        // and every node's parent precedes it, so one forward pass
        // with a depth stack suffices.
        std::vector<int> depth(end - begin, 0);
        for (std::uint32_t i = begin; i < end; ++i) {
            const FlatNode &n = flat_[i];
            maxTreeDepth_ = std::max(maxTreeDepth_, depth[i - begin]);
            if (n.feature < 0)
                continue;
            featureDims_ = std::max(featureDims_, n.feature + 1);
            depth[i + 1 - begin] = depth[i - begin] + 1;
            depth[n.right - begin] = depth[i - begin] + 1;
        }
    }
}

double
RandomForest::evalTree(std::uint32_t root, const double *x,
                       int dims) const
{
    QOSERVE_ASSERT(dims >= featureDims_, "feature vector too short");
    const FlatNode *nodes = flat_.data();
    std::uint32_t node = root;
    std::int32_t f;
    while ((f = nodes[node].feature) >= 0) {
        // Branchless child select: left child is node + 1 by layout.
        node = x[f] <= nodes[node].key ? node + 1 : nodes[node].right;
    }
    return nodes[node].key;
}

double
RandomForest::evalTreeTracked(std::uint32_t root, const double *x,
                              int dims, FeatureSupport &support) const
{
    QOSERVE_ASSERT(dims >= featureDims_, "feature vector too short");
    const FlatNode *nodes = flat_.data();
    std::uint32_t node = root;
    std::int32_t f;
    while ((f = nodes[node].feature) >= 0) {
        double thr = nodes[node].key;
        if (x[f] <= thr) {
            if (thr < support.hi[f])
                support.hi[f] = thr;
            node = node + 1;
        } else {
            if (thr > support.lo[f])
                support.lo[f] = thr;
            node = nodes[node].right;
        }
    }
    return nodes[node].key;
}

namespace {

/** Largest ensemble sorted with the branchless network. */
constexpr std::size_t kMaxNetworkSort = 64;

/**
 * Batcher odd-even compare-exchange schedules for every size up to
 * kMaxNetworkSort, built once. A fixed network sorts with min/max
 * selects only — no data-dependent branches — which matters because
 * the quantile sort runs once per chunk-solver probe and mispredicted
 * comparison sorts dominated that path.
 */
const std::vector<std::pair<int, int>> &
sortNetwork(std::size_t n)
{
    static const auto table = [] {
        std::vector<std::vector<std::pair<int, int>>> nets(
            kMaxNetworkSort + 1);
        for (int size = 2; size <= static_cast<int>(kMaxNetworkSort);
             ++size) {
            auto &net = nets[static_cast<std::size_t>(size)];
            for (int p = 1; p < size; p <<= 1) {
                for (int k = p; k >= 1; k >>= 1) {
                    for (int j = k % p; j + k < size; j += 2 * k) {
                        for (int i = 0;
                             i < k && i + j + k < size; ++i) {
                            if ((i + j) / (2 * p) ==
                                (i + j + k) / (2 * p))
                                net.emplace_back(i + j, i + j + k);
                        }
                    }
                }
            }
        }
        return nets;
    }();
    return table[n];
}

/** Shared quantile-of-tree-predictions kernel. */
double
quantileOfPreds(std::vector<double> &preds, double q)
{
    // The interpolation reads only the lo-th and (lo+1)-th smallest
    // values; any correct sort or selection produces exactly the
    // doubles the original sort-and-interpolate placed there, so both
    // paths below stay bitwise identical to it.
    double pos = q * (preds.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    auto hi = std::min(lo + 1, preds.size() - 1);
    double frac = pos - static_cast<double>(lo);
    double v_lo, v_hi;
    if (preds.size() >= 2 && preds.size() <= kMaxNetworkSort) {
        double *v = preds.data();
        for (auto [a, b] : sortNetwork(preds.size())) {
            double x = v[a], y = v[b];
            v[a] = std::min(x, y);
            v[b] = std::max(x, y);
        }
        v_lo = v[lo];
        v_hi = v[hi];
    } else {
        auto pivot = preds.begin() + static_cast<std::ptrdiff_t>(lo);
        std::nth_element(preds.begin(), pivot, preds.end());
        v_lo = *pivot;
        v_hi = hi > lo ? *std::min_element(pivot + 1, preds.end())
                       : v_lo;
    }
    return v_lo * (1.0 - frac) + v_hi * frac;
}

/**
 * Lockstep walk shared by the full and restricted forests: each
 * tree's node chain is serially dependent, but steps of *different*
 * trees are independent, so advancing every tree one level per pass
 * keeps many node fetches in flight instead of draining one 12-deep
 * chain at a time. Leaves self-loop (their feature is negative) until
 * the deepest tree finishes; all selects compile to conditional
 * moves.
 */
void
lockstepFill(const FlatNode *nodes, const std::uint32_t *roots,
             std::size_t n, int max_depth, const double *x,
             double *preds)
{
    constexpr std::size_t kBlock = 32;
    for (std::size_t base = 0; base < n; base += kBlock) {
        std::size_t m = std::min(kBlock, n - base);
        std::uint32_t cur[kBlock];
        for (std::size_t t = 0; t < m; ++t)
            cur[t] = roots[base + t];
        for (int level = 0; level < max_depth; ++level) {
            for (std::size_t t = 0; t < m; ++t) {
                const FlatNode &nd = nodes[cur[t]];
                bool leaf = nd.feature < 0;
                std::int32_t f = leaf ? 0 : nd.feature;
                std::uint32_t next =
                    x[f] <= nd.key ? cur[t] + 1 : nd.right;
                cur[t] = leaf ? cur[t] : next;
            }
        }
        for (std::size_t t = 0; t < m; ++t)
            preds[base + t] = nodes[cur[t]].key;
    }
}

} // namespace

void
RestrictedForest::clear()
{
    flat_.clear();
    roots_.clear();
    maxDepth_ = 0;
    featureDims_ = 0;
}

double
RestrictedForest::predictQuantile(const double *x, int dims,
                                  double q) const
{
    QOSERVE_ASSERT(valid(), "predictQuantile() on an empty restriction");
    QOSERVE_ASSERT(dims >= featureDims_, "feature vector too short");
    QOSERVE_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    static thread_local std::vector<double> preds;
    preds.resize(roots_.size());
    lockstepFill(flat_.data(), roots_.data(), roots_.size(), maxDepth_,
                 x, preds.data());
    return quantileOfPreds(preds, q);
}

double
RestrictedForest::predictQuantileTracked(const double *x, int dims,
                                         double q,
                                         FeatureSupport &support) const
{
    QOSERVE_ASSERT(valid(), "predictQuantileTracked() on an empty "
                            "restriction");
    QOSERVE_ASSERT(dims >= featureDims_, "feature vector too short");
    QOSERVE_ASSERT(support.dims >= featureDims_,
                   "support not initialised by the caller");
    const FlatNode *nodes = flat_.data();
    static thread_local std::vector<double> preds;
    preds.resize(roots_.size());
    for (std::size_t t = 0; t < roots_.size(); ++t) {
        std::uint32_t node = roots_[t];
        std::int32_t f;
        while ((f = nodes[node].feature) >= 0) {
            double thr = nodes[node].key;
            if (x[f] <= thr) {
                if (thr < support.hi[f])
                    support.hi[f] = thr;
                node = node + 1;
            } else {
                if (thr > support.lo[f])
                    support.lo[f] = thr;
                node = nodes[node].right;
            }
        }
        preds[t] = nodes[node].key;
    }
    return quantileOfPreds(preds, q);
}

double
RandomForest::quantileOf(std::vector<double> &preds, double q) const
{
    return quantileOfPreds(preds, q);
}

void
RandomForest::fillTreePreds(const double *x, int dims,
                            std::vector<double> &preds) const
{
    QOSERVE_ASSERT(dims >= featureDims_, "feature vector too short");
    preds.resize(roots_.size());
    lockstepFill(flat_.data(), roots_.data(), roots_.size(),
                 maxTreeDepth_, x, preds.data());
}

void
RandomForest::restrictToBox(const double *lo, const double *hi, int dims,
                            RestrictedForest &out,
                            FeatureSupport &support) const
{
    QOSERVE_ASSERT(trained(), "restrictToBox() before fit()");
    RestrictedForest::restrictImpl(flat_.data(), roots_.data(),
                                   roots_.size(), maxTreeDepth_,
                                   featureDims_, lo, hi, dims, out,
                                   support);
}

void
RestrictedForest::restrictToBox(const double *lo, const double *hi,
                                int dims, RestrictedForest &out,
                                FeatureSupport &support) const
{
    QOSERVE_ASSERT(valid(), "restrictToBox() on an empty restriction");
    restrictImpl(flat_.data(), roots_.data(), roots_.size(), maxDepth_,
                 featureDims_, lo, hi, dims, out, support);
}

void
RestrictedForest::restrictImpl(const FlatNode *nodes,
                               const std::uint32_t *src_roots,
                               std::size_t num_roots, int max_depth,
                               int feature_dims, const double *lo,
                               const double *hi, int dims,
                               RestrictedForest &out,
                               FeatureSupport &support)
{
    QOSERVE_ASSERT(dims >= feature_dims, "feature vector too short");
    support.reset(dims);
    for (int i = 0; i < dims; ++i) {
        QOSERVE_ASSERT(lo[i] < hi[i], "empty restriction box on axis ",
                       i);
        support.lo[i] = lo[i];
        support.hi[i] = hi[i];
    }
    out.clear();
    out.featureDims_ = feature_dims;
    out.roots_.reserve(num_roots);

    // Preorder re-emission. A split with the whole box on one side is
    // resolved: every in-box query (lo < x <= hi) takes that branch,
    // since hi <= thr forces x <= thr and lo >= thr forces x > thr.
    // Box-crossing splits are kept with both subtrees; the left child
    // lands at parent + 1 by construction, preserving the flat layout
    // the lockstep walk expects. Depth counts emitted edges only,
    // giving the restricted walk its (much smaller) level bound.
    //
    // The walk is iterative with an explicit right-subtree stack: the
    // source forest is far larger than cache, so the traversal is
    // bound by serial node-fetch latency. Prefetching each deferred
    // right subtree when it is pushed overlaps its miss with the
    // entire emission of the left subtree.
    constexpr std::uint32_t kPatchNone = 0xffffffffu;
    constexpr std::uint32_t kPatchRoot = 0xfffffffeu;
    struct Deferred
    {
        std::uint32_t src;   ///< Source index of the right subtree.
        std::uint32_t patch; ///< Emitted parent awaiting its .right.
        int depth;           ///< Emitted depth of the subtree root.
    };
    std::vector<Deferred> stack;
    stack.reserve(static_cast<std::size_t>(max_depth) + 1);
    for (std::size_t t = 0; t < num_roots; ++t) {
        std::uint32_t cur = src_roots[t];
        std::uint32_t patch = kPatchRoot;
        int depth = 0;
        while (true) {
            const FlatNode &nd = nodes[cur];
            std::int32_t f = nd.feature;
            if (f >= 0) {
                if (hi[f] <= nd.key) {
                    cur = cur + 1;
                    continue;
                }
                if (lo[f] >= nd.key) {
                    cur = nd.right;
                    continue;
                }
            }
            auto idx = static_cast<std::uint32_t>(out.flat_.size());
            out.flat_.push_back(nd);
            if (patch == kPatchRoot)
                out.roots_.push_back(idx);
            else if (patch != kPatchNone)
                out.flat_[patch].right = idx;
            patch = kPatchNone;
            if (f >= 0) {
                __builtin_prefetch(&nodes[nd.right]);
                stack.push_back({nd.right, idx, depth + 1});
                cur = cur + 1;
                ++depth;
                continue;
            }
            out.maxDepth_ = std::max(out.maxDepth_, depth);
            if (stack.empty())
                break;
            Deferred top = stack.back();
            stack.pop_back();
            cur = top.src;
            patch = top.patch;
            depth = top.depth;
        }
    }
}

bool
RestrictedForest::monotoneNonDecreasingIn(int feature) const
{
    QOSERVE_ASSERT(valid(), "monotonicity query on an empty restriction");
    struct Range
    {
        double min, max;
    };
    const FlatNode *nodes = flat_.data();
    bool ok = true;
    // Leaf-value range per subtree; a kept split on the axis must put
    // all of its left range at or below all of its right range. Two
    // queries differing only in x[feature] first diverge at such a
    // split (x1 <= thr < x2), so the condition pins v(x1) <= v(x2) for
    // every tree — and therefore every order statistic of the
    // ensemble, including the interpolated quantile, is
    // non-decreasing.
    auto walk = [&](auto &&self, std::uint32_t node) -> Range {
        const FlatNode &nd = nodes[node];
        if (nd.feature < 0)
            return {nd.key, nd.key};
        Range l = self(self, node + 1);
        Range r = self(self, nd.right);
        if (nd.feature == feature && l.max > r.min)
            ok = false;
        return {std::min(l.min, r.min), std::max(l.max, r.max)};
    };
    for (std::uint32_t root : roots_)
        walk(walk, root);
    return ok;
}

double
RandomForest::predict(const std::vector<double> &x) const
{
    QOSERVE_ASSERT(trained(), "predict() before fit()");
    auto dims = static_cast<int>(x.size());
    double sum = 0.0;
    for (std::uint32_t root : roots_)
        sum += evalTree(root, x.data(), dims);
    return sum / static_cast<double>(trees_.size());
}

double
RandomForest::predictQuantile(const std::vector<double> &x, double q) const
{
    return predictQuantile(x.data(), static_cast<int>(x.size()), q);
}

double
RandomForest::predictQuantile(const double *x, int dims, double q) const
{
    QOSERVE_ASSERT(trained(), "predictQuantile() before fit()");
    QOSERVE_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    static thread_local std::vector<double> preds;
    fillTreePreds(x, dims, preds);
    return quantileOf(preds, q);
}

double
RandomForest::predictQuantileTracked(const double *x, int dims, double q,
                                     FeatureSupport &support) const
{
    QOSERVE_ASSERT(trained(), "predictQuantileTracked() before fit()");
    QOSERVE_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    QOSERVE_ASSERT(dims >= featureDims_, "feature vector too short");
    support.reset(dims);
    static thread_local std::vector<double> preds;
    std::size_t n = roots_.size();
    preds.resize(n);
    // Same lockstep walk as fillTreePreds, with branch-free support
    // narrowing folded in: every level conditionally tightens the box
    // on the tested feature (leaves write their old bounds back).
    const FlatNode *nodes = flat_.data();
    constexpr std::size_t kBlock = 32;
    for (std::size_t base = 0; base < n; base += kBlock) {
        std::size_t m = std::min(kBlock, n - base);
        std::uint32_t cur[kBlock];
        for (std::size_t t = 0; t < m; ++t)
            cur[t] = roots_[base + t];
        for (int level = 0; level < maxTreeDepth_; ++level) {
            for (std::size_t t = 0; t < m; ++t) {
                const FlatNode &nd = nodes[cur[t]];
                bool leaf = nd.feature < 0;
                std::int32_t f = leaf ? 0 : nd.feature;
                double key = nd.key;
                bool left = x[f] <= key;
                double lo = support.lo[f];
                double hi = support.hi[f];
                support.hi[f] = !leaf && left && key < hi ? key : hi;
                support.lo[f] = !leaf && !left && key > lo ? key : lo;
                std::uint32_t next = left ? cur[t] + 1 : nd.right;
                cur[t] = leaf ? cur[t] : next;
            }
        }
        for (std::size_t t = 0; t < m; ++t)
            preds[base + t] = nodes[cur[t]].key;
    }
    return quantileOf(preds, q);
}

void
RandomForest::predictQuantileMany(const double *xs, int dims,
                                  std::size_t count, double q,
                                  double *out) const
{
    QOSERVE_ASSERT(trained(), "predictQuantileMany() before fit()");
    QOSERVE_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    // Trees outer, queries inner: one streaming pass over the flat
    // node array serves the whole batch, keeping it hot in cache.
    static thread_local std::vector<double> preds;
    preds.resize(count * trees_.size());
    std::size_t ntrees = trees_.size();
    for (std::size_t t = 0; t < ntrees; ++t) {
        std::uint32_t root = roots_[t];
        for (std::size_t i = 0; i < count; ++i)
            preds[i * ntrees + t] = evalTree(root, xs + i * dims, dims);
    }
    static thread_local std::vector<double> row;
    row.resize(ntrees);
    for (std::size_t i = 0; i < count; ++i) {
        row.assign(preds.begin() + static_cast<std::ptrdiff_t>(i * ntrees),
                   preds.begin() +
                       static_cast<std::ptrdiff_t>((i + 1) * ntrees));
        out[i] = quantileOf(row, q);
    }
}

double
RandomForest::predictReference(const std::vector<double> &x) const
{
    QOSERVE_ASSERT(trained(), "predictReference() before fit()");
    double sum = 0.0;
    for (const auto &t : trees_)
        sum += t.predict(x);
    return sum / static_cast<double>(trees_.size());
}

double
RandomForest::predictQuantileReference(const std::vector<double> &x,
                                       double q) const
{
    QOSERVE_ASSERT(trained(), "predictQuantileReference() before fit()");
    QOSERVE_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    std::vector<double> preds;
    preds.reserve(trees_.size());
    for (const auto &t : trees_)
        preds.push_back(t.predict(x));
    return quantileOf(preds, q);
}

} // namespace qoserve
