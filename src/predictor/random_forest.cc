/**
 * @file
 * CART / random-forest implementation.
 */

#include "predictor/random_forest.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "simcore/logging.hh"
#include "simcore/thread_pool.hh"

namespace qoserve {

namespace {

/** Mean of targets over an index range. */
double
targetMean(const std::vector<TrainSample> &samples,
           const std::vector<std::uint32_t> &idx, int lo, int hi)
{
    double sum = 0.0;
    for (int i = lo; i < hi; ++i)
        sum += samples[idx[i]].y;
    return sum / (hi - lo);
}

/** Sum of squared error around the mean over an index range. */
double
targetSse(const std::vector<TrainSample> &samples,
          const std::vector<std::uint32_t> &idx, int lo, int hi)
{
    double mean = targetMean(samples, idx, lo, hi);
    double sse = 0.0;
    for (int i = lo; i < hi; ++i) {
        double d = samples[idx[i]].y - mean;
        sse += d * d;
    }
    return sse;
}

} // namespace

int
RegressionTree::build(const std::vector<TrainSample> &samples,
                      std::vector<std::uint32_t> &idx, int lo, int hi,
                      int depth, const ForestParams &params, Rng &rng,
                      SplitScratch &scratch)
{
    int node_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_id].value = targetMean(samples, idx, lo, hi);

    int n = hi - lo;
    if (depth >= params.maxDepth || n < 2 * params.minSamplesLeaf)
        return node_id;

    double parent_sse = targetSse(samples, idx, lo, hi);
    if (parent_sse <= 1e-30)
        return node_id;

    int num_features = static_cast<int>(samples[idx[lo]].x.size());
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_sse = parent_sse;

    for (int f = 0; f < num_features; ++f) {
        // Sort the node's samples by this feature once, then every
        // candidate threshold resolves to a split position by binary
        // search against prefix sums of (y, y²) — O((n + C) log n)
        // per feature instead of rescanning all n samples for each
        // of the C candidates. The RNG draw sequence is unchanged.
        scratch.order.assign(idx.begin() + lo, idx.begin() + hi);
        std::sort(scratch.order.begin(), scratch.order.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      return samples[a].x[f] < samples[b].x[f];
                  });

        double fmin = samples[scratch.order.front()].x[f];
        double fmax = samples[scratch.order.back()].x[f];
        if (fmin >= fmax)
            continue;

        scratch.values.resize(n);
        scratch.prefY.resize(n + 1);
        scratch.prefY2.resize(n + 1);
        scratch.prefY[0] = 0.0;
        scratch.prefY2[0] = 0.0;
        for (int i = 0; i < n; ++i) {
            const TrainSample &s = samples[scratch.order[i]];
            scratch.values[i] = s.x[f];
            scratch.prefY[i + 1] = scratch.prefY[i] + s.y;
            scratch.prefY2[i + 1] = scratch.prefY2[i] + s.y * s.y;
        }
        double total_y = scratch.prefY[n];
        double total_y2 = scratch.prefY2[n];

        for (int c = 0; c < params.splitCandidates; ++c) {
            double thr = rng.uniform(fmin, fmax);
            // Left side takes values <= thr.
            int ln = static_cast<int>(
                std::upper_bound(scratch.values.begin(),
                                 scratch.values.end(), thr) -
                scratch.values.begin());
            int rn = n - ln;
            if (ln < params.minSamplesLeaf || rn < params.minSamplesLeaf)
                continue;
            double ls = scratch.prefY[ln];
            double lss = scratch.prefY2[ln];
            double rs = total_y - ls;
            double rss = total_y2 - lss;
            double sse = (lss - ls * ls / ln) + (rss - rs * rs / rn);
            if (sse < best_sse) {
                best_sse = sse;
                best_feature = f;
                best_threshold = thr;
            }
        }
    }

    if (best_feature < 0)
        return node_id;

    auto mid_it = std::partition(
        idx.begin() + lo, idx.begin() + hi,
        [&](std::uint32_t i) {
            return samples[i].x[best_feature] <= best_threshold;
        });
    int mid = static_cast<int>(mid_it - idx.begin());
    QOSERVE_ASSERT(mid > lo && mid < hi, "degenerate partition");

    nodes_[node_id].feature = best_feature;
    nodes_[node_id].threshold = best_threshold;
    int left =
        build(samples, idx, lo, mid, depth + 1, params, rng, scratch);
    int right =
        build(samples, idx, mid, hi, depth + 1, params, rng, scratch);
    nodes_[node_id].left = left;
    nodes_[node_id].right = right;
    return node_id;
}

void
RegressionTree::fit(const std::vector<TrainSample> &samples,
                    const ForestParams &params, Rng &rng)
{
    QOSERVE_ASSERT(!samples.empty(), "empty training set");
    nodes_.clear();
    std::vector<std::uint32_t> idx(samples.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<std::uint32_t>(i);
    SplitScratch scratch;
    build(samples, idx, 0, static_cast<int>(idx.size()), 0, params, rng,
          scratch);
}

double
RegressionTree::predict(const std::vector<double> &x) const
{
    QOSERVE_ASSERT(!nodes_.empty(), "predict() before fit()");
    int node = 0;
    while (nodes_[node].feature >= 0) {
        const Node &n = nodes_[node];
        QOSERVE_ASSERT(n.feature < static_cast<int>(x.size()),
                       "feature vector too short");
        node = x[n.feature] <= n.threshold ? n.left : n.right;
    }
    return nodes_[node].value;
}

void
RandomForest::fit(const std::vector<TrainSample> &samples,
                  ForestParams params, std::uint64_t seed, int jobs)
{
    QOSERVE_ASSERT(!samples.empty(), "empty training set");
    QOSERVE_ASSERT(params.numTrees > 0, "need at least one tree");

    trees_.assign(params.numTrees, RegressionTree{});
    Rng root(seed);
    std::size_t draw =
        std::max<std::size_t>(1, static_cast<std::size_t>(
            params.bootstrapFraction * samples.size()));

    // Each tree's randomness is split from (seed, t) rather than
    // drawn from a shared stream, so the trees can be grown in any
    // order — or concurrently — with bit-identical results.
    par::parallelFor(
        jobs, static_cast<std::size_t>(params.numTrees),
        [&](std::size_t t) {
            Rng tree_rng = root.split("tree" + std::to_string(t));
            std::vector<TrainSample> boot;
            boot.reserve(draw);
            for (std::size_t i = 0; i < draw; ++i) {
                auto j = static_cast<std::size_t>(tree_rng.uniformInt(
                    0, static_cast<std::int64_t>(samples.size()) - 1));
                boot.push_back(samples[j]);
            }
            trees_[t].fit(boot, params, tree_rng);
        });
}

double
RandomForest::predict(const std::vector<double> &x) const
{
    QOSERVE_ASSERT(trained(), "predict() before fit()");
    double sum = 0.0;
    for (const auto &t : trees_)
        sum += t.predict(x);
    return sum / static_cast<double>(trees_.size());
}

double
RandomForest::predictQuantile(const std::vector<double> &x, double q) const
{
    QOSERVE_ASSERT(trained(), "predictQuantile() before fit()");
    QOSERVE_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    std::vector<double> preds;
    preds.reserve(trees_.size());
    for (const auto &t : trees_)
        preds.push_back(t.predict(x));
    std::sort(preds.begin(), preds.end());
    double pos = q * (preds.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    auto hi = std::min(lo + 1, preds.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return preds[lo] * (1.0 - frac) + preds[hi] * frac;
}

} // namespace qoserve
