/**
 * @file
 * CART / random-forest implementation.
 */

#include "predictor/random_forest.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simcore/logging.hh"

namespace qoserve {

namespace {

/** Mean of targets over an index range. */
double
targetMean(const std::vector<TrainSample> &samples,
           const std::vector<std::uint32_t> &idx, int lo, int hi)
{
    double sum = 0.0;
    for (int i = lo; i < hi; ++i)
        sum += samples[idx[i]].y;
    return sum / (hi - lo);
}

/** Sum of squared error around the mean over an index range. */
double
targetSse(const std::vector<TrainSample> &samples,
          const std::vector<std::uint32_t> &idx, int lo, int hi)
{
    double mean = targetMean(samples, idx, lo, hi);
    double sse = 0.0;
    for (int i = lo; i < hi; ++i) {
        double d = samples[idx[i]].y - mean;
        sse += d * d;
    }
    return sse;
}

} // namespace

int
RegressionTree::build(const std::vector<TrainSample> &samples,
                      std::vector<std::uint32_t> &idx, int lo, int hi,
                      int depth, const ForestParams &params, Rng &rng)
{
    int node_id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[node_id].value = targetMean(samples, idx, lo, hi);

    int n = hi - lo;
    if (depth >= params.maxDepth || n < 2 * params.minSamplesLeaf)
        return node_id;

    double parent_sse = targetSse(samples, idx, lo, hi);
    if (parent_sse <= 1e-30)
        return node_id;

    int num_features = static_cast<int>(samples[idx[lo]].x.size());
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_sse = parent_sse;

    for (int f = 0; f < num_features; ++f) {
        double fmin = std::numeric_limits<double>::max();
        double fmax = std::numeric_limits<double>::lowest();
        for (int i = lo; i < hi; ++i) {
            double v = samples[idx[i]].x[f];
            fmin = std::min(fmin, v);
            fmax = std::max(fmax, v);
        }
        if (fmin >= fmax)
            continue;

        for (int c = 0; c < params.splitCandidates; ++c) {
            double thr = rng.uniform(fmin, fmax);
            // Welford-free two-pass split evaluation: accumulate
            // count/sum/sumsq on each side.
            double ls = 0, lss = 0, rs = 0, rss = 0;
            int ln = 0, rn = 0;
            for (int i = lo; i < hi; ++i) {
                double y = samples[idx[i]].y;
                if (samples[idx[i]].x[f] <= thr) {
                    ls += y;
                    lss += y * y;
                    ++ln;
                } else {
                    rs += y;
                    rss += y * y;
                    ++rn;
                }
            }
            if (ln < params.minSamplesLeaf || rn < params.minSamplesLeaf)
                continue;
            double sse = (lss - ls * ls / ln) + (rss - rs * rs / rn);
            if (sse < best_sse) {
                best_sse = sse;
                best_feature = f;
                best_threshold = thr;
            }
        }
    }

    if (best_feature < 0)
        return node_id;

    auto mid_it = std::partition(
        idx.begin() + lo, idx.begin() + hi,
        [&](std::uint32_t i) {
            return samples[i].x[best_feature] <= best_threshold;
        });
    int mid = static_cast<int>(mid_it - idx.begin());
    QOSERVE_ASSERT(mid > lo && mid < hi, "degenerate partition");

    nodes_[node_id].feature = best_feature;
    nodes_[node_id].threshold = best_threshold;
    int left = build(samples, idx, lo, mid, depth + 1, params, rng);
    int right = build(samples, idx, mid, hi, depth + 1, params, rng);
    nodes_[node_id].left = left;
    nodes_[node_id].right = right;
    return node_id;
}

void
RegressionTree::fit(const std::vector<TrainSample> &samples,
                    const ForestParams &params, Rng &rng)
{
    QOSERVE_ASSERT(!samples.empty(), "empty training set");
    nodes_.clear();
    std::vector<std::uint32_t> idx(samples.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<std::uint32_t>(i);
    build(samples, idx, 0, static_cast<int>(idx.size()), 0, params, rng);
}

double
RegressionTree::predict(const std::vector<double> &x) const
{
    QOSERVE_ASSERT(!nodes_.empty(), "predict() before fit()");
    int node = 0;
    while (nodes_[node].feature >= 0) {
        const Node &n = nodes_[node];
        QOSERVE_ASSERT(n.feature < static_cast<int>(x.size()),
                       "feature vector too short");
        node = x[n.feature] <= n.threshold ? n.left : n.right;
    }
    return nodes_[node].value;
}

void
RandomForest::fit(const std::vector<TrainSample> &samples,
                  ForestParams params, std::uint64_t seed)
{
    QOSERVE_ASSERT(!samples.empty(), "empty training set");
    QOSERVE_ASSERT(params.numTrees > 0, "need at least one tree");

    trees_.assign(params.numTrees, RegressionTree{});
    Rng root(seed);
    std::size_t draw =
        std::max<std::size_t>(1, static_cast<std::size_t>(
            params.bootstrapFraction * samples.size()));

    for (int t = 0; t < params.numTrees; ++t) {
        Rng tree_rng = root.split("tree" + std::to_string(t));
        std::vector<TrainSample> boot;
        boot.reserve(draw);
        for (std::size_t i = 0; i < draw; ++i) {
            auto j = static_cast<std::size_t>(tree_rng.uniformInt(
                0, static_cast<std::int64_t>(samples.size()) - 1));
            boot.push_back(samples[j]);
        }
        trees_[t].fit(boot, params, tree_rng);
    }
}

double
RandomForest::predict(const std::vector<double> &x) const
{
    QOSERVE_ASSERT(trained(), "predict() before fit()");
    double sum = 0.0;
    for (const auto &t : trees_)
        sum += t.predict(x);
    return sum / static_cast<double>(trees_.size());
}

double
RandomForest::predictQuantile(const std::vector<double> &x, double q) const
{
    QOSERVE_ASSERT(trained(), "predictQuantile() before fit()");
    QOSERVE_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    std::vector<double> preds;
    preds.reserve(trees_.size());
    for (const auto &t : trees_)
        preds.push_back(t.predict(x));
    std::sort(preds.begin(), preds.end());
    double pos = q * (preds.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    auto hi = std::min(lo + 1, preds.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return preds[lo] * (1.0 - frac) + preds[hi] * frac;
}

} // namespace qoserve
