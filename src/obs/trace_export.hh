/**
 * @file
 * Trace exporters: per-request phase timelines and Perfetto JSON.
 *
 * Both consumers of a trace stream — the Chrome/Perfetto exporter and
 * the SLO-violation explainer — need the same reconstruction: fold
 * the flat event stream into, per request, a gap-free sequence of
 * phase spans (queued, prefill-running, prefill-starved,
 * stalled-by-preemption, decode, retry). Each request has at most one
 * open span at any time and every transition closes the previous span
 * at the instant it opens the next, so the spans partition the
 * request's served lifetime exactly — the ≥95% attribution guarantee
 * of the explainer is structural, not statistical.
 */

#ifndef QOSERVE_OBS_TRACE_EXPORT_HH
#define QOSERVE_OBS_TRACE_EXPORT_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/units.hh"
#include "obs/trace_event.hh"

namespace qoserve {

/** Phase a request can spend wall-clock time in. */
enum class TracePhase : std::uint8_t
{
    Queued,    ///< Dispatched, waiting for its first/next chunk.
    Prefill,   ///< A prefill chunk is executing.
    Starved,   ///< Partially prefilled, waiting between chunks.
    Preempted, ///< Evicted by a KV preemption, awaiting recompute.
    Decode,    ///< Emitting tokens.
    Retry,     ///< Lost to a crash, in retry backoff.
};

/** Number of phases (array bound for per-phase accumulators). */
inline constexpr int kTracePhases =
    static_cast<int>(TracePhase::Retry) + 1;

/** Stable display name of a phase (explainer rows, Perfetto spans). */
const char *tracePhaseName(TracePhase phase);

/** One contiguous interval a request spent in one phase. */
struct PhaseSpan
{
    TracePhase phase = TracePhase::Queued;

    /** Replica the span ran on (-1 for cluster-level retry spans). */
    int replica = -1;

    SimTime begin;
    SimTime end;

    SimDuration length() const { return end - begin; }
};

/** A request's reconstructed lifecycle. */
struct RequestTimeline
{
    /** Phase spans in time order, gap-free from the first dispatch. */
    std::vector<PhaseSpan> spans;

    SimTime arrival = kTimeNever;
    SimTime finish = kTimeNever;

    /** Rejected by admission control (no spans). */
    bool rejected = false;

    /** Abandoned after exhausting its retry budget. */
    bool abandoned = false;

    /** Abandoned because its completion deadline became provably
     *  unreachable (deadline-aware cancellation). */
    bool cancelled = false;

    /** Shed unserved by the brownout controller. */
    bool shed = false;

    /** Crash-failure count (RequestFailed events). */
    int failures = 0;

    /** Prefix-cache tokens attached across dispatches. */
    std::int64_t cachedTokens = 0;

    /** End of the last span (finish, abandonment, or stream end). */
    SimTime lastSpanEnd() const;
};

/**
 * Fold a trace stream into per-request timelines, keyed by request
 * id (deterministic id order).
 */
std::map<RequestId, RequestTimeline>
buildRequestTimelines(const std::vector<TraceEvent> &events);

/**
 * Write the stream as Chrome/Perfetto `trace_event` JSON.
 *
 * Track layout: pid 0 is the cluster front door, pid r+1 is replica
 * r. On a replica pid, tid 0 is the engine track (one B/E span per
 * iteration) and tid id+1 is request id's track (B/E spans named
 * after the phase). Timestamps are microseconds with fixed 3-decimal
 * formatting, so output bytes are platform- and jobs-invariant.
 * Every B is closed by a matching E (crash aborts close in-flight
 * spans; stream end closes stragglers), so the JSON always loads.
 */
void writePerfettoJson(const std::vector<TraceEvent> &events,
                       std::ostream &out);

/** Write Perfetto JSON to a file (fatal on error). */
void writePerfettoJsonFile(const std::vector<TraceEvent> &events,
                           const std::string &path);

} // namespace qoserve

#endif // QOSERVE_OBS_TRACE_EXPORT_HH
