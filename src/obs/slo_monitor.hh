/**
 * @file
 * Sim-time multi-window SLO burn-rate monitor (DESIGN.md §14).
 *
 * The monitor is a strictly read-only daemon observer: the driver
 * feeds it one (tier, time, violated) observation per completed
 * request outcome, and a daemon cadence on the event queue evaluates
 * each tier's error-budget *burn rate* — the observed violation
 * fraction divided by the tier's violation budget — over a short and
 * a long sliding window. An alert is raised only when BOTH windows
 * burn at or above the configured threshold (the SRE multi-window
 * trick: the long window keeps one bad burst from paging, the short
 * window makes recovery clear the alert quickly), and cleared when
 * either window drops back below it.
 *
 * Alerts become typed AlertRaised/AlertCleared trace events (arg =
 * tier, value = short-window burn rate) plus an in-memory alert log
 * serializable as CSV for qoserve_report. Because every tick is a
 * daemon event and rescheduling consults hasRealWork(), a monitored
 * run never lives one event longer than an unmonitored one — and
 * since the monitor only reads observations, the records/summary
 * CSVs are byte-identical either way (tested in obs_e2e).
 */

#ifndef QOSERVE_OBS_SLO_MONITOR_HH
#define QOSERVE_OBS_SLO_MONITOR_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_sink.hh"
#include "simcore/event_queue.hh"

namespace qoserve {

/**
 * Burn-rate alerting policy. Defaults follow the SRE-workbook fast
 * page: 1% budget burned at 14.4x over 5 min AND 1 h of sim time.
 */
struct SloMonitorConfig
{
    /** Allowed violation fraction per tier (the error budget). */
    double budget = 0.01;

    /** Burn-rate threshold: alert when violations/budget reaches
     *  this multiple in both windows. */
    double burn = 14.4;

    /** Short sliding window (seconds of sim time). */
    SimDuration shortWindow = 300.0;

    /** Long sliding window (seconds of sim time). */
    SimDuration longWindow = 3600.0;

    /** Evaluation cadence (seconds of sim time). */
    SimDuration interval = 10.0;
};

/**
 * One raised-alert episode. `cleared` is kTimeNever while the alert
 * was still active when the run drained.
 */
struct SloAlert
{
    int tier = 0;
    SimTime raised;
    SimTime cleared = kTimeNever;
    double peakBurn = 0.0; ///< Max short-window burn while active.

    bool
    operator==(const SloAlert &o) const
    {
        return tier == o.tier && raised == o.raised &&
               cleared == o.cleared && peakBurn == o.peakBurn;
    }
};

/**
 * The monitor itself. Feed with observe(); start() arms the cadence.
 */
class SloMonitor
{
  public:
    /** @p eq and the scope's sink must outlive the monitor. The
     *  scope may be off (no sink) — alerts then only reach the log.
     *  Panics on non-positive windows/interval/budget/burn and on a
     *  short window longer than the long one. */
    SloMonitor(EventQueue &eq, TraceScope scope, SloMonitorConfig cfg);

    /**
     * Record one request outcome for @p tier at @p when. Observations
     * must arrive in non-decreasing time (panics otherwise); @p when
     * may not precede the clock the evaluator runs on.
     */
    void observe(int tier, SimTime when, bool violated);

    /** Schedule the first evaluation at the current simulation time. */
    void start();

    /** Evaluation ticks fired so far. */
    std::uint64_t ticks() const { return ticks_; }

    /** Tiers whose alert is currently active, ascending. */
    std::vector<int> activeTiers() const;

    /** Every alert episode, in raise order. */
    const std::vector<SloAlert> &alerts() const { return alerts_; }

    /** Short-window burn rate of @p tier as of the last tick (0 when
     *  the window held no observations). */
    double shortBurn(int tier) const;

  private:
    /** One tier's observation window and alert state. */
    struct TierState
    {
        std::deque<std::pair<SimTime, bool>> window;
        bool active = false;
        std::size_t openAlert = 0; ///< Index into alerts_ when active.
        double lastShortBurn = 0.0;
    };

    /** Violations/total over (now - span, now], as a burn rate. */
    double burnOver(const TierState &st, SimTime now,
                    SimDuration span) const;

    void tick();

    EventQueue &eq_;
    TraceScope scope_;
    SloMonitorConfig cfg_;
    std::map<int, TierState> tiers_;
    std::vector<SloAlert> alerts_;
    SimTime lastObserved_;
    std::uint64_t ticks_ = 0;
};

/**
 * Write an alert log as CSV (`tier,raised,cleared,peak_burn`, times
 * at max_digits10 so the round trip is exact; `cleared` is `inf` for
 * alerts still active at drain).
 */
void writeAlertsCsv(const std::vector<SloAlert> &alerts,
                    std::ostream &out);

/** Write the alert CSV to a file (fatal on error). */
void writeAlertsCsvFile(const std::vector<SloAlert> &alerts,
                        const std::string &path);

/**
 * Parse an alert CSV written by writeAlertsCsv. Fatal (with the
 * 1-based line number) on malformed input.
 */
std::vector<SloAlert> readAlertsCsv(std::istream &in);

/** Read an alert CSV from a file (fatal on error). */
std::vector<SloAlert> readAlertsCsvFile(const std::string &path);

} // namespace qoserve

#endif // QOSERVE_OBS_SLO_MONITOR_HH
