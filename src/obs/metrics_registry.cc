/**
 * @file
 * Metrics registry implementation.
 */

#include "obs/metrics_registry.hh"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <set>
#include <sstream>

#include "simcore/logging.hh"

namespace qoserve {

MetricsHistogram::MetricsHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        QOSERVE_ASSERT(bounds_[i - 1] < bounds_[i],
                       "histogram bounds must be strictly ascending");
    }
}

void
MetricsHistogram::observe(double v)
{
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i])
        ++i;
    ++counts_[i];
    ++count_;
    sum_ += v;
}

std::int64_t
MetricsHistogram::bucketCount(std::size_t i) const
{
    QOSERVE_ASSERT(i < bounds_.size(), "histogram bucket out of range");
    std::int64_t total = 0;
    for (std::size_t b = 0; b <= i; ++b)
        total += counts_[b];
    return total;
}

std::int64_t &
MetricsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

double &
MetricsRegistry::gauge(const std::string &name)
{
    return gauges_[name];
}

MetricsHistogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, MetricsHistogram(std::move(bounds)))
                 .first;
    }
    return it->second;
}

namespace {

/** Bound rendered for a column name: `4` not `4.000000`. */
std::string
boundLabel(double bound)
{
    std::ostringstream oss;
    oss << std::setprecision(17) << bound;
    return oss.str();
}

} // namespace

void
MetricsRegistry::snapshot(SimTime now)
{
    Row row;
    row.time = now;
    for (const auto &entry : counters_)
        row.values[entry.first] = static_cast<double>(entry.second);
    for (const auto &entry : gauges_)
        row.values[entry.first] = entry.second;
    for (const auto &entry : histograms_) {
        const MetricsHistogram &h = entry.second;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            row.values[entry.first + "_le_" +
                       boundLabel(h.bounds()[i])] =
                static_cast<double>(h.bucketCount(i));
        }
        row.values[entry.first + "_le_inf"] =
            static_cast<double>(h.count());
        row.values[entry.first + "_sum"] = h.sum();
        row.values[entry.first + "_count"] =
            static_cast<double>(h.count());
    }
    rows_.push_back(std::move(row));
}

void
MetricsRegistry::writeCsv(std::ostream &out) const
{
    // Columns are the union of every row's keys (cells may register
    // mid-run), in name order — deterministic layout.
    std::set<std::string> columns;
    for (const Row &row : rows_) {
        for (const auto &entry : row.values)
            columns.insert(entry.first);
    }
    std::ostringstream fmt;
    fmt << std::setprecision(17);
    out << "time";
    for (const std::string &col : columns)
        out << ',' << col;
    out << '\n';
    for (const Row &row : rows_) {
        fmt.str("");
        fmt << row.time;
        for (const std::string &col : columns) {
            auto it = row.values.find(col);
            fmt << ',' << (it == row.values.end() ? 0.0 : it->second);
        }
        fmt << '\n';
        out << fmt.str();
    }
}

void
MetricsRegistry::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open metrics file for writing: ", path);
    writeCsv(out);
    if (!out)
        QOSERVE_FATAL("error writing metrics file: ", path);
}

MetricsSampler::MetricsSampler(EventQueue &eq, MetricsRegistry &registry,
                               SimDuration interval, SampleFn fn)
    : eq_(eq), registry_(registry), interval_(interval),
      fn_(std::move(fn))
{
    QOSERVE_ASSERT(interval_ > 0.0,
                   "metrics sampling interval must be positive, got ",
                   interval_);
    QOSERVE_ASSERT(fn_, "metrics sampler needs a sample callback");
}

void
MetricsSampler::start()
{
    eq_.scheduleDaemon(eq_.now(), [this]() { fire(); });
}

void
MetricsSampler::fire()
{
    fn_(registry_, eq_.now());
    registry_.snapshot(eq_.now());
    ++samples_;
    // Reschedule only while real (non-daemon) work is pending: the
    // cadence observes the simulation but must never extend it, and
    // daemon bookkeeping keeps two observers from propping each other
    // up forever.
    if (eq_.hasRealWork())
        eq_.scheduleDaemonAfter(interval_, [this]() { fire(); });
}

} // namespace qoserve
