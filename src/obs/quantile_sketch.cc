/**
 * @file
 * Quantile sketch implementation and bank CSV round trip.
 */

#include "obs/quantile_sketch.hh"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "simcore/logging.hh"

namespace qoserve {

QuantileSketch::QuantileSketch(double relative_error)
    : relativeError_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      logGamma_(std::log(gamma_)),
      min_(std::numeric_limits<double>::infinity()),
      maxFinite_(-std::numeric_limits<double>::infinity())
{
    QOSERVE_ASSERT(relative_error > 0.0 && relative_error < 1.0,
                   "sketch relative error must be in (0, 1), got ",
                   relative_error);
}

std::int32_t
QuantileSketch::keyFor(double v) const
{
    // ceil(log_gamma(v)): bucket k covers (gamma^(k-1), gamma^k].
    return static_cast<std::int32_t>(
        std::ceil(std::log(v) / logGamma_));
}

double
QuantileSketch::valueFor(std::int32_t key) const
{
    // Log-space midpoint 2*gamma^k/(gamma+1): both bucket endpoints
    // are within relativeError_ of it.
    return 2.0 * std::pow(gamma_, static_cast<double>(key)) /
           (gamma_ + 1.0);
}

void
QuantileSketch::insert(double v)
{
    QOSERVE_ASSERT(!std::isnan(v), "cannot insert NaN into a sketch");
    QOSERVE_ASSERT(v >= 0.0, "sketch values must be non-negative, got ",
                   v);
    ++count_;
    if (std::isinf(v)) {
        ++infCount_;
        return;
    }
    min_ = std::min(min_, v);
    maxFinite_ = std::max(maxFinite_, v);
    if (v < kMinIndexable) {
        ++zeroCount_;
        return;
    }
    ++buckets_[keyFor(v)];
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    QOSERVE_ASSERT(relativeError_ == other.relativeError_,
                   "cannot merge sketches with different relative "
                   "errors: ",
                   relativeError_, " vs ", other.relativeError_);
    for (const auto &[key, n] : other.buckets_)
        buckets_[key] += n;
    zeroCount_ += other.zeroCount_;
    infCount_ += other.infCount_;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    maxFinite_ = std::max(maxFinite_, other.maxFinite_);
}

double
QuantileSketch::max() const
{
    if (infCount_ > 0)
        return std::numeric_limits<double>::infinity();
    return maxFinite_;
}

double
QuantileSketch::quantile(double p) const
{
    QOSERVE_ASSERT(p >= 0.0 && p <= 100.0,
                   "percentile out of range: ", p);
    if (count_ == 0)
        return 0.0;
    // Target percentileSorted's lower bracket: the order statistic at
    // floor(p/100 * (n-1)), 0-based in ascending order.
    const auto rank = static_cast<std::uint64_t>(
        (p / 100.0) * static_cast<double>(count_ - 1));
    if (rank < zeroCount_)
        return 0.0;
    std::uint64_t seen = zeroCount_;
    for (const auto &[key, n] : buckets_) {
        seen += n;
        if (rank < seen) {
            // Clamp to the observed extremes: tightens the first and
            // last buckets without breaking the error bound.
            double est = valueFor(key);
            return std::min(std::max(est, min_), maxFinite_);
        }
    }
    return std::numeric_limits<double>::infinity();
}

bool
QuantileSketch::operator==(const QuantileSketch &o) const
{
    return relativeError_ == o.relativeError_ &&
           buckets_ == o.buckets_ && zeroCount_ == o.zeroCount_ &&
           infCount_ == o.infCount_ && count_ == o.count_ &&
           min_ == o.min_ && maxFinite_ == o.maxFinite_;
}

QuantileSketch
QuantileSketch::fromParts(double relative_error, std::uint64_t zero,
                          std::uint64_t inf, double min_value,
                          double max_finite,
                          std::map<std::int32_t, std::uint64_t>
                              bucket_counts)
{
    QuantileSketch sk(relative_error);
    sk.zeroCount_ = zero;
    sk.infCount_ = inf;
    sk.min_ = min_value;
    sk.maxFinite_ = max_finite;
    sk.count_ = zero + inf;
    for (const auto &[key, n] : bucket_counts) {
        QOSERVE_ASSERT(n > 0, "sketch bucket ", key,
                       " has a zero count");
        sk.count_ += n;
    }
    sk.buckets_ = std::move(bucket_counts);
    return sk;
}

void
writeSketchBankCsv(const std::map<std::string, QuantileSketch> &bank,
                   std::ostream &out)
{
    // max_digits10 so the doubles (alpha, min, max) round-trip
    // exactly; counts are integers and exact by construction.
    std::ostringstream fmt;
    fmt << std::setprecision(17);
    out << "sketch,field,value\n";
    for (const auto &[name, sk] : bank) {
        QOSERVE_ASSERT(!name.empty() &&
                           name.find(',') == std::string::npos &&
                           name.find('\n') == std::string::npos,
                       "sketch name unfit for CSV: '", name, "'");
        fmt.str("");
        fmt << name << ",alpha," << sk.relativeError() << '\n'
            << name << ",zero," << sk.zeroCount() << '\n'
            << name << ",inf," << sk.infCount() << '\n'
            << name << ",min," << sk.min() << '\n'
            << name << ",max_finite," << sk.maxFinite() << '\n';
        for (const auto &[key, n] : sk.buckets())
            fmt << name << ",b" << key << ',' << n << '\n';
        out << fmt.str();
    }
}

void
writeSketchBankCsvFile(const std::map<std::string, QuantileSketch> &bank,
                       const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open sketch file for writing: ", path);
    writeSketchBankCsv(bank, out);
    if (!out)
        QOSERVE_FATAL("error writing sketch file: ", path);
}

namespace {

double
parseSketchDouble(const std::string &field, std::size_t line_no)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(field, &pos);
    } catch (const std::exception &) {
        QOSERVE_FATAL("sketch CSV line ", line_no, ": not a number: '",
                      field, "'");
    }
    if (pos != field.size())
        QOSERVE_FATAL("sketch CSV line ", line_no,
                      ": trailing characters: '", field, "'");
    return value;
}

std::uint64_t
parseSketchCount(const std::string &field, std::size_t line_no)
{
    std::size_t pos = 0;
    std::uint64_t value = 0;
    try {
        value = std::stoull(field, &pos);
    } catch (const std::exception &) {
        QOSERVE_FATAL("sketch CSV line ", line_no,
                      ": not a count: '", field, "'");
    }
    if (pos != field.size())
        QOSERVE_FATAL("sketch CSV line ", line_no,
                      ": trailing characters: '", field, "'");
    return value;
}

std::int32_t
parseBucketKey(const std::string &field, std::size_t line_no)
{
    std::size_t pos = 0;
    long long value = 0;
    try {
        value = std::stoll(field, &pos);
    } catch (const std::exception &) {
        QOSERVE_FATAL("sketch CSV line ", line_no,
                      ": malformed bucket key: 'b", field, "'");
    }
    if (pos != field.size())
        QOSERVE_FATAL("sketch CSV line ", line_no,
                      ": malformed bucket key: 'b", field, "'");
    return static_cast<std::int32_t>(value);
}

/** State of the sketch currently being assembled. */
struct PendingSketch
{
    std::string name;
    bool sawAlpha = false;
    double alpha = QuantileSketch::kDefaultRelativeError;
    std::uint64_t zero = 0;
    std::uint64_t inf = 0;
    double minValue = std::numeric_limits<double>::infinity();
    double maxFinite = -std::numeric_limits<double>::infinity();
    std::map<std::int32_t, std::uint64_t> buckets;
};

void
finishPending(PendingSketch &pending, std::size_t line_no,
              std::map<std::string, QuantileSketch> &bank)
{
    if (pending.name.empty())
        return;
    if (!pending.sawAlpha)
        QOSERVE_FATAL("sketch CSV line ", line_no, ": sketch '",
                      pending.name, "' has no alpha row");
    bank.emplace(pending.name,
                 QuantileSketch::fromParts(
                     pending.alpha, pending.zero, pending.inf,
                     pending.minValue, pending.maxFinite,
                     std::move(pending.buckets)));
    pending = PendingSketch{};
}

} // namespace

std::map<std::string, QuantileSketch>
readSketchBankCsv(std::istream &in)
{
    std::map<std::string, QuantileSketch> bank;
    PendingSketch pending;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            QOSERVE_FATAL("sketch CSV line ", line_no, ": empty line");
        if (!saw_header) {
            if (line != "sketch,field,value")
                QOSERVE_FATAL("sketch CSV line ", line_no,
                              ": unexpected header: '", line, "'");
            saw_header = true;
            continue;
        }
        std::vector<std::string> fields;
        std::istringstream iss(line);
        std::string field;
        while (std::getline(iss, field, ','))
            fields.push_back(field);
        if (fields.size() != 3)
            QOSERVE_FATAL("sketch CSV line ", line_no,
                          ": expected 3 fields, got ", fields.size());
        const std::string &name = fields[0];
        const std::string &key = fields[1];
        const std::string &value = fields[2];
        if (name.empty())
            QOSERVE_FATAL("sketch CSV line ", line_no,
                          ": empty sketch name");
        if (name != pending.name) {
            finishPending(pending, line_no, bank);
            if (bank.count(name) != 0)
                QOSERVE_FATAL("sketch CSV line ", line_no,
                              ": sketch '", name,
                              "' appears twice (rows must be "
                              "contiguous per sketch)");
            pending.name = name;
        }
        if (key == "alpha") {
            pending.alpha = parseSketchDouble(value, line_no);
            pending.sawAlpha = true;
        } else if (key == "zero") {
            pending.zero = parseSketchCount(value, line_no);
        } else if (key == "inf") {
            pending.inf = parseSketchCount(value, line_no);
        } else if (key == "min") {
            pending.minValue = parseSketchDouble(value, line_no);
        } else if (key == "max_finite") {
            pending.maxFinite = parseSketchDouble(value, line_no);
        } else if (!key.empty() && key[0] == 'b') {
            std::int32_t bkey = parseBucketKey(key.substr(1), line_no);
            if (!pending.buckets.empty() &&
                bkey <= pending.buckets.rbegin()->first)
                QOSERVE_FATAL("sketch CSV line ", line_no,
                              ": bucket keys out of order");
            pending.buckets[bkey] = parseSketchCount(value, line_no);
        } else {
            QOSERVE_FATAL("sketch CSV line ", line_no,
                          ": unknown field: '", key, "'");
        }
    }
    if (!saw_header)
        QOSERVE_FATAL("sketch CSV is empty (missing header)");
    finishPending(pending, line_no, bank);
    return bank;
}

std::map<std::string, QuantileSketch>
readSketchBankCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        QOSERVE_FATAL("cannot open sketch file for reading: ", path);
    return readSketchBankCsv(in);
}

} // namespace qoserve
