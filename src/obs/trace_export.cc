/**
 * @file
 * Trace exporter implementation.
 */

#include "obs/trace_export.hh"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>

#include "simcore/logging.hh"

namespace qoserve {

const char *
tracePhaseName(TracePhase phase)
{
    switch (phase) {
      case TracePhase::Queued:
        return "queued";
      case TracePhase::Prefill:
        return "prefill-running";
      case TracePhase::Starved:
        return "prefill-starved";
      case TracePhase::Preempted:
        return "stalled-by-preemption";
      case TracePhase::Decode:
        return "decode";
      case TracePhase::Retry:
        return "retry";
    }
    QOSERVE_PANIC("unknown trace phase");
}

SimTime
RequestTimeline::lastSpanEnd() const
{
    return spans.empty() ? kTimeNever : spans.back().end;
}

namespace {

/** Open-span state of one request while folding the stream. */
struct SpanState
{
    bool open = false;
    TracePhase phase = TracePhase::Queued;
    int replica = -1;
    SimTime since;
};

/** What a request-lifecycle event does to the open span. */
struct Transition
{
    bool close = false;
    bool openNew = false;
    TracePhase phase = TracePhase::Queued;
    int replica = -1;
};

/**
 * The one shared state machine: every transition closes the open span
 * (if any) at the event time and opens the next phase at the same
 * instant, so a request's spans tile its served lifetime without
 * gaps or overlaps.
 */
Transition
transitionFor(const TraceEvent &ev, const SpanState &st)
{
    Transition tr;
    switch (ev.kind) {
      case TraceEventKind::Dispatch:
        tr = {st.open, true, TracePhase::Queued, ev.replica};
        break;
      case TraceEventKind::ChunkStart:
        tr = {st.open, true, TracePhase::Prefill, ev.replica};
        break;
      case TraceEventKind::ChunkEnd:
        tr = {st.open, true,
              ev.arg > 0 ? TracePhase::Starved : TracePhase::Decode,
              ev.replica};
        break;
      case TraceEventKind::Preempt:
        tr = {st.open, true, TracePhase::Preempted, ev.replica};
        break;
      case TraceEventKind::RetryQueued:
        // A re-dispatch that finds every replica down re-queues from
        // inside the retry phase; the span simply continues.
        if (!(st.open && st.phase == TracePhase::Retry))
            tr = {st.open, true, TracePhase::Retry, -1};
        break;
      case TraceEventKind::Finish:
      case TraceEventKind::RequestFailed:
      case TraceEventKind::RetryExhausted:
      case TraceEventKind::DeadlineCancel:
        tr.close = st.open;
        break;
      default:
        break; // Instants and replica-level events: no span change.
    }
    return tr;
}

} // namespace

std::map<RequestId, RequestTimeline>
buildRequestTimelines(const std::vector<TraceEvent> &events)
{
    std::map<RequestId, RequestTimeline> timelines;
    std::map<std::uint64_t, SpanState> state;

    for (const TraceEvent &ev : events) {
        if (ev.request == kNoTraceRequest)
            continue;
        RequestTimeline &tl = timelines[RequestId{ev.request}];
        switch (ev.kind) {
          case TraceEventKind::Arrival:
            tl.arrival = ev.time;
            break;
          case TraceEventKind::AdmissionReject:
            tl.rejected = true;
            break;
          case TraceEventKind::Finish:
            tl.finish = ev.time;
            break;
          case TraceEventKind::RetryExhausted:
            tl.abandoned = true;
            break;
          case TraceEventKind::DeadlineCancel:
            tl.cancelled = true;
            break;
          case TraceEventKind::BrownoutShed:
            tl.shed = true;
            break;
          case TraceEventKind::RequestFailed:
            ++tl.failures;
            break;
          case TraceEventKind::CacheHit:
            tl.cachedTokens += ev.arg;
            break;
          default:
            break;
        }
        SpanState &st = state[ev.request];
        Transition tr = transitionFor(ev, st);
        if (tr.close) {
            tl.spans.push_back(
                {st.phase, st.replica, st.since, ev.time});
            st.open = false;
        }
        if (tr.openNew)
            st = {true, tr.phase, tr.replica, ev.time};
    }

    // A truncated stream (tests, partial exports) can leave spans
    // open; close them at the stream's final timestamp.
    const SimTime last = events.empty() ? SimTime{} : events.back().time;
    for (auto &entry : state) {
        const SpanState &st = entry.second;
        if (st.open) {
            timelines[RequestId{entry.first}].spans.push_back(
                {st.phase, st.replica, st.since, last});
        }
    }
    return timelines;
}

namespace {

/** Microseconds with fixed 3-decimal formatting: byte-deterministic
 *  across platforms, sub-nanosecond resolution. */
std::string
fmtTs(SimTime t)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", t.seconds() * 1e6);
    return buf;
}

/** Fixed 3-decimal double (straggler factors and the like). */
std::string
fmtFixed3(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return buf;
}

/** Emits one JSON object per line with leading commas handled. */
class JsonLines
{
  public:
    explicit JsonLines(std::ostream &out) : out_(out) {}

    void
    line(const std::string &body)
    {
        if (!first_)
            out_ << ",\n";
        first_ = false;
        out_ << body;
    }

  private:
    std::ostream &out_;
    bool first_ = true;
};

int
pidOf(int replica)
{
    return replica < 0 ? 0 : replica + 1;
}

std::string
durEvent(const char *ph, const char *name, SimTime t, int pid,
         std::uint64_t tid, const std::string &args = "")
{
    std::string s = "{\"ph\":\"";
    s += ph;
    s += "\"";
    if (name != nullptr) {
        s += ",\"name\":\"";
        s += name;
        s += "\",\"cat\":\"qoserve\"";
    }
    s += ",\"ts\":" + fmtTs(t);
    s += ",\"pid\":" + std::to_string(pid);
    s += ",\"tid\":" + std::to_string(tid);
    if (!args.empty())
        s += ",\"args\":{" + args + "}";
    s += "}";
    return s;
}

std::string
instant(const char *name, SimTime t, int pid, std::uint64_t tid,
        const std::string &args = "")
{
    std::string s = "{\"ph\":\"i\",\"name\":\"";
    s += name;
    s += "\",\"cat\":\"qoserve\",\"s\":\"t\"";
    s += ",\"ts\":" + fmtTs(t);
    s += ",\"pid\":" + std::to_string(pid);
    s += ",\"tid\":" + std::to_string(tid);
    if (!args.empty())
        s += ",\"args\":{" + args + "}";
    s += "}";
    return s;
}

} // namespace

void
writePerfettoJson(const std::vector<TraceEvent> &events,
                  std::ostream &out)
{
    out << "{\"traceEvents\":[\n";
    JsonLines json(out);

    // Track metadata: pid 0 is the cluster front door; each replica
    // is a process whose tid 0 is the engine track. Replica pids are
    // emitted in sorted order — deterministic output.
    std::set<int> replicas;
    for (const TraceEvent &ev : events) {
        if (ev.replica >= 0)
            replicas.insert(ev.replica);
    }
    json.line("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
              "\"tid\":0,\"args\":{\"name\":\"cluster\"}}");
    for (int r : replicas) {
        json.line("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
                  std::to_string(pidOf(r)) +
                  ",\"tid\":0,\"args\":{\"name\":\"replica " +
                  std::to_string(r) + "\"}}");
        json.line("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
                  std::to_string(pidOf(r)) +
                  ",\"tid\":0,\"args\":{\"name\":\"engine\"}}");
    }

    std::map<std::uint64_t, SpanState> state;
    std::map<int, bool> engineOpen;

    auto requestTid = [](std::uint64_t request) {
        // tid 0 is the engine track, so request ids shift up by one.
        return request + 1;
    };

    for (const TraceEvent &ev : events) {
        const std::uint64_t tid =
            ev.request == kNoTraceRequest ? 0 : requestTid(ev.request);
        switch (ev.kind) {
          case TraceEventKind::IterStart:
            json.line(durEvent(
                "B", "iter", ev.time, pidOf(ev.replica), 0,
                "\"prefill_tokens\":" + std::to_string(ev.arg) +
                    ",\"decodes\":" +
                    std::to_string(static_cast<long long>(ev.value))));
            engineOpen[ev.replica] = true;
            break;
          case TraceEventKind::IterEnd:
            if (engineOpen[ev.replica]) {
                json.line(durEvent("E", nullptr, ev.time,
                                   pidOf(ev.replica), 0));
                engineOpen[ev.replica] = false;
            }
            break;
          case TraceEventKind::Arrival:
            json.line(instant("arrival", ev.time, 0, tid));
            break;
          case TraceEventKind::AdmissionReject:
            json.line(instant("admission-reject", ev.time, 0, tid));
            break;
          case TraceEventKind::CacheHit:
            json.line(instant("cache-hit", ev.time, pidOf(ev.replica),
                              tid,
                              "\"tokens\":" + std::to_string(ev.arg)));
            break;
          case TraceEventKind::CacheEvict:
            json.line(instant("cache-evict", ev.time,
                              pidOf(ev.replica), 0,
                              "\"blocks\":" + std::to_string(ev.arg)));
            break;
          case TraceEventKind::Relegate:
            json.line(
                instant("relegate", ev.time, pidOf(ev.replica), tid));
            break;
          case TraceEventKind::Crash:
            json.line(instant("crash", ev.time, pidOf(ev.replica), 0));
            break;
          case TraceEventKind::Recover:
            json.line(
                instant("recover", ev.time, pidOf(ev.replica), 0));
            break;
          case TraceEventKind::StragglerStart:
            json.line(instant("straggler-start", ev.time,
                              pidOf(ev.replica), 0,
                              "\"factor\":" + fmtFixed3(ev.value)));
            break;
          case TraceEventKind::StragglerEnd:
            json.line(instant("straggler-end", ev.time,
                              pidOf(ev.replica), 0));
            break;
          case TraceEventKind::ZoneOutage:
            json.line(instant("zone-outage", ev.time, 0, 0,
                              "\"zone\":" + std::to_string(ev.arg)));
            break;
          case TraceEventKind::ZoneRestore:
            json.line(instant("zone-restore", ev.time, 0, 0,
                              "\"zone\":" + std::to_string(ev.arg)));
            break;
          case TraceEventKind::PartitionStart:
            json.line(instant("partition-start", ev.time, 0, 0,
                              "\"blinded\":" + std::to_string(ev.arg)));
            break;
          case TraceEventKind::PartitionEnd:
            json.line(instant("partition-end", ev.time, 0, 0));
            break;
          case TraceEventKind::BreakerOpen:
            json.line(instant("breaker-open", ev.time,
                              pidOf(ev.replica), 0,
                              "\"failures\":" + std::to_string(ev.arg)));
            break;
          case TraceEventKind::BreakerClose:
            json.line(instant("breaker-close", ev.time,
                              pidOf(ev.replica), 0));
            break;
          case TraceEventKind::BrownoutStep:
            json.line(instant("brownout-step", ev.time, 0, 0,
                              "\"level\":" + std::to_string(ev.arg)));
            break;
          case TraceEventKind::AlertRaised:
            json.line(instant("slo-alert-raised", ev.time, 0, 0,
                              "\"tier\":" + std::to_string(ev.arg) +
                                  ",\"burn\":" + fmtFixed3(ev.value)));
            break;
          case TraceEventKind::AlertCleared:
            json.line(instant("slo-alert-cleared", ev.time, 0, 0,
                              "\"tier\":" + std::to_string(ev.arg)));
            break;
          default: {
            if (ev.request == kNoTraceRequest)
                break;
            SpanState &st = state[ev.request];
            Transition tr = transitionFor(ev, st);
            if (tr.close) {
                json.line(durEvent("E", nullptr, ev.time,
                                   pidOf(st.replica), tid));
                st.open = false;
            }
            if (tr.openNew) {
                std::string args;
                if (ev.kind == TraceEventKind::ChunkStart)
                    args = "\"tokens\":" + std::to_string(ev.arg);
                json.line(durEvent("B", tracePhaseName(tr.phase),
                                   ev.time, pidOf(tr.replica), tid,
                                   args));
                st = {true, tr.phase, tr.replica, ev.time};
            }
            if (ev.kind == TraceEventKind::Finish)
                json.line(instant("finish", ev.time,
                                  pidOf(ev.replica), tid));
            else if (ev.kind == TraceEventKind::RequestFailed)
                json.line(instant("failed", ev.time,
                                  pidOf(ev.replica), tid));
            else if (ev.kind == TraceEventKind::RetryExhausted)
                json.line(instant("abandoned", ev.time, 0, tid));
            else if (ev.kind == TraceEventKind::DeadlineCancel)
                json.line(instant("deadline-cancelled", ev.time, 0,
                                  tid));
            else if (ev.kind == TraceEventKind::BrownoutShed)
                json.line(instant("brownout-shed", ev.time, 0, tid));
            break;
          }
        }
    }

    // Close anything a truncated stream left open so B/E pairs always
    // balance (both maps iterate in sorted key order).
    const SimTime last = events.empty() ? SimTime{} : events.back().time;
    for (const auto &entry : state) {
        if (entry.second.open) {
            json.line(durEvent("E", nullptr, last,
                               pidOf(entry.second.replica),
                               requestTid(entry.first)));
        }
    }
    for (const auto &entry : engineOpen) {
        if (entry.second)
            json.line(durEvent("E", nullptr, last, pidOf(entry.first),
                               0));
    }

    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
writePerfettoJsonFile(const std::vector<TraceEvent> &events,
                      const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open trace file for writing: ", path);
    writePerfettoJson(events, out);
    if (!out)
        QOSERVE_FATAL("error writing trace file: ", path);
}

} // namespace qoserve
