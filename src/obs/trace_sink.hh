/**
 * @file
 * Trace sink and the narrow emission handle components hold.
 *
 * A TraceSink is an append-only, time-ordered store of TraceEvents.
 * Components never talk to the sink directly: each holds a TraceScope
 * — a (sink, clock, replica) triple — and calls its emit() helper.
 * With no sink installed the scope is inert and emission sites cost
 * one pointer compare, so tracing is zero-overhead when disabled.
 */

#ifndef QOSERVE_OBS_TRACE_SINK_HH
#define QOSERVE_OBS_TRACE_SINK_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/units.hh"
#include "obs/trace_event.hh"
#include "simcore/event_queue.hh"

namespace qoserve {

/**
 * Append-only recorder of lifecycle events.
 */
class TraceSink
{
  public:
    TraceSink() = default;

    /** Append one event. Events must arrive in non-decreasing
     *  simulation time (panics otherwise — the exporters depend on
     *  stream order). */
    void emit(const TraceEvent &ev);

    /** All events, in emission order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    /**
     * Write the stream as flat CSV:
     * event,time,request,replica,arg,value. Times and values are
     * printed with max_digits10 precision so a read-back is exact;
     * `request` is -1 for events not tied to a request.
     */
    void writeCsv(std::ostream &out) const;

    /** Write the CSV to a file (fatal on error). */
    void writeCsvFile(const std::string &path) const;

  private:
    std::vector<TraceEvent> events_;
};

/**
 * Parse a trace CSV written by TraceSink::writeCsv. Fatal (with the
 * 1-based line number) on malformed headers, rows, or unknown kinds.
 */
std::vector<TraceEvent> readTraceCsv(std::istream &in);

/** Read a trace CSV from a file (fatal on error). */
std::vector<TraceEvent> readTraceCsvFile(const std::string &path);

/**
 * Per-component emission handle: the sink, the simulation clock that
 * timestamps events, and the replica index stamped on them (-1 for
 * cluster-level scopes). Copyable; components hold it by value or
 * point at a replica-owned instance.
 */
struct TraceScope
{
    TraceSink *sink = nullptr;
    const EventQueue *clock = nullptr;
    int replica = -1;

    /** True when a sink is installed (emission sites guard on this). */
    bool on() const { return sink != nullptr; }

    /** Emit at the current simulation time on this scope's replica. */
    void
    emit(TraceEventKind kind, std::uint64_t request = kNoTraceRequest,
         std::int64_t arg = 0, double value = 0.0) const
    {
        if (sink == nullptr)
            return;
        sink->emit({kind, clock->now(), request, replica, arg, value});
    }

    /** Emit on behalf of a specific replica (the cluster front door
     *  stamping a dispatch with its target). */
    void
    emitOn(ReplicaId replica_idx, TraceEventKind kind,
           std::uint64_t request = kNoTraceRequest, std::int64_t arg = 0,
           double value = 0.0) const
    {
        if (sink == nullptr)
            return;
        sink->emit(
            {kind, clock->now(), request, replica_idx.value(), arg,
             value});
    }
};

} // namespace qoserve

#endif // QOSERVE_OBS_TRACE_SINK_HH
