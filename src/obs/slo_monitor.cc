/**
 * @file
 * Burn-rate monitor implementation and alert CSV round trip.
 */

#include "obs/slo_monitor.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "simcore/logging.hh"

namespace qoserve {

SloMonitor::SloMonitor(EventQueue &eq, TraceScope scope,
                       SloMonitorConfig cfg)
    : eq_(eq), scope_(scope), cfg_(cfg)
{
    QOSERVE_ASSERT(cfg_.budget > 0.0 && cfg_.budget <= 1.0,
                   "SLO budget must be in (0, 1], got ", cfg_.budget);
    QOSERVE_ASSERT(cfg_.burn > 0.0, "burn threshold must be positive, "
                   "got ", cfg_.burn);
    QOSERVE_ASSERT(cfg_.shortWindow > 0.0 && cfg_.longWindow > 0.0,
                   "alert windows must be positive, got ",
                   cfg_.shortWindow, " / ", cfg_.longWindow);
    QOSERVE_ASSERT(cfg_.shortWindow <= cfg_.longWindow,
                   "short window (", cfg_.shortWindow,
                   ") exceeds long window (", cfg_.longWindow, ")");
    QOSERVE_ASSERT(cfg_.interval > 0.0,
                   "alert interval must be positive, got ",
                   cfg_.interval);
}

void
SloMonitor::observe(int tier, SimTime when, bool violated)
{
    QOSERVE_ASSERT(when >= lastObserved_, "SLO observation at ", when,
                   " precedes the previous one at ", lastObserved_);
    lastObserved_ = when;
    tiers_[tier].window.emplace_back(when, violated);
}

void
SloMonitor::start()
{
    eq_.scheduleDaemon(eq_.now(), [this] { tick(); });
}

double
SloMonitor::burnOver(const TierState &st, SimTime now,
                     SimDuration span) const
{
    const SimTime cutoff = now - span;
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
    // The deque is time-ordered; everything at or before the cutoff
    // has already been pruned from the long window, so only the short
    // window needs the per-entry time check.
    for (const auto &[when, violated] : st.window) {
        if (when <= cutoff)
            continue;
        ++total;
        if (violated)
            ++bad;
    }
    if (total == 0)
        return 0.0;
    const double rate =
        static_cast<double>(bad) / static_cast<double>(total);
    return rate / cfg_.budget;
}

void
SloMonitor::tick()
{
    ++ticks_;
    const SimTime now = eq_.now();
    for (auto &[tier, st] : tiers_) {
        const SimTime horizon = now - cfg_.longWindow;
        while (!st.window.empty() && st.window.front().first <= horizon)
            st.window.pop_front();
        const double shortBurn = burnOver(st, now, cfg_.shortWindow);
        const double longBurn = burnOver(st, now, cfg_.longWindow);
        st.lastShortBurn = shortBurn;
        const bool firing =
            shortBurn >= cfg_.burn && longBurn >= cfg_.burn;
        if (firing && !st.active) {
            st.active = true;
            st.openAlert = alerts_.size();
            alerts_.push_back({tier, now, kTimeNever, shortBurn});
            scope_.emit(TraceEventKind::AlertRaised, kNoTraceRequest,
                        tier, shortBurn);
        } else if (st.active && firing) {
            SloAlert &open = alerts_[st.openAlert];
            open.peakBurn = std::max(open.peakBurn, shortBurn);
        } else if (st.active && !firing) {
            st.active = false;
            alerts_[st.openAlert].cleared = now;
            scope_.emit(TraceEventKind::AlertCleared, kNoTraceRequest,
                        tier, shortBurn);
        }
    }
    // Observer cadence: reschedule only while the simulation still has
    // real (non-daemon) work, so the monitor never keeps a drained
    // run alive.
    if (eq_.hasRealWork())
        eq_.scheduleDaemonAfter(cfg_.interval, [this] { tick(); });
}

std::vector<int>
SloMonitor::activeTiers() const
{
    std::vector<int> out;
    for (const auto &[tier, st] : tiers_)
        if (st.active)
            out.push_back(tier);
    return out;
}

double
SloMonitor::shortBurn(int tier) const
{
    auto it = tiers_.find(tier);
    return it == tiers_.end() ? 0.0 : it->second.lastShortBurn;
}

void
writeAlertsCsv(const std::vector<SloAlert> &alerts, std::ostream &out)
{
    std::ostringstream fmt;
    fmt << std::setprecision(17);
    out << "tier,raised,cleared,peak_burn\n";
    for (const SloAlert &a : alerts) {
        fmt.str("");
        fmt << a.tier << ',' << a.raised << ',' << a.cleared << ','
            << a.peakBurn << '\n';
        out << fmt.str();
    }
}

void
writeAlertsCsvFile(const std::vector<SloAlert> &alerts,
                   const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open alert file for writing: ", path);
    writeAlertsCsv(alerts, out);
    if (!out)
        QOSERVE_FATAL("error writing alert file: ", path);
}

namespace {

double
parseAlertDouble(const std::string &field, std::size_t line_no)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(field, &pos);
    } catch (const std::exception &) {
        QOSERVE_FATAL("alert CSV line ", line_no, ": not a number: '",
                      field, "'");
    }
    if (pos != field.size())
        QOSERVE_FATAL("alert CSV line ", line_no,
                      ": trailing characters: '", field, "'");
    return value;
}

} // namespace

std::vector<SloAlert>
readAlertsCsv(std::istream &in)
{
    std::vector<SloAlert> alerts;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            QOSERVE_FATAL("alert CSV line ", line_no, ": empty line");
        if (!saw_header) {
            if (line != "tier,raised,cleared,peak_burn")
                QOSERVE_FATAL("alert CSV line ", line_no,
                              ": unexpected header: '", line, "'");
            saw_header = true;
            continue;
        }
        std::vector<std::string> fields;
        std::istringstream iss(line);
        std::string field;
        while (std::getline(iss, field, ','))
            fields.push_back(field);
        if (fields.size() != 4)
            QOSERVE_FATAL("alert CSV line ", line_no,
                          ": expected 4 fields, got ", fields.size());
        SloAlert a;
        a.tier = static_cast<int>(parseAlertDouble(fields[0], line_no));
        a.raised = SimTime{parseAlertDouble(fields[1], line_no)};
        a.cleared = SimTime{parseAlertDouble(fields[2], line_no)};
        a.peakBurn = parseAlertDouble(fields[3], line_no);
        alerts.push_back(a);
    }
    if (!saw_header)
        QOSERVE_FATAL("alert CSV is empty (missing header)");
    return alerts;
}

std::vector<SloAlert>
readAlertsCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        QOSERVE_FATAL("cannot open alert file for reading: ", path);
    return readAlertsCsv(in);
}

} // namespace qoserve
