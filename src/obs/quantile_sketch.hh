/**
 * @file
 * Mergeable log-bucketed quantile sketch (DESIGN.md §14).
 *
 * A DDSketch-style summary of a non-negative sample: values land in
 * geometrically-spaced buckets keyed by ceil(log_gamma(v)), so any
 * quantile estimate is within a configured *relative* error of the
 * order statistic it targets, at O(log(max/min)) space independent of
 * the sample size. The entire state — integer bucket counts plus
 * min/max — is merge-exact: merging sketches adds counts, which
 * commutes, so a merge tree of any shape over any partition of a
 * sample yields bitwise-identical buckets (and therefore bitwise-
 * identical quantiles). That makes the sketch the streaming,
 * `--jobs`-invariant alternative to retaining and sorting full
 * latency vectors in rolling/windowed contexts.
 *
 * Infinite values (the +inf latencies of never-served requests) are
 * counted in a dedicated overflow bucket so sketch quantiles agree
 * with percentileSorted over vectors that contain +inf; values below
 * the indexable floor land in a zero bucket and report as 0.
 */

#ifndef QOSERVE_OBS_QUANTILE_SKETCH_HH
#define QOSERVE_OBS_QUANTILE_SKETCH_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace qoserve {

/**
 * Streaming quantile summary with a bounded relative error.
 */
class QuantileSketch
{
  public:
    /** Default accuracy: quantiles within 1% of the targeted order
     *  statistic. */
    static constexpr double kDefaultRelativeError = 0.01;

    /** Values below this floor are indistinguishable from zero. */
    static constexpr double kMinIndexable = 1e-12;

    /**
     * @param relative_error Maximum relative error of quantile
     *        estimates, in (0, 1) (panics otherwise).
     */
    explicit QuantileSketch(
        double relative_error = kDefaultRelativeError);

    /** Configured relative-error bound. */
    double relativeError() const { return relativeError_; }

    /**
     * Record one observation. @p v must be non-negative and not NaN
     * (panics otherwise); +inf is counted in the overflow bucket,
     * values below kMinIndexable in the zero bucket.
     */
    void insert(double v);

    /**
     * Fold @p other into this sketch. Both must share the same
     * relative error (panics otherwise). Exact: bucket counts add,
     * min/max combine — the merged state is independent of merge
     * order and grouping, bit for bit.
     */
    void merge(const QuantileSketch &other);

    /** Observations recorded (including zero and +inf ones). */
    std::uint64_t count() const { return count_; }

    /** Observations that were +inf. */
    std::uint64_t infCount() const { return infCount_; }

    /** Smallest finite observation (+inf when none). */
    double min() const { return min_; }

    /** Largest observation (-inf when empty; +inf once an infinite
     *  value was recorded). */
    double max() const;

    /** Largest *finite* observation (-inf when none) — the raw
     *  serialized state behind max(). */
    double maxFinite() const { return maxFinite_; }

    /**
     * Estimate the @p p-th percentile, p in [0, 100] (panics
     * otherwise; 0 on an empty sketch — the percentileSorted
     * sentinel).
     *
     * The estimate targets the order statistic at index
     * floor(p/100 * (count-1)) — percentileSorted's lower bracket —
     * and is within relativeError() of it: at most (1+e) times and
     * at least (1-e) times its value. Ranks that fall in the zero
     * bucket return 0, ranks in the overflow bucket +inf.
     */
    double quantile(double p) const;

    /** True when no observation was recorded. */
    bool empty() const { return count_ == 0; }

    /** Bucket map (key -> count), exposed for serialization and
     *  merge tests. */
    const std::map<std::int32_t, std::uint64_t> &buckets() const
    {
        return buckets_;
    }

    /** Observations in the zero bucket. */
    std::uint64_t zeroCount() const { return zeroCount_; }

    /** Exact state equality (accuracy, buckets, counts, min/max). */
    bool operator==(const QuantileSketch &o) const;

    /**
     * Rebuild a sketch from serialized state (the bank CSV reader's
     * constructor). @p bucket_counts must hold positive counts;
     * @p zero and @p inf are the zero/overflow bucket counts.
     */
    static QuantileSketch
    fromParts(double relative_error, std::uint64_t zero,
              std::uint64_t inf, double min_value, double max_finite,
              std::map<std::int32_t, std::uint64_t> bucket_counts);

  private:
    /** Bucket key of a finite value >= kMinIndexable. */
    std::int32_t keyFor(double v) const;

    /** Representative value of bucket @p key (log-space midpoint:
     *  relative error <= relativeError_ across the bucket). */
    double valueFor(std::int32_t key) const;

    double relativeError_;
    double gamma_;    ///< Bucket growth factor (1+e)/(1-e).
    double logGamma_; ///< Cached ln(gamma).

    std::map<std::int32_t, std::uint64_t> buckets_;
    std::uint64_t zeroCount_ = 0;
    std::uint64_t infCount_ = 0;
    std::uint64_t count_ = 0;
    double min_;
    double maxFinite_;
};

/**
 * Write a name-keyed bank of sketches as CSV: header
 * `sketch,field,value`, then per sketch (name order) its meta rows
 * (relative error, zero/inf counts, min/max — max_digits10, so the
 * read-back is exact) followed by one `b<key>` row per bucket in key
 * order. Deterministic bytes for deterministic state.
 */
void writeSketchBankCsv(
    const std::map<std::string, QuantileSketch> &bank,
    std::ostream &out);

/** Write the bank CSV to a file (fatal on error). */
void writeSketchBankCsvFile(
    const std::map<std::string, QuantileSketch> &bank,
    const std::string &path);

/**
 * Parse a sketch-bank CSV written by writeSketchBankCsv. Fatal (with
 * the 1-based line number) on malformed headers, rows, fields or
 * out-of-order buckets. The round trip is exact.
 */
std::map<std::string, QuantileSketch> readSketchBankCsv(std::istream &in);

/** Read a bank CSV from a file (fatal on error). */
std::map<std::string, QuantileSketch>
readSketchBankCsvFile(const std::string &path);

} // namespace qoserve

#endif // QOSERVE_OBS_QUANTILE_SKETCH_HH
