/**
 * @file
 * Run comparison implementation: diff computation and renderers.
 */

#include "obs/run_diff.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <set>
#include <sstream>

#include "simcore/logging.hh"

namespace qoserve {

namespace {

/**
 * A quantile is regressed only when it is worse beyond what the two
 * sketches' error bounds can explain: the lowest value the after
 * estimate may represent must exceed the highest value the before
 * estimate may represent by more than the tolerance.
 */
bool
quantileRegressed(double before, double after, double err_before,
                  double err_after, double tolerance)
{
    if (std::isinf(after) && !std::isinf(before))
        return true; // Finite tail became unbounded.
    if (std::isinf(before))
        return false; // Cannot get worse than +inf.
    if (before <= 0.0)
        return after > 0.0;
    const double worstBefore = before * (1.0 + err_before);
    const double bestAfter = after * (1.0 - err_after);
    return bestAfter > worstBefore * (1.0 + tolerance);
}

/** Per-tier alert rollup: episodes, active seconds, never-cleared. */
struct AlertRollup
{
    std::uint64_t count = 0;
    double seconds = 0.0;
    std::uint64_t uncleared = 0;
};

std::map<int, AlertRollup>
rollupAlerts(const std::vector<SloAlert> &alerts)
{
    std::map<int, AlertRollup> out;
    for (const SloAlert &a : alerts) {
        AlertRollup &r = out[a.tier];
        ++r.count;
        if (a.cleared == kTimeNever)
            ++r.uncleared;
        else
            r.seconds += a.cleared - a.raised;
    }
    return out;
}

const char *
verdict(bool regressed)
{
    return regressed ? "REGRESSED" : "ok";
}

/** Escape &, <, > for HTML text nodes. */
std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&':
            out += "&amp;";
            break;
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace

RunDiff
diffRuns(const RunArtifacts &before, const RunArtifacts &after,
         const RunDiffConfig &cfg)
{
    QOSERVE_ASSERT(cfg.latencyTolerance >= 0.0 &&
                       cfg.shareTolerance >= 0.0,
                   "diff tolerances must be non-negative");
    RunDiff diff;
    diff.labelBefore = before.label.empty() ? "before" : before.label;
    diff.labelAfter = after.label.empty() ? "after" : after.label;

    // Sketches: union of names, name order.
    std::set<std::string> names;
    for (const auto &[name, sk] : before.sketches)
        names.insert(name);
    for (const auto &[name, sk] : after.sketches)
        names.insert(name);
    for (const std::string &name : names) {
        SketchDiff sd;
        sd.name = name;
        auto ita = before.sketches.find(name);
        auto itb = after.sketches.find(name);
        sd.onlyBefore = itb == after.sketches.end();
        sd.onlyAfter = ita == before.sketches.end();
        if (ita != before.sketches.end())
            sd.countBefore = ita->second.count();
        if (itb != after.sketches.end())
            sd.countAfter = itb->second.count();
        if (!sd.onlyBefore && !sd.onlyAfter) {
            for (double pct : cfg.percentiles) {
                QuantileDelta qd;
                qd.pct = pct;
                qd.before = ita->second.quantile(pct);
                qd.after = itb->second.quantile(pct);
                qd.regressed = quantileRegressed(
                    qd.before, qd.after,
                    ita->second.relativeError(),
                    itb->second.relativeError(),
                    cfg.latencyTolerance);
                sd.regressed = sd.regressed || qd.regressed;
                sd.deltas.push_back(qd);
            }
        }
        diff.regressed = diff.regressed || sd.regressed;
        diff.sketches.push_back(sd);
    }

    // Alerts: union of tiers, tier order.
    auto rollA = rollupAlerts(before.alerts);
    auto rollB = rollupAlerts(after.alerts);
    std::set<int> tiers;
    for (const auto &[tier, r] : rollA)
        tiers.insert(tier);
    for (const auto &[tier, r] : rollB)
        tiers.insert(tier);
    for (int tier : tiers) {
        AlertDiff ad;
        ad.tier = tier;
        if (auto it = rollA.find(tier); it != rollA.end()) {
            ad.countBefore = it->second.count;
            ad.secondsBefore = it->second.seconds;
            ad.unclearedBefore = it->second.uncleared;
        }
        if (auto it = rollB.find(tier); it != rollB.end()) {
            ad.countAfter = it->second.count;
            ad.secondsAfter = it->second.seconds;
            ad.unclearedAfter = it->second.uncleared;
        }
        ad.regressed =
            ad.countAfter > ad.countBefore ||
            ad.unclearedAfter > ad.unclearedBefore ||
            ad.secondsAfter >
                ad.secondsBefore * (1.0 + cfg.latencyTolerance);
        diff.regressed = diff.regressed || ad.regressed;
        diff.alerts.push_back(ad);
    }

    // Critical-path cells: union of (phase, replica), map order. A
    // cell regresses when its dominant share *grows* past tolerance —
    // the bottleneck concentrating, not merely moving.
    if (before.hasCritical && after.hasCritical) {
        std::set<std::pair<int, int>> cells;
        for (const auto &[key, e] : before.critical.cells)
            cells.insert(key);
        for (const auto &[key, e] : after.critical.cells)
            cells.insert(key);
        for (const auto &key : cells) {
            CriticalDiff cd;
            cd.phase = key.first;
            cd.replica = key.second;
            if (before.critical.requests > 0) {
                auto it = before.critical.cells.find(key);
                if (it != before.critical.cells.end())
                    cd.shareBefore =
                        static_cast<double>(
                            it->second.dominantRequests) /
                        static_cast<double>(before.critical.requests);
            }
            if (after.critical.requests > 0) {
                auto it = after.critical.cells.find(key);
                if (it != after.critical.cells.end())
                    cd.shareAfter =
                        static_cast<double>(
                            it->second.dominantRequests) /
                        static_cast<double>(after.critical.requests);
            }
            cd.regressed = cd.shareAfter - cd.shareBefore >
                           cfg.shareTolerance;
            diff.regressed = diff.regressed || cd.regressed;
            diff.critical.push_back(cd);
        }
    }

    return diff;
}

void
writeDiffText(const RunDiff &diff, std::ostream &out)
{
    out << "run diff: " << diff.labelBefore << " -> "
        << diff.labelAfter << "  ["
        << (diff.regressed ? "REGRESSED" : "clean") << "]\n";

    if (!diff.sketches.empty()) {
        out << "\nlatency sketches:\n";
        out << "  " << std::left << std::setw(28) << "sketch"
            << std::right << std::setw(6) << "pct" << std::setw(14)
            << diff.labelBefore << std::setw(14) << diff.labelAfter
            << "  verdict\n";
        std::ostringstream fmt;
        fmt << std::setprecision(6);
        for (const SketchDiff &sd : diff.sketches) {
            if (sd.onlyBefore || sd.onlyAfter) {
                out << "  " << std::left << std::setw(28) << sd.name
                    << std::right << "  only in "
                    << (sd.onlyBefore ? diff.labelBefore
                                      : diff.labelAfter)
                    << "\n";
                continue;
            }
            for (const QuantileDelta &qd : sd.deltas) {
                fmt.str("");
                fmt << "  " << std::left << std::setw(28) << sd.name
                    << std::right << "p" << std::setw(5) << qd.pct
                    << std::setw(14) << qd.before << std::setw(14)
                    << qd.after << "  " << verdict(qd.regressed)
                    << '\n';
                out << fmt.str();
            }
        }
    }

    if (!diff.alerts.empty()) {
        out << "\nSLO alerts (episodes / active seconds / "
               "uncleared):\n";
        std::ostringstream fmt;
        fmt << std::setprecision(6);
        for (const AlertDiff &ad : diff.alerts) {
            fmt.str("");
            fmt << "  tier " << ad.tier << ": " << ad.countBefore
                << " / " << ad.secondsBefore << " / "
                << ad.unclearedBefore << "  ->  " << ad.countAfter
                << " / " << ad.secondsAfter << " / "
                << ad.unclearedAfter << "  " << verdict(ad.regressed)
                << '\n';
            out << fmt.str();
        }
    }

    if (!diff.critical.empty()) {
        out << "\ncritical-path dominant shares:\n";
        std::ostringstream fmt;
        fmt << std::setprecision(4);
        for (const CriticalDiff &cd : diff.critical) {
            fmt.str("");
            fmt << "  " << std::left << std::setw(12)
                << tracePhaseName(static_cast<TracePhase>(cd.phase))
                << std::right;
            if (cd.replica >= 0)
                fmt << " replica " << std::setw(3) << cd.replica;
            else
                fmt << " cluster    ";
            fmt << "  " << 100.0 * cd.shareBefore << "% -> "
                << 100.0 * cd.shareAfter << "%  "
                << verdict(cd.regressed) << '\n';
            out << fmt.str();
        }
    }
}

namespace {

void
htmlRowClass(std::ostream &out, bool regressed)
{
    out << (regressed ? "<tr class=\"bad\">" : "<tr>");
}

} // namespace

void
writeDiffHtml(const RunDiff &diff, std::ostream &out)
{
    std::ostringstream fmt;
    fmt << std::setprecision(6);
    out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
        << "<title>qoserve run diff</title>\n"
        << "<style>\n"
        << "body{font-family:monospace;margin:2em;}\n"
        << "table{border-collapse:collapse;margin:1em 0;}\n"
        << "th,td{border:1px solid #999;padding:4px 10px;"
        << "text-align:right;}\n"
        << "th{background:#eee;}td.name{text-align:left;}\n"
        << "tr.bad{background:#fdd;}\n"
        << ".verdict-bad{color:#a00;font-weight:bold;}\n"
        << ".verdict-ok{color:#080;}\n"
        << "</style></head><body>\n";
    out << "<h1>run diff: " << htmlEscape(diff.labelBefore)
        << " &rarr; " << htmlEscape(diff.labelAfter) << "</h1>\n";
    out << "<p class=\""
        << (diff.regressed ? "verdict-bad" : "verdict-ok") << "\">"
        << (diff.regressed ? "REGRESSED" : "clean") << "</p>\n";

    if (!diff.sketches.empty()) {
        out << "<h2>latency sketches</h2>\n<table>\n<tr>"
            << "<th>sketch</th><th>pct</th><th>"
            << htmlEscape(diff.labelBefore) << "</th><th>"
            << htmlEscape(diff.labelAfter)
            << "</th><th>verdict</th></tr>\n";
        for (const SketchDiff &sd : diff.sketches) {
            if (sd.onlyBefore || sd.onlyAfter) {
                out << "<tr><td class=\"name\">"
                    << htmlEscape(sd.name)
                    << "</td><td colspan=\"4\">only in "
                    << htmlEscape(sd.onlyBefore ? diff.labelBefore
                                                : diff.labelAfter)
                    << "</td></tr>\n";
                continue;
            }
            for (const QuantileDelta &qd : sd.deltas) {
                htmlRowClass(out, qd.regressed);
                fmt.str("");
                fmt << "<td class=\"name\">" << htmlEscape(sd.name)
                    << "</td><td>p" << qd.pct << "</td><td>"
                    << qd.before << "</td><td>" << qd.after
                    << "</td><td>" << verdict(qd.regressed)
                    << "</td></tr>\n";
                out << fmt.str();
            }
        }
        out << "</table>\n";
    }

    if (!diff.alerts.empty()) {
        out << "<h2>SLO alerts</h2>\n<table>\n<tr><th>tier</th>"
            << "<th>episodes</th><th>active s</th><th>uncleared</th>"
            << "<th>episodes</th><th>active s</th><th>uncleared</th>"
            << "<th>verdict</th></tr>\n";
        for (const AlertDiff &ad : diff.alerts) {
            htmlRowClass(out, ad.regressed);
            fmt.str("");
            fmt << "<td>" << ad.tier << "</td><td>" << ad.countBefore
                << "</td><td>" << ad.secondsBefore << "</td><td>"
                << ad.unclearedBefore << "</td><td>" << ad.countAfter
                << "</td><td>" << ad.secondsAfter << "</td><td>"
                << ad.unclearedAfter << "</td><td>"
                << verdict(ad.regressed) << "</td></tr>\n";
            out << fmt.str();
        }
        out << "</table>\n";
    }

    if (!diff.critical.empty()) {
        out << "<h2>critical-path dominant shares</h2>\n<table>\n"
            << "<tr><th>phase</th><th>replica</th><th>"
            << htmlEscape(diff.labelBefore) << "</th><th>"
            << htmlEscape(diff.labelAfter)
            << "</th><th>verdict</th></tr>\n";
        for (const CriticalDiff &cd : diff.critical) {
            htmlRowClass(out, cd.regressed);
            fmt.str("");
            fmt << "<td class=\"name\">"
                << tracePhaseName(static_cast<TracePhase>(cd.phase))
                << "</td><td>";
            if (cd.replica >= 0)
                fmt << cd.replica;
            else
                fmt << "cluster";
            fmt << "</td><td>" << 100.0 * cd.shareBefore
                << "%</td><td>" << 100.0 * cd.shareAfter
                << "%</td><td>" << verdict(cd.regressed)
                << "</td></tr>\n";
            out << fmt.str();
        }
        out << "</table>\n";
    }

    out << "</body></html>\n";
}

void
writeDiffHtmlFile(const RunDiff &diff, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open HTML report for writing: ", path);
    writeDiffHtml(diff, out);
    if (!out)
        QOSERVE_FATAL("error writing HTML report: ", path);
}

} // namespace qoserve
