/**
 * @file
 * Critical-path extraction over request span DAGs (DESIGN.md §14).
 *
 * A request's reconstructed timeline is a set of phase spans (see
 * trace_export.hh). Viewed as a DAG — spans are nodes, with an edge
 * wherever one span can only start after another ends — the critical
 * path is the maximum-duration chain of non-overlapping spans from
 * the request's first span to its last: the sequence of waits and
 * work that actually bounded its end-to-end latency. Today every
 * request executes serially (possibly across replicas via retries),
 * so the DAG is a chain and the path covers the whole served
 * lifetime; the extraction still runs an explicit longest-path DP so
 * future concurrent spans (disaggregated prefill/decode overlap)
 * inherit correct attribution instead of double counting.
 *
 * Consecutive path spans sharing (phase, replica) coalesce into one
 * segment, and the aggregate across violated requests answers the
 * question phase *totals* cannot: not "where did time go" but "which
 * single phase × replica dominated each miss" — e.g. "71% of p99
 * misses are prefill starvation on replica 3".
 */

#ifndef QOSERVE_OBS_CRITICAL_PATH_HH
#define QOSERVE_OBS_CRITICAL_PATH_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_export.hh"

namespace qoserve {

/** One coalesced stretch of a request's critical path. */
struct CriticalSegment
{
    TracePhase phase = TracePhase::Queued;
    int replica = -1;
    double seconds = 0.0;

    bool
    operator==(const CriticalSegment &o) const
    {
        return phase == o.phase && replica == o.replica &&
               seconds == o.seconds;
    }
};

/** A request's extracted critical path. */
struct CriticalPath
{
    /** Path segments in time order, consecutive (phase, replica)
     *  runs coalesced. Empty for never-served requests. */
    std::vector<CriticalSegment> segments;

    /** Sum of segment durations. */
    double totalSeconds = 0.0;

    /** The single longest segment (Queued/-1/0 when unserved). */
    CriticalSegment dominant() const;
};

/**
 * Extract @p tl's critical path: longest-duration chain of
 * non-overlapping spans (ties broken toward earlier spans, so the
 * result is deterministic).
 */
CriticalPath criticalPathFor(const RequestTimeline &tl);

/**
 * Critical-path mass aggregated across a set of requests, keyed by
 * (phase, replica).
 */
struct CriticalAggregate
{
    struct Entry
    {
        double seconds = 0.0; ///< Critical-path seconds in this cell.
        std::uint64_t dominantRequests = 0; ///< Paths this cell led.
    };

    /** (phase index, replica) -> mass. Name-ordered map: iteration,
     *  reports and CSVs are deterministic. */
    std::map<std::pair<int, int>, Entry> cells;

    std::uint64_t requests = 0;  ///< Served requests aggregated.
    double totalSeconds = 0.0;   ///< Total critical-path seconds.
};

/**
 * Aggregate the critical paths of the timelines for @p ids (requests
 * with no timeline or no spans are skipped — they never ran).
 */
CriticalAggregate
aggregateCriticalPaths(const std::map<RequestId, RequestTimeline> &timelines,
                       const std::vector<std::uint64_t> &ids);

/**
 * Render the aggregate as report text: one line per cell, dominant
 * share first — the "p99 misses are 71% prefill-starvation on
 * replica 3" section of qoserve_explain.
 */
void writeCriticalPathReport(const CriticalAggregate &agg,
                             std::ostream &out);

/**
 * Write the aggregate as CSV: header
 * `phase,replica,seconds,dominant_requests`, one row per cell in map
 * order, preceded by a `total,-1,<seconds>,<requests>` row.
 * max_digits10, round-trip exact.
 */
void writeCriticalAggregateCsv(const CriticalAggregate &agg,
                               std::ostream &out);

/** Write the aggregate CSV to a file (fatal on error). */
void writeCriticalAggregateCsvFile(const CriticalAggregate &agg,
                                   const std::string &path);

/** Parse an aggregate CSV written by writeCriticalAggregateCsv.
 *  Fatal (with the 1-based line number) on malformed input. */
CriticalAggregate readCriticalAggregateCsv(std::istream &in);

/** Read an aggregate CSV from a file (fatal on error). */
CriticalAggregate readCriticalAggregateCsvFile(const std::string &path);

} // namespace qoserve

#endif // QOSERVE_OBS_CRITICAL_PATH_HH
