/**
 * @file
 * SLO-violation explainer: joins a lifecycle trace with per-request
 * records and attributes each violated request's end-to-end latency
 * to named phases (DESIGN.md §10).
 *
 * The attribution is exact by construction: phase spans tile a served
 * request's lifetime from first dispatch to completion (see
 * trace_export.hh), so the only unattributed residual is the gap
 * between arrival and first dispatch — zero in this simulator, where
 * routing is instantaneous. The acceptance bar (≥95% attributed) is
 * therefore met structurally; the report still computes and prints
 * the residual so a future routing delay shows up instead of hiding.
 */

#ifndef QOSERVE_OBS_EXPLAIN_HH
#define QOSERVE_OBS_EXPLAIN_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/trace_export.hh"

namespace qoserve {

/** The slice of a per-request record the explainer joins on. */
struct ExplainRecord
{
    std::uint64_t id = 0;
    SimTime arrival;
    int tierId = 0;
    bool important = false;
    double ttft = 0.0; ///< May be +inf (never served).
    double ttlt = 0.0; ///< May be +inf.
    bool violated = false;
    bool rejected = false;
    bool retryExhausted = false;
    int retries = 0;
};

/** Per-request latency attribution. */
struct PhaseBreakdown
{
    /** Seconds per phase, indexed by TracePhase. */
    double seconds[kTracePhases] = {};

    /** Arrival to completion (or abandonment), seconds. */
    double endToEnd = 0.0;

    /** endToEnd minus the attributed phase total. */
    double residual = 0.0;

    /** True when the timeline holds at least one span. */
    bool served = false;

    /** Attributed fraction of endToEnd (1.0 for a zero-length run). */
    double coverage() const;
};

/** Attribute @p tl's lifetime to phases. @p arrival overrides the
 *  timeline's own arrival stamp when finite (records are
 *  authoritative). */
PhaseBreakdown breakdownFor(const RequestTimeline &tl, SimTime arrival);

/**
 * Render the explainer report: a phase-by-phase breakdown for every
 * violated request (id order), phase totals across them, and the
 * top-@p top_n offenders by end-to-end latency.
 */
void writeExplainReport(const std::vector<TraceEvent> &events,
                        const std::vector<ExplainRecord> &records,
                        std::ostream &out, std::size_t top_n = 10);

} // namespace qoserve

#endif // QOSERVE_OBS_EXPLAIN_HH
