/**
 * @file
 * Offline run comparison: diff two runs' sketch banks, alert
 * timelines, and critical-path aggregates (DESIGN.md §14).
 *
 * The diff is the library half of tools/qoserve_report: it consumes
 * the artifacts two runs wrote (sketch-bank CSV, alert CSV,
 * critical-path CSV — all exact round-trippers) and produces a typed
 * comparison with *deterministic* regression flags. Determinism is
 * the point: the same two artifact sets always produce the same
 * verdict, so CI can gate on the report without flake. A sketch
 * quantile only counts as regressed when it is worse beyond the two
 * sketches' combined relative-error bounds plus the configured
 * tolerance — the sketch error can never manufacture a regression.
 */

#ifndef QOSERVE_OBS_RUN_DIFF_HH
#define QOSERVE_OBS_RUN_DIFF_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/critical_path.hh"
#include "obs/quantile_sketch.hh"
#include "obs/slo_monitor.hh"

namespace qoserve {

/** Thresholds separating noise from regression. */
struct RunDiffConfig
{
    /** Relative latency growth tolerated beyond the sketches' own
     *  error bounds (0.10 = 10% worse passes). */
    double latencyTolerance = 0.10;

    /** Absolute growth in a cell's dominant-share tolerated before a
     *  critical-path shift is flagged (fractions of 1). */
    double shareTolerance = 0.10;

    /** Percentiles compared per sketch. */
    std::vector<double> percentiles = {50.0, 95.0, 99.0};
};

/** One compared percentile of one sketch. */
struct QuantileDelta
{
    double pct = 0.0;
    double before = 0.0;
    double after = 0.0;
    bool regressed = false;
};

/** Comparison of one sketch name across the two runs. */
struct SketchDiff
{
    std::string name;
    bool onlyBefore = false; ///< Present in run A only.
    bool onlyAfter = false;  ///< Present in run B only.
    std::uint64_t countBefore = 0;
    std::uint64_t countAfter = 0;
    std::vector<QuantileDelta> deltas;
    bool regressed = false; ///< Any delta regressed.
};

/** Comparison of one tier's alert activity. */
struct AlertDiff
{
    int tier = 0;
    std::uint64_t countBefore = 0;
    std::uint64_t countAfter = 0;
    /** Alert-active sim seconds (episodes never cleared contribute
     *  nothing here but do count above). */
    double secondsBefore = 0.0;
    double secondsAfter = 0.0;
    std::uint64_t unclearedBefore = 0;
    std::uint64_t unclearedAfter = 0;
    bool regressed = false;
};

/** Comparison of one critical-path cell's dominant share. */
struct CriticalDiff
{
    int phase = 0;
    int replica = -1;
    double shareBefore = 0.0; ///< Fraction of misses this cell led.
    double shareAfter = 0.0;
    bool regressed = false;
};

/** Everything one run wrote that the reporter can diff. Any part may
 *  be absent (empty) — the diff only compares what both runs have. */
struct RunArtifacts
{
    std::string label; ///< Shown in report headers ("baseline", ...).
    std::map<std::string, QuantileSketch> sketches;
    std::vector<SloAlert> alerts;
    CriticalAggregate critical;
    bool hasCritical = false;
};

/** The full comparison. */
struct RunDiff
{
    std::string labelBefore;
    std::string labelAfter;
    std::vector<SketchDiff> sketches;   ///< Name order.
    std::vector<AlertDiff> alerts;      ///< Tier order.
    std::vector<CriticalDiff> critical; ///< (phase, replica) order.
    bool regressed = false;             ///< Any component regressed.
};

/** Compare two runs' artifacts under @p cfg. */
RunDiff diffRuns(const RunArtifacts &before, const RunArtifacts &after,
                 const RunDiffConfig &cfg = {});

/** Render the diff as an aligned text table. */
void writeDiffText(const RunDiff &diff, std::ostream &out);

/** Render the diff as a self-contained HTML report (inline CSS, no
 *  external assets — CI uploads the single file as an artifact). */
void writeDiffHtml(const RunDiff &diff, std::ostream &out);

/** Write the HTML report to a file (fatal on error). */
void writeDiffHtmlFile(const RunDiff &diff, const std::string &path);

} // namespace qoserve

#endif // QOSERVE_OBS_RUN_DIFF_HH
