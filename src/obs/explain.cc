/**
 * @file
 * SLO-violation explainer implementation.
 */

#include "obs/explain.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "obs/critical_path.hh"
#include "simcore/logging.hh"

namespace qoserve {

double
PhaseBreakdown::coverage() const
{
    if (endToEnd <= 0.0)
        return 1.0;
    double attributed = 0.0;
    for (double s : seconds)
        attributed += s;
    return attributed / endToEnd;
}

PhaseBreakdown
breakdownFor(const RequestTimeline &tl, SimTime arrival)
{
    PhaseBreakdown bd;
    if (tl.spans.empty())
        return bd;
    bd.served = true;

    SimTime start = arrival != kTimeNever ? arrival : tl.arrival;
    if (start == kTimeNever)
        start = tl.spans.front().begin;
    SimTime end =
        tl.finish != kTimeNever ? tl.finish : tl.lastSpanEnd();

    bd.endToEnd = std::max(0.0, end - start);
    double attributed = 0.0;
    for (const PhaseSpan &span : tl.spans) {
        // Clip to [start, end] — defensive; spans of a well-formed
        // stream already lie inside the request's lifetime.
        SimTime b = std::max(span.begin, start);
        SimTime e = std::min(span.end, end);
        if (e <= b)
            continue;
        bd.seconds[static_cast<int>(span.phase)] += e - b;
        attributed += e - b;
    }
    bd.residual = bd.endToEnd - attributed;
    return bd;
}

namespace {

void
printPhaseRow(std::ostream &out, const char *label, double seconds,
              double total)
{
    double pct = total > 0.0 ? 100.0 * seconds / total : 0.0;
    out << "  " << std::left << std::setw(22) << label << std::right
        << std::setw(10) << seconds << " s  " << std::setw(5) << pct
        << "%\n";
}

} // namespace

void
writeExplainReport(const std::vector<TraceEvent> &events,
                   const std::vector<ExplainRecord> &records,
                   std::ostream &out, std::size_t top_n)
{
    auto timelines = buildRequestTimelines(events);

    std::vector<ExplainRecord> sorted = records;
    std::sort(sorted.begin(), sorted.end(),
              [](const ExplainRecord &a, const ExplainRecord &b) {
                  return a.id < b.id;
              });

    std::size_t violated = 0, rejected = 0, abandoned = 0;
    std::size_t shed = 0, cancelled = 0;
    for (const ExplainRecord &rec : sorted) {
        if (!rec.violated)
            continue;
        ++violated;
        auto it = timelines.find(RequestId{rec.id});
        if (rec.rejected) {
            ++rejected;
            if (it != timelines.end() && it->second.shed)
                ++shed;
        }
        if (rec.retryExhausted) {
            ++abandoned;
            if (it != timelines.end() && it->second.cancelled)
                ++cancelled;
        }
    }

    out << std::fixed << std::setprecision(3);
    out << "requests: " << sorted.size() << " total, " << violated
        << " violated (" << rejected << " rejected, " << abandoned
        << " abandoned)\n";
    // The records CSV folds brownout sheds into `rejected` and
    // deadline cancellations into `retryExhausted`; the trace stream
    // tells them apart, so break them out when present.
    if (shed > 0 || cancelled > 0) {
        out << "degradation: " << shed << " shed by brownout, "
            << cancelled << " cancelled as provably late\n";
    }

    double phaseTotals[kTracePhases] = {};
    double residualTotal = 0.0;
    double minCoverage = 1.0;
    std::size_t servedViolated = 0;

    struct Offender
    {
        std::uint64_t id;
        double endToEnd;
        TracePhase worst;
        double worstFrac;
    };
    std::vector<Offender> offenders;
    std::vector<std::uint64_t> servedViolatedIds;

    for (const ExplainRecord &rec : sorted) {
        if (!rec.violated)
            continue;
        out << "\nreq " << rec.id << "  tier " << rec.tierId
            << (rec.important ? "  important" : "");
        auto it = timelines.find(RequestId{rec.id});
        if (rec.rejected || it == timelines.end() ||
            it->second.spans.empty()) {
            if (it != timelines.end() && it->second.shed)
                out << "  shed by brownout (never served)\n";
            else if (it != timelines.end() && it->second.cancelled)
                out << "  cancelled as provably late (never served)\n";
            else
                out << "  rejected at admission (never served)\n";
            continue;
        }
        const RequestTimeline &tl = it->second;
        PhaseBreakdown bd = breakdownFor(tl, rec.arrival);
        ++servedViolated;
        servedViolatedIds.push_back(rec.id);
        minCoverage = std::min(minCoverage, bd.coverage());

        out << "  e2e " << bd.endToEnd << " s  ttft " << rec.ttft
            << " s";
        if (rec.retryExhausted && tl.cancelled)
            out << "  cancelled as provably late after " << rec.retries
                << " retries";
        else if (rec.retryExhausted)
            out << "  abandoned after " << rec.retries << " retries";
        else if (tl.failures > 0)
            out << "  survived " << tl.failures << " crash(es)";
        out << "\n";
        TracePhase worst = TracePhase::Queued;
        for (int p = 0; p < kTracePhases; ++p) {
            if (bd.seconds[p] >
                bd.seconds[static_cast<int>(worst)])
                worst = static_cast<TracePhase>(p);
            if (bd.seconds[p] > 0.0) {
                printPhaseRow(
                    out, tracePhaseName(static_cast<TracePhase>(p)),
                    bd.seconds[p], bd.endToEnd);
            }
            phaseTotals[p] += bd.seconds[p];
        }
        // Epsilon hides accumulated float error; a real routing gap
        // (milliseconds and up) still prints.
        if (bd.residual > 1e-9)
            printPhaseRow(out, "unattributed", bd.residual,
                          bd.endToEnd);
        residualTotal += bd.residual;

        double worstFrac =
            bd.endToEnd > 0.0
                ? bd.seconds[static_cast<int>(worst)] / bd.endToEnd
                : 0.0;
        offenders.push_back({rec.id, bd.endToEnd, worst, worstFrac});
    }

    if (servedViolated > 0) {
        double grand = residualTotal;
        for (double s : phaseTotals)
            grand += s;
        out << "\nphase totals across " << servedViolated
            << " served violated request(s):\n";
        for (int p = 0; p < kTracePhases; ++p) {
            if (phaseTotals[p] > 0.0) {
                printPhaseRow(
                    out, tracePhaseName(static_cast<TracePhase>(p)),
                    phaseTotals[p], grand);
            }
        }
        if (residualTotal > 1e-9)
            printPhaseRow(out, "unattributed", residualTotal, grand);

        std::sort(offenders.begin(), offenders.end(),
                  [](const Offender &a, const Offender &b) {
                      if (a.endToEnd != b.endToEnd)
                          return a.endToEnd > b.endToEnd;
                      return a.id < b.id;
                  });
        out << "\ntop offenders by end-to-end latency:\n";
        std::size_t n = std::min(top_n, offenders.size());
        for (std::size_t i = 0; i < n; ++i) {
            const Offender &o = offenders[i];
            out << "  " << (i + 1) << ". req " << o.id << "  "
                << o.endToEnd << " s  dominant phase "
                << tracePhaseName(o.worst) << " ("
                << 100.0 * o.worstFrac << "%)\n";
        }
        CriticalAggregate agg =
            aggregateCriticalPaths(timelines, servedViolatedIds);
        out << "\n";
        writeCriticalPathReport(agg, out);

        out << "\nattribution: min coverage "
            << 100.0 * minCoverage
            << "% of end-to-end latency across served violated "
               "requests\n";
    } else if (violated > 0) {
        out << "\nevery violated request was rejected before "
               "service; no phases to attribute\n";
    } else {
        out << "\nno SLO violations — nothing to explain\n";
    }
}

} // namespace qoserve
