/**
 * @file
 * Typed request-lifecycle trace events (DESIGN.md §10).
 *
 * Every observable step of a request's life — arrival, dispatch,
 * prefill chunks, decode iterations, preemption, cache hits, crash
 * retries, completion — is one flat TraceEvent. Components append
 * events through a TraceScope; exporters (Perfetto JSON, CSV, the
 * SLO-violation explainer) reconstruct per-request timelines from the
 * stream. The stream is append-only and strictly in simulation-time
 * order, so its byte serialization is deterministic by construction.
 */

#ifndef QOSERVE_OBS_TRACE_EVENT_HH
#define QOSERVE_OBS_TRACE_EVENT_HH

#include <cstdint>

#include "simcore/time.hh"

namespace qoserve {

/**
 * Kind of a lifecycle event. The integer values are part of the CSV
 * schema; append new kinds at the end.
 */
enum class TraceEventKind : std::uint8_t
{
    Arrival,         ///< Request entered the cluster front door.
    AdmissionReject, ///< Admission control rejected it outright.
    Dispatch,        ///< Routed to a replica; arg = attempt (0 first).
    IterStart,       ///< Engine iteration began; arg = prefill tokens,
                     ///< value = decode batch size.
    IterEnd,         ///< Engine iteration ended; arg = 1 when the
                     ///< iteration was aborted by a crash.
    ChunkStart,      ///< Prefill chunk scheduled; arg = chunk tokens.
    ChunkEnd,        ///< Prefill chunk applied; arg = prompt tokens
                     ///< still unprefilled.
    Preempt,         ///< KV preemption evicted the request.
    Relegate,        ///< Scheduler relegated the request.
    Finish,          ///< Request completed (all tokens emitted).
    CacheHit,        ///< Prefix-cache attach; arg = tokens reused.
    CacheEvict,      ///< Prefix-cache eviction; arg = blocks freed.
    Crash,           ///< Replica crashed.
    Recover,         ///< Replica recovered.
    StragglerStart,  ///< Slowdown episode began; value = factor.
    StragglerEnd,    ///< Slowdown episode ended.
    RequestFailed,   ///< Request lost to a replica crash.
    RetryQueued,     ///< Re-dispatch scheduled; arg = attempt consumed.
    RetryExhausted,  ///< Retry budget spent; request abandoned.
    ZoneOutage,      ///< Correlated zone failure; arg = zone id.
    ZoneRestore,     ///< Zone repair completed; arg = zone id.
    PartitionStart,  ///< Control-plane partition began; arg = replicas
                     ///< blinded.
    PartitionEnd,    ///< Control-plane partition healed.
    BreakerOpen,     ///< Circuit breaker tripped; arg = consecutive
                     ///< dispatch failures.
    BreakerClose,    ///< Circuit breaker closed after a good probe.
    BrownoutStep,    ///< Brownout level changed; arg = new level.
    DeadlineCancel,  ///< Request abandoned: completion deadline
                     ///< provably unreachable.
    BrownoutShed,    ///< Request shed by the brownout controller.
    AlertRaised,     ///< SLO burn-rate alert fired; arg = tier,
                     ///< value = observed burn rate.
    AlertCleared,    ///< SLO burn-rate alert recovered; arg = tier.
};

/** Number of distinct event kinds (CSV parser bound). */
inline constexpr int kTraceEventKinds =
    static_cast<int>(TraceEventKind::AlertCleared) + 1;

/** Stable lowercase name of an event kind (the CSV `event` field). */
const char *traceEventKindName(TraceEventKind kind);

/** Request id for events not tied to any request. */
inline constexpr std::uint64_t kNoTraceRequest =
    static_cast<std::uint64_t>(-1);

/**
 * One lifecycle event. `replica` is the replica index, or -1 for
 * cluster-level events (arrival, admission, retry backoff). The
 * meaning of `arg` / `value` depends on the kind (see the enum).
 */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::Arrival;
    SimTime time;
    std::uint64_t request = kNoTraceRequest;
    int replica = -1;
    std::int64_t arg = 0;
    double value = 0.0;

    bool
    operator==(const TraceEvent &o) const
    {
        return kind == o.kind && time == o.time &&
               request == o.request && replica == o.replica &&
               arg == o.arg && value == o.value;
    }
};

} // namespace qoserve

#endif // QOSERVE_OBS_TRACE_EVENT_HH
