/**
 * @file
 * Critical-path extraction, aggregation, and CSV round trip.
 */

#include "obs/critical_path.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "simcore/logging.hh"

namespace qoserve {

CriticalSegment
CriticalPath::dominant() const
{
    CriticalSegment best;
    for (const CriticalSegment &seg : segments)
        if (seg.seconds > best.seconds)
            best = seg;
    return best;
}

CriticalPath
criticalPathFor(const RequestTimeline &tl)
{
    CriticalPath path;
    if (tl.spans.empty())
        return path;

    // Longest-duration chain of non-overlapping spans. Spans arrive
    // begin-ordered from buildRequestTimelines; dp[i] is the best
    // chain ending in span i. O(n^2) in the span count, which is
    // bounded by the request's chunk/iteration count.
    const std::size_t n = tl.spans.size();
    std::vector<double> dp(n, 0.0);
    std::vector<std::ptrdiff_t> prev(n, -1);
    std::size_t bestEnd = 0;
    for (std::size_t i = 0; i < n; ++i) {
        dp[i] = tl.spans[i].length();
        for (std::size_t j = 0; j < i; ++j) {
            if (tl.spans[j].end > tl.spans[i].begin)
                continue; // Overlaps: j cannot precede i on a chain.
            double cand = dp[j] + tl.spans[i].length();
            // Strict improvement only: ties keep the earliest
            // predecessor, so the path is deterministic.
            if (cand > dp[i]) {
                dp[i] = cand;
                prev[i] = static_cast<std::ptrdiff_t>(j);
            }
        }
        if (dp[i] > dp[bestEnd])
            bestEnd = i;
    }

    std::vector<const PhaseSpan *> chain;
    for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(bestEnd);
         i >= 0; i = prev[static_cast<std::size_t>(i)])
        chain.push_back(&tl.spans[static_cast<std::size_t>(i)]);
    std::reverse(chain.begin(), chain.end());

    for (const PhaseSpan *span : chain) {
        const double len = span->length();
        if (len <= 0.0)
            continue;
        if (!path.segments.empty() &&
            path.segments.back().phase == span->phase &&
            path.segments.back().replica == span->replica) {
            path.segments.back().seconds += len;
        } else {
            path.segments.push_back({span->phase, span->replica, len});
        }
        path.totalSeconds += len;
    }
    return path;
}

CriticalAggregate
aggregateCriticalPaths(
    const std::map<RequestId, RequestTimeline> &timelines,
    const std::vector<std::uint64_t> &ids)
{
    CriticalAggregate agg;
    for (std::uint64_t id : ids) {
        auto it = timelines.find(RequestId{id});
        if (it == timelines.end() || it->second.spans.empty())
            continue;
        CriticalPath path = criticalPathFor(it->second);
        if (path.segments.empty())
            continue;
        ++agg.requests;
        agg.totalSeconds += path.totalSeconds;
        for (const CriticalSegment &seg : path.segments)
            agg.cells[{static_cast<int>(seg.phase), seg.replica}]
                .seconds += seg.seconds;
        CriticalSegment dom = path.dominant();
        ++agg.cells[{static_cast<int>(dom.phase), dom.replica}]
              .dominantRequests;
    }
    return agg;
}

void
writeCriticalPathReport(const CriticalAggregate &agg, std::ostream &out)
{
    if (agg.requests == 0) {
        out << "no served violated requests — no critical paths to "
               "aggregate\n";
        return;
    }
    out << "critical paths across " << agg.requests
        << " served violated request(s), " << agg.totalSeconds
        << " s of path time:\n";

    // Rank by dominance: the cells that *led* the most misses first,
    // seconds as the tiebreak, map order as the final tie.
    std::vector<std::pair<std::pair<int, int>,
                          CriticalAggregate::Entry>>
        ranked(agg.cells.begin(), agg.cells.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.dominantRequests !=
                      b.second.dominantRequests)
                      return a.second.dominantRequests >
                             b.second.dominantRequests;
                  if (a.second.seconds != b.second.seconds)
                      return a.second.seconds > b.second.seconds;
                  return a.first < b.first;
              });
    for (const auto &[key, entry] : ranked) {
        const auto phase = static_cast<TracePhase>(key.first);
        const double domPct = 100.0 *
                              static_cast<double>(
                                  entry.dominantRequests) /
                              static_cast<double>(agg.requests);
        const double secPct =
            agg.totalSeconds > 0.0
                ? 100.0 * entry.seconds / agg.totalSeconds
                : 0.0;
        out << "  " << std::left << std::setw(12)
            << tracePhaseName(phase) << std::right;
        if (key.second >= 0)
            out << " replica " << std::setw(3) << key.second;
        else
            out << " cluster    ";
        out << "  dominates " << std::setw(5) << domPct
            << "% of misses  (" << secPct << "% of path time)\n";
    }
}

void
writeCriticalAggregateCsv(const CriticalAggregate &agg,
                          std::ostream &out)
{
    std::ostringstream fmt;
    fmt << std::setprecision(17);
    out << "phase,replica,seconds,dominant_requests\n";
    fmt << "total,-1," << agg.totalSeconds << ',' << agg.requests
        << '\n';
    for (const auto &[key, entry] : agg.cells) {
        fmt << tracePhaseName(static_cast<TracePhase>(key.first))
            << ',' << key.second << ',' << entry.seconds << ','
            << entry.dominantRequests << '\n';
    }
    out << fmt.str();
}

void
writeCriticalAggregateCsvFile(const CriticalAggregate &agg,
                              const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open critical-path file for writing: ",
                      path);
    writeCriticalAggregateCsv(agg, out);
    if (!out)
        QOSERVE_FATAL("error writing critical-path file: ", path);
}

namespace {

int
phaseByName(const std::string &name, std::size_t line_no)
{
    for (int p = 0; p < kTracePhases; ++p)
        if (name == tracePhaseName(static_cast<TracePhase>(p)))
            return p;
    QOSERVE_FATAL("critical-path CSV line ", line_no,
                  ": unknown phase: '", name, "'");
}

double
parseCpDouble(const std::string &field, std::size_t line_no)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(field, &pos);
    } catch (const std::exception &) {
        QOSERVE_FATAL("critical-path CSV line ", line_no,
                      ": not a number: '", field, "'");
    }
    if (pos != field.size())
        QOSERVE_FATAL("critical-path CSV line ", line_no,
                      ": trailing characters: '", field, "'");
    return value;
}

std::int64_t
parseCpInt(const std::string &field, std::size_t line_no)
{
    std::size_t pos = 0;
    std::int64_t value = 0;
    try {
        value = std::stoll(field, &pos);
    } catch (const std::exception &) {
        QOSERVE_FATAL("critical-path CSV line ", line_no,
                      ": not an integer: '", field, "'");
    }
    if (pos != field.size())
        QOSERVE_FATAL("critical-path CSV line ", line_no,
                      ": trailing characters: '", field, "'");
    return value;
}

} // namespace

CriticalAggregate
readCriticalAggregateCsv(std::istream &in)
{
    CriticalAggregate agg;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    bool saw_total = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            QOSERVE_FATAL("critical-path CSV line ", line_no,
                          ": empty line");
        if (!saw_header) {
            if (line != "phase,replica,seconds,dominant_requests")
                QOSERVE_FATAL("critical-path CSV line ", line_no,
                              ": unexpected header: '", line, "'");
            saw_header = true;
            continue;
        }
        std::vector<std::string> fields;
        std::istringstream iss(line);
        std::string field;
        while (std::getline(iss, field, ','))
            fields.push_back(field);
        if (fields.size() != 4)
            QOSERVE_FATAL("critical-path CSV line ", line_no,
                          ": expected 4 fields, got ", fields.size());
        if (fields[0] == "total") {
            if (saw_total)
                QOSERVE_FATAL("critical-path CSV line ", line_no,
                              ": duplicate total row");
            saw_total = true;
            agg.totalSeconds = parseCpDouble(fields[2], line_no);
            agg.requests = static_cast<std::uint64_t>(
                parseCpInt(fields[3], line_no));
            continue;
        }
        int phase = phaseByName(fields[0], line_no);
        int replica =
            static_cast<int>(parseCpInt(fields[1], line_no));
        CriticalAggregate::Entry entry;
        entry.seconds = parseCpDouble(fields[2], line_no);
        entry.dominantRequests = static_cast<std::uint64_t>(
            parseCpInt(fields[3], line_no));
        if (!agg.cells.emplace(std::make_pair(phase, replica), entry)
                 .second)
            QOSERVE_FATAL("critical-path CSV line ", line_no,
                          ": duplicate cell");
    }
    if (!saw_header)
        QOSERVE_FATAL("critical-path CSV is empty (missing header)");
    if (!saw_total)
        QOSERVE_FATAL("critical-path CSV has no total row");
    return agg;
}

CriticalAggregate
readCriticalAggregateCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        QOSERVE_FATAL("cannot open critical-path file for reading: ",
                      path);
    return readCriticalAggregateCsv(in);
}

} // namespace qoserve
