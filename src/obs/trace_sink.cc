/**
 * @file
 * Trace sink implementation: ordered event store and CSV round trip.
 */

#include "obs/trace_sink.hh"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "simcore/logging.hh"

namespace qoserve {

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::Arrival:
        return "arrival";
      case TraceEventKind::AdmissionReject:
        return "admission-reject";
      case TraceEventKind::Dispatch:
        return "dispatch";
      case TraceEventKind::IterStart:
        return "iter-start";
      case TraceEventKind::IterEnd:
        return "iter-end";
      case TraceEventKind::ChunkStart:
        return "chunk-start";
      case TraceEventKind::ChunkEnd:
        return "chunk-end";
      case TraceEventKind::Preempt:
        return "preempt";
      case TraceEventKind::Relegate:
        return "relegate";
      case TraceEventKind::Finish:
        return "finish";
      case TraceEventKind::CacheHit:
        return "cache-hit";
      case TraceEventKind::CacheEvict:
        return "cache-evict";
      case TraceEventKind::Crash:
        return "crash";
      case TraceEventKind::Recover:
        return "recover";
      case TraceEventKind::StragglerStart:
        return "straggler-start";
      case TraceEventKind::StragglerEnd:
        return "straggler-end";
      case TraceEventKind::RequestFailed:
        return "request-failed";
      case TraceEventKind::RetryQueued:
        return "retry-queued";
      case TraceEventKind::RetryExhausted:
        return "retry-exhausted";
      case TraceEventKind::ZoneOutage:
        return "zone-outage";
      case TraceEventKind::ZoneRestore:
        return "zone-restore";
      case TraceEventKind::PartitionStart:
        return "partition-start";
      case TraceEventKind::PartitionEnd:
        return "partition-end";
      case TraceEventKind::BreakerOpen:
        return "breaker-open";
      case TraceEventKind::BreakerClose:
        return "breaker-close";
      case TraceEventKind::BrownoutStep:
        return "brownout-step";
      case TraceEventKind::DeadlineCancel:
        return "deadline-cancel";
      case TraceEventKind::BrownoutShed:
        return "brownout-shed";
      case TraceEventKind::AlertRaised:
        return "slo-alert-raised";
      case TraceEventKind::AlertCleared:
        return "slo-alert-cleared";
    }
    QOSERVE_PANIC("unknown trace event kind");
}

void
TraceSink::emit(const TraceEvent &ev)
{
    QOSERVE_ASSERT(events_.empty() || ev.time >= events_.back().time,
                   "trace event at ", ev.time,
                   " precedes the stream tail at ",
                   events_.back().time);
    events_.push_back(ev);
}

void
TraceSink::writeCsv(std::ostream &out) const
{
    // max_digits10 makes the double fields round-trip exactly, so a
    // written trace re-read by the explainer carries the same
    // timestamps the exporters saw.
    std::ostringstream fmt;
    fmt << std::setprecision(17);
    out << "event,time,request,replica,arg,value\n";
    for (const TraceEvent &ev : events_) {
        fmt.str("");
        fmt << traceEventKindName(ev.kind) << ',' << ev.time << ',';
        if (ev.request == kNoTraceRequest)
            fmt << -1;
        else
            fmt << ev.request;
        fmt << ',' << ev.replica << ',' << ev.arg << ',' << ev.value
            << '\n';
        out << fmt.str();
    }
}

void
TraceSink::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open trace file for writing: ", path);
    writeCsv(out);
    if (!out)
        QOSERVE_FATAL("error writing trace file: ", path);
}

namespace {

TraceEventKind
kindByName(const std::string &name, std::size_t line_no)
{
    for (int k = 0; k < kTraceEventKinds; ++k) {
        auto kind = static_cast<TraceEventKind>(k);
        if (name == traceEventKindName(kind))
            return kind;
    }
    QOSERVE_FATAL("trace CSV line ", line_no,
                  ": unknown event kind: '", name, "'");
}

double
parseTraceDouble(const std::string &field, std::size_t line_no)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(field, &pos);
    } catch (const std::exception &) {
        QOSERVE_FATAL("trace CSV line ", line_no,
                      ": not a number: '", field, "'");
    }
    if (pos != field.size())
        QOSERVE_FATAL("trace CSV line ", line_no,
                      ": trailing characters: '", field, "'");
    return value;
}

std::int64_t
parseTraceInt(const std::string &field, std::size_t line_no)
{
    std::size_t pos = 0;
    std::int64_t value = 0;
    try {
        value = std::stoll(field, &pos);
    } catch (const std::exception &) {
        QOSERVE_FATAL("trace CSV line ", line_no,
                      ": not an integer: '", field, "'");
    }
    if (pos != field.size())
        QOSERVE_FATAL("trace CSV line ", line_no,
                      ": trailing characters: '", field, "'");
    return value;
}

} // namespace

std::vector<TraceEvent>
readTraceCsv(std::istream &in)
{
    std::vector<TraceEvent> events;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            QOSERVE_FATAL("trace CSV line ", line_no, ": empty line");
        if (!saw_header) {
            if (line != "event,time,request,replica,arg,value")
                QOSERVE_FATAL("trace CSV line ", line_no,
                              ": unexpected header: '", line, "'");
            saw_header = true;
            continue;
        }
        std::vector<std::string> fields;
        std::istringstream iss(line);
        std::string field;
        while (std::getline(iss, field, ','))
            fields.push_back(field);
        if (fields.size() != 6)
            QOSERVE_FATAL("trace CSV line ", line_no,
                          ": expected 6 fields, got ", fields.size());
        TraceEvent ev;
        ev.kind = kindByName(fields[0], line_no);
        ev.time = SimTime{parseTraceDouble(fields[1], line_no)};
        std::int64_t req = parseTraceInt(fields[2], line_no);
        ev.request = req < 0 ? kNoTraceRequest
                             : static_cast<std::uint64_t>(req);
        ev.replica =
            static_cast<int>(parseTraceInt(fields[3], line_no));
        ev.arg = parseTraceInt(fields[4], line_no);
        ev.value = parseTraceDouble(fields[5], line_no);
        events.push_back(ev);
    }
    if (!saw_header)
        QOSERVE_FATAL("trace CSV is empty (missing header)");
    return events;
}

std::vector<TraceEvent>
readTraceCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        QOSERVE_FATAL("cannot open trace file for reading: ", path);
    return readTraceCsv(in);
}

} // namespace qoserve
