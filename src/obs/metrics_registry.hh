/**
 * @file
 * Named counters, gauges, and histograms snapshotted on a sim-time
 * cadence (DESIGN.md §10).
 *
 * The registry is the time-series side of the observability layer:
 * drivers register cells by name (queue depths, KV blocks in use,
 * batch occupancy, retry counts), a sampler copies every cell into a
 * row each interval, and writeCsv() emits the whole series as one
 * wide CSV. All containers are name-ordered maps, so column order and
 * output bytes are deterministic regardless of registration order.
 */

#ifndef QOSERVE_OBS_METRICS_REGISTRY_HH
#define QOSERVE_OBS_METRICS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "simcore/event_queue.hh"

namespace qoserve {

/**
 * Fixed-bound cumulative histogram (Prometheus-style `le` buckets).
 */
class MetricsHistogram
{
  public:
    MetricsHistogram() = default;

    /** @param bounds Ascending bucket upper bounds; an implicit
     *  +inf bucket always follows. */
    explicit MetricsHistogram(std::vector<double> bounds);

    /** Record one observation. */
    void observe(double v);

    const std::vector<double> &bounds() const { return bounds_; }

    /** Cumulative count of observations <= bounds()[i]. */
    std::int64_t bucketCount(std::size_t i) const;

    std::int64_t count() const { return count_; }
    double sum() const { return sum_; }

  private:
    std::vector<double> bounds_;
    std::vector<std::int64_t> counts_; ///< Per-bucket (non-cumulative).
    std::int64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * Name-keyed registry of counters, gauges, and histograms.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    /** Monotonic counter cell, created at zero on first use. The
     *  reference stays valid for the registry's lifetime. */
    std::int64_t &counter(const std::string &name);

    /** Instantaneous gauge cell, created at zero on first use. */
    double &gauge(const std::string &name);

    /**
     * Histogram cell, created with @p bounds on first use; later
     * calls ignore @p bounds and return the existing cell.
     */
    MetricsHistogram &histogram(const std::string &name,
                                std::vector<double> bounds);

    /** Copy every cell's current value into a row stamped @p now. */
    void snapshot(SimTime now);

    /** Rows recorded so far. */
    std::size_t snapshots() const { return rows_.size(); }

    /**
     * Write the series as CSV: a `time` column plus one column per
     * cell in name order. Histograms expand into cumulative
     * `name_le_<bound>` columns plus `name_le_inf`, `name_sum` and
     * `name_count`. Cells registered after earlier snapshots backfill
     * as 0.
     */
    void writeCsv(std::ostream &out) const;

    /** Write the CSV to a file (fatal on error). */
    void writeCsvFile(const std::string &path) const;

  private:
    std::map<std::string, std::int64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, MetricsHistogram> histograms_;

    struct Row
    {
        SimTime time;
        std::map<std::string, double> values;
    };
    std::vector<Row> rows_;
};

/**
 * Samples a registry every @p interval of simulation time.
 *
 * The sample callback polls live component state into the registry;
 * the sampler then snapshots it. Sampling stops by itself when the
 * event queue has nothing else pending, so the simulation can drain —
 * the cadence never keeps the run alive on its own.
 */
class MetricsSampler
{
  public:
    using SampleFn = std::function<void(MetricsRegistry &, SimTime)>;

    /** All references must outlive the sampler. @p interval must be
     *  positive. */
    MetricsSampler(EventQueue &eq, MetricsRegistry &registry,
                   SimDuration interval, SampleFn fn);

    /** Schedule the first sample at the current simulation time. */
    void start();

    /** Samples taken so far. */
    std::uint64_t samples() const { return samples_; }

  private:
    void fire();

    EventQueue &eq_;
    MetricsRegistry &registry_;
    SimDuration interval_;
    SampleFn fn_;
    std::uint64_t samples_ = 0;
};

} // namespace qoserve

#endif // QOSERVE_OBS_METRICS_REGISTRY_HH
