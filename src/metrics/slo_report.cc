/**
 * @file
 * SLO accounting implementation.
 */

#include "metrics/slo_report.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/check_level.hh"
#include "metrics/percentile.hh"
#include "simcore/logging.hh"

namespace qoserve {

MetricsCollector::MetricsCollector(TierTable tiers)
    : tiers_(std::move(tiers))
{
    QOSERVE_ASSERT(!tiers_.empty(), "collector needs a tier table");
}

void
MetricsCollector::record(const RequestRecord &rec)
{
    QOSERVE_ASSERT(rec.spec.tierId >= 0 &&
                       rec.spec.tierId < static_cast<int>(tiers_.size()),
                   "record references unknown tier");
    ++totalRecorded_;
    if (sink_)
        sink_(rec);
    for (const RecordSink &observer : observers_)
        observer(rec);
    if (retain_)
        records_.push_back(rec);
}

void
MetricsCollector::addRecordObserver(RecordSink observer)
{
    QOSERVE_ASSERT(observer != nullptr,
                   "record observer must be callable");
    observers_.push_back(std::move(observer));
}

bool
violatedSlo(const RequestRecord &rec, const QosTier &tier)
{
    // Never-served requests violate unconditionally. Rejected records
    // fall out of the latency comparison anyway (infinite TTFT/TTLT),
    // but a retry-exhausted interactive request may have emitted its
    // first token before the crash that doomed it.
    if (rec.rejected || rec.retryExhausted)
        return true;
    if (tier.interactive)
        return rec.ttft() > tier.ttftSlo;
    return rec.ttlt() > tier.ttltSlo;
}

bool
violatedTbtSlo(const RequestRecord &rec, const QosTier &tier)
{
    if (!tier.interactive)
        return false;
    int budget = std::max(1, rec.spec.decodeTokens / 100);
    return rec.tbtDeadlineMisses > budget;
}

double
headlineLatency(const RequestRecord &rec, const QosTier &tier)
{
    return tier.interactive ? rec.ttft() : rec.ttlt();
}

RunSummary
summarize(const MetricsCollector &collector, double long_percentile)
{
    const auto &records = collector.records();
    const auto &tiers = collector.tiers();

    RunSummary out;
    out.count = records.size();
    if (records.empty())
        return out;

    // Long-request threshold over this run's prompt lengths. Sort
    // once and query the sorted sample rather than paying
    // percentile()'s copy-and-sort.
    std::vector<double> prompts;
    prompts.reserve(records.size());
    for (const auto &r : records)
        prompts.push_back(static_cast<double>(r.spec.promptTokens));
    std::sort(prompts.begin(), prompts.end());
    double long_threshold = percentileSorted(prompts, long_percentile);

    std::size_t violations = 0;
    std::size_t violations_with_tbt = 0;
    std::size_t important = 0, important_viol = 0;
    std::size_t shorts = 0, short_viol = 0;
    std::size_t longs = 0, long_viol = 0;
    std::size_t relegated = 0;
    std::size_t rejected = 0;
    std::size_t exhausted = 0;
    std::size_t affected = 0, affected_viol = 0;
    std::int64_t total_retries = 0;
    std::size_t prefix_hits = 0;
    std::int64_t prefix_tokens = 0;
    std::int64_t prompt_tokens = 0;
    std::vector<double> latencies;
    latencies.reserve(records.size());

    struct TierAcc
    {
        std::vector<double> ttft;
        std::vector<double> ttlt;
        std::size_t count = 0;
        std::size_t viol = 0;
        std::size_t tbt_miss = 0;
    };
    std::map<int, TierAcc> per_tier;

    for (const auto &r : records) {
        const QosTier &tier = tiers[r.spec.tierId];
        bool viol = violatedSlo(r, tier);
        violations += viol;
        violations_with_tbt += viol || violatedTbtSlo(r, tier);
        latencies.push_back(headlineLatency(r, tier));
        if (r.wasRelegated)
            ++relegated;
        if (r.rejected)
            ++rejected;
        if (r.retryExhausted)
            ++exhausted;
        total_retries += r.retries;
        prompt_tokens += r.spec.promptTokens;
        if (r.cachedPrefixTokens > 0) {
            ++prefix_hits;
            prefix_tokens += r.cachedPrefixTokens;
        }
        if (r.retries > 0 || r.retryExhausted) {
            ++affected;
            affected_viol += viol;
        }
        if (r.spec.important) {
            ++important;
            important_viol += viol;
        }
        bool is_long =
            static_cast<double>(r.spec.promptTokens) >= long_threshold;
        if (is_long) {
            ++longs;
            long_viol += viol;
        } else {
            ++shorts;
            short_viol += viol;
        }

        TierAcc &acc = per_tier[r.spec.tierId];
        ++acc.count;
        acc.viol += viol;
        acc.tbt_miss += r.tbtDeadlineMisses > 0;
        acc.ttft.push_back(r.ttft());
        acc.ttlt.push_back(r.ttlt());
    }

    auto rate = [](std::size_t num, std::size_t den) {
        return den == 0 ? 0.0
                        : static_cast<double>(num) /
                              static_cast<double>(den);
    };

    out.violationRate = rate(violations, records.size());
    out.violationRateWithTbt = rate(violations_with_tbt, records.size());
    out.importantViolationRate = rate(important_viol, important);
    out.shortViolationRate = rate(short_viol, shorts);
    out.longViolationRate = rate(long_viol, longs);
    out.relegatedFraction = rate(relegated, records.size());
    out.rejectedFraction = rate(rejected, records.size());
    out.retryExhaustedFraction = rate(exhausted, records.size());
    out.availability =
        rate(records.size() - rejected - exhausted, records.size());
    out.meanRetries = static_cast<double>(total_retries) /
                      static_cast<double>(records.size());
    out.failureAffectedFraction = rate(affected, records.size());
    out.failureViolationRate = rate(affected_viol, records.size());
    out.prefixHitFraction = rate(prefix_hits, records.size());
    out.prefixTokensSavedFraction =
        prompt_tokens == 0 ? 0.0
                           : static_cast<double>(prefix_tokens) /
                                 static_cast<double>(prompt_tokens);
    out.meanCachedPrefixTokens = static_cast<double>(prefix_tokens) /
                                 static_cast<double>(records.size());

    std::sort(latencies.begin(), latencies.end());
    out.p50Latency = percentileSorted(latencies, 50.0);
    out.p95Latency = percentileSorted(latencies, 95.0);
    out.p99Latency = percentileSorted(latencies, 99.0);

    for (auto &[tier_id, acc] : per_tier) {
        TierSummary ts;
        ts.tierId = tier_id;
        ts.count = acc.count;
        std::sort(acc.ttft.begin(), acc.ttft.end());
        std::sort(acc.ttlt.begin(), acc.ttlt.end());
        ts.p50Ttft = percentileSorted(acc.ttft, 50.0);
        ts.p95Ttft = percentileSorted(acc.ttft, 95.0);
        ts.p99Ttft = percentileSorted(acc.ttft, 99.0);
        ts.p50Ttlt = percentileSorted(acc.ttlt, 50.0);
        ts.p95Ttlt = percentileSorted(acc.ttlt, 95.0);
        ts.p99Ttlt = percentileSorted(acc.ttlt, 99.0);
        ts.violationRate = rate(acc.viol, acc.count);
        ts.tbtMissRate = rate(acc.tbt_miss, acc.count);
        out.tiers.push_back(ts);
    }

    if constexpr (audit::cheapChecks()) {
        // Accounting sanity: the short/long and per-tier partitions
        // must cover every record exactly once, and every rate is a
        // probability.
        QOSERVE_ASSERT(shorts + longs == records.size(),
                       "short/long split lost records");
        std::size_t tier_total = 0;
        for (const auto &ts : out.tiers)
            tier_total += ts.count;
        QOSERVE_ASSERT(tier_total == records.size(),
                       "per-tier counts lost records");
        for (double r : {out.violationRate, out.violationRateWithTbt,
                         out.importantViolationRate,
                         out.shortViolationRate, out.longViolationRate,
                         out.relegatedFraction, out.rejectedFraction,
                         out.retryExhaustedFraction, out.availability,
                         out.failureAffectedFraction,
                         out.failureViolationRate, out.prefixHitFraction,
                         out.prefixTokensSavedFraction}) {
            QOSERVE_ASSERT(r >= 0.0 && r <= 1.0,
                           "rate outside [0, 1]: ", r);
        }
        QOSERVE_ASSERT(out.violationRateWithTbt >=
                           out.violationRate,
                       "TBT-inclusive violation rate below the "
                       "TTFT/TTLT-only rate");
        QOSERVE_ASSERT(out.failureViolationRate <= out.violationRate,
                       "failure-attributed violations exceed total "
                       "violations");
        QOSERVE_ASSERT(out.meanRetries >= 0.0,
                       "negative mean retry count");
        QOSERVE_ASSERT(out.meanCachedPrefixTokens >= 0.0,
                       "negative mean cached-prefix tokens");
    }
    return out;
}

std::vector<RollingPoint>
rollingLatency(const MetricsCollector &collector, SimDuration window,
               double pct, int tier_id, bool important_only)
{
    QOSERVE_ASSERT(window > 0.0, "window must be positive");
    const auto &records = collector.records();
    const auto &tiers = collector.tiers();

    std::map<std::int64_t, std::vector<double>> buckets;
    for (const auto &r : records) {
        if (tier_id >= 0 && r.spec.tierId != tier_id)
            continue;
        if (important_only && !r.spec.important)
            continue;
        auto bucket =
            static_cast<std::int64_t>(
                std::floor(r.spec.arrival.seconds() / window));
        buckets[bucket].push_back(
            headlineLatency(r, tiers[r.spec.tierId]));
    }

    std::vector<RollingPoint> out;
    out.reserve(buckets.size());
    for (auto &[bucket, values] : buckets) {
        RollingPoint p;
        p.windowStart = SimTime{static_cast<double>(bucket) * window};
        p.count = values.size();
        std::sort(values.begin(), values.end());
        p.value = percentileSorted(values, pct);
        out.push_back(p);
    }
    return out;
}

std::vector<RollingPoint>
rollingLatencySketched(const MetricsCollector &collector,
                       SimDuration window, double pct, int tier_id,
                       bool important_only, double relative_error)
{
    QOSERVE_ASSERT(window > 0.0, "window must be positive");
    const auto &records = collector.records();
    const auto &tiers = collector.tiers();

    std::map<std::int64_t, QuantileSketch> buckets;
    for (const auto &r : records) {
        if (tier_id >= 0 && r.spec.tierId != tier_id)
            continue;
        if (important_only && !r.spec.important)
            continue;
        auto bucket =
            static_cast<std::int64_t>(
                std::floor(r.spec.arrival.seconds() / window));
        auto it = buckets.find(bucket);
        if (it == buckets.end())
            it = buckets
                     .emplace(bucket, QuantileSketch(relative_error))
                     .first;
        it->second.insert(headlineLatency(r, tiers[r.spec.tierId]));
    }

    std::vector<RollingPoint> out;
    out.reserve(buckets.size());
    for (const auto &[bucket, sketch] : buckets) {
        RollingPoint p;
        p.windowStart = SimTime{static_cast<double>(bucket) * window};
        p.count = sketch.count();
        p.value = sketch.quantile(pct);
        out.push_back(p);
    }
    return out;
}

} // namespace qoserve
