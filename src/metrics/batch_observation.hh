/**
 * @file
 * Per-iteration batch observation record.
 *
 * The raw telemetry sample a replica emits after every executed
 * batch (Fig. 9 timelines). Lives in the metrics layer so the
 * telemetry recorder does not have to reach up into the cluster
 * module for its input type; replicas include this header downward.
 */

#ifndef QOSERVE_METRICS_BATCH_OBSERVATION_HH
#define QOSERVE_METRICS_BATCH_OBSERVATION_HH

#include <functional>

#include "simcore/time.hh"

namespace qoserve {

/** Observer invoked after every executed batch (Fig. 9 timelines). */
struct BatchObservation
{
    SimTime start;
    SimDuration latency = 0.0;
    int prefillTokens = 0;
    int numDecodes = 0;
};
using BatchObserver = std::function<void(const BatchObservation &)>;

} // namespace qoserve

#endif // QOSERVE_METRICS_BATCH_OBSERVATION_HH
