/**
 * @file
 * Result serialization: per-request records and run summaries as
 * CSV, for external plotting and analysis.
 */

#ifndef QOSERVE_METRICS_REPORT_IO_HH
#define QOSERVE_METRICS_REPORT_IO_HH

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/slo_report.hh"

namespace qoserve {

/**
 * Write per-request records as CSV.
 *
 * Columns: id, arrival, prompt_tokens, decode_tokens, tier_id,
 * important, ttft, ttlt, max_tbt, tbt_misses, violated, relegated,
 * kv_preemptions, retries, retry_exhausted.
 */
void writeRecordsCsv(const MetricsCollector &collector, std::ostream &out);

/** Write records CSV to a file (fatal on error). */
void writeRecordsCsvFile(const MetricsCollector &collector,
                         const std::string &path);

/** Write the records-CSV header row and set the stream precision the
 *  row writer below relies on (max_digits10 round-trip). */
void writeRecordsCsvHeader(std::ostream &out);

/** Write one records-CSV row (see writeRecordsCsv for columns). */
void writeRecordCsvRow(const RequestRecord &rec, const QosTier &tier,
                       std::ostream &out);

/**
 * Streams records to a CSV file one row at a time, for runs too large
 * to retain every record in memory. Feed it completion-order records
 * (e.g. as a MetricsCollector sink) and the resulting file is
 * byte-identical to writeRecordsCsvFile on a retaining collector —
 * both paths share the same header and row writers.
 */
class RecordsCsvStreamWriter
{
  public:
    /** Open @p path and write the header (fatal on error). */
    RecordsCsvStreamWriter(TierTable tiers, const std::string &path);

    /** Append one record's row. */
    void write(const RequestRecord &rec);

    /** Flush and close; fatal on a write error. Idempotent, and also
     *  run by the destructor. */
    void close();

    ~RecordsCsvStreamWriter();

    RecordsCsvStreamWriter(const RecordsCsvStreamWriter &) = delete;
    RecordsCsvStreamWriter &
    operator=(const RecordsCsvStreamWriter &) = delete;

  private:
    TierTable tiers_;
    std::string path_;
    std::ofstream out_;
};

/**
 * Write a RunSummary as key,value CSV rows.
 *
 * Fault/retry metrics (availability, mean_retries, ...) are emitted
 * only when the summary shows failure activity, so fault-free runs
 * produce byte-identical output to builds without fault support.
 */
void writeSummaryCsv(const RunSummary &summary, std::ostream &out);

/** One parsed key,value row of a summary CSV. */
struct SummaryCsvRow
{
    std::string key;
    double value = 0.0;
};

/**
 * Parse a summary CSV written by writeSummaryCsv.
 *
 * Fatal (with the 1-based line number) on a malformed header, a row
 * without exactly two fields, an empty key, or a non-numeric value.
 */
std::vector<SummaryCsvRow> readSummaryCsv(std::istream &in);

/** Read a summary CSV from a file (fatal on error). */
std::vector<SummaryCsvRow> readSummaryCsvFile(const std::string &path);

/** One parsed row of a records CSV (the explainer's join input). */
struct RecordsCsvRow
{
    std::uint64_t id = 0;
    double arrival = 0.0;
    std::int64_t promptTokens = 0;
    std::int64_t decodeTokens = 0;
    int tierId = 0;
    bool important = false;
    double ttft = 0.0; ///< +inf for never-served requests.
    double ttlt = 0.0; ///< +inf for never-served requests.
    double maxTbt = 0.0;
    std::int64_t tbtMisses = 0;
    bool violated = false;
    bool relegated = false;
    std::int64_t kvPreemptions = 0;
    int retries = 0;
    bool retryExhausted = false;
};

/**
 * Parse a records CSV written by writeRecordsCsv. Fatal (with the
 * 1-based line number) on a malformed header, a row without exactly
 * 15 fields, or a non-numeric field.
 */
std::vector<RecordsCsvRow> readRecordsCsv(std::istream &in);

/** Read a records CSV from a file (fatal on error). */
std::vector<RecordsCsvRow> readRecordsCsvFile(const std::string &path);

/**
 * Write a rolling-percentile series (see rollingLatency) as CSV with
 * header `window_start,value,count`, round-trip exact.
 */
void writeRollingCsv(const std::vector<RollingPoint> &points,
                     std::ostream &out);

/**
 * Parse a rolling-series CSV written by writeRollingCsv. Fatal (with
 * the 1-based line number) on a malformed header or row.
 */
std::vector<RollingPoint> readRollingCsv(std::istream &in);

/** Render a human-readable summary table to @p out. */
void printSummary(const RunSummary &summary, const TierTable &tiers,
                  std::ostream &out);

} // namespace qoserve

#endif // QOSERVE_METRICS_REPORT_IO_HH
