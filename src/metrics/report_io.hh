/**
 * @file
 * Result serialization: per-request records and run summaries as
 * CSV, for external plotting and analysis.
 */

#ifndef QOSERVE_METRICS_REPORT_IO_HH
#define QOSERVE_METRICS_REPORT_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/slo_report.hh"

namespace qoserve {

/**
 * Write per-request records as CSV.
 *
 * Columns: id, arrival, prompt_tokens, decode_tokens, tier_id,
 * important, ttft, ttlt, max_tbt, tbt_misses, violated, relegated,
 * kv_preemptions, retries, retry_exhausted.
 */
void writeRecordsCsv(const MetricsCollector &collector, std::ostream &out);

/** Write records CSV to a file (fatal on error). */
void writeRecordsCsvFile(const MetricsCollector &collector,
                         const std::string &path);

/**
 * Write a RunSummary as key,value CSV rows.
 *
 * Fault/retry metrics (availability, mean_retries, ...) are emitted
 * only when the summary shows failure activity, so fault-free runs
 * produce byte-identical output to builds without fault support.
 */
void writeSummaryCsv(const RunSummary &summary, std::ostream &out);

/** One parsed key,value row of a summary CSV. */
struct SummaryCsvRow
{
    std::string key;
    double value = 0.0;
};

/**
 * Parse a summary CSV written by writeSummaryCsv.
 *
 * Fatal (with the 1-based line number) on a malformed header, a row
 * without exactly two fields, an empty key, or a non-numeric value.
 */
std::vector<SummaryCsvRow> readSummaryCsv(std::istream &in);

/** Read a summary CSV from a file (fatal on error). */
std::vector<SummaryCsvRow> readSummaryCsvFile(const std::string &path);

/** Render a human-readable summary table to @p out. */
void printSummary(const RunSummary &summary, const TierTable &tiers,
                  std::ostream &out);

} // namespace qoserve

#endif // QOSERVE_METRICS_REPORT_IO_HH
