/**
 * @file
 * Result serialization: per-request records and run summaries as
 * CSV, for external plotting and analysis.
 */

#ifndef QOSERVE_METRICS_REPORT_IO_HH
#define QOSERVE_METRICS_REPORT_IO_HH

#include <iosfwd>
#include <string>

#include "metrics/slo_report.hh"

namespace qoserve {

/**
 * Write per-request records as CSV.
 *
 * Columns: id, arrival, prompt_tokens, decode_tokens, tier_id,
 * important, ttft, ttlt, max_tbt, tbt_misses, violated, relegated,
 * kv_preemptions.
 */
void writeRecordsCsv(const MetricsCollector &collector, std::ostream &out);

/** Write records CSV to a file (fatal on error). */
void writeRecordsCsvFile(const MetricsCollector &collector,
                         const std::string &path);

/** Write a RunSummary as key,value CSV rows. */
void writeSummaryCsv(const RunSummary &summary, std::ostream &out);

/** Render a human-readable summary table to @p out. */
void printSummary(const RunSummary &summary, const TierTable &tiers,
                  std::ostream &out);

} // namespace qoserve

#endif // QOSERVE_METRICS_REPORT_IO_HH
