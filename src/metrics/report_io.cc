/**
 * @file
 * Result serialization implementation.
 */

#include "metrics/report_io.hh"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <string>

#include "simcore/logging.hh"

namespace qoserve {

void
writeRecordsCsv(const MetricsCollector &collector, std::ostream &out)
{
    out << "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
           "ttft,ttlt,max_tbt,tbt_misses,violated,relegated,"
           "kv_preemptions,retries,retry_exhausted\n";
    for (const RequestRecord &r : collector.records()) {
        const QosTier &tier = collector.tiers()[r.spec.tierId];
        out << r.spec.id << ',' << r.spec.arrival << ','
            << r.spec.promptTokens << ',' << r.spec.decodeTokens << ','
            << r.spec.tierId << ',' << (r.spec.important ? 1 : 0) << ','
            << r.ttft() << ',' << r.ttlt() << ',' << r.maxTbt << ','
            << r.tbtDeadlineMisses << ','
            << (violatedSlo(r, tier) ? 1 : 0) << ','
            << (r.wasRelegated ? 1 : 0) << ',' << r.kvPreemptions << ','
            << r.retries << ',' << (r.retryExhausted ? 1 : 0) << '\n';
    }
}

void
writeRecordsCsvFile(const MetricsCollector &collector,
                    const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open records file for writing: ", path);
    writeRecordsCsv(collector, out);
    if (!out)
        QOSERVE_FATAL("error writing records file: ", path);
}

void
writeSummaryCsv(const RunSummary &summary, std::ostream &out)
{
    out << "metric,value\n";
    out << "count," << summary.count << '\n';
    out << "violation_rate," << summary.violationRate << '\n';
    out << "violation_rate_with_tbt," << summary.violationRateWithTbt
        << '\n';
    out << "important_violation_rate," << summary.importantViolationRate
        << '\n';
    out << "short_violation_rate," << summary.shortViolationRate << '\n';
    out << "long_violation_rate," << summary.longViolationRate << '\n';
    out << "relegated_fraction," << summary.relegatedFraction << '\n';
    if (summary.hasFaultActivity()) {
        out << "availability," << summary.availability << '\n';
        out << "retry_exhausted_fraction,"
            << summary.retryExhaustedFraction << '\n';
        out << "mean_retries," << summary.meanRetries << '\n';
        out << "failure_affected_fraction,"
            << summary.failureAffectedFraction << '\n';
        out << "failure_violation_rate," << summary.failureViolationRate
            << '\n';
    }
    if (summary.hasPrefixActivity()) {
        out << "prefix_hit_fraction," << summary.prefixHitFraction
            << '\n';
        out << "prefix_tokens_saved_fraction,"
            << summary.prefixTokensSavedFraction << '\n';
        out << "mean_cached_prefix_tokens,"
            << summary.meanCachedPrefixTokens << '\n';
    }
    out << "p50_latency," << summary.p50Latency << '\n';
    out << "p95_latency," << summary.p95Latency << '\n';
    out << "p99_latency," << summary.p99Latency << '\n';
    for (const TierSummary &tier : summary.tiers) {
        std::string prefix = "tier" + std::to_string(tier.tierId) + "_";
        out << prefix << "count," << tier.count << '\n';
        out << prefix << "violation_rate," << tier.violationRate << '\n';
        out << prefix << "p50_ttft," << tier.p50Ttft << '\n';
        out << prefix << "p99_ttft," << tier.p99Ttft << '\n';
        out << prefix << "p50_ttlt," << tier.p50Ttlt << '\n';
        out << prefix << "p99_ttlt," << tier.p99Ttlt << '\n';
        out << prefix << "tbt_miss_rate," << tier.tbtMissRate << '\n';
    }
}

namespace {

/** Strict double parse: the whole field must be consumed. */
double
parseSummaryValue(const std::string &field, std::size_t line_no)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(field, &pos);
    } catch (const std::exception &) {
        QOSERVE_FATAL("summary CSV line ", line_no,
                      ": value is not a number: '", field, "'");
    }
    if (pos != field.size())
        QOSERVE_FATAL("summary CSV line ", line_no,
                      ": trailing characters after value: '", field,
                      "'");
    return value;
}

} // namespace

std::vector<SummaryCsvRow>
readSummaryCsv(std::istream &in)
{
    std::vector<SummaryCsvRow> rows;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            QOSERVE_FATAL("summary CSV line ", line_no, ": empty line");
        if (!saw_header) {
            if (line != "metric,value")
                QOSERVE_FATAL("summary CSV line ", line_no,
                              ": expected header 'metric,value', got '",
                              line, "'");
            saw_header = true;
            continue;
        }
        std::size_t comma = line.find(',');
        if (comma == std::string::npos ||
            line.find(',', comma + 1) != std::string::npos)
            QOSERVE_FATAL("summary CSV line ", line_no,
                          ": expected 2 fields: '", line, "'");
        SummaryCsvRow row;
        row.key = line.substr(0, comma);
        if (row.key.empty())
            QOSERVE_FATAL("summary CSV line ", line_no, ": empty key");
        row.value = parseSummaryValue(line.substr(comma + 1), line_no);
        rows.push_back(std::move(row));
    }
    if (!saw_header)
        QOSERVE_FATAL("summary CSV is empty (missing header)");
    return rows;
}

std::vector<SummaryCsvRow>
readSummaryCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        QOSERVE_FATAL("cannot open summary file for reading: ", path);
    return readSummaryCsv(in);
}

void
printSummary(const RunSummary &summary, const TierTable &tiers,
             std::ostream &out)
{
    out << std::fixed << std::setprecision(3);
    out << "requests: " << summary.count << "\n";
    out << "violations: " << 100.0 * summary.violationRate
        << "% (with TBT: " << 100.0 * summary.violationRateWithTbt
        << "%), important: " << 100.0 * summary.importantViolationRate
        << "%\n";
    out << "short/long violations: "
        << 100.0 * summary.shortViolationRate << "% / "
        << 100.0 * summary.longViolationRate << "%\n";
    out << "relegated: " << 100.0 * summary.relegatedFraction << "%\n";
    if (summary.hasFaultActivity()) {
        out << "availability: " << 100.0 * summary.availability
            << "% (retry-exhausted "
            << 100.0 * summary.retryExhaustedFraction
            << "%), mean retries: " << summary.meanRetries
            << ", failure-attributed violations: "
            << 100.0 * summary.failureViolationRate << "%\n";
    }
    if (summary.hasPrefixActivity()) {
        out << "prefix cache: " << 100.0 * summary.prefixHitFraction
            << "% of requests hit, "
            << 100.0 * summary.prefixTokensSavedFraction
            << "% of prompt tokens reused (mean "
            << summary.meanCachedPrefixTokens << " tokens/request)\n";
    }
    out << "headline latency p50/p95/p99: " << summary.p50Latency
        << " / " << summary.p95Latency << " / " << summary.p99Latency
        << " s\n";
    for (const TierSummary &tier : summary.tiers) {
        const QosTier &def = tiers[tier.tierId];
        out << "  " << def.name << ": n=" << tier.count;
        if (def.interactive) {
            out << " ttft p50/p99 " << tier.p50Ttft << "/"
                << tier.p99Ttft << " s (slo " << def.ttftSlo << " s)";
        } else {
            out << " ttlt p50/p99 " << tier.p50Ttlt << "/"
                << tier.p99Ttlt << " s (slo " << def.ttltSlo << " s)";
        }
        out << " viol " << 100.0 * tier.violationRate << "%\n";
    }
}

} // namespace qoserve
