/**
 * @file
 * Result serialization implementation.
 */

#include "metrics/report_io.hh"

#include <fstream>
#include <iomanip>
#include <ostream>

#include "simcore/logging.hh"

namespace qoserve {

void
writeRecordsCsv(const MetricsCollector &collector, std::ostream &out)
{
    out << "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
           "ttft,ttlt,max_tbt,tbt_misses,violated,relegated,"
           "kv_preemptions\n";
    for (const RequestRecord &r : collector.records()) {
        const QosTier &tier = collector.tiers()[r.spec.tierId];
        out << r.spec.id << ',' << r.spec.arrival << ','
            << r.spec.promptTokens << ',' << r.spec.decodeTokens << ','
            << r.spec.tierId << ',' << (r.spec.important ? 1 : 0) << ','
            << r.ttft() << ',' << r.ttlt() << ',' << r.maxTbt << ','
            << r.tbtDeadlineMisses << ','
            << (violatedSlo(r, tier) ? 1 : 0) << ','
            << (r.wasRelegated ? 1 : 0) << ',' << r.kvPreemptions
            << '\n';
    }
}

void
writeRecordsCsvFile(const MetricsCollector &collector,
                    const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open records file for writing: ", path);
    writeRecordsCsv(collector, out);
    if (!out)
        QOSERVE_FATAL("error writing records file: ", path);
}

void
writeSummaryCsv(const RunSummary &summary, std::ostream &out)
{
    out << "metric,value\n";
    out << "count," << summary.count << '\n';
    out << "violation_rate," << summary.violationRate << '\n';
    out << "violation_rate_with_tbt," << summary.violationRateWithTbt
        << '\n';
    out << "important_violation_rate," << summary.importantViolationRate
        << '\n';
    out << "short_violation_rate," << summary.shortViolationRate << '\n';
    out << "long_violation_rate," << summary.longViolationRate << '\n';
    out << "relegated_fraction," << summary.relegatedFraction << '\n';
    out << "p50_latency," << summary.p50Latency << '\n';
    out << "p95_latency," << summary.p95Latency << '\n';
    out << "p99_latency," << summary.p99Latency << '\n';
    for (const TierSummary &tier : summary.tiers) {
        std::string prefix = "tier" + std::to_string(tier.tierId) + "_";
        out << prefix << "count," << tier.count << '\n';
        out << prefix << "violation_rate," << tier.violationRate << '\n';
        out << prefix << "p50_ttft," << tier.p50Ttft << '\n';
        out << prefix << "p99_ttft," << tier.p99Ttft << '\n';
        out << prefix << "p50_ttlt," << tier.p50Ttlt << '\n';
        out << prefix << "p99_ttlt," << tier.p99Ttlt << '\n';
        out << prefix << "tbt_miss_rate," << tier.tbtMissRate << '\n';
    }
}

void
printSummary(const RunSummary &summary, const TierTable &tiers,
             std::ostream &out)
{
    out << std::fixed << std::setprecision(3);
    out << "requests: " << summary.count << "\n";
    out << "violations: " << 100.0 * summary.violationRate
        << "% (with TBT: " << 100.0 * summary.violationRateWithTbt
        << "%), important: " << 100.0 * summary.importantViolationRate
        << "%\n";
    out << "short/long violations: "
        << 100.0 * summary.shortViolationRate << "% / "
        << 100.0 * summary.longViolationRate << "%\n";
    out << "relegated: " << 100.0 * summary.relegatedFraction << "%\n";
    out << "headline latency p50/p95/p99: " << summary.p50Latency
        << " / " << summary.p95Latency << " / " << summary.p99Latency
        << " s\n";
    for (const TierSummary &tier : summary.tiers) {
        const QosTier &def = tiers[tier.tierId];
        out << "  " << def.name << ": n=" << tier.count;
        if (def.interactive) {
            out << " ttft p50/p99 " << tier.p50Ttft << "/"
                << tier.p99Ttft << " s (slo " << def.ttftSlo << " s)";
        } else {
            out << " ttlt p50/p99 " << tier.p50Ttlt << "/"
                << tier.p99Ttlt << " s (slo " << def.ttltSlo << " s)";
        }
        out << " viol " << 100.0 * tier.violationRate << "%\n";
    }
}

} // namespace qoserve
