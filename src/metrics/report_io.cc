/**
 * @file
 * Result serialization implementation.
 */

#include "metrics/report_io.hh"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <string>

#include "simcore/logging.hh"

namespace qoserve {

void
writeRecordsCsvHeader(std::ostream &out)
{
    // max_digits10: doubles survive the round trip through
    // readRecordsCsv bit-exactly (the explainer joins on these).
    out << std::setprecision(17);
    out << "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
           "ttft,ttlt,max_tbt,tbt_misses,violated,relegated,"
           "kv_preemptions,retries,retry_exhausted\n";
}

void
writeRecordCsvRow(const RequestRecord &r, const QosTier &tier,
                  std::ostream &out)
{
    out << r.spec.id << ',' << r.spec.arrival << ','
        << r.spec.promptTokens << ',' << r.spec.decodeTokens << ','
        << r.spec.tierId << ',' << (r.spec.important ? 1 : 0) << ','
        << r.ttft() << ',' << r.ttlt() << ',' << r.maxTbt << ','
        << r.tbtDeadlineMisses << ',' << (violatedSlo(r, tier) ? 1 : 0)
        << ',' << (r.wasRelegated ? 1 : 0) << ',' << r.kvPreemptions
        << ',' << r.retries << ',' << (r.retryExhausted ? 1 : 0) << '\n';
}

void
writeRecordsCsv(const MetricsCollector &collector, std::ostream &out)
{
    writeRecordsCsvHeader(out);
    for (const RequestRecord &r : collector.records())
        writeRecordCsvRow(r, collector.tiers()[r.spec.tierId], out);
}

RecordsCsvStreamWriter::RecordsCsvStreamWriter(TierTable tiers,
                                               const std::string &path)
    : tiers_(std::move(tiers)), path_(path), out_(path)
{
    QOSERVE_ASSERT(!tiers_.empty(), "stream writer needs a tier table");
    if (!out_)
        QOSERVE_FATAL("cannot open records file for writing: ", path_);
    writeRecordsCsvHeader(out_);
}

void
RecordsCsvStreamWriter::write(const RequestRecord &rec)
{
    QOSERVE_ASSERT(rec.spec.tierId >= 0 &&
                       rec.spec.tierId <
                           static_cast<int>(tiers_.size()),
                   "record references unknown tier");
    writeRecordCsvRow(rec, tiers_[rec.spec.tierId], out_);
}

void
RecordsCsvStreamWriter::close()
{
    if (!out_.is_open())
        return;
    out_.close();
    if (!out_)
        QOSERVE_FATAL("error writing records file: ", path_);
}

RecordsCsvStreamWriter::~RecordsCsvStreamWriter()
{
    close();
}

void
writeRecordsCsvFile(const MetricsCollector &collector,
                    const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open records file for writing: ", path);
    writeRecordsCsv(collector, out);
    if (!out)
        QOSERVE_FATAL("error writing records file: ", path);
}

void
writeSummaryCsv(const RunSummary &summary, std::ostream &out)
{
    out << "metric,value\n";
    out << "count," << summary.count << '\n';
    out << "violation_rate," << summary.violationRate << '\n';
    out << "violation_rate_with_tbt," << summary.violationRateWithTbt
        << '\n';
    out << "important_violation_rate," << summary.importantViolationRate
        << '\n';
    out << "short_violation_rate," << summary.shortViolationRate << '\n';
    out << "long_violation_rate," << summary.longViolationRate << '\n';
    out << "relegated_fraction," << summary.relegatedFraction << '\n';
    if (summary.hasFaultActivity()) {
        out << "availability," << summary.availability << '\n';
        out << "retry_exhausted_fraction,"
            << summary.retryExhaustedFraction << '\n';
        out << "mean_retries," << summary.meanRetries << '\n';
        out << "failure_affected_fraction,"
            << summary.failureAffectedFraction << '\n';
        out << "failure_violation_rate," << summary.failureViolationRate
            << '\n';
    }
    if (summary.hasPrefixActivity()) {
        out << "prefix_hit_fraction," << summary.prefixHitFraction
            << '\n';
        out << "prefix_tokens_saved_fraction,"
            << summary.prefixTokensSavedFraction << '\n';
        out << "mean_cached_prefix_tokens,"
            << summary.meanCachedPrefixTokens << '\n';
    }
    out << "p50_latency," << summary.p50Latency << '\n';
    out << "p95_latency," << summary.p95Latency << '\n';
    out << "p99_latency," << summary.p99Latency << '\n';
    for (const TierSummary &tier : summary.tiers) {
        std::string prefix = "tier" + std::to_string(tier.tierId) + "_";
        out << prefix << "count," << tier.count << '\n';
        out << prefix << "violation_rate," << tier.violationRate << '\n';
        out << prefix << "p50_ttft," << tier.p50Ttft << '\n';
        out << prefix << "p99_ttft," << tier.p99Ttft << '\n';
        out << prefix << "p50_ttlt," << tier.p50Ttlt << '\n';
        out << prefix << "p99_ttlt," << tier.p99Ttlt << '\n';
        out << prefix << "tbt_miss_rate," << tier.tbtMissRate << '\n';
    }
}

namespace {

/** Strict double parse: the whole field must be consumed. stod
 *  accepts "inf", so infinite latencies round-trip. */
double
parseCsvDouble(const char *what, const std::string &field,
               std::size_t line_no)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(field, &pos);
    } catch (const std::exception &) {
        QOSERVE_FATAL(what, " CSV line ", line_no,
                      ": value is not a number: '", field, "'");
    }
    if (pos != field.size())
        QOSERVE_FATAL(what, " CSV line ", line_no,
                      ": trailing characters after value: '", field,
                      "'");
    return value;
}

/** Strict integer parse of a CSV field. */
std::int64_t
parseCsvInt(const char *what, const std::string &field,
            std::size_t line_no)
{
    std::size_t pos = 0;
    long long value = 0;
    try {
        value = std::stoll(field, &pos);
    } catch (const std::exception &) {
        QOSERVE_FATAL(what, " CSV line ", line_no,
                      ": value is not an integer: '", field, "'");
    }
    if (pos != field.size())
        QOSERVE_FATAL(what, " CSV line ", line_no,
                      ": trailing characters after value: '", field,
                      "'");
    return value;
}

/** Split @p line on commas; fatal unless exactly @p want fields. */
std::vector<std::string>
splitCsvFields(const char *what, const std::string &line,
               std::size_t want, std::size_t line_no)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            fields.push_back(line.substr(start));
            break;
        }
        fields.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
    if (fields.size() != want)
        QOSERVE_FATAL(what, " CSV line ", line_no, ": expected ", want,
                      " fields, got ", fields.size(), ": '", line, "'");
    return fields;
}

double
parseSummaryValue(const std::string &field, std::size_t line_no)
{
    return parseCsvDouble("summary", field, line_no);
}

} // namespace

std::vector<RecordsCsvRow>
readRecordsCsv(std::istream &in)
{
    static const std::string kHeader =
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "ttft,ttlt,max_tbt,tbt_misses,violated,relegated,"
        "kv_preemptions,retries,retry_exhausted";
    std::vector<RecordsCsvRow> rows;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            QOSERVE_FATAL("records CSV line ", line_no, ": empty line");
        if (!saw_header) {
            if (line != kHeader)
                QOSERVE_FATAL("records CSV line ", line_no,
                              ": unexpected header: '", line, "'");
            saw_header = true;
            continue;
        }
        auto f = splitCsvFields("records", line, 15, line_no);
        RecordsCsvRow row;
        row.id = static_cast<std::uint64_t>(
            parseCsvInt("records", f[0], line_no));
        row.arrival = parseCsvDouble("records", f[1], line_no);
        row.promptTokens = parseCsvInt("records", f[2], line_no);
        row.decodeTokens = parseCsvInt("records", f[3], line_no);
        row.tierId = static_cast<int>(
            parseCsvInt("records", f[4], line_no));
        row.important = parseCsvInt("records", f[5], line_no) != 0;
        row.ttft = parseCsvDouble("records", f[6], line_no);
        row.ttlt = parseCsvDouble("records", f[7], line_no);
        row.maxTbt = parseCsvDouble("records", f[8], line_no);
        row.tbtMisses = parseCsvInt("records", f[9], line_no);
        row.violated = parseCsvInt("records", f[10], line_no) != 0;
        row.relegated = parseCsvInt("records", f[11], line_no) != 0;
        row.kvPreemptions = parseCsvInt("records", f[12], line_no);
        row.retries = static_cast<int>(
            parseCsvInt("records", f[13], line_no));
        row.retryExhausted = parseCsvInt("records", f[14], line_no) != 0;
        rows.push_back(row);
    }
    if (!saw_header)
        QOSERVE_FATAL("records CSV is empty (missing header)");
    return rows;
}

std::vector<RecordsCsvRow>
readRecordsCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        QOSERVE_FATAL("cannot open records file for reading: ", path);
    return readRecordsCsv(in);
}

void
writeRollingCsv(const std::vector<RollingPoint> &points,
                std::ostream &out)
{
    out << std::setprecision(17);
    out << "window_start,value,count\n";
    for (const RollingPoint &p : points) {
        out << p.windowStart << ',' << p.value << ',' << p.count
            << '\n';
    }
}

std::vector<RollingPoint>
readRollingCsv(std::istream &in)
{
    std::vector<RollingPoint> points;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            QOSERVE_FATAL("rolling CSV line ", line_no, ": empty line");
        if (!saw_header) {
            if (line != "window_start,value,count")
                QOSERVE_FATAL("rolling CSV line ", line_no,
                              ": expected header "
                              "'window_start,value,count', got '",
                              line, "'");
            saw_header = true;
            continue;
        }
        auto f = splitCsvFields("rolling", line, 3, line_no);
        RollingPoint p;
        p.windowStart = SimTime{parseCsvDouble("rolling", f[0], line_no)};
        p.value = parseCsvDouble("rolling", f[1], line_no);
        std::int64_t count = parseCsvInt("rolling", f[2], line_no);
        if (count < 0)
            QOSERVE_FATAL("rolling CSV line ", line_no,
                          ": negative count");
        p.count = static_cast<std::size_t>(count);
        points.push_back(p);
    }
    if (!saw_header)
        QOSERVE_FATAL("rolling CSV is empty (missing header)");
    return points;
}

std::vector<SummaryCsvRow>
readSummaryCsv(std::istream &in)
{
    std::vector<SummaryCsvRow> rows;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            QOSERVE_FATAL("summary CSV line ", line_no, ": empty line");
        if (!saw_header) {
            if (line != "metric,value")
                QOSERVE_FATAL("summary CSV line ", line_no,
                              ": expected header 'metric,value', got '",
                              line, "'");
            saw_header = true;
            continue;
        }
        std::size_t comma = line.find(',');
        if (comma == std::string::npos ||
            line.find(',', comma + 1) != std::string::npos)
            QOSERVE_FATAL("summary CSV line ", line_no,
                          ": expected 2 fields: '", line, "'");
        SummaryCsvRow row;
        row.key = line.substr(0, comma);
        if (row.key.empty())
            QOSERVE_FATAL("summary CSV line ", line_no, ": empty key");
        row.value = parseSummaryValue(line.substr(comma + 1), line_no);
        rows.push_back(std::move(row));
    }
    if (!saw_header)
        QOSERVE_FATAL("summary CSV is empty (missing header)");
    return rows;
}

std::vector<SummaryCsvRow>
readSummaryCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        QOSERVE_FATAL("cannot open summary file for reading: ", path);
    return readSummaryCsv(in);
}

void
printSummary(const RunSummary &summary, const TierTable &tiers,
             std::ostream &out)
{
    out << std::fixed << std::setprecision(3);
    out << "requests: " << summary.count << "\n";
    out << "violations: " << 100.0 * summary.violationRate
        << "% (with TBT: " << 100.0 * summary.violationRateWithTbt
        << "%), important: " << 100.0 * summary.importantViolationRate
        << "%\n";
    out << "short/long violations: "
        << 100.0 * summary.shortViolationRate << "% / "
        << 100.0 * summary.longViolationRate << "%\n";
    out << "relegated: " << 100.0 * summary.relegatedFraction << "%\n";
    if (summary.hasFaultActivity()) {
        out << "availability: " << 100.0 * summary.availability
            << "% (retry-exhausted "
            << 100.0 * summary.retryExhaustedFraction
            << "%), mean retries: " << summary.meanRetries
            << ", failure-attributed violations: "
            << 100.0 * summary.failureViolationRate << "%\n";
    }
    if (summary.hasPrefixActivity()) {
        out << "prefix cache: " << 100.0 * summary.prefixHitFraction
            << "% of requests hit, "
            << 100.0 * summary.prefixTokensSavedFraction
            << "% of prompt tokens reused (mean "
            << summary.meanCachedPrefixTokens << " tokens/request)\n";
    }
    out << "headline latency p50/p95/p99: " << summary.p50Latency
        << " / " << summary.p95Latency << " / " << summary.p99Latency
        << " s\n";
    for (const TierSummary &tier : summary.tiers) {
        const QosTier &def = tiers[tier.tierId];
        out << "  " << def.name << ": n=" << tier.count;
        if (def.interactive) {
            out << " ttft p50/p99 " << tier.p50Ttft << "/"
                << tier.p99Ttft << " s (slo " << def.ttftSlo << " s)";
        } else {
            out << " ttlt p50/p99 " << tier.p50Ttlt << "/"
                << tier.p99Ttlt << " s (slo " << def.ttltSlo << " s)";
        }
        out << " viol " << 100.0 * tier.violationRate << "%\n";
    }
}

} // namespace qoserve
