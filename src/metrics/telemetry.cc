/**
 * @file
 * Telemetry recorder implementation.
 */

#include "metrics/telemetry.hh"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "simcore/logging.hh"

namespace qoserve {

BatchObserver
TelemetryRecorder::observerFor(ReplicaId replica_id)
{
    int rid = replica_id.value();
    return [this, rid](const BatchObservation &obs) {
        observations_.push_back(obs);
        replicaIds_.push_back(rid);
    };
}

double
TelemetryRecorder::meanChunkTokens() const
{
    if (observations_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &obs : observations_)
        sum += obs.prefillTokens;
    return sum / static_cast<double>(observations_.size());
}

int
TelemetryRecorder::maxChunkTokens() const
{
    int best = 0;
    for (const auto &obs : observations_)
        best = std::max(best, obs.prefillTokens);
    return best;
}

std::vector<std::int64_t>
TelemetryRecorder::chunkHistogram(int bucket_width) const
{
    QOSERVE_ASSERT(bucket_width > 0, "bucket width must be positive");
    std::vector<std::int64_t> hist;
    for (const auto &obs : observations_) {
        auto bucket =
            static_cast<std::size_t>(obs.prefillTokens / bucket_width);
        if (bucket >= hist.size())
            hist.resize(bucket + 1, 0);
        ++hist[bucket];
    }
    return hist;
}

double
TelemetryRecorder::utilization(SimTime t0, SimTime t1) const
{
    QOSERVE_ASSERT(t1 >= t0, "utilization window ends before it starts");
    if (t1 == t0)
        return 0.0;

    // Clip each observation to the window, then merge overlaps within
    // each replica before summing: a crash-cancelled batch is observed
    // with its full planned latency, which can overlap the batches the
    // replica runs after recovering — summing raw intervals would
    // count that engine time twice.
    struct Interval
    {
        int replica;
        SimTime start;
        SimTime end;
    };
    std::vector<Interval> spans;
    spans.reserve(observations_.size());
    for (std::size_t i = 0; i < observations_.size(); ++i) {
        const BatchObservation &obs = observations_[i];
        SimTime start = std::max(t0, obs.start);
        SimTime end = std::min(t1, obs.start + obs.latency);
        if (end > start)
            spans.push_back({replicaIds_[i], start, end});
    }
    std::sort(spans.begin(), spans.end(),
              [](const Interval &a, const Interval &b) {
                  if (a.replica != b.replica)
                      return a.replica < b.replica;
                  if (a.start != b.start)
                      return a.start < b.start;
                  return a.end < b.end;
              });

    double busy = 0.0;
    bool open = false;
    Interval cur{};
    for (const Interval &iv : spans) {
        if (!open || iv.replica != cur.replica || iv.start > cur.end) {
            if (open)
                busy += cur.end - cur.start;
            cur = iv;
            open = true;
        } else {
            cur.end = std::max(cur.end, iv.end);
        }
    }
    if (open)
        busy += cur.end - cur.start;
    return busy / (t1 - t0);
}

void
TelemetryRecorder::writeCsv(std::ostream &out) const
{
    out << "replica,start,latency,prefill_tokens,num_decodes\n";
    for (std::size_t i = 0; i < observations_.size(); ++i) {
        const BatchObservation &obs = observations_[i];
        out << replicaIds_[i] << ',' << obs.start << ',' << obs.latency
            << ',' << obs.prefillTokens << ',' << obs.numDecodes << '\n';
    }
}

void
TelemetryRecorder::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        QOSERVE_FATAL("cannot open telemetry file for writing: ", path);
    writeCsv(out);
    if (!out)
        QOSERVE_FATAL("error writing telemetry file: ", path);
}

} // namespace qoserve
