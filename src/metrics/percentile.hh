/**
 * @file
 * Percentile and basic summary statistics.
 */

#ifndef QOSERVE_METRICS_PERCENTILE_HH
#define QOSERVE_METRICS_PERCENTILE_HH

#include <vector>

namespace qoserve {

/**
 * Interpolated percentile of a sample.
 *
 * @param values Sample (copied and sorted internally; empty returns 0).
 * @param p Percentile in [0, 100].
 */
double percentile(std::vector<double> values, double p);

/**
 * Percentile of an already-sorted sample (no copy).
 */
double percentileSorted(const std::vector<double> &sorted, double p);

/** Arithmetic mean (0 for empty). */
double mean(const std::vector<double> &values);

} // namespace qoserve

#endif // QOSERVE_METRICS_PERCENTILE_HH
