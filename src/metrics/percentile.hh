/**
 * @file
 * Percentile and basic summary statistics.
 */

#ifndef QOSERVE_METRICS_PERCENTILE_HH
#define QOSERVE_METRICS_PERCENTILE_HH

#include <vector>

namespace qoserve {

/**
 * Interpolated percentile of a sample.
 *
 * Degenerate inputs follow one uniform sentinel convention shared
 * with percentileSorted (and QuantileSketch::quantile): an empty
 * sample returns 0.0 for every p, and a single-element sample
 * returns that element for every p. Callers therefore never need
 * emptiness guards of their own.
 *
 * @param values Sample (copied and sorted internally).
 * @param p Percentile in [0, 100] (panics otherwise).
 */
double percentile(std::vector<double> values, double p);

/**
 * Percentile of an already-sorted sample (no copy).
 *
 * Same sentinel convention as percentile(): empty -> 0.0, single
 * element -> that element, for every p. At QOSERVE_CHECK_LEVEL=full
 * the sortedness precondition itself is asserted.
 */
double percentileSorted(const std::vector<double> &sorted, double p);

/** Arithmetic mean (0 for empty). */
double mean(const std::vector<double> &values);

} // namespace qoserve

#endif // QOSERVE_METRICS_PERCENTILE_HH
