/**
 * @file
 * Percentile implementation.
 */

#include "metrics/percentile.hh"

#include <algorithm>
#include <cstddef>
#include <numeric>

#include "core/check_level.hh"
#include "simcore/logging.hh"

namespace qoserve {

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    QOSERVE_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    if constexpr (audit::fullChecks()) {
        QOSERVE_ASSERT(
            std::is_sorted(sorted.begin(), sorted.end()),
            "percentileSorted fed an unsorted sample of size ",
            sorted.size());
    }
    // Degenerate-sample sentinels (documented in the header, shared
    // with percentile() and QuantileSketch::quantile): empty -> 0.0,
    // single element -> that element, for every p.
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    double pos = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
percentile(std::vector<double> values, double p)
{
    std::sort(values.begin(), values.end());
    return percentileSorted(values, p);
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

} // namespace qoserve
