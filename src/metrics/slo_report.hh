/**
 * @file
 * SLO accounting over completed-request records.
 *
 * Implements the measurement conventions of §4: a request violates
 * its SLO when its TTFT (interactive tiers) or TTLT (non-interactive
 * tiers) exceeds the tier target; requests are "long" when their
 * prompt is at or above the trace's 90th percentile; goodput counts
 * requests served while the per-tier p99 latency meets the SLO with
 * at most 1% violations.
 */

#ifndef QOSERVE_METRICS_SLO_REPORT_HH
#define QOSERVE_METRICS_SLO_REPORT_HH

#include <functional>
#include <vector>

#include "obs/quantile_sketch.hh"
#include "sched/request.hh"
#include "workload/qos.hh"

namespace qoserve {

/**
 * Sink for completed-request records.
 *
 * By default every record is retained in completion order for
 * post-run summarization. For scale runs that would hold millions of
 * records, attach a streaming sink (setRecordSink) and disable
 * retention (setRetainRecords(false)): each record is then handed to
 * the sink at completion time and dropped, keeping memory flat in the
 * trace length. The sink observes the exact sequence records() would
 * have held, so a streaming CSV writer produces byte-identical output
 * to the buffered writer.
 */
class MetricsCollector
{
  public:
    /** Per-record streaming callback (completion order). */
    using RecordSink = std::function<void(const RequestRecord &)>;

    /** @param tiers Tier table the records' tierId fields refer to. */
    explicit MetricsCollector(TierTable tiers);

    /** Record a completed request. */
    void record(const RequestRecord &rec);

    /** All records, in completion order. Empty when retention is
     *  disabled — use totalRecorded() for the count. */
    const std::vector<RequestRecord> &records() const { return records_; }

    /** Tier table. */
    const TierTable &tiers() const { return tiers_; }

    /** Number of retained records. */
    std::size_t size() const { return records_.size(); }

    /** Records seen, retained or not. */
    std::size_t totalRecorded() const { return totalRecorded_; }

    /** Invoke @p sink on every subsequent record (at completion). */
    void setRecordSink(RecordSink sink) { sink_ = std::move(sink); }

    /**
     * Attach an additional read-only observer invoked (in attach
     * order, after the primary sink) on every subsequent record.
     * Unlike the single replaceable sink — the memory-saving output
     * channel — observers compose: the streaming CSV writer, the
     * sketch feeder, and the SLO monitor can all watch one run.
     */
    void addRecordObserver(RecordSink observer);

    /** Toggle in-memory retention (default on). Summaries require
     *  retention; streaming-only runs must compute their own. */
    void setRetainRecords(bool retain) { retain_ = retain; }

  private:
    TierTable tiers_;
    std::vector<RequestRecord> records_;
    RecordSink sink_;
    std::vector<RecordSink> observers_;
    std::size_t totalRecorded_ = 0;
    bool retain_ = true;
};

/** True if the record violated its tier's headline SLO. */
bool violatedSlo(const RequestRecord &rec, const QosTier &tier);

/**
 * True if an interactive record violated its TBT SLO: more than 1%
 * of its tokens (and at least two) missed their Eq. 2 deadlines.
 * Always false for non-interactive tiers. The paper tracks this
 * separately from headline violations because chunk sizing keeps it
 * under 0.1% in their testbed; PolyServe-style experiments (§4.5.2)
 * need it counted explicitly.
 */
bool violatedTbtSlo(const RequestRecord &rec, const QosTier &tier);

/** Latency the headline SLO constrains: TTFT or TTLT. */
double headlineLatency(const RequestRecord &rec, const QosTier &tier);

/** Per-tier summary statistics. */
struct TierSummary
{
    int tierId = 0;
    std::size_t count = 0;
    double p50Ttft = 0.0;
    double p95Ttft = 0.0;
    double p99Ttft = 0.0;
    double p50Ttlt = 0.0;
    double p95Ttlt = 0.0;
    double p99Ttlt = 0.0;
    double violationRate = 0.0; ///< Fraction in [0, 1].
    double tbtMissRate = 0.0;   ///< Fraction of requests with TBT misses.
};

/** Whole-run summary. */
struct RunSummary
{
    std::size_t count = 0;
    double violationRate = 0.0;

    /** Violations counting TBT SLO misses as well (see
     *  violatedTbtSlo). */
    double violationRateWithTbt = 0.0;
    double importantViolationRate = 0.0;
    double shortViolationRate = 0.0;
    double longViolationRate = 0.0;
    double relegatedFraction = 0.0;
    double rejectedFraction = 0.0;
    double p50Latency = 0.0; ///< Headline latency across requests.
    double p95Latency = 0.0;
    double p99Latency = 0.0;
    std::vector<TierSummary> tiers;

    /**
     * Fraction of requests fully served — neither rejected at the
     * front door nor abandoned after exhausting the retry budget.
     * 1.0 on fault-free, admission-free runs.
     */
    double availability = 1.0;

    /** Fraction abandoned after exhausting the retry budget. */
    double retryExhaustedFraction = 0.0;

    /** Mean failure re-dispatches per request. */
    double meanRetries = 0.0;

    /** Fraction of requests that were re-dispatched at least once. */
    double failureAffectedFraction = 0.0;

    /**
     * Fraction of all requests that both touched the failure path
     * (retried or abandoned) and violated their SLO — the
     * failure-attributed share of the violation rate.
     */
    double failureViolationRate = 0.0;

    /** True when any record shows failure/retry involvement; output
     *  writers gate their fault sections on this so fault-free runs
     *  keep their exact historical format. */
    bool
    hasFaultActivity() const
    {
        return meanRetries > 0.0 || retryExhaustedFraction > 0.0;
    }

    /** Fraction of requests served with a cached prefix attached
     *  (shared-prefix KV cache hits). */
    double prefixHitFraction = 0.0;

    /** Prompt tokens served from the prefix cache instead of being
     *  recomputed, as a fraction of all prompt tokens. */
    double prefixTokensSavedFraction = 0.0;

    /** Mean cached-prefix tokens per request, over all requests. */
    double meanCachedPrefixTokens = 0.0;

    /** True when any record reused a cached prefix; output writers
     *  gate their prefix-cache sections on this so cache-off runs
     *  keep their exact historical format. */
    bool
    hasPrefixActivity() const
    {
        return prefixHitFraction > 0.0;
    }
};

/**
 * Summarize a collector's records.
 *
 * @param collector Completed records plus tier table.
 * @param long_percentile Prompt-length percentile splitting
 *        short/long (paper: 90).
 */
RunSummary summarize(const MetricsCollector &collector,
                     double long_percentile = 90.0);

/** One point of a rolling-percentile time series. */
struct RollingPoint
{
    SimTime windowStart;
    double value = 0.0;
    std::size_t count = 0;
};

/**
 * Rolling percentile of headline latency versus *arrival* time,
 * optionally restricted to one tier — the measurement behind the
 * Fig. 13 timelines.
 *
 * @param collector Records to analyse.
 * @param window Window width in seconds (paper: 60).
 * @param pct Percentile in [0, 100] (paper: 99).
 * @param tier_id Restrict to this tier, or -1 for all.
 * @param important_only Restrict to important requests.
 */
std::vector<RollingPoint> rollingLatency(const MetricsCollector &collector,
                                         SimDuration window, double pct,
                                         int tier_id = -1,
                                         bool important_only = false);

/**
 * Streaming variant of rollingLatency: each window holds a
 * QuantileSketch instead of the full latency vector, so memory per
 * window is O(log(max/min)) regardless of arrival rate. Values are
 * within the sketch's relative error of rollingLatency's targeted
 * order statistic (see QuantileSketch::quantile); the series is
 * bitwise deterministic because sketch state is.
 *
 * @param relative_error Sketch accuracy (see QuantileSketch).
 */
std::vector<RollingPoint>
rollingLatencySketched(const MetricsCollector &collector,
                       SimDuration window, double pct, int tier_id = -1,
                       bool important_only = false,
                       double relative_error =
                           QuantileSketch::kDefaultRelativeError);

} // namespace qoserve

#endif // QOSERVE_METRICS_SLO_REPORT_HH
