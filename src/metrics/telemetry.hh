/**
 * @file
 * Per-iteration engine telemetry.
 *
 * Records the stream of batch observations a replica emits (chunk
 * size, decode batch size, execution time) and derives the
 * iteration-level views the paper analyses: the chunk-size timeline
 * of Fig. 9, chunk-size distributions, and engine utilization over
 * time windows. Exportable as CSV for external plotting.
 */

#ifndef QOSERVE_METRICS_TELEMETRY_HH
#define QOSERVE_METRICS_TELEMETRY_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/units.hh"
#include "metrics/batch_observation.hh"

namespace qoserve {

/**
 * Collects BatchObservation streams from one or more replicas.
 */
class TelemetryRecorder
{
  public:
    TelemetryRecorder() = default;

    /**
     * An observer bound to this recorder, tagged with a replica id.
     * Install via Replica::setBatchObserver.
     */
    BatchObserver observerFor(ReplicaId replica_id);

    /** All observations in arrival order. */
    const std::vector<BatchObservation> &observations() const
    {
        return observations_;
    }

    /** Replica ids parallel to observations(). */
    const std::vector<int> &replicaIds() const { return replicaIds_; }

    /** Number of recorded iterations. */
    std::size_t size() const { return observations_.size(); }

    /** Mean prefill chunk tokens per iteration (0 when empty). */
    double meanChunkTokens() const;

    /** Largest chunk observed. */
    int maxChunkTokens() const;

    /**
     * Chunk-size histogram with the given bucket width; entry i
     * counts iterations with chunk in [i*width, (i+1)*width).
     */
    std::vector<std::int64_t> chunkHistogram(int bucket_width) const;

    /**
     * Fraction of wall-clock time the engine was executing batches
     * within [t0, t1], summed across replicas (so a 2-replica
     * recorder saturates at 2.0). Overlapping observations on the
     * same replica — a crash-cancelled batch recorded with its full
     * planned latency under the batches run after recovery — are
     * merged, never double-counted. A zero-length window (t0 == t1)
     * reports 0; t1 < t0 is a caller error.
     */
    double utilization(SimTime t0, SimTime t1) const;

    /**
     * Write the raw stream as CSV:
     * replica,start,latency,prefill_tokens,num_decodes.
     */
    void writeCsv(std::ostream &out) const;

    /** Write the CSV to a file (fatal on error). */
    void writeCsvFile(const std::string &path) const;

  private:
    std::vector<BatchObservation> observations_;
    std::vector<int> replicaIds_;
};

} // namespace qoserve

#endif // QOSERVE_METRICS_TELEMETRY_HH
