/**
 * @file
 * Admission controller implementation.
 */

#include "cluster/admission.hh"

#include <algorithm>
#include <cmath>

#include "simcore/logging.hh"

namespace qoserve {

AdmissionController::AdmissionController(Config cfg)
    : cfg_(cfg), bucket_(cfg.burstSize)
{
    // Misconfiguration is a user error, not an internal invariant:
    // fail with a clear message instead of aborting (mirrors
    // BlockManager's constructor validation).
    if (cfg_.policy == AdmissionPolicy::RateLimit) {
        if (!(cfg_.rateLimitQps > 0.0) ||
            !std::isfinite(cfg_.rateLimitQps))
            QOSERVE_FATAL("RateLimit admission requires a positive "
                          "finite rateLimitQps, got ",
                          cfg_.rateLimitQps);
        if (!(cfg_.burstSize >= 1.0) || !std::isfinite(cfg_.burstSize))
            QOSERVE_FATAL("RateLimit admission requires burstSize >= 1 "
                          "(a bucket that can never hold one token "
                          "admits nothing), got ",
                          cfg_.burstSize);
    }
    if (cfg_.policy == AdmissionPolicy::LoadShed) {
        if (cfg_.maxBacklogTokens <= 0)
            QOSERVE_FATAL("LoadShed admission requires a positive "
                          "maxBacklogTokens, got ",
                          cfg_.maxBacklogTokens);
    }
}

bool
AdmissionController::admit(const RequestSpec &spec, SimTime now,
                           const Scheduler &target)
{
    (void)spec;
    bool ok = true;
    switch (cfg_.policy) {
      case AdmissionPolicy::None:
        break;
      case AdmissionPolicy::RateLimit: {
        bucket_ = std::min(cfg_.burstSize,
                           bucket_ + (now - lastRefill_) *
                                         cfg_.rateLimitQps);
        lastRefill_ = now;
        // Epsilon absorbs accumulated floating-point refill error so
        // an exactly-at-rate arrival stream admits at the rate.
        if (bucket_ >= 1.0 - 1e-9)
            bucket_ = std::max(0.0, bucket_ - 1.0);
        else
            ok = false;
        break;
      }
      case AdmissionPolicy::LoadShed:
        ok = target.pendingPrefillTokens() < cfg_.maxBacklogTokens;
        break;
    }
    if (ok) {
        ++admitted_;
    } else {
        ++rejected_;
        if (trace_ != nullptr)
            trace_->emit(TraceEventKind::AdmissionReject, spec.id);
    }
    return ok;
}

} // namespace qoserve
