/**
 * @file
 * Admission controller implementation.
 */

#include "cluster/admission.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

AdmissionController::AdmissionController(Config cfg)
    : cfg_(cfg), bucket_(cfg.burstSize)
{
    if (cfg_.policy == AdmissionPolicy::RateLimit) {
        QOSERVE_ASSERT(cfg_.rateLimitQps > 0.0,
                       "rate limit must be positive");
        QOSERVE_ASSERT(cfg_.burstSize >= 1.0, "burst must be >= 1");
    }
    if (cfg_.policy == AdmissionPolicy::LoadShed) {
        QOSERVE_ASSERT(cfg_.maxBacklogTokens > 0,
                       "backlog threshold must be positive");
    }
}

bool
AdmissionController::admit(const RequestSpec &spec, SimTime now,
                           const Scheduler &target)
{
    (void)spec;
    bool ok = true;
    switch (cfg_.policy) {
      case AdmissionPolicy::None:
        break;
      case AdmissionPolicy::RateLimit: {
        bucket_ = std::min(cfg_.burstSize,
                           bucket_ + (now - lastRefill_) *
                                         cfg_.rateLimitQps);
        lastRefill_ = now;
        // Epsilon absorbs accumulated floating-point refill error so
        // an exactly-at-rate arrival stream admits at the rate.
        if (bucket_ >= 1.0 - 1e-9)
            bucket_ = std::max(0.0, bucket_ - 1.0);
        else
            ok = false;
        break;
      }
      case AdmissionPolicy::LoadShed:
        ok = target.pendingPrefillTokens() < cfg_.maxBacklogTokens;
        break;
    }
    if (ok)
        ++admitted_;
    else
        ++rejected_;
    return ok;
}

} // namespace qoserve
