/**
 * @file
 * Goodput search implementation.
 */

#include "cluster/capacity.hh"

#include <cmath>

#include "simcore/logging.hh"

namespace qoserve {

bool
meetsGoodputCriteria(const RunSummary &summary,
                     const GoodputCriteria &criteria)
{
    double rate = criteria.includeTbt ? summary.violationRateWithTbt
                                      : summary.violationRate;
    return rate <= criteria.maxViolationRate;
}

double
measureMaxGoodput(const LoadRunner &runner,
                  const GoodputCriteria &criteria,
                  const GoodputSearch &search)
{
    QOSERVE_ASSERT(search.startQps > 0.0 && search.resolutionQps > 0.0,
                   "bad goodput search bounds");

    auto passes = [&](double qps) {
        return meetsGoodputCriteria(runner(qps), criteria);
    };

    // Bracket: double until failure (or the cap).
    double lo = 0.0;
    double hi = search.startQps;
    while (hi <= search.maxQps && passes(hi)) {
        lo = hi;
        hi *= 2.0;
    }
    if (lo == 0.0)
        return 0.0; // Even the initial probe failed.
    if (hi > search.maxQps)
        return lo; // Passed everything up to the cap.

    // Binary search inside (lo passes, hi fails).
    while (hi - lo > search.resolutionQps) {
        double mid = 0.5 * (lo + hi);
        if (passes(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

int
replicasForLoad(double total_qps, double per_replica_goodput)
{
    QOSERVE_ASSERT(per_replica_goodput > 0.0,
                   "per-replica goodput must be positive");
    return static_cast<int>(std::ceil(total_qps / per_replica_goodput));
}

} // namespace qoserve
