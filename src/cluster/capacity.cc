/**
 * @file
 * Goodput search implementation.
 *
 * The search runs in two phases. Bracketing doubles the QPS until a
 * load point fails (or the cap is hit). Refinement then repeatedly
 * subdivides the bracket into GoodputSearch::gridFan sub-intervals
 * and evaluates the interior grid points; the first failing point
 * (all grid points being independent simulations) tightens the
 * bracket for the next round. Grid points of one round fan out
 * across GoodputSearch::jobs threads; because the probed grid is a
 * function of the bracket geometry alone, the returned goodput is
 * bit-identical for every job count — jobs = 1 simply evaluates the
 * same grid serially and stops early at the first failure.
 */

#include "cluster/capacity.hh"

#include <cmath>
#include <vector>

#include "simcore/logging.hh"
#include "simcore/thread_pool.hh"

namespace qoserve {

bool
meetsGoodputCriteria(const RunSummary &summary,
                     const GoodputCriteria &criteria)
{
    double rate = criteria.includeTbt ? summary.violationRateWithTbt
                                      : summary.violationRate;
    return rate <= criteria.maxViolationRate;
}

namespace {

/**
 * Index of the first point in @p points that fails the criteria, or
 * points.size() when all pass. With jobs > 1 every point is
 * evaluated concurrently (speculation past the first failure is
 * wasted work, not a behavior change); with jobs = 1 the scan stops
 * at the first failure.
 */
std::size_t
firstFailing(const std::vector<double> &points, int jobs,
             const LoadRunner &runner, const GoodputCriteria &criteria)
{
    auto passes = [&](double qps) {
        return meetsGoodputCriteria(runner(qps), criteria);
    };

    if (jobs <= 1 || points.size() <= 1) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (!passes(points[i]))
                return i;
        }
        return points.size();
    }

    std::vector<char> ok = par::parallelMap(
        jobs, points.size(),
        [&](std::size_t i) -> char { return passes(points[i]); });
    for (std::size_t i = 0; i < ok.size(); ++i) {
        if (!ok[i])
            return i;
    }
    return ok.size();
}

} // namespace

double
measureMaxGoodput(const LoadRunner &runner,
                  const GoodputCriteria &criteria,
                  const GoodputSearch &search)
{
    QOSERVE_ASSERT(search.startQps > 0.0 && search.resolutionQps > 0.0,
                   "bad goodput search bounds");
    QOSERVE_ASSERT(search.gridFan >= 2, "gridFan must be at least 2");
    int jobs = par::resolveJobs(search.jobs);

    // Bracket: the doubling ladder start * 2^i, capped at maxQps.
    std::vector<double> ladder;
    for (double q = search.startQps; q <= search.maxQps; q *= 2.0)
        ladder.push_back(q);
    if (ladder.empty())
        return 0.0; // startQps already beyond the cap.

    // Evaluate the ladder in ascending waves so a parallel run never
    // probes far past the first failure (high-QPS probes are the
    // most expensive simulations). The bracket depends only on the
    // first failing ladder point, so wave partitioning cannot change
    // the result.
    double lo = 0.0;
    std::size_t failed = ladder.size();
    std::size_t wave = static_cast<std::size_t>(jobs);
    for (std::size_t off = 0; off < ladder.size() && failed == ladder.size();
         off += wave) {
        std::size_t end = std::min(off + wave, ladder.size());
        std::vector<double> points(ladder.begin() + off,
                                   ladder.begin() + end);
        std::size_t idx = firstFailing(points, jobs, runner, criteria);
        if (idx < points.size())
            failed = off + idx;
        else
            lo = points.back();
    }
    if (failed == 0)
        return 0.0; // Even the initial probe failed.
    if (failed == ladder.size())
        return lo; // Passed everything up to the cap.
    lo = ladder[failed - 1];
    double hi = ladder[failed];

    // Refine: subdivide the bracket into gridFan sub-intervals (never
    // finer than the resolution) and evaluate the interior points as
    // one parallel grid; the first failure picks the next bracket.
    while (hi - lo > search.resolutionQps) {
        double spacing = (hi - lo) / search.gridFan;
        if (spacing < search.resolutionQps)
            spacing = search.resolutionQps;

        std::vector<double> points;
        for (int i = 1;; ++i) {
            double q = lo + spacing * i;
            if (q >= hi - 1e-12 * hi)
                break;
            points.push_back(q);
        }
        if (points.empty())
            break; // Bracket already at the resolution.

        std::size_t idx = firstFailing(points, jobs, runner, criteria);
        if (idx == points.size()) {
            lo = points.back();
        } else {
            hi = points[idx];
            if (idx > 0)
                lo = points[idx - 1];
        }
    }
    return lo;
}

int
replicasForLoad(double total_qps, double per_replica_goodput)
{
    QOSERVE_ASSERT(per_replica_goodput > 0.0,
                   "per-replica goodput must be positive");
    return static_cast<int>(std::ceil(total_qps / per_replica_goodput));
}

} // namespace qoserve
