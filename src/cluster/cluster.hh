/**
 * @file
 * Multi-replica cluster simulation with configurable routing.
 *
 * Reproduces the paper's deployment modes:
 *  - shared cluster: one replica group serves every tier with
 *    round-robin load balancing (QoServe's co-scheduling, §4.1);
 *  - siloed deployment: one replica group per QoS tier, each sized
 *    independently (the SOTA baseline of Fig. 1 / Table 4).
 */

#ifndef QOSERVE_CLUSTER_CLUSTER_HH
#define QOSERVE_CLUSTER_CLUSTER_HH

#include <memory>
#include <vector>

#include "audit/invariant_auditor.hh"
#include "cluster/admission.hh"
#include "cluster/replica.hh"
#include "metrics/slo_report.hh"

namespace qoserve {

/**
 * Load-balancing policy of a replica group.
 *
 * The paper's deployments use round-robin ("Both deployments use
 * round-robin load balancing across replicas", §4.1.1); the other
 * policies are provided for the load-balancer ablation bench.
 */
enum class LoadBalancePolicy
{
    RoundRobin,    ///< Cycle through replicas (paper default).
    LeastLoaded,   ///< Fewest live (incomplete) requests.
    ShortestQueue, ///< Fewest pending prefill tokens.
};

/** Display name of a load-balancing policy. */
const char *loadBalanceName(LoadBalancePolicy policy);

/**
 * Re-dispatch policy for requests handed back by a failed replica:
 * capped exponential backoff with a bounded retry budget.
 */
struct RetryPolicy
{
    /** Re-dispatch attempts before a request is abandoned. */
    int maxRetries = 3;

    /** Backoff before the first re-dispatch, seconds. */
    SimDuration initialBackoff = 0.05;

    /** Backoff growth per attempt. */
    double backoffMultiplier = 2.0;

    /** Backoff ceiling, seconds. */
    SimDuration maxBackoff = 2.0;

    /** Backoff before attempt @p attempt (0-based). */
    SimDuration backoffFor(int attempt) const;
};

/**
 * Per-replica circuit breaker at the cluster front door.
 *
 * A replica accumulating @p failureThreshold consecutive dispatch
 * failures (requests routed to it that bounced off a dead process) is
 * taken out of the routing set for @p cooldown seconds. After the
 * cooldown the breaker is half-open: the replica re-enters the
 * candidate set and the next dispatch routed to it is the probe — on
 * success the breaker closes, on failure it re-trips for another
 * cooldown. Threshold 0 (the default) disables the breaker entirely;
 * no state is consulted and routing is bit-identical to a build
 * without it.
 */
struct CircuitBreakerConfig
{
    /** Consecutive dispatch failures before tripping (0 = off). */
    int failureThreshold = 0;

    /** Seconds a tripped breaker stays open before half-open. */
    SimDuration cooldown = 1.0;

    /** True when the breaker participates in routing. */
    bool enabled() const { return failureThreshold > 0; }
};

/**
 * Degraded service modes the brownout controller steps through under
 * sustained overload (DESIGN.md §13). All fields at their defaults
 * mean full service.
 */
struct DegradedModes
{
    /** Cap on decode tokens per request (0 = uncapped). */
    int capTokens = 0;

    /** Tier whose arrivals are shed unserved (-1 = none). */
    int shedTier = -1;

    /** Bypass prefix-cache admission on every replica. */
    bool bypassCache = false;
};

/**
 * A cluster of replicas executing one trace.
 */
class ClusterSim
{
  public:
    /** Cluster-wide configuration. */
    struct Config
    {
        Replica::Config replica;

        /** Shared latency predictor; may be null for fixed-chunk
         *  policies. Not owned. */
        const LatencyPredictor *predictor = nullptr;

        /** Front-door admission control (default: admit all). */
        AdmissionController::Config admission{};

        /** Re-dispatch policy after replica failures. */
        RetryPolicy retry{};

        /**
         * Health-aware routing: skip down replicas and de-weight
         * stragglers when picking a target. With every replica
         * healthy the choice is identical to blind routing, so this
         * costs nothing on fault-free runs. Disable to model a
         * health-oblivious front door (the ext_failures baseline).
         */
        bool healthAwareRouting = true;

        /**
         * Cache-affinity routing: before the group's load-balancing
         * policy runs, probe every usable replica's prefix cache and
         * route to the one with the longest cached prefix of the
         * request's prompt (ties to the lowest replica index). A
         * zero-length match everywhere falls through to the normal
         * policy untouched (round-robin state is not advanced by an
         * affinity hit), so with the prefix cache off — every probe
         * returns zero — routing is bit-identical to this flag off.
         * Requires the replica prefix cache to be enabled.
         */
        bool cacheAffinityRouting = false;

        /** Per-replica circuit breaker (off by default). */
        CircuitBreakerConfig breaker{};

        /**
         * Deadline-aware cancellation: when a failed request enters
         * the retry path, abandon it immediately if even an
         * optimistic lower bound on its remaining service time —
         * one full-prefill iteration plus one minimal decode
         * iteration per remaining token, starting after the backoff —
         * already overshoots its completion deadline. Burning a retry
         * (and KV on the target replica) on it cannot possibly meet
         * the SLO. Off by default; the record reuses the
         * retryExhausted flag so the records CSV schema is unchanged.
         */
        bool deadlineCancel = false;
    };

    /**
     * @param cfg Cluster configuration.
     * @param trace Workload to execute (copied).
     */
    ClusterSim(Config cfg, Trace trace);

    /**
     * Add @p count replicas running schedulers from @p factory.
     *
     * @param count Replica count.
     * @param factory Scheduler factory.
     * @param lb Load-balancing policy within the group.
     * @return Group id for routeTier().
     */
    int addReplicaGroup(int count, const SchedulerFactory &factory,
                        LoadBalancePolicy lb =
                            LoadBalancePolicy::RoundRobin);

    /**
     * Route a tier's requests to a replica group (siloed mode).
     * Without any routing calls, all tiers go to group 0.
     */
    void routeTier(int tier_id, int group_id);

    /**
     * Inject all arrivals, run to completion, and return metrics.
     *
     * Every request runs to completion (arrival injection stops at
     * the end of the trace; the queues then drain), so summaries
     * carry no survivorship bias even under overload.
     */
    const MetricsCollector &run();

    /** Metrics collected so far. */
    const MetricsCollector &metrics() const { return metrics_; }

    /** Mutable collector access, for attaching a streaming record
     *  sink or disabling retention before run(). */
    MetricsCollector &metricsCollector() { return metrics_; }

    /** Replica access (stats, observers). */
    Replica &replica(std::size_t i) { return *replicas_[i]; }
    const Replica &replica(std::size_t i) const { return *replicas_[i]; }

    /** Number of replicas across all groups. */
    std::size_t numReplicas() const { return replicas_.size(); }

    /** GPUs consumed by the whole cluster. */
    int totalGpus() const;

    /** The shared event queue (tests and observers). */
    EventQueue &eventQueue() { return eq_; }

    /** Admission statistics. */
    const AdmissionController &admission() const { return admission_; }

    /** Requests abandoned after exhausting their retry budget. */
    std::uint64_t retriesExhausted() const { return retriesExhausted_; }

    /** Re-dispatch attempts performed across all requests. */
    std::uint64_t redispatches() const { return redispatches_; }

    /** Requests abandoned by deadline-aware cancellation. */
    std::uint64_t deadlineCancelled() const { return deadlineCancelled_; }

    /** Circuit-breaker trips across all replicas (incl. re-trips). */
    std::uint64_t breakerTrips() const { return breakerTrips_; }

    /** True when replica @p i's breaker is currently open (still in
     *  cooldown at the current simulation time). */
    bool breakerOpen(std::size_t i) const;

    /**
     * Blind the front door to replica @p i: routing decisions see a
     * snapshot of its state taken now (health, slowdown, load, queue
     * depth) instead of the live values, and its prefix cache can no
     * longer be probed — the control-plane-partition semantics of
     * DESIGN.md §13. Dispatches to a stale-viewed-up but actually
     * dead replica fail into the retry path like any dispatch to a
     * dead process. Idempotent per replica; no effect on replicas
     * never blinded, so an unpartitioned run is bit-identical to a
     * build without views.
     */
    void blindReplica(std::size_t i);

    /** Restore live visibility of replica @p i. */
    void unblindReplica(std::size_t i);

    /** Replicas currently blinded by a control-plane partition. */
    std::size_t blindedReplicas() const;

    /**
     * Apply (or update) the brownout controller's degraded modes.
     * Token capping and tier shedding act on subsequent arrivals at
     * the front door; the cache-bypass bit propagates to every
     * replica immediately.
     */
    void applyDegradedModes(const DegradedModes &modes);

    /** Degraded modes currently in force. */
    const DegradedModes &degradedModes() const { return modes_; }

    /** Arrivals shed unserved by the brownout controller. */
    std::uint64_t brownoutShed() const { return brownoutShed_; }

    /** Arrivals whose decode budget was capped by the brownout. */
    std::uint64_t brownoutCapped() const { return brownoutCapped_; }

    /** Tier table of the executing trace (workload vocabulary for
     *  controllers attached to this cluster). */
    const TierTable &tiers() const { return trace_.tiers; }

    /**
     * The active invariant auditor, or null when the build has checks
     * off and no auditor was installed.
     */
    InvariantAuditor *auditor() { return auditor_; }

    /**
     * Replace the auditor (not owned; null detaches). Call before
     * addReplicaGroup() so every replica sees it. Tests use this to
     * install a failFast-disabled auditor and inspect violations.
     */
    void setAuditor(InvariantAuditor *auditor);

    /**
     * Attach a lifecycle trace sink (not owned; null detaches).
     * Propagates to every replica, present and future — the front
     * door, admission controller, schedulers, and fault injector all
     * emit through it. With no sink attached every emission site is
     * an inlined null check.
     */
    void setTraceSink(TraceSink *sink);

    /** The attached trace sink, or null (the fault injector's way
     *  in). */
    TraceSink *traceSink() const { return traceScope_.sink; }

  private:
    struct Group
    {
        std::vector<std::size_t> replicaIdx;
        std::size_t nextRr = 0;
        LoadBalancePolicy lb = LoadBalancePolicy::RoundRobin;
    };

    /** pickReplica result when every replica in the group is down. */
    static constexpr std::size_t kNoReplica =
        static_cast<std::size_t>(-1);

    /**
     * The front door's (possibly stale) view of one replica. While a
     * control-plane partition blinds the replica, routing reads the
     * snapshot taken at partition start instead of live state.
     */
    struct ReplicaView
    {
        bool stale = false;
        ReplicaHealth health = ReplicaHealth::Up;
        double slowdown = 1.0;
        std::size_t liveRequests = 0;
        std::int64_t pendingPrefillTokens = 0;
    };

    /** Per-replica circuit-breaker state. */
    struct BreakerState
    {
        int consecutiveFailures = 0;
        bool open = false;
        SimTime reopenAt;
    };

    std::size_t pickReplica(Group &group, const RequestSpec &spec) const;
    void injectArrival(std::size_t index);

    /** Routing view of replica @p idx (stale while partitioned). */
    ReplicaHealth viewedHealth(std::size_t idx) const;
    double viewedSlowdown(std::size_t idx) const;
    std::size_t viewedLiveRequests(std::size_t idx) const;
    std::int64_t viewedPendingPrefillTokens(std::size_t idx) const;

    /** True when the view of @p idx is a stale partition snapshot. */
    bool viewStale(std::size_t idx) const
    {
        return !views_.empty() && views_[idx].stale;
    }

    /** A dispatch routed to @p idx bounced off a dead process. */
    void noteDispatchFailure(std::size_t idx);

    /** A dispatch routed to @p idx reached a live process. */
    void noteDispatchSuccess(std::size_t idx);

    /** Pick a target for a (possibly degraded) arrival and dispatch
     *  it: submit on a live replica, retry path on a dead target,
     *  rejection record when admission refuses it. */
    void dispatchArrival(const RequestSpec &spec);

    /** Record an arrival shed by the brownout controller. */
    void recordShed(const RequestSpec &spec);

    /**
     * True when @p snap's completion deadline is unreachable even
     * under the optimistic service lower bound, starting no earlier
     * than @p earliest_start.
     */
    bool deadlineUnreachable(const RequestFailureSnapshot &snap,
                             SimTime earliest_start) const;

    /**
     * Enter the retry path for @p snap: schedule a backed-off
     * re-dispatch, or record the request as retry-exhausted when its
     * budget is spent.
     */
    void requeue(RequestFailureSnapshot snap);

    /** Attempt one re-dispatch of a failed request. */
    void redispatch(RequestFailureSnapshot snap);

    /** Record an abandoned request (budget exhausted). */
    void recordExhausted(const RequestFailureSnapshot &snap);

    /** Record a request abandoned by deadline-aware cancellation. */
    void recordCancelled(const RequestFailureSnapshot &snap);

    Config cfg_;
    Trace trace_;
    EventQueue eq_;
    std::unique_ptr<InvariantAuditor> ownedAuditor_;
    InvariantAuditor *auditor_ = nullptr;
    std::vector<std::unique_ptr<Replica>> replicas_;
    std::vector<Group> groups_;
    std::vector<int> tierRoute_;
    MetricsCollector metrics_;
    AdmissionController admission_;

    /** Front-door trace handle (replica -1); replicas own their own. */
    TraceScope traceScope_;
    bool ran_ = false;
    std::uint64_t retriesExhausted_ = 0;
    std::uint64_t redispatches_ = 0;
    std::uint64_t deadlineCancelled_ = 0;

    /**
     * Stale routing views; empty until the first blindReplica() call,
     * so an unpartitioned run pays one emptiness check per lookup and
     * routes on live state exactly as before.
     */
    std::vector<ReplicaView> views_;

    /** Breaker state; empty until the breaker is enabled. */
    std::vector<BreakerState> breakers_;
    std::uint64_t breakerTrips_ = 0;

    /** Degraded modes in force (brownout controller). */
    DegradedModes modes_;
    std::uint64_t brownoutShed_ = 0;
    std::uint64_t brownoutCapped_ = 0;

    /**
     * Execution model mirroring the replicas' — prices the optimistic
     * remaining-service lower bound of deadline-aware cancellation.
     */
    PerfModel perf_;
};

/**
 * Convert a trace to its PD-disaggregated prefill-stage form: every
 * request emits exactly one token (the first token produced by the
 * prefill node); decode happens in a separate pool whose SLO
 * attainment is identical across schedulers (§4.1.3).
 */
Trace toPrefillOnlyTrace(Trace trace);

} // namespace qoserve

#endif // QOSERVE_CLUSTER_CLUSTER_HH
