/**
 * @file
 * Brownout controller implementation.
 */

#include "cluster/brownout.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

const char *
brownoutModeName(BrownoutMode mode)
{
    switch (mode) {
      case BrownoutMode::Normal:
        return "normal";
      case BrownoutMode::CapTokens:
        return "cap-tokens";
      case BrownoutMode::ShedLowTier:
        return "shed-low-tier";
      case BrownoutMode::BypassCache:
        return "bypass-cache";
    }
    QOSERVE_PANIC("unknown brownout mode");
}

BrownoutController::BrownoutController(const BrownoutConfig &cfg,
                                       ClusterSim &cluster)
    : cfg_(cfg), cluster_(cluster)
{
    if (!cfg_.enabled)
        return;
    if (!(cfg_.interval > 0.0))
        QOSERVE_FATAL("brownout interval must be positive, got ",
                      cfg_.interval);
    if (!(cfg_.enterBacklog > 0.0))
        QOSERVE_FATAL("brownout enter backlog must be positive, got ",
                      cfg_.enterBacklog);
    if (!(cfg_.exitBacklog < cfg_.enterBacklog) ||
        cfg_.exitBacklog < 0.0) {
        QOSERVE_FATAL("brownout exit backlog must be in [0, enter), "
                      "got exit=",
                      cfg_.exitBacklog, " enter=", cfg_.enterBacklog);
    }
    if (cfg_.enterSamples < 1 || cfg_.exitSamples < 1)
        QOSERVE_FATAL("brownout sample counts must be >= 1, got "
                      "enter=",
                      cfg_.enterSamples, " exit=", cfg_.exitSamples);
    if (cfg_.capTokens <= 0)
        QOSERVE_FATAL("brownout token cap must be positive, got ",
                      cfg_.capTokens);
    const int tiers = static_cast<int>(cluster_.tiers().size());
    if (cfg_.shedTier >= tiers)
        QOSERVE_FATAL("brownout shed tier ", cfg_.shedTier,
                      " outside the tier table (", tiers, " tiers)");
    shedTier_ = cfg_.shedTier >= 0 ? cfg_.shedTier : tiers - 1;
}

void
BrownoutController::start()
{
    if (!cfg_.enabled)
        return;
    QOSERVE_ASSERT(cluster_.numReplicas() > 0,
                   "brownout controller started before any replica "
                   "group was added");
    cluster_.eventQueue().scheduleDaemon(cluster_.eventQueue().now(),
                                         [this]() { fire(); });
}

double
BrownoutController::backlogPerReplica() const
{
    // Live (non-down) replicas only: during a zone outage the signal
    // must reflect the load concentrating on the survivors, not be
    // diluted by empty dead boxes.
    std::int64_t backlog = 0;
    std::size_t live = 0;
    for (std::size_t i = 0; i < cluster_.numReplicas(); ++i) {
        const Replica &replica = cluster_.replica(i);
        if (replica.health() == ReplicaHealth::Down)
            continue;
        backlog += replica.scheduler().pendingPrefillTokens();
        ++live;
    }
    if (live == 0)
        return 0.0;
    return static_cast<double>(backlog) / static_cast<double>(live);
}

DegradedModes
BrownoutController::modesFor(int level) const
{
    DegradedModes modes;
    if (level >= static_cast<int>(BrownoutMode::CapTokens))
        modes.capTokens = cfg_.capTokens;
    if (level >= static_cast<int>(BrownoutMode::ShedLowTier))
        modes.shedTier = shedTier_;
    if (level >= static_cast<int>(BrownoutMode::BypassCache))
        modes.bypassCache = true;
    return modes;
}

void
BrownoutController::stepTo(int level)
{
    level_ = level;
    maxLevel_ = std::max(maxLevel_, level_);
    ++steps_;
    overCount_ = 0;
    underCount_ = 0;
    cluster_.applyDegradedModes(modesFor(level_));
    if (TraceSink *sink = cluster_.traceSink()) {
        sink->emit({TraceEventKind::BrownoutStep,
                    cluster_.eventQueue().now(), kNoTraceRequest, -1,
                    level_, 0.0});
    }
}

void
BrownoutController::fire()
{
    double backlog = backlogPerReplica();
    if (backlog > cfg_.enterBacklog) {
        ++overCount_;
        underCount_ = 0;
        if (overCount_ >= cfg_.enterSamples &&
            level_ < kBrownoutModes - 1)
            stepTo(level_ + 1);
    } else if (backlog < cfg_.exitBacklog) {
        ++underCount_;
        overCount_ = 0;
        if (underCount_ >= cfg_.exitSamples && level_ > 0)
            stepTo(level_ - 1);
    } else {
        // Inside the hysteresis band: hold the level, reset both
        // streaks so a boundary-straddling signal cannot creep a
        // step through.
        overCount_ = 0;
        underCount_ = 0;
    }
    // MetricsSampler discipline: observe the simulation, never
    // extend it. Daemon scheduling keeps this tick and the metrics
    // sampler's from counting as work for each other.
    if (cluster_.eventQueue().hasRealWork()) {
        cluster_.eventQueue().scheduleDaemonAfter(cfg_.interval,
                                                  [this]() { fire(); });
    }
}

} // namespace qoserve
