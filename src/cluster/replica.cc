/**
 * @file
 * Replica implementation.
 */

#include "cluster/replica.hh"

#include "audit/invariant_auditor.hh"
#include "simcore/logging.hh"

namespace qoserve {

Replica::Replica(EventQueue &eq, Config cfg,
                 const SchedulerFactory &factory,
                 const LatencyPredictor *predictor, TierTable tiers,
                 std::vector<AppStats> app_stats,
                 std::function<void(const RequestRecord &)> on_complete)
    : eq_(eq), perf_(cfg.hw, cfg.perfParams),
      kv_(cfg.hw.kvCapacityTokens(), cfg.kvBlockTokens),
      tiers_(std::move(tiers)), appStats_(std::move(app_stats)),
      onComplete_(std::move(on_complete))
{
    SchedulerEnv env;
    env.kv = &kv_;
    env.perf = &perf_;
    env.predictor = predictor;
    scheduler_ = factory(env);
    QOSERVE_ASSERT(scheduler_ != nullptr, "factory returned no scheduler");

    auto *chunked = dynamic_cast<ChunkedScheduler *>(scheduler_.get());
    QOSERVE_ASSERT(chunked != nullptr,
                   "replica requires a ChunkedScheduler");
    chunked->setCompletionHandler([this](Request *req) {
        RequestRecord rec = req->record();
        live_.erase(req->id());
        if (onComplete_)
            onComplete_(rec);
    });
}

void
Replica::submit(const RequestSpec &spec)
{
    QOSERVE_ASSERT(spec.tierId >= 0 &&
                       spec.tierId < static_cast<int>(tiers_.size()),
                   "request references unknown tier");
    AppStats stats;
    if (spec.appId >= 0 &&
        spec.appId < static_cast<int>(appStats_.size())) {
        stats = appStats_[spec.appId];
    }
    auto req = std::make_unique<Request>(spec, tiers_[spec.tierId], stats);
    Request *ptr = req.get();
    auto [it, inserted] = live_.emplace(spec.id, std::move(req));
    QOSERVE_ASSERT(inserted, "duplicate request id submitted");
    scheduler_->enqueue(ptr, eq_.now());
    maybeStartIteration();
}

void
Replica::maybeStartIteration()
{
    if (busy_ || !scheduler_->hasWork())
        return;

    SimTime start = eq_.now();
    Batch batch = scheduler_->formBatch(start);
    if (batch.empty())
        return;

    SimDuration latency = perf_.iterationTime(batch.work());
    QOSERVE_ASSERT(latency > 0.0, "non-empty batch with zero latency");
    busy_ = true;
    ++iterations_;
    busyTime_ += latency;

    if (observer_) {
        BatchObservation obs;
        obs.start = start;
        obs.latency = latency;
        obs.prefillTokens = batch.prefillTokens();
        obs.numDecodes = static_cast<int>(batch.decodes.size());
        observer_(obs);
    }

    eq_.scheduleAfter(latency, [this, batch = std::move(batch), start]() {
        completeIteration(batch, start);
    });
}

void
Replica::completeIteration(const Batch &batch, SimTime)
{
    busy_ = false;
    scheduler_->onBatchComplete(batch, eq_.now());
    // Audit between batch completion and the next formBatch: every
    // queue and the KV cache are at rest here.
    if (auditor_ != nullptr)
        auditor_->onIterationComplete(kv_, *scheduler_, eq_);
    maybeStartIteration();
}

} // namespace qoserve
