/**
 * @file
 * Replica implementation.
 */

#include "cluster/replica.hh"

#include <algorithm>

#include "audit/invariant_auditor.hh"
#include "simcore/logging.hh"

namespace qoserve {

const char *
replicaHealthName(ReplicaHealth health)
{
    switch (health) {
      case ReplicaHealth::Up:
        return "up";
      case ReplicaHealth::Degraded:
        return "degraded";
      case ReplicaHealth::Down:
        return "down";
    }
    QOSERVE_PANIC("unknown replica health");
}

Replica::Replica(EventQueue &eq, Config cfg,
                 const SchedulerFactory &factory,
                 const LatencyPredictor *predictor, TierTable tiers,
                 std::vector<AppStats> app_stats,
                 std::function<void(const RequestRecord &)> on_complete)
    : eq_(eq), perf_(cfg.hw, cfg.perfParams),
      kv_(TokenCount{cfg.hw.kvCapacityTokens()}, TokenCount{cfg.kvBlockTokens}),
      factory_(factory), predictor_(predictor), tiers_(std::move(tiers)),
      appStats_(std::move(app_stats)),
      onComplete_(std::move(on_complete))
{
    // The cache must exist before the scheduler: the factory wires it
    // into the scheduler environment.
    prefixCache_ = std::make_unique<PrefixCache>(kv_, cfg.prefixCache);
    prefixCache_->setTrace(&trace_);
    buildScheduler();
}

Replica::~Replica()
{
    // The scheduler's queues point into the pool; drop them before
    // the requests they reference.
    scheduler_.reset();
    inflightBatch_.clear();
    // qoserve-lint: allow(unordered-iter) — destruction is unobservable.
    for (auto &entry : live_)
        pool_.destroy(entry.second);
    live_.clear();
}

void
Replica::buildScheduler()
{
    SchedulerEnv env;
    env.kv = &kv_;
    env.perf = &perf_;
    env.predictor = predictor_;
    env.prefixCache = prefixCache_.get();
    env.trace = &trace_;
    scheduler_ = factory_(env);
    QOSERVE_ASSERT(scheduler_ != nullptr, "factory returned no scheduler");

    auto *chunked = dynamic_cast<ChunkedScheduler *>(scheduler_.get());
    QOSERVE_ASSERT(chunked != nullptr,
                   "replica requires a ChunkedScheduler");
    chunked->setCompletionHandler([this](Request *req) {
        RequestRecord rec = req->record();
        live_.erase(req->id());
        pool_.destroy(req);
        if (onComplete_)
            onComplete_(rec);
    });
}

Request *
Replica::admit(const RequestSpec &spec)
{
    QOSERVE_ASSERT(health_ != ReplicaHealth::Down,
                   "request submitted to a down replica");
    QOSERVE_ASSERT(spec.tierId >= 0 &&
                       spec.tierId < static_cast<int>(tiers_.size()),
                   "request references unknown tier");
    AppStats stats;
    if (spec.appId >= 0 &&
        spec.appId < static_cast<int>(appStats_.size())) {
        stats = appStats_[spec.appId];
    }
    Request *ptr = pool_.create(spec, tiers_[spec.tierId], stats);
    auto [it, inserted] = live_.emplace(spec.id, ptr);
    if (!inserted) {
        pool_.destroy(ptr);
        QOSERVE_PANIC("duplicate request id submitted: ", spec.id);
    }
    return ptr;
}

void
Replica::submit(const RequestSpec &spec)
{
    Request *req = admit(spec);
    attachCachedPrefix(req);
    scheduler_->enqueue(req, eq_.now());
    maybeStartIteration();
}

void
Replica::resubmit(const RequestFailureSnapshot &snap)
{
    Request *req = admit(snap.spec);
    req->restoreForRetry(snap);
    // Re-resolve the prefix against *this* replica's cache — the one
    // on the crashed replica died with it.
    attachCachedPrefix(req);
    scheduler_->enqueue(req, eq_.now());
    maybeStartIteration();
}

void
Replica::attachCachedPrefix(Request *req)
{
    if (!prefixCache_->enabled() || prefixBypass_)
        return;
    int tokens = prefixCache_->attach(req->id(), req->spec(), eq_.now());
    if (tokens > 0)
        req->attachCachedPrefix(TokenCount{tokens});
}

void
Replica::maybeStartIteration()
{
    if (busy_ || health_ == ReplicaHealth::Down ||
        !scheduler_->hasWork())
        return;

    SimTime start = eq_.now();
    scheduler_->formBatchInto(inflightBatch_, start);
    const Batch &batch = inflightBatch_;
    if (batch.empty())
        return;

    // Straggling multiplies latency; the healthy factor of exactly
    // 1.0 leaves the product bit-identical to the undisturbed run.
    SimDuration latency = perf_.iterationTime(batch.work()) * slowdown_;
    QOSERVE_ASSERT(latency > 0.0, "non-empty batch with zero latency");
    busy_ = true;
    ++iterations_;
    inflightStart_ = start;
    inflightLatency_ = latency;

    if (observer_) {
        BatchObservation obs;
        obs.start = start;
        obs.latency = latency;
        obs.prefillTokens = batch.prefillTokens();
        obs.numDecodes = static_cast<int>(batch.decodes.size());
        observer_(obs);
    }

    if (trace_.on()) {
        trace_.emit(TraceEventKind::IterStart, kNoTraceRequest,
                    batch.prefillTokens(),
                    static_cast<double>(batch.decodes.size()));
        for (const ScheduledChunk &chunk : batch.prefills) {
            trace_.emit(TraceEventKind::ChunkStart,
                        chunk.request->id(), chunk.chunkTokens);
        }
    }

    // The closure captures only `this`: the batch lives in
    // inflightBatch_, so the capture fits std::function's small
    // buffer and the iteration hot path performs no heap allocation.
    inflightEvent_ = eq_.scheduleAfter(latency, [this]() {
        busyTime_ += inflightLatency_;
        completeIteration(inflightBatch_, inflightStart_);
    });
}

void
Replica::completeIteration(const Batch &batch, SimTime)
{
    busy_ = false;
    inflightEvent_ = 0;
    trace_.emit(TraceEventKind::IterEnd);
    scheduler_->onBatchComplete(batch, eq_.now());
    // Audit between batch completion and the next formBatch: every
    // queue and the KV cache are at rest here.
    if (auditor_ != nullptr)
        auditor_->onIterationComplete(kv_, *scheduler_, eq_,
                                      prefixCache_.get());
    maybeStartIteration();
}

void
Replica::fail()
{
    QOSERVE_ASSERT(health_ != ReplicaHealth::Down,
                   "fail() on an already-down replica");
    QOSERVE_ASSERT(failureHandler_,
                   "replica crash with no failure handler installed: "
                   "live requests would be lost");
    health_ = ReplicaHealth::Down;
    slowdown_ = 1.0;
    ++crashes_;

    // Discard the in-flight batch: its completion event is cancelled
    // (tombstoned in the queue) and only the elapsed part of the
    // iteration counts as busy time.
    if (busy_) {
        eq_.cancel(inflightEvent_);
        busyTime_ += eq_.now() - inflightStart_;
        busy_ = false;
        inflightEvent_ = 0;
        // The discarded batch points into live_, which is about to be
        // destroyed; drop the stale request pointers now.
        inflightBatch_.clear();
        // Close the aborted iteration on the trace's engine track.
        trace_.emit(TraceEventKind::IterEnd, kNoTraceRequest, 1);
    }

    // Snapshot every live request in id order — live_ is hash-ordered
    // and the hand-back order must be deterministic.
    std::vector<RequestFailureSnapshot> snaps;
    snaps.reserve(live_.size());
    // qoserve-lint: allow(unordered-iter) — sorted below.
    for (const auto &entry : live_)
        snaps.push_back(entry.second->failureSnapshot());
    std::sort(snaps.begin(), snaps.end(),
              [](const RequestFailureSnapshot &a,
                 const RequestFailureSnapshot &b) {
                  return a.spec.id < b.spec.id;
              });

    // The process is gone: every KV block is freed at once, the
    // scheduler is rebuilt empty (its queues pointed into live_), and
    // the request objects are destroyed after snapshotting.
    kv_.releaseAll();
    // The prefix cache's blocks died in releaseAll(); drop the tree
    // that pointed at them.
    prefixCache_->dropAll();
    buildScheduler();
    // qoserve-lint: allow(unordered-iter) — destruction is unobservable.
    for (auto &entry : live_)
        pool_.destroy(entry.second);
    live_.clear();

    if (auditor_ != nullptr)
        auditor_->onReplicaCrash(kv_, *scheduler_, live_.size(),
                                 eq_.now());

    for (const RequestFailureSnapshot &snap : snaps) {
        trace_.emit(TraceEventKind::RequestFailed, snap.spec.id);
        failureHandler_(snap);
    }
}

void
Replica::recover()
{
    QOSERVE_ASSERT(health_ == ReplicaHealth::Down,
                   "recover() on a replica that is not down");
    health_ = ReplicaHealth::Up;
    slowdown_ = 1.0;
    maybeStartIteration();
}

void
Replica::setSlowdown(double factor)
{
    QOSERVE_ASSERT(health_ != ReplicaHealth::Down,
                   "setSlowdown() on a down replica");
    QOSERVE_ASSERT(factor >= 1.0,
                   "slowdown factor must be >= 1, got ", factor);
    slowdown_ = factor;
    health_ = factor > 1.0 ? ReplicaHealth::Degraded : ReplicaHealth::Up;
}

} // namespace qoserve
