/**
 * @file
 * Disaggregated serving implementation.
 */

#include "cluster/disagg.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

DecodeReplica::DecodeReplica(
    EventQueue &eq, Replica::Config cfg, DecodePolicy policy,
    SimDuration strictest_tbt, int max_batch,
    std::function<void(const RequestRecord &)> on_complete)
    : eq_(eq), perf_(cfg.hw, cfg.perfParams),
      kv_(TokenCount{cfg.hw.kvCapacityTokens()}, TokenCount{cfg.kvBlockTokens}), policy_(policy),
      strictestTbt_(strictest_tbt), maxBatch_(max_batch),
      onComplete_(std::move(on_complete))
{
    QOSERVE_ASSERT(strictestTbt_ > 0.0, "TBT target must be positive");
    QOSERVE_ASSERT(maxBatch_ > 0, "decode batch must be positive");
}

void
DecodeReplica::admit(std::unique_ptr<Request> req)
{
    QOSERVE_ASSERT(req->phase() == RequestPhase::Decoding,
                   "decode pool admits decoding requests only");
    Request *ptr = req.get();
    auto [it, inserted] = owned_.emplace(req->id(), std::move(req));
    QOSERVE_ASSERT(inserted, "duplicate decode admission");
    pending_.push_back(ptr);
    maybeStart();
}

SimDuration
DecodeReplica::iterTime(const std::vector<Request *> &batch) const
{
    BatchWork w;
    w.numDecodes = static_cast<int>(batch.size());
    for (const Request *r : batch)
        w.decodeCtxSum += r->contextLength();
    return perf_.iterationTime(w);
}

std::vector<Request *>
DecodeReplica::selectBatch()
{
    if (policy_ == DecodePolicy::StrictestTbtCap) {
        // Longest admission-order prefix whose iteration fits the
        // strictest TBT; always make progress with at least one.
        std::vector<Request *> batch;
        for (Request *r : active_) {
            batch.push_back(r);
            if (batch.size() > 1 && iterTime(batch) > strictestTbt_) {
                batch.pop_back();
                break;
            }
        }
        return batch;
    }

    // DeadlineAware: serve overdue requests unconditionally, then
    // add requests in deadline order while the predicted iteration
    // still completes before the earliest selected deadline.
    std::vector<Request *> sorted = active_;
    std::sort(sorted.begin(), sorted.end(), [](Request *a, Request *b) {
        return a->nextTokenDeadline() < b->nextTokenDeadline();
    });

    std::vector<Request *> batch;
    SimTime now = eq_.now();
    SimTime earliest = kTimeNever;
    for (Request *r : sorted) {
        SimTime deadline = r->nextTokenDeadline();
        batch.push_back(r);
        if (deadline <= now)
            continue; // Already late: serve as soon as possible.
        SimTime bound = std::min(earliest, deadline);
        if (now + iterTime(batch) > bound) {
            batch.pop_back();
            break;
        }
        earliest = bound;
    }
    if (batch.empty() && !sorted.empty())
        batch.push_back(sorted.front());
    return batch;
}

void
DecodeReplica::maybeStart()
{
    if (busy_)
        return;

    // Promote pending requests: reserve the *final* context (current
    // KV plus all remaining tokens) up front so iterations never run
    // out of blocks mid-flight.
    while (!pending_.empty() &&
           active_.size() < static_cast<std::size_t>(maxBatch_)) {
        Request *r = pending_.front();
        std::int64_t reserve = r->contextLength() + r->decodeRemaining();
        if (!kv_.grow(r->id(), TokenCount{reserve}))
            break;
        pending_.pop_front();
        active_.push_back(r);
    }

    if (active_.empty())
        return;

    std::vector<Request *> batch = selectBatch();
    QOSERVE_ASSERT(!batch.empty(), "empty decode batch with work");
    SimDuration latency = iterTime(batch);
    busy_ = true;
    ++iterations_;
    eq_.scheduleAfter(latency, [this, batch = std::move(batch)]() {
        completeIteration(batch);
    });
}

void
DecodeReplica::completeIteration(std::vector<Request *> batch)
{
    busy_ = false;
    SimTime now = eq_.now();
    for (Request *r : batch)
        r->applyDecodeToken(now);

    auto mid = std::stable_partition(
        active_.begin(), active_.end(), [](Request *r) {
            return r->phase() != RequestPhase::Finished;
        });
    std::vector<Request *> done(mid, active_.end());
    active_.erase(mid, active_.end());
    for (Request *r : done) {
        kv_.release(r->id());
        RequestRecord rec = r->record();
        owned_.erase(r->id());
        if (onComplete_)
            onComplete_(rec);
    }
    maybeStart();
}

DisaggCluster::DisaggCluster(Config cfg, Trace trace)
    : cfg_(std::move(cfg)), trace_(std::move(trace)),
      metrics_(trace_.tiers)
{
    QOSERVE_ASSERT(cfg_.numPrefillReplicas > 0 &&
                       cfg_.numDecodeReplicas > 0,
                   "pools must be non-empty");
    QOSERVE_ASSERT(cfg_.prefillFactory != nullptr,
                   "prefill factory required");
    QOSERVE_ASSERT(cfg_.kvTransferBandwidth > 0.0,
                   "transfer bandwidth must be positive");

    SimDuration strictest_tbt = kDurationNever;
    for (const QosTier &tier : trace_.tiers) {
        if (tier.interactive)
            strictest_tbt = std::min(strictest_tbt, tier.tbtSlo);
    }
    if (strictest_tbt == kDurationNever)
        strictest_tbt = 0.1; // No interactive tier: loose default.

    for (int i = 0; i < cfg_.numPrefillReplicas; ++i) {
        prefillPool_.push_back(std::make_unique<Replica>(
            eq_, cfg_.replica, cfg_.prefillFactory, cfg_.predictor,
            trace_.tiers, trace_.appStats,
            [this](const RequestRecord &rec) { onPrefillDone(rec); }));
    }
    for (int i = 0; i < cfg_.numDecodeReplicas; ++i) {
        decodePool_.push_back(std::make_unique<DecodeReplica>(
            eq_, cfg_.replica, cfg_.decodePolicy, strictest_tbt,
            cfg_.maxDecodeBatch,
            [this](const RequestRecord &rec) { metrics_.record(rec); }));
    }
}

void
DisaggCluster::injectArrival(std::size_t index)
{
    // Prefill nodes see the request as prefill-only: it "completes"
    // there when the first token is produced.
    RequestSpec prefill_spec = trace_.requests[index];
    prefill_spec.decodeTokens = 1;
    prefillPool_[prefillRr_]->submit(prefill_spec);
    prefillRr_ = (prefillRr_ + 1) % prefillPool_.size();

    std::size_t next = index + 1;
    if (next < trace_.requests.size()) {
        eq_.schedule(trace_.requests[next].arrival,
                     [this, next]() { injectArrival(next); });
    }
}

void
DisaggCluster::onPrefillDone(const RequestRecord &rec)
{
    const RequestSpec &spec = trace_.requests[rec.spec.id];
    SimTime first_token = rec.finishTime;

    // Transfer the prompt KV to the decode pool.
    double bytes =
        static_cast<double>(spec.promptTokens) *
        static_cast<double>(cfg_.replica.hw.model.kvBytesPerToken());
    kvBytesTransferred_ += bytes;
    SimDuration delay = bytes / cfg_.kvTransferBandwidth;

    eq_.scheduleAfter(delay, [this, spec, first_token]() {
        AppStats stats;
        if (spec.appId >= 0 &&
            spec.appId < static_cast<int>(trace_.appStats.size())) {
            stats = trace_.appStats[spec.appId];
        }
        auto req = std::make_unique<Request>(
            spec, trace_.tiers[spec.tierId], stats);
        req->primeForDecode(first_token);
        if (req->phase() == RequestPhase::Finished) {
            metrics_.record(req->record());
            return;
        }
        decodePool_[decodeRr_]->admit(std::move(req));
        decodeRr_ = (decodeRr_ + 1) % decodePool_.size();
    });
}

const MetricsCollector &
DisaggCluster::run()
{
    QOSERVE_ASSERT(!ran_, "DisaggCluster::run() called twice");
    ran_ = true;
    if (!trace_.requests.empty()) {
        eq_.schedule(trace_.requests.front().arrival,
                     [this]() { injectArrival(0); });
    }
    eq_.run();
    QOSERVE_ASSERT(metrics_.size() == trace_.requests.size(),
                   "requests lost in disaggregated pipeline: ",
                   metrics_.size(), " of ", trace_.requests.size());
    return metrics_;
}

} // namespace qoserve
