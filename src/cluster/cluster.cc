/**
 * @file
 * Cluster simulation implementation.
 */

#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>

#include "simcore/logging.hh"

namespace qoserve {

SimDuration
RetryPolicy::backoffFor(int attempt) const
{
    SimDuration delay = initialBackoff;
    for (int i = 0; i < attempt && delay < maxBackoff; ++i)
        delay *= backoffMultiplier;
    return std::min(delay, maxBackoff);
}

ClusterSim::ClusterSim(Config cfg, Trace trace)
    : cfg_(cfg), trace_(std::move(trace)),
      tierRoute_(trace_.tiers.size(), 0), metrics_(trace_.tiers),
      admission_(cfg_.admission),
      perf_(cfg_.replica.hw, cfg_.replica.perfParams)
{
    if (cfg_.breaker.enabled() &&
        !(cfg_.breaker.cooldown > SimDuration{0.0})) {
        QOSERVE_FATAL("circuit-breaker cooldown must be positive, "
                      "got ",
                      cfg_.breaker.cooldown);
    }
    QOSERVE_ASSERT(!trace_.tiers.empty(), "trace has no tiers");
    if (audit::checksEnabled()) {
        // Builds with checks on audit themselves by default; a run
        // that survives to completion is then certified corruption
        // free. Release builds (level off) skip the hook entirely.
        ownedAuditor_ = std::make_unique<InvariantAuditor>();
        auditor_ = ownedAuditor_.get();
    }
}

void
ClusterSim::setAuditor(InvariantAuditor *auditor)
{
    auditor_ = auditor;
    for (auto &replica : replicas_)
        replica->attachAuditor(auditor_);
}

void
ClusterSim::setTraceSink(TraceSink *sink)
{
    traceScope_.sink = sink;
    traceScope_.clock = &eq_;
    traceScope_.replica = -1;
    admission_.setTrace(&traceScope_);
    for (std::size_t i = 0; i < replicas_.size(); ++i)
        replicas_[i]->setTraceSink(sink, ReplicaId{static_cast<int>(i)});
}

const char *
loadBalanceName(LoadBalancePolicy policy)
{
    switch (policy) {
      case LoadBalancePolicy::RoundRobin:
        return "round-robin";
      case LoadBalancePolicy::LeastLoaded:
        return "least-loaded";
      case LoadBalancePolicy::ShortestQueue:
        return "shortest-queue";
    }
    QOSERVE_PANIC("unknown load-balance policy");
}

int
ClusterSim::addReplicaGroup(int count, const SchedulerFactory &factory,
                            LoadBalancePolicy lb)
{
    QOSERVE_ASSERT(count > 0, "group needs at least one replica");
    Group group;
    group.lb = lb;
    for (int i = 0; i < count; ++i) {
        auto replica = std::make_unique<Replica>(
            eq_, cfg_.replica, factory, cfg_.predictor, trace_.tiers,
            trace_.appStats, [this](const RequestRecord &rec) {
                if (auditor_ != nullptr)
                    auditor_->checkRecord(rec, trace_.tiers);
                metrics_.record(rec);
            });
        replica->attachAuditor(auditor_);
        replica->setFailureHandler(
            [this](const RequestFailureSnapshot &snap) {
                requeue(snap);
            });
        if (traceScope_.sink != nullptr) {
            replica->setTraceSink(
                traceScope_.sink,
                ReplicaId{static_cast<int>(replicas_.size())});
        }
        group.replicaIdx.push_back(replicas_.size());
        replicas_.push_back(std::move(replica));
        breakers_.push_back(BreakerState{});
    }
    groups_.push_back(std::move(group));
    return static_cast<int>(groups_.size()) - 1;
}

void
ClusterSim::routeTier(int tier_id, int group_id)
{
    QOSERVE_ASSERT(tier_id >= 0 &&
                       tier_id < static_cast<int>(tierRoute_.size()),
                   "unknown tier");
    QOSERVE_ASSERT(group_id >= 0 &&
                       group_id < static_cast<int>(groups_.size()),
                   "unknown group");
    tierRoute_[tier_id] = group_id;
}

ReplicaHealth
ClusterSim::viewedHealth(std::size_t idx) const
{
    return viewStale(idx) ? views_[idx].health
                          : replicas_[idx]->health();
}

double
ClusterSim::viewedSlowdown(std::size_t idx) const
{
    return viewStale(idx) ? views_[idx].slowdown
                          : replicas_[idx]->slowdown();
}

std::size_t
ClusterSim::viewedLiveRequests(std::size_t idx) const
{
    return viewStale(idx) ? views_[idx].liveRequests
                          : replicas_[idx]->liveRequests();
}

std::int64_t
ClusterSim::viewedPendingPrefillTokens(std::size_t idx) const
{
    return viewStale(idx)
               ? views_[idx].pendingPrefillTokens
               : replicas_[idx]->scheduler().pendingPrefillTokens();
}

bool
ClusterSim::breakerOpen(std::size_t i) const
{
    return cfg_.breaker.enabled() && breakers_[i].open &&
           eq_.now() < breakers_[i].reopenAt;
}

std::size_t
ClusterSim::pickReplica(Group &group, const RequestSpec &spec) const
{
    // Health-aware routing skips down replicas and multiplies load
    // scores by the straggler slowdown. With every replica Up the
    // skip never triggers and the factor is exactly 1.0, so the
    // choice (including tie-breaks) matches blind routing bit for
    // bit — fault-free runs are unchanged. All reads go through the
    // viewed* accessors: under a control-plane partition they return
    // the stale snapshot taken when the replica was blinded, and on
    // an unpartitioned run they are pure pass-throughs. An open
    // circuit breaker removes its replica from the candidate set even
    // for a health-oblivious front door — that is the breaker's whole
    // point; once the cooldown elapses the replica re-enters and the
    // next dispatch is the half-open probe.
    const bool aware = cfg_.healthAwareRouting;
    auto usable = [&](std::size_t idx) {
        if (aware && viewedHealth(idx) == ReplicaHealth::Down)
            return false;
        return !breakerOpen(idx);
    };

    // Cache-affinity pre-pass: the replica already holding the
    // longest cached prefix of this prompt serves it cheapest. Only a
    // strictly positive match diverts the request — a universal miss
    // (in particular, every probe when the prefix cache is disabled)
    // leaves the policy below, including its round-robin cursor,
    // exactly as if this pass did not exist. A blinded replica's
    // cache cannot be probed across the partition, so it never wins
    // the pre-pass.
    if (cfg_.cacheAffinityRouting) {
        std::size_t best = kNoReplica;
        int best_tokens = 0;
        for (std::size_t idx : group.replicaIdx) {
            if (!usable(idx) || viewStale(idx))
                continue;
            int tokens = replicas_[idx]->probeCachedTokens(spec);
            if (tokens > best_tokens) {
                best = idx;
                best_tokens = tokens;
            }
        }
        if (best != kNoReplica)
            return best;
    }

    switch (group.lb) {
      case LoadBalancePolicy::RoundRobin: {
        const std::size_t n = group.replicaIdx.size();
        for (std::size_t k = 0; k < n; ++k) {
            std::size_t slot = (group.nextRr + k) % n;
            std::size_t idx = group.replicaIdx[slot];
            if (usable(idx)) {
                group.nextRr = (slot + 1) % n;
                return idx;
            }
        }
        return kNoReplica;
      }
      case LoadBalancePolicy::LeastLoaded: {
        std::size_t best = kNoReplica;
        double best_score = 0.0;
        for (std::size_t idx : group.replicaIdx) {
            if (!usable(idx))
                continue;
            double score =
                static_cast<double>(viewedLiveRequests(idx)) *
                (aware ? viewedSlowdown(idx) : 1.0);
            if (best == kNoReplica || score < best_score) {
                best = idx;
                best_score = score;
            }
        }
        return best;
      }
      case LoadBalancePolicy::ShortestQueue: {
        std::size_t best = kNoReplica;
        double best_score = 0.0;
        for (std::size_t idx : group.replicaIdx) {
            if (!usable(idx))
                continue;
            double score =
                static_cast<double>(viewedPendingPrefillTokens(idx)) *
                (aware ? viewedSlowdown(idx) : 1.0);
            if (best == kNoReplica || score < best_score) {
                best = idx;
                best_score = score;
            }
        }
        return best;
      }
    }
    QOSERVE_PANIC("unknown load-balance policy");
}

void
ClusterSim::blindReplica(std::size_t i)
{
    QOSERVE_ASSERT(i < replicas_.size(), "blindReplica: bad index");
    if (views_.empty())
        views_.resize(replicas_.size());
    ReplicaView &view = views_[i];
    view.stale = true;
    view.health = replicas_[i]->health();
    view.slowdown = replicas_[i]->slowdown();
    view.liveRequests = replicas_[i]->liveRequests();
    view.pendingPrefillTokens =
        replicas_[i]->scheduler().pendingPrefillTokens();
}

void
ClusterSim::unblindReplica(std::size_t i)
{
    QOSERVE_ASSERT(i < replicas_.size(), "unblindReplica: bad index");
    if (!views_.empty())
        views_[i] = ReplicaView{};
}

std::size_t
ClusterSim::blindedReplicas() const
{
    std::size_t n = 0;
    for (const ReplicaView &view : views_)
        n += view.stale ? 1 : 0;
    return n;
}

void
ClusterSim::noteDispatchFailure(std::size_t idx)
{
    if (!cfg_.breaker.enabled())
        return;
    BreakerState &st = breakers_[idx];
    ++st.consecutiveFailures;
    // A failed half-open probe re-trips immediately; a closed breaker
    // trips once the consecutive-failure run reaches the threshold.
    if (st.open || st.consecutiveFailures >=
                       cfg_.breaker.failureThreshold) {
        st.open = true;
        st.reopenAt = eq_.now() + cfg_.breaker.cooldown;
        ++breakerTrips_;
        traceScope_.emitOn(ReplicaId{static_cast<int>(idx)},
                           TraceEventKind::BreakerOpen, kNoTraceRequest,
                           st.consecutiveFailures);
    }
}

void
ClusterSim::noteDispatchSuccess(std::size_t idx)
{
    if (!cfg_.breaker.enabled())
        return;
    BreakerState &st = breakers_[idx];
    st.consecutiveFailures = 0;
    if (st.open) {
        // The half-open probe landed on a live process: close.
        st.open = false;
        st.reopenAt = SimTime{};
        traceScope_.emitOn(ReplicaId{static_cast<int>(idx)},
                           TraceEventKind::BreakerClose,
                           kNoTraceRequest);
    }
}

void
ClusterSim::injectArrival(std::size_t index)
{
    const RequestSpec &spec = trace_.requests[index];
    traceScope_.emit(TraceEventKind::Arrival, spec.id);

    // Brownout gates run before routing: a shed tier never reaches
    // the load balancer, and a capped request is dispatched with a
    // reduced decode budget. With the controller off (all modes at
    // defaults) both tests are constant-false and the arrival passes
    // through by reference, untouched.
    if (modes_.shedTier >= 0 && spec.tierId == modes_.shedTier) {
        recordShed(spec);
    } else if (modes_.capTokens > 0 &&
               spec.decodeTokens > modes_.capTokens) {
        RequestSpec capped = spec;
        capped.decodeTokens = modes_.capTokens;
        ++brownoutCapped_;
        dispatchArrival(capped);
    } else {
        dispatchArrival(spec);
    }

    // Chain the next arrival instead of pre-scheduling the whole
    // trace, keeping the event heap small.
    std::size_t next = index + 1;
    if (next < trace_.requests.size()) {
        eq_.schedule(trace_.requests[next].arrival,
                     [this, next]() { injectArrival(next); });
    }
}

void
ClusterSim::dispatchArrival(const RequestSpec &spec)
{
    Group &group = groups_[tierRoute_[spec.tierId]];
    std::size_t replica_idx = pickReplica(group, spec);
    if (replica_idx == kNoReplica) {
        // No candidate at all — every replica is down (or
        // breaker-blocked). The request enters the retry path
        // (backoff + budget) instead of being dropped; admission
        // control only ever evaluates dispatches that reach a live
        // replica.
        RequestFailureSnapshot snap;
        snap.spec = spec;
        requeue(std::move(snap));
        return;
    }
    if (replicas_[replica_idx]->health() == ReplicaHealth::Down) {
        // A blind front door (partition-stale view, or health-unaware
        // routing) picked a dead box. The bounce feeds the breaker
        // and the request retries.
        noteDispatchFailure(replica_idx);
        RequestFailureSnapshot snap;
        snap.spec = spec;
        requeue(std::move(snap));
        return;
    }
    noteDispatchSuccess(replica_idx);
    if (admission_.admit(spec, eq_.now(),
                         replicas_[replica_idx]->scheduler())) {
        traceScope_.emitOn(ReplicaId{static_cast<int>(replica_idx)},
                           TraceEventKind::Dispatch, spec.id);
        replicas_[replica_idx]->submit(spec);
    } else {
        // Rejected outright: record an un-served request (infinite
        // latencies, counted as a violation).
        RequestRecord rec;
        rec.spec = spec;
        rec.rejected = true;
        if (auditor_ != nullptr)
            auditor_->checkRecord(rec, trace_.tiers);
        metrics_.record(rec);
    }
}

void
ClusterSim::recordShed(const RequestSpec &spec)
{
    // A shed arrival terminates unserved, shaped like an admission
    // rejection (infinite latencies, zero retries) so the records CSV
    // schema is untouched; the BrownoutShed trace event is what
    // distinguishes it downstream.
    ++brownoutShed_;
    traceScope_.emit(TraceEventKind::BrownoutShed, spec.id);
    RequestRecord rec;
    rec.spec = spec;
    rec.rejected = true;
    if (auditor_ != nullptr)
        auditor_->checkRecord(rec, trace_.tiers);
    metrics_.record(rec);
}

void
ClusterSim::applyDegradedModes(const DegradedModes &modes)
{
    if (modes.bypassCache != modes_.bypassCache) {
        for (auto &replica : replicas_)
            replica->setPrefixBypass(modes.bypassCache);
    }
    modes_ = modes;
}

void
ClusterSim::requeue(RequestFailureSnapshot snap)
{
    if (snap.retries >= cfg_.retry.maxRetries) {
        recordExhausted(snap);
        return;
    }
    SimDuration delay = cfg_.retry.backoffFor(snap.retries);
    if (cfg_.deadlineCancel &&
        deadlineUnreachable(snap, eq_.now() + delay)) {
        recordCancelled(snap);
        return;
    }
    snap.retries += 1;
    ++redispatches_;
    traceScope_.emit(TraceEventKind::RetryQueued, snap.spec.id,
                     snap.retries);
    eq_.scheduleAfter(delay, [this, snap = std::move(snap)]() {
        redispatch(snap);
    });
}

void
ClusterSim::redispatch(RequestFailureSnapshot snap)
{
    Group &group = groups_[tierRoute_[snap.spec.tierId]];
    std::size_t replica_idx = pickReplica(group, snap.spec);
    if (replica_idx == kNoReplica) {
        // Still no candidate: burn another attempt. The budget bounds
        // this loop, so the run terminates even if the whole group
        // never recovers.
        requeue(std::move(snap));
        return;
    }
    if (replicas_[replica_idx]->health() == ReplicaHealth::Down) {
        noteDispatchFailure(replica_idx);
        requeue(std::move(snap));
        return;
    }
    noteDispatchSuccess(replica_idx);
    traceScope_.emitOn(ReplicaId{static_cast<int>(replica_idx)},
                       TraceEventKind::Dispatch, snap.spec.id,
                       snap.retries);
    replicas_[replica_idx]->resubmit(snap);
}

bool
ClusterSim::deadlineUnreachable(const RequestFailureSnapshot &snap,
                                SimTime earliest_start) const
{
    const QosTier &tier = trace_.tiers[snap.spec.tierId];
    SimTime deadline = tier.completionDeadline(
        snap.spec.arrival, TokenCount{snap.spec.decodeTokens});
    if (!std::isfinite(deadline.seconds()))
        return false;

    // Optimistic lower bound on remaining service: the whole
    // remaining prefill (prompt plus already-emitted tokens whose KV
    // must be recomputed) lands in ONE iteration — chunking only adds
    // per-iteration overhead, and the quadratic attention term
    // telescopes to exactly tokens²/2 however it is chunked — then
    // each remaining decode token after the first (which the last
    // prefill iteration emits) costs one minimal single-decode
    // iteration. Every PerfModel component is monotone in batch
    // composition and an unloaded replica is the best case, so no
    // schedule beats this bound; overshooting it proves the deadline
    // unreachable.
    int rem = snap.spec.decodeTokens - snap.decodeDone;
    if (rem <= 0)
        return false;
    std::int64_t prefill = snap.spec.promptTokens + snap.decodeDone;
    BatchWork pre{};
    pre.prefillTokens = prefill;
    pre.prefillCtxProduct =
        static_cast<double>(prefill) * static_cast<double>(prefill) /
        2.0;
    SimDuration bound = perf_.iterationTime(pre);
    if (rem > 1) {
        BatchWork dec{};
        dec.numDecodes = 1;
        dec.decodeCtxSum = prefill;
        bound += static_cast<double>(rem - 1) * perf_.iterationTime(dec);
    }
    return earliest_start + bound > deadline;
}

void
ClusterSim::recordCancelled(const RequestFailureSnapshot &snap)
{
    // Cancelled on entry to the retry path: the request terminates
    // unserved. Shaped like a retry-exhausted abandonment (same CSV
    // flag, infinite latencies, partial progress preserved); the
    // DeadlineCancel trace event and the deadlineCancelled counter
    // are what distinguish it.
    RequestRecord rec;
    rec.spec = snap.spec;
    rec.firstTokenTime = snap.firstTokenTime;
    rec.maxTbt = snap.maxTbt;
    rec.tbtDeadlineMisses = snap.tbtDeadlineMisses;
    rec.wasRelegated = snap.wasRelegated;
    rec.kvPreemptions = snap.kvPreemptions;
    rec.retries = snap.retries;
    rec.retryExhausted = true;
    ++deadlineCancelled_;
    traceScope_.emit(TraceEventKind::DeadlineCancel, snap.spec.id,
                     snap.retries);
    if (auditor_ != nullptr)
        auditor_->checkRecord(rec, trace_.tiers);
    metrics_.record(rec);
}

void
ClusterSim::recordExhausted(const RequestFailureSnapshot &snap)
{
    // Abandoned after the retry budget: the request terminates
    // unserved. Latencies stay infinite (like a rejection) but the
    // partial progress fields survive for failure attribution.
    RequestRecord rec;
    rec.spec = snap.spec;
    rec.firstTokenTime = snap.firstTokenTime;
    rec.maxTbt = snap.maxTbt;
    rec.tbtDeadlineMisses = snap.tbtDeadlineMisses;
    rec.wasRelegated = snap.wasRelegated;
    rec.kvPreemptions = snap.kvPreemptions;
    rec.retries = snap.retries;
    rec.retryExhausted = true;
    ++retriesExhausted_;
    traceScope_.emit(TraceEventKind::RetryExhausted, snap.spec.id,
                     snap.retries);
    if (auditor_ != nullptr)
        auditor_->checkRecord(rec, trace_.tiers);
    metrics_.record(rec);
}

const MetricsCollector &
ClusterSim::run()
{
    QOSERVE_ASSERT(!ran_, "ClusterSim::run() called twice");
    QOSERVE_ASSERT(!groups_.empty(), "no replica groups configured");
    ran_ = true;

    if (!trace_.requests.empty()) {
        eq_.schedule(trace_.requests.front().arrival,
                     [this]() { injectArrival(0); });
    }
    eq_.run();

    // totalRecorded, not size: a streaming (non-retaining) collector
    // keeps no records but still counts every completion.
    QOSERVE_ASSERT(metrics_.totalRecorded() == trace_.requests.size(),
                   "requests lost: ", metrics_.totalRecorded(), " of ",
                   trace_.requests.size(), " completed");
    return metrics_;
}

int
ClusterSim::totalGpus() const
{
    return static_cast<int>(replicas_.size()) *
           cfg_.replica.hw.gpusPerReplica();
}

Trace
toPrefillOnlyTrace(Trace trace)
{
    for (auto &req : trace.requests)
        req.decodeTokens = 1;
    trace.appStats = computeAppStats(trace.requests);
    return trace;
}

} // namespace qoserve
