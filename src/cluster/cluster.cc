/**
 * @file
 * Cluster simulation implementation.
 */

#include "cluster/cluster.hh"

#include "simcore/logging.hh"

namespace qoserve {

ClusterSim::ClusterSim(Config cfg, Trace trace)
    : cfg_(cfg), trace_(std::move(trace)),
      tierRoute_(trace_.tiers.size(), 0), metrics_(trace_.tiers),
      admission_(cfg_.admission)
{
    QOSERVE_ASSERT(!trace_.tiers.empty(), "trace has no tiers");
    if (audit::checksEnabled()) {
        // Builds with checks on audit themselves by default; a run
        // that survives to completion is then certified corruption
        // free. Release builds (level off) skip the hook entirely.
        ownedAuditor_ = std::make_unique<InvariantAuditor>();
        auditor_ = ownedAuditor_.get();
    }
}

void
ClusterSim::setAuditor(InvariantAuditor *auditor)
{
    auditor_ = auditor;
    for (auto &replica : replicas_)
        replica->attachAuditor(auditor_);
}

const char *
loadBalanceName(LoadBalancePolicy policy)
{
    switch (policy) {
      case LoadBalancePolicy::RoundRobin:
        return "round-robin";
      case LoadBalancePolicy::LeastLoaded:
        return "least-loaded";
      case LoadBalancePolicy::ShortestQueue:
        return "shortest-queue";
    }
    QOSERVE_PANIC("unknown load-balance policy");
}

int
ClusterSim::addReplicaGroup(int count, const SchedulerFactory &factory,
                            LoadBalancePolicy lb)
{
    QOSERVE_ASSERT(count > 0, "group needs at least one replica");
    Group group;
    group.lb = lb;
    for (int i = 0; i < count; ++i) {
        auto replica = std::make_unique<Replica>(
            eq_, cfg_.replica, factory, cfg_.predictor, trace_.tiers,
            trace_.appStats, [this](const RequestRecord &rec) {
                if (auditor_ != nullptr)
                    auditor_->checkRecord(rec, trace_.tiers);
                metrics_.record(rec);
            });
        replica->attachAuditor(auditor_);
        group.replicaIdx.push_back(replicas_.size());
        replicas_.push_back(std::move(replica));
    }
    groups_.push_back(std::move(group));
    return static_cast<int>(groups_.size()) - 1;
}

void
ClusterSim::routeTier(int tier_id, int group_id)
{
    QOSERVE_ASSERT(tier_id >= 0 &&
                       tier_id < static_cast<int>(tierRoute_.size()),
                   "unknown tier");
    QOSERVE_ASSERT(group_id >= 0 &&
                       group_id < static_cast<int>(groups_.size()),
                   "unknown group");
    tierRoute_[tier_id] = group_id;
}

std::size_t
ClusterSim::pickReplica(Group &group) const
{
    switch (group.lb) {
      case LoadBalancePolicy::RoundRobin: {
        std::size_t idx = group.replicaIdx[group.nextRr];
        group.nextRr = (group.nextRr + 1) % group.replicaIdx.size();
        return idx;
      }
      case LoadBalancePolicy::LeastLoaded: {
        std::size_t best = group.replicaIdx.front();
        for (std::size_t idx : group.replicaIdx) {
            if (replicas_[idx]->liveRequests() <
                replicas_[best]->liveRequests()) {
                best = idx;
            }
        }
        return best;
      }
      case LoadBalancePolicy::ShortestQueue: {
        std::size_t best = group.replicaIdx.front();
        for (std::size_t idx : group.replicaIdx) {
            if (replicas_[idx]->scheduler().pendingPrefillTokens() <
                replicas_[best]->scheduler().pendingPrefillTokens()) {
                best = idx;
            }
        }
        return best;
      }
    }
    QOSERVE_PANIC("unknown load-balance policy");
}

void
ClusterSim::injectArrival(std::size_t index)
{
    const RequestSpec &spec = trace_.requests[index];
    Group &group = groups_[tierRoute_[spec.tierId]];
    std::size_t replica_idx = pickReplica(group);
    if (admission_.admit(spec, eq_.now(),
                         replicas_[replica_idx]->scheduler())) {
        replicas_[replica_idx]->submit(spec);
    } else {
        // Rejected outright: record an un-served request (infinite
        // latencies, counted as a violation).
        RequestRecord rec;
        rec.spec = spec;
        rec.rejected = true;
        if (auditor_ != nullptr)
            auditor_->checkRecord(rec, trace_.tiers);
        metrics_.record(rec);
    }

    // Chain the next arrival instead of pre-scheduling the whole
    // trace, keeping the event heap small.
    std::size_t next = index + 1;
    if (next < trace_.requests.size()) {
        eq_.schedule(trace_.requests[next].arrival,
                     [this, next]() { injectArrival(next); });
    }
}

const MetricsCollector &
ClusterSim::run()
{
    QOSERVE_ASSERT(!ran_, "ClusterSim::run() called twice");
    QOSERVE_ASSERT(!groups_.empty(), "no replica groups configured");
    ran_ = true;

    if (!trace_.requests.empty()) {
        eq_.schedule(trace_.requests.front().arrival,
                     [this]() { injectArrival(0); });
    }
    eq_.run();

    QOSERVE_ASSERT(metrics_.size() == trace_.requests.size(),
                   "requests lost: ", metrics_.size(), " of ",
                   trace_.requests.size(), " completed");
    return metrics_;
}

int
ClusterSim::totalGpus() const
{
    return static_cast<int>(replicas_.size()) *
           cfg_.replica.hw.gpusPerReplica();
}

Trace
toPrefillOnlyTrace(Trace trace)
{
    for (auto &req : trace.requests)
        req.decodeTokens = 1;
    trace.appStats = computeAppStats(trace.requests);
    return trace;
}

} // namespace qoserve
