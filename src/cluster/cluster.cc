/**
 * @file
 * Cluster simulation implementation.
 */

#include "cluster/cluster.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

SimDuration
RetryPolicy::backoffFor(int attempt) const
{
    SimDuration delay = initialBackoff;
    for (int i = 0; i < attempt && delay < maxBackoff; ++i)
        delay *= backoffMultiplier;
    return std::min(delay, maxBackoff);
}

ClusterSim::ClusterSim(Config cfg, Trace trace)
    : cfg_(cfg), trace_(std::move(trace)),
      tierRoute_(trace_.tiers.size(), 0), metrics_(trace_.tiers),
      admission_(cfg_.admission)
{
    QOSERVE_ASSERT(!trace_.tiers.empty(), "trace has no tiers");
    if (audit::checksEnabled()) {
        // Builds with checks on audit themselves by default; a run
        // that survives to completion is then certified corruption
        // free. Release builds (level off) skip the hook entirely.
        ownedAuditor_ = std::make_unique<InvariantAuditor>();
        auditor_ = ownedAuditor_.get();
    }
}

void
ClusterSim::setAuditor(InvariantAuditor *auditor)
{
    auditor_ = auditor;
    for (auto &replica : replicas_)
        replica->attachAuditor(auditor_);
}

void
ClusterSim::setTraceSink(TraceSink *sink)
{
    traceScope_.sink = sink;
    traceScope_.clock = &eq_;
    traceScope_.replica = -1;
    admission_.setTrace(&traceScope_);
    for (std::size_t i = 0; i < replicas_.size(); ++i)
        replicas_[i]->setTraceSink(sink, ReplicaId{static_cast<int>(i)});
}

const char *
loadBalanceName(LoadBalancePolicy policy)
{
    switch (policy) {
      case LoadBalancePolicy::RoundRobin:
        return "round-robin";
      case LoadBalancePolicy::LeastLoaded:
        return "least-loaded";
      case LoadBalancePolicy::ShortestQueue:
        return "shortest-queue";
    }
    QOSERVE_PANIC("unknown load-balance policy");
}

int
ClusterSim::addReplicaGroup(int count, const SchedulerFactory &factory,
                            LoadBalancePolicy lb)
{
    QOSERVE_ASSERT(count > 0, "group needs at least one replica");
    Group group;
    group.lb = lb;
    for (int i = 0; i < count; ++i) {
        auto replica = std::make_unique<Replica>(
            eq_, cfg_.replica, factory, cfg_.predictor, trace_.tiers,
            trace_.appStats, [this](const RequestRecord &rec) {
                if (auditor_ != nullptr)
                    auditor_->checkRecord(rec, trace_.tiers);
                metrics_.record(rec);
            });
        replica->attachAuditor(auditor_);
        replica->setFailureHandler(
            [this](const RequestFailureSnapshot &snap) {
                requeue(snap);
            });
        if (traceScope_.sink != nullptr) {
            replica->setTraceSink(
                traceScope_.sink,
                ReplicaId{static_cast<int>(replicas_.size())});
        }
        group.replicaIdx.push_back(replicas_.size());
        replicas_.push_back(std::move(replica));
    }
    groups_.push_back(std::move(group));
    return static_cast<int>(groups_.size()) - 1;
}

void
ClusterSim::routeTier(int tier_id, int group_id)
{
    QOSERVE_ASSERT(tier_id >= 0 &&
                       tier_id < static_cast<int>(tierRoute_.size()),
                   "unknown tier");
    QOSERVE_ASSERT(group_id >= 0 &&
                       group_id < static_cast<int>(groups_.size()),
                   "unknown group");
    tierRoute_[tier_id] = group_id;
}

std::size_t
ClusterSim::pickReplica(Group &group, const RequestSpec &spec) const
{
    // Health-aware routing skips down replicas and multiplies load
    // scores by the straggler slowdown. With every replica Up the
    // skip never triggers and the factor is exactly 1.0, so the
    // choice (including tie-breaks) matches blind routing bit for
    // bit — fault-free runs are unchanged.
    const bool aware = cfg_.healthAwareRouting;
    auto usable = [&](std::size_t idx) {
        return !aware ||
               replicas_[idx]->health() != ReplicaHealth::Down;
    };

    // Cache-affinity pre-pass: the replica already holding the
    // longest cached prefix of this prompt serves it cheapest. Only a
    // strictly positive match diverts the request — a universal miss
    // (in particular, every probe when the prefix cache is disabled)
    // leaves the policy below, including its round-robin cursor,
    // exactly as if this pass did not exist.
    if (cfg_.cacheAffinityRouting) {
        std::size_t best = kNoReplica;
        int best_tokens = 0;
        for (std::size_t idx : group.replicaIdx) {
            if (!usable(idx))
                continue;
            int tokens = replicas_[idx]->probeCachedTokens(spec);
            if (tokens > best_tokens) {
                best = idx;
                best_tokens = tokens;
            }
        }
        if (best != kNoReplica)
            return best;
    }

    switch (group.lb) {
      case LoadBalancePolicy::RoundRobin: {
        const std::size_t n = group.replicaIdx.size();
        for (std::size_t k = 0; k < n; ++k) {
            std::size_t slot = (group.nextRr + k) % n;
            std::size_t idx = group.replicaIdx[slot];
            if (usable(idx)) {
                group.nextRr = (slot + 1) % n;
                return idx;
            }
        }
        return kNoReplica;
      }
      case LoadBalancePolicy::LeastLoaded: {
        std::size_t best = kNoReplica;
        double best_score = 0.0;
        for (std::size_t idx : group.replicaIdx) {
            if (!usable(idx))
                continue;
            double score =
                static_cast<double>(replicas_[idx]->liveRequests()) *
                (aware ? replicas_[idx]->slowdown() : 1.0);
            if (best == kNoReplica || score < best_score) {
                best = idx;
                best_score = score;
            }
        }
        return best;
      }
      case LoadBalancePolicy::ShortestQueue: {
        std::size_t best = kNoReplica;
        double best_score = 0.0;
        for (std::size_t idx : group.replicaIdx) {
            if (!usable(idx))
                continue;
            double score =
                static_cast<double>(
                    replicas_[idx]->scheduler().pendingPrefillTokens()) *
                (aware ? replicas_[idx]->slowdown() : 1.0);
            if (best == kNoReplica || score < best_score) {
                best = idx;
                best_score = score;
            }
        }
        return best;
      }
    }
    QOSERVE_PANIC("unknown load-balance policy");
}

void
ClusterSim::injectArrival(std::size_t index)
{
    const RequestSpec &spec = trace_.requests[index];
    traceScope_.emit(TraceEventKind::Arrival, spec.id);
    Group &group = groups_[tierRoute_[spec.tierId]];
    std::size_t replica_idx = pickReplica(group, spec);
    if (replica_idx == kNoReplica ||
        replicas_[replica_idx]->health() == ReplicaHealth::Down) {
        // No live target — every replica is down, or a blind front
        // door routed to a dead box. The request enters the retry
        // path (backoff + budget) instead of being dropped; admission
        // control only ever evaluates dispatches that reach a live
        // replica.
        RequestFailureSnapshot snap;
        snap.spec = spec;
        requeue(std::move(snap));
    } else if (admission_.admit(spec, eq_.now(),
                                replicas_[replica_idx]->scheduler())) {
        traceScope_.emitOn(ReplicaId{static_cast<int>(replica_idx)},
                           TraceEventKind::Dispatch, spec.id);
        replicas_[replica_idx]->submit(spec);
    } else {
        // Rejected outright: record an un-served request (infinite
        // latencies, counted as a violation).
        RequestRecord rec;
        rec.spec = spec;
        rec.rejected = true;
        if (auditor_ != nullptr)
            auditor_->checkRecord(rec, trace_.tiers);
        metrics_.record(rec);
    }

    // Chain the next arrival instead of pre-scheduling the whole
    // trace, keeping the event heap small.
    std::size_t next = index + 1;
    if (next < trace_.requests.size()) {
        eq_.schedule(trace_.requests[next].arrival,
                     [this, next]() { injectArrival(next); });
    }
}

void
ClusterSim::requeue(RequestFailureSnapshot snap)
{
    if (snap.retries >= cfg_.retry.maxRetries) {
        recordExhausted(snap);
        return;
    }
    SimDuration delay = cfg_.retry.backoffFor(snap.retries);
    snap.retries += 1;
    ++redispatches_;
    traceScope_.emit(TraceEventKind::RetryQueued, snap.spec.id,
                     snap.retries);
    eq_.scheduleAfter(delay, [this, snap = std::move(snap)]() {
        redispatch(snap);
    });
}

void
ClusterSim::redispatch(RequestFailureSnapshot snap)
{
    Group &group = groups_[tierRoute_[snap.spec.tierId]];
    std::size_t replica_idx = pickReplica(group, snap.spec);
    if (replica_idx == kNoReplica ||
        replicas_[replica_idx]->health() == ReplicaHealth::Down) {
        // Still no live target: burn another attempt. The budget
        // bounds this loop, so the run terminates even if the whole
        // group never recovers.
        requeue(std::move(snap));
        return;
    }
    traceScope_.emitOn(ReplicaId{static_cast<int>(replica_idx)},
                       TraceEventKind::Dispatch, snap.spec.id,
                       snap.retries);
    replicas_[replica_idx]->resubmit(snap);
}

void
ClusterSim::recordExhausted(const RequestFailureSnapshot &snap)
{
    // Abandoned after the retry budget: the request terminates
    // unserved. Latencies stay infinite (like a rejection) but the
    // partial progress fields survive for failure attribution.
    RequestRecord rec;
    rec.spec = snap.spec;
    rec.firstTokenTime = snap.firstTokenTime;
    rec.maxTbt = snap.maxTbt;
    rec.tbtDeadlineMisses = snap.tbtDeadlineMisses;
    rec.wasRelegated = snap.wasRelegated;
    rec.kvPreemptions = snap.kvPreemptions;
    rec.retries = snap.retries;
    rec.retryExhausted = true;
    ++retriesExhausted_;
    traceScope_.emit(TraceEventKind::RetryExhausted, snap.spec.id,
                     snap.retries);
    if (auditor_ != nullptr)
        auditor_->checkRecord(rec, trace_.tiers);
    metrics_.record(rec);
}

const MetricsCollector &
ClusterSim::run()
{
    QOSERVE_ASSERT(!ran_, "ClusterSim::run() called twice");
    QOSERVE_ASSERT(!groups_.empty(), "no replica groups configured");
    ran_ = true;

    if (!trace_.requests.empty()) {
        eq_.schedule(trace_.requests.front().arrival,
                     [this]() { injectArrival(0); });
    }
    eq_.run();

    // totalRecorded, not size: a streaming (non-retaining) collector
    // keeps no records but still counts every completion.
    QOSERVE_ASSERT(metrics_.totalRecorded() == trace_.requests.size(),
                   "requests lost: ", metrics_.totalRecorded(), " of ",
                   trace_.requests.size(), " completed");
    return metrics_;
}

int
ClusterSim::totalGpus() const
{
    return static_cast<int>(replicas_.size()) *
           cfg_.replica.hw.gpusPerReplica();
}

Trace
toPrefillOnlyTrace(Trace trace)
{
    for (auto &req : trace.requests)
        req.decodeTokens = 1;
    trace.appStats = computeAppStats(trace.requests);
    return trace;
}

} // namespace qoserve
