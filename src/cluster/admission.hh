/**
 * @file
 * Admission control at the cluster front door.
 *
 * Implements the overload-management baselines of §2.2 that QoServe's
 * eager relegation is designed to replace:
 *
 *  - RateLimit: a token bucket rejecting traffic beyond a configured
 *    rate, "without considering their relative importance";
 *  - LoadShed: reject when the target replica's prefill backlog
 *    exceeds a threshold (naive throttling at capacity).
 *
 * Rejected requests never execute; their records carry the rejected
 * flag and count as SLO violations, which is exactly the trade-off
 * the paper contrasts with relegation's "eventual completion without
 * permanent rejection".
 */

#ifndef QOSERVE_CLUSTER_ADMISSION_HH
#define QOSERVE_CLUSTER_ADMISSION_HH

#include <cstdint>

#include "sched/scheduler.hh"
#include "workload/trace.hh"

namespace qoserve {

/** Front-door admission policy. */
enum class AdmissionPolicy
{
    None,      ///< Admit everything (the paper's deployments).
    RateLimit, ///< Token-bucket rate limiting.
    LoadShed,  ///< Reject when the target backlog is too deep.
};

/**
 * Stateful admission controller, one per cluster.
 */
class AdmissionController
{
  public:
    /** Configuration. */
    struct Config
    {
        AdmissionPolicy policy = AdmissionPolicy::None;

        /** RateLimit: sustained admission rate, requests/second. */
        double rateLimitQps = 0.0;

        /** RateLimit: bucket depth, requests. */
        double burstSize = 16.0;

        /** LoadShed: max pending prefill tokens on the target. */
        std::int64_t maxBacklogTokens = 0;
    };

    explicit AdmissionController(Config cfg);

    /**
     * Decide whether to admit a request arriving at @p now onto
     * @p target. Consumes token-bucket budget on admission.
     */
    bool admit(const RequestSpec &spec, SimTime now,
               const Scheduler &target);

    /** Requests rejected so far. */
    std::uint64_t rejected() const { return rejected_; }

    /** Requests admitted so far. */
    std::uint64_t admitted() const { return admitted_; }

    /** Attach the cluster's trace handle (not owned; null detaches)
     *  so rejections appear in the lifecycle trace. */
    void setTrace(const TraceScope *trace) { trace_ = trace; }

  private:
    Config cfg_;
    const TraceScope *trace_ = nullptr;
    double bucket_;
    SimTime lastRefill_;
    std::uint64_t rejected_ = 0;
    std::uint64_t admitted_ = 0;
};

} // namespace qoserve

#endif // QOSERVE_CLUSTER_ADMISSION_HH
