/**
 * @file
 * One serving replica: scheduler + execution engine + KV cache.
 *
 * The replica is the bridge between the discrete-event kernel and the
 * scheduler: whenever it is idle and the scheduler has work, it asks
 * the scheduler to form a batch, prices the batch with the execution
 * model, and schedules the completion event. One batch is in flight
 * at a time, matching iteration-level scheduling in vLLM/Sarathi.
 */

#ifndef QOSERVE_CLUSTER_REPLICA_HH
#define QOSERVE_CLUSTER_REPLICA_HH

#include <memory>
#include <unordered_map>

#include "kvcache/block_manager.hh"
#include "metrics/batch_observation.hh"
#include "model/perf_model.hh"
#include "obs/trace_sink.hh"
#include "prefixcache/prefix_cache.hh"
#include "sched/chunked_scheduler.hh"
#include "sched/request_pool.hh"
#include "simcore/event_queue.hh"
#include "workload/trace.hh"

namespace qoserve {

class InvariantAuditor;

/**
 * Health of a replica (fault-injection state machine, DESIGN.md §8).
 */
enum class ReplicaHealth
{
    Up,       ///< Healthy, serving at full speed.
    Degraded, ///< Straggling: serving with a latency slowdown factor.
    Down,     ///< Crashed: owns nothing, accepts nothing.
};

/** Display name of a health state. */
const char *replicaHealthName(ReplicaHealth health);

/**
 * Callback receiving each live request's failure snapshot when the
 * replica crashes; the cluster re-dispatches or abandons them.
 */
using FailureHandler = std::function<void(const RequestFailureSnapshot &)>;

/**
 * A single model replica.
 */
class Replica
{
  public:
    /** Static configuration of a replica. */
    struct Config
    {
        ReplicaHwConfig hw;
        PerfModelParams perfParams{};
        int kvBlockTokens = 16;

        /** Shared-prefix cache (disabled by default). */
        PrefixCacheConfig prefixCache{};
    };

    /**
     * @param eq Shared event queue.
     * @param cfg Hardware and engine configuration.
     * @param factory Scheduler factory invoked once with this
     *        replica's environment.
     * @param predictor Optional shared latency predictor handed to
     *        the scheduler (required by QoServe dynamic chunking).
     * @param tiers Tier table request specs refer to.
     * @param app_stats Per-application decode statistics.
     * @param on_complete Callback receiving each finished request's
     *        record.
     */
    Replica(EventQueue &eq, Config cfg, const SchedulerFactory &factory,
            const LatencyPredictor *predictor, TierTable tiers,
            std::vector<AppStats> app_stats,
            std::function<void(const RequestRecord &)> on_complete);

    /** Destroys any still-live requests back into the pool. */
    ~Replica();

    /** Admit a request at the current simulation time. */
    void submit(const RequestSpec &spec);

    /**
     * Admit a request re-dispatched after a failure elsewhere: its
     * prefill restarts from chunk 0 and decode resumes from the
     * snapshot's emitted-token count.
     */
    void resubmit(const RequestFailureSnapshot &snap);

    /** Current health state. */
    ReplicaHealth health() const { return health_; }

    /** Current latency slowdown factor (1.0 when not straggling). */
    double slowdown() const { return slowdown_; }

    /**
     * Crash this replica: the in-flight batch is discarded (its
     * completion event cancelled), every KV block is released, the
     * scheduler is rebuilt from scratch (its queues died with the
     * process), and each live request's failure snapshot is handed to
     * the failure handler in request-id order. Panics when no failure
     * handler is installed (requests would be lost) or when already
     * down.
     */
    void fail();

    /** Restart a crashed replica: healthy, empty, ready for work. */
    void recover();

    /**
     * Set the straggler slowdown factor: batch latencies are
     * multiplied by @p factor. 1.0 restores full speed; > 1.0 marks
     * the replica Degraded. Invalid while Down.
     */
    void setSlowdown(double factor);

    /** Install the crash handler (the cluster's re-dispatch path). */
    void setFailureHandler(FailureHandler handler)
    {
        failureHandler_ = std::move(handler);
    }

    /** Crashes this replica has suffered. */
    std::uint64_t crashes() const { return crashes_; }

    /** Scheduler under this replica (for stats and tests). */
    const Scheduler &scheduler() const { return *scheduler_; }

    /** KV-cache manager (for tests). */
    const BlockManager &kv() const { return kv_; }

    /** Shared-prefix cache (for tests and stats aggregation). */
    const PrefixCache &prefixCache() const { return *prefixCache_; }

    /**
     * Prompt tokens of @p spec the local prefix cache could serve
     * right now (0 when down, or the cache is off or misses) — the
     * cache-affinity routing signal.
     */
    int probeCachedTokens(const RequestSpec &spec) const
    {
        if (health_ == ReplicaHealth::Down)
            return 0;
        return prefixCache_->probe(spec);
    }

    /**
     * Bypass prefix-cache admission: while set, newly submitted
     * requests prefill from scratch instead of attaching cached
     * blocks (the brownout controller's deepest degraded mode —
     * attaching pins blocks that overloaded KV needs for batching).
     * Existing attachments and the cache contents are untouched, and
     * affinity probes still answer, so clearing the bit restores full
     * behaviour instantly.
     */
    void setPrefixBypass(bool bypass) { prefixBypass_ = bypass; }

    /** True while prefix-cache admission is bypassed. */
    bool prefixBypass() const { return prefixBypass_; }

    /** Total batches executed. */
    std::uint64_t iterations() const { return iterations_; }

    /** Total time the engine was executing batches. */
    SimDuration busyTime() const { return busyTime_; }

    /** Requests currently owned (not yet completed). */
    std::size_t liveRequests() const { return live_.size(); }

    /** Install a per-batch observer (may be empty). */
    void setBatchObserver(BatchObserver obs) { observer_ = std::move(obs); }

    /**
     * Attach an invariant auditor (not owned; may be null to
     * detach). Its onIterationComplete() hook runs after every
     * completed batch, when the scheduler and KV cache are at rest.
     */
    void attachAuditor(InvariantAuditor *auditor) { auditor_ = auditor; }

    /**
     * Attach a lifecycle trace sink (not owned; null detaches).
     * @p replica_id stamps every event this replica emits. The
     * scheduler environment points at the same scope, so emission
     * stays wired across crash-time scheduler rebuilds.
     */
    void setTraceSink(TraceSink *sink, ReplicaId replica_id)
    {
        trace_.sink = sink;
        trace_.clock = &eq_;
        trace_.replica = replica_id.value();
    }

  private:
    void maybeStartIteration();
    void completeIteration(const Batch &batch, SimTime start);
    Request *admit(const RequestSpec &spec);
    void attachCachedPrefix(Request *req);
    void buildScheduler();

    EventQueue &eq_;
    PerfModel perf_;
    BlockManager kv_;

    /** Declared after kv_ (it installs the eviction handler there)
     *  and destroyed before it. */
    std::unique_ptr<PrefixCache> prefixCache_;

    std::unique_ptr<Scheduler> scheduler_;
    SchedulerFactory factory_;
    const LatencyPredictor *predictor_ = nullptr;
    TierTable tiers_;
    std::vector<AppStats> appStats_;
    std::function<void(const RequestRecord &)> onComplete_;
    BatchObserver observer_;
    FailureHandler failureHandler_;
    InvariantAuditor *auditor_ = nullptr;

    /** Stable trace handle; SchedulerEnv::trace points here. */
    TraceScope trace_;

    /** Slab pool the live requests live in. Declared before live_ and
     *  the scheduler state so it outlives every raw Request*. */
    RequestPool pool_;

    std::unordered_map<std::uint64_t, Request *> live_;
    bool busy_ = false;
    std::uint64_t iterations_ = 0;
    SimDuration busyTime_ = 0.0;

    ReplicaHealth health_ = ReplicaHealth::Up;
    double slowdown_ = 1.0;
    std::uint64_t crashes_ = 0;
    bool prefixBypass_ = false;

    /** In-flight completion event, for cancellation on crash. */
    EventId inflightEvent_ = 0;
    SimTime inflightStart_;

    /**
     * The batch being executed. Only one batch is ever in flight, so
     * it lives here instead of inside the completion closure: the
     * closure then captures nothing but `this` (fits std::function's
     * small-buffer storage — no per-iteration heap allocation) and
     * the chunk/decode vectors keep their capacity across
     * iterations.
     */
    Batch inflightBatch_;
    SimDuration inflightLatency_ = 0.0;
};

} // namespace qoserve

#endif // QOSERVE_CLUSTER_REPLICA_HH
