/**
 * @file
 * One serving replica: scheduler + execution engine + KV cache.
 *
 * The replica is the bridge between the discrete-event kernel and the
 * scheduler: whenever it is idle and the scheduler has work, it asks
 * the scheduler to form a batch, prices the batch with the execution
 * model, and schedules the completion event. One batch is in flight
 * at a time, matching iteration-level scheduling in vLLM/Sarathi.
 */

#ifndef QOSERVE_CLUSTER_REPLICA_HH
#define QOSERVE_CLUSTER_REPLICA_HH

#include <memory>
#include <unordered_map>

#include "kvcache/block_manager.hh"
#include "model/perf_model.hh"
#include "sched/chunked_scheduler.hh"
#include "simcore/event_queue.hh"
#include "workload/trace.hh"

namespace qoserve {

class InvariantAuditor;

/** Observer invoked after every executed batch (Fig. 9 timelines). */
struct BatchObservation
{
    SimTime start = 0.0;
    SimDuration latency = 0.0;
    int prefillTokens = 0;
    int numDecodes = 0;
};
using BatchObserver = std::function<void(const BatchObservation &)>;

/**
 * A single model replica.
 */
class Replica
{
  public:
    /** Static configuration of a replica. */
    struct Config
    {
        ReplicaHwConfig hw;
        PerfModelParams perfParams{};
        int kvBlockTokens = 16;
    };

    /**
     * @param eq Shared event queue.
     * @param cfg Hardware and engine configuration.
     * @param factory Scheduler factory invoked once with this
     *        replica's environment.
     * @param predictor Optional shared latency predictor handed to
     *        the scheduler (required by QoServe dynamic chunking).
     * @param tiers Tier table request specs refer to.
     * @param app_stats Per-application decode statistics.
     * @param on_complete Callback receiving each finished request's
     *        record.
     */
    Replica(EventQueue &eq, Config cfg, const SchedulerFactory &factory,
            const LatencyPredictor *predictor, TierTable tiers,
            std::vector<AppStats> app_stats,
            std::function<void(const RequestRecord &)> on_complete);

    /** Admit a request at the current simulation time. */
    void submit(const RequestSpec &spec);

    /** Scheduler under this replica (for stats and tests). */
    const Scheduler &scheduler() const { return *scheduler_; }

    /** KV-cache manager (for tests). */
    const BlockManager &kv() const { return kv_; }

    /** Total batches executed. */
    std::uint64_t iterations() const { return iterations_; }

    /** Total time the engine was executing batches. */
    SimDuration busyTime() const { return busyTime_; }

    /** Requests currently owned (not yet completed). */
    std::size_t liveRequests() const { return live_.size(); }

    /** Install a per-batch observer (may be empty). */
    void setBatchObserver(BatchObserver obs) { observer_ = std::move(obs); }

    /**
     * Attach an invariant auditor (not owned; may be null to
     * detach). Its onIterationComplete() hook runs after every
     * completed batch, when the scheduler and KV cache are at rest.
     */
    void attachAuditor(InvariantAuditor *auditor) { auditor_ = auditor; }

  private:
    void maybeStartIteration();
    void completeIteration(const Batch &batch, SimTime start);

    EventQueue &eq_;
    PerfModel perf_;
    BlockManager kv_;
    std::unique_ptr<Scheduler> scheduler_;
    TierTable tiers_;
    std::vector<AppStats> appStats_;
    std::function<void(const RequestRecord &)> onComplete_;
    BatchObserver observer_;
    InvariantAuditor *auditor_ = nullptr;

    std::unordered_map<std::uint64_t, std::unique_ptr<Request>> live_;
    bool busy_ = false;
    std::uint64_t iterations_ = 0;
    SimDuration busyTime_ = 0.0;
};

} // namespace qoserve

#endif // QOSERVE_CLUSTER_REPLICA_HH
