/**
 * @file
 * Prefill-decode disaggregated serving.
 *
 * Models the full disaggregated pipeline of §4.1.3: requests prefill
 * on a dedicated prefill pool (running any iteration scheduler —
 * QoServe's prioritization and relegation apply directly there),
 * their KV cache is transferred over the interconnect, and decode
 * proceeds on a separate decode pool.
 *
 * The decode pool supports two policies:
 *
 *  - StrictestTbtCap — the paper's configuration: every admitted
 *    request decodes every iteration, with the batch capped so one
 *    iteration fits the *strictest* TBT among the configured tiers.
 *  - DeadlineAware — the paper's stated *future work* ("Efficiently
 *    supporting different TBT SLOs in the decode nodes"): requests
 *    are selected per iteration in next-token-deadline order while
 *    the predicted iteration time still meets the earliest selected
 *    deadline, so 100 ms-TBT requests naturally decode on alternate
 *    iterations and stop constraining 50 ms-TBT ones.
 */

#ifndef QOSERVE_CLUSTER_DISAGG_HH
#define QOSERVE_CLUSTER_DISAGG_HH

#include <deque>
#include <memory>
#include <vector>

#include "cluster/replica.hh"
#include "metrics/slo_report.hh"

namespace qoserve {

/** Decode-pool scheduling policy. */
enum class DecodePolicy
{
    StrictestTbtCap, ///< Batch capped for the strictest tier's TBT.
    DeadlineAware,   ///< Per-iteration deadline-ordered selection.
};

/**
 * One decode-only replica of the disaggregated decode pool.
 */
class DecodeReplica
{
  public:
    /**
     * @param eq Shared event queue.
     * @param cfg Hardware configuration.
     * @param policy Batch-selection policy.
     * @param strictest_tbt Strictest TBT across tiers (cap sizing).
     * @param max_batch Hard cap on concurrent decodes per iteration.
     * @param on_complete Completion callback.
     */
    DecodeReplica(EventQueue &eq, Replica::Config cfg,
                  DecodePolicy policy, SimDuration strictest_tbt,
                  int max_batch,
                  std::function<void(const RequestRecord &)> on_complete);

    /**
     * Admit a decode-stage request (KV already transferred).
     * Takes ownership.
     */
    void admit(std::unique_ptr<Request> req);

    /** Requests currently decoding or waiting for a slot. */
    std::size_t load() const { return active_.size() + pending_.size(); }

    /** Iterations executed. */
    std::uint64_t iterations() const { return iterations_; }

    /** KV manager (tests). */
    const BlockManager &kv() const { return kv_; }

  private:
    void maybeStart();
    void completeIteration(std::vector<Request *> batch);
    std::vector<Request *> selectBatch();
    SimDuration iterTime(const std::vector<Request *> &batch) const;

    EventQueue &eq_;
    PerfModel perf_;
    BlockManager kv_;
    DecodePolicy policy_;
    SimDuration strictestTbt_;
    int maxBatch_;
    std::function<void(const RequestRecord &)> onComplete_;

    /** Requests with KV resident, eligible for iterations. */
    std::vector<Request *> active_;

    /** Admitted but waiting for KV space / batch slots. */
    std::deque<Request *> pending_;

    std::unordered_map<std::uint64_t, std::unique_ptr<Request>> owned_;
    bool busy_ = false;
    std::uint64_t iterations_ = 0;
};

/**
 * Full disaggregated deployment: prefill pool + transfer + decode
 * pool.
 */
class DisaggCluster
{
  public:
    /** Configuration of the disaggregated deployment. */
    struct Config
    {
        /** Replica hardware (same for both pools). */
        Replica::Config replica;

        /** Prefill pool size. */
        int numPrefillReplicas = 1;

        /** Decode pool size. */
        int numDecodeReplicas = 1;

        /** Scheduler for the prefill replicas. */
        SchedulerFactory prefillFactory;

        /** Predictor for the prefill schedulers (may be null). */
        const LatencyPredictor *predictor = nullptr;

        /** Decode-pool policy. */
        DecodePolicy decodePolicy = DecodePolicy::StrictestTbtCap;

        /** Cap on concurrent decodes per decode replica. */
        int maxDecodeBatch = 128;

        /**
         * Effective KV-transfer bandwidth between pools, bytes/s
         * (NVLink/IB class; the transfer of a 2K-token Llama3-8B
         * context at 50 GB/s costs ~5 ms).
         */
        double kvTransferBandwidth = 50e9;
    };

    /**
     * @param cfg Deployment configuration.
     * @param trace Workload (copied); tiers define TBT targets.
     */
    DisaggCluster(Config cfg, Trace trace);

    /** Run the full pipeline to completion and return metrics. */
    const MetricsCollector &run();

    /** Metrics (final records are decode-stage completions). */
    const MetricsCollector &metrics() const { return metrics_; }

    /** Total KV bytes moved between the pools. */
    double kvBytesTransferred() const { return kvBytesTransferred_; }

    /** Decode replica access (tests). */
    DecodeReplica &decodeReplica(std::size_t i) { return *decodePool_[i]; }

  private:
    void injectArrival(std::size_t index);
    void onPrefillDone(const RequestRecord &rec);

    Config cfg_;
    Trace trace_;
    EventQueue eq_;
    std::vector<std::unique_ptr<Replica>> prefillPool_;
    std::vector<std::unique_ptr<DecodeReplica>> decodePool_;
    std::size_t prefillRr_ = 0;
    std::size_t decodeRr_ = 0;
    MetricsCollector metrics_;
    double kvBytesTransferred_ = 0.0;
    bool ran_ = false;
};

} // namespace qoserve

#endif // QOSERVE_CLUSTER_DISAGG_HH
