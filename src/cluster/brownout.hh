/**
 * @file
 * Brownout controller: stepped graceful degradation under sustained
 * overload (DESIGN.md §13).
 *
 * Under a zone outage the surviving replicas absorb the whole load;
 * serving everything at full fidelity turns every queue into a
 * violation factory. The brownout controller watches the cluster's
 * prefill backlog on a fixed cadence and steps through increasingly
 * aggressive degraded modes instead:
 *
 *   level 0  Normal      full service
 *   level 1  CapTokens   cap decode tokens per request
 *   level 2  ShedLowTier additionally shed the lowest tier's arrivals
 *   level 3  BypassCache additionally bypass prefix-cache admission
 *
 * Each step trades a bounded, *chosen* quality loss for queue relief,
 * which is the difference between degrading and failing. Hysteresis —
 * distinct enter/exit thresholds and consecutive-sample requirements —
 * keeps the controller from oscillating at a threshold boundary.
 */

#ifndef QOSERVE_CLUSTER_BROWNOUT_HH
#define QOSERVE_CLUSTER_BROWNOUT_HH

#include <cstdint>

#include "cluster/cluster.hh"

namespace qoserve {

/** Degradation level the controller can sit at. */
enum class BrownoutMode
{
    Normal,      ///< Full service.
    CapTokens,   ///< Decode tokens capped per request.
    ShedLowTier, ///< + lowest tier shed unserved.
    BypassCache, ///< + prefix-cache admission bypassed.
};

/** Number of levels (the controller's step range). */
inline constexpr int kBrownoutModes =
    static_cast<int>(BrownoutMode::BypassCache) + 1;

/** Display name of a brownout level. */
const char *brownoutModeName(BrownoutMode mode);

/**
 * Brownout configuration. Disabled by default; a disabled controller
 * schedules nothing and a run is bit-identical to one without it.
 */
struct BrownoutConfig
{
    bool enabled = false;

    /** Sampling cadence, simulation seconds. */
    SimDuration interval = 1.0;

    /**
     * Mean pending prefill tokens per live replica above which the
     * controller steps one level deeper (after enterSamples
     * consecutive samples above it). Required positive when enabled.
     */
    double enterBacklog = 4096.0;

    /** Backlog below which it steps one level back (after
     *  exitSamples consecutive samples below it); must be strictly
     *  below enterBacklog for the hysteresis band to exist. */
    double exitBacklog = 1024.0;

    /** Consecutive over-threshold samples before stepping deeper. */
    int enterSamples = 3;

    /** Consecutive under-threshold samples before stepping back. */
    int exitSamples = 5;

    /** Decode-token cap applied at level >= 1. */
    int capTokens = 128;

    /** Tier shed at level >= 2 (-1 = the last tier of the table,
     *  by convention the lowest priority). */
    int shedTier = -1;
};

/**
 * Watches a ClusterSim's prefill backlog and applies DegradedModes.
 *
 * Construct after the cluster's replica groups exist, call start()
 * before run(); must outlive the run. Follows the MetricsSampler
 * discipline: the cadence reschedules only while other work is
 * pending, so the controller observes the simulation but never
 * extends it.
 */
class BrownoutController
{
  public:
    /**
     * @param cfg Thresholds and cadence. Fatal (user error) on a
     *        degenerate combination: non-positive interval or cap,
     *        an empty hysteresis band, sample counts below one, or a
     *        shed tier outside the cluster's tier table.
     * @param cluster Target cluster; must already have its replicas.
     */
    BrownoutController(const BrownoutConfig &cfg, ClusterSim &cluster);

    BrownoutController(const BrownoutController &) = delete;
    BrownoutController &operator=(const BrownoutController &) = delete;

    /** Schedule the first sample (no-op when disabled). */
    void start();

    /** Current degradation level, 0 (Normal) .. 3 (BypassCache). */
    int level() const { return level_; }

    /** Deepest level reached so far. */
    int maxLevel() const { return maxLevel_; }

    /** Level changes applied (both directions). */
    std::uint64_t steps() const { return steps_; }

    /** The degraded modes in force at @p level. */
    DegradedModes modesFor(int level) const;

    /** Mean pending prefill tokens per live replica right now (the
     *  controller's input signal; exposed for gauges and tests). */
    double backlogPerReplica() const;

  private:
    void fire();
    void stepTo(int level);

    BrownoutConfig cfg_;
    ClusterSim &cluster_;

    /** Resolved shed tier (cfg_.shedTier, or the table's last). */
    int shedTier_ = -1;

    int level_ = 0;
    int maxLevel_ = 0;
    std::uint64_t steps_ = 0;
    int overCount_ = 0;
    int underCount_ = 0;
};

} // namespace qoserve

#endif // QOSERVE_CLUSTER_BROWNOUT_HH
