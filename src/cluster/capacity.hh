/**
 * @file
 * Goodput and capacity search harnesses.
 *
 * Implements the paper's goodput metric (§4.1.2): the maximum request
 * rate a replica sustains "while meeting the latency targets (p99)"
 * with "at most 1% of total requests" violating their deadlines. The
 * search brackets the feasible QPS by doubling, then narrows the
 * bracket by evaluating a QPS grid inside it each round until the
 * requested resolution is reached. Grid points within a round are
 * independent simulations, so they fan out across GoodputSearch::jobs
 * worker threads; the search result is a function of the search
 * configuration only, never of the job count.
 */

#ifndef QOSERVE_CLUSTER_CAPACITY_HH
#define QOSERVE_CLUSTER_CAPACITY_HH

#include <functional>

#include "metrics/slo_report.hh"

namespace qoserve {

/** Pass/fail criteria for one load point. */
struct GoodputCriteria
{
    /** Maximum tolerated SLO violation fraction (paper: 1%). */
    double maxViolationRate = 0.01;

    /**
     * Count TBT SLO misses as violations too. Off by default
     * (matching the paper's headline metric); the PolyServe
     * comparison (§4.5.2) turns it on because its classes differ
     * only in TBT.
     */
    bool includeTbt = false;
};

/** Search controls. */
struct GoodputSearch
{
    /** Initial QPS probe. */
    double startQps = 0.5;

    /** Upper bound on the bracketing phase. */
    double maxQps = 64.0;

    /** Terminate when the bracket is this tight. */
    double resolutionQps = 0.125;

    /**
     * Interior grid points evaluated per refinement round. Part of
     * the search geometry: it changes which QPS points are probed
     * (and thus can move the result within one resolution step), so
     * it is fixed independently of the job count. Larger fans expose
     * more parallelism per round at the cost of extra probes when
     * running serially.
     */
    int gridFan = 4;

    /**
     * Worker threads evaluating grid points (0 = hardware
     * concurrency). Any value returns bit-identical results; jobs = 1
     * evaluates the grid serially with early exit.
     */
    int jobs = 1;
};

/** Evaluate a load point: run a simulation and summarize it. */
using LoadRunner = std::function<RunSummary(double qps)>;

/** True if a summary satisfies the criteria. */
bool meetsGoodputCriteria(const RunSummary &summary,
                          const GoodputCriteria &criteria);

/**
 * Maximum sustainable QPS under the criteria.
 *
 * @param runner Executes one simulation at a given QPS.
 * @param criteria Pass/fail rule per load point.
 * @param search Bracketing and resolution controls.
 * @return Highest passing QPS found (0 when even startQps fails).
 */
double measureMaxGoodput(const LoadRunner &runner,
                         const GoodputCriteria &criteria = {},
                         const GoodputSearch &search = {});

/**
 * Replicas needed to serve @p total_qps given a per-replica goodput.
 */
int replicasForLoad(double total_qps, double per_replica_goodput);

} // namespace qoserve

#endif // QOSERVE_CLUSTER_CAPACITY_HH
