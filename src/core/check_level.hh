/**
 * @file
 * Compile-time selection of the simulation self-check level.
 *
 * Every result the simulator produces rests on its internal state
 * machines staying consistent. QOSERVE_CHECK_LEVEL (a CMake cache
 * variable mapped to a preprocessor define) selects how much of that
 * consistency is machine-checked while the simulation runs:
 *
 *  - off (0): no auditing; hot-path hooks compile away entirely so
 *    Release benchmarking pays nothing.
 *  - cheap (1, the default): O(1) checks per iteration — aggregate
 *    KV conservation, clock monotonicity, batch-budget respect.
 *  - full (2): O(live state) checks per iteration — per-owner KV
 *    accounting sums, scheduler queue exclusivity and ordering,
 *    cross-layer KV-vs-request token agreement.
 *
 * This header is intentionally dependency-free so any module
 * (including simcore) can guard micro-assertions with
 * `if constexpr (audit::cheapChecks())` without linking the audit
 * library.
 */

#ifndef QOSERVE_CORE_CHECK_LEVEL_HH
#define QOSERVE_CORE_CHECK_LEVEL_HH

namespace qoserve {
namespace audit {

/** How much invariant checking the build performs. */
enum class CheckLevel
{
    Off = 0,   ///< No checks; zero overhead.
    Cheap = 1, ///< Constant-cost checks every iteration.
    Full = 2,  ///< Exhaustive state-walk checks every iteration.
};

#ifndef QOSERVE_CHECK_LEVEL
/** Build-selected level; CMake injects 0/1/2, default cheap. */
#define QOSERVE_CHECK_LEVEL 1
#endif

/** The level this build was compiled with. */
inline constexpr CheckLevel kCompiledLevel =
    static_cast<CheckLevel>(QOSERVE_CHECK_LEVEL);

static_assert(QOSERVE_CHECK_LEVEL >= 0 && QOSERVE_CHECK_LEVEL <= 2,
              "QOSERVE_CHECK_LEVEL must be 0 (off), 1 (cheap) or "
              "2 (full)");

/** True when any auditing is compiled in. */
constexpr bool
checksEnabled()
{
    return kCompiledLevel != CheckLevel::Off;
}

/** True when at least the constant-cost checks are compiled in. */
constexpr bool
cheapChecks()
{
    return kCompiledLevel >= CheckLevel::Cheap;
}

/** True when the exhaustive state-walk checks are compiled in. */
constexpr bool
fullChecks()
{
    return kCompiledLevel >= CheckLevel::Full;
}

/** Display name of a check level. */
constexpr const char *
checkLevelName(CheckLevel level)
{
    switch (level) {
      case CheckLevel::Off:
        return "off";
      case CheckLevel::Cheap:
        return "cheap";
      case CheckLevel::Full:
        return "full";
    }
    return "unknown";
}

} // namespace audit
} // namespace qoserve

#endif // QOSERVE_CORE_CHECK_LEVEL_HH
