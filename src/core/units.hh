/**
 * @file
 * Strong unit types for the QoServe vocabulary layer.
 *
 * The simulator's quantities fall into a handful of dimensions —
 * points in simulated time, spans of simulated time, token counts,
 * KV-block counts, and opaque identifiers. Mixing two of them (a
 * token count where a block count belongs, a replica index where a
 * request id belongs) is the class of bug no unit test reliably
 * catches, because the arithmetic still "works". This header gives
 * each dimension its own explicit-construction wrapper so the
 * compiler rejects the mix-up instead.
 *
 * Conversion rules (see DESIGN.md §12):
 *  - Construction from the raw representation is always explicit:
 *    `TokenCount{512}`, `SimTime{0.5}`. There are no implicit decays.
 *  - The raw value is recovered through a named accessor (`value()`,
 *    `seconds()`) — grep for these to find every boundary crossing.
 *  - Counts (TokenCount, BlockCount) admit additive arithmetic with
 *    themselves only; identifiers (ReplicaId, RequestId) admit no
 *    arithmetic at all, just comparison and hashing.
 *  - Streaming prints the raw value, so serialized output is
 *    byte-identical to the pre-typed code.
 *
 * SimTime and SimDuration live in simcore/time.hh (the event kernel
 * cannot depend on core); this header re-exports them so users of the
 * vocabulary layer have a single include.
 */

#ifndef QOSERVE_CORE_UNITS_HH
#define QOSERVE_CORE_UNITS_HH

#include <cstdint>
#include <functional>
#include <ostream>

#include "simcore/time.hh"

namespace qoserve {

/** A count of model tokens (prompt, decode, KV, or budget). */
class TokenCount
{
  public:
    constexpr TokenCount() = default;

    constexpr explicit TokenCount(std::int64_t count) : count_(count) {}

    /** Raw count (serialization and formulas needing the scalar). */
    constexpr std::int64_t value() const { return count_; }

    constexpr TokenCount &
    operator+=(TokenCount o)
    {
        count_ += o.count_;
        return *this;
    }

    constexpr TokenCount &
    operator-=(TokenCount o)
    {
        count_ -= o.count_;
        return *this;
    }

    friend constexpr TokenCount
    operator+(TokenCount a, TokenCount b)
    {
        return TokenCount(a.count_ + b.count_);
    }

    friend constexpr TokenCount
    operator-(TokenCount a, TokenCount b)
    {
        return TokenCount(a.count_ - b.count_);
    }

    friend constexpr bool
    operator==(TokenCount a, TokenCount b)
    {
        return a.count_ == b.count_;
    }

    friend constexpr bool
    operator!=(TokenCount a, TokenCount b)
    {
        return a.count_ != b.count_;
    }

    friend constexpr bool
    operator<(TokenCount a, TokenCount b)
    {
        return a.count_ < b.count_;
    }

    friend constexpr bool
    operator<=(TokenCount a, TokenCount b)
    {
        return a.count_ <= b.count_;
    }

    friend constexpr bool
    operator>(TokenCount a, TokenCount b)
    {
        return a.count_ > b.count_;
    }

    friend constexpr bool
    operator>=(TokenCount a, TokenCount b)
    {
        return a.count_ >= b.count_;
    }

    friend std::ostream &
    operator<<(std::ostream &out, TokenCount c)
    {
        return out << c.count_;
    }

  private:
    std::int64_t count_ = 0;
};

/** A count of fixed-size KV-cache blocks. */
class BlockCount
{
  public:
    constexpr BlockCount() = default;

    constexpr explicit BlockCount(std::int64_t count) : count_(count) {}

    constexpr std::int64_t value() const { return count_; }

    constexpr BlockCount &
    operator+=(BlockCount o)
    {
        count_ += o.count_;
        return *this;
    }

    constexpr BlockCount &
    operator-=(BlockCount o)
    {
        count_ -= o.count_;
        return *this;
    }

    friend constexpr BlockCount
    operator+(BlockCount a, BlockCount b)
    {
        return BlockCount(a.count_ + b.count_);
    }

    friend constexpr BlockCount
    operator-(BlockCount a, BlockCount b)
    {
        return BlockCount(a.count_ - b.count_);
    }

    friend constexpr bool
    operator==(BlockCount a, BlockCount b)
    {
        return a.count_ == b.count_;
    }

    friend constexpr bool
    operator!=(BlockCount a, BlockCount b)
    {
        return a.count_ != b.count_;
    }

    friend constexpr bool
    operator<(BlockCount a, BlockCount b)
    {
        return a.count_ < b.count_;
    }

    friend constexpr bool
    operator<=(BlockCount a, BlockCount b)
    {
        return a.count_ <= b.count_;
    }

    friend constexpr bool
    operator>(BlockCount a, BlockCount b)
    {
        return a.count_ > b.count_;
    }

    friend constexpr bool
    operator>=(BlockCount a, BlockCount b)
    {
        return a.count_ >= b.count_;
    }

    friend std::ostream &
    operator<<(std::ostream &out, BlockCount c)
    {
        return out << c.count_;
    }

  private:
    std::int64_t count_ = 0;
};

/** Index of a replica within the cluster. Identifiers admit no
 *  arithmetic: two replica ids cannot be meaningfully added. */
class ReplicaId
{
  public:
    constexpr ReplicaId() = default;

    constexpr explicit ReplicaId(int index) : index_(index) {}

    constexpr int value() const { return index_; }

    friend constexpr bool
    operator==(ReplicaId a, ReplicaId b)
    {
        return a.index_ == b.index_;
    }

    friend constexpr bool
    operator!=(ReplicaId a, ReplicaId b)
    {
        return a.index_ != b.index_;
    }

    friend constexpr bool
    operator<(ReplicaId a, ReplicaId b)
    {
        return a.index_ < b.index_;
    }

    friend std::ostream &
    operator<<(std::ostream &out, ReplicaId id)
    {
        return out << id.index_;
    }

  private:
    int index_ = -1;
};

/** Dense identifier of a request within a trace. */
class RequestId
{
  public:
    constexpr RequestId() = default;

    constexpr explicit RequestId(std::uint64_t id) : id_(id) {}

    constexpr std::uint64_t value() const { return id_; }

    friend constexpr bool
    operator==(RequestId a, RequestId b)
    {
        return a.id_ == b.id_;
    }

    friend constexpr bool
    operator!=(RequestId a, RequestId b)
    {
        return a.id_ != b.id_;
    }

    friend constexpr bool
    operator<(RequestId a, RequestId b)
    {
        return a.id_ < b.id_;
    }

    friend std::ostream &
    operator<<(std::ostream &out, RequestId id)
    {
        return out << id.id_;
    }

  private:
    std::uint64_t id_ = 0;
};

} // namespace qoserve

template <> struct std::hash<qoserve::ReplicaId>
{
    std::size_t
    operator()(qoserve::ReplicaId id) const noexcept
    {
        return std::hash<int>{}(id.value());
    }
};

template <> struct std::hash<qoserve::RequestId>
{
    std::size_t
    operator()(qoserve::RequestId id) const noexcept
    {
        return std::hash<std::uint64_t>{}(id.value());
    }
};

#endif // QOSERVE_CORE_UNITS_HH
