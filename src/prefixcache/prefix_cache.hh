/**
 * @file
 * Shared-prefix KV cache (radix tree over block-aligned prefixes).
 *
 * Production LLM traffic repeats prompt prefixes — system prompts,
 * few-shot templates, multi-turn conversations — so the KV blocks of
 * a finished prefill are worth keeping: a later request whose prompt
 * starts with the same tokens attaches those blocks instead of
 * recomputing them, shrinking exactly the compute-bound prefill phase
 * the chunk-budget solver exists to tame (SGLang's RadixAttention
 * applied to the paper's chunked-prefill stack).
 *
 * The cache is a radix tree over *block-aligned* token prefixes: one
 * node per full KV block, keyed by a chained content hash of every
 * token up to and including that block. Matching a request therefore
 * walks the tree one block at a time until the first miss. Nodes
 * reference shared blocks in the BlockManager; a node whose block has
 * no request referencing it (refcount one — the cache's own hold) is
 * evictable, and eviction reclaims cold leaves in LRU order with ties
 * broken by block id (never pointer or hash order — determinism).
 *
 * Copy-on-write: only full blocks are shared. When a request's match
 * covers its entire prompt, the attach is capped one token short and
 * the final partially-used block is copied into a private block (the
 * COW copy) so the request's own tail never writes into shared state.
 * Symmetrically, a finishing prefill contributes only the full blocks
 * of its prompt; its partially-filled tail block stays private.
 */

#ifndef QOSERVE_PREFIXCACHE_PREFIX_CACHE_HH
#define QOSERVE_PREFIXCACHE_PREFIX_CACHE_HH

#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kvcache/block_manager.hh"
#include "obs/trace_sink.hh"
#include "simcore/time.hh"
#include "workload/trace.hh"

namespace qoserve {

/**
 * Prefix-cache deployment configuration (per replica).
 */
struct PrefixCacheConfig
{
    /** Master switch; when false the cache is inert and every code
     *  path is byte-identical to a build without it. */
    bool enabled = false;

    /** Fraction of the replica's KV blocks the cache may hold, in
     *  (0, 1]. The resulting watermark is at least one block. */
    double capacityFrac = 0.5;

    /** Fatal on out-of-range values (deployment configuration is
     *  user input). */
    void validate() const;
};

/**
 * Cumulative cache counters (survive replica crashes; the tree does
 * not).
 */
struct PrefixCacheStats
{
    /** Attach attempts (admissions with the cache enabled). */
    std::int64_t lookups = 0;

    /** Attaches that reused at least one block. */
    std::int64_t hits = 0;

    /** Prefill tokens skipped via attached blocks (includes COW'd
     *  partial-tail tokens). */
    std::int64_t tokensAttached = 0;

    /** Partial-tail blocks copied on attach. */
    std::int64_t cowCopies = 0;

    /** Blocks converted into the tree by finishing prefills. */
    std::int64_t blocksInserted = 0;

    /** Blocks reclaimed by LRU eviction. */
    std::int64_t blocksEvicted = 0;

    /** Whole-tree drops (replica crashes). */
    std::int64_t treeDrops = 0;
};

/**
 * Read-only tree snapshot for the invariant auditor: every block id
 * the radix tree currently holds, sorted (deterministic order).
 */
struct PrefixCacheAuditView
{
    bool populated = false;
    std::size_t nodeCount = 0;
    std::vector<KvBlockId> treeBlocks;
};

/**
 * Chained per-block content keys of @p spec's prompt: entry i covers
 * tokens [0, (i+1) * block_tokens) — a prefix hash, so two prompts
 * share key i iff they agree on every token through block i. Prompts
 * without segments (fully unique content) key off the request id.
 */
std::vector<std::uint64_t> prefixBlockKeys(const RequestSpec &spec,
                                           TokenCount block_tokens);

/**
 * Deterministic shared-prefix cache layered on one replica's
 * BlockManager.
 */
class PrefixCache
{
  public:
    /** The manager must outlive the cache. Installs the watermark
     *  and eviction handler on @p kv when enabled. */
    PrefixCache(BlockManager &kv, const PrefixCacheConfig &cfg);

    bool enabled() const { return cfg_.enabled; }

    /**
     * Cache lookup at admission: match @p spec's prompt against the
     * tree, attach the matched blocks to @p owner, and COW-copy the
     * partial tail if the match covers the whole prompt (capped one
     * token short so at least one real prefill token remains and the
     * first-token emission path is unchanged).
     *
     * @return Prompt tokens now covered by attached KV (0 on miss).
     */
    int attach(KvOwnerId owner, const RequestSpec &spec, SimTime now);

    /**
     * Insert a finished prefill's prompt blocks into the tree: the
     * owner's private full blocks beyond the current match are
     * converted into cache-held shared blocks (and private
     * duplicates of already-cached blocks are deduplicated onto the
     * shared copies). Evicts cold blocks to stay under the
     * watermark; caches only the leading part of the prefix when the
     * cache cannot shrink enough.
     */
    void insert(KvOwnerId owner, const RequestSpec &spec, SimTime now);

    /**
     * Side-effect-free match length in tokens (capped like attach)
     * for cache-affinity routing.
     */
    int probe(const RequestSpec &spec) const;

    /**
     * Reclaim up to @p wanted blocks by evicting unreferenced leaves,
     * oldest first (ties by block id). Installed as the
     * BlockManager's eviction handler.
     *
     * @return Blocks actually freed.
     */
    std::int64_t evictBlocks(std::int64_t wanted);

    /**
     * Drop the whole tree without touching the BlockManager — the
     * crash path, where releaseAll() already destroyed every block.
     */
    void dropAll();

    /** Tree size in nodes (== blocks held). */
    std::size_t nodeCount() const { return nodes_.size(); }

    const PrefixCacheStats &stats() const { return stats_; }

    /** Snapshot for the invariant auditor. */
    PrefixCacheAuditView auditView() const;

    /** Attach the owning replica's trace handle (not owned; null
     *  detaches) so cache hits and evictions appear in the trace. */
    void setTrace(const TraceScope *trace) { trace_ = trace; }

  private:
    struct Node
    {
        KvBlockId block = 0;
        std::uint64_t parentKey = 0; ///< kNoParent for depth-0 nodes.
        SimTime lastUse;
        int children = 0;
    };

    static constexpr std::uint64_t kNoParent = 0;

    /** Longest tree match of @p keys; touches matched nodes' LRU
     *  entries when @p touch. */
    std::size_t walk(const std::vector<std::uint64_t> &keys, bool touch,
                     SimTime now);

    /** Match length without touching (for probe()). */
    std::size_t matchDepth(const std::vector<std::uint64_t> &keys) const;

    BlockManager &kv_;
    PrefixCacheConfig cfg_;

    /** Radix tree, keyed by chained prefix hash. Never iterated —
     *  all traversal goes through keys or the LRU set. */
    std::unordered_map<std::uint64_t, Node> nodes_;

    /** Block id -> node key, for LRU-order eviction. */
    std::unordered_map<KvBlockId, std::uint64_t> keyOfBlock_;

    /** (lastUse, block id), ordered: eviction scans from the front,
     *  so ties on lastUse break by block id — deterministic. */
    std::set<std::pair<SimTime, KvBlockId>> lru_;

    PrefixCacheStats stats_;
    const TraceScope *trace_ = nullptr;
};

} // namespace qoserve

#endif // QOSERVE_PREFIXCACHE_PREFIX_CACHE_HH
