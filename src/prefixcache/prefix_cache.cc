/**
 * @file
 * Shared-prefix KV cache implementation.
 */

#include "prefixcache/prefix_cache.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace qoserve {

namespace {

constexpr std::uint64_t kKeySeed = 0x243F6A8885A308D3ull;
constexpr std::uint64_t kUniqueSalt = 0x9E3779B97F4A7C15ull;

/** SplitMix64 finalizer: the same bijective mixer the Rng uses. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t
chain(std::uint64_t h, std::uint64_t v)
{
    return mix64(h ^ mix64(v));
}

} // namespace

void
PrefixCacheConfig::validate() const
{
    if (capacityFrac <= 0.0 || capacityFrac > 1.0) {
        QOSERVE_FATAL("prefix-cache capacity fraction must be in "
                      "(0, 1], got ", capacityFrac);
    }
}

std::vector<std::uint64_t>
prefixBlockKeys(const RequestSpec &spec, TokenCount block_size)
{
    int block_tokens = static_cast<int>(block_size.value());
    QOSERVE_ASSERT(block_tokens > 0, "non-positive block size");
    const int full = spec.promptTokens / block_tokens;
    std::vector<std::uint64_t> keys;
    if (full <= 0)
        return keys;
    keys.reserve(static_cast<std::size_t>(full));

    // A prompt without segments is wholly unique content: key it by
    // the request id so it never collides with another request.
    PromptSegment unique_seg{chain(kUniqueSalt, spec.id),
                             spec.promptTokens};
    const PromptSegment *segs = &unique_seg;
    std::size_t nsegs = 1;
    if (!spec.promptSegments.empty()) {
        segs = spec.promptSegments.data();
        nsegs = spec.promptSegments.size();
    }

    std::uint64_t h = kKeySeed;
    int tokens = 0;
    for (std::size_t s = 0; s < nsegs; ++s) {
        for (int i = 0; i < segs[s].tokens; ++i) {
            h = chain(chain(h, segs[s].contentId),
                      static_cast<std::uint64_t>(i));
            ++tokens;
            if (tokens % block_tokens == 0) {
                keys.push_back(h);
                if (keys.size() == static_cast<std::size_t>(full))
                    return keys;
            }
        }
    }
    return keys;
}

PrefixCache::PrefixCache(BlockManager &kv, const PrefixCacheConfig &cfg)
    : kv_(kv), cfg_(cfg)
{
    if (!cfg_.enabled)
        return;
    cfg_.validate();
    auto watermark = static_cast<std::int64_t>(
        static_cast<double>(kv_.totalBlocks()) * cfg_.capacityFrac);
    kv_.setCacheWatermark(std::max<std::int64_t>(1, watermark));
    kv_.setEvictionHandler(
        [this](std::int64_t wanted) { return evictBlocks(wanted); });
}

std::size_t
PrefixCache::walk(const std::vector<std::uint64_t> &keys, bool touch,
                  SimTime now)
{
    std::size_t depth = 0;
    for (std::uint64_t key : keys) {
        auto it = nodes_.find(key);
        if (it == nodes_.end())
            break;
        Node &n = it->second;
        if (touch && n.lastUse != now) {
            lru_.erase({n.lastUse, n.block});
            n.lastUse = now;
            lru_.insert({now, n.block});
        }
        ++depth;
    }
    return depth;
}

std::size_t
PrefixCache::matchDepth(const std::vector<std::uint64_t> &keys) const
{
    std::size_t depth = 0;
    for (std::uint64_t key : keys) {
        if (nodes_.find(key) == nodes_.end())
            break;
        ++depth;
    }
    return depth;
}

int
PrefixCache::attach(KvOwnerId owner, const RequestSpec &spec, SimTime now)
{
    if (!cfg_.enabled)
        return 0;
    ++stats_.lookups;
    const int B = kv_.blockTokens();
    auto keys = prefixBlockKeys(spec, TokenCount{B});
    std::size_t depth = walk(keys, true, now);
    if (depth == 0)
        return 0;

    // Cap one token short of the prompt: at least one real prefill
    // token must remain so the scheduler's final-chunk machinery (and
    // first-token emission) runs unchanged.
    auto matched = static_cast<std::int64_t>(depth) * B;
    std::int64_t tokens =
        std::min<std::int64_t>(matched, spec.promptTokens - 1);
    int full = static_cast<int>(tokens / B);
    int tail = static_cast<int>(tokens % B);
    if (tail > 0 && kv_.freeBlocks() < 1) {
        // The COW copy needs a free block *without* eviction (an
        // eviction here could reclaim the very block being copied);
        // drop the partial tail and attach whole blocks only.
        tokens = static_cast<std::int64_t>(full) * B;
        tail = 0;
        if (tokens == 0)
            return 0;
    }

    if (full > 0) {
        std::vector<KvBlockId> ids;
        ids.reserve(static_cast<std::size_t>(full));
        for (int i = 0; i < full; ++i)
            ids.push_back(nodes_.find(keys[i])->second.block);
        kv_.attachShared(owner, ids);
    }
    if (tail > 0) {
        bool grown = kv_.grow(owner, TokenCount{tail});
        QOSERVE_ASSERT(grown, "COW copy failed after free-block check");
        ++stats_.cowCopies;
    }
    ++stats_.hits;
    stats_.tokensAttached += tokens;
    if (trace_ != nullptr)
        trace_->emit(TraceEventKind::CacheHit, owner, tokens);
    return static_cast<int>(tokens);
}

void
PrefixCache::insert(KvOwnerId owner, const RequestSpec &spec, SimTime now)
{
    if (!cfg_.enabled)
        return;
    const int B = kv_.blockTokens();
    auto keys = prefixBlockKeys(spec, TokenCount{B});
    if (keys.empty())
        return;

    // Make watermark room for the blocks missing from the tree.
    // Eviction may reclaim cold *matched* blocks too (they are then
    // missing again), so recompute the match every round; when the
    // cache cannot shrink further, cache only the leading part.
    std::size_t cache_to = keys.size();
    for (;;) {
        std::size_t depth = matchDepth(keys);
        auto missing = static_cast<std::int64_t>(cache_to) -
                       static_cast<std::int64_t>(depth);
        std::int64_t room = kv_.cacheWatermark() - kv_.cacheHeldBlocks();
        if (missing <= room)
            break;
        if (evictBlocks(1) == 0) {
            cache_to = depth + static_cast<std::size_t>(room);
            break;
        }
    }

    std::size_t match = walk(keys, true, now);

    // Deduplicate: the owner holds private copies of any matched
    // block it did not attach at admission (the tree grew after its
    // lookup, or it recomputed after preemption); move its reference
    // onto the shared copy and free the duplicate.
    auto attached = kv_.ownerSharedBlocks(owner);
    if (static_cast<std::int64_t>(match) > attached) {
        std::vector<KvBlockId> dups;
        dups.reserve(match - static_cast<std::size_t>(attached));
        for (std::size_t i = static_cast<std::size_t>(attached);
             i < match; ++i)
            dups.push_back(nodes_.find(keys[i])->second.block);
        kv_.dedupToShared(owner, dups);
    }

    if (match >= cache_to)
        return;
    int count = static_cast<int>(cache_to - match);
    std::vector<KvBlockId> ids = kv_.convertToCached(owner, count);
    std::uint64_t parent = match == 0 ? kNoParent : keys[match - 1];
    for (int i = 0; i < count; ++i) {
        std::uint64_t key = keys[match + static_cast<std::size_t>(i)];
        Node node;
        node.block = ids[static_cast<std::size_t>(i)];
        node.parentKey = parent;
        node.lastUse = now;
        nodes_.emplace(key, node);
        keyOfBlock_.emplace(node.block, key);
        lru_.insert({now, node.block});
        if (parent != kNoParent)
            ++nodes_.find(parent)->second.children;
        parent = key;
    }
    stats_.blocksInserted += count;
}

int
PrefixCache::probe(const RequestSpec &spec) const
{
    if (!cfg_.enabled)
        return 0;
    const int B = kv_.blockTokens();
    std::size_t depth = matchDepth(prefixBlockKeys(spec, TokenCount{B}));
    if (depth == 0)
        return 0;
    auto matched = static_cast<std::int64_t>(depth) * B;
    return static_cast<int>(
        std::min<std::int64_t>(matched, spec.promptTokens - 1));
}

std::int64_t
PrefixCache::evictBlocks(std::int64_t wanted)
{
    std::int64_t freed = 0;
    while (freed < wanted) {
        // Scan the LRU order for the oldest unreferenced leaf. A
        // freshly exposed parent re-enters consideration on the next
        // round (its lastUse is never older than its children's, so
        // restarting the scan stays consistent with LRU order).
        bool found = false;
        std::pair<SimTime, KvBlockId> entry{};
        std::uint64_t key = 0;
        for (const auto &candidate : lru_) {
            auto kit = keyOfBlock_.find(candidate.second);
            QOSERVE_ASSERT(kit != keyOfBlock_.end(),
                           "LRU entry without a tree node");
            const Node &n = nodes_.find(kit->second)->second;
            if (n.children == 0 && kv_.sharedRefs(n.block) == 1) {
                entry = candidate;
                key = kit->second;
                found = true;
                break;
            }
        }
        if (!found)
            break;
        const Node &victim = nodes_.find(key)->second;
        if (victim.parentKey != kNoParent)
            --nodes_.find(victim.parentKey)->second.children;
        KvBlockId block = victim.block;
        nodes_.erase(key);
        keyOfBlock_.erase(block);
        lru_.erase(entry);
        bool phys_freed = kv_.dropCacheRef(block);
        QOSERVE_ASSERT(phys_freed,
                       "evicted a block something still references");
        ++freed;
        ++stats_.blocksEvicted;
    }
    if (freed > 0 && trace_ != nullptr)
        trace_->emit(TraceEventKind::CacheEvict, kNoTraceRequest, freed);
    return freed;
}

void
PrefixCache::dropAll()
{
    if (!cfg_.enabled)
        return;
    nodes_.clear();
    keyOfBlock_.clear();
    lru_.clear();
    ++stats_.treeDrops;
}

PrefixCacheAuditView
PrefixCache::auditView() const
{
    PrefixCacheAuditView view;
    view.populated = cfg_.enabled;
    view.nodeCount = nodes_.size();
    view.treeBlocks.reserve(keyOfBlock_.size());
    // Snapshot only; the sort below makes the result independent of
    // hash order.
    // qoserve-lint: allow(unordered-iter)
    for (const auto &[block, key] : keyOfBlock_)
        view.treeBlocks.push_back(block);
    std::sort(view.treeBlocks.begin(), view.treeBlocks.end());
    return view;
}

} // namespace qoserve
