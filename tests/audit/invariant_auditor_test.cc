/**
 * @file
 * Unit tests for the invariant auditor: each invariant in the
 * catalogue (DESIGN.md §7) is tripped by a deliberately broken toy
 * fixture and must be detected, and consistent fixtures must pass.
 * Also covers the hard enforcement satellites: EventQueue timestamp
 * validation and BlockManager strict-release semantics.
 */

#include "audit/invariant_auditor.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "kvcache/block_manager.hh"
#include "model/perf_model.hh"
#include "prefixcache/prefix_cache.hh"
#include "sched/baseline_schedulers.hh"
#include "sched/request.hh"
#include "sched/scheduler.hh"
#include "simcore/event_queue.hh"
#include "workload/qos.hh"
#include "workload/trace.hh"

namespace qoserve {
namespace {

/** Auditor that records violations instead of aborting. */
InvariantAuditor
makeAuditor(audit::CheckLevel level = audit::CheckLevel::Full)
{
    InvariantAuditor::Options opts;
    opts.level = level;
    opts.failFast = false;
    return InvariantAuditor(opts);
}

/** A request fixture in the WaitingPrefill phase. */
std::unique_ptr<Request>
makeRequest(std::uint64_t id, int prompt_tokens, int decode_tokens,
            SimTime arrival = SimTime{})
{
    RequestSpec spec;
    spec.id = id;
    spec.arrival = arrival;
    spec.promptTokens = prompt_tokens;
    spec.decodeTokens = decode_tokens;
    spec.tierId = 0;
    return std::make_unique<Request>(spec, paperTierTable()[0],
                                     AppStats{});
}

/** Drive a request into the Decoding phase. */
std::unique_ptr<Request>
makeDecodingRequest(std::uint64_t id, int prompt_tokens,
                    int decode_tokens)
{
    auto req = makeRequest(id, prompt_tokens, decode_tokens);
    req->applyPrefill(TokenCount{prompt_tokens}, SimTime{1.0});
    EXPECT_EQ(req->phase(), RequestPhase::Decoding);
    return req;
}

/** A self-consistent view over the given queues. */
SchedulerAuditView
makeView(const std::vector<const Request *> &prefills,
         const std::vector<const Request *> &decodes)
{
    SchedulerAuditView view;
    view.populated = true;
    view.prefills = prefills;
    view.decodes = decodes;
    view.maxDecodeBatch = 8;
    for (const Request *req : prefills)
        view.pendingPrefillTokens += req->prefillRemaining();
    return view;
}

/** The single invariant name an auditor detected, or "" / "multiple". */
std::string
soleViolation(const InvariantAuditor &auditor)
{
    if (auditor.violations().empty())
        return "";
    std::string name = auditor.violations().front().invariant;
    for (const auto &v : auditor.violations()) {
        if (v.invariant != name)
            return "multiple";
    }
    return name;
}

TEST(InvariantAuditor, ConsistentViewIsClean)
{
    auto waiting = makeRequest(1, 100, 10);
    waiting->cachedPriority = 1.0;
    auto decoding = makeDecodingRequest(2, 50, 10);
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(
        makeView({waiting.get()}, {decoding.get()}), nullptr, SimTime{1.0});
    EXPECT_TRUE(auditor.clean());
    EXPECT_EQ(auditor.violationCount(), 0u);
}

TEST(InvariantAuditor, UnpopulatedViewIsIgnored)
{
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(SchedulerAuditView{}, nullptr, SimTime{0.0});
    EXPECT_TRUE(auditor.clean());
}

TEST(InvariantAuditor, DetectsDecodeBatchOverflow)
{
    auto a = makeDecodingRequest(1, 10, 5);
    auto b = makeDecodingRequest(2, 10, 5);
    auto view = makeView({}, {a.get(), b.get()});
    view.maxDecodeBatch = 1;
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(view, nullptr, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "sched-decode-bound");
}

TEST(InvariantAuditor, DetectsNegativePendingPrefill)
{
    auto view = makeView({}, {});
    view.pendingPrefillTokens = -1;
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(view, nullptr, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "sched-pending-prefill");
}

TEST(InvariantAuditor, DetectsDoubleQueuedRequest)
{
    auto req = makeRequest(7, 100, 10);
    auto view = makeView({req.get(), req.get()}, {});
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(view, nullptr, SimTime{0.0});
    // The duplicate also breaks strict priority ordering (equal ids
    // cannot be strictly increasing); exclusivity must be among the
    // findings.
    EXPECT_FALSE(auditor.clean());
    bool saw_exclusivity = false;
    for (const auto &v : auditor.violations())
        saw_exclusivity |= v.invariant == "sched-exclusivity";
    EXPECT_TRUE(saw_exclusivity);
}

TEST(InvariantAuditor, DetectsRequestInBothQueues)
{
    auto req = makeDecodingRequest(7, 100, 10);
    SchedulerAuditView view;
    view.populated = true;
    view.prefills = {req.get()};
    view.decodes = {req.get()};
    view.maxDecodeBatch = 8;
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(view, nullptr, SimTime{0.0});
    // The decoding request is wrong for the prefill queue (phase) and
    // queued twice (exclusivity); both must surface.
    EXPECT_FALSE(auditor.clean());
    bool saw_exclusivity = false;
    for (const auto &v : auditor.violations())
        saw_exclusivity |= v.invariant == "sched-exclusivity";
    EXPECT_TRUE(saw_exclusivity);
}

TEST(InvariantAuditor, DetectsDecodePhaseInPrefillQueue)
{
    auto req = makeDecodingRequest(3, 100, 10);
    auto view = makeView({req.get()}, {});
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(view, nullptr, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "sched-phase");
}

TEST(InvariantAuditor, DetectsPrefillPhaseInDecodeQueue)
{
    auto req = makeRequest(3, 100, 10);
    auto view = makeView({}, {req.get()});
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(view, nullptr, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "sched-phase");
}

TEST(InvariantAuditor, DetectsPendingPrefillCounterDrift)
{
    auto req = makeRequest(4, 100, 10);
    auto view = makeView({req.get()}, {});
    view.pendingPrefillTokens += 13; // Simulated bookkeeping drift.
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(view, nullptr, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "sched-pending-prefill");
}

TEST(InvariantAuditor, DetectsPriorityOrderViolation)
{
    auto first = makeRequest(1, 100, 10);
    auto second = makeRequest(2, 100, 10);
    first->cachedPriority = 5.0;
    second->cachedPriority = 1.0; // Lower priority key queued later.
    auto view = makeView({first.get(), second.get()}, {});
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(view, nullptr, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "sched-priority-order");
}

TEST(InvariantAuditor, DetectsRelegatedAheadOfRegular)
{
    auto first = makeRequest(1, 100, 10);
    auto second = makeRequest(2, 100, 10);
    first->setRelegated(true);
    first->cachedPriority = 0.0;
    second->cachedPriority = 1.0;
    auto view = makeView({first.get(), second.get()}, {});
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(view, nullptr, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "sched-priority-order");
}

TEST(InvariantAuditor, DetectsKvRequestDisagreement)
{
    auto req = makeDecodingRequest(9, 64, 8);
    BlockManager kv(TokenCount{1 << 14}, TokenCount{16});
    // Allocate the wrong number of tokens for request 9 (a decoding
    // request must own contextLength() - 1).
    ASSERT_TRUE(kv.grow(9, TokenCount{req->contextLength() + 5}));
    auto view = makeView({}, {req.get()});
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(view, &kv, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "kv-request-agreement");
}

TEST(InvariantAuditor, AgreeingKvIsClean)
{
    auto req = makeDecodingRequest(9, 64, 8);
    BlockManager kv(TokenCount{1 << 14}, TokenCount{16});
    // The newest sampled token has no KV entry yet, so a consistent
    // decoding request owns one token less than its context.
    ASSERT_TRUE(kv.grow(9, TokenCount{req->contextLength() - 1}));
    auto view = makeView({}, {req.get()});
    auto auditor = makeAuditor();
    auditor.checkSchedulerView(view, &kv, SimTime{0.0});
    EXPECT_TRUE(auditor.clean());
}

TEST(InvariantAuditor, HealthyBlockManagerPasses)
{
    BlockManager kv(TokenCount{1024}, TokenCount{16});
    ASSERT_TRUE(kv.grow(1, TokenCount{100}));
    ASSERT_TRUE(kv.grow(2, TokenCount{37}));
    kv.release(1);
    auto auditor = makeAuditor();
    auditor.checkBlockManager(kv, SimTime{0.0});
    EXPECT_TRUE(auditor.clean());
}

// --- Shared-block refcount conservation ----------------------------------

/** A consistent snapshot: one shared block held by one owner plus
 *  the cache (refs 2), one evictable block held by the cache alone. */
KvSharedAuditView
makeSharedView()
{
    KvSharedAuditView view;
    view.blockTokens = 16;
    view.owners.push_back({7, 16, {1}});
    view.table = {{1, 2, true}, {2, 1, true}};
    view.cacheHeldBlocks = 2;
    view.evictableBlocks = 1;
    view.cacheWatermark = 4;
    return view;
}

TEST(InvariantAuditor, ConsistentSharedTableIsClean)
{
    auto auditor = makeAuditor();
    auditor.checkSharedTable(makeSharedView(), SimTime{0.0});
    EXPECT_TRUE(auditor.clean());
}

TEST(InvariantAuditor, DetectsMisalignedSharedTokens)
{
    auto view = makeSharedView();
    view.owners[0].sharedTokens = 20; // Not a multiple of 16.
    auto auditor = makeAuditor();
    auditor.checkSharedTable(view, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "kv-shared-refcount");
}

TEST(InvariantAuditor, DetectsDeadSharedBlockInTable)
{
    auto view = makeSharedView();
    view.table[1].refs = 0;
    view.evictableBlocks = 0; // Keep the tallies consistent.
    auto auditor = makeAuditor();
    auditor.checkSharedTable(view, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "kv-shared-refcount");
}

TEST(InvariantAuditor, DetectsRefcountDrift)
{
    auto view = makeSharedView();
    view.table[0].refs = 3; // One owner + the cache can only be 2.
    auto auditor = makeAuditor();
    auditor.checkSharedTable(view, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "kv-shared-refcount");
}

TEST(InvariantAuditor, DetectsPhantomOwnerReference)
{
    auto view = makeSharedView();
    // Owner claims a block the table says only the cache holds: its
    // refcount (1) no longer covers owner + cache (2).
    view.owners[0].sharedIds = {2};
    auto auditor = makeAuditor();
    auditor.checkSharedTable(view, SimTime{0.0});
    // Both blocks now disagree (block 1 lost its owner, block 2
    // gained one); every finding must be the refcount invariant.
    EXPECT_EQ(soleViolation(auditor), "kv-shared-refcount");
}

TEST(InvariantAuditor, DetectsCacheHeldTallyDrift)
{
    auto view = makeSharedView();
    view.cacheHeldBlocks = 3; // Table only shows 2.
    auto auditor = makeAuditor();
    auditor.checkSharedTable(view, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "kv-shared-refcount");
}

TEST(InvariantAuditor, DetectsEvictableTallyDrift)
{
    auto view = makeSharedView();
    view.evictableBlocks = 2; // Table only shows 1 (block 2).
    auto auditor = makeAuditor();
    auditor.checkSharedTable(view, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "kv-shared-refcount");
}

TEST(InvariantAuditor, DetectsWatermarkOverrun)
{
    auto view = makeSharedView();
    view.cacheWatermark = 1; // The cache holds 2.
    auto auditor = makeAuditor();
    auditor.checkSharedTable(view, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "kv-cache-watermark");
}

TEST(InvariantAuditor, WatermarkOverrunOnLiveManager)
{
    // The one watermark corruption reachable through the real API:
    // reconfiguring the watermark below the current holdings.
    BlockManager kv(TokenCount{320}, TokenCount{16});
    kv.setCacheWatermark(4);
    ASSERT_TRUE(kv.grow(1, TokenCount{48}));
    kv.convertToCached(1, 3);
    kv.setCacheWatermark(2);
    auto auditor = makeAuditor();
    auditor.checkBlockManager(kv, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "kv-cache-watermark");
}

TEST(InvariantAuditor, HealthySharedBlocksPassCheckBlockManager)
{
    BlockManager kv(TokenCount{320}, TokenCount{16});
    kv.setCacheWatermark(8);
    ASSERT_TRUE(kv.grow(1, TokenCount{48}));
    auto ids = kv.convertToCached(1, 2);
    kv.attachShared(2, ids);
    kv.release(1);
    auto auditor = makeAuditor();
    auditor.checkBlockManager(kv, SimTime{0.0});
    EXPECT_TRUE(auditor.clean());
}

TEST(InvariantAuditor, CheapLevelSkipsSharedTableWalk)
{
    auto view = makeSharedView();
    view.table[0].refs = 3;
    auto auditor = makeAuditor(audit::CheckLevel::Cheap);
    auditor.checkSharedTable(view, SimTime{0.0});
    EXPECT_TRUE(auditor.clean());
}

// --- Prefix-cache tree vs shared-block table ------------------------------

TEST(InvariantAuditor, DetectsTreeBlockTheManagerDropped)
{
    // The cache's radix tree is built on one manager but audited
    // against another that holds nothing: every tree block is a
    // dangling reference.
    BlockManager kv(TokenCount{320}, TokenCount{16});
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    PrefixCache cache(kv, cfg);
    RequestSpec spec;
    spec.id = 1;
    spec.promptTokens = 32;
    spec.promptSegments = {{7, 32}};
    ASSERT_TRUE(kv.grow(1, TokenCount{32}));
    cache.insert(1, spec, SimTime{1.0});
    ASSERT_EQ(cache.nodeCount(), 2u);

    BlockManager other(TokenCount{320}, TokenCount{16});
    auto auditor = makeAuditor();
    auditor.checkPrefixCache(cache, other, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "prefix-tree-blocks");
    EXPECT_EQ(auditor.violationCount(), 2u);
}

TEST(InvariantAuditor, DetectsCacheHeldBlockMissingFromTree)
{
    // Blocks enter the cache-held state behind the tree's back (a
    // direct conversion): the tree has no node for them.
    BlockManager kv(TokenCount{320}, TokenCount{16});
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    PrefixCache cache(kv, cfg);
    ASSERT_TRUE(kv.grow(1, TokenCount{32}));
    kv.convertToCached(1, 2);

    auto auditor = makeAuditor();
    auditor.checkPrefixCache(cache, kv, SimTime{0.0});
    EXPECT_EQ(soleViolation(auditor), "prefix-tree-blocks");
    EXPECT_EQ(auditor.violationCount(), 2u);
}

TEST(InvariantAuditor, ConsistentPrefixCachePasses)
{
    BlockManager kv(TokenCount{320}, TokenCount{16});
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    PrefixCache cache(kv, cfg);
    RequestSpec spec;
    spec.id = 1;
    spec.promptTokens = 32;
    spec.promptSegments = {{7, 32}};
    ASSERT_TRUE(kv.grow(1, TokenCount{32}));
    cache.insert(1, spec, SimTime{1.0});

    auto auditor = makeAuditor();
    auditor.checkPrefixCache(cache, kv, SimTime{0.0});
    auditor.checkBlockManager(kv, SimTime{0.0});
    EXPECT_TRUE(auditor.clean());
}

// --- Crash-release including shared blocks --------------------------------

TEST(InvariantAuditor, CrashWithSurvivingSharedBlocksIsReported)
{
    BlockManager kv(TokenCount{1 << 14}, TokenCount{16});
    kv.setCacheWatermark(8);
    PerfModel perf(llama3_8b_a100_tp1());
    SchedulerEnv env;
    env.kv = &kv;
    env.perf = &perf;
    FcfsScheduler sched(env);

    // A clean post-crash state passes...
    auto auditor = makeAuditor();
    auditor.onReplicaCrash(kv, sched, 0, SimTime{1.0});
    EXPECT_TRUE(auditor.clean());

    // ...but shared blocks surviving the crash-release are a leak.
    ASSERT_TRUE(kv.grow(1, TokenCount{32}));
    kv.convertToCached(1, 2);
    kv.release(1); // Cache-held, evictable — and nothing else.
    auto auditor2 = makeAuditor();
    auditor2.onReplicaCrash(kv, sched, 0, SimTime{2.0});
    EXPECT_FALSE(auditor2.clean());
    bool saw_crash_release = false;
    for (const auto &v : auditor2.violations())
        saw_crash_release |= v.invariant == "kv-crash-release";
    EXPECT_TRUE(saw_crash_release);
}

TEST(InvariantAuditor, DetectsClockRegression)
{
    EventQueue advanced;
    advanced.schedule(SimTime{10.0}, [] {});
    advanced.run();
    ASSERT_DOUBLE_EQ(advanced.now().seconds(), 10.0);

    EventQueue fresh; // A second queue still at t = 0.

    auto auditor = makeAuditor();
    auditor.checkEventTime(advanced);
    EXPECT_TRUE(auditor.clean());
    auditor.checkEventTime(fresh);
    EXPECT_EQ(soleViolation(auditor), "clock-monotone");
}

// --- SLO record sanity ---------------------------------------------------

RequestRecord
makeRecord(std::uint64_t id)
{
    RequestRecord rec;
    rec.spec.id = id;
    rec.spec.arrival = SimTime{5.0};
    rec.spec.promptTokens = 100;
    rec.spec.decodeTokens = 10;
    rec.spec.tierId = 0;
    rec.firstTokenTime = SimTime{6.0};
    rec.finishTime = SimTime{7.0};
    rec.maxTbt = 0.05;
    return rec;
}

TEST(InvariantAuditor, ConsistentRecordIsClean)
{
    auto auditor = makeAuditor();
    auditor.checkRecord(makeRecord(1), paperTierTable());
    EXPECT_TRUE(auditor.clean());
}

TEST(InvariantAuditor, DetectsUnknownTierInRecord)
{
    auto rec = makeRecord(1);
    rec.spec.tierId = 99;
    auto auditor = makeAuditor();
    auditor.checkRecord(rec, paperTierTable());
    EXPECT_EQ(soleViolation(auditor), "slo-record");
}

TEST(InvariantAuditor, DetectsNegativeTtft)
{
    auto rec = makeRecord(1);
    rec.firstTokenTime = rec.spec.arrival - 1.0;
    auto auditor = makeAuditor();
    auditor.checkRecord(rec, paperTierTable());
    EXPECT_EQ(soleViolation(auditor), "slo-ttft-sample");
}

TEST(InvariantAuditor, DetectsFinishBeforeFirstToken)
{
    auto rec = makeRecord(1);
    rec.finishTime = rec.firstTokenTime - 0.5;
    auto auditor = makeAuditor();
    auditor.checkRecord(rec, paperTierTable());
    EXPECT_EQ(soleViolation(auditor), "slo-token-order");
}

TEST(InvariantAuditor, DetectsInvalidMaxTbt)
{
    auto rec = makeRecord(1);
    rec.maxTbt = std::numeric_limits<double>::quiet_NaN();
    auto auditor = makeAuditor();
    auditor.checkRecord(rec, paperTierTable());
    EXPECT_EQ(soleViolation(auditor), "slo-tbt-sample");

    rec = makeRecord(2);
    rec.maxTbt = -0.1;
    auto auditor2 = makeAuditor();
    auditor2.checkRecord(rec, paperTierTable());
    EXPECT_EQ(soleViolation(auditor2), "slo-tbt-sample");
}

TEST(InvariantAuditor, DetectsImpossibleTbtMissCount)
{
    auto rec = makeRecord(1);
    rec.tbtDeadlineMisses = rec.spec.decodeTokens + 1;
    auto auditor = makeAuditor();
    auditor.checkRecord(rec, paperTierTable());
    EXPECT_EQ(soleViolation(auditor), "slo-miss-count");
}

TEST(InvariantAuditor, RejectedRecordSkipsLatencyChecks)
{
    RequestRecord rec; // Latencies stay infinite by design.
    rec.spec.tierId = 0;
    rec.rejected = true;
    auto auditor = makeAuditor();
    auditor.checkRecord(rec, paperTierTable());
    EXPECT_TRUE(auditor.clean());
}

// --- Level gating and reporting modes ------------------------------------

TEST(InvariantAuditor, OffLevelIgnoresCorruptState)
{
    auto req = makeRequest(7, 100, 10);
    auto view = makeView({req.get(), req.get()}, {});
    view.pendingPrefillTokens = -5;
    auto auditor = makeAuditor(audit::CheckLevel::Off);
    auditor.checkSchedulerView(view, nullptr, SimTime{0.0});
    EXPECT_TRUE(auditor.clean());
}

TEST(InvariantAuditor, CheapLevelSkipsFullOnlyWalks)
{
    auto req = makeRequest(7, 100, 10);
    // Exclusivity (full-only) is violated; the cheap counters are
    // consistent, so a cheap auditor must stay clean.
    auto view = makeView({req.get(), req.get()}, {});
    view.pendingPrefillTokens = 2 * req->prefillRemaining();
    auto cheap = makeAuditor(audit::CheckLevel::Cheap);
    cheap.checkSchedulerView(view, nullptr, SimTime{0.0});
    EXPECT_TRUE(cheap.clean());

    auto full = makeAuditor(audit::CheckLevel::Full);
    full.checkSchedulerView(view, nullptr, SimTime{0.0});
    EXPECT_FALSE(full.clean());
}

TEST(InvariantAuditor, FailFastPanicsOnFirstViolation)
{
    auto view = makeView({}, {});
    view.pendingPrefillTokens = -1;
    InvariantAuditor auditor; // Default: failFast, compiled level.
    if (auditor.level() == audit::CheckLevel::Off)
        GTEST_SKIP() << "auditing compiled out";
    EXPECT_DEATH(auditor.checkSchedulerView(view, nullptr, SimTime{0.0}),
                 "invariant violated");
}

TEST(InvariantAuditor, RetainsViolationsUpToCap)
{
    InvariantAuditor::Options opts;
    opts.level = audit::CheckLevel::Full;
    opts.failFast = false;
    opts.maxRetained = 2;
    InvariantAuditor auditor(opts);
    auto view = makeView({}, {});
    view.pendingPrefillTokens = -1;
    // Each check trips the negative counter twice: the cheap bound
    // and the full-level sum-vs-counter comparison.
    for (int i = 0; i < 5; ++i)
        auditor.checkSchedulerView(view, nullptr, SimTime{0.0});
    EXPECT_EQ(auditor.violationCount(), 10u);
    EXPECT_EQ(auditor.violations().size(), 2u);
    EXPECT_EQ(auditor.violations().front().invariant,
              "sched-pending-prefill");
}

// --- Enforced EventQueue timestamp semantics (satellite) -----------------

TEST(EventQueueValidation, RejectsNonFiniteTimestamps)
{
    EventQueue eq;
    EXPECT_DEATH(
        eq.schedule(SimTime{std::numeric_limits<double>::quiet_NaN()}, [] {}),
        "non-finite");
    EXPECT_DEATH(eq.schedule(kTimeNever, [] {}), "non-finite");
}

TEST(EventQueueValidation, RejectsSchedulingInThePast)
{
    EventQueue eq;
    eq.schedule(SimTime{5.0}, [] {});
    eq.run();
    ASSERT_DOUBLE_EQ(eq.now().seconds(), 5.0);
    EXPECT_DEATH(eq.schedule(SimTime{4.0}, [] {}), "in the past");
}

TEST(EventQueueValidation, RejectsInvalidDelays)
{
    EventQueue eq;
    EXPECT_DEATH(eq.scheduleAfter(-1.0, [] {}), "non-negative");
    EXPECT_DEATH(
        eq.scheduleAfter(std::numeric_limits<double>::infinity(), [] {}),
        "non-negative");
}

TEST(EventQueueValidation, AcceptsPresentAndFutureTimes)
{
    EventQueue eq;
    eq.schedule(SimTime{1.0}, [] {});
    eq.run();
    int fired = 0;
    eq.schedule(eq.now(), [&] { ++fired; }); // Exactly now is legal.
    eq.scheduleAfter(0.0, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
}

} // namespace
} // namespace qoserve
