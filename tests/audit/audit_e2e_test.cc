/**
 * @file
 * End-to-end audit runs: scaled-down versions of the Fig. 2 policy
 * sweep and the Table 5 feature ablation execute under a full-level,
 * violation-collecting auditor, and every run must finish with zero
 * invariant violations. This is the "the real simulator never trips
 * its own checks" half of the correctness tooling layer; the unit
 * tests prove the checks can trip at all.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "audit/invariant_auditor.hh"
#include "app/serving_system.hh"
#include "fault/fault_injector.hh"
#include "workload/arrival.hh"
#include "workload/trace.hh"

namespace qoserve {
namespace {

/** A small but non-trivial trace (overload included). */
Trace
smallTrace(std::uint64_t seed = 7)
{
    return TraceBuilder()
        .seed(seed)
        .lowPriorityFraction(0.2)
        .buildCount(PoissonArrivals(6.0), 150);
}

/** A trace where most requests share prompt prefixes. */
Trace
sharedPrefixTrace(std::uint64_t seed = 7)
{
    SharedPrefixConfig sp;
    sp.shareRatio = 0.7;
    sp.numPools = 4;
    return TraceBuilder()
        .seed(seed)
        .sharedPrefix(sp)
        .buildCount(PoissonArrivals(6.0), 150);
}

/** Describe retained violations for failure messages. */
std::string
describe(const InvariantAuditor &auditor)
{
    std::ostringstream out;
    out << auditor.violationCount() << " violation(s):";
    for (const auto &v : auditor.violations()) {
        out << "\n  [" << v.invariant << "] t=" << v.when << " "
            << v.detail;
    }
    return out.str();
}

/**
 * Run @p cfg over @p trace with a full-level auditor attached and
 * return the auditor's verdict.
 */
void
expectCleanRun(const ServingConfig &cfg, const Trace &trace,
               const std::string &label)
{
    auto predictor = makePredictor(cfg);
    ClusterSim::Config ccfg;
    ccfg.replica.hw = cfg.hw;
    ccfg.replica.perfParams = cfg.perfParams;
    ccfg.replica.prefixCache = cfg.prefixCache;
    ccfg.cacheAffinityRouting = cfg.cacheAffinityRouting;
    ccfg.predictor = predictor.get();

    ClusterSim sim(ccfg, trace);
    InvariantAuditor::Options opts;
    opts.level = audit::CheckLevel::Full;
    opts.failFast = false;
    InvariantAuditor auditor(opts);
    sim.setAuditor(&auditor);
    sim.addReplicaGroup(cfg.numReplicas, makeSchedulerFactory(cfg));
    sim.run();

    EXPECT_GT(auditor.iterationsAudited(), 0u) << label;
    EXPECT_TRUE(auditor.clean()) << label << ": " << describe(auditor);
}

TEST(AuditE2E, PolicySweepRunsClean)
{
    // Fig. 2 in miniature: every policy family over the same trace.
    Trace trace = smallTrace();
    for (Policy policy :
         {Policy::QoServe, Policy::SarathiFcfs, Policy::SarathiEdf,
          Policy::SarathiSjf, Policy::SarathiSrpf, Policy::Medha,
          Policy::SlosServeDp}) {
        ServingConfig cfg;
        cfg.policy = policy;
        cfg.useForestPredictor = false; // Oracle: fast and exact.
        expectCleanRun(cfg, trace, policyName(policy));
    }
}

TEST(AuditE2E, FeatureAblationRunsClean)
{
    // Table 5 in miniature: QoServe with each feature toggled off.
    Trace trace = smallTrace(11);
    struct Variant
    {
        const char *name;
        void (*apply)(QoServeConfig &);
    };
    const Variant variants[] = {
        {"full", [](QoServeConfig &) {}},
        {"no-dynamic-chunking",
         [](QoServeConfig &q) { q.enableDynamicChunking = false; }},
        {"no-eager-relegation",
         [](QoServeConfig &q) { q.enableEagerRelegation = false; }},
        {"no-hybrid-priority",
         [](QoServeConfig &q) { q.enableHybridPriority = false; }},
        {"no-selective-preemption",
         [](QoServeConfig &q) { q.enableSelectivePreemption = false; }},
    };
    for (const Variant &variant : variants) {
        ServingConfig cfg;
        cfg.policy = Policy::QoServe;
        cfg.useForestPredictor = false;
        variant.apply(cfg.qoserve);
        expectCleanRun(cfg, trace, variant.name);
    }
}

TEST(AuditE2E, MultiReplicaSharedClusterRunsClean)
{
    ServingConfig cfg;
    cfg.policy = Policy::QoServe;
    cfg.numReplicas = 2;
    cfg.useForestPredictor = false;
    expectCleanRun(cfg, smallTrace(23), "2-replica shared");
}

TEST(AuditE2E, FaultedRunsAuditClean)
{
    // Crash/straggler injection at full check level: every injected
    // crash must satisfy the crash-release invariants (no KV block
    // survives, no request stranded) and the run must stay clean
    // end to end, including re-dispatched resumed requests.
    Trace trace = smallTrace(37);
    for (Policy policy : {Policy::QoServe, Policy::SarathiFcfs}) {
        ServingConfig cfg;
        cfg.policy = policy;
        cfg.useForestPredictor = false;
        auto predictor = makePredictor(cfg);
        ClusterSim::Config ccfg;
        ccfg.replica.hw = cfg.hw;
        ccfg.replica.perfParams = cfg.perfParams;
        ccfg.predictor = predictor.get();

        ClusterSim sim(ccfg, trace);
        InvariantAuditor::Options opts;
        opts.level = audit::CheckLevel::Full;
        opts.failFast = false;
        InvariantAuditor auditor(opts);
        sim.setAuditor(&auditor);
        sim.addReplicaGroup(2, makeSchedulerFactory(cfg));

        FaultConfig fc;
        fc.crashMtbf = 8.0;
        fc.crashMttr = 3.0;
        fc.stragglerMtbf = 15.0;
        fc.stragglerDuration = 4.0;
        fc.stragglerFactor = 2.0;
        fc.horizon = trace.requests.back().arrival;
        FaultInjector injector(fc, sim);
        sim.run();

        ASSERT_GT(injector.stats().crashes, 0u)
            << policyName(policy);
        EXPECT_TRUE(auditor.clean())
            << policyName(policy) << ": " << describe(auditor);
    }
}

TEST(AuditE2E, PrefixCacheRunsClean)
{
    // The full cached-prefill stack — radix tree, COW tails, LRU
    // eviction, dedup at insert — audited every iteration at full
    // level, including the tree-vs-block-table agreement check.
    Trace trace = sharedPrefixTrace(19);
    for (Policy policy : {Policy::QoServe, Policy::SarathiFcfs}) {
        ServingConfig cfg;
        cfg.policy = policy;
        cfg.useForestPredictor = false;
        cfg.prefixCache.enabled = true;
        cfg.prefixCache.capacityFrac = 0.3;
        expectCleanRun(cfg, trace,
                       std::string("prefix-cache ") + policyName(policy));
    }
}

TEST(AuditE2E, CacheAffinityClusterRunsClean)
{
    ServingConfig cfg;
    cfg.policy = Policy::QoServe;
    cfg.numReplicas = 2;
    cfg.useForestPredictor = false;
    cfg.prefixCache.enabled = true;
    cfg.cacheAffinityRouting = true;
    expectCleanRun(cfg, sharedPrefixTrace(29), "cache-affinity cluster");
}

TEST(AuditE2E, CrashDuringCachedPrefillRunsClean)
{
    // Crashes while the prefix cache is hot: the crash releases every
    // shared block (audited by onReplicaCrash), the tree is dropped,
    // and re-dispatched requests re-resolve their prefix against the
    // surviving replica's cache. The run must stay clean end to end.
    Trace trace = sharedPrefixTrace(41);
    ServingConfig cfg;
    cfg.policy = Policy::QoServe;
    cfg.useForestPredictor = false;
    cfg.prefixCache.enabled = true;
    auto predictor = makePredictor(cfg);
    ClusterSim::Config ccfg;
    ccfg.replica.hw = cfg.hw;
    ccfg.replica.perfParams = cfg.perfParams;
    ccfg.replica.prefixCache = cfg.prefixCache;
    ccfg.predictor = predictor.get();

    ClusterSim sim(ccfg, trace);
    InvariantAuditor::Options opts;
    opts.level = audit::CheckLevel::Full;
    opts.failFast = false;
    InvariantAuditor auditor(opts);
    sim.setAuditor(&auditor);
    sim.addReplicaGroup(2, makeSchedulerFactory(cfg));

    FaultConfig fc;
    fc.crashMtbf = 8.0;
    fc.crashMttr = 3.0;
    fc.horizon = trace.requests.back().arrival;
    FaultInjector injector(fc, sim);
    sim.run();

    ASSERT_GT(injector.stats().crashes, 0u);
    EXPECT_TRUE(auditor.clean()) << describe(auditor);

    // The caches were exercised: some crashed replica dropped a tree
    // and lookups kept happening afterwards.
    std::int64_t lookups = 0;
    std::int64_t drops = 0;
    for (std::size_t i = 0; i < sim.numReplicas(); ++i) {
        lookups += sim.replica(i).prefixCache().stats().lookups;
        drops += sim.replica(i).prefixCache().stats().treeDrops;
    }
    EXPECT_GT(lookups, 0);
    EXPECT_GT(drops, 0);
}

TEST(AuditE2E, AutoAuditorInstalledWhenChecksCompiledIn)
{
    ServingConfig cfg;
    cfg.useForestPredictor = false;
    auto predictor = makePredictor(cfg);
    ClusterSim::Config ccfg;
    ccfg.replica.hw = cfg.hw;
    ccfg.predictor = predictor.get();
    ClusterSim sim(ccfg, smallTrace(3));
    if (audit::checksEnabled()) {
        ASSERT_NE(sim.auditor(), nullptr);
        EXPECT_EQ(sim.auditor()->level(), audit::kCompiledLevel);
        sim.addReplicaGroup(1, makeSchedulerFactory(cfg));
        sim.run();
        // failFast auditing: surviving run() means zero violations.
        EXPECT_TRUE(sim.auditor()->clean());
        EXPECT_GT(sim.auditor()->iterationsAudited(), 0u);
    } else {
        EXPECT_EQ(sim.auditor(), nullptr);
    }
}

} // namespace
} // namespace qoserve
