/**
 * @file
 * Tests for correlated failure domains: zone outages that take whole
 * replica groups down at once, control-plane partitions that blind
 * routing to a subset of the fleet, and their composition with the
 * independent per-replica fault injector.
 */

#include "fault/failure_domains.hh"

#include <gtest/gtest.h>

#include "sched/baseline_schedulers.hh"
#include "workload/arrival.hh"

namespace qoserve {
namespace {

SchedulerFactory
fcfsFactory()
{
    return [](const SchedulerEnv &env) {
        return std::make_unique<FcfsScheduler>(env);
    };
}

ClusterSim::Config
defaultConfig()
{
    ClusterSim::Config cfg;
    cfg.replica.hw = llama3_8b_a100_tp1();
    return cfg;
}

Trace
smallTrace(double qps, std::size_t count, std::uint64_t seed = 1)
{
    return TraceBuilder()
        .dataset(azureCode())
        .seed(seed)
        .buildCount(PoissonArrivals(qps), count);
}

DomainConfig
outageConfig(const Trace &trace, std::uint64_t seed = 7)
{
    DomainConfig dc;
    dc.zones = 2;
    dc.zoneMtbf = 25.0;
    dc.zoneMttr = 8.0;
    dc.seed = seed;
    dc.horizon = trace.requests.back().arrival;
    return dc;
}

TEST(FailureDomains, DisabledInjectorIsByteNeutral)
{
    Trace trace = smallTrace(3.0, 200);

    ClusterSim plain(defaultConfig(), trace);
    plain.addReplicaGroup(4, fcfsFactory());
    std::vector<RequestRecord> without = plain.run().records();

    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(4, fcfsFactory());
    DomainConfig off; // zones and partitions both disabled
    DomainInjector injector(off, sim);
    std::vector<RequestRecord> with = sim.run().records();

    EXPECT_TRUE(injector.events().empty());
    EXPECT_EQ(injector.stats().zoneOutages, 0u);
    EXPECT_EQ(injector.stats().partitions, 0u);
    ASSERT_EQ(with.size(), without.size());
    for (std::size_t i = 0; i < with.size(); ++i) {
        EXPECT_EQ(with[i].spec.id, without[i].spec.id);
        EXPECT_EQ(with[i].finishTime, without[i].finishTime);
        EXPECT_EQ(with[i].firstTokenTime, without[i].firstTokenTime);
    }
}

TEST(FailureDomains, ZonesPartitionReplicasContiguously)
{
    Trace trace = smallTrace(2.0, 50);
    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(5, fcfsFactory());
    DomainConfig dc = outageConfig(trace);
    dc.zones = 2;
    DomainInjector injector(dc, sim);

    // Every replica belongs to exactly one zone, zone ids are
    // non-decreasing in replica order, and both zones are non-empty.
    int last = 0;
    std::vector<int> sizes(2, 0);
    for (std::size_t i = 0; i < sim.numReplicas(); ++i) {
        int z = injector.zoneOf(i);
        ASSERT_GE(z, 0);
        ASSERT_LT(z, 2);
        EXPECT_GE(z, last);
        last = z;
        ++sizes[z];
    }
    EXPECT_GT(sizes[0], 0);
    EXPECT_GT(sizes[1], 0);
    sim.run();
}

TEST(FailureDomains, ZoneOutagesFailAndRestoreTogether)
{
    Trace trace = smallTrace(4.0, 400, 3);
    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(4, fcfsFactory());
    DomainInjector injector(outageConfig(trace), sim);
    sim.run();

    const DomainStats &stats = injector.stats();
    ASSERT_GT(stats.zoneOutages, 0u);
    // Restores are always delivered, even past the horizon, and every
    // downed replica comes back.
    EXPECT_EQ(stats.zoneRestores, stats.zoneOutages);
    EXPECT_GT(stats.replicasDowned, 0u);
    EXPECT_GT(stats.zoneDownSeconds, 0.0);
    for (std::size_t i = 0; i < sim.numReplicas(); ++i)
        EXPECT_EQ(sim.replica(i).health(), ReplicaHealth::Up);

    // The event log pairs outages with recoveries per zone, in
    // chronological order.
    std::vector<int> open(2, 0);
    SimTime last{0.0};
    for (const FaultEvent &ev : injector.events()) {
        EXPECT_GE(ev.when, last);
        last = ev.when;
        if (ev.kind == FaultKind::ZoneOutage) {
            ASSERT_EQ(open[ev.replica], 0) << "zone failed twice";
            open[ev.replica] = 1;
        } else if (ev.kind == FaultKind::ZoneRecovery) {
            ASSERT_EQ(open[ev.replica], 1) << "recovery without outage";
            open[ev.replica] = 0;
        }
    }
    EXPECT_EQ(open[0] + open[1], 0) << "an outage never healed";
}

TEST(FailureDomains, ScheduleIsDeterministicPerSeed)
{
    Trace trace = smallTrace(3.0, 250, 5);

    auto eventsFor = [&](std::uint64_t seed) {
        ClusterSim sim(defaultConfig(), trace);
        sim.addReplicaGroup(4, fcfsFactory());
        DomainConfig dc = outageConfig(trace, seed);
        dc.partitionMtbf = 30.0;
        dc.partitionMttr = 6.0;
        DomainInjector injector(dc, sim);
        sim.run();
        return injector.events();
    };

    auto a = eventsFor(7);
    auto b = eventsFor(7);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].replica, b[i].replica);
        EXPECT_EQ(a[i].when, b[i].when);
    }

    auto c = eventsFor(8);
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].when != c[i].when || a[i].kind != c[i].kind;
    EXPECT_TRUE(differs) << "different seeds gave the same schedule";
}

TEST(FailureDomains, PartitionsBlindAndHealTheRoutingView)
{
    Trace trace = smallTrace(4.0, 400, 9);
    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(4, fcfsFactory());
    DomainConfig dc;
    dc.partitionMtbf = 20.0;
    dc.partitionMttr = 8.0;
    dc.partitionFrac = 0.5;
    dc.horizon = trace.requests.back().arrival;
    DomainInjector injector(dc, sim);
    sim.run();

    const DomainStats &stats = injector.stats();
    ASSERT_GT(stats.partitions, 0u);
    EXPECT_EQ(stats.partitionHeals, stats.partitions);
    // Every partition healed: routing sees the whole fleet again.
    EXPECT_EQ(sim.blindedReplicas(), 0u);

    // PartitionStart events carry the blinded-replica count: half the
    // fleet at frac 0.5.
    for (const FaultEvent &ev : injector.events()) {
        if (ev.kind == FaultKind::PartitionStart) {
            EXPECT_EQ(ev.replica, 2u);
        }
    }
}

TEST(FailureDomains, NoRequestIsLostUnderCompoundFailures)
{
    Trace trace = smallTrace(4.0, 500, 11);
    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(4, fcfsFactory());
    DomainConfig dc = outageConfig(trace);
    dc.partitionMtbf = 25.0;
    dc.partitionMttr = 10.0;
    dc.partitionFrac = 0.5;
    DomainInjector injector(dc, sim);
    const MetricsCollector &metrics = sim.run();

    ASSERT_GT(injector.stats().zoneOutages, 0u);
    ASSERT_GT(injector.stats().partitions, 0u);
    ASSERT_EQ(metrics.size(), trace.requests.size());
    for (const RequestRecord &rec : metrics.records()) {
        bool finished = rec.finishTime != kTimeNever;
        bool terminal = finished || rec.rejected || rec.retryExhausted;
        EXPECT_TRUE(terminal) << "request " << rec.spec.id
                              << " ended in no terminal state";
    }
}

TEST(FailureDomains, ComposesWithIndependentFaultInjector)
{
    Trace trace = smallTrace(4.0, 400, 13);
    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(4, fcfsFactory());

    FaultConfig fc;
    fc.crashMtbf = 15.0;
    fc.crashMttr = 5.0;
    fc.seed = 11;
    fc.horizon = trace.requests.back().arrival;
    FaultInjector crashes(fc, sim);

    DomainInjector domains(outageConfig(trace), sim);
    const MetricsCollector &metrics = sim.run();

    // Both schedules engaged; composition double-crashes nothing (the
    // run itself asserts on a double fail/recover) and every replica
    // ends healthy.
    ASSERT_GT(crashes.stats().crashes, 0u);
    ASSERT_GT(domains.stats().zoneOutages, 0u);
    EXPECT_EQ(crashes.stats().recoveries, crashes.stats().crashes);
    EXPECT_EQ(domains.stats().zoneRestores, domains.stats().zoneOutages);
    for (std::size_t i = 0; i < sim.numReplicas(); ++i)
        EXPECT_EQ(sim.replica(i).health(), ReplicaHealth::Up);
    EXPECT_EQ(metrics.size(), trace.requests.size());
}

TEST(FailureDomainsDeath, DegenerateConfigsAreFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Trace trace = smallTrace(2.0, 20);
    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(2, fcfsFactory());

    DomainConfig more_zones_than_replicas = outageConfig(trace);
    more_zones_than_replicas.zones = 3;
    EXPECT_DEATH(DomainInjector(more_zones_than_replicas, sim),
                 "zones");

    DomainConfig zero_mttr = outageConfig(trace);
    zero_mttr.zoneMttr = 0.0;
    EXPECT_DEATH(DomainInjector(zero_mttr, sim), "MTTR");

    DomainConfig bad_frac = outageConfig(trace);
    bad_frac.partitionMtbf = 10.0;
    bad_frac.partitionFrac = 1.5;
    EXPECT_DEATH(DomainInjector(bad_frac, sim), "fraction");

    DomainConfig no_horizon = outageConfig(trace);
    no_horizon.horizon = SimTime{0.0};
    EXPECT_DEATH(DomainInjector(no_horizon, sim), "horizon");
}

} // namespace
} // namespace qoserve
