/**
 * @file
 * Tests for the deterministic fault injector.
 */

#include "fault/fault_injector.hh"

#include <gtest/gtest.h>

#include "sched/baseline_schedulers.hh"
#include "workload/arrival.hh"

namespace qoserve {
namespace {

SchedulerFactory
fcfsFactory()
{
    return [](const SchedulerEnv &env) {
        return std::make_unique<FcfsScheduler>(env);
    };
}

ClusterSim::Config
defaultConfig()
{
    ClusterSim::Config cfg;
    cfg.replica.hw = llama3_8b_a100_tp1();
    return cfg;
}

Trace
smallTrace(double qps, std::size_t count, std::uint64_t seed = 1)
{
    return TraceBuilder()
        .dataset(azureCode())
        .seed(seed)
        .buildCount(PoissonArrivals(qps), count);
}

FaultConfig
crashyConfig(std::uint64_t seed = 7)
{
    FaultConfig fc;
    fc.crashMtbf = 20.0;
    fc.crashMttr = 5.0;
    fc.seed = seed;
    fc.horizon = SimTime{100.0};
    return fc;
}

TEST(FaultInjector, DisabledInjectorSchedulesNothing)
{
    Trace trace = smallTrace(2.0, 100);

    ClusterSim plain(defaultConfig(), trace);
    plain.addReplicaGroup(2, fcfsFactory());
    RunSummary without = summarize(plain.run());

    ClusterSim injected(defaultConfig(), trace);
    injected.addReplicaGroup(2, fcfsFactory());
    FaultConfig off; // both rates zero
    FaultInjector injector(off, injected);
    RunSummary with = summarize(injected.run());

    EXPECT_TRUE(injector.events().empty());
    EXPECT_EQ(injector.stats().crashes, 0u);
    EXPECT_EQ(with.count, without.count);
    EXPECT_EQ(with.p99Latency, without.p99Latency);
    EXPECT_EQ(with.violationRate, without.violationRate);
    EXPECT_DOUBLE_EQ(injector.machineAvailability(), 1.0);
}

TEST(FaultInjector, ScheduleIsDeterministicPerSeed)
{
    Trace trace = smallTrace(2.0, 150, 3);

    auto eventsFor = [&](std::uint64_t seed) {
        ClusterSim sim(defaultConfig(), trace);
        sim.addReplicaGroup(3, fcfsFactory());
        FaultInjector injector(crashyConfig(seed), sim);
        sim.run();
        return injector.events();
    };

    auto a = eventsFor(7);
    auto b = eventsFor(7);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].replica, b[i].replica);
        EXPECT_EQ(a[i].when, b[i].when);
    }

    auto c = eventsFor(8);
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].when != c[i].when || a[i].kind != c[i].kind;
    EXPECT_TRUE(differs) << "different seeds gave the same schedule";
}

TEST(FaultInjector, EveryCrashIsRepairedAndCountsMatch)
{
    Trace trace = smallTrace(3.0, 200, 5);
    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(3, fcfsFactory());
    FaultInjector injector(crashyConfig(), sim);
    sim.run();

    const FaultStats &stats = injector.stats();
    ASSERT_GT(stats.crashes, 0u);
    // Recoveries are always delivered, even past the horizon.
    EXPECT_EQ(stats.recoveries, stats.crashes);
    EXPECT_GT(stats.meanTimeToRepair(), 0.0);
    for (std::size_t i = 0; i < sim.numReplicas(); ++i)
        EXPECT_EQ(sim.replica(i).health(), ReplicaHealth::Up);

    std::uint64_t logged_crashes = 0;
    for (const FaultEvent &ev : injector.events()) {
        if (ev.kind == FaultKind::Crash) {
            ++logged_crashes;
            EXPECT_LE(ev.when, injector.config().horizon);
        }
    }
    EXPECT_EQ(logged_crashes, stats.crashes);

    double avail = injector.machineAvailability();
    EXPECT_GT(avail, 0.0);
    EXPECT_LT(avail, 1.0);
}

TEST(FaultInjector, StragglerEpisodesSetAndClearSlowdown)
{
    Trace trace = smallTrace(2.0, 150, 9);
    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(2, fcfsFactory());

    FaultConfig fc;
    fc.stragglerMtbf = 15.0;
    fc.stragglerDuration = 5.0;
    fc.stragglerFactor = 3.0;
    fc.horizon = SimTime{60.0};
    FaultInjector injector(fc, sim);
    sim.run();

    EXPECT_GT(injector.stats().stragglerEpisodes, 0u);
    EXPECT_EQ(injector.stats().crashes, 0u);
    // Every episode ends: the cluster drains at full speed.
    for (std::size_t i = 0; i < sim.numReplicas(); ++i) {
        EXPECT_EQ(sim.replica(i).health(), ReplicaHealth::Up);
        EXPECT_DOUBLE_EQ(sim.replica(i).slowdown(), 1.0);
    }
    bool saw_start = false, saw_end = false;
    for (const FaultEvent &ev : injector.events()) {
        saw_start |= ev.kind == FaultKind::StragglerStart;
        saw_end |= ev.kind == FaultKind::StragglerEnd;
        if (ev.kind == FaultKind::StragglerStart)
            EXPECT_DOUBLE_EQ(ev.factor, 3.0);
    }
    EXPECT_TRUE(saw_start);
    EXPECT_TRUE(saw_end);
    // Stragglers slow requests down but never lose them.
    EXPECT_EQ(sim.metrics().size(), trace.requests.size());
}

TEST(FaultInjectorDeath, EnabledWithoutHorizonIsFatal)
{
    Trace trace = smallTrace(1.0, 10);
    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(1, fcfsFactory());
    FaultConfig fc;
    fc.crashMtbf = 10.0;
    fc.horizon = SimTime{0.0};
    EXPECT_EXIT(FaultInjector(fc, sim),
                ::testing::ExitedWithCode(1), "horizon");
}

TEST(FaultInjectorDeath, SubUnityStragglerFactorIsFatal)
{
    Trace trace = smallTrace(1.0, 10);
    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(1, fcfsFactory());
    FaultConfig fc;
    fc.stragglerMtbf = 10.0;
    fc.stragglerFactor = 0.5;
    fc.horizon = SimTime{50.0};
    EXPECT_EXIT(FaultInjector(fc, sim),
                ::testing::ExitedWithCode(1), "factor");
}

TEST(FaultInjectorDeath, NonPositiveMttrIsFatal)
{
    Trace trace = smallTrace(1.0, 10);
    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(1, fcfsFactory());
    FaultConfig fc;
    fc.crashMtbf = 10.0;
    fc.crashMttr = 0.0;
    fc.horizon = SimTime{50.0};
    EXPECT_EXIT(FaultInjector(fc, sim),
                ::testing::ExitedWithCode(1), "mttr|MTTR|repair");
}

} // namespace
} // namespace qoserve
