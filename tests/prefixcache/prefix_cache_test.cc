/**
 * @file
 * PrefixCache unit and property tests: content keys, insert/attach/
 * probe flows, copy-on-write tails, deterministic LRU eviction and
 * refcount conservation under randomized interleavings.
 */

#include "prefixcache/prefix_cache.hh"

#include <gtest/gtest.h>

#include "audit/invariant_auditor.hh"
#include "simcore/rng.hh"

namespace qoserve {
namespace {

constexpr int kB = 16; ///< Block size used throughout.

RequestSpec
spec(std::uint64_t id, std::vector<PromptSegment> segments)
{
    RequestSpec s;
    s.id = id;
    s.promptSegments = std::move(segments);
    for (const auto &seg : s.promptSegments)
        s.promptTokens += seg.tokens;
    return s;
}

RequestSpec
uniqueSpec(std::uint64_t id, int prompt_tokens)
{
    RequestSpec s;
    s.id = id;
    s.promptTokens = prompt_tokens;
    return s;
}

std::string
describe(const InvariantAuditor &auditor)
{
    std::string out;
    for (const auto &v : auditor.violations())
        out += std::string(v.invariant) + ": " + v.detail + "\n";
    return out;
}

TEST(PrefixBlockKeys, OneKeyPerFullBlock)
{
    auto keys = prefixBlockKeys(spec(1, {{7, 100}}), TokenCount{kB});
    EXPECT_EQ(keys.size(), 6u); // floor(100 / 16)
    EXPECT_TRUE(prefixBlockKeys(spec(2, {{7, 15}}), TokenCount{kB}).empty());
}

TEST(PrefixBlockKeys, EqualContentGivesEqualKeys)
{
    auto a = prefixBlockKeys(spec(1, {{7, 64}, {9, 32}}), TokenCount{kB});
    auto b = prefixBlockKeys(spec(2, {{7, 64}, {9, 32}}), TokenCount{kB});
    EXPECT_EQ(a, b);
}

TEST(PrefixBlockKeys, KeysDivergeAtTheFirstDifferingSegment)
{
    auto a = prefixBlockKeys(spec(1, {{7, 64}, {9, 32}}), TokenCount{kB});
    auto b = prefixBlockKeys(spec(2, {{7, 64}, {11, 32}}), TokenCount{kB});
    ASSERT_EQ(a.size(), 6u);
    ASSERT_EQ(b.size(), 6u);
    // Blocks fully inside the common segment agree...
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(a[i], b[i]) << "block " << i;
    // ...and every block touching the differing segment does not.
    EXPECT_NE(a[4], b[4]);
    EXPECT_NE(a[5], b[5]);
}

TEST(PrefixBlockKeys, UniquePromptsNeverCollide)
{
    auto a = prefixBlockKeys(uniqueSpec(1, 64), TokenCount{kB});
    auto b = prefixBlockKeys(uniqueSpec(2, 64), TokenCount{kB});
    ASSERT_EQ(a.size(), 4u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NE(a[i], b[i]) << "block " << i;
    // But the same request replayed keys identically.
    EXPECT_EQ(a, prefixBlockKeys(uniqueSpec(1, 64), TokenCount{kB}));
}

/** Drive one request through its lifecycle: attach at admission,
 *  grow the remaining prompt privately, insert at prefill end. */
int
serveRequest(BlockManager &kv, PrefixCache &cache, KvOwnerId owner,
             const RequestSpec &s, SimTime now)
{
    int cached = cache.attach(owner, s, now);
    EXPECT_TRUE(kv.grow(owner, TokenCount{s.promptTokens - cached}));
    cache.insert(owner, s, now);
    return cached;
}

TEST(PrefixCache, DisabledCacheIsInert)
{
    BlockManager kv(TokenCount{320}, TokenCount{kB});
    PrefixCache cache(kv, PrefixCacheConfig{});
    EXPECT_FALSE(cache.enabled());
    RequestSpec s = spec(1, {{7, 64}});
    EXPECT_EQ(cache.attach(1, s, SimTime{0.0}), 0);
    ASSERT_TRUE(kv.grow(1, TokenCount{64}));
    cache.insert(1, s, SimTime{0.0});
    EXPECT_EQ(cache.nodeCount(), 0u);
    EXPECT_EQ(cache.stats().lookups, 0);
    EXPECT_EQ(kv.sharedBlockCount(), 0);
    // No watermark, no handler: available == free.
    EXPECT_EQ(kv.availableBlocks(), kv.freeBlocks());
    EXPECT_FALSE(cache.auditView().populated);
}

TEST(PrefixCache, InsertPopulatesTreeAndAttachReusesIt)
{
    BlockManager kv(TokenCount{320}, TokenCount{kB}); // 20 blocks
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    PrefixCache cache(kv, cfg);

    // First request misses and contributes its 4 full prompt blocks.
    RequestSpec first = spec(1, {{7, 64}, {9, 32}});
    EXPECT_EQ(serveRequest(kv, cache, 1, first, SimTime{1.0}), 0);
    EXPECT_EQ(cache.nodeCount(), 6u);
    EXPECT_EQ(cache.stats().lookups, 1);
    EXPECT_EQ(cache.stats().hits, 0);
    EXPECT_EQ(cache.stats().blocksInserted, 6);
    kv.release(1);

    // A second request sharing only the system prompt reuses the
    // four blocks of that segment.
    RequestSpec second = spec(2, {{7, 64}, {11, 32}});
    int cached = cache.attach(2, second, SimTime{2.0});
    EXPECT_EQ(cached, 64);
    EXPECT_EQ(cache.stats().hits, 1);
    EXPECT_EQ(cache.stats().tokensAttached, 64);
    EXPECT_EQ(cache.stats().cowCopies, 0);
    EXPECT_EQ(kv.sharedTokens(2), 64);
    EXPECT_EQ(kv.ownedTokens(2), 0);
}

TEST(PrefixCache, FullPromptMatchCowCopiesTheTail)
{
    BlockManager kv(TokenCount{320}, TokenCount{kB});
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    PrefixCache cache(kv, cfg);

    RequestSpec s = spec(1, {{7, 64}});
    serveRequest(kv, cache, 1, s, SimTime{1.0});
    kv.release(1);

    // Identical prompt: the match covers all 64 tokens but the attach
    // is capped at 63 so one real prefill token remains; the partial
    // fourth block is copied privately (COW).
    RequestSpec again = spec(2, {{7, 64}});
    int cached = cache.attach(2, again, SimTime{2.0});
    EXPECT_EQ(cached, 63);
    EXPECT_EQ(cache.stats().cowCopies, 1);
    EXPECT_EQ(kv.sharedTokens(2), 48); // 3 full shared blocks
    EXPECT_EQ(kv.ownedTokens(2), 15);  // the COW'd tail

    // Finishing the prefill dedups the recomputed fourth block onto
    // the cached copy instead of inserting a duplicate.
    ASSERT_TRUE(kv.grow(2, TokenCount{1}));
    cache.insert(2, again, SimTime{2.0});
    EXPECT_EQ(cache.nodeCount(), 4u);
    EXPECT_EQ(kv.sharedTokens(2), 64);
    EXPECT_EQ(kv.ownedTokens(2), 0);
}

TEST(PrefixCache, CowTailNeedsAFreeBlock)
{
    BlockManager kv(TokenCount{64}, TokenCount{kB}); // 4 blocks
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    cfg.capacityFrac = 1.0;
    PrefixCache cache(kv, cfg);

    RequestSpec s = spec(1, {{7, 64}});
    serveRequest(kv, cache, 1, s, SimTime{1.0});
    kv.release(1);
    ASSERT_EQ(kv.freeBlocks(), 0);

    // All four blocks are cached and none are free: the full-block
    // part of the match attaches, but the COW tail is dropped rather
    // than evicting (the eviction could reclaim the very block the
    // copy reads from).
    int cached = cache.attach(2, spec(2, {{7, 64}}), SimTime{2.0});
    EXPECT_EQ(cached, 48);
    EXPECT_EQ(cache.stats().cowCopies, 0);
    EXPECT_EQ(kv.ownedTokens(2), 0);
}

TEST(PrefixCache, ProbeMatchesAttachWithoutSideEffects)
{
    BlockManager kv(TokenCount{320}, TokenCount{kB});
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    PrefixCache cache(kv, cfg);

    serveRequest(kv, cache, 1, spec(1, {{7, 64}, {9, 32}}), SimTime{1.0});
    kv.release(1);

    RequestSpec partial = spec(2, {{7, 64}, {11, 32}});
    RequestSpec exact = spec(3, {{7, 64}, {9, 32}});
    RequestSpec miss = spec(4, {{8, 64}});
    EXPECT_EQ(cache.probe(partial), 64);
    EXPECT_EQ(cache.probe(exact), 95); // capped one token short
    EXPECT_EQ(cache.probe(miss), 0);

    // Probing is free: no lookups, hits, attachments or LRU touches.
    EXPECT_EQ(cache.stats().lookups, 1);
    EXPECT_EQ(cache.stats().hits, 0);
    EXPECT_EQ(kv.numOwners(), 0u);

    // And probe agrees with what attach then delivers.
    EXPECT_EQ(cache.attach(2, partial, SimTime{2.0}), 64);
}

TEST(PrefixCache, EvictionIsLruLeafOnlyWithIdTieBreak)
{
    BlockManager kv(TokenCount{320}, TokenCount{kB});
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    PrefixCache cache(kv, cfg);

    // Two chains inserted at distinct times, then both released.
    serveRequest(kv, cache, 1, spec(1, {{7, 32}}), SimTime{1.0});  // blocks A0<A1
    serveRequest(kv, cache, 2, spec(2, {{9, 32}}), SimTime{2.0});  // blocks B0<B1
    kv.release(1);
    kv.release(2);
    auto table = kv.sharedBlockTable();
    ASSERT_EQ(table.size(), 4u);
    KvBlockId a0 = table[0].id, a1 = table[1].id;
    KvBlockId b0 = table[2].id, b1 = table[3].id;

    // Oldest chain first, and within it only the leaf is eligible:
    // A1 goes before A0 even though A0 has the smaller id.
    EXPECT_EQ(cache.evictBlocks(1), 1);
    auto held = [&] {
        std::vector<KvBlockId> ids;
        for (const auto &info : kv.sharedBlockTable())
            ids.push_back(info.id);
        return ids;
    };
    EXPECT_EQ(held(), (std::vector<KvBlockId>{a0, b0, b1}));
    EXPECT_EQ(cache.evictBlocks(1), 1);
    EXPECT_EQ(held(), (std::vector<KvBlockId>{b0, b1}));
    EXPECT_EQ(cache.evictBlocks(2), 2);
    EXPECT_EQ(cache.nodeCount(), 0u);
    EXPECT_EQ(cache.stats().blocksEvicted, 4);
    EXPECT_EQ(kv.usedBlocks(), 0);
    (void)a1;
    (void)b1;
}

TEST(PrefixCache, AttachRefreshesLruOrder)
{
    BlockManager kv(TokenCount{320}, TokenCount{kB});
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    PrefixCache cache(kv, cfg);

    serveRequest(kv, cache, 1, spec(1, {{7, 16}}), SimTime{1.0});
    serveRequest(kv, cache, 2, spec(2, {{9, 16}}), SimTime{2.0});
    kv.release(1);
    kv.release(2);

    // Touch the older chain: a hit at t=10 makes it the newer one.
    EXPECT_EQ(cache.attach(3, spec(3, {{7, 32}}), SimTime{10.0}), 16);
    kv.release(3);

    // Eviction now reclaims the untouched chain (content 9) first.
    auto before = kv.sharedBlockTable();
    ASSERT_EQ(before.size(), 2u);
    EXPECT_EQ(cache.evictBlocks(1), 1);
    auto after = kv.sharedBlockTable();
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].id, before[0].id); // content 7's block survives
}

TEST(PrefixCache, PinnedBlocksAreNotEvictable)
{
    BlockManager kv(TokenCount{320}, TokenCount{kB});
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    PrefixCache cache(kv, cfg);

    serveRequest(kv, cache, 1, spec(1, {{7, 32}}), SimTime{1.0});
    // Owner 1 still references both blocks: nothing can be evicted.
    EXPECT_EQ(cache.evictBlocks(2), 0);
    EXPECT_EQ(cache.nodeCount(), 2u);
    kv.release(1);
    EXPECT_EQ(cache.evictBlocks(2), 2);
}

TEST(PrefixCache, InsertCachesOnlyWhatTheWatermarkAllows)
{
    BlockManager kv(TokenCount{128}, TokenCount{kB}); // 8 blocks
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    cfg.capacityFrac = 0.25; // watermark: 2 blocks
    PrefixCache cache(kv, cfg);

    // The owner still pins every cached block, so the insert cannot
    // evict its way to room: only the leading two blocks enter.
    RequestSpec s = spec(1, {{7, 64}});
    EXPECT_EQ(cache.attach(1, s, SimTime{1.0}), 0);
    ASSERT_TRUE(kv.grow(1, TokenCount{64}));
    cache.insert(1, s, SimTime{1.0});
    EXPECT_EQ(cache.nodeCount(), 2u);
    EXPECT_EQ(kv.cacheHeldBlocks(), 2);
    EXPECT_EQ(kv.sharedTokens(1), 32);
    EXPECT_EQ(kv.ownedTokens(1), 32);

    // Once the pins are gone a new insert evicts the cold blocks to
    // make room for its own, still respecting the watermark.
    kv.release(1);
    serveRequest(kv, cache, 2, spec(2, {{9, 64}}), SimTime{2.0});
    EXPECT_EQ(cache.nodeCount(), 2u);
    EXPECT_EQ(kv.cacheHeldBlocks(), 2);
    EXPECT_EQ(cache.stats().blocksEvicted, 2);
}

TEST(PrefixCache, DropAllForgetsTheTree)
{
    BlockManager kv(TokenCount{320}, TokenCount{kB});
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    PrefixCache cache(kv, cfg);

    serveRequest(kv, cache, 1, spec(1, {{7, 64}}), SimTime{1.0});
    ASSERT_EQ(cache.nodeCount(), 4u);

    // The crash path: the manager releases every block, then the
    // cache drops its (now dangling) tree.
    kv.releaseAll();
    cache.dropAll();
    EXPECT_EQ(cache.nodeCount(), 0u);
    EXPECT_EQ(cache.stats().treeDrops, 1);
    EXPECT_TRUE(cache.auditView().treeBlocks.empty());

    // The rebuilt tree serves hits again.
    serveRequest(kv, cache, 2, spec(2, {{7, 64}}), SimTime{2.0});
    kv.release(2);
    EXPECT_EQ(cache.attach(3, spec(3, {{7, 64}}), SimTime{3.0}), 63);
}

TEST(PrefixCache, AuditViewMirrorsTheSharedTable)
{
    BlockManager kv(TokenCount{320}, TokenCount{kB});
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    PrefixCache cache(kv, cfg);

    serveRequest(kv, cache, 1, spec(1, {{7, 48}}), SimTime{1.0});
    auto view = cache.auditView();
    EXPECT_TRUE(view.populated);
    EXPECT_EQ(view.nodeCount, 3u);
    ASSERT_EQ(view.treeBlocks.size(), 3u);
    auto table = kv.sharedBlockTable();
    ASSERT_EQ(table.size(), 3u);
    for (std::size_t i = 0; i < table.size(); ++i)
        EXPECT_EQ(view.treeBlocks[i], table[i].id);
}

/**
 * Property test: a randomized interleaving of admissions, prefill
 * completions and releases keeps every refcount and tree invariant
 * intact, checked by the full-level auditor after each step.
 */
TEST(PrefixCache, RandomizedLifecycleKeepsInvariants)
{
    BlockManager kv(TokenCount{1024}, TokenCount{kB}); // 64 blocks
    PrefixCacheConfig cfg;
    cfg.enabled = true;
    cfg.capacityFrac = 0.4;
    PrefixCache cache(kv, cfg);

    InvariantAuditor::Options opts;
    opts.level = audit::CheckLevel::Full;
    opts.failFast = false;
    InvariantAuditor auditor(opts);

    Rng rng(20240805);
    std::vector<std::pair<KvOwnerId, RequestSpec>> active;
    KvOwnerId next_owner = 1;
    SimTime now;

    for (int step = 0; step < 400; ++step) {
        now += 0.25;
        bool release_one =
            !active.empty() &&
            (active.size() >= 12 || rng.uniform() < 0.35);
        if (release_one) {
            std::size_t pick = static_cast<std::size_t>(
                rng.nextU64() % active.size());
            kv.release(active[pick].first);
            active.erase(active.begin() +
                         static_cast<std::ptrdiff_t>(pick));
        } else {
            // Draw a prompt: mostly from a small pool of shared
            // contents (plus a unique second segment), sometimes
            // wholly unique.
            KvOwnerId owner = next_owner++;
            RequestSpec s;
            if (rng.uniform() < 0.8) {
                std::uint64_t pool = rng.nextU64() % 4;
                int head = 32 + 16 * static_cast<int>(pool);
                int tail = 8 + static_cast<int>(rng.nextU64() % 40);
                s = spec(owner, {{100 + pool, head},
                                 {0x8000'0000ull + owner, tail}});
            } else {
                s = uniqueSpec(owner, 16 + static_cast<int>(
                                          rng.nextU64() % 80));
            }
            int cached = cache.attach(owner, s, now);
            ASSERT_LE(cached, s.promptTokens - 1);
            if (kv.grow(owner, TokenCount{s.promptTokens - cached})) {
                cache.insert(owner, s, now);
                active.emplace_back(owner, s);
            } else {
                kv.release(owner); // admission failed: roll back
            }
        }
        auditor.checkBlockManager(kv, now);
        auditor.checkPrefixCache(cache, kv, now);
        ASSERT_TRUE(auditor.clean())
            << "step " << step << "\n"
            << describe(auditor);
    }

    // Drain and make sure the cache alone survives, fully evictable.
    for (auto &[owner, s] : active)
        kv.release(owner);
    auditor.checkBlockManager(kv, now);
    auditor.checkPrefixCache(cache, kv, now);
    EXPECT_TRUE(auditor.clean()) << describe(auditor);
    EXPECT_EQ(kv.evictableBlocks(), kv.cacheHeldBlocks());
    EXPECT_LE(kv.cacheHeldBlocks(),
              static_cast<std::int64_t>(0.4 * kv.totalBlocks()));
}

} // namespace
} // namespace qoserve
