/**
 * @file
 * Unit and property tests for the paged KV-cache block manager.
 */

#include "kvcache/block_manager.hh"

#include <gtest/gtest.h>

#include "simcore/rng.hh"

namespace qoserve {
namespace {

TEST(BlockManager, CapacityRoundsDownToBlocks)
{
    BlockManager bm(TokenCount{100}, TokenCount{16});
    EXPECT_EQ(bm.totalBlocks(), 6);
    EXPECT_EQ(bm.freeBlocks(), 6);
    EXPECT_EQ(bm.blockTokens(), 16);
}

TEST(BlockManager, GrowAllocatesCeilOfTokens)
{
    BlockManager bm(TokenCount{1600}, TokenCount{16});
    EXPECT_TRUE(bm.grow(1, TokenCount{17})); // 2 blocks
    EXPECT_EQ(bm.ownedBlocks(1), 2);
    EXPECT_EQ(bm.ownedTokens(1), 17);
    EXPECT_EQ(bm.usedBlocks(), 2);
}

TEST(BlockManager, GrowReusesPartialBlockSlack)
{
    BlockManager bm(TokenCount{1600}, TokenCount{16});
    ASSERT_TRUE(bm.grow(1, TokenCount{10})); // 1 block, 6 tokens slack
    EXPECT_EQ(bm.blocksNeeded(1, TokenCount{6}), 0);
    ASSERT_TRUE(bm.grow(1, TokenCount{6}));
    EXPECT_EQ(bm.ownedBlocks(1), 1);
    ASSERT_TRUE(bm.grow(1, TokenCount{1}));
    EXPECT_EQ(bm.ownedBlocks(1), 2);
}

TEST(BlockManager, GrowFailsAtomicallyWhenFull)
{
    BlockManager bm(TokenCount{64}, TokenCount{16}); // 4 blocks
    ASSERT_TRUE(bm.grow(1, TokenCount{48}));
    EXPECT_FALSE(bm.grow(2, TokenCount{32})); // needs 2, only 1 free
    EXPECT_EQ(bm.ownedTokens(2), 0);
    EXPECT_EQ(bm.ownedBlocks(2), 0);
    EXPECT_EQ(bm.freeBlocks(), 1);
    EXPECT_TRUE(bm.grow(2, TokenCount{16}));
}

TEST(BlockManager, CanGrowAgreesWithGrow)
{
    BlockManager bm(TokenCount{96}, TokenCount{16}); // 6 blocks
    ASSERT_TRUE(bm.grow(1, TokenCount{50})); // 4 blocks, 2 free
    EXPECT_FALSE(bm.canGrow(2, TokenCount{33})); // needs 3 blocks
    EXPECT_TRUE(bm.canGrow(2, TokenCount{32}));  // needs 2 blocks
    EXPECT_TRUE(bm.canGrow(1, TokenCount{14}));  // fits in owner 1's slack
    EXPECT_FALSE(bm.canGrow(1, TokenCount{47})); // needs 3 more blocks
}

TEST(BlockManager, ReleaseReturnsAllBlocks)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    ASSERT_TRUE(bm.grow(1, TokenCount{90}));
    ASSERT_TRUE(bm.grow(2, TokenCount{30}));
    bm.release(1);
    EXPECT_EQ(bm.ownedTokens(1), 0);
    EXPECT_EQ(bm.usedBlocks(), 2);
    EXPECT_EQ(bm.numOwners(), 1u);
}

TEST(BlockManager, ReleaseUnknownOwnerPanics)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    EXPECT_DEATH(bm.release(42), "unknown KV owner");
}

TEST(BlockManager, DoubleFreePanics)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    ASSERT_TRUE(bm.grow(1, TokenCount{32}));
    bm.release(1);
    EXPECT_DEATH(bm.release(1), "unknown KV owner");
}

TEST(BlockManager, ConstructorRejectsBadArguments)
{
    EXPECT_EXIT({ BlockManager bm(TokenCount{0}, TokenCount{16}); },
                ::testing::ExitedWithCode(1), "capacity must be positive");
    EXPECT_EXIT({ BlockManager bm(TokenCount{-64}, TokenCount{16}); },
                ::testing::ExitedWithCode(1), "capacity must be positive");
    EXPECT_EXIT({ BlockManager bm(TokenCount{160}, TokenCount{0}); },
                ::testing::ExitedWithCode(1),
                "block size must be positive");
    EXPECT_EXIT({ BlockManager bm(TokenCount{160}, TokenCount{-16}); },
                ::testing::ExitedWithCode(1),
                "block size must be positive");
    EXPECT_EXIT({ BlockManager bm(TokenCount{8}, TokenCount{16}); },
                ::testing::ExitedWithCode(1), "below one");
}

TEST(BlockManager, OwnsTracksAllocationRecords)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    EXPECT_FALSE(bm.owns(1));
    ASSERT_TRUE(bm.grow(1, TokenCount{10}));
    EXPECT_TRUE(bm.owns(1));
    bm.release(1);
    EXPECT_FALSE(bm.owns(1));
}

TEST(BlockManager, OwnerUsageSnapshotIsSortedAndExact)
{
    BlockManager bm(TokenCount{1600}, TokenCount{16});
    ASSERT_TRUE(bm.grow(7, TokenCount{33}));
    ASSERT_TRUE(bm.grow(3, TokenCount{16}));
    ASSERT_TRUE(bm.grow(11, TokenCount{1}));
    auto usage = bm.ownerUsage();
    ASSERT_EQ(usage.size(), 3u);
    EXPECT_EQ(usage[0].owner, 3u);
    EXPECT_EQ(usage[0].tokens, 16);
    EXPECT_EQ(usage[0].blocks, 1);
    EXPECT_EQ(usage[1].owner, 7u);
    EXPECT_EQ(usage[1].blocks, 3);
    EXPECT_EQ(usage[2].owner, 11u);
    std::int64_t sum = 0;
    for (const auto &u : usage)
        sum += u.blocks;
    EXPECT_EQ(sum, bm.usedBlocks());
}

TEST(BlockManager, ZeroGrowthIsFreeAndSucceeds)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    EXPECT_TRUE(bm.grow(1, TokenCount{0}));
    EXPECT_EQ(bm.usedBlocks(), 0);
}

TEST(BlockManager, UtilizationTracksUsage)
{
    BlockManager bm(TokenCount{160}, TokenCount{16}); // 10 blocks
    EXPECT_DOUBLE_EQ(bm.utilization(), 0.0);
    ASSERT_TRUE(bm.grow(1, TokenCount{80}));
    EXPECT_DOUBLE_EQ(bm.utilization(), 0.5);
    bm.release(1);
    EXPECT_DOUBLE_EQ(bm.utilization(), 0.0);
}

/** Property: random grow/release sequences keep accounting exact. */
TEST(BlockManagerProperty, RandomOperationsConserveBlocks)
{
    Rng rng(99);
    BlockManager bm(TokenCount{16384}, TokenCount{16});
    constexpr int num_owners = 40;

    for (int step = 0; step < 5000; ++step) {
        KvOwnerId owner = static_cast<KvOwnerId>(
            rng.uniformInt(0, num_owners - 1));
        if (rng.bernoulli(0.7)) {
            auto tokens = rng.uniformInt(0, 200);
            std::int64_t before_free = bm.freeBlocks();
            std::int64_t need = bm.blocksNeeded(owner, TokenCount{tokens});
            bool ok = bm.grow(owner, TokenCount{tokens});
            EXPECT_EQ(ok, need <= before_free);
            if (ok) {
                EXPECT_EQ(bm.freeBlocks(), before_free - need);
            }
        } else if (bm.owns(owner)) {
            bm.release(owner);
            EXPECT_EQ(bm.ownedTokens(owner), 0);
        }

        // Invariant: used + free == total, and per-owner blocks
        // cover per-owner tokens exactly.
        EXPECT_EQ(bm.usedBlocks() + bm.freeBlocks(), bm.totalBlocks());
        for (KvOwnerId o = 0; o < num_owners; ++o) {
            std::int64_t t = bm.ownedTokens(o);
            std::int64_t b = bm.ownedBlocks(o);
            EXPECT_LE(t, b * bm.blockTokens());
            EXPECT_GT(t, (b - 1) * bm.blockTokens() - 1);
        }
    }
}

} // namespace
} // namespace qoserve
