/**
 * @file
 * Unit tests for the BlockManager shared-block layer: refcounting,
 * cache holds, eviction accounting, copy-on-write support and the
 * watermark — the substrate the prefix cache (src/prefixcache) is
 * built on.
 */

#include "kvcache/block_manager.hh"

#include <gtest/gtest.h>

namespace qoserve {
namespace {

TEST(SharedBlocks, ConvertMovesFullBlocksToShared)
{
    BlockManager bm(TokenCount{160}, TokenCount{16}); // 10 blocks
    bm.setCacheWatermark(5);
    ASSERT_TRUE(bm.grow(1, TokenCount{64})); // 4 full blocks
    auto ids = bm.convertToCached(1, 3);
    ASSERT_EQ(ids.size(), 3u);
    // Ids are monotonic: parents sort before children.
    EXPECT_LT(ids[0], ids[1]);
    EXPECT_LT(ids[1], ids[2]);

    // No physical movement: the owner still covers 64 tokens, now
    // split 16 private / 48 shared.
    EXPECT_EQ(bm.usedBlocks(), 4);
    EXPECT_EQ(bm.ownedTokens(1), 16);
    EXPECT_EQ(bm.ownedBlocks(1), 1);
    EXPECT_EQ(bm.sharedTokens(1), 48);
    EXPECT_EQ(bm.ownerSharedBlocks(1), 3);
    EXPECT_EQ(bm.sharedBlockCount(), 3);
    EXPECT_EQ(bm.cacheHeldBlocks(), 3);
    // Owner + cache hold each block: nothing is evictable yet.
    EXPECT_EQ(bm.evictableBlocks(), 0);
    for (KvBlockId id : ids)
        EXPECT_EQ(bm.sharedRefs(id), 2);
}

TEST(SharedBlocks, ReleaseLeavesCacheHeldBlocksEvictable)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    bm.setCacheWatermark(5);
    ASSERT_TRUE(bm.grow(1, TokenCount{48}));
    auto ids = bm.convertToCached(1, 3);
    bm.release(1);

    // The blocks survive the owner: the cache still holds them, and
    // with refs down to one they are all evictable.
    EXPECT_EQ(bm.numOwners(), 0u);
    EXPECT_EQ(bm.usedBlocks(), 3);
    EXPECT_EQ(bm.evictableBlocks(), 3);
    EXPECT_EQ(bm.availableBlocks(), bm.freeBlocks() + 3);
    for (KvBlockId id : ids)
        EXPECT_EQ(bm.sharedRefs(id), 1);
}

TEST(SharedBlocks, AttachAddsAndReleaseDropsReferences)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    bm.setCacheWatermark(5);
    ASSERT_TRUE(bm.grow(1, TokenCount{32}));
    auto ids = bm.convertToCached(1, 2);
    bm.release(1);
    ASSERT_EQ(bm.evictableBlocks(), 2);

    // A cache hit pins the blocks again.
    bm.attachShared(2, ids);
    EXPECT_EQ(bm.sharedTokens(2), 32);
    EXPECT_EQ(bm.ownerSharedBlocks(2), 2);
    EXPECT_EQ(bm.evictableBlocks(), 0);
    for (KvBlockId id : ids)
        EXPECT_EQ(bm.sharedRefs(id), 2);

    bm.release(2);
    EXPECT_EQ(bm.evictableBlocks(), 2);
    EXPECT_EQ(bm.usedBlocks(), 2);
}

TEST(SharedBlocks, DropCacheRefFreesUnreferencedBlock)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    bm.setCacheWatermark(5);
    ASSERT_TRUE(bm.grow(1, TokenCount{32}));
    auto ids = bm.convertToCached(1, 2);

    // While the owner holds the block, dropping the cache ref keeps
    // the physical block alive.
    EXPECT_FALSE(bm.dropCacheRef(ids[0]));
    EXPECT_EQ(bm.cacheHeldBlocks(), 1);
    EXPECT_EQ(bm.usedBlocks(), 2);
    EXPECT_EQ(bm.sharedRefs(ids[0]), 1);

    // Once the owner is gone the cache held the last reference and
    // the drop frees the block.
    bm.release(1);
    EXPECT_EQ(bm.usedBlocks(), 1);
    EXPECT_TRUE(bm.dropCacheRef(ids[1]));
    EXPECT_EQ(bm.usedBlocks(), 0);
    EXPECT_EQ(bm.sharedBlockCount(), 0);
    EXPECT_EQ(bm.sharedRefs(ids[1]), 0);
}

TEST(SharedBlocks, DedupReplacesPrivateCopiesAndFreesBlocks)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    bm.setCacheWatermark(5);
    ASSERT_TRUE(bm.grow(1, TokenCount{32}));
    auto ids = bm.convertToCached(1, 2);

    // A second request recomputed the same two blocks privately (it
    // missed the cache at admission), plus a private tail.
    ASSERT_TRUE(bm.grow(2, TokenCount{40}));
    ASSERT_EQ(bm.usedBlocks(), 5);
    bm.dedupToShared(2, ids);

    // The duplicates are freed; the owner now references the shared
    // copies and keeps its 8-token tail.
    EXPECT_EQ(bm.usedBlocks(), 3);
    EXPECT_EQ(bm.ownedTokens(2), 8);
    EXPECT_EQ(bm.ownedBlocks(2), 1);
    EXPECT_EQ(bm.sharedTokens(2), 32);
    for (KvBlockId id : ids)
        EXPECT_EQ(bm.sharedRefs(id), 3);
}

TEST(SharedBlocks, GrowEvictsThroughHandlerWhenFreeBlocksShort)
{
    BlockManager bm(TokenCount{64}, TokenCount{16}); // 4 blocks
    bm.setCacheWatermark(4);
    ASSERT_TRUE(bm.grow(1, TokenCount{48}));
    std::vector<KvBlockId> ids = bm.convertToCached(1, 3);
    bm.release(1);
    ASSERT_EQ(bm.freeBlocks(), 1);
    ASSERT_EQ(bm.evictableBlocks(), 3);

    // The handler reclaims evictable blocks on demand, newest id
    // first here (the handler decides the policy).
    std::int64_t handler_calls = 0;
    bm.setEvictionHandler([&](std::int64_t wanted) {
        ++handler_calls;
        std::int64_t freed = 0;
        while (freed < wanted && !ids.empty()) {
            if (bm.dropCacheRef(ids.back()))
                ++freed;
            ids.pop_back();
        }
        return freed;
    });

    // 40 tokens need 3 blocks; only 1 is free, so 2 must be evicted.
    EXPECT_TRUE(bm.canGrow(2, TokenCount{40}));
    EXPECT_TRUE(bm.grow(2, TokenCount{40}));
    EXPECT_EQ(handler_calls, 1);
    EXPECT_EQ(bm.ownedTokens(2), 40);
    EXPECT_EQ(bm.cacheHeldBlocks(), 1);
}

TEST(SharedBlocks, DoomedGrowDoesNotDrainTheCache)
{
    BlockManager bm(TokenCount{64}, TokenCount{16}); // 4 blocks
    bm.setCacheWatermark(4);
    ASSERT_TRUE(bm.grow(1, TokenCount{32}));
    bm.convertToCached(1, 2);
    bm.release(1);
    ASSERT_EQ(bm.availableBlocks(), 4);

    std::int64_t handler_calls = 0;
    bm.setEvictionHandler([&](std::int64_t) -> std::int64_t {
        ++handler_calls;
        return 0;
    });

    // 5 blocks can never be satisfied, even evicting everything: the
    // handler must not be consulted for a request that is doomed.
    EXPECT_FALSE(bm.canGrow(2, TokenCount{80}));
    EXPECT_FALSE(bm.grow(2, TokenCount{80}));
    EXPECT_EQ(handler_calls, 0);
    EXPECT_EQ(bm.evictableBlocks(), 2);
}

TEST(SharedBlocks, GrowWithoutHandlerIgnoresEvictableBlocks)
{
    BlockManager bm(TokenCount{64}, TokenCount{16});
    bm.setCacheWatermark(4);
    ASSERT_TRUE(bm.grow(1, TokenCount{48}));
    bm.convertToCached(1, 3);
    bm.release(1);
    ASSERT_EQ(bm.freeBlocks(), 1);

    // No handler installed: only genuinely free blocks count.
    EXPECT_FALSE(bm.canGrow(2, TokenCount{32}));
    EXPECT_FALSE(bm.grow(2, TokenCount{32}));
    EXPECT_TRUE(bm.grow(2, TokenCount{16}));
}

TEST(SharedBlocks, ConvertPastWatermarkPanics)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    bm.setCacheWatermark(2);
    ASSERT_TRUE(bm.grow(1, TokenCount{64}));
    bm.convertToCached(1, 2);
    ASSERT_TRUE(bm.grow(2, TokenCount{64}));
    EXPECT_DEATH(bm.convertToCached(2, 1), "watermark");
}

TEST(SharedBlocks, ZeroWatermarkIsFatal)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    EXPECT_DEATH(bm.setCacheWatermark(0), "watermark");
}

TEST(SharedBlocks, ReleaseAllDestroysSharedState)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    bm.setCacheWatermark(5);
    ASSERT_TRUE(bm.grow(1, TokenCount{64}));
    bm.convertToCached(1, 4);
    ASSERT_TRUE(bm.grow(2, TokenCount{16}));

    EXPECT_EQ(bm.releaseAll(), 5);
    EXPECT_EQ(bm.usedBlocks(), 0);
    EXPECT_EQ(bm.numOwners(), 0u);
    EXPECT_EQ(bm.sharedBlockCount(), 0);
    EXPECT_EQ(bm.cacheHeldBlocks(), 0);
    EXPECT_EQ(bm.evictableBlocks(), 0);
}

TEST(SharedBlocks, BlockIdsStayMonotonicAcrossReleaseAll)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    bm.setCacheWatermark(5);
    ASSERT_TRUE(bm.grow(1, TokenCount{32}));
    auto before = bm.convertToCached(1, 2);
    bm.releaseAll();
    ASSERT_TRUE(bm.grow(1, TokenCount{32}));
    auto after = bm.convertToCached(1, 2);
    // A recycled id could alias a stale tree entry after a crash;
    // monotonic ids make that structurally impossible.
    EXPECT_GT(after.front(), before.back());
}

TEST(SharedBlocks, OwnerUsageAndTableReportSharedState)
{
    BlockManager bm(TokenCount{160}, TokenCount{16});
    bm.setCacheWatermark(5);
    ASSERT_TRUE(bm.grow(1, TokenCount{40}));
    auto ids = bm.convertToCached(1, 2);
    bm.attachShared(2, ids);

    auto usage = bm.ownerUsage();
    ASSERT_EQ(usage.size(), 2u);
    EXPECT_EQ(usage[0].owner, 1u);
    EXPECT_EQ(usage[0].tokens, 8);
    EXPECT_EQ(usage[0].sharedTokens, 32);
    EXPECT_EQ(usage[0].sharedBlocks, 2);
    EXPECT_EQ(usage[1].owner, 2u);
    EXPECT_EQ(usage[1].tokens, 0);
    EXPECT_EQ(usage[1].sharedTokens, 32);

    auto table = bm.sharedBlockTable();
    ASSERT_EQ(table.size(), 2u);
    EXPECT_LT(table[0].id, table[1].id);
    for (const auto &info : table) {
        EXPECT_EQ(info.refs, 3);
        EXPECT_TRUE(info.cacheHeld);
    }

    EXPECT_EQ(bm.ownerSharedIds(1), ids);
    EXPECT_EQ(bm.ownerSharedIds(2), ids);
}

} // namespace
} // namespace qoserve
