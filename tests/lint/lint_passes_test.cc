/**
 * @file
 * Unit tests for the qoserve_lint passes, driven over the deliberate
 * good/bad fixture pairs in tests/lint/fixtures. Each pass gets a
 * seeded violation that must be caught and a clean counterpart that
 * must stay silent; the self-hosting zero-findings gate over the real
 * tree is the separate `qoserve_lint` ctest registered in
 * tools/CMakeLists.txt.
 *
 * QOSERVE_LINT_FIXTURE_DIR is injected by the build as the absolute
 * path of the fixture directory.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.hh"
#include "lint/passes.hh"
#include "lint/sarif.hh"
#include "lint/tokenizer.hh"

namespace {

using namespace qoserve_lint;

std::string
fixture(const std::string &rel)
{
    return std::string(QOSERVE_LINT_FIXTURE_DIR) + "/" + rel;
}

SourceFile
load(const std::string &rel)
{
    SourceFile f;
    EXPECT_TRUE(loadSourceFile(fixture(rel), f))
        << "unreadable fixture " << rel;
    return f;
}

/** Findings whose rule matches, for focused assertions. */
std::vector<Finding>
withRule(const std::vector<Finding> &all, const std::string &rule)
{
    std::vector<Finding> out;
    for (const Finding &f : all) {
        if (f.rule == rule)
            out.push_back(f);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Tokenizer.

TEST(Tokenizer, FusesScopeAndTracksLines)
{
    std::vector<Token> toks = tokenize("std::mt19937 x;\nint y = 42;");
    ASSERT_GE(toks.size(), 8u);
    EXPECT_TRUE(toks[0].ident("std"));
    EXPECT_TRUE(toks[1].is("::"));
    EXPECT_TRUE(toks[2].ident("mt19937"));
    EXPECT_EQ(toks[0].line, 1u);
    // `int` opens line 2.
    EXPECT_TRUE(toks[5].ident("int"));
    EXPECT_EQ(toks[5].line, 2u);
    EXPECT_EQ(toks[7].kind, TokenKind::Punct); // '='
    EXPECT_EQ(toks[8].kind, TokenKind::Number);
    EXPECT_EQ(toks[8].text, "42");
}

TEST(Tokenizer, MatchBracketSkipsNesting)
{
    std::vector<Token> toks = tokenize("f(a, (b, c), d) g");
    ASSERT_TRUE(toks[1].is("("));
    std::size_t close = matchBracket(toks, 1, "(", ")");
    ASSERT_LT(close, toks.size());
    EXPECT_TRUE(toks[close].is(")"));
    EXPECT_TRUE(toks[close + 1].ident("g"));

    std::vector<Token> open = tokenize("f(a, (b");
    EXPECT_EQ(matchBracket(open, 1, "(", ")"), open.size());
}

// ---------------------------------------------------------------------------
// Source views and suppression markers.

TEST(SourceFile, ViewsAndModule)
{
    SourceFile f = load("tree/src/sched/good_layered.hh");
    EXPECT_TRUE(f.isHeader());
    EXPECT_TRUE(f.inLibrary());
    EXPECT_EQ(f.module(), "sched");
    // The commented-out include is blanked in both derived views.
    EXPECT_NE(f.raw.find("cluster/replica.hh"), std::string::npos);
    EXPECT_EQ(f.noComments.find("cluster/replica.hh"),
              std::string::npos);
    EXPECT_EQ(f.code.find("cluster/replica.hh"), std::string::npos);
    // Blanking preserves line structure byte-for-byte.
    EXPECT_EQ(f.raw.size(), f.noComments.size());
    EXPECT_EQ(f.raw.size(), f.code.size());
}

TEST(SourceFile, MarkerInCommentCollected)
{
    SourceFile f = load("tree/src/core/used_marker.cc");
    ASSERT_EQ(f.markers.size(), 1u);
    const AllowMarker &m = f.markers.begin()->second;
    EXPECT_EQ(m.rules.count("no-std-rand"), 1u);
    EXPECT_TRUE(m.used.empty());
}

TEST(SourceFile, MarkerInStringIgnored)
{
    SourceFile f = load("tree/src/core/string_marker.cc");
    EXPECT_TRUE(f.markers.empty());
}

TEST(SourceFile, AllowedCoversMarkerLineAndNext)
{
    SourceFile f = load("tree/src/core/used_marker.cc");
    std::size_t markerLine = f.markers.begin()->first;
    EXPECT_TRUE(allowed(f, markerLine, "no-std-rand"));
    EXPECT_TRUE(allowed(f, markerLine + 1, "no-std-rand"));
    EXPECT_FALSE(allowed(f, markerLine + 2, "no-std-rand"));
    EXPECT_FALSE(allowed(f, markerLine, "no-wall-clock"));
    EXPECT_EQ(f.markers.begin()->second.used.count("no-std-rand"), 1u);
}

// ---------------------------------------------------------------------------
// Pass 1 + pass 5: token rules and stale-suppression accounting.

TEST(TokenRules, FlagsRngAndHonorsSuppression)
{
    std::vector<SourceFile> files = {
        load("tree/src/core/bad_rand.cc"),
        load("tree/src/core/used_marker.cc"),
        load("tree/src/core/stale_marker.cc"),
    };
    std::vector<Finding> findings;
    tokenRulesPass(files, findings);

    // bad_rand: mt19937, random_device, and the rand() call.
    std::vector<Finding> rng = withRule(findings, "no-std-rand");
    ASSERT_EQ(rng.size(), 3u);
    for (const Finding &f : rng)
        EXPECT_NE(f.file.find("bad_rand.cc"), std::string::npos)
            << f.file << ":" << f.line;
    EXPECT_TRUE(withRule(findings, "no-wall-clock").empty());
    EXPECT_EQ(findings.size(), rng.size())
        << "suppressed/clean fixtures produced extra findings";

    // Stale accounting: used_marker's tag suppressed a finding,
    // stale_marker's did not.
    std::vector<Finding> stale;
    staleSuppressionPass(files, stale);
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0].rule, "stale-suppression");
    EXPECT_NE(stale[0].file.find("stale_marker.cc"), std::string::npos);
    EXPECT_NE(stale[0].message.find("no-std-rand"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pass 2: layering manifest and include-graph checks.

TEST(Layering, ManifestLoadsAndValidates)
{
    LayeringManifest m;
    std::string err;
    ASSERT_TRUE(m.load(fixture("layering.manifest"), err)) << err;
    EXPECT_EQ(m.deps.size(), 3u);
    EXPECT_TRUE(m.deps.at("simcore").empty());
    EXPECT_EQ(m.deps.at("sched").count("core"), 1u);

    LayeringManifest cyc;
    EXPECT_FALSE(cyc.load(fixture("cycle.manifest"), err));
    EXPECT_NE(err.find("cycle"), std::string::npos) << err;

    LayeringManifest und;
    EXPECT_FALSE(und.load(fixture("undeclared.manifest"), err));
    EXPECT_NE(err.find("undeclared"), std::string::npos) << err;

    LayeringManifest missing;
    EXPECT_FALSE(missing.load(fixture("no_such.manifest"), err));
}

TEST(Layering, FlagsUpwardEdgeAndUndeclaredModule)
{
    LayeringManifest m;
    std::string err;
    ASSERT_TRUE(m.load(fixture("layering.manifest"), err)) << err;

    std::vector<SourceFile> files = {
        load("tree/src/simcore/bad_upward.hh"),
        load("tree/src/sched/good_layered.hh"),
        load("tree/src/mystery/rogue.hh"),
    };
    std::vector<Finding> findings;
    layeringPass(files, m, findings);
    ASSERT_EQ(findings.size(), 2u);

    // The upward include, reported at the #include line.
    const Finding &up = findings[0].file.find("bad_upward") !=
                                std::string::npos
                            ? findings[0]
                            : findings[1];
    EXPECT_EQ(up.rule, "layering");
    EXPECT_NE(up.message.find("sched/scheduler.hh"), std::string::npos);
    EXPECT_EQ(up.line, 11u);

    // The module missing from the manifest.
    const Finding &rogue =
        &up == &findings[0] ? findings[1] : findings[0];
    EXPECT_NE(rogue.file.find("rogue.hh"), std::string::npos);
    EXPECT_NE(rogue.message.find("not declared"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pass 3: exhaustive switches over project enums.

TEST(ExhaustiveSwitch, CollectsEnumsFromLibraryHeaders)
{
    std::vector<SourceFile> files = {load("tree/src/core/color.hh")};
    EnumTable enums = collectProjectEnums(files);
    ASSERT_EQ(enums.count("Color"), 1u);
    EXPECT_EQ(enums.at("Color"),
              (std::vector<std::string>{"Red", "Green", "Blue"}));
    ASSERT_EQ(enums.count("Phase"), 1u);
    EXPECT_EQ(enums.at("Phase"),
              (std::vector<std::string>{"Prefill", "Decode"}));
}

TEST(ExhaustiveSwitch, FlagsMissingEnumeratorOnly)
{
    std::vector<SourceFile> corpus = {
        load("tree/src/core/color.hh"),
        load("tree/src/core/bad_switch.cc"),
        load("tree/src/core/good_switch.cc"),
    };
    EnumTable enums = collectProjectEnums(corpus);
    std::vector<Finding> findings;
    exhaustiveSwitchPass(corpus, enums, findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "exhaustive-switch");
    EXPECT_NE(findings[0].file.find("bad_switch.cc"),
              std::string::npos);
    EXPECT_NE(findings[0].message.find("Blue"), std::string::npos);
    EXPECT_EQ(findings[0].message.find("Red"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pass 4: raw unit scalars in library headers.

TEST(RawUnit, FlagsTimeAndTokenScalars)
{
    std::vector<SourceFile> files = {
        load("tree/src/core/bad_units.hh"),
        load("tree/src/core/good_units.hh"),
    };
    std::vector<Finding> findings;
    rawUnitPass(files, findings);
    ASSERT_EQ(findings.size(), 2u);
    for (const Finding &f : findings) {
        EXPECT_EQ(f.rule, "raw-unit");
        EXPECT_NE(f.file.find("bad_units.hh"), std::string::npos);
    }
    EXPECT_NE(findings[0].message.find("SimTime"), std::string::npos);
    EXPECT_NE(findings[1].message.find("TokenCount"),
              std::string::npos);
}

TEST(RawUnit, IgnoresImplementationFiles)
{
    // The same signatures in a .cc must not be flagged: the rule
    // guards public interfaces, and implementations convert to raw
    // scalars at entry to keep arithmetic byte-identical.
    SourceFile f = load("tree/src/core/bad_units.hh");
    f.path = "src/core/bad_units.cc";
    std::vector<SourceFile> files = {f};
    std::vector<Finding> findings;
    rawUnitPass(files, findings);
    EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// SARIF output.

TEST(Sarif, EmitsRulesAndResults)
{
    std::vector<Finding> findings = {
        {"src/core/a.hh", 12, "raw-unit", "message \"quoted\""},
        {"src/core/b.cc", 3, "no-std-rand", "plain"},
    };
    std::ostringstream out;
    writeSarif(findings, out);
    const std::string s = out.str();
    EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(s.find("\"name\": \"qoserve_lint\""), std::string::npos);
    EXPECT_NE(s.find("\"ruleId\": \"raw-unit\""), std::string::npos);
    EXPECT_NE(s.find("\"ruleId\": \"no-std-rand\""),
              std::string::npos);
    EXPECT_NE(s.find("\"uri\": \"src/core/a.hh\""), std::string::npos);
    EXPECT_NE(s.find("\"startLine\": 12"), std::string::npos);
    // JSON string escaping.
    EXPECT_NE(s.find("message \\\"quoted\\\""), std::string::npos);

    std::ostringstream empty;
    writeSarif({}, empty);
    EXPECT_NE(empty.str().find("\"results\": []"), std::string::npos);
}

} // namespace
