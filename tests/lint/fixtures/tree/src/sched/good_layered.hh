/**
 * @file
 * Fixture: downward includes only. sched may depend on core and
 * simcore in the fixture DAG, and an in-module include never counts
 * as an edge, so the layering pass must stay silent here.
 */

#ifndef QOSERVE_FIXTURE_SCHED_GOOD_LAYERED_HH
#define QOSERVE_FIXTURE_SCHED_GOOD_LAYERED_HH

#include "core/units.hh"
#include "simcore/event_queue.hh"

#include "request.hh"

// A commented-out include must not create an edge:
// #include "cluster/replica.hh"

#endif // QOSERVE_FIXTURE_SCHED_GOOD_LAYERED_HH
