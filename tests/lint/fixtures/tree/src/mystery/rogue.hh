/**
 * @file
 * Fixture: a module the manifest does not declare. The layering pass
 * must demand that `mystery` take a position in the DAG.
 */

#ifndef QOSERVE_FIXTURE_MYSTERY_ROGUE_HH
#define QOSERVE_FIXTURE_MYSTERY_ROGUE_HH

#endif // QOSERVE_FIXTURE_MYSTERY_ROGUE_HH
