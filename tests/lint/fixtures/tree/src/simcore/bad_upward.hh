/**
 * @file
 * Fixture: an upward include. simcore sits at the bottom of the
 * fixture DAG, so including sched/ must be flagged by the layering
 * pass.
 */

#ifndef QOSERVE_FIXTURE_SIMCORE_BAD_UPWARD_HH
#define QOSERVE_FIXTURE_SIMCORE_BAD_UPWARD_HH

#include "sched/scheduler.hh"

#endif // QOSERVE_FIXTURE_SIMCORE_BAD_UPWARD_HH
