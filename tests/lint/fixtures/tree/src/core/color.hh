/**
 * @file
 * Fixture: a project enum for the exhaustive-switch pass. Lives in a
 * library header because the enum table is collected from src/
 * headers only.
 */

#ifndef QOSERVE_FIXTURE_CORE_COLOR_HH
#define QOSERVE_FIXTURE_CORE_COLOR_HH

namespace fixture {

enum class Color : int
{
    Red,
    Green = 7,
    Blue,
};

/** A plain (unscoped) enum is collected too. */
enum Phase
{
    Prefill,
    Decode,
};

} // namespace fixture

#endif // QOSERVE_FIXTURE_CORE_COLOR_HH
