/**
 * @file
 * Fixture: the suppression tag inside a string literal. A marker must
 * sit in a comment to count — a tool that merely *prints* the tag
 * (as this file does) declares no suppression, so no marker may be
 * collected and nothing here is stale.
 */

namespace fixture {

const char *
markerHelp()
{
    return "suppress with qoserve-lint: allow(no-std-rand)";
}

} // namespace fixture
