/**
 * @file
 * Fixture: exhaustive and opted-out switches the pass must accept —
 * one naming every enumerator, one with a `default:`, and a nested
 * switch whose inner labels must not leak into the outer count.
 */

#include "core/color.hh"

namespace fixture {

int
pickAll(Color c)
{
    switch (c) {
      case Color::Red:
        return 1;
      case Color::Green:
        return 2;
      case Color::Blue:
        return 3;
    }
    return 0;
}

int
pickDefault(Color c)
{
    switch (c) {
      case Color::Red:
        return 1;
      default:
        return 0;
    }
}

int
pickNested(Color c, Phase p)
{
    switch (c) {
      case Color::Red:
        switch (p) {
          case Phase::Prefill:
            return 10;
          case Phase::Decode:
            return 11;
        }
        return 1;
      case Color::Green:
        return 2;
      case Color::Blue:
        return 3;
    }
    return 0;
}

} // namespace fixture
