/**
 * @file
 * Fixture: non-deterministic RNG in library code. Both the mt19937
 * engine and the random_device seed must be flagged (no-std-rand),
 * and the rand() call as well.
 */

#include <random>

namespace fixture {

int
roll()
{
    std::mt19937 gen(std::random_device{}());
    return static_cast<int>(gen()) + rand();
}

} // namespace fixture
