/**
 * @file
 * Fixture: a suppression marker with nothing to suppress. The code
 * under the marker is clean, so the stale-suppression pass must flag
 * the marker itself.
 */

namespace fixture {

// qoserve-lint: allow(no-std-rand)
int
six()
{
    return 6; // Chosen by fair dice roll offline.
}

} // namespace fixture
