/**
 * @file
 * Fixture: a suppression marker that earns its keep. The marker
 * covers the mt19937 on the next line, so pass 1 stays silent and
 * the stale-suppression pass must too.
 */

#include <random>

namespace fixture {

int
roll()
{
    // qoserve-lint: allow(no-std-rand)
    std::mt19937 gen(42);
    return static_cast<int>(gen());
}

} // namespace fixture
