/**
 * @file
 * Fixture: a defaultless switch over a project enum that misses an
 * enumerator (Color::Blue). The exhaustive-switch pass must flag it.
 */

#include "core/color.hh"

namespace fixture {

int
pick(Color c)
{
    switch (c) {
      case Color::Red:
        return 1;
      case Color::Green:
        return 2;
    }
    return 0;
}

} // namespace fixture
