/**
 * @file
 * Fixture: raw unit scalars in a library header. Both parameters of
 * scheduleAt must be flagged by the raw-unit pass — `double deadline`
 * is a point in simulated time and `int total_tokens` is a token
 * count.
 */

#ifndef QOSERVE_FIXTURE_CORE_BAD_UNITS_HH
#define QOSERVE_FIXTURE_CORE_BAD_UNITS_HH

namespace fixture {

void scheduleAt(double deadline, int total_tokens);

} // namespace fixture

#endif // QOSERVE_FIXTURE_CORE_BAD_UNITS_HH
