/**
 * @file
 * Fixture: unit-clean signatures the raw-unit pass must accept —
 * strong types for time points and token counts, a raw SimDuration
 * span (spans stay double by design), and a fractional token
 * *estimate* (`double tokens`), which the rule deliberately exempts.
 */

#ifndef QOSERVE_FIXTURE_CORE_GOOD_UNITS_HH
#define QOSERVE_FIXTURE_CORE_GOOD_UNITS_HH

namespace fixture {

class SimTime;
class TokenCount;
using SimDuration = double;

void scheduleAt(SimTime deadline, TokenCount tokens);
void backoff(SimDuration delay);
double estPrefillTime(double tokens);

} // namespace fixture

#endif // QOSERVE_FIXTURE_CORE_GOOD_UNITS_HH
