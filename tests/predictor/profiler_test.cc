/**
 * @file
 * Tests for the profiling harness.
 */

#include "predictor/profiler.hh"

#include <gtest/gtest.h>

#include <cmath>

namespace qoserve {
namespace {

TEST(BatchFeatures, ToWorkComputesCtxProduct)
{
    BatchFeatures f;
    f.chunkTokens = 512;
    f.prefillContext = 1024;
    f.numDecodes = 8;
    f.decodeCtxSum = 8 * 2000;

    BatchWork w = f.toWork();
    EXPECT_EQ(w.prefillTokens, 512);
    EXPECT_DOUBLE_EQ(w.prefillCtxProduct, 512.0 * (1024.0 + 256.0));
    EXPECT_EQ(w.numDecodes, 8);
    EXPECT_EQ(w.decodeCtxSum, 16000);
}

TEST(BatchFeatures, VectorLayoutStable)
{
    BatchFeatures f;
    f.chunkTokens = 1;
    f.prefillContext = 2;
    f.numDecodes = 3;
    f.decodeCtxSum = 4;
    EXPECT_EQ(f.toVector(), (std::vector<double>{1, 2, 3, 4}));
}

class ProfilerTest : public ::testing::Test
{
  protected:
    PerfModel model_{llama3_8b_a100_tp1()};
};

TEST_F(ProfilerTest, GridProducesSamples)
{
    auto samples = collectProfile(model_, ProfileGrid{}, 1);
    EXPECT_GT(samples.size(), 1000u);
    for (const auto &s : samples) {
        EXPECT_EQ(s.x.size(), 4u);
        EXPECT_GT(s.y, 0.0);
    }
}

TEST_F(ProfilerTest, SkipsEmptyBatches)
{
    auto samples = collectProfile(model_, ProfileGrid{}, 1);
    for (const auto &s : samples)
        EXPECT_GT(s.x[0] + s.x[2], 0.0);
}

TEST_F(ProfilerTest, NoiseIsBounded)
{
    ProfileGrid grid;
    grid.noiseStddev = 0.03;
    auto samples = collectProfile(model_, grid, 2);
    for (const auto &s : samples) {
        BatchFeatures f;
        f.chunkTokens = s.x[0];
        f.prefillContext = s.x[1];
        f.numDecodes = s.x[2];
        f.decodeCtxSum = s.x[3];
        double truth = model_.iterationTime(f.toWork());
        EXPECT_LT(std::abs(s.y - truth) / truth, 0.25);
    }
}

TEST_F(ProfilerTest, ZeroNoiseMatchesModelExactly)
{
    ProfileGrid grid;
    grid.noiseStddev = 0.0;
    auto samples = collectProfile(model_, grid, 3);
    for (const auto &s : samples) {
        BatchFeatures f;
        f.chunkTokens = s.x[0];
        f.prefillContext = s.x[1];
        f.numDecodes = s.x[2];
        f.decodeCtxSum = s.x[3];
        EXPECT_DOUBLE_EQ(s.y, model_.iterationTime(f.toWork()));
    }
}

TEST_F(ProfilerTest, DeterministicForSeed)
{
    auto a = collectProfile(model_, ProfileGrid{}, 7);
    auto b = collectProfile(model_, ProfileGrid{}, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
}

} // namespace
} // namespace qoserve
