/**
 * @file
 * Property tests for the flattened-forest hot path.
 *
 * The solver-facing fast paths (flat preorder walk, branchless
 * quantile network, box-tracked prediction, forest restriction and
 * restriction composition) all promise *bitwise* equality with the
 * original recursive walk — not approximate agreement. Every test
 * here asserts exact double equality against an independent
 * reference, over randomised forests, ensemble sizes and queries.
 */

#include "predictor/random_forest.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace qoserve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Nonlinear 4-feature target: forces deep, varied splits so the
 *  flat walk exercises real branch diversity, not one hot path. */
std::vector<TrainSample>
makeData(int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<TrainSample> data;
    data.reserve(n);
    for (int i = 0; i < n; ++i) {
        double x0 = rng.uniform(0.0, 10.0);
        double x1 = rng.uniform(0.0, 10.0);
        double x2 = rng.uniform(0.0, 10.0);
        double x3 = rng.uniform(0.0, 10.0);
        TrainSample s;
        s.x = {x0, x1, x2, x3};
        s.y = x0 * x1 + 3.0 * (x2 > 5.0) + 0.2 * x3 * x3 +
              0.3 * rng.normal();
        data.push_back(std::move(s));
    }
    return data;
}

std::vector<double>
randomQuery(Rng &rng)
{
    return {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
            rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)};
}

/**
 * Independent quantile reference: per-tree recursive predictions,
 * fully sorted, then the documented interpolation
 *   pos = q (n-1); v_lo (1-frac) + v_hi frac.
 * Shares no code with quantileOfPreds — in particular not the sorting
 * network or the nth_element selection it validates.
 */
double
refQuantile(const RandomForest &forest, const std::vector<double> &x,
            double q)
{
    std::vector<double> preds;
    preds.reserve(forest.numTrees());
    for (std::size_t t = 0; t < forest.numTrees(); ++t)
        preds.push_back(forest.tree(t).predict(x));
    std::sort(preds.begin(), preds.end());
    double pos = q * static_cast<double>(preds.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    auto hi = std::min(lo + 1, preds.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return preds[lo] * (1.0 - frac) + preds[hi] * frac;
}

TEST(HotPath, FlatMeanMatchesRecursiveReferenceBitwise)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        auto data = makeData(1500, seed);
        RandomForest forest;
        forest.fit(data, ForestParams{}, 100 + seed);
        Rng probe(500 + seed);
        for (int i = 0; i < 400; ++i) {
            auto x = randomQuery(probe);
            // EXPECT_EQ, not NEAR: the flat walk must visit the exact
            // leaves the recursive walk does and sum in tree order.
            EXPECT_EQ(forest.predict(x), forest.predictReference(x));
        }
    }
}

TEST(HotPath, QuantileMatchesSortedReferenceAcrossEnsembleSizes)
{
    // Sizes straddle every quantile-kernel regime: n == 1 (no sort),
    // 2..64 (Batcher network), > 64 (nth_element + min_element).
    const int sizes[] = {1, 2, 3, 5, 8, 16, 20, 31, 33, 48, 64, 65, 80};
    auto data = makeData(1200, 7);
    for (int n : sizes) {
        ForestParams params;
        params.numTrees = n;
        RandomForest forest;
        forest.fit(data, params, 11);
        Rng probe(1000 + static_cast<std::uint64_t>(n));
        for (double q : {0.0, 0.1, 0.25, 0.5, 0.6, 0.9, 1.0}) {
            auto x = randomQuery(probe);
            EXPECT_EQ(forest.predictQuantile(x, q), refQuantile(forest, x, q))
                << "n=" << n << " q=" << q;
        }
    }
}

TEST(HotPath, QuantileManyMatchesScalarCalls)
{
    auto data = makeData(1500, 13);
    RandomForest forest;
    forest.fit(data, ForestParams{}, 17);

    constexpr std::size_t kCount = 64;
    constexpr int kDims = 4;
    std::vector<double> xs(kCount * kDims);
    Rng probe(19);
    for (double &v : xs)
        v = probe.uniform(0.0, 10.0);

    std::vector<double> batched(kCount);
    forest.predictQuantileMany(xs.data(), kDims, kCount, 0.6,
                               batched.data());
    for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(batched[i],
                  forest.predictQuantile(xs.data() + i * kDims, kDims,
                                         0.6));
    }
}

TEST(HotPath, TrackedSupportCertifiesBitwiseReplay)
{
    auto data = makeData(1500, 23);
    RandomForest forest;
    forest.fit(data, ForestParams{}, 29);

    Rng probe(31);
    int replays = 0;
    for (int i = 0; i < 200; ++i) {
        auto x = randomQuery(probe);
        FeatureSupport support;
        double base =
            forest.predictQuantileTracked(x.data(), 4, 0.6, support);
        ASSERT_EQ(support.dims, 4);
        EXPECT_TRUE(support.contains(x.data(), 4));

        // Any point strictly inside the box must reproduce the
        // prediction bit for bit — that is the contract the solver
        // cache's correctness rests on.
        for (int j = 0; j < 8; ++j) {
            std::vector<double> y(4);
            for (int f = 0; f < 4; ++f) {
                double lo = std::max(support.lo[f], -50.0);
                double hi = std::min(support.hi[f], 50.0);
                y[f] = lo + (hi - lo) * probe.uniform(0.25, 0.99);
            }
            if (!support.contains(y.data(), 4))
                continue;
            ++replays;
            EXPECT_EQ(forest.predictQuantile(y.data(), 4, 0.6), base);
        }
    }
    // The boxes are narrow but not degenerate: the sampler must have
    // actually exercised the replay property.
    EXPECT_GT(replays, 100);
}

TEST(HotPath, RestrictedForestExactInsideBox)
{
    auto data = makeData(1500, 37);
    RandomForest forest;
    forest.fit(data, ForestParams{}, 41);

    Rng probe(43);
    for (int trial = 0; trial < 40; ++trial) {
        // Random box: axes 2 and 3 pinned to a narrow window, axes
        // 0 and 1 left free (the solver's chunk/context plane shape).
        double lo[4] = {-kInf, -kInf, 0.0, 0.0};
        double hi[4] = {kInf, kInf, 0.0, 0.0};
        for (int f = 2; f < 4; ++f) {
            double c = probe.uniform(1.0, 9.0);
            lo[f] = c - probe.uniform(0.1, 1.5);
            hi[f] = c + probe.uniform(0.1, 1.5);
        }

        RestrictedForest restricted;
        FeatureSupport support;
        forest.restrictToBox(lo, hi, 4, restricted, support);
        ASSERT_TRUE(restricted.valid());
        EXPECT_LE(restricted.numNodes(), forest.numFlatNodes());

        for (int i = 0; i < 25; ++i) {
            double x[4];
            x[0] = probe.uniform(0.0, 10.0);
            x[1] = probe.uniform(0.0, 10.0);
            for (int f = 2; f < 4; ++f)
                x[f] = lo[f] + (hi[f] - lo[f]) * probe.uniform(0.05, 1.0);
            ASSERT_TRUE(support.contains(x, 4));
            EXPECT_EQ(restricted.predictQuantile(x, 4, 0.6),
                      forest.predictQuantile(x, 4, 0.6));
        }
    }
}

TEST(HotPath, RestrictionComposesExactly)
{
    auto data = makeData(1500, 47);
    RandomForest forest;
    forest.fit(data, ForestParams{}, 53);

    Rng probe(59);
    for (int trial = 0; trial < 25; ++trial) {
        double outer_lo[4] = {-kInf, -kInf, 0.0, 0.0};
        double outer_hi[4] = {kInf, kInf, 0.0, 0.0};
        for (int f = 2; f < 4; ++f) {
            double c = probe.uniform(2.0, 8.0);
            outer_lo[f] = c - 2.0;
            outer_hi[f] = c + 2.0;
        }
        // Strict sub-box of the outer box on the pinned axes.
        double sub_lo[4], sub_hi[4];
        for (int f = 0; f < 4; ++f) {
            sub_lo[f] = outer_lo[f];
            sub_hi[f] = outer_hi[f];
        }
        for (int f = 2; f < 4; ++f) {
            sub_lo[f] = outer_lo[f] + probe.uniform(0.2, 1.0);
            sub_hi[f] = outer_hi[f] - probe.uniform(0.2, 1.0);
        }

        RestrictedForest outer, composed, direct;
        FeatureSupport outer_box, composed_box, direct_box;
        forest.restrictToBox(outer_lo, outer_hi, 4, outer, outer_box);
        ASSERT_TRUE(outer.valid());
        outer.restrictToBox(sub_lo, sub_hi, 4, composed, composed_box);
        forest.restrictToBox(sub_lo, sub_hi, 4, direct, direct_box);
        ASSERT_TRUE(composed.valid());
        ASSERT_TRUE(direct.valid());

        // Composition is exact: same node count and bitwise-equal
        // predictions as restricting the source forest directly.
        EXPECT_EQ(composed.numNodes(), direct.numNodes());
        for (int i = 0; i < 20; ++i) {
            double x[4];
            x[0] = probe.uniform(0.0, 10.0);
            x[1] = probe.uniform(0.0, 10.0);
            for (int f = 2; f < 4; ++f)
                x[f] = sub_lo[f] +
                       (sub_hi[f] - sub_lo[f]) * probe.uniform(0.05, 1.0);
            double want = forest.predictQuantile(x, 4, 0.6);
            EXPECT_EQ(composed.predictQuantile(x, 4, 0.6), want);
            EXPECT_EQ(direct.predictQuantile(x, 4, 0.6), want);
        }
    }
}

} // namespace
} // namespace qoserve
