/**
 * @file
 * Tests for latency predictors and the chunk-budget solver,
 * including the paper's accuracy and conservatism claims (§3.6.1).
 */

#include "predictor/latency_predictor.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace qoserve {
namespace {

class PredictorTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        model_ = new PerfModel(llama3_8b_a100_tp1());
        forest_ = new ForestLatencyPredictor(*model_);
    }

    static void
    TearDownTestSuite()
    {
        delete forest_;
        delete model_;
        forest_ = nullptr;
        model_ = nullptr;
    }

    static BatchFeatures
    features(double chunk, double pctx, double nd, double dctx)
    {
        BatchFeatures f;
        f.chunkTokens = chunk;
        f.prefillContext = pctx;
        f.numDecodes = nd;
        f.decodeCtxSum = dctx;
        return f;
    }

    static PerfModel *model_;
    static ForestLatencyPredictor *forest_;
};

PerfModel *PredictorTest::model_ = nullptr;
ForestLatencyPredictor *PredictorTest::forest_ = nullptr;

TEST_F(PredictorTest, OracleReturnsModelTruth)
{
    OracleLatencyPredictor oracle(*model_);
    BatchFeatures f = features(512, 1000, 16, 16 * 2000);
    EXPECT_DOUBLE_EQ(oracle.predict(f),
                     model_->iterationTime(f.toWork()));
}

TEST_F(PredictorTest, OracleMarginScales)
{
    OracleLatencyPredictor conservative(*model_, 1.2);
    OracleLatencyPredictor exact(*model_);
    BatchFeatures f = features(512, 1000, 16, 16 * 2000);
    EXPECT_NEAR(conservative.predict(f), 1.2 * exact.predict(f), 1e-12);
}

TEST_F(PredictorTest, ForestErrorWithin10Percent)
{
    // §3.6.1: "< 10% error margin". Measured as median relative
    // error over off-grid batch compositions.
    Rng rng(101);
    std::vector<double> rel_errors;
    for (int i = 0; i < 300; ++i) {
        BatchFeatures f = features(
            rng.uniform(64, 3000), rng.uniform(0, 8000),
            std::floor(rng.uniform(0, 128)), 0.0);
        f.decodeCtxSum = f.numDecodes * rng.uniform(200, 4000);
        double truth = model_->iterationTime(f.toWork());
        double pred = forest_->predict(f);
        rel_errors.push_back(std::abs(pred - truth) / truth);
    }
    std::sort(rel_errors.begin(), rel_errors.end());
    EXPECT_LT(rel_errors[rel_errors.size() / 2], 0.10);
}

TEST_F(PredictorTest, ForestBiasedTowardOverPredictingLatency)
{
    // The paper tunes the model to "err on the side of
    // under-predicting chunk size", i.e. over-predicting latency,
    // so a chunk chosen from the prediction never blows the budget.
    Rng rng(103);
    int over = 0, total = 300;
    for (int i = 0; i < total; ++i) {
        BatchFeatures f = features(
            rng.uniform(64, 3000), rng.uniform(0, 8000),
            std::floor(rng.uniform(0, 128)), 0.0);
        f.decodeCtxSum = f.numDecodes * rng.uniform(200, 4000);
        double truth = model_->iterationTime(f.toWork());
        over += forest_->predict(f) >= truth;
    }
    EXPECT_GT(over, total * 7 / 10);
}

TEST_F(PredictorTest, ForestMonotonicEnoughInChunk)
{
    // Coarse monotonicity: predictions at 4x the chunk exceed
    // predictions at the base chunk.
    for (double base : {128.0, 256.0, 512.0}) {
        BatchFeatures lo = features(base, 0, 32, 32 * 1500);
        BatchFeatures hi = features(4 * base, 0, 32, 32 * 1500);
        EXPECT_GT(forest_->predict(hi), forest_->predict(lo));
    }
}

TEST_F(PredictorTest, SolverFindsLargestFeasibleChunkAgainstOracle)
{
    OracleLatencyPredictor oracle(*model_);
    BatchFeatures state = features(0, 0, 32, 32 * 1500);
    double budget = 0.05;

    int chunk = solveChunkBudget(oracle, state, budget, 4096, 64);
    ASSERT_GT(chunk, 0);

    BatchFeatures at = state;
    at.chunkTokens = chunk;
    EXPECT_LE(oracle.predict(at), budget);

    BatchFeatures next = state;
    next.chunkTokens = chunk + 64;
    EXPECT_GT(oracle.predict(next), budget);
}

TEST_F(PredictorTest, SolverZeroWhenBudgetTooTight)
{
    OracleLatencyPredictor oracle(*model_);
    BatchFeatures state = features(0, 0, 64, 64 * 3000);
    EXPECT_EQ(solveChunkBudget(oracle, state, 1e-4, 4096, 64), 0);
    EXPECT_EQ(solveChunkBudget(oracle, state, -1.0, 4096, 64), 0);
}

TEST_F(PredictorTest, SolverCapsAtMaxChunk)
{
    OracleLatencyPredictor oracle(*model_);
    BatchFeatures state = features(0, 0, 0, 0);
    EXPECT_EQ(solveChunkBudget(oracle, state, 1e9, 2560, 64), 2560);
}

TEST_F(PredictorTest, SolverRespectsStepGranularity)
{
    OracleLatencyPredictor oracle(*model_);
    BatchFeatures state = features(0, 0, 16, 16 * 1000);
    int chunk = solveChunkBudget(oracle, state, 0.06, 4096, 128);
    EXPECT_EQ(chunk % 128, 0);
}

TEST_F(PredictorTest, SolvedChunkNeverExceedsTrueBudget)
{
    // End-to-end conservatism: a chunk solved with the *forest* must
    // fit the budget when priced by the *true* model — this is the
    // property that protects TBT SLOs during dynamic chunking.
    Rng rng(107);
    int violations = 0;
    for (int i = 0; i < 100; ++i) {
        BatchFeatures state = features(
            0, rng.uniform(0, 4000), std::floor(rng.uniform(4, 96)), 0);
        state.decodeCtxSum = state.numDecodes * rng.uniform(500, 3000);
        double budget = rng.uniform(0.03, 0.2);
        int chunk = solveChunkBudget(*forest_, state, budget, 4096, 64);
        if (chunk == 0)
            continue;
        BatchFeatures at = state;
        at.chunkTokens = chunk;
        double truth = model_->iterationTime(at.toWork());
        violations += truth > budget * 1.10;
    }
    // Allow rare small overshoots (< 10% of cases beyond a 10%
    // latency margin would indicate a broken conservatism bias).
    EXPECT_LE(violations, 10);
}

TEST_F(PredictorTest, PlaneLookupBitwiseEqualsDirectPredict)
{
    // The probe-level memo: every lookupOrPredict() answer — plane
    // hit, plane rebuild or fallback — must be the bitwise answer a
    // fresh forest evaluation would give.
    ChunkSolverCache cache;
    Rng rng(109);
    BatchFeatures state = features(0, 0, 32, 32 * 1500);
    for (int i = 0; i < 500; ++i) {
        if (i % 50 == 0) {
            // Composition change: the plane box should miss and
            // rebuild, never drift the answers.
            state.numDecodes = std::floor(rng.uniform(1, 128));
            state.decodeCtxSum = state.numDecodes * rng.uniform(200, 4000);
        }
        int chunk = 64 * (1 + i % 40);
        state.prefillContext = rng.uniform(0, 8000);
        SimDuration cached =
            cache.lookupOrPredict(*forest_, state, chunk, 64);
        BatchFeatures at = state;
        at.chunkTokens = chunk;
        EXPECT_EQ(cached, forest_->predict(at));
    }
    EXPECT_GT(cache.stats().hits, 0u);
    EXPECT_GT(cache.stats().evaluations, 0u);
}

TEST_F(PredictorTest, SolveMemoisedBitwiseEqualUnderDrift)
{
    // The solve-level memo under a scheduler-shaped workload: the
    // prefill context drifts by exactly the granted chunk, the batch
    // composition changes on admit/finish boundaries, and the budget
    // wobbles with the decode slack. At every step the cached solve
    // must equal the uncached search exactly.
    ChunkSolverCache cache;
    Rng rng(113);
    double pctx = 0.0;
    double nd = 24.0;
    double dctx = 24.0 * 1800.0;
    for (int i = 0; i < 1500; ++i) {
        if (i % 97 == 0) {
            // Admission / completion: composition jumps.
            nd = std::floor(rng.uniform(4, 96));
            dctx = nd * rng.uniform(500, 3000);
        }
        if (i % 53 == 0)
            pctx = 0.0; // New prefill head (or preemption restart).
        BatchFeatures state = features(0, pctx, nd, dctx);
        double budget = 0.08 + 0.02 * std::sin(0.05 * i);

        int fresh = solveChunkBudget(*forest_, state, budget, 4096, 64);
        int cached = cache.solve(*forest_, state, budget, 4096, 64);
        ASSERT_EQ(cached, fresh) << "step " << i;

        pctx += cached; // Context advances by the granted chunk.
        dctx += nd;     // Decodes each grew by one token.
    }
    const ChunkSolverCache::Stats &st = cache.stats();
    EXPECT_EQ(st.solves, 1500u);
    // Both memo levels must actually fire on this workload — the
    // equality above would pass vacuously if every solve ran cold.
    EXPECT_GT(st.replayHits, 0u);
    EXPECT_GT(st.hits, 0u);
}

} // namespace
} // namespace qoserve
