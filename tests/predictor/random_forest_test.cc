/**
 * @file
 * Tests for the CART / random-forest regressor.
 */

#include "predictor/random_forest.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace qoserve {
namespace {

std::vector<TrainSample>
makeLinearData(int n, std::uint64_t seed, double noise = 0.0)
{
    // y = 2 x0 + 0.5 x1 over a grid, optional noise.
    Rng rng(seed);
    std::vector<TrainSample> data;
    data.reserve(n);
    for (int i = 0; i < n; ++i) {
        double x0 = rng.uniform(0.0, 10.0);
        double x1 = rng.uniform(0.0, 10.0);
        TrainSample s;
        s.x = {x0, x1};
        s.y = 2.0 * x0 + 0.5 * x1 + noise * rng.normal();
        data.push_back(std::move(s));
    }
    return data;
}

TEST(RegressionTree, FitsConstantTarget)
{
    std::vector<TrainSample> data;
    for (int i = 0; i < 20; ++i)
        data.push_back({{static_cast<double>(i)}, 7.5});
    RegressionTree tree;
    Rng rng(1);
    tree.fit(data, ForestParams{}, rng);
    EXPECT_DOUBLE_EQ(tree.predict({3.0}), 7.5);
    // No split reduces variance of a constant: single leaf.
    EXPECT_EQ(tree.numNodes(), 1u);
}

TEST(RegressionTree, SeparatesTwoClusters)
{
    std::vector<TrainSample> data;
    for (int i = 0; i < 10; ++i) {
        data.push_back({{1.0 + 0.01 * i}, 10.0});
        data.push_back({{9.0 + 0.01 * i}, 50.0});
    }
    RegressionTree tree;
    Rng rng(2);
    tree.fit(data, ForestParams{}, rng);
    EXPECT_NEAR(tree.predict({1.0}), 10.0, 1e-9);
    EXPECT_NEAR(tree.predict({9.0}), 50.0, 1e-9);
}

TEST(RegressionTree, RespectsMaxDepth)
{
    auto data = makeLinearData(500, 3);
    ForestParams params;
    params.maxDepth = 2;
    RegressionTree tree;
    Rng rng(4);
    tree.fit(data, params, rng);
    // Depth 2 allows at most 7 nodes.
    EXPECT_LE(tree.numNodes(), 7u);
}

TEST(RegressionTree, LearnsSmoothFunction)
{
    auto data = makeLinearData(4000, 5);
    RegressionTree tree;
    Rng rng(6);
    tree.fit(data, ForestParams{}, rng);

    double max_err = 0.0;
    Rng probe(7);
    for (int i = 0; i < 200; ++i) {
        double x0 = probe.uniform(0.5, 9.5);
        double x1 = probe.uniform(0.5, 9.5);
        double truth = 2.0 * x0 + 0.5 * x1;
        max_err = std::max(max_err,
                           std::abs(tree.predict({x0, x1}) - truth));
    }
    EXPECT_LT(max_err, 2.5);
}

TEST(RandomForest, PredictsMeanOfConstantData)
{
    std::vector<TrainSample> data;
    for (int i = 0; i < 50; ++i)
        data.push_back({{static_cast<double>(i)}, 3.0});
    RandomForest forest;
    forest.fit(data, ForestParams{}, 11);
    EXPECT_DOUBLE_EQ(forest.predict({25.0}), 3.0);
}

TEST(RandomForest, AccurateOnNoisyLinearData)
{
    auto data = makeLinearData(5000, 13, 0.5);
    RandomForest forest;
    forest.fit(data, ForestParams{}, 17);

    Rng probe(19);
    double sum_rel = 0.0;
    int n = 300;
    for (int i = 0; i < n; ++i) {
        double x0 = probe.uniform(1.0, 9.0);
        double x1 = probe.uniform(1.0, 9.0);
        double truth = 2.0 * x0 + 0.5 * x1;
        sum_rel += std::abs(forest.predict({x0, x1}) - truth) / truth;
    }
    // §3.6.1 claims < 10% error; the forest should do far better on
    // this easy target.
    EXPECT_LT(sum_rel / n, 0.10);
}

TEST(RandomForest, DeterministicForSeed)
{
    auto data = makeLinearData(1000, 23, 0.2);
    RandomForest a, b;
    a.fit(data, ForestParams{}, 29);
    b.fit(data, ForestParams{}, 29);
    for (double x = 0.5; x < 10.0; x += 0.5)
        EXPECT_DOUBLE_EQ(a.predict({x, x}), b.predict({x, x}));
}

TEST(RandomForest, QuantilesOrdered)
{
    auto data = makeLinearData(2000, 31, 1.0);
    RandomForest forest;
    forest.fit(data, ForestParams{}, 37);
    std::vector<double> x = {5.0, 5.0};
    double q10 = forest.predictQuantile(x, 0.1);
    double q50 = forest.predictQuantile(x, 0.5);
    double q90 = forest.predictQuantile(x, 0.9);
    EXPECT_LE(q10, q50);
    EXPECT_LE(q50, q90);
}

TEST(RandomForest, LowQuantileSitsBelowMean)
{
    // The conservatism mechanism: a sub-median quantile of tree
    // outputs sits at or below the ensemble mean almost always.
    auto data = makeLinearData(3000, 41, 1.0);
    RandomForest forest;
    forest.fit(data, ForestParams{}, 43);

    Rng probe(47);
    int below = 0, total = 200;
    for (int i = 0; i < total; ++i) {
        std::vector<double> x = {probe.uniform(1.0, 9.0),
                                 probe.uniform(1.0, 9.0)};
        below += forest.predictQuantile(x, 0.25) <= forest.predict(x);
    }
    EXPECT_GT(below, total * 9 / 10);
}

TEST(RandomForest, TrainedFlagAndTreeCount)
{
    RandomForest forest;
    EXPECT_FALSE(forest.trained());
    ForestParams params;
    params.numTrees = 7;
    forest.fit(makeLinearData(100, 53), params, 59);
    EXPECT_TRUE(forest.trained());
    EXPECT_EQ(forest.numTrees(), 7u);
}

} // namespace
} // namespace qoserve
