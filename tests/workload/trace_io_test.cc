/**
 * @file
 * Tests for trace CSV round-tripping and validation.
 */

#include "workload/trace_io.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace qoserve {
namespace {

TEST(TraceIo, RoundTripPreservesEveryField)
{
    Trace original = TraceBuilder()
                         .dataset(azureCode())
                         .seed(5)
                         .lowPriorityFraction(0.3)
                         .buildCount(PoissonArrivals(4.0), 500);

    std::stringstream buffer;
    writeTraceCsv(original, buffer);
    Trace parsed = readTraceCsv(buffer, paperTierTable());

    ASSERT_EQ(parsed.requests.size(), original.requests.size());
    for (std::size_t i = 0; i < parsed.requests.size(); ++i) {
        const RequestSpec &a = original.requests[i];
        const RequestSpec &b = parsed.requests[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_DOUBLE_EQ(a.arrival.seconds(), b.arrival.seconds());
        EXPECT_EQ(a.promptTokens, b.promptTokens);
        EXPECT_EQ(a.decodeTokens, b.decodeTokens);
        EXPECT_EQ(a.tierId, b.tierId);
        EXPECT_EQ(a.important, b.important);
        EXPECT_EQ(a.appId, b.appId);
    }
}

TEST(TraceIo, AppStatsRecomputedOnLoad)
{
    Trace original = TraceBuilder().seed(6).buildCount(
        PoissonArrivals(2.0), 300);
    std::stringstream buffer;
    writeTraceCsv(original, buffer);
    Trace parsed = readTraceCsv(buffer, paperTierTable());

    ASSERT_EQ(parsed.appStats.size(), original.appStats.size());
    for (std::size_t a = 0; a < parsed.appStats.size(); ++a) {
        EXPECT_NEAR(parsed.appStats[a].meanDecode,
                    original.appStats[a].meanDecode, 1e-9);
    }
}

TEST(TraceIo, UnsortedRowsAreSortedByArrival)
{
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id\n"
        "1,5.0,100,10,0,1,0\n"
        "0,2.0,200,20,1,0,1\n");
    Trace trace = readTraceCsv(in, paperTierTable());
    ASSERT_EQ(trace.requests.size(), 2u);
    EXPECT_EQ(trace.requests[0].id, 0u);
    EXPECT_EQ(trace.requests[1].id, 1u);
    EXPECT_FALSE(trace.requests[0].important);
}

TEST(TraceIo, WindowsLineEndingsAccepted)
{
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id\r\n"
        "0,1.0,100,10,0,1,0\r\n");
    Trace trace = readTraceCsv(in, paperTierTable());
    EXPECT_EQ(trace.requests.size(), 1u);
}

TEST(TraceIo, BadHeaderIsFatal)
{
    std::stringstream in("nope\n0,1.0,100,10,0,1,0\n");
    EXPECT_DEATH(readTraceCsv(in, paperTierTable()), "bad trace header");
}

TEST(TraceIo, WrongFieldCountIsFatal)
{
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id\n"
        "0,1.0,100,10,0\n");
    EXPECT_DEATH(readTraceCsv(in, paperTierTable()), "expected 7 fields");
}

TEST(TraceIo, OutOfRangeTierIsFatal)
{
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id\n"
        "0,1.0,100,10,9,1,0\n");
    EXPECT_DEATH(readTraceCsv(in, paperTierTable()), "out of range");
}

TEST(TraceIo, NonPositiveTokensAreFatal)
{
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id\n"
        "0,1.0,0,10,0,1,0\n");
    EXPECT_DEATH(readTraceCsv(in, paperTierTable()),
                 "token counts must be positive");
}

TEST(TraceIo, TrailingGarbageInFieldIsFatalWithLineNumber)
{
    // "12x" must not silently parse as 12: every field must consume
    // its whole text, and the error names the 1-based line and field.
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id\n"
        "0,1.0,100,10,0,1,0\n"
        "1,2.0,12x,10,0,1,0\n");
    EXPECT_DEATH(readTraceCsv(in, paperTierTable()),
                 "trace line 3: field 'prompt_tokens'");
}

TEST(TraceIo, NonNumericArrivalIsFatal)
{
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id\n"
        "0,soon,100,10,0,1,0\n");
    EXPECT_DEATH(readTraceCsv(in, paperTierTable()),
                 "field 'arrival'.*expected number");
}

TEST(TraceIo, NegativeIdIsFatal)
{
    // Request ids are unsigned; "-1" must be rejected, not wrapped.
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id\n"
        "-1,1.0,100,10,0,1,0\n");
    EXPECT_DEATH(readTraceCsv(in, paperTierTable()),
                 "field 'id'.*expected unsigned integer");
}

TEST(TraceIo, EmptyFieldIsFatal)
{
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id\n"
        "0,1.0,100,,0,1,0\n");
    EXPECT_DEATH(readTraceCsv(in, paperTierTable()),
                 "field 'decode_tokens'");
}

TEST(TraceIo, HeaderStaysLegacyWithoutSegments)
{
    // Traces without prompt segments must keep the historical byte
    // format: 7-column header, no trailing column.
    Trace original =
        TraceBuilder().seed(8).buildCount(PoissonArrivals(3.0), 10);
    std::stringstream buffer;
    writeTraceCsv(original, buffer);
    std::string header;
    ASSERT_TRUE(std::getline(buffer, header));
    EXPECT_EQ(header,
              "id,arrival,prompt_tokens,decode_tokens,tier_id,"
              "important,app_id");
    std::string row;
    ASSERT_TRUE(std::getline(buffer, row));
    EXPECT_EQ(std::count(row.begin(), row.end(), ','), 6);
}

TEST(TraceIo, SegmentsRoundTrip)
{
    SharedPrefixConfig sp;
    sp.shareRatio = 0.6;
    sp.numPools = 3;
    Trace original = TraceBuilder()
                         .seed(9)
                         .sharedPrefix(sp)
                         .buildCount(PoissonArrivals(4.0), 400);

    std::stringstream buffer;
    writeTraceCsv(original, buffer);
    std::string header;
    ASSERT_TRUE(std::getline(buffer, header));
    EXPECT_EQ(header,
              "id,arrival,prompt_tokens,decode_tokens,tier_id,"
              "important,app_id,prompt_segments");
    buffer.seekg(0);

    Trace parsed = readTraceCsv(buffer, paperTierTable());
    ASSERT_EQ(parsed.requests.size(), original.requests.size());
    for (std::size_t i = 0; i < parsed.requests.size(); ++i) {
        const RequestSpec &a = original.requests[i];
        const RequestSpec &b = parsed.requests[i];
        EXPECT_EQ(a.promptTokens, b.promptTokens);
        ASSERT_EQ(a.promptSegments.size(), b.promptSegments.size());
        for (std::size_t s = 0; s < a.promptSegments.size(); ++s) {
            EXPECT_EQ(a.promptSegments[s].contentId,
                      b.promptSegments[s].contentId);
            EXPECT_EQ(a.promptSegments[s].tokens,
                      b.promptSegments[s].tokens);
        }
    }
}

TEST(TraceIo, DashMarksUniquePromptsInSegmentTraces)
{
    // In a trace that has any segments, segment-free requests carry
    // '-' in the extra column and read back as wholly unique.
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id,prompt_segments\n"
        "0,1.0,300,10,0,1,0,7:200;9:100\n"
        "1,2.0,150,10,0,1,0,-\n");
    Trace trace = readTraceCsv(in, paperTierTable());
    ASSERT_EQ(trace.requests.size(), 2u);
    ASSERT_EQ(trace.requests[0].promptSegments.size(), 2u);
    EXPECT_EQ(trace.requests[0].promptSegments[0].contentId, 7u);
    EXPECT_EQ(trace.requests[0].promptSegments[0].tokens, 200);
    EXPECT_EQ(trace.requests[0].promptSegments[1].contentId, 9u);
    EXPECT_EQ(trace.requests[0].promptSegments[1].tokens, 100);
    EXPECT_TRUE(trace.requests[1].promptSegments.empty());
}

TEST(TraceIo, SegmentSumMismatchIsFatal)
{
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id,prompt_segments\n"
        "0,1.0,300,10,0,1,0,7:200;9:50\n");
    EXPECT_DEATH(readTraceCsv(in, paperTierTable()),
                 "prompt segments sum to 250");
}

TEST(TraceIo, MalformedSegmentIsFatal)
{
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id,prompt_segments\n"
        "0,1.0,300,10,0,1,0,7-300\n");
    EXPECT_DEATH(readTraceCsv(in, paperTierTable()),
                 "expected contentId:tokens");
}

TEST(TraceIo, NonPositiveSegmentTokensAreFatal)
{
    std::stringstream in(
        "id,arrival,prompt_tokens,decode_tokens,tier_id,important,"
        "app_id,prompt_segments\n"
        "0,1.0,300,10,0,1,0,7:300;9:0\n");
    EXPECT_DEATH(readTraceCsv(in, paperTierTable()),
                 "segment tokens must be positive");
}

TEST(TraceIo, FileRoundTrip)
{
    Trace original =
        TraceBuilder().seed(7).buildCount(PoissonArrivals(3.0), 100);
    std::string path = ::testing::TempDir() + "/qoserve_trace_io.csv";
    writeTraceCsvFile(original, path);
    Trace parsed = readTraceCsvFile(path, paperTierTable());
    EXPECT_EQ(parsed.requests.size(), 100u);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_DEATH(readTraceCsvFile("/nonexistent/qoserve.csv",
                                  paperTierTable()),
                 "cannot open");
}

} // namespace
} // namespace qoserve
