/**
 * @file
 * Unit tests for QoS tiers and deadline arithmetic (Eqs. 1-3).
 */

#include "workload/qos.hh"

#include <gtest/gtest.h>

namespace qoserve {
namespace {

TEST(QosTier, InteractiveFirstTokenDeadlineIsEq1)
{
    QosTier q1 = interactiveTier(0, "Q1", 6.0, 0.05);
    EXPECT_DOUBLE_EQ(q1.firstTokenDeadline(SimTime{100.0}).seconds(), 106.0);
}

TEST(QosTier, InteractiveTokenDeadlineIsEq2)
{
    QosTier q1 = interactiveTier(0, "Q1", 6.0, 0.05);
    SimTime arrival{10.0};
    EXPECT_DOUBLE_EQ(q1.tokenDeadline(arrival, 1).seconds(), 16.0);
    EXPECT_DOUBLE_EQ(q1.tokenDeadline(arrival, 2).seconds(), 16.05);
    EXPECT_DOUBLE_EQ(q1.tokenDeadline(arrival, 101).seconds(), 16.0 + 100 * 0.05);
}

TEST(QosTier, BatchTierDeadlinesAreEq3)
{
    QosTier q3 = batchTier(2, "Q3", 1800.0);
    EXPECT_DOUBLE_EQ(q3.firstTokenDeadline(SimTime{50.0}).seconds(), 1850.0);
    EXPECT_DOUBLE_EQ(q3.completionDeadline(SimTime{50.0}, TokenCount{400}).seconds(), 1850.0);
    EXPECT_EQ(q3.tokenDeadline(SimTime{50.0}, 7), kTimeNever);
}

TEST(QosTier, InteractiveCompletionDeadlineIsFinalTokenDeadline)
{
    QosTier q1 = interactiveTier(0, "Q1", 6.0, 0.05);
    EXPECT_DOUBLE_EQ(q1.completionDeadline(SimTime{0.0}, TokenCount{100}).seconds(),
                     q1.tokenDeadline(SimTime{0.0}, 100).seconds());
}

TEST(QosTier, TokenDeadlinesAreMonotonic)
{
    QosTier q1 = interactiveTier(0, "Q1", 3.0, 0.025);
    for (int n = 1; n < 50; ++n) {
        EXPECT_LT(q1.tokenDeadline(SimTime{0.0}, n), q1.tokenDeadline(SimTime{0.0}, n + 1));
    }
}

TEST(QosTier, PaperTierTableMatchesTable3)
{
    TierTable tiers = paperTierTable();
    ASSERT_EQ(tiers.size(), 3u);

    EXPECT_TRUE(tiers[0].interactive);
    EXPECT_DOUBLE_EQ(tiers[0].ttftSlo, 6.0);
    EXPECT_DOUBLE_EQ(tiers[0].tbtSlo, 0.05);

    EXPECT_FALSE(tiers[1].interactive);
    EXPECT_DOUBLE_EQ(tiers[1].ttltSlo, 600.0);

    EXPECT_FALSE(tiers[2].interactive);
    EXPECT_DOUBLE_EQ(tiers[2].ttltSlo, 1800.0);

    for (std::size_t i = 0; i < tiers.size(); ++i)
        EXPECT_EQ(tiers[i].id, static_cast<int>(i));
}

TEST(QosTier, StrictTierTableMatchesSection442)
{
    TierTable tiers = strictTierTable();
    ASSERT_EQ(tiers.size(), 3u);
    EXPECT_TRUE(tiers[0].interactive);
    EXPECT_DOUBLE_EQ(tiers[0].ttftSlo, 3.0);
    EXPECT_TRUE(tiers[1].interactive);
    EXPECT_DOUBLE_EQ(tiers[1].ttftSlo, 6.0);
    EXPECT_FALSE(tiers[2].interactive);
    EXPECT_DOUBLE_EQ(tiers[2].ttltSlo, 1000.0);
}

} // namespace
} // namespace qoserve
