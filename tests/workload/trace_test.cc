/**
 * @file
 * Tests for trace synthesis.
 */

#include "workload/trace.hh"

#include <gtest/gtest.h>

namespace qoserve {
namespace {

TEST(TraceBuilder, BuildByDurationCoversWindow)
{
    Trace trace = TraceBuilder().seed(1).build(PoissonArrivals(5.0), 600.0);
    EXPECT_NEAR(static_cast<double>(trace.requests.size()), 3000.0, 300.0);
    for (const auto &r : trace.requests)
        EXPECT_LE(r.arrival, 600.0);
}

TEST(TraceBuilder, BuildCountProducesExactCount)
{
    Trace trace =
        TraceBuilder().seed(2).buildCount(PoissonArrivals(5.0), 1234);
    EXPECT_EQ(trace.requests.size(), 1234u);
}

TEST(TraceBuilder, ArrivalsSortedAndIdsDense)
{
    Trace trace =
        TraceBuilder().seed(3).buildCount(PoissonArrivals(10.0), 2000);
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
        EXPECT_EQ(trace.requests[i].id, i);
        if (i > 0) {
            EXPECT_GE(trace.requests[i].arrival,
                      trace.requests[i - 1].arrival);
        }
    }
}

TEST(TraceBuilder, DefaultTierMixIsEqualSplit)
{
    Trace trace =
        TraceBuilder().seed(4).buildCount(PoissonArrivals(10.0), 30000);
    std::vector<int> counts(3, 0);
    for (const auto &r : trace.requests)
        ++counts[r.tierId];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 400);
}

TEST(TraceBuilder, SkewedTierMixRespected)
{
    Trace trace = TraceBuilder()
                      .seed(5)
                      .tierMix({0.7, 0.15, 0.15})
                      .buildCount(PoissonArrivals(10.0), 20000);
    std::vector<int> counts(3, 0);
    for (const auto &r : trace.requests)
        ++counts[r.tierId];
    EXPECT_NEAR(counts[0], 14000, 400);
    EXPECT_NEAR(counts[1], 3000, 250);
    EXPECT_NEAR(counts[2], 3000, 250);
}

TEST(TraceBuilder, LowPriorityFractionTagsRequests)
{
    Trace trace = TraceBuilder()
                      .seed(6)
                      .lowPriorityFraction(0.2)
                      .buildCount(PoissonArrivals(10.0), 20000);
    int low = 0;
    for (const auto &r : trace.requests)
        low += !r.important;
    EXPECT_NEAR(low / 20000.0, 0.2, 0.015);
}

TEST(TraceBuilder, DefaultIsAllImportant)
{
    Trace trace =
        TraceBuilder().seed(7).buildCount(PoissonArrivals(10.0), 1000);
    for (const auto &r : trace.requests)
        EXPECT_TRUE(r.important);
}

TEST(TraceBuilder, DeterministicForSameSeed)
{
    Trace a = TraceBuilder().seed(8).buildCount(PoissonArrivals(5.0), 500);
    Trace b = TraceBuilder().seed(8).buildCount(PoissonArrivals(5.0), 500);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].arrival, b.requests[i].arrival);
        EXPECT_EQ(a.requests[i].promptTokens, b.requests[i].promptTokens);
        EXPECT_EQ(a.requests[i].decodeTokens, b.requests[i].decodeTokens);
        EXPECT_EQ(a.requests[i].tierId, b.requests[i].tierId);
    }
}

TEST(TraceBuilder, DifferentSeedsDiffer)
{
    Trace a = TraceBuilder().seed(9).buildCount(PoissonArrivals(5.0), 100);
    Trace b = TraceBuilder().seed(10).buildCount(PoissonArrivals(5.0), 100);
    int same = 0;
    for (std::size_t i = 0; i < 100; ++i)
        same += a.requests[i].promptTokens == b.requests[i].promptTokens;
    EXPECT_LT(same, 10);
}

TEST(TraceBuilder, AppIdTracksTier)
{
    Trace trace =
        TraceBuilder().seed(11).buildCount(PoissonArrivals(5.0), 1000);
    for (const auto &r : trace.requests)
        EXPECT_EQ(r.appId, r.tierId);
}

TEST(TraceBuilder, AppStatsReflectDecodeDistribution)
{
    Trace trace = TraceBuilder()
                      .seed(12)
                      .dataset(azureCode())
                      .buildCount(PoissonArrivals(5.0), 30000);
    ASSERT_EQ(trace.appStats.size(), 3u);
    for (const auto &stats : trace.appStats) {
        // Az-Code decodes: p50 = 8; the mean of the fitted lognormal
        // is ~19. The conservative estimate must over-approximate.
        EXPECT_GT(stats.meanDecode, 5.0);
        EXPECT_LT(stats.meanDecode, 50.0);
        EXPECT_GT(stats.conservativeDecodeTokens(), stats.meanDecode);
    }
}

TEST(ComputeAppStats, MeanAndStddevExact)
{
    std::vector<RequestSpec> reqs(4);
    for (auto &r : reqs)
        r.appId = 0;
    reqs[0].decodeTokens = 10;
    reqs[1].decodeTokens = 20;
    reqs[2].decodeTokens = 30;
    reqs[3].decodeTokens = 40;
    auto stats = computeAppStats(reqs);
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_DOUBLE_EQ(stats[0].meanDecode, 25.0);
    EXPECT_NEAR(stats[0].stddevDecode, 11.1803, 1e-3);
    EXPECT_NEAR(stats[0].conservativeDecodeTokens(), 47.36, 0.01);
}

TEST(ComputeAppStats, EmptyInputYieldsEmpty)
{
    EXPECT_TRUE(computeAppStats({}).empty());
}

} // namespace
} // namespace qoserve
