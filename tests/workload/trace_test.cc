/**
 * @file
 * Tests for trace synthesis.
 */

#include "workload/trace.hh"

#include <gtest/gtest.h>

namespace qoserve {
namespace {

TEST(TraceBuilder, BuildByDurationCoversWindow)
{
    Trace trace = TraceBuilder().seed(1).build(PoissonArrivals(5.0), 600.0);
    EXPECT_NEAR(static_cast<double>(trace.requests.size()), 3000.0, 300.0);
    for (const auto &r : trace.requests)
        EXPECT_LE(r.arrival, SimTime{600.0});
}

TEST(TraceBuilder, BuildCountProducesExactCount)
{
    Trace trace =
        TraceBuilder().seed(2).buildCount(PoissonArrivals(5.0), 1234);
    EXPECT_EQ(trace.requests.size(), 1234u);
}

TEST(TraceBuilder, ArrivalsSortedAndIdsDense)
{
    Trace trace =
        TraceBuilder().seed(3).buildCount(PoissonArrivals(10.0), 2000);
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
        EXPECT_EQ(trace.requests[i].id, i);
        if (i > 0) {
            EXPECT_GE(trace.requests[i].arrival,
                      trace.requests[i - 1].arrival);
        }
    }
}

TEST(TraceBuilder, DefaultTierMixIsEqualSplit)
{
    Trace trace =
        TraceBuilder().seed(4).buildCount(PoissonArrivals(10.0), 30000);
    std::vector<int> counts(3, 0);
    for (const auto &r : trace.requests)
        ++counts[r.tierId];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 400);
}

TEST(TraceBuilder, SkewedTierMixRespected)
{
    Trace trace = TraceBuilder()
                      .seed(5)
                      .tierMix({0.7, 0.15, 0.15})
                      .buildCount(PoissonArrivals(10.0), 20000);
    std::vector<int> counts(3, 0);
    for (const auto &r : trace.requests)
        ++counts[r.tierId];
    EXPECT_NEAR(counts[0], 14000, 400);
    EXPECT_NEAR(counts[1], 3000, 250);
    EXPECT_NEAR(counts[2], 3000, 250);
}

TEST(TraceBuilder, LowPriorityFractionTagsRequests)
{
    Trace trace = TraceBuilder()
                      .seed(6)
                      .lowPriorityFraction(0.2)
                      .buildCount(PoissonArrivals(10.0), 20000);
    int low = 0;
    for (const auto &r : trace.requests)
        low += !r.important;
    EXPECT_NEAR(low / 20000.0, 0.2, 0.015);
}

TEST(TraceBuilder, DefaultIsAllImportant)
{
    Trace trace =
        TraceBuilder().seed(7).buildCount(PoissonArrivals(10.0), 1000);
    for (const auto &r : trace.requests)
        EXPECT_TRUE(r.important);
}

TEST(TraceBuilder, DeterministicForSameSeed)
{
    Trace a = TraceBuilder().seed(8).buildCount(PoissonArrivals(5.0), 500);
    Trace b = TraceBuilder().seed(8).buildCount(PoissonArrivals(5.0), 500);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].arrival, b.requests[i].arrival);
        EXPECT_EQ(a.requests[i].promptTokens, b.requests[i].promptTokens);
        EXPECT_EQ(a.requests[i].decodeTokens, b.requests[i].decodeTokens);
        EXPECT_EQ(a.requests[i].tierId, b.requests[i].tierId);
    }
}

TEST(TraceBuilder, DifferentSeedsDiffer)
{
    Trace a = TraceBuilder().seed(9).buildCount(PoissonArrivals(5.0), 100);
    Trace b = TraceBuilder().seed(10).buildCount(PoissonArrivals(5.0), 100);
    int same = 0;
    for (std::size_t i = 0; i < 100; ++i)
        same += a.requests[i].promptTokens == b.requests[i].promptTokens;
    EXPECT_LT(same, 10);
}

TEST(TraceBuilder, AppIdTracksTier)
{
    Trace trace =
        TraceBuilder().seed(11).buildCount(PoissonArrivals(5.0), 1000);
    for (const auto &r : trace.requests)
        EXPECT_EQ(r.appId, r.tierId);
}

TEST(TraceBuilder, AppStatsReflectDecodeDistribution)
{
    Trace trace = TraceBuilder()
                      .seed(12)
                      .dataset(azureCode())
                      .buildCount(PoissonArrivals(5.0), 30000);
    ASSERT_EQ(trace.appStats.size(), 3u);
    for (const auto &stats : trace.appStats) {
        // Az-Code decodes: p50 = 8; the mean of the fitted lognormal
        // is ~19. The conservative estimate must over-approximate.
        EXPECT_GT(stats.meanDecode, 5.0);
        EXPECT_LT(stats.meanDecode, 50.0);
        EXPECT_GT(stats.conservativeDecodeTokens(), stats.meanDecode);
    }
}

TEST(TraceBuilder, SharedPrefixSegmentsSumToPromptTokens)
{
    SharedPrefixConfig sp;
    sp.shareRatio = 0.6;
    Trace trace = TraceBuilder()
                      .seed(13)
                      .sharedPrefix(sp)
                      .buildCount(PoissonArrivals(5.0), 4000);
    int shared = 0;
    for (const auto &r : trace.requests) {
        if (r.promptSegments.empty())
            continue;
        ++shared;
        std::int64_t sum = 0;
        for (const auto &s : r.promptSegments) {
            EXPECT_GT(s.tokens, 0);
            sum += s.tokens;
        }
        EXPECT_EQ(sum, r.promptTokens);
    }
    EXPECT_NEAR(shared / 4000.0, 0.6, 0.03);
}

TEST(TraceBuilder, SharedPrefixDrawsSystemPromptsFromPool)
{
    SharedPrefixConfig sp;
    sp.shareRatio = 0.5;
    sp.numPools = 4;
    sp.multiTurnFrac = 0.0; // Fresh conversations only.
    Trace trace = TraceBuilder()
                      .seed(14)
                      .sharedPrefix(sp)
                      .buildCount(PoissonArrivals(5.0), 2000);
    // Every shared request opens on one of numPools system prompts:
    // segment 0 repeats across requests, so at most 4 distinct
    // (contentId, tokens) pairs appear in the lead position.
    std::vector<std::uint64_t> leads;
    for (const auto &r : trace.requests) {
        if (r.promptSegments.empty())
            continue;
        ASSERT_EQ(r.promptSegments.size(), 2u);
        std::uint64_t lead = r.promptSegments[0].contentId;
        bool seen = false;
        for (std::uint64_t l : leads)
            seen = seen || l == lead;
        if (!seen)
            leads.push_back(lead);
    }
    EXPECT_GT(leads.size(), 1u);
    EXPECT_LE(leads.size(), 4u);
}

TEST(TraceBuilder, MultiTurnContinuationExtendsAnEarlierPrompt)
{
    SharedPrefixConfig sp;
    sp.shareRatio = 0.7;
    sp.numPools = 2;
    sp.multiTurnFrac = 0.8;
    Trace trace = TraceBuilder()
                      .seed(15)
                      .sharedPrefix(sp)
                      .buildCount(PoissonArrivals(5.0), 1500);

    // A continuation re-sends the whole parent conversation: its
    // segment list must start with an earlier request's full segment
    // list, extended by exactly the answer and the new user turn.
    auto key = [](const std::vector<PromptSegment> &segs) {
        std::uint64_t h = segs.size();
        for (const auto &s : segs) {
            h = h * 1000003 + s.contentId;
            h = h * 1000003 + static_cast<std::uint64_t>(s.tokens);
        }
        return h;
    };
    std::vector<std::uint64_t> prior_prompts;
    int continuations = 0;
    for (const auto &r : trace.requests) {
        const auto &segs = r.promptSegments;
        if (segs.empty())
            continue;
        if (segs.size() > 2u) {
            ++continuations;
            EXPECT_EQ(segs.size() % 2, 0u);
            std::vector<PromptSegment> parent(segs.begin(),
                                              segs.end() - 2);
            std::uint64_t parent_key = key(parent);
            bool found = false;
            for (std::uint64_t k : prior_prompts)
                found = found || k == parent_key;
            EXPECT_TRUE(found)
                << "continuation without a matching parent prompt";
        }
        prior_prompts.push_back(key(segs));
    }
    EXPECT_GT(continuations, 100);
}

TEST(TraceBuilder, SharedPrefixDeterministicForSameSeed)
{
    SharedPrefixConfig sp;
    sp.shareRatio = 0.5;
    auto make = [&sp] {
        return TraceBuilder().seed(16).sharedPrefix(sp).buildCount(
            PoissonArrivals(5.0), 800);
    };
    Trace a = make();
    Trace b = make();
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        const auto &ra = a.requests[i];
        const auto &rb = b.requests[i];
        EXPECT_EQ(ra.promptTokens, rb.promptTokens);
        ASSERT_EQ(ra.promptSegments.size(), rb.promptSegments.size());
        for (std::size_t s = 0; s < ra.promptSegments.size(); ++s) {
            EXPECT_EQ(ra.promptSegments[s].contentId,
                      rb.promptSegments[s].contentId);
            EXPECT_EQ(ra.promptSegments[s].tokens,
                      rb.promptSegments[s].tokens);
        }
    }
}

TEST(TraceBuilder, ZeroShareRatioMatchesPlainBuilderExactly)
{
    // shareRatio 0 must disable synthesis byte-identically: the same
    // seed with and without the (inert) config yields the same trace.
    Trace plain =
        TraceBuilder().seed(17).buildCount(PoissonArrivals(5.0), 600);
    SharedPrefixConfig sp;
    sp.shareRatio = 0.0;
    Trace gated = TraceBuilder().seed(17).sharedPrefix(sp).buildCount(
        PoissonArrivals(5.0), 600);
    ASSERT_EQ(plain.requests.size(), gated.requests.size());
    for (std::size_t i = 0; i < plain.requests.size(); ++i) {
        const auto &ra = plain.requests[i];
        const auto &rb = gated.requests[i];
        EXPECT_EQ(ra.arrival, rb.arrival);
        EXPECT_EQ(ra.promptTokens, rb.promptTokens);
        EXPECT_EQ(ra.decodeTokens, rb.decodeTokens);
        EXPECT_EQ(ra.tierId, rb.tierId);
        EXPECT_EQ(ra.important, rb.important);
        EXPECT_TRUE(rb.promptSegments.empty());
    }
}

TEST(TraceBuilder, SharedPrefixLeavesBaseStreamsUntouched)
{
    // Prefix synthesis draws from its own seed split: enabling it
    // must not perturb arrivals, decode lengths, tiers or priority,
    // and only prepends tokens to shared prompts.
    Trace plain =
        TraceBuilder().seed(18).buildCount(PoissonArrivals(5.0), 600);
    SharedPrefixConfig sp;
    sp.shareRatio = 0.5;
    Trace shared = TraceBuilder().seed(18).sharedPrefix(sp).buildCount(
        PoissonArrivals(5.0), 600);
    ASSERT_EQ(plain.requests.size(), shared.requests.size());
    for (std::size_t i = 0; i < plain.requests.size(); ++i) {
        const auto &ra = plain.requests[i];
        const auto &rb = shared.requests[i];
        EXPECT_EQ(ra.arrival, rb.arrival);
        EXPECT_EQ(ra.decodeTokens, rb.decodeTokens);
        EXPECT_EQ(ra.tierId, rb.tierId);
        EXPECT_EQ(ra.important, rb.important);
        if (rb.promptSegments.empty())
            EXPECT_EQ(ra.promptTokens, rb.promptTokens);
        else
            EXPECT_GT(rb.promptTokens, ra.promptTokens);
    }
}

TEST(SharedPrefixConfig, ValidateRejectsBadRanges)
{
    SharedPrefixConfig sp;
    sp.shareRatio = 1.5;
    EXPECT_DEATH(sp.validate(), "share ratio");
    sp.shareRatio = 0.5;
    sp.numPools = 0;
    EXPECT_DEATH(sp.validate(), "pool count");
    sp.numPools = 4;
    sp.poolTokensLo = 256;
    sp.poolTokensHi = 128;
    EXPECT_DEATH(sp.validate(), "pool token range");
    sp.poolTokensHi = 512;
    sp.multiTurnFrac = -0.1;
    EXPECT_DEATH(sp.validate(), "multi-turn fraction");
}

TEST(ComputeAppStats, MeanAndStddevExact)
{
    std::vector<RequestSpec> reqs(4);
    for (auto &r : reqs)
        r.appId = 0;
    reqs[0].decodeTokens = 10;
    reqs[1].decodeTokens = 20;
    reqs[2].decodeTokens = 30;
    reqs[3].decodeTokens = 40;
    auto stats = computeAppStats(reqs);
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_DOUBLE_EQ(stats[0].meanDecode, 25.0);
    EXPECT_NEAR(stats[0].stddevDecode, 11.1803, 1e-3);
    EXPECT_NEAR(stats[0].conservativeDecodeTokens(), 47.36, 0.01);
}

TEST(ComputeAppStats, EmptyInputYieldsEmpty)
{
    EXPECT_TRUE(computeAppStats({}).empty());
}

} // namespace
} // namespace qoserve
