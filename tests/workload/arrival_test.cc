/**
 * @file
 * Tests for arrival processes.
 */

#include "workload/arrival.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace qoserve {
namespace {

std::vector<SimTime>
generate(const ArrivalProcess &proc, Rng &rng, int count)
{
    std::vector<SimTime> out;
    SimTime t;
    for (int i = 0; i < count; ++i) {
        t = proc.nextArrival(t, rng);
        out.push_back(t);
    }
    return out;
}

TEST(PoissonArrivals, StrictlyIncreasing)
{
    PoissonArrivals proc(5.0);
    Rng rng(1);
    auto times = generate(proc, rng, 1000);
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_GT(times[i], times[i - 1]);
}

TEST(PoissonArrivals, RateMatchesQps)
{
    PoissonArrivals proc(4.0);
    Rng rng(2);
    auto times = generate(proc, rng, 40000);
    double rate = 40000.0 / times.back().seconds();
    EXPECT_NEAR(rate, 4.0, 0.1);
}

TEST(PoissonArrivals, AverageQpsReported)
{
    EXPECT_DOUBLE_EQ(PoissonArrivals(3.5).averageQps(), 3.5);
}

TEST(GammaArrivals, MeanRateMatchesQps)
{
    GammaArrivals proc(4.0, 2.0);
    Rng rng(6);
    auto times = generate(proc, rng, 40000);
    EXPECT_NEAR(40000.0 / times.back().seconds(), 4.0, 0.15);
    EXPECT_DOUBLE_EQ(proc.averageQps(), 4.0);
}

TEST(GammaArrivals, CvControlsBurstiness)
{
    // Empirical CV of the inter-arrival gaps tracks the parameter.
    auto empirical_cv = [](double cv) {
        GammaArrivals proc(5.0, cv);
        Rng rng(7);
        double sum = 0.0, sumsq = 0.0;
        SimTime prev;
        constexpr int n = 60000;
        for (int i = 0; i < n; ++i) {
            SimTime t = proc.nextArrival(prev, rng);
            double gap = t - prev;
            sum += gap;
            sumsq += gap * gap;
            prev = t;
        }
        double mean = sum / n;
        double var = sumsq / n - mean * mean;
        return std::sqrt(var) / mean;
    };

    EXPECT_NEAR(empirical_cv(0.5), 0.5, 0.05);
    EXPECT_NEAR(empirical_cv(1.0), 1.0, 0.05);
    EXPECT_NEAR(empirical_cv(3.0), 3.0, 0.25);
}

TEST(GammaArrivals, Cv1MatchesPoissonStatistics)
{
    // CV = 1 Gamma renewals are exactly Poisson.
    GammaArrivals gamma_proc(3.0, 1.0);
    Rng rng(8);
    auto times = generate(gamma_proc, rng, 30000);
    EXPECT_NEAR(30000.0 / times.back().seconds(), 3.0, 0.1);
}

TEST(DiurnalArrivals, PhaseRatesAlternate)
{
    DiurnalArrivals proc(2.0, 5.0, 900.0);
    EXPECT_DOUBLE_EQ(proc.qpsAt(SimTime{0.0}), 2.0);
    EXPECT_DOUBLE_EQ(proc.qpsAt(SimTime{899.9}), 2.0);
    EXPECT_DOUBLE_EQ(proc.qpsAt(SimTime{900.1}), 5.0);
    EXPECT_DOUBLE_EQ(proc.qpsAt(SimTime{1800.5}), 2.0);

    DiurnalArrivals high_first(2.0, 5.0, 900.0, true);
    EXPECT_DOUBLE_EQ(high_first.qpsAt(SimTime{0.0}), 5.0);
}

TEST(DiurnalArrivals, EmpiricalRatesPerPhase)
{
    DiurnalArrivals proc(2.0, 8.0, 1000.0);
    Rng rng(3);
    int low = 0, high = 0;
    SimTime t;
    while (t < SimTime{20000.0}) {
        t = proc.nextArrival(t, rng);
        if (t >= SimTime{20000.0})
            break;
        auto phase = static_cast<std::int64_t>(t.seconds() / 1000.0);
        (phase % 2 == 0 ? low : high) += 1;
    }
    // 10 low phases at 2 QPS and 10 high phases at 8 QPS.
    EXPECT_NEAR(low / 10000.0, 2.0, 0.25);
    EXPECT_NEAR(high / 10000.0, 8.0, 0.5);
}

TEST(DiurnalArrivals, AverageQpsIsMidpoint)
{
    DiurnalArrivals proc(2.0, 5.0, 900.0);
    EXPECT_DOUBLE_EQ(proc.averageQps(), 3.5);
}

TEST(BurstArrivals, RateElevatedOnlyInWindow)
{
    BurstArrivals proc(1.0, 10.0, SimTime{100.0}, SimTime{200.0});
    EXPECT_DOUBLE_EQ(proc.qpsAt(SimTime{50.0}), 1.0);
    EXPECT_DOUBLE_EQ(proc.qpsAt(SimTime{150.0}), 10.0);
    EXPECT_DOUBLE_EQ(proc.qpsAt(SimTime{250.0}), 1.0);
}

TEST(BurstArrivals, BurstDensityObserved)
{
    BurstArrivals proc(1.0, 20.0, SimTime{500.0}, SimTime{600.0});
    Rng rng(4);
    int in_burst = 0, outside = 0;
    SimTime t;
    while (t < SimTime{1000.0}) {
        t = proc.nextArrival(t, rng);
        if (t >= SimTime{1000.0})
            break;
        (t >= SimTime{500.0} && t < SimTime{600.0} ? in_burst : outside) += 1;
    }
    EXPECT_NEAR(in_burst, 2000, 300);  // 100 s at 20 QPS
    EXPECT_NEAR(outside, 900, 150);    // 900 s at 1 QPS
}

TEST(BurstArrivals, CrossingTheBoundaryIsExact)
{
    // Arrivals generated just before the window must land inside it
    // at the burst rate, not leak past it at the base rate.
    BurstArrivals proc(0.001, 50.0, SimTime{10.0}, SimTime{20.0});
    Rng rng(5);
    SimTime t = proc.nextArrival(SimTime{}, rng);
    // With base rate 0.001, the first draw almost surely crosses
    // into the burst window and lands shortly after 10.0.
    EXPECT_GT(t, SimTime{10.0});
    EXPECT_LT(t, SimTime{11.0});
}

} // namespace
} // namespace qoserve
