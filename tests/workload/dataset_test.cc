/**
 * @file
 * Tests that dataset models reproduce the published Table 2
 * quantiles.
 */

#include "workload/dataset.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "metrics/percentile.hh"

namespace qoserve {
namespace {

TEST(LengthDistribution, FittedQuantilesAreExact)
{
    LengthDistribution d(1000, 4000);
    EXPECT_NEAR(d.p50(), 1000.0, 1e-6);
    EXPECT_NEAR(d.p90(), 4000.0, 1e-6);
}

TEST(LengthDistribution, SamplesRespectClamp)
{
    LengthDistribution d(100, 5000, 10, 1000);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        int v = d.sample(rng);
        EXPECT_GE(v, 10);
        EXPECT_LE(v, 1000);
    }
}

TEST(LengthDistribution, MeanExceedsMedianForHeavyTail)
{
    LengthDistribution d(100, 800);
    EXPECT_GT(d.mean(), d.p50());
    EXPECT_GT(d.stddev(), 0.0);
}

struct DatasetCase
{
    std::string name;
    double prompt_p50, prompt_p90, decode_p50, decode_p90;
};

class DatasetQuantiles : public ::testing::TestWithParam<DatasetCase>
{
};

TEST_P(DatasetQuantiles, EmpiricalQuantilesMatchTable2)
{
    const DatasetCase &c = GetParam();
    Dataset ds = datasetByName(c.name);
    Rng rng(17);

    constexpr int n = 60000;
    std::vector<double> prompts(n), decodes(n);
    for (int i = 0; i < n; ++i) {
        prompts[i] = ds.prompt.sample(rng);
        decodes[i] = ds.decode.sample(rng);
    }

    // Sampling + integer rounding justify a ~6% tolerance.
    EXPECT_NEAR(percentile(prompts, 50), c.prompt_p50,
                0.06 * c.prompt_p50);
    EXPECT_NEAR(percentile(prompts, 90), c.prompt_p90,
                0.06 * c.prompt_p90);
    EXPECT_NEAR(percentile(decodes, 50), c.decode_p50,
                std::max(1.0, 0.06 * c.decode_p50));
    EXPECT_NEAR(percentile(decodes, 90), c.decode_p90,
                std::max(1.0, 0.06 * c.decode_p90));
}

INSTANTIATE_TEST_SUITE_P(
    Table2, DatasetQuantiles,
    ::testing::Values(
        DatasetCase{"sharegpt", 1730, 5696, 415, 834},
        DatasetCase{"azure-conv", 928, 3830, 41, 342},
        DatasetCase{"azure-code", 1930, 6251, 8, 43}),
    [](const ::testing::TestParamInfo<DatasetCase> &info) {
        std::string n = info.param.name;
        std::replace(n.begin(), n.end(), '-', '_');
        return n;
    });

TEST(Dataset, AzCodeHasShortestDecodes)
{
    // Table 2: Az-Code decodes (p50=8) are far shorter than ShareGPT
    // (p50=415) — this asymmetry drives the dataset differences in
    // Fig. 7.
    EXPECT_LT(azureCode().decode.p50(), azureConv().decode.p50());
    EXPECT_LT(azureConv().decode.p50(), sharegpt().decode.p50());
}

} // namespace
} // namespace qoserve
