/**
 * @file
 * Cross-cutting determinism tests for the parallel runner.
 *
 * The whole point of qoserve::par is that parallelism is an execution
 * detail: every artifact — sweep summaries, goodput searches, trained
 * forests — must be bit-identical whether computed with jobs = 1 or
 * jobs = 4. These tests drive the real pipelines (ServingSystem
 * sweeps, measureMaxGoodput, RandomForest::fit) at both job counts
 * and compare results with exact equality, never tolerances.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "cluster/capacity.hh"
#include "app/serving_system.hh"
#include "fault/fault_injector.hh"
#include "predictor/random_forest.hh"
#include "simcore/thread_pool.hh"

namespace qoserve {
namespace {

/** Exact (bitwise) equality of every field we report from a run. */
void
expectIdentical(const RunSummary &a, const RunSummary &b,
                const std::string &what)
{
    EXPECT_EQ(a.count, b.count) << what;
    EXPECT_EQ(a.violationRate, b.violationRate) << what;
    EXPECT_EQ(a.violationRateWithTbt, b.violationRateWithTbt) << what;
    EXPECT_EQ(a.importantViolationRate, b.importantViolationRate)
        << what;
    EXPECT_EQ(a.shortViolationRate, b.shortViolationRate) << what;
    EXPECT_EQ(a.longViolationRate, b.longViolationRate) << what;
    EXPECT_EQ(a.relegatedFraction, b.relegatedFraction) << what;
    EXPECT_EQ(a.p50Latency, b.p50Latency) << what;
    EXPECT_EQ(a.p95Latency, b.p95Latency) << what;
    EXPECT_EQ(a.p99Latency, b.p99Latency) << what;
    EXPECT_EQ(a.availability, b.availability) << what;
    EXPECT_EQ(a.retryExhaustedFraction, b.retryExhaustedFraction)
        << what;
    EXPECT_EQ(a.meanRetries, b.meanRetries) << what;
    EXPECT_EQ(a.failureAffectedFraction, b.failureAffectedFraction)
        << what;
    EXPECT_EQ(a.failureViolationRate, b.failureViolationRate) << what;
}

/**
 * A fig02-style sweep — (policy, load) grid of independent
 * simulations — executed through parallelMap, the exact shape the
 * benches use.
 */
std::vector<RunSummary>
policySweep(int jobs)
{
    const Policy policies[] = {Policy::QoServe, Policy::SarathiFcfs,
                               Policy::SarathiEdf};
    const double loads[] = {2.0, 4.0};
    struct Point
    {
        Policy policy;
        double qps;
    };
    std::vector<Point> points;
    for (Policy p : policies)
        for (double q : loads)
            points.push_back({p, q});

    return par::parallelMap(jobs, points.size(), [&](std::size_t i) {
        ServingConfig cfg;
        cfg.policy = points[i].policy;
        cfg.useForestPredictor = false; // oracle keeps tests fast
        Trace trace = TraceBuilder()
                          .dataset(azureCode())
                          .seed(7)
                          .buildCount(
                              PoissonArrivals(points[i].qps), 150);
        return ServingSystem(cfg).serve(trace);
    });
}

TEST(ParallelDeterminism, PolicySweepIsIdenticalAcrossJobCounts)
{
    std::vector<RunSummary> serial = policySweep(1);
    std::vector<RunSummary> parallel = policySweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], parallel[i],
                        "sweep point " + std::to_string(i));
    // Sanity: the sweep produced real runs, not empty summaries.
    for (const RunSummary &s : serial)
        EXPECT_EQ(s.count, 150u);
}

/**
 * A fault sweep: independent simulations with crash/straggler
 * injection fanned across the pool. Same seed + same fault schedule
 * must give bit-identical reports at every job count — recovery
 * (snapshot, backoff, re-dispatch) introduces no nondeterminism.
 */
std::vector<RunSummary>
faultSweep(int jobs)
{
    const std::uint64_t fault_seeds[] = {1, 2, 3, 4};
    return par::parallelMap(
        jobs, std::size(fault_seeds), [&](std::size_t i) {
            Trace trace = TraceBuilder()
                              .dataset(azureCode())
                              .seed(13)
                              .buildCount(PoissonArrivals(4.0), 200);
            ServingConfig cfg;
            cfg.policy = Policy::QoServe;
            cfg.useForestPredictor = false;
            auto predictor = makePredictor(cfg);
            ClusterSim::Config ccfg;
            ccfg.replica.hw = cfg.hw;
            ccfg.predictor = predictor.get();
            ClusterSim sim(ccfg, trace);
            sim.addReplicaGroup(2, makeSchedulerFactory(cfg));

            FaultConfig fc;
            fc.crashMtbf = 12.0;
            fc.crashMttr = 4.0;
            fc.stragglerMtbf = 25.0;
            fc.seed = fault_seeds[i];
            fc.horizon = trace.requests.back().arrival;
            FaultInjector injector(fc, sim);
            return summarize(sim.run());
        });
}

TEST(ParallelDeterminism, FaultSweepIsIdenticalAcrossJobCounts)
{
    std::vector<RunSummary> serial = faultSweep(1);
    std::vector<RunSummary> parallel = faultSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], parallel[i],
                        "fault seed " + std::to_string(i + 1));
    // The sweep exercised the recovery path, not a quiet cluster.
    bool saw_faults = false;
    for (const RunSummary &s : serial)
        saw_faults |= s.failureAffectedFraction > 0.0;
    EXPECT_TRUE(saw_faults);
}

/**
 * A prefix-cache sweep: (capacity fraction, affinity routing) grid
 * over a heavily shared trace. Cache state — radix tree, LRU order,
 * eviction victims — lives entirely inside each simulation, so the
 * summaries (including the cache-derived rows) must be bit-identical
 * at every job count.
 */
std::vector<RunSummary>
prefixCacheSweep(int jobs)
{
    const double fracs[] = {0.2, 0.6};
    const bool affinity[] = {false, true};
    struct Point
    {
        double frac;
        bool affinity;
    };
    std::vector<Point> points;
    for (double f : fracs)
        for (bool a : affinity)
            points.push_back({f, a});

    return par::parallelMap(jobs, points.size(), [&](std::size_t i) {
        SharedPrefixConfig sp;
        sp.shareRatio = 0.6;
        sp.numPools = 4;
        Trace trace = TraceBuilder()
                          .dataset(azureCode())
                          .seed(17)
                          .sharedPrefix(sp)
                          .buildCount(PoissonArrivals(4.0), 150);
        ServingConfig cfg;
        cfg.policy = Policy::QoServe;
        cfg.useForestPredictor = false;
        cfg.numReplicas = 2;
        cfg.prefixCache.enabled = true;
        cfg.prefixCache.capacityFrac = points[i].frac;
        cfg.cacheAffinityRouting = points[i].affinity;
        return ServingSystem(cfg).serve(trace);
    });
}

TEST(ParallelDeterminism, PrefixCacheSweepIsIdenticalAcrossJobCounts)
{
    std::vector<RunSummary> serial = prefixCacheSweep(1);
    std::vector<RunSummary> parallel = prefixCacheSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const std::string what = "cache point " + std::to_string(i);
        expectIdentical(serial[i], parallel[i], what);
        EXPECT_EQ(serial[i].prefixHitFraction,
                  parallel[i].prefixHitFraction)
            << what;
        EXPECT_EQ(serial[i].prefixTokensSavedFraction,
                  parallel[i].prefixTokensSavedFraction)
            << what;
        EXPECT_EQ(serial[i].meanCachedPrefixTokens,
                  parallel[i].meanCachedPrefixTokens)
            << what;
    }
    // The sweep really exercised the cache: shared prompts hit.
    for (const RunSummary &s : serial) {
        EXPECT_EQ(s.count, 150u);
        EXPECT_GT(s.prefixHitFraction, 0.0);
    }
}

/** Noisy nonlinear training set for the forest tests. */
std::vector<TrainSample>
makeTrainingData(int n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<TrainSample> data;
    data.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        double x0 = rng.uniform(0.0, 8.0);
        double x1 = rng.uniform(0.0, 8.0);
        double x2 = rng.uniform(0.0, 1.0);
        TrainSample s;
        s.x = {x0, x1, x2};
        s.y = 3.0 * x0 + x0 * x1 * 0.25 + 0.3 * rng.normal();
        data.push_back(std::move(s));
    }
    return data;
}

TEST(ParallelDeterminism, ForestFitIsIdenticalAcrossJobCounts)
{
    std::vector<TrainSample> data = makeTrainingData(400, 5);
    ForestParams params;
    params.numTrees = 16;

    RandomForest serial, parallel;
    serial.fit(data, params, 99, /*jobs=*/1);
    parallel.fit(data, params, 99, /*jobs=*/4);
    ASSERT_EQ(serial.numTrees(), 16u);
    ASSERT_EQ(parallel.numTrees(), 16u);

    // Every prediction — mean and quantile — must be bit-identical:
    // the per-tree RNG streams derive from (seed, tree index), never
    // from thread schedule.
    Rng probe(123);
    for (int i = 0; i < 200; ++i) {
        std::vector<double> x = {probe.uniform(0.0, 8.0),
                                 probe.uniform(0.0, 8.0),
                                 probe.uniform(0.0, 1.0)};
        EXPECT_EQ(serial.predict(x), parallel.predict(x));
        EXPECT_EQ(serial.predictQuantile(x, 0.25),
                  parallel.predictQuantile(x, 0.25));
    }
}

TEST(ParallelDeterminism, ForestGeneralizesAfterSplitScanRewrite)
{
    // Quality guard for the prefix-sum split scan: trained on noisy
    // data, the forest must still track the underlying function on
    // held-out points (the split search is exact, only the SSE
    // summation order changed).
    std::vector<TrainSample> train = makeTrainingData(600, 11);
    RandomForest forest;
    forest.fit(train, ForestParams{}, 31, /*jobs=*/2);

    std::vector<TrainSample> test = makeTrainingData(150, 12);
    double sse = 0.0, var = 0.0, mean = 0.0;
    for (const TrainSample &s : test)
        mean += s.y / static_cast<double>(test.size());
    for (const TrainSample &s : test) {
        double err = forest.predict(s.x) - s.y;
        sse += err * err;
        var += (s.y - mean) * (s.y - mean);
    }
    // R^2 well above zero: the model explains most of the variance.
    EXPECT_LT(sse, 0.15 * var);
}

TEST(ParallelDeterminism, GoodputSearchIsIdenticalAcrossJobCounts)
{
    // Synthetic load runner with a crisp capacity knee; the search
    // result and the set of probed points must not depend on jobs.
    auto make_runner = [](double capacity,
                          std::vector<double> *probes) {
        return [capacity, probes](double qps) {
            if (probes != nullptr)
                probes->push_back(qps);
            RunSummary s;
            s.count = 100;
            s.violationRate = qps <= capacity ? 0.0 : 0.5;
            return s;
        };
    };

    for (double capacity : {0.3, 1.0, 3.7, 17.2, 63.0, 200.0}) {
        GoodputSearch serial_search;
        serial_search.jobs = 1;
        GoodputSearch parallel_search;
        parallel_search.jobs = 4;

        double serial = measureMaxGoodput(
            make_runner(capacity, nullptr), {}, serial_search);
        std::vector<double> parallel_probes;
        double parallel = measureMaxGoodput(
            make_runner(capacity, &parallel_probes), {},
            parallel_search);

        EXPECT_EQ(serial, parallel) << "capacity=" << capacity;
        // The parallel probe set is a superset of the serial one
        // (no early exit), but every probe lies on the same
        // deterministic grid: re-running yields the same sequence.
        std::vector<double> again;
        measureMaxGoodput(make_runner(capacity, &again), {},
                          parallel_search);
        EXPECT_EQ(parallel_probes, again) << "capacity=" << capacity;
    }
}

TEST(ParallelDeterminism, GoodputSearchRespectsResolutionAtAnyJobs)
{
    auto runner = [](double qps) {
        RunSummary s;
        s.count = 100;
        s.violationRate = qps <= 5.3 ? 0.0 : 1.0;
        return s;
    };
    for (int jobs : {1, 2, 4}) {
        GoodputSearch search;
        search.resolutionQps = 0.05;
        search.jobs = jobs;
        double got = measureMaxGoodput(runner, {}, search);
        EXPECT_LE(got, 5.3);
        EXPECT_GE(got, 5.3 - 2.0 * search.resolutionQps);
    }
}

} // namespace
} // namespace qoserve
