/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include "simcore/rng.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace qoserve {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_EQ(same, 0);
}

TEST(Rng, SplitStreamsAreIndependentOfDrawCount)
{
    // The child stream must not depend on how many draws the parent
    // made after the split point was defined.
    Rng a(7);
    Rng child1 = a.split("workload");
    a.nextU64();
    a.nextU64();

    Rng b(7);
    Rng child2 = b.split("workload");

    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(child1.nextU64(), child2.nextU64());
}

TEST(Rng, SplitTagsProduceDistinctStreams)
{
    Rng root(7);
    Rng a = root.split("a");
    Rng b = root.split("b");
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LE(same, 1);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(13);
    double sum = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(17);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(19);
    constexpr int n = 200000;
    double sum = 0.0, sumsq = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal(5.0, 2.0);
        sum += v;
        sumsq += v * v;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate)
{
    Rng rng(23);
    constexpr int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, LognormalMedianIsExpMu)
{
    Rng rng(29);
    constexpr int n = 100001;
    std::vector<double> vals(n);
    for (auto &v : vals)
        v = rng.lognormal(std::log(100.0), 0.8);
    std::nth_element(vals.begin(), vals.begin() + n / 2, vals.end());
    EXPECT_NEAR(vals[n / 2], 100.0, 5.0);
}

TEST(Rng, BernoulliFrequencyMatchesP)
{
    Rng rng(31);
    constexpr int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.2);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

} // namespace
} // namespace qoserve
