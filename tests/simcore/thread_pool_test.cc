/**
 * @file
 * Unit tests for the deterministic parallel runner (qoserve::par).
 *
 * The pool's contract is that N-thread execution is observationally
 * identical to the serial loop: index-ordered results, index-ordered
 * exception propagation, and per-task RNG streams that are pure
 * functions of (seed, index). These tests exercise the contract at
 * several thread counts, including more threads than tasks.
 */

#include "simcore/thread_pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace qoserve {
namespace {

TEST(ThreadPool, ResolveJobsMapsZeroToHardware)
{
    EXPECT_EQ(par::resolveJobs(0), par::hardwareJobs());
    EXPECT_EQ(par::resolveJobs(1), 1);
    EXPECT_EQ(par::resolveJobs(7), 7);
    EXPECT_EQ(par::resolveJobs(-3), 1);
    EXPECT_GE(par::hardwareJobs(), 1);
}

TEST(ThreadPool, SubmitAndWaitRunsEveryTask)
{
    par::ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);

    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);

    // The pool is reusable after wait().
    for (int i = 0; i < 10; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 110);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> counter{0};
    {
        par::ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
        // No wait(): the destructor must finish the queue.
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    for (int jobs : {1, 2, 4, 9}) {
        std::vector<std::atomic<int>> hits(257);
        par::parallelFor(jobs, hits.size(),
                         [&hits](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndSingleton)
{
    int calls = 0;
    par::parallelFor(4, 0, [&calls](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    par::parallelFor(4, 1, [&calls](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelMapJoinsInIndexOrder)
{
    auto square = [](std::size_t i) { return i * i; };
    std::vector<std::size_t> serial = par::parallelMap(1, 100, square);
    for (int jobs : {2, 4, 16}) {
        std::vector<std::size_t> parallel =
            par::parallelMap(jobs, 100, square);
        EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
    }
}

TEST(ThreadPool, TaskRngIsPureFunctionOfSeedAndIndex)
{
    // Same (seed, index) -> same stream; different index or seed ->
    // different stream.
    Rng a = par::taskRng(42, 3);
    Rng b = par::taskRng(42, 3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());

    Rng c = par::taskRng(42, 4);
    Rng d = par::taskRng(43, 3);
    Rng a2 = par::taskRng(42, 3);
    int same_c = 0, same_d = 0;
    for (int i = 0; i < 100; ++i) {
        std::uint64_t ref = a2.nextU64();
        same_c += c.nextU64() == ref;
        same_d += d.nextU64() == ref;
    }
    EXPECT_LE(same_c, 1);
    EXPECT_LE(same_d, 1);
}

TEST(ThreadPool, TaskRngStreamsMatchAcrossJobCounts)
{
    // A fan-out that sums one draw per task must reduce to the same
    // total at any thread count — the determinism contract end to end.
    auto draw_sum = [](int jobs) {
        std::vector<std::uint64_t> draws = par::parallelMap(
            jobs, 64, [](std::size_t i) {
                return par::taskRng(7, i).nextU64();
            });
        return std::accumulate(draws.begin(), draws.end(),
                               std::uint64_t{0});
    };
    std::uint64_t serial = draw_sum(1);
    EXPECT_EQ(draw_sum(2), serial);
    EXPECT_EQ(draw_sum(8), serial);
}

TEST(ThreadPool, LowestIndexExceptionWins)
{
    // Indices 10 and 60 both throw; the serial loop would surface 10
    // first, so the parallel loop must too — at every job count.
    for (int jobs : {1, 3, 8}) {
        try {
            par::parallelFor(jobs, 100, [](std::size_t i) {
                if (i == 60)
                    throw std::runtime_error("index 60");
                if (i == 10)
                    throw std::runtime_error("index 10");
            });
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "index 10") << "jobs=" << jobs;
        }
    }
}

TEST(ThreadPool, PoolSurvivesThrowingTasks)
{
    // An exception must not wedge the pool: later fan-outs on fresh
    // pools and the throwing call's own join both complete.
    EXPECT_THROW(par::parallelFor(4, 8,
                                  [](std::size_t) {
                                      throw std::logic_error("boom");
                                  }),
                 std::logic_error);

    std::atomic<int> counter{0};
    par::parallelFor(4, 8, [&counter](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, MoreThreadsThanTasks)
{
    std::vector<int> out(3, 0);
    par::parallelFor(16, out.size(),
                     [&out](std::size_t i) { out[i] = 1; });
    EXPECT_EQ(out, (std::vector<int>{1, 1, 1}));
}

} // namespace
} // namespace qoserve
