/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include "simcore/event_queue.hh"

#include <gtest/gtest.h>

#include <vector>

namespace qoserve {
namespace {

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), SimTime{0.0});
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pendingEvents(), 0u);
}

TEST(EventQueue, FiresEventsInTimestampOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(SimTime{3.0}, [&] { order.push_back(3); });
    eq.schedule(SimTime{1.0}, [&] { order.push_back(1); });
    eq.schedule(SimTime{2.0}, [&] { order.push_back(2); });

    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), SimTime{3.0});
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(SimTime{1.0}, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ClockAdvancesToFiredEvent)
{
    EventQueue eq;
    SimTime seen{-1.0};
    eq.schedule(SimTime{2.5}, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, SimTime{2.5});
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    SimTime seen{-1.0};
    eq.schedule(SimTime{1.0}, [&] {
        eq.scheduleAfter(0.5, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_DOUBLE_EQ(seen.seconds(), 1.5);
}

TEST(EventQueue, RunUntilStopsBeforeLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(SimTime{1.0}, [&] { ++fired; });
    eq.schedule(SimTime{2.0}, [&] { ++fired; });
    eq.schedule(SimTime{3.0}, [&] { ++fired; });

    EXPECT_EQ(eq.run(SimTime{2.0}), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pendingEvents(), 1u);
}

TEST(EventQueue, EventScheduledExactlyAtUntilFires)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(SimTime{2.0}, [&] { fired = true; });
    eq.run(SimTime{2.0});
    EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(SimTime{1.0}, [&] { fired = true; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_EQ(eq.pendingEvents(), 0u);
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceIsNoOp)
{
    EventQueue eq;
    EventId id = eq.schedule(SimTime{1.0}, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelUnknownIdReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(0));
    EXPECT_FALSE(eq.cancel(12345));
}

TEST(EventQueue, EventsScheduledDuringRunAreExecuted)
{
    EventQueue eq;
    int depth = 0;
    eq.schedule(SimTime{1.0}, [&] {
        ++depth;
        eq.scheduleAfter(1.0, [&] { ++depth; });
    });
    eq.run();
    EXPECT_EQ(depth, 2);
    EXPECT_EQ(eq.now(), SimTime{2.0});
}

TEST(EventQueue, StepExecutesExactlyOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(SimTime{1.0}, [&] { ++fired; });
    eq.schedule(SimTime{2.0}, [&] { ++fired; });

    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, PoolSlotsBoundedByPeakConcurrency)
{
    // The arena property: slots are recycled on fire/cancel, so the
    // pool grows to the peak number of *simultaneously pending*
    // events, not the number ever scheduled. A self-rescheduling
    // chain of bounded width must leave the pool small no matter how
    // many events pass through it.
    EventQueue eq;
    constexpr int kWidth = 8;
    constexpr int kRounds = 5000;
    int fired = 0;
    int reschedules = kWidth * (kRounds - 1);
    std::function<void()> tick = [&] {
        ++fired;
        if (reschedules > 0) {
            --reschedules;
            eq.scheduleAfter(0.001, tick);
        }
    };
    for (int i = 0; i < kWidth; ++i)
        eq.schedule(SimTime{0.0}, tick);
    eq.run();

    EXPECT_EQ(fired, kWidth * kRounds);
    EXPECT_EQ(eq.firedEvents(), static_cast<std::uint64_t>(fired));
    // Allow a little headroom over the exact peak for growth policy,
    // but 40k events through an O(width) pool must not grow it.
    EXPECT_LE(eq.poolSlots(), static_cast<std::size_t>(4 * kWidth));
}

TEST(EventQueue, CancelRecyclesSlotImmediately)
{
    EventQueue eq;
    eq.schedule(SimTime{1.0}, [] {});
    std::size_t baseline = eq.poolSlots();
    for (int i = 0; i < 1000; ++i) {
        EventId id = eq.schedule(SimTime{2.0}, [] {});
        EXPECT_TRUE(eq.cancel(id));
    }
    // Cancelled slots return to the free list, so the churn above
    // reuses one slot instead of growing the pool.
    EXPECT_LE(eq.poolSlots(), baseline + 1);
    eq.run();
    EXPECT_EQ(eq.firedEvents(), 1u);
}

TEST(EventQueue, FiredEventsCountsLifetimeNotPending)
{
    EventQueue eq;
    eq.schedule(SimTime{1.0}, [] {});
    eq.schedule(SimTime{2.0}, [] {});
    EventId id = eq.schedule(SimTime{3.0}, [] {});
    eq.cancel(id);
    eq.run();
    // Cancelled events never fire; the counter is the kernel's unit
    // of work for per-event cost reporting (bench/ext_scale).
    EXPECT_EQ(eq.firedEvents(), 2u);
    EXPECT_EQ(eq.pendingEvents(), 0u);
}

TEST(EventQueue, LongChainTerminates)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 10000)
            eq.scheduleAfter(0.001, tick);
    };
    eq.schedule(SimTime{0.0}, tick);
    eq.run();
    EXPECT_EQ(count, 10000);
    EXPECT_NEAR(eq.now().seconds(), 9.999, 1e-6);
}

} // namespace
} // namespace qoserve
