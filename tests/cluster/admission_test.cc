/**
 * @file
 * Tests for admission control and its integration with the cluster.
 */

#include "cluster/admission.hh"

#include <gtest/gtest.h>

#include <limits>

#include "cluster/cluster.hh"
#include "sched/baseline_schedulers.hh"

namespace qoserve {
namespace {

/** Minimal scheduler stub exposing a configurable backlog. */
class BacklogStub : public Scheduler
{
  public:
    explicit BacklogStub(std::int64_t backlog) : backlog_(backlog) {}

    void enqueue(Request *, SimTime) override {}
    Batch formBatch(SimTime) override { return {}; }
    void onBatchComplete(const Batch &, SimTime) override {}
    bool hasWork() const override { return false; }
    std::size_t decodeQueueSize() const override { return 0; }
    std::size_t prefillQueueSize() const override { return 0; }
    std::int64_t pendingPrefillTokens() const override { return backlog_; }
    const SchedulerStats &stats() const override { return stats_; }
    const char *name() const override { return "stub"; }

  private:
    std::int64_t backlog_;
    SchedulerStats stats_;
};

RequestSpec
spec(std::uint64_t id)
{
    RequestSpec s;
    s.id = id;
    s.promptTokens = 100;
    s.decodeTokens = 10;
    return s;
}

TEST(AdmissionController, NoneAdmitsEverything)
{
    AdmissionController ac({});
    BacklogStub target(1 << 30);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(ac.admit(spec(i), SimTime{i * 0.001}, target));
    EXPECT_EQ(ac.admitted(), 100u);
    EXPECT_EQ(ac.rejected(), 0u);
}

TEST(AdmissionController, RateLimitEnforcesSustainedRate)
{
    AdmissionController::Config cfg;
    cfg.policy = AdmissionPolicy::RateLimit;
    cfg.rateLimitQps = 10.0;
    cfg.burstSize = 1.0;
    AdmissionController ac(cfg);
    BacklogStub target(0);

    // 100 arrivals over 5 s at 20 QPS: about half must be rejected.
    int admitted = 0;
    for (int i = 0; i < 100; ++i)
        admitted += ac.admit(spec(i), SimTime{i * 0.05}, target);
    EXPECT_NEAR(admitted, 50, 3);
}

TEST(AdmissionController, BurstBucketAbsorbsSpikes)
{
    AdmissionController::Config cfg;
    cfg.policy = AdmissionPolicy::RateLimit;
    cfg.rateLimitQps = 1.0;
    cfg.burstSize = 8.0;
    AdmissionController ac(cfg);
    BacklogStub target(0);

    // Eight simultaneous arrivals fit the bucket; the ninth does not.
    int admitted = 0;
    for (int i = 0; i < 9; ++i)
        admitted += ac.admit(spec(i), SimTime{1.0}, target);
    EXPECT_EQ(admitted, 8);

    // After 4 idle seconds, ~4 tokens refill.
    admitted = 0;
    for (int i = 0; i < 9; ++i)
        admitted += ac.admit(spec(100 + i), SimTime{5.0}, target);
    EXPECT_EQ(admitted, 4);
}

TEST(AdmissionController, FullBucketAdmitsBurstAtTimeZero)
{
    // The bucket starts full: a burst arriving at t=0 is admitted up
    // to burstSize even though no refill time has elapsed. This pins
    // the "pre-warmed bucket" semantics benches rely on.
    AdmissionController::Config cfg;
    cfg.policy = AdmissionPolicy::RateLimit;
    cfg.rateLimitQps = 2.0;
    cfg.burstSize = 5.0;
    AdmissionController ac(cfg);
    BacklogStub target(0);

    int admitted = 0;
    for (int i = 0; i < 10; ++i)
        admitted += ac.admit(spec(i), SimTime{0.0}, target);
    EXPECT_EQ(admitted, 5);
    EXPECT_EQ(ac.rejected(), 5u);
}

TEST(AdmissionController, RateLimitWithoutRateIsFatal)
{
    // Misconfiguration must fail loudly at construction, not admit
    // nothing (or everything) silently at runtime.
    AdmissionController::Config cfg;
    cfg.policy = AdmissionPolicy::RateLimit;
    cfg.rateLimitQps = 0.0;
    EXPECT_EXIT(AdmissionController ac(cfg),
                ::testing::ExitedWithCode(1), "rateLimitQps");
}

TEST(AdmissionController, SubUnityBurstSizeIsFatal)
{
    AdmissionController::Config cfg;
    cfg.policy = AdmissionPolicy::RateLimit;
    cfg.rateLimitQps = 5.0;
    cfg.burstSize = 0.5; // can never accumulate one whole token
    EXPECT_EXIT(AdmissionController ac(cfg),
                ::testing::ExitedWithCode(1), "burstSize");
}

TEST(AdmissionController, NonFiniteRateIsFatal)
{
    AdmissionController::Config cfg;
    cfg.policy = AdmissionPolicy::RateLimit;
    cfg.rateLimitQps = std::numeric_limits<double>::infinity();
    EXPECT_EXIT(AdmissionController ac(cfg),
                ::testing::ExitedWithCode(1), "finite");
}

TEST(AdmissionController, LoadShedWithoutThresholdIsFatal)
{
    AdmissionController::Config cfg;
    cfg.policy = AdmissionPolicy::LoadShed;
    cfg.maxBacklogTokens = 0;
    EXPECT_EXIT(AdmissionController ac(cfg),
                ::testing::ExitedWithCode(1), "maxBacklogTokens");
}

TEST(AdmissionController, LoadShedUsesBacklogThreshold)
{
    AdmissionController::Config cfg;
    cfg.policy = AdmissionPolicy::LoadShed;
    cfg.maxBacklogTokens = 1000;
    AdmissionController ac(cfg);

    BacklogStub light(500), heavy(2000);
    EXPECT_TRUE(ac.admit(spec(1), SimTime{0.0}, light));
    EXPECT_FALSE(ac.admit(spec(2), SimTime{0.0}, heavy));
    EXPECT_EQ(ac.rejected(), 1u);
}

TEST(ClusterAdmission, RejectedRequestsBecomeViolationRecords)
{
    Trace trace = TraceBuilder().seed(83).buildCount(
        PoissonArrivals(10.0), 300);

    ClusterSim::Config cc;
    cc.replica.hw = llama3_8b_a100_tp1();
    cc.admission.policy = AdmissionPolicy::RateLimit;
    cc.admission.rateLimitQps = 5.0;
    cc.admission.burstSize = 4.0;

    ClusterSim sim(cc, trace);
    sim.addReplicaGroup(1, [](const SchedulerEnv &env) {
        return std::make_unique<FcfsScheduler>(env);
    });
    const MetricsCollector &metrics = sim.run();

    // Every request accounted for, rejected ones flagged.
    EXPECT_EQ(metrics.size(), 300u);
    RunSummary s = summarize(metrics);
    EXPECT_GT(s.rejectedFraction, 0.3);
    EXPECT_LT(s.rejectedFraction, 0.7);
    // A rejected request is necessarily an SLO violation.
    EXPECT_GE(s.violationRate, s.rejectedFraction);
    EXPECT_NEAR(static_cast<double>(sim.admission().rejected()) / 300.0,
                s.rejectedFraction, 1e-9);
}

TEST(ClusterAdmission, DefaultAdmitsEverything)
{
    Trace trace =
        TraceBuilder().seed(89).buildCount(PoissonArrivals(2.0), 100);
    ClusterSim::Config cc;
    cc.replica.hw = llama3_8b_a100_tp1();
    ClusterSim sim(cc, trace);
    sim.addReplicaGroup(1, [](const SchedulerEnv &env) {
        return std::make_unique<FcfsScheduler>(env);
    });
    RunSummary s = summarize(sim.run());
    EXPECT_EQ(s.rejectedFraction, 0.0);
}

} // namespace
} // namespace qoserve
