/**
 * @file
 * Tests for the replica simulation driver.
 */

#include "cluster/replica.hh"

#include <gtest/gtest.h>

#include "metrics/slo_report.hh"
#include "sched/baseline_schedulers.hh"

namespace qoserve {
namespace {

RequestSpec
makeSpec(std::uint64_t id, SimTime arrival, int prompt, int decode,
         int tier)
{
    RequestSpec spec;
    spec.id = id;
    spec.arrival = SimTime{arrival};
    spec.promptTokens = prompt;
    spec.decodeTokens = decode;
    spec.tierId = tier;
    spec.appId = tier;
    return spec;
}

class ReplicaTest : public ::testing::Test
{
  protected:
    ReplicaTest()
    {
        cfg_.hw = llama3_8b_a100_tp1();
        factory_ = [](const SchedulerEnv &env) {
            return std::make_unique<FcfsScheduler>(env);
        };
    }

    std::unique_ptr<Replica>
    makeReplica()
    {
        return std::make_unique<Replica>(
            eq_, cfg_, factory_, nullptr, paperTierTable(),
            std::vector<AppStats>(3),
            [this](const RequestRecord &rec) { records_.push_back(rec); });
    }

    EventQueue eq_;
    Replica::Config cfg_;
    SchedulerFactory factory_;
    std::vector<RequestRecord> records_;
};

TEST_F(ReplicaTest, SingleRequestCompletes)
{
    auto replica = makeReplica();
    eq_.schedule(SimTime{1.0}, [&] { replica->submit(makeSpec(1, SimTime{1.0}, 500, 5, 0)); });
    eq_.run();

    ASSERT_EQ(records_.size(), 1u);
    const RequestRecord &rec = records_[0];
    EXPECT_GT(rec.ttft(), 0.0);
    EXPECT_GE(rec.ttlt(), rec.ttft());
    EXPECT_EQ(replica->liveRequests(), 0u);
    EXPECT_EQ(replica->kv().usedBlocks(), 0);
}

TEST_F(ReplicaTest, TtftReflectsPrefillTime)
{
    auto replica = makeReplica();
    eq_.schedule(SimTime{0.0}, [&] { replica->submit(makeSpec(1, SimTime{0.0}, 512, 2, 0)); });
    eq_.run();

    ASSERT_EQ(records_.size(), 1u);
    // Two 256-token chunked iterations at ~40 ms each.
    EXPECT_GT(records_[0].ttft(), 0.05);
    EXPECT_LT(records_[0].ttft(), 0.25);
}

TEST_F(ReplicaTest, ManyRequestsAllComplete)
{
    auto replica = makeReplica();
    for (int i = 0; i < 20; ++i) {
        SimTime at{0.1 * i};
        eq_.schedule(at, [this, &replica, i, at] {
            replica->submit(makeSpec(i, at, 300 + 50 * i, 3, i % 3));
        });
    }
    eq_.run();
    EXPECT_EQ(records_.size(), 20u);
    EXPECT_GT(replica->iterations(), 20u);
    EXPECT_GT(replica->busyTime(), 0.0);
}

TEST_F(ReplicaTest, EngineIsWorkConserving)
{
    // Busy time must equal the span from first submission to last
    // completion when work never runs out.
    auto replica = makeReplica();
    eq_.schedule(SimTime{0.0}, [&] {
        for (int i = 0; i < 5; ++i)
            replica->submit(makeSpec(i, SimTime{0.0}, 1000, 5, 0));
    });
    eq_.run();
    EXPECT_NEAR(replica->busyTime(), eq_.now().seconds(), 1e-9);
}

TEST_F(ReplicaTest, BatchObserverSeesEveryIteration)
{
    auto replica = makeReplica();
    std::vector<BatchObservation> observations;
    replica->setBatchObserver(
        [&](const BatchObservation &obs) { observations.push_back(obs); });

    eq_.schedule(SimTime{0.0}, [&] { replica->submit(makeSpec(1, SimTime{0.0}, 600, 3, 0)); });
    eq_.run();

    EXPECT_EQ(observations.size(), replica->iterations());
    // First iterations carry prefill tokens; the last ones decode.
    EXPECT_EQ(observations.front().prefillTokens, 256);
    EXPECT_EQ(observations.back().prefillTokens, 0);
    EXPECT_EQ(observations.back().numDecodes, 1);
    for (const auto &obs : observations)
        EXPECT_GT(obs.latency, 0.0);
}

TEST_F(ReplicaTest, DuplicateSubmissionPanics)
{
    auto replica = makeReplica();
    eq_.schedule(SimTime{0.0}, [&] {
        replica->submit(makeSpec(1, SimTime{0.0}, 500, 5, 0));
        EXPECT_DEATH(replica->submit(makeSpec(1, SimTime{0.0}, 500, 5, 0)),
                     "duplicate");
    });
    eq_.run();
}

TEST_F(ReplicaTest, IdleReplicaWakesOnSubmission)
{
    auto replica = makeReplica();
    eq_.schedule(SimTime{0.0}, [&] { replica->submit(makeSpec(1, SimTime{0.0}, 200, 2, 0)); });
    // Long idle gap, then more work.
    eq_.schedule(SimTime{100.0},
                 [&] { replica->submit(makeSpec(2, SimTime{100.0}, 200, 2, 0)); });
    eq_.run();
    ASSERT_EQ(records_.size(), 2u);
    // The second request starts fresh at t=100, not queued behind
    // phantom work.
    EXPECT_LT(records_[1].ttft(), 0.2);
}

TEST_F(ReplicaTest, FailReleasesKvAndHandsBackLiveRequests)
{
    auto replica = makeReplica();
    std::vector<RequestFailureSnapshot> orphans;
    replica->setFailureHandler(
        [&](const RequestFailureSnapshot &snap) {
            orphans.push_back(snap);
        });

    eq_.schedule(SimTime{0.0}, [&] {
        for (int i = 0; i < 4; ++i)
            replica->submit(makeSpec(i, SimTime{0.0}, 800, 10, 0));
    });
    eq_.schedule(SimTime{0.2}, [&] {
        ASSERT_GT(replica->kv().usedBlocks(), 0);
        ASSERT_GT(replica->liveRequests(), 0u);
        replica->fail();
        // Crash semantics: all KV gone, nothing live, nothing queued.
        EXPECT_EQ(replica->kv().usedBlocks(), 0);
        EXPECT_EQ(replica->liveRequests(), 0u);
        EXPECT_FALSE(replica->scheduler().hasWork());
        EXPECT_EQ(replica->health(), ReplicaHealth::Down);
        EXPECT_EQ(orphans.size(), 4u);
        // Snapshots arrive in request-id order (determinism).
        for (std::size_t i = 1; i < orphans.size(); ++i)
            EXPECT_LT(orphans[i - 1].spec.id, orphans[i].spec.id);
    });
    eq_.run();
    EXPECT_EQ(replica->crashes(), 1u);
    EXPECT_TRUE(records_.empty()) << "crashed work completed anyway";
}

TEST_F(ReplicaTest, RecoveredReplicaServesResubmissions)
{
    auto replica = makeReplica();
    std::vector<RequestFailureSnapshot> orphans;
    replica->setFailureHandler(
        [&](const RequestFailureSnapshot &snap) {
            orphans.push_back(snap);
        });

    eq_.schedule(SimTime{0.0},
                 [&] { replica->submit(makeSpec(1, SimTime{0.0}, 2000, 50, 0)); });
    eq_.schedule(SimTime{0.2}, [&] { replica->fail(); });
    eq_.schedule(SimTime{1.0}, [&] {
        replica->recover();
        EXPECT_EQ(replica->health(), ReplicaHealth::Up);
        ASSERT_EQ(orphans.size(), 1u);
        replica->resubmit(orphans[0]);
    });
    eq_.run();

    ASSERT_EQ(records_.size(), 1u);
    const RequestRecord &rec = records_[0];
    EXPECT_NE(rec.finishTime, kTimeNever);
    EXPECT_GE(rec.ttlt(), rec.ttft());
    EXPECT_EQ(replica->kv().usedBlocks(), 0);
}

TEST_F(ReplicaTest, ResubmitAfterFirstTokenKeepsTtft)
{
    auto replica = makeReplica();
    std::vector<RequestFailureSnapshot> orphans;
    replica->setFailureHandler(
        [&](const RequestFailureSnapshot &snap) {
            orphans.push_back(snap);
        });

    // Long decode so the crash lands mid-decode, after first token.
    eq_.schedule(SimTime{0.0},
                 [&] { replica->submit(makeSpec(1, SimTime{0.0}, 256, 200, 0)); });
    eq_.schedule(SimTime{2.0}, [&] { replica->fail(); });
    eq_.schedule(SimTime{2.5}, [&] {
        replica->recover();
        ASSERT_EQ(orphans.size(), 1u);
        ASSERT_GT(orphans[0].decodeDone, 0)
            << "crash landed before the first token";
        EXPECT_NE(orphans[0].firstTokenTime, kTimeNever);
        replica->resubmit(orphans[0]);
    });
    eq_.run();

    ASSERT_EQ(records_.size(), 1u);
    // TTFT is the original pre-crash first token, not the resumed one.
    EXPECT_EQ(records_[0].firstTokenTime, orphans[0].firstTokenTime);
    EXPECT_NE(records_[0].finishTime, kTimeNever);
}

TEST_F(ReplicaTest, SlowdownScalesIterationLatency)
{
    // Two identical one-request runs, one at 2x slowdown.
    auto timed = [&](double factor) {
        EventQueue eq;
        std::vector<RequestRecord> records;
        Replica replica(
            eq, cfg_, factory_, nullptr, paperTierTable(),
            std::vector<AppStats>(3),
            [&](const RequestRecord &rec) { records.push_back(rec); });
        eq.schedule(SimTime{0.0}, [&] {
            if (factor != 1.0)
                replica.setSlowdown(factor);
            replica.submit(makeSpec(1, SimTime{0.0}, 512, 4, 0));
        });
        eq.run();
        return records.at(0).ttlt();
    };

    double base = timed(1.0);
    double slowed = timed(2.0);
    EXPECT_NEAR(slowed, 2.0 * base, 1e-9);
}

TEST_F(ReplicaTest, SlowdownTransitionsHealth)
{
    auto replica = makeReplica();
    EXPECT_EQ(replica->health(), ReplicaHealth::Up);
    replica->setSlowdown(1.5);
    EXPECT_EQ(replica->health(), ReplicaHealth::Degraded);
    EXPECT_DOUBLE_EQ(replica->slowdown(), 1.5);
    replica->setSlowdown(1.0);
    EXPECT_EQ(replica->health(), ReplicaHealth::Up);
}

TEST_F(ReplicaTest, FailWithoutHandlerPanics)
{
    auto replica = makeReplica();
    EXPECT_DEATH(replica->fail(), "handler");
}

TEST_F(ReplicaTest, SubmitWhileDownPanics)
{
    auto replica = makeReplica();
    replica->setFailureHandler([](const RequestFailureSnapshot &) {});
    eq_.schedule(SimTime{0.0}, [&] {
        replica->fail();
        EXPECT_DEATH(replica->submit(makeSpec(1, SimTime{0.0}, 100, 2, 0)),
                     "down");
    });
    eq_.run();
}

} // namespace
} // namespace qoserve
