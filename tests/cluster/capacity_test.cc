/**
 * @file
 * Tests for the goodput search harness.
 */

#include "cluster/capacity.hh"

#include <gtest/gtest.h>

#include <vector>

namespace qoserve {
namespace {

/** Synthetic runner: violations jump past a known capacity. */
LoadRunner
stepRunner(double capacity, std::vector<double> *probes = nullptr)
{
    return [capacity, probes](double qps) {
        if (probes != nullptr)
            probes->push_back(qps);
        RunSummary s;
        s.count = 1000;
        s.violationRate = qps <= capacity ? 0.0 : 0.5;
        return s;
    };
}

TEST(GoodputCriteria, ThresholdRespected)
{
    GoodputCriteria criteria;
    RunSummary ok;
    ok.violationRate = 0.01;
    RunSummary bad;
    bad.violationRate = 0.011;
    EXPECT_TRUE(meetsGoodputCriteria(ok, criteria));
    EXPECT_FALSE(meetsGoodputCriteria(bad, criteria));
}

TEST(MeasureMaxGoodput, FindsStepCapacity)
{
    double goodput = measureMaxGoodput(stepRunner(3.7));
    EXPECT_NEAR(goodput, 3.7, 0.125);
    EXPECT_LE(goodput, 3.7);
}

TEST(MeasureMaxGoodput, ZeroWhenNothingPasses)
{
    EXPECT_EQ(measureMaxGoodput(stepRunner(0.1)), 0.0);
}

TEST(MeasureMaxGoodput, CapsAtMaxQps)
{
    GoodputSearch search;
    search.maxQps = 8.0;
    double goodput = measureMaxGoodput(stepRunner(1000.0), {}, search);
    EXPECT_GE(goodput, 8.0);
}

TEST(MeasureMaxGoodput, ResolutionControlsProbeCount)
{
    std::vector<double> coarse_probes, fine_probes;
    GoodputSearch coarse;
    coarse.resolutionQps = 1.0;
    GoodputSearch fine;
    fine.resolutionQps = 0.0625;

    measureMaxGoodput(stepRunner(5.3, &coarse_probes), {}, coarse);
    measureMaxGoodput(stepRunner(5.3, &fine_probes), {}, fine);
    EXPECT_LT(coarse_probes.size(), fine_probes.size());
}

TEST(MeasureMaxGoodput, ResultIsAlwaysFeasible)
{
    for (double cap : {0.6, 1.0, 2.9, 7.45, 23.0}) {
        double goodput = measureMaxGoodput(stepRunner(cap));
        EXPECT_LE(goodput, cap) << "capacity " << cap;
        EXPECT_GT(goodput, cap - 0.3) << "capacity " << cap;
    }
}

TEST(ReplicasForLoad, CeilingDivision)
{
    EXPECT_EQ(replicasForLoad(35.0, 5.0), 7);
    EXPECT_EQ(replicasForLoad(35.0, 4.9), 8);
    EXPECT_EQ(replicasForLoad(1.0, 10.0), 1);
}

} // namespace
} // namespace qoserve
