/**
 * @file
 * Tests for replica-group load-balancing policies.
 */

#include "cluster/cluster.hh"

#include <gtest/gtest.h>

#include "sched/baseline_schedulers.hh"

namespace qoserve {
namespace {

SchedulerFactory
fcfsFactory()
{
    return [](const SchedulerEnv &env) {
        return std::make_unique<FcfsScheduler>(env);
    };
}

ClusterSim::Config
defaultConfig()
{
    ClusterSim::Config cfg;
    cfg.replica.hw = llama3_8b_a100_tp1();
    return cfg;
}

TEST(LoadBalance, NamesAreStable)
{
    EXPECT_STREQ(loadBalanceName(LoadBalancePolicy::RoundRobin),
                 "round-robin");
    EXPECT_STREQ(loadBalanceName(LoadBalancePolicy::LeastLoaded),
                 "least-loaded");
    EXPECT_STREQ(loadBalanceName(LoadBalancePolicy::ShortestQueue),
                 "shortest-queue");
}

TEST(LoadBalance, RoundRobinDistributesExactlyEvenly)
{
    // With simultaneous arrivals, round-robin is the only policy
    // with a deterministic 1/N split by construction.
    Trace trace;
    trace.tiers = paperTierTable();
    for (int i = 0; i < 40; ++i) {
        RequestSpec spec;
        spec.id = i;
        spec.arrival = SimTime{0.001 * i};
        spec.promptTokens = 100;
        spec.decodeTokens = 2;
        spec.tierId = 0;
        trace.requests.push_back(spec);
    }
    trace.appStats = computeAppStats(trace.requests);

    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(4, fcfsFactory(), LoadBalancePolicy::RoundRobin);
    sim.run();

    // All replicas saw the same share of prefill work.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(
            sim.replica(i).scheduler().stats().prefillTokensScheduled,
            10u * 100u)
            << "replica " << i;
    }
}

TEST(LoadBalance, ShortestQueueAvoidsTheBusyReplica)
{
    // One giant prompt lands first; with shortest-queue balancing,
    // the following small requests must all dodge that replica.
    Trace trace;
    trace.tiers = paperTierTable();
    RequestSpec big;
    big.id = 0;
    big.arrival = SimTime{0.0};
    big.promptTokens = 8000;
    big.decodeTokens = 2;
    big.tierId = 2;
    trace.requests.push_back(big);
    for (int i = 1; i <= 8; ++i) {
        RequestSpec spec;
        spec.id = i;
        spec.arrival = SimTime{0.01 * i};
        spec.promptTokens = 100;
        spec.decodeTokens = 2;
        spec.tierId = 0;
        trace.requests.push_back(spec);
    }
    trace.appStats = computeAppStats(trace.requests);

    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(2, fcfsFactory(),
                        LoadBalancePolicy::ShortestQueue);
    sim.run();

    // The replica that got the big prompt processed ~8000 tokens;
    // the other got all eight small requests (~800).
    auto t0 = sim.replica(0).scheduler().stats().prefillTokensScheduled;
    auto t1 = sim.replica(1).scheduler().stats().prefillTokensScheduled;
    EXPECT_EQ(t0 + t1, 8800u);
    EXPECT_EQ(std::min(t0, t1), 800u);
}

TEST(LoadBalance, LeastLoadedCountsLiveRequests)
{
    // Same setup; least-loaded balances by request count instead, so
    // the small requests alternate between replicas once both hold
    // one live request.
    Trace trace;
    trace.tiers = paperTierTable();
    for (int i = 0; i < 9; ++i) {
        RequestSpec spec;
        spec.id = i;
        spec.arrival = SimTime{0.001 * i};
        spec.promptTokens = 100;
        spec.decodeTokens = 50; // long decodes keep requests live
        spec.tierId = 0;
        trace.requests.push_back(spec);
    }
    trace.appStats = computeAppStats(trace.requests);

    ClusterSim sim(defaultConfig(), trace);
    sim.addReplicaGroup(3, fcfsFactory(), LoadBalancePolicy::LeastLoaded);
    sim.run();

    // 9 near-simultaneous arrivals over 3 replicas: 3 each.
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(
            sim.replica(i).scheduler().stats().prefillTokensScheduled,
            3u * 100u)
            << "replica " << i;
    }
}

TEST(LoadBalance, AllPoliciesCompleteTheSameTrace)
{
    Trace trace = TraceBuilder().seed(101).buildCount(
        PoissonArrivals(6.0), 300);
    for (LoadBalancePolicy lb :
         {LoadBalancePolicy::RoundRobin, LoadBalancePolicy::LeastLoaded,
          LoadBalancePolicy::ShortestQueue}) {
        ClusterSim sim(defaultConfig(), trace);
        sim.addReplicaGroup(3, fcfsFactory(), lb);
        EXPECT_EQ(sim.run().size(), 300u) << loadBalanceName(lb);
    }
}

} // namespace
} // namespace qoserve
