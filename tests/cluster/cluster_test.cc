/**
 * @file
 * Tests for the multi-replica cluster simulation.
 */

#include "cluster/cluster.hh"

#include <gtest/gtest.h>

#include "sched/baseline_schedulers.hh"
#include "workload/arrival.hh"

namespace qoserve {
namespace {

SchedulerFactory
fcfsFactory()
{
    return [](const SchedulerEnv &env) {
        return std::make_unique<FcfsScheduler>(env);
    };
}

ClusterSim::Config
defaultConfig()
{
    ClusterSim::Config cfg;
    cfg.replica.hw = llama3_8b_a100_tp1();
    return cfg;
}

Trace
smallTrace(double qps, std::size_t count, std::uint64_t seed = 1)
{
    return TraceBuilder()
        .dataset(azureCode())
        .seed(seed)
        .buildCount(PoissonArrivals(qps), count);
}

TEST(ClusterSim, AllRequestsComplete)
{
    ClusterSim sim(defaultConfig(), smallTrace(2.0, 200));
    sim.addReplicaGroup(1, fcfsFactory());
    const MetricsCollector &metrics = sim.run();
    EXPECT_EQ(metrics.size(), 200u);
}

TEST(ClusterSim, RoundRobinSpreadsLoad)
{
    ClusterSim sim(defaultConfig(), smallTrace(4.0, 400));
    sim.addReplicaGroup(4, fcfsFactory());
    sim.run();

    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GT(sim.replica(i).iterations(), 0u)
            << "replica " << i << " idle";
    }
    EXPECT_EQ(sim.numReplicas(), 4u);
    EXPECT_EQ(sim.totalGpus(), 4);
}

TEST(ClusterSim, TotalGpusScalesWithTp)
{
    ClusterSim::Config cfg;
    cfg.replica.hw = qwen_7b_a100_tp2();
    ClusterSim sim(cfg, smallTrace(1.0, 50));
    sim.addReplicaGroup(3, fcfsFactory());
    EXPECT_EQ(sim.totalGpus(), 6);
}

TEST(ClusterSim, SiloedRoutingSendsTiersToTheirGroups)
{
    Trace trace = smallTrace(3.0, 300);
    ClusterSim sim(defaultConfig(), trace);
    int g0 = sim.addReplicaGroup(1, fcfsFactory());
    int g1 = sim.addReplicaGroup(1, fcfsFactory());
    int g2 = sim.addReplicaGroup(1, fcfsFactory());
    sim.routeTier(0, g0);
    sim.routeTier(1, g1);
    sim.routeTier(2, g2);
    sim.run();

    // Every tier had requests, so every silo must have worked, and
    // work must be proportional to the tier shares (equal thirds).
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_GT(sim.replica(i).iterations(), 0u);
}

TEST(ClusterSim, MoreReplicasReduceLatency)
{
    Trace trace = smallTrace(6.0, 600, 7);

    ClusterSim one(defaultConfig(), trace);
    one.addReplicaGroup(1, fcfsFactory());
    RunSummary s1 = summarize(one.run());

    ClusterSim four(defaultConfig(), trace);
    four.addReplicaGroup(4, fcfsFactory());
    RunSummary s4 = summarize(four.run());

    EXPECT_LT(s4.p99Latency, s1.p99Latency);
    EXPECT_LE(s4.violationRate, s1.violationRate);
}

TEST(ClusterSim, DeterministicAcrossRuns)
{
    Trace trace = smallTrace(2.0, 150, 11);

    ClusterSim a(defaultConfig(), trace);
    a.addReplicaGroup(2, fcfsFactory());
    RunSummary sa = summarize(a.run());

    ClusterSim b(defaultConfig(), trace);
    b.addReplicaGroup(2, fcfsFactory());
    RunSummary sb = summarize(b.run());

    EXPECT_DOUBLE_EQ(sa.p99Latency, sb.p99Latency);
    EXPECT_DOUBLE_EQ(sa.violationRate, sb.violationRate);
}

TEST(ClusterSim, RunTwicePanics)
{
    ClusterSim sim(defaultConfig(), smallTrace(1.0, 10));
    sim.addReplicaGroup(1, fcfsFactory());
    sim.run();
    EXPECT_DEATH(sim.run(), "twice");
}

TEST(ToPrefillOnlyTrace, DropsDecodesToOneToken)
{
    Trace trace = smallTrace(1.0, 100);
    Trace prefill = toPrefillOnlyTrace(trace);
    ASSERT_EQ(prefill.requests.size(), trace.requests.size());
    for (const auto &r : prefill.requests) {
        EXPECT_EQ(r.decodeTokens, 1);
    }
    for (const auto &stats : prefill.appStats)
        EXPECT_LE(stats.conservativeDecodeTokens(), 1.0);
}

} // namespace
} // namespace qoserve
